/**
 * @file
 * Kernel portability — the Figure 16 argument made executable. With
 * PagedAttention, swapping the attention kernel means porting paging
 * support into the new kernel. With vAttention, the KV cache is a
 * plain (virtually) contiguous tensor, so ANY kernel that consumes
 * contiguous K/V works unmodified: we run three different kernel
 * implementations (naive reference, FlashAttention-style tiled, and a
 * "next-gen" kernel stand-in) over the SAME vAttention-managed cache
 * with zero memory-management changes, and verify identical outputs.
 * A strided (tensor-slicing, §8.2) layout is also exercised — that is
 * what FA2's stride support buys.
 *
 * Build & run:  ./build/examples/kernel_portability
 */

#include <cstdio>

#include "attn/kernels.hh"
#include "attn/reference.hh"
#include "core/vattention.hh"
#include "cuvmm/driver.hh"

using namespace vattn;

namespace
{

/**
 * Stand-in for tomorrow's attention kernel (e.g. FA3): different
 * traversal order (heads outermost in reverse), same math. The point
 * is not the loop order — it is that this function knows NOTHING
 * about page-groups, block tables or reqIds.
 */
void
nextGenDecodeKernel(const attn::AttnConfig &config,
                    const tensor::HostTensor &q, const attn::KvView &kv,
                    i64 kv_len, tensor::HostTensor &out)
{
    tensor::HostTensor q_one(tensor::Shape{1, config.head_dim});
    tensor::HostTensor out_one(q_one.shape());
    for (int head = config.num_q_heads - 1; head >= 0; --head) {
        attn::AttnConfig one{1, 1, config.head_dim, true, 0.0f};
        // Borrow the single-head path through a per-head view.
        for (int c = 0; c < config.head_dim; ++c) {
            q_one.at({0, c}) = q.at({head, c});
        }
        // A per-head adapter view over the same KV.
        struct HeadView : attn::KvView
        {
            const attn::KvView *base;
            int head;
            int numKvHeads() const override { return 1; }
            int headDim() const override { return base->headDim(); }
            void
            loadK(i64 t, int, float *o) const override
            {
                base->loadK(t, head, o);
            }
            void
            loadV(i64 t, int, float *o) const override
            {
                base->loadV(t, head, o);
            }
        } head_view;
        head_view.base = &kv;
        head_view.head = config.kvHeadFor(head);
        attn::flashDecode(one, q_one, head_view, kv_len, out_one);
        for (int c = 0; c < config.head_dim; ++c) {
            out.at({head, c}) = out_one.at({0, c});
        }
    }
}

core::VAttention
makeRuntime(cuvmm::Driver &driver, bool tensor_slicing)
{
    core::Config config;
    config.num_layers = 3;
    config.num_kv_heads = 2;
    config.head_dim = 16;
    config.max_batch_size = 4;
    config.max_context_len = 4096;
    config.page_group = tensor_slicing ? PageGroup::k2MB
                                       : PageGroup::k64KB;
    config.use_driver_extension = !tensor_slicing;
    config.tensor_slicing = tensor_slicing;
    config.phys_budget_bytes = 128 * MiB;
    return core::VAttention(driver, config);
}

} // namespace

int
main()
{
    gpu::GpuDevice::Config dev_config;
    dev_config.mem_bytes = 512 * MiB;

    const attn::AttnConfig attn_config{4, 2, 16, true, 0.0f};
    Rng rng(123);
    tensor::HostTensor q(tensor::Shape{4, 16});
    q.fillRandom(rng);

    for (bool slicing : {false, true}) {
        gpu::GpuDevice device(dev_config);
        cuvmm::Driver driver(device);
        auto vattn = makeRuntime(driver, slicing);

        const int req = vattn.allocReqId().value();
        std::vector<i64> lens(4, 0);
        lens[static_cast<std::size_t>(req)] = 300;
        vattn.step(lens).status.expectOk("step");

        // Fill layer 1's KV with random vectors.
        auto view = vattn.requestView(1, req);
        std::vector<float> k(300 * 2 * 16);
        std::vector<float> v(300 * 2 * 16);
        for (auto &x : k) {
            x = static_cast<float>(rng.uniform(-1, 1));
        }
        for (auto &x : v) {
            x = static_cast<float>(rng.uniform(-1, 1));
        }
        attn::appendKv(view, 0, 300, 2, 16, k.data(), v.data());

        // Three kernels, one cache, zero memory-management changes.
        tensor::HostTensor out_ref(q.shape());
        tensor::HostTensor out_flash(q.shape());
        tensor::HostTensor out_next(q.shape());
        attn::referenceDecode(attn_config, q, view, 300, out_ref);
        attn::flashDecode(attn_config, q, view, 300, out_flash);
        nextGenDecodeKernel(attn_config, q, view, 300, out_next);

        std::printf("[%s layout]\n",
                    slicing ? "tensor-slicing (strided, §8.2)"
                            : "per-layer contiguous");
        std::printf("  reference vs flash   : max |diff| = %.2e\n",
                    out_ref.maxAbsDiff(out_flash));
        std::printf("  reference vs next-gen: max |diff| = %.2e\n",
                    out_ref.maxAbsDiff(out_next));
        const bool ok = out_ref.maxAbsDiff(out_flash) < 1e-4f &&
                        out_ref.maxAbsDiff(out_next) < 1e-4f;
        std::printf("  %s\n\n", ok ? "kernels swapped freely: OK"
                                   : "MISMATCH");
        if (!ok) {
            return 1;
        }
        vattn.freeReqId(req).expectOk("free");
    }
    std::printf("Replacing a kernel under vAttention touched no "
                "memory-management code — compare with the 600+ line "
                "Block-Table integrations the paper catalogues "
                "(§8.3).\n");
    return 0;
}
