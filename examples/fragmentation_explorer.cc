/**
 * @file
 * Fragmentation explorer — an analysis tool over the KV geometry
 * model. For a model/TP/page-group choice it reports the per-request
 * physical footprint, internal fragmentation, and the memory-bound
 * batch size across context lengths; it also contrasts the two
 * mitigation strategies of the paper (small page-groups, §6.2, vs
 * tensor slicing, §8.2) and the static pre-reservation of
 * pre-PagedAttention systems (§1).
 *
 * Build & run:  ./build/examples/fragmentation_explorer [model]
 *               model in {yi6b, llama3-8b, yi34b}
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "common/table.hh"
#include "core/kv_geometry.hh"
#include "perf/model_spec.hh"

using namespace vattn;

namespace
{

core::KvGeometry
geometryFor(const perf::ModelSpec &model, int tp, PageGroup group,
            bool slicing)
{
    core::Config config;
    config.num_layers = model.num_layers;
    config.num_kv_heads = model.kvHeadsPerWorker(tp);
    config.head_dim = model.head_dim;
    config.bytes_per_elem = model.bytes_per_elem;
    config.max_batch_size = 1;
    config.max_context_len = model.max_context_len;
    config.page_group = group;
    config.use_driver_extension = group != PageGroup::k2MB;
    config.tensor_slicing = slicing;
    return core::KvGeometry(config);
}

} // namespace

int
main(int argc, char **argv)
{
    perf::ModelSpec model = perf::ModelSpec::yi6B();
    if (argc > 1) {
        const std::string name = argv[1];
        if (name == "llama3-8b") {
            model = perf::ModelSpec::llama3_8B();
        } else if (name == "yi34b") {
            model = perf::ModelSpec::yi34B();
        }
    }
    const int tp = 1;
    const u64 budget = 60 * GiB; // typical KV share of an 80GB A100

    std::printf("model: %s (TP-%d), per-token KV: %llu KB, KV budget "
                "%.0f GB\n\n",
                model.name.c_str(), tp,
                static_cast<unsigned long long>(
                    model.kvBytesPerToken() / 1024),
                static_cast<double>(budget) / 1e9);

    // Static reservation baseline (Orca/FasterTransformer, §1): every
    // request pre-reserves the full max context.
    const u64 static_bytes = static_cast<u64>(model.max_context_len) *
                             model.kvBytesPerTokenPerWorker(tp);
    std::printf("static pre-reservation (pre-PagedAttention): %.1f GB "
                "per request -> max batch %llu regardless of actual "
                "context\n\n",
                static_cast<double>(static_bytes) / 1e9,
                static_cast<unsigned long long>(budget / static_bytes));

    for (i64 ctx : {512, 2048, 8192, 32 * 1024}) {
        Table table({"allocator", "phys/request MB", "waste MB",
                     "waste %", "max batch"});
        auto add_row = [&](const std::string &name,
                           const core::KvGeometry &geom) {
            const u64 phys = geom.physBytesForTokens(ctx);
            const u64 waste = geom.wasteBytesForTokens(ctx);
            table.addRow({
                name,
                Table::num(static_cast<double>(phys) / 1e6, 1),
                Table::num(static_cast<double>(waste) / 1e6, 2),
                Table::num(100.0 * static_cast<double>(waste) /
                               static_cast<double>(phys),
                           1),
                Table::integer(
                    static_cast<long long>(budget / phys)),
            });
        };
        for (PageGroup group : kAllPageGroups) {
            add_row(std::string("vAttention ") + toString(group),
                    geometryFor(model, tp, group, false));
        }
        add_row("vAttention 2MB + slicing",
                geometryFor(model, tp, PageGroup::k2MB, true));
        table.print("context length " + std::to_string(ctx) +
                    " tokens");
    }
    std::printf("\nReading: small page-groups and tensor slicing both "
                "bound waste to about one block per request; 2MB "
                "pages waste up to numBuffers x 2MB on short "
                "contexts, which is what Figure 15 measures "
                "end-to-end.\n");
    return 0;
}
