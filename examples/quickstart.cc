/**
 * @file
 * Quickstart: the full vAttention lifecycle on a toy model, following
 * Table 4 and Algorithm 1 of the paper.
 *
 *   1. Stand up a simulated GPU + VMM driver.
 *   2. init: configure vAttention; it reserves 2N *virtual* tensors
 *      with no physical memory behind them.
 *   3. allocReqId + step: physical page-groups get mapped on demand
 *      as the request's context grows.
 *   4. Run real (functional) attention over the virtually contiguous
 *      KV cache with an unmodified non-paged kernel.
 *   5. freeReqId: deferred reclamation keeps the pages mapped so the
 *      next request starts instantly.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>

#include "attn/kernels.hh"
#include "core/vattention.hh"
#include "cuvmm/driver.hh"
#include "gpu/device.hh"

using namespace vattn;

int
main()
{
    // ---- 1. A simulated GPU and its VMM driver --------------------
    gpu::GpuDevice::Config dev_config;
    dev_config.name = "demoGPU";
    dev_config.mem_bytes = 1 * GiB;
    gpu::GpuDevice device(dev_config);
    cuvmm::Driver driver(device);

    // ---- 2. init (Table 4): N=4 layers, H=2 KV heads, D=32 --------
    core::Config config;
    config.num_layers = 4;
    config.num_kv_heads = 2;
    config.head_dim = 32;
    config.bytes_per_elem = 2;       // FP16
    config.max_batch_size = 8;       // B
    config.max_context_len = 16384;  // L
    config.page_group = PageGroup::k64KB;
    config.phys_budget_bytes = 256 * MiB;
    core::VAttention vattn(driver, config);

    const auto &geom = vattn.geometry();
    std::printf("reserved %d virtual buffers (%.1f MB of virtual "
                "memory), 0 bytes of physical memory mapped\n",
                geom.numBuffers(),
                static_cast<double>(geom.totalVirtualBytes()) / 1e6);
    std::printf("block size: %lld tokens per %s page-group\n\n",
                static_cast<long long>(geom.tokensPerGroup()),
                toString(config.page_group));

    // ---- 3. A request arrives with a 600-token prompt -------------
    const int req_id = vattn.allocReqId().value();
    std::vector<i64> seq_lens(8, 0);
    seq_lens[static_cast<std::size_t>(req_id)] = 600;
    auto step = vattn.step(seq_lens);
    step.status.expectOk("prefill step");
    std::printf("prefill step: mapped %lld page-groups in %.1f us "
                "of driver time\n",
                static_cast<long long>(step.handles_mapped),
                static_cast<double>(step.critical_ns) / 1e3);
    std::printf("physical bytes mapped: %.2f MB (of %.1f MB KV "
                "budget)\n\n",
                static_cast<double>(vattn.physBytesMapped()) / 1e6,
                static_cast<double>(vattn.budgetBytes()) / 1e6);

    // ---- 4. Write KV and run an unmodified attention kernel -------
    Rng rng(7);
    const attn::AttnConfig attn_config{4, 2, 32, true, 0.0f};
    for (int layer = 0; layer < config.num_layers; ++layer) {
        auto view = vattn.requestView(layer, req_id);
        std::vector<float> k(600 * 2 * 32);
        std::vector<float> v(600 * 2 * 32);
        for (auto &x : k) {
            x = static_cast<float>(rng.uniform(-1, 1));
        }
        for (auto &x : v) {
            x = static_cast<float>(rng.uniform(-1, 1));
        }
        attn::appendKv(view, 0, 600, 2, 32, k.data(), v.data());
    }
    tensor::HostTensor q(tensor::Shape{4, 32});
    tensor::HostTensor out(q.shape());
    q.fillRandom(rng);
    auto layer0 = vattn.requestView(0, req_id);
    attn::flashDecode(attn_config, q, layer0, 600, out);
    std::printf("decode attention over the virtually contiguous KV "
                "cache: out[0][0..3] = %.4f %.4f %.4f %.4f\n\n",
                out.at({0, 0}), out.at({0, 1}), out.at({0, 2}),
                out.at({0, 3}));

    // ---- decode iterations: one token per step --------------------
    for (i64 len = 601; len <= 605; ++len) {
        seq_lens[static_cast<std::size_t>(req_id)] = len;
        vattn.step(seq_lens).status.expectOk("decode step");
        // Model the background thread of §6.1.1 during "compute".
        vattn.computePhase(20 * kMsec);
    }
    std::printf("after 5 decode steps: %lld groups mapped for req %d "
                "(no growth needed until token %lld)\n\n",
                static_cast<long long>(vattn.groupsMapped(req_id)),
                req_id,
                static_cast<long long>(vattn.groupsMapped(req_id) *
                                       geom.tokensPerGroup()));

    // ---- 5. Completion: deferred reclamation ----------------------
    vattn.freeReqId(req_id).expectOk("free");
    std::printf("request done; %lld page-groups kept mapped "
                "(deferred reclamation)\n",
                static_cast<long long>(vattn.cachedHandles()));

    const int next = vattn.allocReqId().value();
    seq_lens.assign(8, 0);
    seq_lens[static_cast<std::size_t>(next)] = 500;
    auto reuse = vattn.step(seq_lens);
    std::printf("next request (500-token prompt) reused reqId %d: "
                "%lld new page-groups, %.1f us of driver time\n",
                next, static_cast<long long>(reuse.handles_mapped),
                static_cast<double>(reuse.critical_ns) / 1e3);
    return 0;
}
