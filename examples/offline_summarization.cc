/**
 * @file
 * Offline long-document summarization — the paper's headline serving
 * scenario (§7.3). A batch of arXiv-length documents (tens of
 * thousands of tokens each) is summarized offline; we compare the
 * end-to-end throughput of PagedAttention back-ends against
 * vAttention-backed non-paged kernels on the same engine.
 *
 * Build & run:  ./build/examples/offline_summarization [num_docs]
 */

#include <cstdio>
#include <cstdlib>

#include "common/table.hh"
#include "serving/engine.hh"

using namespace vattn;

int
main(int argc, char **argv)
{
    const int num_docs = argc > 1 ? std::atoi(argv[1]) : 64;
    std::printf("summarizing %d long documents offline "
                "(Llama-3-8B on 2x A100)\n\n",
                num_docs);

    const perf::BackendKind kinds[] = {
        perf::BackendKind::kVllmPaged,
        perf::BackendKind::kFa2Paged,
        perf::BackendKind::kFiPaged,
        perf::BackendKind::kFa2VAttention,
        perf::BackendKind::kFiVAttention,
    };

    Table table({"backend", "req/min", "prefill tok/s", "decode tok/s",
                 "mean latency s", "preemptions"});
    double baseline_rpm = 0;
    for (auto kind : kinds) {
        serving::EngineConfig config;
        config.model = perf::ModelSpec::llama3_8B();
        config.gpu = perf::GpuSpec::a100();
        config.tp_degree = 2;
        config.backend = kind;
        config.scheduler.max_num_seqs = 128;
        config.scheduler.max_batched_tokens = 128 * 1024;
        config.vattn.max_batch_size = 128;
        serving::Engine engine(config);

        auto trace = serving::arxivOfflineTrace(num_docs, 11);
        serving::assignOfflineArrivals(trace);
        const auto report = engine.run(std::move(trace));

        if (kind == kinds[0]) {
            baseline_rpm = report.requestsPerMinute();
        }
        table.addRow({
            std::string(toString(kind)) +
                (kind == perf::BackendKind::kFa2VAttention ||
                         kind == perf::BackendKind::kFiVAttention
                     ? " *"
                     : ""),
            Table::num(report.requestsPerMinute(), 2),
            Table::num(report.prefillTokensPerSecond(), 0),
            Table::num(report.decodeTokensPerSecond(), 0),
            Table::num(report.latency_s.mean(), 1),
            Table::integer(static_cast<long long>(report.preemptions)),
        });
    }
    table.print("offline summarization throughput "
                "(* = vAttention-managed, unmodified kernels)");
    std::printf("\nvLLM baseline: %.2f req/min. The vAttention "
                "back-ends win because prefill attention runs the\n"
                "non-paged kernels over a virtually contiguous KV "
                "cache (no Block-Table dereferencing).\n",
                baseline_rpm);
    return 0;
}
