/**
 * @file
 * Online chat serving — continuous batching under Poisson arrivals
 * (the §7.4 scenario at chat scale). Shows how vAttention's faster
 * prefill shortens queueing delays near capacity, and how the
 * page-group size trades fragmentation against allocation granularity
 * for the achievable batch size.
 *
 * Build & run:  ./build/examples/online_chat [qps] [--prefix-cache]
 *
 * --prefix-cache switches to a multi-tenant shared-system-prompt
 * trace (real token ids) and enables §8.1 prefix caching on both
 * backends, printing hit-rate and prefill-savings stats.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/table.hh"
#include "serving/engine.hh"

using namespace vattn;

namespace
{

int
runPrefixCacheStudy(double qps)
{
    std::printf("online chat with shared system prompts: Yi-6B on 1x "
                "A100, %.1f queries/second, 400 requests, 8 tenants x "
                "4K-token system prompt\n\n",
                qps);
    const perf::BackendKind kinds[] = {
        perf::BackendKind::kFa2Paged,
        perf::BackendKind::kFa2VAttention,
    };
    Table table({"backend", "median s", "TTFT p50 s", "hit rate",
                 "prefill saved", "peak batch"});
    for (auto kind : kinds) {
        serving::EngineConfig config;
        config.model = perf::ModelSpec::yi6B();
        config.gpu = perf::GpuSpec::a100();
        config.tp = 1;
        config.backend = kind;
        config.scheduler.max_num_seqs = 256;
        config.scheduler.max_batched_tokens = 8192;
        config.vattn.max_batch_size = 256;
        config.enable_prefix_caching = true;
        serving::Engine engine(config);

        auto trace = serving::sharedSystemPromptTrace(
            400, /*tenants=*/8, /*system_tokens=*/4096,
            /*user_mean=*/256, /*seed=*/5);
        serving::assignPoissonArrivals(trace, qps, 21);
        const auto report = engine.run(std::move(trace));
        table.addRow({
            toString(kind),
            Table::num(report.latency_s.median(), 2),
            Table::num(report.ttft_s.median(), 2),
            Table::num(100.0 * report.prefixHitRate(), 1) + "%",
            Table::num(100.0 * report.prefillSavedFraction(), 1) + "%",
            Table::integer(report.peak_batch),
        });
    }
    table.print("prefix caching on (both backends)");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    double qps = 6.0;
    bool prefix_cache = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--prefix-cache") == 0) {
            prefix_cache = true;
        } else {
            qps = std::atof(argv[i]);
        }
    }
    if (prefix_cache) {
        return runPrefixCacheStudy(qps);
    }
    std::printf("online chat serving: Yi-6B on 1x A100, %.1f "
                "queries/second, 400 requests\n\n",
                qps);

    const perf::BackendKind kinds[] = {
        perf::BackendKind::kFa2Paged,
        perf::BackendKind::kFa2VAttention,
    };

    Table table({"backend", "median s", "p90 s", "p99 s", "TTFT p50 s",
                 "peak batch"});
    for (auto kind : kinds) {
        serving::EngineConfig config;
        config.model = perf::ModelSpec::yi6B();
        config.gpu = perf::GpuSpec::a100();
        config.tp = 1;
        config.backend = kind;
        config.scheduler.max_num_seqs = 256;
        config.scheduler.max_batched_tokens = 8192;
        config.vattn.max_batch_size = 256;
        serving::Engine engine(config);

        auto trace = serving::openChatTrace(400, 5);
        serving::assignPoissonArrivals(trace, qps, 21);
        const auto report = engine.run(std::move(trace));
        table.addRow({
            toString(kind),
            Table::num(report.latency_s.median(), 2),
            Table::num(report.latency_s.quantile(0.9), 2),
            Table::num(report.latency_s.p99(), 2),
            Table::num(report.ttft_s.median(), 2),
            Table::integer(report.peak_batch),
        });
    }
    table.print("end-to-end request latency");

    // Page-group size study at the same load (vAttention only).
    Table pg_table({"page-group", "median s", "peak batch",
                    "KV waste/req"});
    for (PageGroup group : kAllPageGroups) {
        serving::EngineConfig config;
        config.model = perf::ModelSpec::yi6B();
        config.tp = 1;
        config.backend = perf::BackendKind::kFa2VAttention;
        config.vattn.page_group = group;
        config.scheduler.max_batched_tokens = 8192;
        serving::Engine engine(config);

        auto trace = serving::openChatTrace(400, 5);
        serving::assignPoissonArrivals(trace, qps, 21);
        const auto report = engine.run(std::move(trace));

        core::Config kv_config;
        kv_config.num_layers = config.model.num_layers;
        kv_config.num_kv_heads = config.model.num_kv_heads;
        kv_config.head_dim = config.model.head_dim;
        kv_config.max_batch_size = 1;
        kv_config.max_context_len = config.model.max_context_len;
        kv_config.page_group = group;
        kv_config.use_driver_extension = group != PageGroup::k2MB;
        core::KvGeometry geom(kv_config);
        pg_table.addRow({
            toString(group),
            Table::num(report.latency_s.median(), 2),
            Table::integer(report.peak_batch),
            Table::num(static_cast<double>(
                           geom.wasteBytesForTokens(3600)) /
                           1e6,
                       1) + " MB",
        });
    }
    pg_table.print("vAttention page-group size at the same load "
                   "(waste shown for a typical 3.6K-token request)");
    return 0;
}
