/**
 * @file
 * Online chat serving — continuous batching under Poisson arrivals
 * (the §7.4 scenario at chat scale). Shows how vAttention's faster
 * prefill shortens queueing delays near capacity, and how the
 * page-group size trades fragmentation against allocation granularity
 * for the achievable batch size.
 *
 * Build & run:  ./build/examples/online_chat [qps]
 */

#include <cstdio>
#include <cstdlib>

#include "common/table.hh"
#include "serving/engine.hh"

using namespace vattn;

int
main(int argc, char **argv)
{
    const double qps = argc > 1 ? std::atof(argv[1]) : 6.0;
    std::printf("online chat serving: Yi-6B on 1x A100, %.1f "
                "queries/second, 400 requests\n\n",
                qps);

    const perf::BackendKind kinds[] = {
        perf::BackendKind::kFa2Paged,
        perf::BackendKind::kFa2VAttention,
    };

    Table table({"backend", "median s", "p90 s", "p99 s", "TTFT p50 s",
                 "peak batch"});
    for (auto kind : kinds) {
        serving::EngineConfig config;
        config.model = perf::ModelSpec::yi6B();
        config.gpu = perf::GpuSpec::a100();
        config.tp = 1;
        config.backend = kind;
        config.scheduler.max_num_seqs = 256;
        config.scheduler.max_batched_tokens = 8192;
        config.vattn.max_batch_size = 256;
        serving::Engine engine(config);

        auto trace = serving::openChatTrace(400, 5);
        serving::assignPoissonArrivals(trace, qps, 21);
        const auto report = engine.run(std::move(trace));
        table.addRow({
            toString(kind),
            Table::num(report.latency_s.median(), 2),
            Table::num(report.latency_s.quantile(0.9), 2),
            Table::num(report.latency_s.p99(), 2),
            Table::num(report.ttft_s.median(), 2),
            Table::integer(report.peak_batch),
        });
    }
    table.print("end-to-end request latency");

    // Page-group size study at the same load (vAttention only).
    Table pg_table({"page-group", "median s", "peak batch",
                    "KV waste/req"});
    for (PageGroup group : kAllPageGroups) {
        serving::EngineConfig config;
        config.model = perf::ModelSpec::yi6B();
        config.tp = 1;
        config.backend = perf::BackendKind::kFa2VAttention;
        config.vattn.page_group = group;
        config.scheduler.max_batched_tokens = 8192;
        serving::Engine engine(config);

        auto trace = serving::openChatTrace(400, 5);
        serving::assignPoissonArrivals(trace, qps, 21);
        const auto report = engine.run(std::move(trace));

        core::Config kv_config;
        kv_config.num_layers = config.model.num_layers;
        kv_config.num_kv_heads = config.model.num_kv_heads;
        kv_config.head_dim = config.model.head_dim;
        kv_config.max_batch_size = 1;
        kv_config.max_context_len = config.model.max_context_len;
        kv_config.page_group = group;
        kv_config.use_driver_extension = group != PageGroup::k2MB;
        core::KvGeometry geom(kv_config);
        pg_table.addRow({
            toString(group),
            Table::num(report.latency_s.median(), 2),
            Table::integer(report.peak_batch),
            Table::num(static_cast<double>(
                           geom.wasteBytesForTokens(3600)) /
                           1e6,
                       1) + " MB",
        });
    }
    pg_table.print("vAttention page-group size at the same load "
                   "(waste shown for a typical 3.6K-token request)");
    return 0;
}
