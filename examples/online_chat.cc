/**
 * @file
 * Online chat serving — continuous batching under Poisson arrivals
 * (the §7.4 scenario at chat scale). Shows how vAttention's faster
 * prefill shortens queueing delays near capacity, and how the
 * page-group size trades fragmentation against allocation granularity
 * for the achievable batch size.
 *
 * Build & run:  ./build/examples/online_chat [qps] [--prefix-cache]
 *                   [--preemption-mode=recompute|swap|auto]
 *
 * --prefix-cache switches to a multi-tenant shared-system-prompt
 * trace (real token ids) and enables §8.1 prefix caching on both
 * backends, printing hit-rate and prefill-savings stats.
 *
 * --preemption-mode picks what happens to preemption victims under
 * memory pressure: vLLM-style recomputation (default), swapping KV to
 * a host-memory tier, or the cost-model-driven auto policy. Raise qps
 * to actually create pressure; swap traffic is reported per backend.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/table.hh"
#include "serving/engine.hh"

using namespace vattn;

namespace
{

serving::PreemptionPolicy g_policy =
    serving::PreemptionPolicy::kRecompute;

/** One-line swap summary; silent when the tier saw no traffic. */
void
maybePrintSwapStats(const serving::RunReport &report,
                    const char *label)
{
    if (report.swap_outs == 0 && report.dropped_requests == 0) {
        return;
    }
    std::printf("%s swap tier: %llu out / %llu in, %.2f GB moved, "
                "%.1f ms stalled, %llu preemptions, %lld dropped\n",
                label,
                static_cast<unsigned long long>(report.swap_outs),
                static_cast<unsigned long long>(report.swap_ins),
                static_cast<double>(report.swap_out_bytes +
                                    report.swap_in_bytes) /
                    1e9,
                static_cast<double>(report.swap_stall_ns) / 1e6,
                static_cast<unsigned long long>(report.preemptions),
                static_cast<long long>(report.dropped_requests));
}

int
runPrefixCacheStudy(double qps)
{
    std::printf("online chat with shared system prompts: Yi-6B on 1x "
                "A100, %.1f queries/second, 400 requests, 8 tenants x "
                "4K-token system prompt\n\n",
                qps);
    const perf::BackendKind kinds[] = {
        perf::BackendKind::kFa2Paged,
        perf::BackendKind::kFa2VAttention,
    };
    Table table({"backend", "median s", "TTFT p50 s", "hit rate",
                 "prefill saved", "peak batch"});
    for (auto kind : kinds) {
        serving::EngineConfig config;
        config.model = perf::ModelSpec::yi6B();
        config.gpu = perf::GpuSpec::a100();
        config.tp_degree = 1;
        config.backend = kind;
        config.scheduler.max_num_seqs = 256;
        config.scheduler.max_batched_tokens = 8192;
        config.vattn.max_batch_size = 256;
        config.enable_prefix_caching = true;
        config.preemption_policy = g_policy;
        serving::Engine engine(config);

        auto trace = serving::sharedSystemPromptTrace(
            400, /*tenants=*/8, /*system_tokens=*/4096,
            /*user_mean=*/256, /*seed=*/5);
        serving::assignPoissonArrivals(trace, qps, 21);
        const auto report = engine.run(std::move(trace));
        maybePrintSwapStats(report, toString(kind));
        table.addRow({
            toString(kind),
            Table::num(report.latency_s.median(), 2),
            Table::num(report.ttft_s.median(), 2),
            Table::num(100.0 * report.prefixHitRate(), 1) + "%",
            Table::num(100.0 * report.prefillSavedFraction(), 1) + "%",
            Table::integer(report.peak_batch),
        });
    }
    table.print("prefix caching on (both backends)");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    double qps = 6.0;
    bool prefix_cache = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--prefix-cache") == 0) {
            prefix_cache = true;
        } else if (std::strncmp(argv[i], "--preemption-mode=", 18) ==
                   0) {
            const char *mode = argv[i] + 18;
            if (std::strcmp(mode, "recompute") == 0) {
                g_policy = serving::PreemptionPolicy::kRecompute;
            } else if (std::strcmp(mode, "swap") == 0) {
                g_policy = serving::PreemptionPolicy::kSwap;
            } else if (std::strcmp(mode, "auto") == 0) {
                g_policy = serving::PreemptionPolicy::kAuto;
            } else {
                std::fprintf(stderr,
                             "unknown --preemption-mode '%s' (want "
                             "recompute|swap|auto)\n",
                             mode);
                return 1;
            }
        } else {
            qps = std::atof(argv[i]);
        }
    }
    std::printf("preemption mode: %s\n\n", toString(g_policy));
    if (prefix_cache) {
        return runPrefixCacheStudy(qps);
    }
    std::printf("online chat serving: Yi-6B on 1x A100, %.1f "
                "queries/second, 400 requests\n\n",
                qps);

    const perf::BackendKind kinds[] = {
        perf::BackendKind::kFa2Paged,
        perf::BackendKind::kFa2VAttention,
    };

    Table table({"backend", "median s", "p90 s", "p99 s", "TTFT p50 s",
                 "peak batch"});
    for (auto kind : kinds) {
        serving::EngineConfig config;
        config.model = perf::ModelSpec::yi6B();
        config.gpu = perf::GpuSpec::a100();
        config.tp_degree = 1;
        config.backend = kind;
        config.scheduler.max_num_seqs = 256;
        config.scheduler.max_batched_tokens = 8192;
        config.vattn.max_batch_size = 256;
        config.preemption_policy = g_policy;
        serving::Engine engine(config);

        auto trace = serving::openChatTrace(400, 5);
        serving::assignPoissonArrivals(trace, qps, 21);
        const auto report = engine.run(std::move(trace));
        maybePrintSwapStats(report, toString(kind));
        table.addRow({
            toString(kind),
            Table::num(report.latency_s.median(), 2),
            Table::num(report.latency_s.quantile(0.9), 2),
            Table::num(report.latency_s.p99(), 2),
            Table::num(report.ttft_s.median(), 2),
            Table::integer(report.peak_batch),
        });
    }
    table.print("end-to-end request latency");

    // Page-group size study at the same load (vAttention only).
    Table pg_table({"page-group", "median s", "peak batch",
                    "KV waste/req"});
    for (PageGroup group : kAllPageGroups) {
        serving::EngineConfig config;
        config.model = perf::ModelSpec::yi6B();
        config.tp_degree = 1;
        config.backend = perf::BackendKind::kFa2VAttention;
        config.vattn.page_group = group;
        config.scheduler.max_batched_tokens = 8192;
        config.preemption_policy = g_policy;
        serving::Engine engine(config);

        auto trace = serving::openChatTrace(400, 5);
        serving::assignPoissonArrivals(trace, qps, 21);
        const auto report = engine.run(std::move(trace));

        core::Config kv_config;
        kv_config.num_layers = config.model.num_layers;
        kv_config.num_kv_heads = config.model.num_kv_heads;
        kv_config.head_dim = config.model.head_dim;
        kv_config.max_batch_size = 1;
        kv_config.max_context_len = config.model.max_context_len;
        kv_config.page_group = group;
        kv_config.use_driver_extension = group != PageGroup::k2MB;
        core::KvGeometry geom(kv_config);
        pg_table.addRow({
            toString(group),
            Table::num(report.latency_s.median(), 2),
            Table::integer(report.peak_batch),
            Table::num(static_cast<double>(
                           geom.wasteBytesForTokens(3600)) /
                           1e6,
                       1) + " MB",
        });
    }
    pg_table.print("vAttention page-group size at the same load "
                   "(waste shown for a typical 3.6K-token request)");
    return 0;
}
