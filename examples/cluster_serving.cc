/**
 * @file
 * Multi-replica serving — a ServingCluster spreads an online chat
 * trace over several Engine replicas through the load-balancing
 * router. Demonstrates the three routing policies on a deliberately
 * skewed fleet (one replica has a third of the KV budget), where
 * KV-pressure-aware routing shines.
 *
 * Build & run:  ./build/examples/cluster_serving [replicas] [qps]
 */

#include <cstdio>
#include <cstdlib>

#include "common/table.hh"
#include "serving/cluster.hh"

using namespace vattn;

int
main(int argc, char **argv)
{
    const int replicas = argc > 1 ? std::atoi(argv[1]) : 4;
    const double qps = argc > 2 ? std::atof(argv[2]) : 6.0 * replicas;
    std::printf("cluster serving: %d Yi-6B replicas on A100s, %.1f "
                "queries/second, 400 requests\n"
                "replica 0 is degraded to an 8 GiB KV budget "
                "(skewed fleet)\n\n",
                replicas, qps);

    serving::EngineConfig engine;
    engine.model = perf::ModelSpec::yi6B();
    engine.gpu = perf::GpuSpec::a100();
    engine.tp_degree = 1;
    engine.backend = perf::BackendKind::kFa2VAttention;
    engine.scheduler.max_num_seqs = 256;
    engine.scheduler.max_batched_tokens = 8192;
    engine.vattn.max_batch_size = 256;

    Table table({"policy", "TTFT p50 s", "TTFT p99 s", "median s",
                 "p99 s", "req imbalance", "jain"});
    for (serving::RoutingPolicy policy : serving::kAllRoutingPolicies) {
        auto config =
            serving::ServingCluster::uniform(engine, replicas, policy);
        // Replica skew: the first replica lost most of its KV pool
        // (e.g. co-located tenant); load-aware policies route around.
        config.replicas[0].kv_budget_override = 8 * GiB;
        serving::ServingCluster cluster(std::move(config));

        auto trace = serving::openChatTrace(400, 5);
        serving::assignPoissonArrivals(trace, qps, 21);
        const auto report = cluster.run(std::move(trace));
        table.addRow({
            toString(policy),
            Table::num(report.merged.ttft_s.median(), 2),
            Table::num(report.merged.ttft_s.p99(), 2),
            Table::num(report.merged.latency_s.median(), 2),
            Table::num(report.merged.latency_s.p99(), 2),
            Table::num(report.request_imbalance, 2),
            Table::num(report.jain_fairness, 3),
        });
    }
    table.print("routing policy comparison on the skewed fleet");

    // Per-replica breakdown on an un-skewed fleet for comparison.
    serving::ServingCluster cluster(serving::ServingCluster::uniform(
        engine, replicas, serving::RoutingPolicy::kLeastKvPressure));
    auto trace = serving::openChatTrace(400, 5);
    serving::assignPoissonArrivals(trace, qps, 21);
    const auto report = cluster.run(std::move(trace));
    Table per_replica({"replica", "requests", "decode tok/s",
                       "peak batch", "busy s"});
    for (int r = 0; r < cluster.numReplicas(); ++r) {
        const auto &replica =
            report.replicas[static_cast<std::size_t>(r)];
        per_replica.addRow({
            std::to_string(r),
            Table::integer(replica.num_requests),
            Table::num(replica.decodeTokensPerSecond(), 0),
            Table::integer(replica.peak_batch),
            Table::num(SimClock::toSeconds(replica.busy_ns), 1),
        });
    }
    per_replica.print("per-replica breakdown (least_kv_pressure, "
                      "uniform fleet)");
    return 0;
}
