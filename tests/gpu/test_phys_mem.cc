#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "gpu/phys_mem.hh"
#include "test_util.hh"

namespace vattn::gpu
{
namespace
{

TEST(PhysicalMemory, UntouchedReadsZero)
{
    PhysicalMemory mem(1 * MiB);
    std::vector<u8> buf(256, 0xff);
    mem.read(4096, buf.data(), buf.size());
    for (u8 b : buf) {
        EXPECT_EQ(b, 0);
    }
    EXPECT_EQ(mem.touchedBytes(), 0u);
}

TEST(PhysicalMemory, WriteReadRoundtrip)
{
    PhysicalMemory mem(1 * MiB);
    const char msg[] = "hello kv cache";
    mem.write(1000, msg, sizeof(msg));
    char out[sizeof(msg)] = {};
    mem.read(1000, out, sizeof(msg));
    EXPECT_STREQ(out, msg);
}

TEST(PhysicalMemory, CrossesChunkBoundaries)
{
    PhysicalMemory mem(1 * MiB);
    const u64 boundary = PhysicalMemory::kChunkBytes;
    std::vector<u8> data(512);
    for (std::size_t i = 0; i < data.size(); ++i) {
        data[i] = static_cast<u8>(i & 0xff);
    }
    mem.write(boundary - 256, data.data(), data.size());
    std::vector<u8> out(512, 0);
    mem.read(boundary - 256, out.data(), out.size());
    EXPECT_EQ(out, data);
    EXPECT_EQ(mem.touchedBytes(), 2 * PhysicalMemory::kChunkBytes);
}

TEST(PhysicalMemory, SparseBackingIsLazy)
{
    PhysicalMemory mem(64 * GiB); // way more than host RAM
    const u64 far = 48 * GiB;
    const u32 value = 0xdeadbeef;
    mem.write(far, &value, sizeof(value));
    u32 out = 0;
    mem.read(far, &out, sizeof(out));
    EXPECT_EQ(out, value);
    // Only one chunk committed despite the 64GB capacity.
    EXPECT_EQ(mem.touchedBytes(), PhysicalMemory::kChunkBytes);
}

TEST(PhysicalMemory, Fill)
{
    PhysicalMemory mem(1 * MiB);
    mem.fill(100, 0xab, 300);
    std::vector<u8> out(302, 0);
    mem.read(99, out.data(), out.size());
    EXPECT_EQ(out[0], 0);
    for (int i = 1; i <= 300; ++i) {
        EXPECT_EQ(out[static_cast<std::size_t>(i)], 0xab);
    }
    EXPECT_EQ(out[301], 0);
}

TEST(PhysicalMemory, OutOfRangeAccessPanics)
{
    test::ScopedThrowErrors guard;
    PhysicalMemory mem(4096);
    u8 byte = 0;
    EXPECT_THROW(mem.read(4096, &byte, 1), SimError);
    EXPECT_THROW(mem.write(4000, &byte, 200), SimError);
    EXPECT_NO_THROW(mem.read(4095, &byte, 1));
}

} // namespace
} // namespace vattn::gpu
