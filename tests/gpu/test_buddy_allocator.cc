#include <map>

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "gpu/buddy_allocator.hh"

namespace vattn::gpu
{
namespace
{

TEST(Buddy, AllocationsAreAlignedAndDisjoint)
{
    BuddyAllocator buddy(1 * MiB, 4 * KiB, 256 * KiB);
    std::map<PhysAddr, u64> live;
    for (u64 size : {4 * KiB, 64 * KiB, 8 * KiB, 128 * KiB, 4 * KiB}) {
        auto r = buddy.alloc(size);
        ASSERT_TRUE(r.isOk()) << size;
        EXPECT_EQ(r.value() % size, 0u) << "natural alignment";
        for (const auto &[addr, len] : live) {
            const bool disjoint =
                r.value() + size <= addr || addr + len <= r.value();
            EXPECT_TRUE(disjoint);
        }
        live[r.value()] = size;
    }
    EXPECT_TRUE(buddy.checkInvariants());
}

TEST(Buddy, RoundsUpToPow2)
{
    BuddyAllocator buddy(1 * MiB);
    auto r = buddy.alloc(5 * KiB); // -> 8KB block
    ASSERT_TRUE(r.isOk());
    EXPECT_EQ(buddy.allocatedBytes(), 8 * KiB);
    EXPECT_TRUE(buddy.free(r.value(), 5 * KiB).isOk());
    EXPECT_EQ(buddy.allocatedBytes(), 0u);
}

TEST(Buddy, ExhaustionAndRecovery)
{
    BuddyAllocator buddy(256 * KiB, 4 * KiB, 256 * KiB);
    std::vector<PhysAddr> blocks;
    for (int i = 0; i < 64; ++i) {
        auto r = buddy.alloc(4 * KiB);
        ASSERT_TRUE(r.isOk());
        blocks.push_back(r.value());
    }
    EXPECT_EQ(buddy.freeBytes(), 0u);
    EXPECT_EQ(buddy.alloc(4 * KiB).code(), ErrorCode::kOutOfMemory);
    for (PhysAddr addr : blocks) {
        EXPECT_TRUE(buddy.free(addr, 4 * KiB).isOk());
    }
    EXPECT_EQ(buddy.freeBytes(), 256 * KiB);
    // Full coalescing: the whole pool is one max-order block again.
    EXPECT_EQ(buddy.largestFreeBlock(), 256 * KiB);
}

TEST(Buddy, CoalescingMergesBuddies)
{
    BuddyAllocator buddy(128 * KiB, 4 * KiB, 128 * KiB);
    auto a = buddy.alloc(64 * KiB);
    auto b = buddy.alloc(64 * KiB);
    ASSERT_TRUE(a.isOk());
    ASSERT_TRUE(b.isOk());
    EXPECT_EQ(buddy.largestFreeBlock(), 0u);
    EXPECT_TRUE(buddy.free(a.value(), 64 * KiB).isOk());
    EXPECT_EQ(buddy.largestFreeBlock(), 64 * KiB);
    EXPECT_TRUE(buddy.free(b.value(), 64 * KiB).isOk());
    EXPECT_EQ(buddy.largestFreeBlock(), 128 * KiB);
}

TEST(Buddy, DoubleFreeRejected)
{
    BuddyAllocator buddy(64 * KiB, 4 * KiB, 64 * KiB);
    auto r = buddy.alloc(4 * KiB);
    ASSERT_TRUE(r.isOk());
    EXPECT_TRUE(buddy.free(r.value(), 4 * KiB).isOk());
    // Detected even after the freed block coalesced with buddies.
    EXPECT_EQ(buddy.free(r.value(), 4 * KiB).code(),
              ErrorCode::kAlreadyExists);
}

TEST(Buddy, WrongSizeFreeRejected)
{
    BuddyAllocator buddy(1 * MiB);
    auto r = buddy.alloc(64 * KiB);
    ASSERT_TRUE(r.isOk());
    EXPECT_EQ(buddy.free(r.value(), 8 * KiB).code(),
              ErrorCode::kInvalidArgument);
    EXPECT_EQ(buddy.allocatedBytes(), 64 * KiB); // untouched
    EXPECT_TRUE(buddy.free(r.value(), 64 * KiB).isOk());
}

TEST(Buddy, BadFreeRejected)
{
    BuddyAllocator buddy(64 * KiB, 4 * KiB, 64 * KiB);
    EXPECT_FALSE(buddy.free(12345, 4 * KiB).isOk()); // unaligned
    EXPECT_FALSE(buddy.free(0, 0).isOk());
    EXPECT_FALSE(buddy.free(0, 128 * KiB).isOk()); // beyond max block
}

TEST(Buddy, OversizedRequestRejected)
{
    BuddyAllocator buddy(1 * MiB, 4 * KiB, 64 * KiB);
    EXPECT_EQ(buddy.alloc(128 * KiB).code(),
              ErrorCode::kInvalidArgument);
    EXPECT_EQ(buddy.alloc(0).code(), ErrorCode::kInvalidArgument);
}

TEST(Buddy, NonPow2CapacitySeeded)
{
    // 320KB = 256 + 64: seeded as two top blocks.
    BuddyAllocator buddy(320 * KiB, 4 * KiB, 256 * KiB);
    EXPECT_EQ(buddy.freeBytes(), 320 * KiB);
    auto a = buddy.alloc(256 * KiB);
    ASSERT_TRUE(a.isOk());
    auto b = buddy.alloc(64 * KiB);
    ASSERT_TRUE(b.isOk());
    EXPECT_EQ(buddy.freeBytes(), 0u);
    EXPECT_TRUE(buddy.checkInvariants());
}

/** Property sweep: random alloc/free traffic conserves bytes and keeps
 *  the free lists consistent, for several page-group sizes. */
class BuddyPropertyTest : public ::testing::TestWithParam<u64>
{
};

TEST_P(BuddyPropertyTest, RandomTrafficConservesMemory)
{
    const u64 block = GetParam();
    BuddyAllocator buddy(64 * MiB, 4 * KiB, 32 * MiB);
    Rng rng(0xfeed + block);
    std::vector<std::pair<PhysAddr, u64>> live;
    u64 live_bytes = 0;

    for (int step = 0; step < 3000; ++step) {
        const bool do_alloc = live.empty() || rng.uniform() < 0.55;
        if (do_alloc) {
            auto r = buddy.alloc(block);
            if (r.isOk()) {
                live.emplace_back(r.value(), block);
                live_bytes += block;
            } else {
                EXPECT_EQ(r.code(), ErrorCode::kOutOfMemory);
            }
        } else {
            const auto pick = static_cast<std::size_t>(rng.uniformInt(
                0, static_cast<i64>(live.size()) - 1));
            EXPECT_TRUE(
                buddy.free(live[pick].first, live[pick].second).isOk());
            live_bytes -= live[pick].second;
            live.erase(live.begin() + static_cast<long>(pick));
        }
        ASSERT_EQ(buddy.allocatedBytes(), live_bytes);
    }
    EXPECT_TRUE(buddy.checkInvariants());
    for (const auto &[addr, size] : live) {
        EXPECT_TRUE(buddy.free(addr, size).isOk());
    }
    EXPECT_EQ(buddy.allocatedBytes(), 0u);
    EXPECT_EQ(buddy.largestFreeBlock(), 32 * MiB);
}

INSTANTIATE_TEST_SUITE_P(PageGroupSizes, BuddyPropertyTest,
                         ::testing::Values(64 * KiB, 128 * KiB,
                                           256 * KiB, 2 * MiB));

} // namespace
} // namespace vattn::gpu
