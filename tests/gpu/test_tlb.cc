#include <gtest/gtest.h>

#include "gpu/tlb.hh"

namespace vattn::gpu
{
namespace
{

TEST(TlbLevel, HitAfterFill)
{
    TlbLevel level(16, 4);
    EXPECT_FALSE(level.access(42)); // cold miss + fill
    EXPECT_TRUE(level.access(42));
    EXPECT_EQ(level.stats().hits, 1u);
    EXPECT_EQ(level.stats().misses, 1u);
}

TEST(TlbLevel, LruEvictionWithinSet)
{
    // 4 entries, 4-way => a single fully-associative set.
    TlbLevel level(4, 4);
    for (Addr key = 0; key < 4; ++key) {
        level.access(key);
    }
    for (Addr key = 0; key < 4; ++key) {
        EXPECT_TRUE(level.access(key));
    }
    level.access(100); // evicts LRU = key 0
    EXPECT_FALSE(level.access(0));
    EXPECT_TRUE(level.access(100));
}

TEST(TlbLevel, Flush)
{
    TlbLevel level(8, 2);
    level.access(1);
    level.flush();
    EXPECT_FALSE(level.access(1));
}

TEST(Tlb, SequentialWithinOnePageMostlyHits)
{
    Tlb tlb;
    // 1000 accesses within one 64KB page: 1 cold miss, 999 hits.
    for (int i = 0; i < 1000; ++i) {
        tlb.access(0x100000 + static_cast<Addr>(i) * 64,
                   PageSize::k64KB);
    }
    EXPECT_EQ(tlb.l1Stats(PageSize::k64KB).misses, 1u);
    EXPECT_EQ(tlb.l1Stats(PageSize::k64KB).hits, 999u);
    EXPECT_EQ(tlb.pageWalks(), 1u);
}

TEST(Tlb, PageSizeClassesAreIndependent)
{
    Tlb tlb;
    tlb.access(0x0, PageSize::k64KB);
    tlb.access(0x0, PageSize::k2MB);
    EXPECT_EQ(tlb.l1Stats(PageSize::k64KB).misses, 1u);
    EXPECT_EQ(tlb.l2Stats(PageSize::k2MB).misses, 1u);
    EXPECT_EQ(tlb.pageWalks(), 2u);
    // Second touch of each hits independently.
    EXPECT_EQ(tlb.access(0x0, PageSize::k64KB), 1);
    EXPECT_EQ(tlb.access(0x0, PageSize::k2MB), 1);
}

TEST(Tlb, L2CatchesL1Evictions)
{
    Tlb::Config config;
    config.l1_entries = 4;
    config.l1_assoc = 4;
    config.l2_entries = 256;
    config.l2_assoc = 16;
    Tlb tlb(config);
    // Touch 8 pages: all L1-capacity-miss on second pass but L2 holds
    // them.
    for (Addr p = 0; p < 8; ++p) {
        EXPECT_EQ(tlb.access(p * 64 * KiB, PageSize::k64KB), 0);
    }
    u64 walks_before = tlb.pageWalks();
    for (Addr p = 0; p < 8; ++p) {
        const int level = tlb.access(p * 64 * KiB, PageSize::k64KB);
        EXPECT_GE(level, 1); // never a full walk
    }
    EXPECT_EQ(tlb.pageWalks(), walks_before);
}

TEST(Tlb, CoverageAdvantageOfLargePages)
{
    // The §7.6.3 question, distilled: streaming over a 64MB region,
    // how many walks does each page size take? 2MB pages cover the
    // stream with 32 entries; 64KB pages need 1024 (cold) misses but
    // still no *re*-misses within the stream.
    Tlb tlb;
    const u64 span = 64 * MiB;
    for (Addr addr = 0; addr < span; addr += 32 * KiB) {
        tlb.access(addr, PageSize::k64KB);
    }
    const u64 small_walks = tlb.pageWalks();
    EXPECT_EQ(small_walks, span / (64 * KiB)); // compulsory only

    Tlb tlb2;
    for (Addr addr = 0; addr < span; addr += 32 * KiB) {
        tlb2.access(addr, PageSize::k2MB);
    }
    EXPECT_EQ(tlb2.pageWalks(), span / (2 * MiB));
    EXPECT_GT(small_walks, tlb2.pageWalks());
}

TEST(Tlb, ResetStats)
{
    Tlb tlb;
    tlb.access(0, PageSize::k4KB);
    tlb.resetStats();
    EXPECT_EQ(tlb.pageWalks(), 0u);
    EXPECT_EQ(tlb.l1Stats(PageSize::k4KB).accesses(), 0u);
}

TEST(TlbStats, MissRate)
{
    TlbStats stats;
    EXPECT_EQ(stats.missRate(), 0.0);
    stats.hits = 3;
    stats.misses = 1;
    EXPECT_DOUBLE_EQ(stats.missRate(), 0.25);
}

} // namespace
} // namespace vattn::gpu
