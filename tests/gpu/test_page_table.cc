#include <gtest/gtest.h>

#include "gpu/page_table.hh"

namespace vattn::gpu
{
namespace
{

constexpr Addr kVa = 0x10'0000'0000ULL;

TEST(PageTable, MapTranslateUnmap)
{
    PageTable table;
    ASSERT_TRUE(table
                    .map(kVa, 0x10000, 64 * KiB, PageSize::k64KB,
                         Access::kReadWrite)
                    .isOk());
    auto t = table.translate(kVa + 100);
    ASSERT_TRUE(t.isOk());
    EXPECT_EQ(t.value().phys, 0x10000u + 100);
    EXPECT_EQ(t.value().page, PageSize::k64KB);
    EXPECT_EQ(t.value().access, Access::kReadWrite);
    EXPECT_EQ(t.value().extent_start, kVa);
    EXPECT_EQ(t.value().extent_end, kVa + 64 * KiB);

    ASSERT_TRUE(table.unmap(kVa, 64 * KiB).isOk());
    EXPECT_FALSE(table.translate(kVa).isOk());
}

TEST(PageTable, AlignmentEnforced)
{
    PageTable table;
    EXPECT_FALSE(table
                     .map(kVa + 1, 0, 64 * KiB, PageSize::k64KB,
                          Access::kReadWrite)
                     .isOk());
    EXPECT_FALSE(table
                     .map(kVa, 4096, 64 * KiB, PageSize::k64KB,
                          Access::kReadWrite)
                     .isOk()); // phys unaligned
    EXPECT_FALSE(table
                     .map(kVa, 0, 60 * KiB, PageSize::k64KB,
                          Access::kReadWrite)
                     .isOk()); // size not multiple
}

TEST(PageTable, DoubleMapRejected)
{
    PageTable table;
    ASSERT_TRUE(table
                    .map(kVa, 0, 2 * MiB, PageSize::k2MB,
                         Access::kReadWrite)
                    .isOk());
    EXPECT_EQ(table
                  .map(kVa + 64 * KiB, 0, 64 * KiB, PageSize::k64KB,
                       Access::kReadWrite)
                  .code(),
              ErrorCode::kAlreadyExists);
}

TEST(PageTable, CudaMapThenSetAccessSemantics)
{
    // cuMemMap leaves the range inaccessible until cuMemSetAccess.
    PageTable table;
    ASSERT_TRUE(
        table.map(kVa, 0, 2 * MiB, PageSize::k2MB, Access::kNone)
            .isOk());
    EXPECT_FALSE(table.isAccessible(kVa, 2 * MiB));
    auto t = table.translate(kVa);
    ASSERT_TRUE(t.isOk());
    EXPECT_EQ(t.value().access, Access::kNone);

    ASSERT_TRUE(
        table.setAccess(kVa, 2 * MiB, Access::kReadWrite).isOk());
    EXPECT_TRUE(table.isAccessible(kVa, 2 * MiB));
}

TEST(PageTable, SetAccessRequiresWholeExtents)
{
    PageTable table;
    ASSERT_TRUE(
        table.map(kVa, 0, 2 * MiB, PageSize::k2MB, Access::kNone)
            .isOk());
    // Partial extent.
    EXPECT_FALSE(
        table.setAccess(kVa, 1 * MiB, Access::kReadWrite).isOk());
    // Range with a gap.
    EXPECT_FALSE(
        table.setAccess(kVa, 4 * MiB, Access::kReadWrite).isOk());
}

TEST(PageTable, UnmapRequiresExactExtentDecomposition)
{
    PageTable table;
    ASSERT_TRUE(table
                    .map(kVa, 0, 64 * KiB, PageSize::k64KB,
                         Access::kReadWrite)
                    .isOk());
    ASSERT_TRUE(table
                    .map(kVa + 64 * KiB, 64 * KiB, 64 * KiB,
                         PageSize::k64KB, Access::kReadWrite)
                    .isOk());
    // Partial unmap of one extent: rejected.
    EXPECT_FALSE(table.unmap(kVa, 32 * KiB).isOk());
    // Unmap spanning both extents exactly: fine.
    EXPECT_TRUE(table.unmap(kVa, 128 * KiB).isOk());
    EXPECT_EQ(table.numExtents(), 0u);
}

TEST(PageTable, UnmapWithGapRejectedAtomically)
{
    PageTable table;
    ASSERT_TRUE(table
                    .map(kVa, 0, 64 * KiB, PageSize::k64KB,
                         Access::kReadWrite)
                    .isOk());
    ASSERT_TRUE(table
                    .map(kVa + 128 * KiB, 64 * KiB, 64 * KiB,
                         PageSize::k64KB, Access::kReadWrite)
                    .isOk());
    EXPECT_FALSE(table.unmap(kVa, 192 * KiB).isOk());
    // Nothing was removed.
    EXPECT_EQ(table.numExtents(), 2u);
    EXPECT_TRUE(table.translate(kVa).isOk());
    EXPECT_TRUE(table.translate(kVa + 128 * KiB).isOk());
}

TEST(PageTable, MixedPageSizes)
{
    PageTable table;
    ASSERT_TRUE(table
                    .map(kVa, 0, 2 * MiB, PageSize::k2MB,
                         Access::kReadWrite)
                    .isOk());
    ASSERT_TRUE(table
                    .map(kVa + 2 * MiB, 2 * MiB, 64 * KiB,
                         PageSize::k64KB, Access::kReadWrite)
                    .isOk());
    EXPECT_EQ(table.translate(kVa).value().page, PageSize::k2MB);
    EXPECT_EQ(table.translate(kVa + 2 * MiB).value().page,
              PageSize::k64KB);
    EXPECT_EQ(table.mappedBytes(), 2 * MiB + 64 * KiB);
}

TEST(PageTable, TranslationOffsetsWithinExtent)
{
    PageTable table;
    ASSERT_TRUE(table
                    .map(kVa, 0x100000, 256 * KiB, PageSize::k64KB,
                         Access::kReadWrite)
                    .isOk());
    const u64 offsets[] = {0, 1, 64 * KiB + 5, 256 * KiB - 1};
    for (u64 off : offsets) {
        auto t = table.translate(kVa + off);
        ASSERT_TRUE(t.isOk()) << off;
        EXPECT_EQ(t.value().phys, 0x100000 + off);
    }
    EXPECT_FALSE(table.translate(kVa + 256 * KiB).isOk());
}

TEST(PageTable, IsAccessibleAcrossExtents)
{
    PageTable table;
    ASSERT_TRUE(table
                    .map(kVa, 0, 64 * KiB, PageSize::k64KB,
                         Access::kReadWrite)
                    .isOk());
    ASSERT_TRUE(table
                    .map(kVa + 64 * KiB, 64 * KiB, 64 * KiB,
                         PageSize::k64KB, Access::kNone)
                    .isOk());
    EXPECT_TRUE(table.isAccessible(kVa, 64 * KiB));
    EXPECT_FALSE(table.isAccessible(kVa, 128 * KiB)); // second is kNone
    EXPECT_FALSE(table.isAccessible(kVa + 200 * KiB, 1)); // unmapped
}

} // namespace
} // namespace vattn::gpu
