#include <vector>

#include <gtest/gtest.h>

#include "gpu/device.hh"
#include "test_util.hh"

namespace vattn::gpu
{
namespace
{

GpuDevice::Config
smallConfig()
{
    GpuDevice::Config config;
    config.name = "testGPU";
    config.mem_bytes = 64 * MiB;
    return config;
}

TEST(GpuDevice, ReadWriteThroughMappedVa)
{
    GpuDevice device(smallConfig());
    auto va = device.vaSpace().reserve(2 * MiB, 2 * MiB);
    ASSERT_TRUE(va.isOk());
    auto pa = device.physAllocator().alloc(2 * MiB);
    ASSERT_TRUE(pa.isOk());
    ASSERT_TRUE(device.pageTable()
                    .map(va.value(), pa.value(), 2 * MiB,
                         PageSize::k2MB, Access::kReadWrite)
                    .isOk());

    const u64 value = 0x1122334455667788ULL;
    device.writeVa(va.value() + 1000, &value, sizeof(value));
    u64 out = 0;
    device.readVa(va.value() + 1000, &out, sizeof(out));
    EXPECT_EQ(out, value);
}

TEST(GpuDevice, AccessCrossesExtentBoundary)
{
    GpuDevice device(smallConfig());
    auto va = device.vaSpace().reserve(128 * KiB, 64 * KiB);
    ASSERT_TRUE(va.isOk());
    // Two separate 64KB extents with non-adjacent physical backing.
    auto pa1 = device.physAllocator().alloc(64 * KiB);
    auto pa2 = device.physAllocator().alloc(64 * KiB);
    ASSERT_TRUE(pa1.isOk());
    ASSERT_TRUE(pa2.isOk());
    ASSERT_TRUE(device.pageTable()
                    .map(va.value(), pa1.value(), 64 * KiB,
                         PageSize::k64KB, Access::kReadWrite)
                    .isOk());
    ASSERT_TRUE(device.pageTable()
                    .map(va.value() + 64 * KiB, pa2.value(), 64 * KiB,
                         PageSize::k64KB, Access::kReadWrite)
                    .isOk());

    // A write spanning the extent boundary must land in both frames
    // and read back seamlessly: this is virtual contiguity over
    // discontiguous physical memory, the heart of the paper.
    std::vector<u8> data(4096);
    for (std::size_t i = 0; i < data.size(); ++i) {
        data[i] = static_cast<u8>(i * 7);
    }
    const Addr start = va.value() + 64 * KiB - 2048;
    device.writeVa(start, data.data(), data.size());
    std::vector<u8> out(4096, 0);
    device.readVa(start, out.data(), out.size());
    EXPECT_EQ(out, data);
}

TEST(GpuDevice, UnmappedAccessFaults)
{
    test::ScopedThrowErrors guard;
    GpuDevice device(smallConfig());
    u8 byte = 0;
    EXPECT_THROW(device.readVa(0x10'0000'0000ULL, &byte, 1), SimError);
}

TEST(GpuDevice, MappedWithoutAccessFaults)
{
    test::ScopedThrowErrors guard;
    GpuDevice device(smallConfig());
    auto va = device.vaSpace().reserve(2 * MiB, 2 * MiB);
    auto pa = device.physAllocator().alloc(2 * MiB);
    ASSERT_TRUE(va.isOk());
    ASSERT_TRUE(pa.isOk());
    // cuMemMap without cuMemSetAccess.
    ASSERT_TRUE(device.pageTable()
                    .map(va.value(), pa.value(), 2 * MiB,
                         PageSize::k2MB, Access::kNone)
                    .isOk());
    u8 byte = 0;
    EXPECT_THROW(device.readVa(va.value(), &byte, 1), SimError);
}

TEST(GpuDevice, TranslateTouchedFeedsTlb)
{
    GpuDevice device(smallConfig());
    auto va = device.vaSpace().reserve(64 * KiB, 64 * KiB);
    auto pa = device.physAllocator().alloc(64 * KiB);
    ASSERT_TRUE(va.isOk());
    ASSERT_TRUE(pa.isOk());
    ASSERT_TRUE(device.pageTable()
                    .map(va.value(), pa.value(), 64 * KiB,
                         PageSize::k64KB, Access::kReadWrite)
                    .isOk());
    EXPECT_EQ(device.translateTouched(va.value() + 128), pa.value() + 128);
    device.translateTouched(va.value() + 256);
    EXPECT_EQ(device.tlb().l1Stats(PageSize::k64KB).accesses(), 2u);
    EXPECT_EQ(device.tlb().l1Stats(PageSize::k64KB).hits, 1u);
}

TEST(GpuDevice, FreePhysBytesTracksAllocator)
{
    GpuDevice device(smallConfig());
    EXPECT_EQ(device.freePhysBytes(), 64 * MiB);
    auto pa = device.physAllocator().alloc(2 * MiB);
    ASSERT_TRUE(pa.isOk());
    EXPECT_EQ(device.freePhysBytes(), 62 * MiB);
}

} // namespace
} // namespace vattn::gpu
