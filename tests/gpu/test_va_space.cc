#include <gtest/gtest.h>

#include "gpu/va_space.hh"

namespace vattn::gpu
{
namespace
{

TEST(VaSpace, ReserveIsAligned)
{
    VaSpace space;
    auto r = space.reserve(10 * MiB, 2 * MiB);
    ASSERT_TRUE(r.isOk());
    EXPECT_EQ(r.value() % (2 * MiB), 0u);
    EXPECT_TRUE(space.isReserved(r.value(), 10 * MiB));
    EXPECT_EQ(space.reservationSize(r.value()), 10 * MiB);
}

TEST(VaSpace, ReservationsAreDisjoint)
{
    VaSpace space;
    auto a = space.reserve(1 * MiB, 4 * KiB);
    auto b = space.reserve(1 * MiB, 4 * KiB);
    ASSERT_TRUE(a.isOk());
    ASSERT_TRUE(b.isOk());
    const bool disjoint = a.value() + 1 * MiB <= b.value() ||
                          b.value() + 1 * MiB <= a.value();
    EXPECT_TRUE(disjoint);
    EXPECT_EQ(space.reservedBytes(), 2 * MiB);
}

TEST(VaSpace, TerabyteScaleReservations)
{
    // §5.1.3: Yi-34B needs 120 buffers of 100GB each (12TB total);
    // virtual memory must shrug this off.
    VaSpace space;
    std::vector<Addr> buffers;
    for (int i = 0; i < 120; ++i) {
        auto r = space.reserve(100 * GiB, 2 * MiB);
        ASSERT_TRUE(r.isOk()) << "buffer " << i;
        buffers.push_back(r.value());
    }
    EXPECT_EQ(space.reservedBytes(), 120ull * 100 * GiB);
    for (Addr addr : buffers) {
        EXPECT_TRUE(space.release(addr).isOk());
    }
    EXPECT_EQ(space.reservedBytes(), 0u);
}

TEST(VaSpace, ReleaseCoalescesFreeSpace)
{
    VaSpace space(0x1000, 64 * KiB);
    auto a = space.reserve(16 * KiB, 4 * KiB);
    auto b = space.reserve(16 * KiB, 4 * KiB);
    auto c = space.reserve(32 * KiB, 4 * KiB);
    ASSERT_TRUE(a.isOk());
    ASSERT_TRUE(b.isOk());
    ASSERT_TRUE(c.isOk());
    EXPECT_FALSE(space.reserve(4 * KiB, 4 * KiB).isOk()); // full
    // Free middle then neighbours; the whole space must coalesce.
    ASSERT_TRUE(space.release(b.value()).isOk());
    ASSERT_TRUE(space.release(a.value()).isOk());
    ASSERT_TRUE(space.release(c.value()).isOk());
    auto whole = space.reserve(64 * KiB, 4 * KiB);
    EXPECT_TRUE(whole.isOk());
}

TEST(VaSpace, FixedAddressReservation)
{
    VaSpace space(0x10000, 1 * MiB);
    auto r = space.reserve(64 * KiB, 4 * KiB, 0x20000);
    ASSERT_TRUE(r.isOk());
    EXPECT_EQ(r.value(), 0x20000u);
    // Conflicting fixed reservation fails.
    EXPECT_FALSE(space.reserve(4 * KiB, 4 * KiB, 0x20000).isOk());
    // Around it works.
    auto before = space.reserve(64 * KiB, 4 * KiB, 0x10000);
    EXPECT_TRUE(before.isOk());
}

TEST(VaSpace, InvalidArguments)
{
    VaSpace space;
    EXPECT_EQ(space.reserve(0, 4 * KiB).code(),
              ErrorCode::kInvalidArgument);
    EXPECT_EQ(space.reserve(4 * KiB, 3).code(),
              ErrorCode::kInvalidArgument); // non-pow2 alignment
    EXPECT_EQ(space.release(0xdead).code(), ErrorCode::kNotFound);
}

TEST(VaSpace, ExhaustionReported)
{
    VaSpace space(0x1000, 16 * KiB);
    ASSERT_TRUE(space.reserve(16 * KiB, 4 * KiB).isOk());
    EXPECT_EQ(space.reserve(4 * KiB, 4 * KiB).code(),
              ErrorCode::kOutOfMemory);
}

TEST(VaSpace, IsReservedChecksWholeRange)
{
    VaSpace space;
    auto r = space.reserve(8 * KiB, 4 * KiB);
    ASSERT_TRUE(r.isOk());
    EXPECT_TRUE(space.isReserved(r.value(), 8 * KiB));
    EXPECT_TRUE(space.isReserved(r.value() + 4 * KiB, 4 * KiB));
    EXPECT_FALSE(space.isReserved(r.value(), 16 * KiB));
    EXPECT_FALSE(space.isReserved(r.value() + 8 * KiB, 1));
}

} // namespace
} // namespace vattn::gpu
