/**
 * @file
 * Build-contract smoke test: instantiates one public type from each
 * library layer so that a source file dropped from src/CMakeLists.txt
 * (or a broken inter-layer dependency) fails at link time in CI rather
 * than surfacing as a mystery in a downstream PR.
 */

#include <gtest/gtest.h>

#include "attn/kv_view.hh"
#include "core/vattention.hh"
#include "cuvmm/driver.hh"
#include "gpu/device.hh"
#include "paged/block_manager.hh"
#include "serving/engine.hh"
#include "tensor/virtual_tensor.hh"

namespace vattn
{
namespace
{

TEST(LinkSanity, EveryLayerLinks)
{
    // gpu + cuvmm: simulated device and VMM driver.
    gpu::GpuDevice::Config device_config;
    device_config.mem_bytes = 1 * GiB;
    gpu::GpuDevice device(device_config);
    cuvmm::Driver driver(device);
    EXPECT_EQ(device.memBytes(), 1 * GiB);

    // tensor + attn: a KV view over two virtual tensors. Allocate
    // before the runtime below grabs its physical page-group pool.
    Addr k_ptr = 0;
    Addr v_ptr = 0;
    const u64 bytes = 64 * 4 * 32 * 2;
    ASSERT_EQ(driver.cudaMalloc(&k_ptr, bytes), cuvmm::CuResult::kSuccess);
    ASSERT_EQ(driver.cudaMalloc(&v_ptr, bytes), cuvmm::CuResult::kSuccess);
    tensor::Shape shape{64, 4, 32};
    attn::TensorKvView view(
        tensor::VirtualTensor(&device, k_ptr, tensor::Layout::contiguous(shape),
                              tensor::DType::kF16),
        tensor::VirtualTensor(&device, v_ptr, tensor::Layout::contiguous(shape),
                              tensor::DType::kF16));
    EXPECT_EQ(view.numKvHeads(), 4);
    EXPECT_EQ(view.headDim(), 32);

    // core: the vAttention runtime.
    core::Config config;
    config.num_layers = 2;
    config.num_kv_heads = 2;
    config.head_dim = 8;
    config.bytes_per_elem = 2;
    config.max_batch_size = 2;
    config.max_context_len = 4096;
    config.page_group = PageGroup::k64KB;
    core::VAttention vattention(driver, config);
    EXPECT_EQ(vattention.config().num_layers, 2);

    // paged: the PagedAttention-style baseline.
    paged::BlockManager blocks(/*num_blocks=*/16, /*block_size=*/16);
    EXPECT_EQ(blocks.numFree(), 16);

    // serving (+ perf via ModelSpec/GpuSpec defaults): the engine.
    serving::EngineConfig engine_config;
    engine_config.tp_degree = 1;
    serving::Engine engine(engine_config);
    EXPECT_GT(engine_config.kvBudgetPerWorker(), 0u);
}

} // namespace
} // namespace vattn
