/**
 * @file
 * Compile check for common/thread_annotations.hh on BOTH compilers:
 * under clang -Wthread-safety -Werror this file only builds when every
 * annotation below is used correctly, and under gcc the macros must
 * expand to nothing without warnings. The runtime assertions are
 * deliberately trivial — the value of this test is that it compiles.
 */

#include <mutex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_annotations.hh"
#include "common/types.hh"

namespace
{

using vattn::i64;

/** Exercises GUARDED_BY / REQUIRES / EXCLUDES / ACQUIRE / RELEASE the
 *  way the production classes (logging, cluster, background worker)
 *  do, so a regression in the macro definitions fails here first. */
class AnnotatedCounter
{
  public:
    void
    add(i64 x) EXCLUDES(mutex_)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        addLocked(x);
    }

    i64
    value() const EXCLUDES(mutex_)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return value_;
    }

    void lock() ACQUIRE(mutex_) { mutex_.lock(); }
    void unlock() RELEASE(mutex_) { mutex_.unlock(); }

    /** Callers hold the lock (via lock() or a scoped guard). */
    void addLocked(i64 x) REQUIRES(mutex_) { value_ += x; }

  private:
    mutable std::mutex mutex_;
    i64 value_ GUARDED_BY(mutex_) = 0;
};

TEST(ThreadAnnotations, AnnotatedClassCompilesAndCounts)
{
    AnnotatedCounter counter;
    counter.add(2);
    counter.lock();
    counter.addLocked(3);
    counter.unlock();
    EXPECT_EQ(counter.value(), 5);
}

TEST(ThreadAnnotations, GuardedStateIsRaceFreeAcrossThreads)
{
    // Under the TSan preset this doubles as a data-race probe for the
    // exact locking pattern the annotated production classes use.
    AnnotatedCounter counter;
    constexpr int kThreads = 4;
    constexpr i64 kPerThread = 1000;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&counter] {
            for (i64 i = 0; i < kPerThread; ++i) {
                counter.add(1);
            }
        });
    }
    for (std::thread &thread : threads) {
        thread.join();
    }
    EXPECT_EQ(counter.value(), kThreads * kPerThread);
}

#if defined(__clang__)
/** The macros must really expand to clang attributes (not no-ops)
 *  when clang builds this: a GUARDED_BY on a plain member is the
 *  canonical smoke test — it parses iff the attribute exists. */
struct ClangAttributeSmoke
{
    std::mutex m;
    int guarded GUARDED_BY(m) = 0;
};
#else
/** gcc path: every macro must vanish; using one in a context where a
 *  gcc attribute would be malformed proves the expansion is empty. */
struct GccNoopSmoke
{
    std::mutex m;
    int guarded GUARDED_BY(m) = 0; // compiles only if macro is empty
};
#endif

} // namespace
