/**
 * @file
 * Property sweeps over the performance model: for every evaluated
 * (model, TP) deployment and every back-end, the roofline must respect
 * the orderings the paper establishes — paged prefill is never faster
 * than non-paged, vLLM decode never beats FA2, latency grows
 * monotonically with work — across the full context/batch ranges.
 */

#include <tuple>

#include <gtest/gtest.h>

#include "perf/kernel_model.hh"
#include "perf/overhead_model.hh"

namespace vattn::perf
{
namespace
{

struct Deployment
{
    ModelSpec model;
    int tp;
};

std::vector<Deployment>
deployments()
{
    return {
        {ModelSpec::yi6B(), 1},
        {ModelSpec::llama3_8B(), 1},
        {ModelSpec::llama3_8B(), 2},
        {ModelSpec::yi34B(), 2},
    };
}

class ModelSweep : public ::testing::TestWithParam<int>
{
  protected:
    Deployment
    deployment() const
    {
        return deployments()[static_cast<std::size_t>(GetParam())];
    }
};

TEST_P(ModelSweep, PrefillAttentionMonotonicInContext)
{
    const auto d = deployment();
    KernelModel model(GpuSpec::a100(), d.model, d.tp);
    for (auto kind : {BackendKind::kFa2Paged, BackendKind::kFiPaged,
                      BackendKind::kFa2VAttention,
                      BackendKind::kFiVAttention}) {
        TimeNs prev = 0;
        for (i64 ctx = 1024; ctx <= 192 * 1024; ctx *= 2) {
            const TimeNs t = model.prefillAttention(kind, ctx);
            EXPECT_GT(t, prev)
                << toString(kind) << " ctx " << ctx;
            prev = t;
        }
    }
}

TEST_P(ModelSweep, PagedPrefillNeverFaster)
{
    const auto d = deployment();
    KernelModel model(GpuSpec::a100(), d.model, d.tp);
    for (i64 ctx = 1024; ctx <= 192 * 1024; ctx *= 2) {
        EXPECT_GE(model.prefillAttention(BackendKind::kFa2Paged, ctx),
                  model.prefillAttention(BackendKind::kFa2VAttention,
                                         ctx));
        EXPECT_GE(model.prefillAttention(BackendKind::kFiPaged, ctx),
                  model.prefillAttention(BackendKind::kFiVAttention,
                                         ctx));
    }
}

TEST_P(ModelSweep, DecodeAttentionMonotonicAndOrdered)
{
    const auto d = deployment();
    KernelModel model(GpuSpec::a100(), d.model, d.tp);
    TimeNs prev = 0;
    for (i64 tokens = 1024; tokens <= 1024 * 1024; tokens *= 4) {
        const TimeNs fa2 = model.decodeAttention(
            BackendKind::kFa2VAttention, tokens);
        EXPECT_GT(fa2, prev);
        prev = fa2;
        // Table 7 ordering: vLLM is the slowest and the non-paged FA2
        // kernel the fastest; FI_Paged vs FA2_Paged flips with the
        // GQA ratio (FI wins on Llama-3-8B, loses on the Yi models),
        // exactly as in the paper's numbers.
        const TimeNs vllm =
            model.decodeAttention(BackendKind::kVllmPaged, tokens);
        const TimeNs fi =
            model.decodeAttention(BackendKind::kFiPaged, tokens);
        const TimeNs fa2_paged =
            model.decodeAttention(BackendKind::kFa2Paged, tokens);
        EXPECT_GE(vllm, fi);
        EXPECT_GE(vllm, fa2_paged);
        EXPECT_GE(fi, fa2);
        EXPECT_GE(fa2_paged, fa2);
        const double gqa = static_cast<double>(d.model.num_q_heads) /
                           d.model.num_kv_heads;
        if (gqa > 4.5) {
            EXPECT_GE(fi, fa2_paged); // Yi models: FI behind
        }
    }
}

TEST_P(ModelSweep, LinearOpsScaleSanely)
{
    const auto d = deployment();
    KernelModel model(GpuSpec::a100(), d.model, d.tp);
    // Prefill linear is compute bound: doubling tokens ~doubles time
    // at large token counts.
    const TimeNs t64k = model.prefillLinear(64 * 1024);
    const TimeNs t128k = model.prefillLinear(128 * 1024);
    EXPECT_NEAR(static_cast<double>(t128k) / static_cast<double>(t64k),
                2.0, 0.05);
    // Decode linear is memory bound at small batch: batch 1 and 8
    // cost the same (weight streaming floor).
    EXPECT_EQ(model.decodeLinear(1), model.decodeLinear(8));
    // ...but becomes compute bound at huge batch.
    EXPECT_GT(model.decodeLinear(2048), model.decodeLinear(8));
}

TEST_P(ModelSweep, H100IsStrictlyFaster)
{
    const auto d = deployment();
    KernelModel a100(GpuSpec::a100(), d.model, d.tp);
    KernelModel h100(GpuSpec::h100(), d.model, d.tp);
    EXPECT_LT(h100.prefillAttention(BackendKind::kFa2VAttention,
                                    32 * 1024),
              a100.prefillAttention(BackendKind::kFa2VAttention,
                                    32 * 1024));
    EXPECT_LT(h100.decodeAttention(BackendKind::kFa2VAttention,
                                   256 * 1024),
              a100.decodeAttention(BackendKind::kFa2VAttention,
                                   256 * 1024));
    EXPECT_LT(h100.decodeLinear(1), a100.decodeLinear(1));
}

TEST_P(ModelSweep, TpHalvesPerWorkerWork)
{
    const auto d = deployment();
    if (d.model.num_kv_heads % 2 != 0) {
        GTEST_SKIP();
    }
    KernelModel tp1(GpuSpec::a100(), d.model, 1);
    KernelModel tp2(GpuSpec::a100(), d.model, 2);
    const TimeNs a1 =
        tp1.prefillAttention(BackendKind::kFa2VAttention, 64 * 1024);
    const TimeNs a2 =
        tp2.prefillAttention(BackendKind::kFa2VAttention, 64 * 1024);
    EXPECT_NEAR(static_cast<double>(a1) / static_cast<double>(a2), 2.0,
                0.1);
}

INSTANTIATE_TEST_SUITE_P(Deployments, ModelSweep,
                         ::testing::Range(0, 4));

TEST(OverheadSweep, MonotonicInBatchAndBlocks)
{
    OverheadModel overhead;
    for (auto kind : {BackendKind::kVllmPaged, BackendKind::kFa2Paged,
                      BackendKind::kFiPaged,
                      BackendKind::kFa2VAttention}) {
        TimeNs prev = 0;
        for (i64 batch = 1; batch <= 256; batch *= 4) {
            const TimeNs t =
                overhead.decodeCpu(kind, batch, 1024, batch * 512);
            EXPECT_GE(t, prev) << toString(kind);
            prev = t;
        }
    }
    // vAttention's decode CPU time is independent of context length
    // (no Block-Table); vLLM's grows with it.
    EXPECT_EQ(overhead.decodeCpu(BackendKind::kFa2VAttention, 32, 100,
                                 3200),
              overhead.decodeCpu(BackendKind::kFa2VAttention, 32,
                                 10000, 320000));
    EXPECT_LT(overhead.decodeCpu(BackendKind::kVllmPaged, 32, 100,
                                 3200),
              overhead.decodeCpu(BackendKind::kVllmPaged, 32, 10000,
                                 320000));
}

TEST(OverheadSweep, BlockTableCostDominatesAtScale)
{
    // §3.3.2's "30% of decode latency": a skewed batch (one 192K
    // request + many short ones, block 16) inflates the padded table
    // to ~batch x 12000 entries.
    OverheadModel overhead;
    const TimeNs skewed =
        overhead.decodeCpu(BackendKind::kVllmPaged, 64, 12000,
                           64 * 200);
    const TimeNs uniform =
        overhead.decodeCpu(BackendKind::kVllmPaged, 64, 200, 64 * 200);
    EXPECT_GT(skewed, 10 * uniform / 2);
    EXPECT_GT(static_cast<double>(skewed) / 1e6, 50.0); // tens of ms
}

} // namespace
} // namespace vattn::perf
