/**
 * @file
 * NcclSpec collective-cost-model tests, anchored by golden pins of the
 * historical hardcoded KernelModel::commTime arithmetic: the legacy()
 * preset (and the unset-spec default) must reproduce those numbers bit
 * for bit, while the real link presets get the α–β behaviours — tree
 * wins small messages, ring wins large ones.
 */

#include <gtest/gtest.h>

#include "perf/kernel_model.hh"
#include "perf/nccl_spec.hh"
#include "test_util.hh"

namespace vattn::perf
{
namespace
{

// ---- Golden pins of the legacy commTime arithmetic -----------------
// Exact values of the pre-NcclSpec hardcoded formula
//   per_s = 5e-6 + tokens*hidden*P * 2(tp-1)/tp / 300e9
//   ns    = per_s * 2 * layers * 1e9
// on A100 NVLink (300 GB/s). Any drift here means default-config runs
// (fig09/fig10 goldens included) are no longer byte-identical.

TEST(NcclSpec, LegacyCommTimeGoldenPins)
{
    KernelModel tp2(GpuSpec::a100(), ModelSpec::llama3_8B(), 2);
    EXPECT_EQ(tp2.commTime(1000), 2067626u);
    EXPECT_EQ(tp2.commTime(1), 321747u);

    KernelModel tp4(GpuSpec::a100(), ModelSpec::llama3_8B(), 4);
    EXPECT_EQ(tp4.commTime(1000), 2941440u);

    KernelModel yi34_tp2(GpuSpec::a100(), ModelSpec::yi34B(), 2);
    EXPECT_EQ(yi34_tp2.commTime(1000), 6334400u);
    KernelModel yi34_tp8(GpuSpec::a100(), ModelSpec::yi34B(), 8);
    EXPECT_EQ(yi34_tp8.commTime(512), 5738022u);
}

TEST(NcclSpec, CommTimeZeroAtTpOneOrNoTokens)
{
    KernelModel tp1(GpuSpec::a100(), ModelSpec::llama3_8B(), 1);
    EXPECT_EQ(tp1.commTime(1000), 0u);
    KernelModel tp2(GpuSpec::a100(), ModelSpec::llama3_8B(), 2);
    EXPECT_EQ(tp2.commTime(0), 0u);
    EXPECT_EQ(tp2.commTime(-5), 0u);
}

TEST(NcclSpec, UnsetSpecResolvesToLegacyDefault)
{
    // A default-constructed spec is the "unset" sentinel: the kernel
    // model substitutes legacy(nvlink) — passing that explicitly must
    // change nothing, for any token count.
    KernelModel implicit(GpuSpec::a100(), ModelSpec::yi34B(), 2);
    KernelModel explicit_legacy(
        GpuSpec::a100(), ModelSpec::yi34B(), 2,
        NcclSpec::legacy(GpuSpec::a100().nvlink_bytes_per_s));
    for (i64 tokens : {1, 7, 100, 4096, 100000}) {
        EXPECT_EQ(implicit.commTime(tokens),
                  explicit_legacy.commTime(tokens))
            << "tokens=" << tokens;
    }
    EXPECT_FALSE(NcclSpec{}.enabled());
    EXPECT_EQ(implicit.nccl().name, "legacy-flat");
}

TEST(NcclSpec, LegacyPresetMatchesHandFormula)
{
    const NcclSpec spec = NcclSpec::legacy(300e9);
    const double payload = 8192000.0; // 1000 tok * 4096 * 2B
    const double expect = 5e-6 + payload * 2.0 * 1 / 2 / 300e9;
    EXPECT_DOUBLE_EQ(spec.allReduceSeconds(payload, 2), expect);
}

// ---- α–β behaviour of the real presets -----------------------------

TEST(NcclSpec, TreeWinsSmallMessagesRingWinsLarge)
{
    const NcclSpec spec = NcclSpec::nvlinkGen3();
    const int ranks = 8;
    const auto ring = [&](double bytes) {
        return spec.base_latency_s +
               2.0 * (ranks - 1) * spec.hop_latency_s +
               bytes * 2.0 * (ranks - 1) / ranks / spec.ring_bytes_per_s;
    };
    const auto tree = [&](double bytes) {
        return spec.base_latency_s + 2.0 * 3 * spec.hop_latency_s +
               bytes * 2.0 / spec.tree_bytes_per_s;
    };
    // 1KB: hop latencies dominate, the 3-level tree beats the 7-step
    // ring. 64MB: bus bandwidth dominates, the ring beats the tree.
    const double small = 1024.0;
    const double large = 64.0 * 1024 * 1024;
    EXPECT_LT(tree(small), ring(small));
    EXPECT_DOUBLE_EQ(spec.allReduceSeconds(small, ranks), tree(small));
    EXPECT_LT(ring(large), tree(large));
    EXPECT_DOUBLE_EQ(spec.allReduceSeconds(large, ranks), ring(large));
}

TEST(NcclSpec, AllGatherCheaperThanAllReduce)
{
    // An all-gather moves each byte across the ring once; an
    // all-reduce moves it twice. Same α, half the β.
    const NcclSpec spec = NcclSpec::nvlinkGen4();
    for (int ranks : {2, 4, 8}) {
        for (double bytes : {4096.0, 1e6, 1e8}) {
            EXPECT_LT(spec.allGatherSeconds(bytes, ranks),
                      spec.allReduceSeconds(bytes, ranks))
                << "ranks=" << ranks << " bytes=" << bytes;
        }
    }
}

TEST(NcclSpec, CostGrowsWithRanksAndPayload)
{
    const NcclSpec spec = NcclSpec::nvlinkGen3();
    EXPECT_EQ(spec.allReduceSeconds(1e6, 1), 0.0);
    EXPECT_EQ(spec.allGatherSeconds(1e6, 1), 0.0);
    double prev = 0;
    for (int ranks : {2, 4, 8}) {
        const double cost = spec.allReduceSeconds(1e6, ranks);
        EXPECT_GT(cost, prev) << "ranks=" << ranks;
        prev = cost;
    }
    EXPECT_GT(spec.allReduceSeconds(2e6, 4),
              spec.allReduceSeconds(1e6, 4));
    EXPECT_GT(spec.allReduceNs(2'000'000, 4),
              spec.allReduceNs(1'000'000, 4));
    EXPECT_GT(spec.allGatherNs(2'000'000, 4), 0u);
}

TEST(NcclSpec, PcieFallbackIsSlowerThanNvlink)
{
    const double bytes = 8e6;
    EXPECT_GT(NcclSpec::pcieFallback().allReduceSeconds(bytes, 4),
              NcclSpec::nvlinkGen3().allReduceSeconds(bytes, 4));
    EXPECT_GT(NcclSpec::nvlinkGen3().allReduceSeconds(bytes, 4),
              NcclSpec::nvlinkGen4().allReduceSeconds(bytes, 4));
}

TEST(NcclSpec, SpecWithNoAlgorithmIsFatal)
{
    NcclSpec broken;
    broken.name = "broken";
    test::ScopedThrowErrors guard;
    EXPECT_THROW(broken.allReduceSeconds(1e6, 2), SimError);
    EXPECT_THROW(broken.allGatherSeconds(1e6, 2), SimError);
}

// ---- GQA sharding boundaries (§5.1.3) ------------------------------

TEST(NcclSpec, GqaShardingBoundaries)
{
    const ModelSpec llama = ModelSpec::llama3_8B(); // 8 KV heads
    // tp == num_kv_heads: exactly one KV head per worker is legal.
    EXPECT_EQ(llama.kvHeadsPerWorker(8), 1);
    EXPECT_EQ(llama.kvBytesPerTokenPerWorker(8),
              llama.kvBytesPerToken() / 8);
    // Query heads keep their own divisibility: 32 / 8 = 4.
    EXPECT_EQ(llama.qHeadsPerWorker(8), 4);

    // Non-divisible shardings are configuration errors, not silent
    // rounding: 8 KV heads cannot split across 3 or 16 workers.
    test::ScopedThrowErrors guard;
    EXPECT_THROW(llama.kvHeadsPerWorker(3), SimError);
    EXPECT_THROW(llama.kvHeadsPerWorker(16), SimError);
    EXPECT_THROW(llama.kvBytesPerTokenPerWorker(5), SimError);
}

} // namespace
} // namespace vattn::perf
