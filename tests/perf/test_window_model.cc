/**
 * @file
 * Sliding-window attention in the performance model: the banded
 * trapezoid attended-unit formula, the windowed kernel paths'
 * bit-for-bit delegation on uniform models, the cost reduction on
 * interleaved models, and the ModelSpec window-class bookkeeping.
 */

#include <gtest/gtest.h>

#include "perf/kernel_model.hh"
#include "test_util.hh"

namespace vattn::perf
{
namespace
{

TEST(ModelSpecWindows, InterleaveMarksOddLayers)
{
    const auto base = ModelSpec::yi6B();
    EXPECT_FALSE(base.hasSlidingLayers());
    EXPECT_EQ(base.windowTokensOf(0), 0);
    EXPECT_EQ(base.windowClasses().size(), 1u);
    EXPECT_EQ(base.windowClasses()[0].layers, base.num_layers);

    const auto swa = base.withSlidingWindowInterleave(4096);
    EXPECT_TRUE(swa.hasSlidingLayers());
    EXPECT_EQ(swa.name, base.name + "-swa4096");
    // Every period-th layer keeps full attention; the rest slide.
    EXPECT_EQ(swa.windowTokensOf(0), 0);
    EXPECT_EQ(swa.windowTokensOf(1), 4096);
    EXPECT_EQ(swa.windowTokensOf(2), 0);
    EXPECT_EQ(swa.windowTokensOf(3), 4096);

    const auto classes = swa.windowClasses();
    ASSERT_EQ(classes.size(), 2u);
    // Full-attention class first, then the 4K window class; the 1:1
    // interleave splits the layers evenly.
    EXPECT_EQ(classes[0].window_tokens, 0);
    EXPECT_EQ(classes[1].window_tokens, 4096);
    EXPECT_EQ(classes[0].layers + classes[1].layers, swa.num_layers);
    EXPECT_EQ(classes[1].layers, swa.num_layers / 2);
}

TEST(ModelSpecWindows, InterleaveRejectsBadArguments)
{
    test::ScopedThrowErrors guard;
    EXPECT_THROW(ModelSpec::yi6B().withSlidingWindowInterleave(0),
                 SimError);
    EXPECT_THROW(ModelSpec::yi6B().withSlidingWindowInterleave(4096, 1),
                 SimError);
}

TEST(WindowedAttendedUnits, MatchesClosedForms)
{
    using KM = KernelModel;
    // Full attention (w = 0) and contexts inside the window reproduce
    // the causal trapezoid (kv - q/2) * q.
    EXPECT_DOUBLE_EQ(KM::windowedAttendedUnits(100, 100, 0),
                     (100 - 50.0) * 100);
    EXPECT_DOUBLE_EQ(KM::windowedAttendedUnits(100, 300, 1000),
                     (300 - 50.0) * 100);
    // Chunk entirely past the window: every query attends w keys.
    EXPECT_DOUBLE_EQ(KM::windowedAttendedUnits(64, 5000, 256),
                     64.0 * 256);
    // Straddling chunk: kv0 = 0, kv = 300, w = 200 -> the first 200
    // queries ramp 1..200, the last 100 attend 200 each.
    // Model's continuous band: w^2/2 + (kv - w) * w = 40000.
    EXPECT_DOUBLE_EQ(KM::windowedAttendedUnits(300, 300, 200),
                     200.0 * 200 / 2 + 100.0 * 200);
    // Monotonic in kv, bounded by q * w.
    EXPECT_LE(KM::windowedAttendedUnits(64, 100000, 256), 64.0 * 256);
}

TEST(WindowedKernelPaths, DelegateVerbatimOnUniformModels)
{
    const KernelModel model(GpuSpec::a100(), ModelSpec::yi6B(), 1);
    for (const auto kind :
         {BackendKind::kFa2Paged, BackendKind::kFa2VAttention}) {
        EXPECT_EQ(model.chunkedPrefillAttentionWindowed(kind, 2048,
                                                        32768),
                  model.chunkedPrefillAttention(kind, 2048, 32768));
        const std::vector<i64> kv_lens = {1000, 2000, 4096};
        EXPECT_EQ(model.decodeAttentionWindowed(kind, kv_lens),
                  model.decodeAttention(kind, 7096));
    }
}

TEST(WindowedKernelPaths, InterleaveCutsLongContextCost)
{
    const auto swa = ModelSpec::yi6B().withSlidingWindowInterleave(4096);
    const KernelModel uniform(GpuSpec::a100(), ModelSpec::yi6B(), 1);
    const KernelModel windowed(GpuSpec::a100(), swa, 1);
    const auto kind = BackendKind::kFa2VAttention;

    // 64K-token decode batch: windowed layers stream min(kv, 4096),
    // so the interleaved model reads well under the uniform bytes.
    const std::vector<i64> kv_lens = {64 * 1024};
    EXPECT_LT(windowed.decodeAttentionWindowed(kind, kv_lens),
              uniform.decodeAttention(kind, 64 * 1024));

    // Prefill chunk deep into a long context: half the layers run the
    // banded kernel, so attention time drops but stays above half the
    // uniform cost (the full layers still pay in full).
    const TimeNs uni =
        uniform.chunkedPrefillAttention(kind, 2048, 64 * 1024);
    const TimeNs win =
        windowed.chunkedPrefillAttentionWindowed(kind, 2048, 64 * 1024);
    EXPECT_LT(win, uni);
    EXPECT_GT(win, uni / 2);

    // Short contexts inside the window cost the same.
    EXPECT_EQ(
        windowed.chunkedPrefillAttentionWindowed(kind, 1024, 1024),
        uniform.chunkedPrefillAttention(kind, 1024, 1024));
}

} // namespace
} // namespace vattn::perf
