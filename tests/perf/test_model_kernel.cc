#include <gtest/gtest.h>

#include "perf/kernel_model.hh"
#include "perf/overhead_model.hh"
#include "test_util.hh"

namespace vattn::perf
{
namespace
{

TEST(ModelSpec, ParameterCountsMatchNames)
{
    EXPECT_NEAR(ModelSpec::yi6B().numParams() / 1e9, 6.06, 0.15);
    EXPECT_NEAR(ModelSpec::llama3_8B().numParams() / 1e9, 8.03, 0.2);
    EXPECT_NEAR(ModelSpec::yi34B().numParams() / 1e9, 34.4, 0.8);
    EXPECT_NEAR(ModelSpec::llama3_70B().numParams() / 1e9, 70.0, 3.0);
    EXPECT_NEAR(ModelSpec::gpt3_175B().numParams() / 1e9, 175.0, 10.0);
}

TEST(ModelSpec, PerTokenKvBytesSection4)
{
    // §4: 64KB / 128KB / 240KB per token.
    EXPECT_EQ(ModelSpec::yi6B().kvBytesPerToken(), 64 * KiB);
    EXPECT_EQ(ModelSpec::llama3_8B().kvBytesPerToken(), 128 * KiB);
    EXPECT_EQ(ModelSpec::yi34B().kvBytesPerToken(), 240 * KiB);
}

TEST(ModelSpec, TensorParallelSplits)
{
    const auto yi34 = ModelSpec::yi34B();
    EXPECT_EQ(yi34.kvHeadsPerWorker(2), 4); // §5.1.3 example
    EXPECT_EQ(yi34.qHeadsPerWorker(2), 28);
    EXPECT_EQ(yi34.kvBytesPerTokenPerWorker(2), 120 * KiB);
    test::ScopedThrowErrors guard;
    EXPECT_THROW(yi34.kvHeadsPerWorker(3), SimError);
}

TEST(ModelSpec, WeightBytes)
{
    const auto yi6 = ModelSpec::yi6B();
    EXPECT_NEAR(static_cast<double>(yi6.weightBytesPerWorker(1)) /
                    static_cast<double>(GiB),
                11.3, 0.5); // ~6B params * 2 bytes
    EXPECT_EQ(yi6.weightBytesPerWorker(2),
              yi6.weightBytesPerWorker(1) / 2);
}

TEST(GpuSpec, Presets)
{
    const auto a100 = GpuSpec::a100();
    EXPECT_EQ(a100.mem_bytes, 80 * GiB);
    EXPECT_NEAR(a100.fp16_flops / 1e12, 312, 1);
    const auto h100 = GpuSpec::h100();
    EXPECT_GT(h100.fp16_flops, 2 * a100.fp16_flops);
    EXPECT_GT(h100.hbm_bytes_per_s, a100.hbm_bytes_per_s);
}

// ---------------------------------------------------------------
// Calibration anchors from the paper's measurements.
// ---------------------------------------------------------------

TEST(KernelModel, Table6PrefillAttentionAnchors)
{
    // Table 6 (vAttention columns, attention time in seconds).
    {
        KernelModel model(GpuSpec::a100(), ModelSpec::yi6B(), 1);
        const double t = static_cast<double>(model.prefillAttention(
                             BackendKind::kFa2VAttention, 192 * 1024)) /
                         1e9;
        EXPECT_NEAR(t, 53.6, 8.0); // paper: 53.6s
    }
    {
        KernelModel model(GpuSpec::a100(), ModelSpec::llama3_8B(), 2);
        const double t = static_cast<double>(model.prefillAttention(
                             BackendKind::kFa2VAttention, 192 * 1024)) /
                         1e9;
        EXPECT_NEAR(t, 26.9, 4.0); // paper: 26.9s
    }
    {
        KernelModel model(GpuSpec::a100(), ModelSpec::yi34B(), 2);
        const double t = static_cast<double>(model.prefillAttention(
                             BackendKind::kFa2VAttention, 192 * 1024)) /
                         1e9;
        EXPECT_NEAR(t, 98.8, 15.0); // paper: 98.8s
    }
}

TEST(KernelModel, Table6TotalPrefillAnchors)
{
    KernelModel model(GpuSpec::a100(), ModelSpec::yi6B(), 1);
    const double total =
        static_cast<double>(
            model.prefillAttention(BackendKind::kFa2VAttention,
                                   192 * 1024) +
            model.prefillLinear(192 * 1024)) /
        1e9;
    EXPECT_NEAR(total, 64.6, 9.0); // paper: 64.6s
}

TEST(KernelModel, Table7DecodeAttentionAnchors)
{
    // Table 7: attention latency per decode iteration, 16K ctx.
    struct Anchor
    {
        ModelSpec model;
        int tp;
        i64 batch;
        double fa2_ms;
        double vllm_ms;
    };
    const Anchor anchors[] = {
        {ModelSpec::yi6B(), 1, 16, 11.3, 32.3},
        {ModelSpec::yi6B(), 1, 32, 25.3, 64.1},
        {ModelSpec::llama3_8B(), 2, 16, 11.8, 17.8},
        {ModelSpec::llama3_8B(), 2, 32, 25.3, 35.3},
        {ModelSpec::yi34B(), 2, 16, 21.8, 55.1},
    };
    for (const auto &anchor : anchors) {
        KernelModel model(GpuSpec::a100(), anchor.model, anchor.tp);
        const i64 total_kv = anchor.batch * 16 * 1024;
        const double fa2 =
            static_cast<double>(model.decodeAttention(
                BackendKind::kFa2VAttention, total_kv)) /
            1e6;
        EXPECT_NEAR(fa2, anchor.fa2_ms, anchor.fa2_ms * 0.25)
            << anchor.model.name << " bs=" << anchor.batch;
        const double vllm = static_cast<double>(model.decodeAttention(
                                BackendKind::kVllmPaged, total_kv)) /
                            1e6;
        EXPECT_NEAR(vllm, anchor.vllm_ms, anchor.vllm_ms * 0.25)
            << anchor.model.name << " bs=" << anchor.batch;
    }
}

TEST(KernelModel, Figure2PagedPrefillOverheads)
{
    KernelModel model(GpuSpec::a100(), ModelSpec::llama3_8B(), 1);
    // FA2 overhead grows with context: 1.07x @1K ... 1.37x @32K.
    EXPECT_NEAR(model.prefillPagedOverhead(KernelFamily::kFa2, 1024),
                1.07, 0.01);
    EXPECT_NEAR(model.prefillPagedOverhead(KernelFamily::kFa2, 32768),
                1.37, 0.01);
    // FI overhead peaks at short context (1.42x @1K).
    EXPECT_NEAR(model.prefillPagedOverhead(KernelFamily::kFi, 1024),
                1.42, 0.01);
    EXPECT_NEAR(model.prefillPagedOverhead(KernelFamily::kFi, 16384),
                1.25, 0.01);
    // Paged prefill is strictly slower than non-paged everywhere.
    for (i64 ctx = 1024; ctx <= 192 * 1024; ctx *= 2) {
        EXPECT_GT(model.prefillAttention(BackendKind::kFa2Paged, ctx),
                  model.prefillAttention(BackendKind::kFa2VAttention,
                                         ctx));
        EXPECT_GT(model.prefillAttention(BackendKind::kFiPaged, ctx),
                  model.prefillAttention(BackendKind::kFiVAttention,
                                         ctx));
    }
}

TEST(KernelModel, Figure3BlockSizeSensitivity)
{
    KernelModel model(GpuSpec::a100(), ModelSpec::llama3_8B(), 1);
    const i64 tokens = 4 * 16 * 1024;
    EXPECT_DOUBLE_EQ(model.vllmBlockSizeFactor(16, tokens), 1.0);
    EXPECT_NEAR(model.vllmBlockSizeFactor(32, tokens), 1.04, 0.01);
    EXPECT_NEAR(model.vllmBlockSizeFactor(64, tokens), 1.45, 0.01);
    EXPECT_NEAR(model.vllmBlockSizeFactor(128, tokens), 1.90, 0.01);
    // The paper's headline: changing block size changes latency by
    // up to 1.9x.
    const auto t16 =
        model.decodeAttention(BackendKind::kVllmPaged, tokens, 16);
    const auto t128 =
        model.decodeAttention(BackendKind::kVllmPaged, tokens, 128);
    EXPECT_NEAR(static_cast<double>(t128) / static_cast<double>(t16),
                1.9, 0.05);
}

TEST(KernelModel, GqaRatioDrivesVllmGap)
{
    // Table 7: vLLM's kernel disadvantage tracks the GQA ratio:
    // 2.8x (Yi-6B, ratio 8), ~1.45x (Llama-3-8B, ratio 4).
    KernelModel yi6(GpuSpec::a100(), ModelSpec::yi6B(), 1);
    KernelModel llama(GpuSpec::a100(), ModelSpec::llama3_8B(), 1);
    EXPECT_NEAR(yi6.decodeBackendFactor(BackendKind::kVllmPaged), 2.8,
                0.1);
    EXPECT_NEAR(llama.decodeBackendFactor(BackendKind::kVllmPaged),
                1.45, 0.1);
    // FA2 paged decode is nearly free (§7.2).
    EXPECT_NEAR(yi6.decodeBackendFactor(BackendKind::kFa2Paged), 1.02,
                0.01);
    EXPECT_DOUBLE_EQ(
        yi6.decodeBackendFactor(BackendKind::kFa2VAttention), 1.0);
}

TEST(KernelModel, Fa3RequiresHopperAndIsFaster)
{
    test::ScopedThrowErrors guard;
    KernelModel a100(GpuSpec::a100(), ModelSpec::yi6B(), 1);
    EXPECT_THROW(a100.prefillAttention(BackendKind::kFa3VAttention,
                                       16 * 1024),
                 SimError);
    KernelModel h100(GpuSpec::h100(), ModelSpec::yi6B(), 1);
    const auto fa3 =
        h100.prefillAttention(BackendKind::kFa3VAttention, 64 * 1024);
    const auto fa2 =
        h100.prefillAttention(BackendKind::kFa2VAttention, 64 * 1024);
    const double speedup =
        static_cast<double>(fa2) / static_cast<double>(fa3);
    EXPECT_GT(speedup, 1.2); // §7.5: FA3 1.26-1.5x end to end
    EXPECT_LT(speedup, 1.6);
}

TEST(KernelModel, DecodeThroughputSaturates)
{
    // Figure 4a: tokens/s = B/iter flattens at large batch.
    KernelModel model(GpuSpec::a100(), ModelSpec::yi6B(), 1);
    OverheadModel overhead;
    auto tput = [&](i64 batch) {
        const TimeNs iter =
            model.decodeLinear(batch) +
            model.decodeAttention(BackendKind::kFa2VAttention,
                                  batch * 1024) +
            overhead.decodeCpu(BackendKind::kFa2VAttention, batch, 0,
                               0);
        return static_cast<double>(batch) /
               (static_cast<double>(iter) / 1e9);
    };
    const double t1 = tput(1);
    const double t64 = tput(64);
    const double t256 = tput(256);
    const double t320 = tput(320);
    EXPECT_GT(t64, 10 * t1);          // near-linear at small batch
    EXPECT_LT(t320 / t256, 1.10);     // saturated at large batch
    EXPECT_NEAR(t256, 6000, 2500);    // Figure 4a scale (~5-6K tok/s)
}

TEST(KernelModel, CommTimeOnlyWithTp)
{
    KernelModel tp1(GpuSpec::a100(), ModelSpec::llama3_8B(), 1);
    KernelModel tp2(GpuSpec::a100(), ModelSpec::llama3_8B(), 2);
    EXPECT_EQ(tp1.commTime(1000), 0u);
    EXPECT_GT(tp2.commTime(1000), 0u);
    EXPECT_GT(tp2.commTime(100000), tp2.commTime(1000));
}

TEST(KernelModel, TlbPenaltyIsTiny)
{
    // §7.6.3: 64KB pages add no measurable kernel slowdown. 1000
    // page walks cost ~0.1ms against multi-ms kernels.
    EXPECT_EQ(KernelModel::tlbWalkPenalty(1000), 100'000u);
}

TEST(OverheadModel, PaddedBlockTableCost)
{
    OverheadModel overhead;
    // vLLM: batch 32, longest request 1000 blocks -> 32K entries at
    // 100ns ~ 3.2ms, the "up to 10%" CPU overhead of §3.3.2.
    const TimeNs vllm =
        overhead.decodeCpu(BackendKind::kVllmPaged, 32, 1000, 4000);
    const TimeNs vattn = overhead.decodeCpu(
        BackendKind::kFa2VAttention, 32, 0, 0);
    EXPECT_GT(vllm, vattn + 3 * kMsec);
    // FlashInfer's CSR is cheaper than padded but pays object churn.
    const TimeNs fi =
        overhead.decodeCpu(BackendKind::kFiPaged, 32, 1000, 4000);
    EXPECT_LT(fi, vllm);
    EXPECT_GT(fi, vattn);
}

TEST(OverheadModel, PrefillAppendCosts)
{
    OverheadModel overhead;
    // Paged append is per-block; vAttention is one tensor copy (§7.1).
    const TimeNs paged =
        overhead.prefillCpu(BackendKind::kFiPaged, 1, 1024);
    const TimeNs vattn =
        overhead.prefillCpu(BackendKind::kFiVAttention, 1, 0);
    EXPECT_GT(paged, vattn);
}

TEST(BackendKind, Predicates)
{
    EXPECT_TRUE(isPaged(BackendKind::kVllmPaged));
    EXPECT_TRUE(isPaged(BackendKind::kFa2Paged));
    EXPECT_FALSE(isPaged(BackendKind::kFa2VAttention));
    EXPECT_EQ(kernelFamily(BackendKind::kFiPaged), KernelFamily::kFi);
    EXPECT_EQ(defaultBlockSize(BackendKind::kVllmPaged), 16);
    EXPECT_EQ(defaultBlockSize(BackendKind::kFa2Paged), 256);
    EXPECT_EQ(defaultBlockSize(BackendKind::kFa2VAttention), 0);
    EXPECT_STREQ(toString(BackendKind::kFa2VAttention),
                 "FA2_vAttention");
}

} // namespace
} // namespace vattn::perf
