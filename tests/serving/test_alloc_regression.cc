/**
 * @file
 * Allocation-count regression tests for the serving hot path. This TU
 * replaces the global operator new/delete (every replaceable variant)
 * with a counting shim over malloc, then asserts the clear()-not-
 * reallocate contract:
 *
 *  - steady-state decode iterations perform zero heap allocations
 *    once the high-water batch shape has been seen (a long window of
 *    allocation-free stepRun() calls must exist in every run), under
 *    both scheduling modes;
 *  - BatchComposer::composeInto is allocation-free on the second
 *    composition of an identical shape, for both the prefill and the
 *    decode side of both modes.
 *
 * The counter is the regression tripwire: any new per-iteration
 * vector, map node or std::function rebuild in the engine, composer
 * or allocator shows up here as a shrunken zero-alloc window.
 */

#include <atomic>
#include <cstdlib>
#include <new>

#include <gtest/gtest.h>

#include "serving/engine.hh"

// ---- Counting operator new/delete ----------------------------------
//
// Every replaceable allocation funnels through malloc with one relaxed
// counter bump; every delete funnels through free (posix_memalign
// memory is free()-compatible), so the pairs stay matched under the
// sanitizers too.

namespace
{

std::atomic<long long> g_allocs{0};

long long
allocCount()
{
    return g_allocs.load(std::memory_order_relaxed);
}

void *
countedAlloc(std::size_t size)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    return std::malloc(size ? size : 1);
}

void *
countedAllocAligned(std::size_t size, std::align_val_t align)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    std::size_t alignment = static_cast<std::size_t>(align);
    if (alignment < sizeof(void *)) {
        alignment = sizeof(void *);
    }
    void *ptr = nullptr;
    if (posix_memalign(&ptr, alignment, size ? size : 1) != 0) {
        return nullptr;
    }
    return ptr;
}

} // namespace

void *
operator new(std::size_t size)
{
    if (void *ptr = countedAlloc(size)) {
        return ptr;
    }
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    if (void *ptr = countedAlloc(size)) {
        return ptr;
    }
    throw std::bad_alloc();
}

void *
operator new(std::size_t size, const std::nothrow_t &) noexcept
{
    return countedAlloc(size);
}

void *
operator new[](std::size_t size, const std::nothrow_t &) noexcept
{
    return countedAlloc(size);
}

void *
operator new(std::size_t size, std::align_val_t align)
{
    if (void *ptr = countedAllocAligned(size, align)) {
        return ptr;
    }
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size, std::align_val_t align)
{
    if (void *ptr = countedAllocAligned(size, align)) {
        return ptr;
    }
    throw std::bad_alloc();
}

void *
operator new(std::size_t size, std::align_val_t align,
             const std::nothrow_t &) noexcept
{
    return countedAllocAligned(size, align);
}

void *
operator new[](std::size_t size, std::align_val_t align,
               const std::nothrow_t &) noexcept
{
    return countedAllocAligned(size, align);
}

void
operator delete(void *ptr) noexcept
{
    std::free(ptr);
}

void
operator delete[](void *ptr) noexcept
{
    std::free(ptr);
}

void
operator delete(void *ptr, std::size_t) noexcept
{
    std::free(ptr);
}

void
operator delete[](void *ptr, std::size_t) noexcept
{
    std::free(ptr);
}

void
operator delete(void *ptr, std::align_val_t) noexcept
{
    std::free(ptr);
}

void
operator delete[](void *ptr, std::align_val_t) noexcept
{
    std::free(ptr);
}

void
operator delete(void *ptr, std::size_t, std::align_val_t) noexcept
{
    std::free(ptr);
}

void
operator delete[](void *ptr, std::size_t, std::align_val_t) noexcept
{
    std::free(ptr);
}

void
operator delete(void *ptr, const std::nothrow_t &) noexcept
{
    std::free(ptr);
}

void
operator delete[](void *ptr, const std::nothrow_t &) noexcept
{
    std::free(ptr);
}

// ---- The regression tests ------------------------------------------

namespace vattn::serving
{
namespace
{

EngineConfig
steadyConfig(SchedulingMode mode)
{
    EngineConfig config;
    config.model = perf::ModelSpec::yi6B();
    config.gpu = perf::GpuSpec::a100();
    config.backend = perf::BackendKind::kFa2VAttention;
    config.kv_budget_override = 2 * GiB;
    config.scheduler.max_num_seqs = 4;
    config.scheduler.mode = mode;
    config.vattn.max_batch_size = 4;
    return config;
}

/** Offline batch sized so the whole decode phase stays inside the
 *  initially mapped page groups: after the prefills, hundreds of
 *  decode iterations run with no KV growth at all. */
std::vector<Request>
steadyTrace()
{
    std::vector<Request> trace(4);
    for (std::size_t i = 0; i < trace.size(); ++i) {
        trace[i].id = static_cast<u64>(i);
        trace[i].prompt_tokens = 128;
        trace[i].max_new_tokens = 512;
    }
    assignOfflineArrivals(trace);
    return trace;
}

/** Longest run of consecutive allocation-free stepRun() calls. */
int
longestZeroAllocWindow(Engine &engine)
{
    int streak = 0;
    int best = 0;
    while (engine.runActive()) {
        const long long before = allocCount();
        engine.stepRun();
        if (allocCount() == before) {
            streak += 1;
            best = std::max(best, streak);
        } else {
            streak = 0;
        }
    }
    return best;
}

class SteadyStateDecode
    : public ::testing::TestWithParam<SchedulingMode>
{
};

TEST_P(SteadyStateDecode, IterationsAreAllocationFree)
{
#if VATTN_AUDIT
    GTEST_SKIP() << "audit builds run per-iteration audits, which "
                    "allocate by design";
#endif
    Engine engine(steadyConfig(GetParam()));
    engine.beginRun(steadyTrace());
    const int window = longestZeroAllocWindow(engine);
    const RunReport report = engine.endRun();
    EXPECT_EQ(report.num_requests, 4);
    // Hundreds of decode steps run with no growth; a shrinking window
    // means something on the per-iteration path started allocating
    // (plan vectors, scratch, std::function rebuilds, ...).
    EXPECT_GE(window, 16) << "under " << toString(GetParam());
}

TEST_P(SteadyStateDecode, OnlineStreamingIterationsAreAllocationFree)
{
#if VATTN_AUDIT
    GTEST_SKIP() << "audit builds run per-iteration audits, which "
                    "allocate by design";
#endif
    // The online analogue with per-token streaming callbacks
    // installed: submission may allocate (deque nodes, sample-store
    // reservations), but the step loop that follows must not — token
    // emission invokes pre-built std::functions without heap traffic.
    Engine engine(steadyConfig(GetParam()));
    long long events = 0;
    StreamCallbacks callbacks; // built once, like a real client
    callbacks.on_first_token = [&events](const Request &) {
        ++events;
    };
    callbacks.on_token = [&events](const Request &) { ++events; };
    callbacks.on_finish = [&events](const Request &) { ++events; };

    auto trace = steadyTrace();
    engine.beginOnline(trace.size());
    for (auto &request : trace) {
        request.stream = &callbacks;
        ASSERT_TRUE(engine.submitOnline(request).isOk());
    }
    engine.closeOnline();
    const int window = longestZeroAllocWindow(engine);
    const RunReport report = engine.endRun();
    EXPECT_EQ(report.num_requests, 4);
    EXPECT_GT(events, 0);
    EXPECT_GE(window, 16) << "under " << toString(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Modes, SteadyStateDecode,
    ::testing::Values(SchedulingMode::kPrefillPrioritized,
                      SchedulingMode::kStallFreeChunked),
    [](const auto &info) { return toString(info.param); });

class ComposerAlloc : public ::testing::TestWithParam<SchedulingMode>
{
};

TEST_P(ComposerAlloc, SecondPrefillCompositionIsAllocationFree)
{
    Scheduler::Config config;
    config.max_num_seqs = 8;
    config.mode = GetParam();
    Scheduler scheduler(config);
    BatchComposer composer(config);
    // Built once, like the engine does: rebuilding a std::function
    // per iteration is itself an allocation regression.
    const Scheduler::CanAdmit can_admit = [](Request &) {
        return true;
    };
    const std::vector<Request *> running;
    IterationPlan plan;

    std::vector<Request> storage(4);
    for (std::size_t i = 0; i < storage.size(); ++i) {
        storage[i].id = static_cast<u64>(i);
        storage[i].prompt_tokens = 256;
        storage[i].arrival_ns = 0;
    }

    // Warm pass establishes the high-water shape.
    for (Request &request : storage) {
        scheduler.enqueue(&request);
    }
    composer.composeInto(plan, scheduler, running, can_admit);
    ASSERT_EQ(plan.prefills.size(), storage.size());

    // Identical shape again: composition must not touch the heap.
    for (Request &request : storage) {
        request.resetComputedState();
        scheduler.enqueue(&request);
    }
    const long long before = allocCount();
    composer.composeInto(plan, scheduler, running, can_admit);
    EXPECT_EQ(allocCount(), before)
        << "prefill composition allocated under "
        << toString(GetParam());
    EXPECT_EQ(plan.prefills.size(), storage.size());
}

TEST_P(ComposerAlloc, SecondDecodeCompositionIsAllocationFree)
{
    Scheduler::Config config;
    config.max_num_seqs = 8;
    config.mode = GetParam();
    Scheduler scheduler(config);
    BatchComposer composer(config);
    const Scheduler::CanAdmit can_admit = [](Request &) {
        return false; // nothing waiting may be admitted
    };
    IterationPlan plan;

    std::vector<Request> storage(4);
    std::vector<Request *> running;
    running.reserve(storage.size());
    for (std::size_t i = 0; i < storage.size(); ++i) {
        storage[i].id = static_cast<u64>(i);
        storage[i].prompt_tokens = 256;
        storage[i].prefilled_tokens = 256; // prefill already done
        storage[i].max_new_tokens = 64;
        storage[i].state = Request::State::kRunning;
        running.push_back(&storage[i]);
    }

    composer.composeInto(plan, scheduler, running, can_admit);
    ASSERT_EQ(plan.decodes.size(), storage.size());

    const long long before = allocCount();
    composer.composeInto(plan, scheduler, running, can_admit);
    EXPECT_EQ(allocCount(), before)
        << "decode composition allocated under "
        << toString(GetParam());
    EXPECT_EQ(plan.decodes.size(), storage.size());
    EXPECT_TRUE(plan.prefills.empty());
}

INSTANTIATE_TEST_SUITE_P(
    Modes, ComposerAlloc,
    ::testing::Values(SchedulingMode::kPrefillPrioritized,
                      SchedulingMode::kStallFreeChunked),
    [](const auto &info) { return toString(info.param); });

TEST(AllocHarness, CounterSeesHeapTraffic)
{
    // Sanity-check the shim itself: a vector growth must be counted.
    const long long before = allocCount();
    std::vector<int> v;
    v.reserve(64);
    EXPECT_GT(allocCount(), before);
}

} // namespace
} // namespace vattn::serving
