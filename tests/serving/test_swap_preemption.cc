/**
 * @file
 * Engine-level tests of the host-memory KV swap tier and the pluggable
 * preemption policy: swapped requests resume without recomputing
 * prefilled tokens (on both backends), kAuto picks the cheaper of
 * recompute vs PCIe round trip, victim selection is a knob with LIFO
 * pinned as the default, prefix-shared pages never swap, and a request
 * that can never fit fails gracefully instead of killing the engine.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "serving/engine.hh"
#include "serving/paged_backend.hh"
#include "serving/vattn_backend.hh"
#include "test_util.hh"

namespace vattn::serving
{
namespace
{

/** KV bytes for @p tokens tokens of Yi-6B on one worker. */
u64
kvBytes(i64 tokens)
{
    return perf::ModelSpec::yi6B().kvBytesPerTokenPerWorker(1) *
           static_cast<u64>(tokens);
}

EngineConfig
pressureConfig(perf::BackendKind kind, PreemptionPolicy policy)
{
    EngineConfig config;
    config.model = perf::ModelSpec::yi6B();
    config.gpu = perf::GpuSpec::a100();
    config.tp_degree = 1;
    config.backend = kind;
    // Room for the four 2000-token prompts but not for all of their
    // decoded contexts: pressure peaks mid-decode.
    config.kv_budget_override = kvBytes(9600);
    config.scheduler.max_num_seqs = 8;
    config.scheduler.max_batched_tokens = 8192;
    config.vattn.max_batch_size = 8;
    config.preemption_policy = policy;
    config.record_iterations = true;
    return config;
}

std::vector<Request>
pressureTrace()
{
    std::vector<Request> trace(4);
    for (std::size_t i = 0; i < trace.size(); ++i) {
        trace[i].id = i;
        trace[i].prompt_tokens = 2000;
        trace[i].max_new_tokens = 600;
    }
    assignOfflineArrivals(trace);
    return trace;
}

/** Total prefill query tokens the engine actually computed. */
i64
prefillTokensComputed(const RunReport &report)
{
    i64 total = 0;
    for (const IterationRecord &record : report.iterations) {
        total += record.prefill_chunk_tokens;
    }
    return total;
}

class SwapPolicyTest
    : public ::testing::TestWithParam<perf::BackendKind>
{
};

TEST_P(SwapPolicyTest, RecomputePolicyRepeatsPrefillWork)
{
    Engine engine(
        pressureConfig(GetParam(), PreemptionPolicy::kRecompute));
    const auto report = engine.run(pressureTrace());
    EXPECT_EQ(report.num_requests, 4);
    ASSERT_GT(report.preemptions, 0u); // the scenario creates pressure
    EXPECT_EQ(report.swap_outs, 0u);
    EXPECT_EQ(report.swap_ins, 0u);
    EXPECT_EQ(report.swap_stall_ns, 0u);
    // Recomputation replays prefill (and re-prefills decoded tokens),
    // so computed prefill tokens exceed the trace's prompt tokens.
    EXPECT_GT(prefillTokensComputed(report), 4 * 2000);
}

TEST_P(SwapPolicyTest, SwappedRequestsResumeWithoutRecompute)
{
    Engine engine(pressureConfig(GetParam(), PreemptionPolicy::kSwap));
    const auto report = engine.run(pressureTrace());
    EXPECT_EQ(report.num_requests, 4);
    ASSERT_GT(report.preemptions, 0u);
    EXPECT_GT(report.swap_outs, 0u);
    EXPECT_EQ(report.swap_ins, report.swap_outs); // everyone came back
    EXPECT_EQ(report.swap_in_bytes, report.swap_out_bytes);
    EXPECT_GT(report.swap_stall_ns, 0u);
    EXPECT_EQ(report.decode_tokens, 4 * 600);
    // The headline property: every prompt token is prefilled exactly
    // once — preemption moved KV over PCIe instead of burning FLOPs.
    EXPECT_EQ(prefillTokensComputed(report), 4 * 2000);
}

TEST_P(SwapPolicyTest, AutoSwapsLongContextsAndRecomputesTinyOnes)
{
    // Long computed contexts: PCIe round trip beats re-prefill, so
    // kAuto must behave like kSwap here.
    Engine engine(pressureConfig(GetParam(), PreemptionPolicy::kAuto));
    const auto report = engine.run(pressureTrace());
    EXPECT_EQ(report.num_requests, 4);
    ASSERT_GT(report.preemptions, 0u);
    EXPECT_GT(report.swap_outs, 0u);
    EXPECT_EQ(prefillTokensComputed(report), 4 * 2000);
}

INSTANTIATE_TEST_SUITE_P(
    Backends, SwapPolicyTest,
    ::testing::Values(perf::BackendKind::kFa2Paged,
                      perf::BackendKind::kFa2VAttention));

TEST(SwapPolicyCost, AutoPrefersRecomputeWhenTheModelSaysSo)
{
    // Price the PCIe link absurdly slow: the round trip always loses
    // against recompute, so kAuto must never swap.
    auto config = pressureConfig(perf::BackendKind::kFa2VAttention,
                                 PreemptionPolicy::kAuto);
    config.pcie.h2d_bytes_per_s = 1e6; // 1 MB/s
    config.pcie.d2h_bytes_per_s = 1e6;
    Engine engine(config);
    const auto report = engine.run(pressureTrace());
    EXPECT_EQ(report.num_requests, 4);
    ASSERT_GT(report.preemptions, 0u);
    EXPECT_EQ(report.swap_outs, 0u);
}

// ---- Victim-selection knob -----------------------------------------

TEST(VictimPolicy, DefaultIsLifo)
{
    EXPECT_EQ(EngineConfig{}.preemption_victim,
              PreemptionVictim::kLifo);
    EXPECT_EQ(EngineConfig{}.preemption_policy,
              PreemptionPolicy::kRecompute);
}

TEST(VictimPolicy, LifoPreemptsTheMostRecentlyAdmitted)
{
    // Batch [500, 500, 500, 8000] against a ~2500-token budget: LIFO
    // (the pinned default) evicts from the back until the rest fits,
    // so exactly the three 500-token requests survive — bit-for-bit
    // the engine's historical behaviour.
    EngineConfig config;
    config.model = perf::ModelSpec::yi6B();
    config.gpu = perf::GpuSpec::a100();
    config.tp_degree = 1;
    config.backend = perf::BackendKind::kFa2VAttention;
    config.kv_budget_override = kvBytes(2500);
    config.scheduler.max_num_seqs = 8;
    config.vattn.max_batch_size = 8;
    config.vattn.page_group = PageGroup::k64KB;
    Engine engine(config);
    auto run = engine.decodeOnlyVaried({500, 500, 500, 8000}, 3);
    EXPECT_EQ(run.effective_batch, 3);
    EXPECT_GE(run.preemptions, 1u);
}

TEST(VictimPolicy, SmallestRecomputeEvictsCheapestFirst)
{
    // Same batch, smallest-recompute victims: the cheap 500-token
    // requests go first, and the 8000-token request alone still
    // exceeds the budget, so it is ultimately dropped — membership of
    // the survivor set is the observable difference vs LIFO.
    EngineConfig config;
    config.model = perf::ModelSpec::yi6B();
    config.gpu = perf::GpuSpec::a100();
    config.tp_degree = 1;
    config.backend = perf::BackendKind::kFa2VAttention;
    config.kv_budget_override = kvBytes(2500);
    config.scheduler.max_num_seqs = 8;
    config.vattn.max_batch_size = 8;
    config.vattn.page_group = PageGroup::k64KB;
    config.preemption_victim = PreemptionVictim::kSmallestRecompute;
    Engine engine(config);
    auto run = engine.decodeOnlyVaried({500, 500, 500, 8000}, 3);
    EXPECT_EQ(run.effective_batch, 0);
    EXPECT_GE(run.preemptions, 3u);
}

// ---- Graceful per-request failure ----------------------------------

TEST(GracefulDrop, MidDecodeGrowthBeyondBudgetDropsTheRequest)
{
    // A lone request whose context grows past the whole KV budget used
    // to livelock/panic the engine; it must now fail alone while the
    // engine completes the rest of the trace.
    EngineConfig config;
    config.model = perf::ModelSpec::yi6B();
    config.gpu = perf::GpuSpec::a100();
    config.tp_degree = 1;
    config.backend = perf::BackendKind::kFa2Paged;
    config.kv_budget_override = kvBytes(1500);
    config.scheduler.max_num_seqs = 4;
    config.vattn.max_batch_size = 4;
    Engine engine(config);
    std::vector<Request> trace(2);
    trace[0].id = 0;
    trace[0].prompt_tokens = 400;
    trace[0].max_new_tokens = 5000; // grows past the 1500-token budget
    trace[1].id = 1;
    trace[1].prompt_tokens = 400;
    trace[1].max_new_tokens = 10;
    assignOfflineArrivals(trace);
    const auto report = engine.run(std::move(trace));
    EXPECT_EQ(report.dropped_requests, 1);
    EXPECT_EQ(report.num_requests, 1);
    EXPECT_EQ(report.latency_s.count(), 1u);
}

// ---- Shared pages stay resident (backend interface level) ----------

TEST(SwapSharing, PagedBackendRefusesSwappingSharedBlocks)
{
    PagedBackend backend(perf::ModelSpec::yi6B(), 1, 16, 64 * MiB,
                         /*enable_prefix_caching=*/true,
                         /*host_swap_bytes=*/64 * MiB);
    ASSERT_TRUE(backend.supportsSwap());
    // Two requests sharing a hashed prompt block.
    std::vector<i32> tokens(64);
    std::iota(tokens.begin(), tokens.end(), 100);
    PrefixHashCache cache_a;
    PrefixKey key{tokens.data(), 64, &cache_a};
    auto a = backend.allocSlot(key, 0);
    ASSERT_TRUE(a.isOk());
    ASSERT_TRUE(backend.ensure({{a.value().slot, 64}}).isOk());
    backend.registerPrefix(a.value().slot, key, 64);
    PrefixHashCache cache_b;
    PrefixKey key_b{tokens.data(), 64, &cache_b};
    auto b = backend.allocSlot(key_b, 63);
    ASSERT_TRUE(b.isOk());
    ASSERT_GT(b.value().cached_tokens, 0);

    // Both ends of the share are pinned to the device.
    EXPECT_FALSE(backend.canSwapOut(a.value().slot));
    EXPECT_FALSE(backend.canSwapOut(b.value().slot));
    EXPECT_EQ(backend.swapOut(a.value().slot).code(),
              ErrorCode::kFailedPrecondition);
    EXPECT_EQ(backend.swapOut(b.value().slot).code(),
              ErrorCode::kFailedPrecondition);

    // Releasing one side unpins the other.
    backend.freeSlot(b.value().slot);
    EXPECT_TRUE(backend.canSwapOut(a.value().slot));
    auto out = backend.swapOut(a.value().slot);
    ASSERT_TRUE(out.isOk());
    EXPECT_GT(out.value().bytes, 0u);
    EXPECT_GT(out.value().stall_ns, 0u);
    EXPECT_TRUE(backend.blockManager().checkInvariants());
}

TEST(SwapSharing, VAttentionBackendRefusesSwappingAliasedGroups)
{
    VAttentionBackend::Options options;
    options.max_batch_size = 4;
    options.page_group = PageGroup::k64KB;
    options.eager_allocation = false;
    options.overlap_allocation = false;
    options.enable_prefix_caching = true;
    options.host_swap_bytes = 64 * MiB;
    VAttentionBackend backend(perf::ModelSpec::yi6B(), 1, 256 * MiB,
                              options);
    ASSERT_TRUE(backend.supportsSwap());
    const i64 tpg =
        backend.runtime().geometry().tokensPerGroup();
    // One fully written group plus change, registered for sharing.
    std::vector<i32> tokens(static_cast<std::size_t>(tpg + 8));
    std::iota(tokens.begin(), tokens.end(), 7);
    PrefixHashCache cache_a;
    PrefixKey key{tokens.data(), static_cast<i64>(tokens.size()),
                  &cache_a};
    auto a = backend.allocSlot(key, 0);
    ASSERT_TRUE(a.isOk());
    ASSERT_TRUE(backend.ensure({{a.value().slot, tpg + 8}}).isOk());
    backend.registerPrefix(a.value().slot, key, tpg + 8);
    PrefixHashCache cache_b;
    PrefixKey key_b{tokens.data(), static_cast<i64>(tokens.size()),
                    &cache_b};
    auto b = backend.allocSlot(key_b, tpg + 7);
    ASSERT_TRUE(b.isOk());
    ASSERT_GT(b.value().cached_tokens, 0);
    ASSERT_GT(backend.runtime().aliasedBytes(), 0u);

    EXPECT_FALSE(backend.canSwapOut(a.value().slot));
    EXPECT_FALSE(backend.canSwapOut(b.value().slot));
    EXPECT_EQ(backend.swapOut(a.value().slot).code(),
              ErrorCode::kFailedPrecondition);
    EXPECT_EQ(backend.swapOut(b.value().slot).code(),
              ErrorCode::kFailedPrecondition);
}

// ---- Engine end-to-end with prefix caching + swap ------------------

TEST(SwapWithPrefixCaching, PressureRunStaysCorrectOnBothBackends)
{
    // Prefix caching pins shared pages; the swap policy must fall back
    // to recomputation for those victims and still finish everything.
    for (auto kind : {perf::BackendKind::kFa2Paged,
                      perf::BackendKind::kFa2VAttention}) {
        auto config = pressureConfig(kind, PreemptionPolicy::kSwap);
        config.enable_prefix_caching = true;
        // Small page-groups so the 1K-token system prompt spans
        // aligned groups and really gets aliased (and thus pinned).
        config.vattn.page_group = PageGroup::k64KB;
        Engine engine(config);
        auto trace = sharedSystemPromptTrace(
            24, /*tenants=*/2, /*system_tokens=*/1024,
            /*user_mean=*/128, /*seed=*/11);
        for (auto &request : trace) {
            request.max_new_tokens = 400;
        }
        assignOfflineArrivals(trace);
        const auto report = engine.run(std::move(trace));
        EXPECT_EQ(report.num_requests, 24) << toString(kind);
        EXPECT_EQ(report.dropped_requests, 0) << toString(kind);
        EXPECT_EQ(report.swap_ins, report.swap_outs) << toString(kind);
    }
}

} // namespace
} // namespace vattn::serving
