/**
 * @file
 * Chunked-prefill hybrid batching: BatchComposer plan composition,
 * engine execution of mixed iterations, TBT / normalized-latency
 * metrics, and the golden regression pinning kPrefillPrioritized to
 * the pre-refactor engine behaviour on the arXiv online trace.
 */

#include <gtest/gtest.h>

#include "serving/engine.hh"
#include "serving/workload.hh"
#include "test_util.hh"

namespace vattn::serving
{
namespace
{

EngineConfig
tinyConfig(perf::BackendKind kind)
{
    EngineConfig config;
    config.model = perf::ModelSpec::yi6B();
    config.gpu = perf::GpuSpec::a100();
    config.tp_degree = 1;
    config.backend = kind;
    config.kv_budget_override = 2 * GiB;
    config.scheduler.max_num_seqs = 8;
    config.scheduler.max_batched_tokens = 8192;
    config.vattn.max_batch_size = 8;
    return config;
}

std::vector<Request>
uniformTrace(int n, i64 prompt, i64 decode)
{
    std::vector<Request> trace(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        trace[static_cast<std::size_t>(i)].id = static_cast<u64>(i);
        trace[static_cast<std::size_t>(i)].prompt_tokens = prompt;
        trace[static_cast<std::size_t>(i)].max_new_tokens = decode;
    }
    assignOfflineArrivals(trace);
    return trace;
}

const auto kAdmitAll = [](const Request &) { return true; };

// ---- BatchComposer unit tests ---------------------------------------

TEST(BatchComposer, PrefillPrioritizedMatchesPickPrefillBatch)
{
    Scheduler::Config config;
    config.max_num_seqs = 8;
    config.max_batched_tokens = 100;
    Scheduler scheduler(config);
    BatchComposer composer(config);
    Request a;
    a.id = 1;
    a.prompt_tokens = 60;
    Request b;
    b.id = 2;
    b.prompt_tokens = 60;
    scheduler.enqueue(&a);
    scheduler.enqueue(&b);

    auto plan = composer.compose(scheduler, {}, kAdmitAll);
    // Monolithic prompts, one per chunk, token budget caps the batch.
    ASSERT_EQ(plan.prefills.size(), 1u);
    EXPECT_TRUE(plan.decodes.empty());
    EXPECT_EQ(plan.prefills[0].request->id, 1u);
    EXPECT_EQ(plan.prefills[0].tokens, 60);
    EXPECT_TRUE(plan.prefills[0].first_chunk);
    EXPECT_EQ(scheduler.numWaiting(), 1u);
}

TEST(BatchComposer, PrefillPrioritizedFallsBackToDecodes)
{
    Scheduler::Config config;
    Scheduler scheduler(config);
    BatchComposer composer(config);
    Request running;
    running.prompt_tokens = 10;
    running.prefilled_tokens = 10;
    running.generated = 3;
    running.state = Request::State::kRunning;
    std::vector<Request *> running_set{&running};

    auto plan = composer.compose(scheduler, running_set, kAdmitAll);
    EXPECT_TRUE(plan.prefills.empty());
    ASSERT_EQ(plan.decodes.size(), 1u);
    EXPECT_EQ(plan.decodes[0], &running);
}

TEST(BatchComposer, StallFreeDecodesAlwaysRideAlong)
{
    Scheduler::Config config;
    config.mode = SchedulingMode::kStallFreeChunked;
    config.chunk_tokens = 100;
    Scheduler scheduler(config);
    BatchComposer composer(config);

    Request decoding;
    decoding.prompt_tokens = 10;
    decoding.prefilled_tokens = 10;
    decoding.generated = 2;
    decoding.state = Request::State::kRunning;
    Request waiting;
    waiting.id = 7;
    waiting.prompt_tokens = 500;
    scheduler.enqueue(&waiting);

    auto plan = composer.compose(scheduler, {&decoding}, kAdmitAll);
    // Mixed iteration: the decode rides along, the waiting prompt's
    // first chunk fills the leftover budget (100 - 1 decode token).
    ASSERT_EQ(plan.decodes.size(), 1u);
    ASSERT_EQ(plan.prefills.size(), 1u);
    EXPECT_TRUE(plan.mixed());
    EXPECT_EQ(plan.prefills[0].request->id, 7u);
    EXPECT_EQ(plan.prefills[0].tokens, 99);
    EXPECT_TRUE(plan.prefills[0].first_chunk);
    EXPECT_FALSE(scheduler.hasWaiting());
}

TEST(BatchComposer, StallFreeOngoingChunkContinuesBeforeNewAdmits)
{
    Scheduler::Config config;
    config.mode = SchedulingMode::kStallFreeChunked;
    config.chunk_tokens = 128;
    Scheduler scheduler(config);
    BatchComposer composer(config);

    Request mid;
    mid.id = 1;
    mid.prompt_tokens = 400;
    mid.prefilled_tokens = 300; // 100 tokens to go
    mid.state = Request::State::kRunning;
    Request fresh;
    fresh.id = 2;
    fresh.prompt_tokens = 1000;
    scheduler.enqueue(&fresh);

    auto plan = composer.compose(scheduler, {&mid}, kAdmitAll);
    ASSERT_EQ(plan.prefills.size(), 2u);
    // The ongoing prompt finishes its tail first...
    EXPECT_EQ(plan.prefills[0].request->id, 1u);
    EXPECT_EQ(plan.prefills[0].tokens, 100);
    EXPECT_FALSE(plan.prefills[0].first_chunk);
    // ...and the fresh prompt gets what budget remains.
    EXPECT_EQ(plan.prefills[1].request->id, 2u);
    EXPECT_EQ(plan.prefills[1].tokens, 28);
    EXPECT_TRUE(plan.prefills[1].first_chunk);
}

TEST(BatchComposer, StallFreeRespectsMaxNumSeqs)
{
    Scheduler::Config config;
    config.mode = SchedulingMode::kStallFreeChunked;
    config.chunk_tokens = 10000;
    config.max_num_seqs = 3;
    Scheduler scheduler(config);
    BatchComposer composer(config);

    Request decoding;
    decoding.prompt_tokens = 10;
    decoding.prefilled_tokens = 10;
    decoding.generated = 1;
    decoding.state = Request::State::kRunning;
    Request a;
    a.id = 1;
    a.prompt_tokens = 100;
    Request b;
    b.id = 2;
    b.prompt_tokens = 100;
    Request c;
    c.id = 3;
    c.prompt_tokens = 100;
    scheduler.enqueue(&a);
    scheduler.enqueue(&b);
    scheduler.enqueue(&c);

    auto plan = composer.compose(scheduler, {&decoding}, kAdmitAll);
    // One running + two new = max_num_seqs; the third stays queued.
    EXPECT_EQ(plan.prefills.size(), 2u);
    EXPECT_EQ(scheduler.numWaiting(), 1u);
}

TEST(BatchComposer, StallFreeKeepsFcfsNoBypass)
{
    Scheduler::Config config;
    config.mode = SchedulingMode::kStallFreeChunked;
    config.chunk_tokens = 1000;
    Scheduler scheduler(config);
    BatchComposer composer(config);

    Request big;
    big.id = 1;
    big.prompt_tokens = 5000;
    Request small;
    small.id = 2;
    small.prompt_tokens = 10;
    scheduler.enqueue(&big);
    scheduler.enqueue(&small);

    // Memory admits only the small request; FCFS still refuses to let
    // it jump the blocked queue head.
    auto plan = composer.compose(
        scheduler, {},
        [](const Request &r) { return r.prompt_tokens < 100; });
    EXPECT_TRUE(plan.empty());
    EXPECT_EQ(scheduler.numWaiting(), 2u);
}

TEST(BatchComposer, StallFreeOversizedPromptChunksAcrossIterations)
{
    Scheduler::Config config;
    config.mode = SchedulingMode::kStallFreeChunked;
    config.chunk_tokens = 1000;
    Scheduler scheduler(config);
    BatchComposer composer(config);

    Request huge;
    huge.prompt_tokens = 2500; // needs ceil(2500/1000) = 3 chunks
    scheduler.enqueue(&huge);

    std::vector<Request *> running;
    std::vector<i64> chunks;
    for (int iter = 0; iter < 4 && chunks.size() < 4; ++iter) {
        auto plan = composer.compose(scheduler, running, kAdmitAll);
        if (plan.prefills.empty()) {
            break;
        }
        ASSERT_EQ(plan.prefills.size(), 1u);
        const auto &chunk = plan.prefills[0];
        chunks.push_back(chunk.tokens);
        if (chunk.first_chunk) {
            chunk.request->state = Request::State::kRunning;
            running.push_back(chunk.request);
        }
        chunk.request->prefilled_tokens += chunk.tokens;
    }
    ASSERT_EQ(chunks.size(), 3u);
    EXPECT_EQ(chunks[0], 1000);
    EXPECT_EQ(chunks[1], 1000);
    EXPECT_EQ(chunks[2], 500);
    EXPECT_TRUE(huge.prefillComplete());
}

// ---- Scheduler::clearWaiting regression -----------------------------

TEST(Scheduler, ClearWaitingResetsDroppedRequestState)
{
    Scheduler scheduler(Scheduler::Config{});
    Request preempted;
    preempted.prompt_tokens = 100;
    // A preempted-then-dropped request carries computed state.
    preempted.prefilled_tokens = 40;
    preempted.generated = 3;
    preempted.slot = 5;
    preempted.last_token_ns = 123;
    Request fresh;
    fresh.prompt_tokens = 10;
    scheduler.enqueue(&preempted);
    scheduler.enqueue(&fresh);

    scheduler.clearWaiting();
    EXPECT_FALSE(scheduler.hasWaiting());
    for (const Request *r : {&preempted, &fresh}) {
        EXPECT_EQ(r->state, Request::State::kPending);
        EXPECT_EQ(r->prefilled_tokens, 0);
        EXPECT_EQ(r->generated, 0);
        EXPECT_EQ(r->slot, -1);
        EXPECT_EQ(r->last_token_ns, 0u);
    }
    // A cleared request can go through a fresh lifecycle.
    scheduler.enqueue(&preempted);
    EXPECT_EQ(preempted.state, Request::State::kWaiting);
    auto batch = scheduler.pickPrefillBatch(0, kAdmitAll);
    ASSERT_EQ(batch.size(), 1u);
    EXPECT_EQ(batch[0], &preempted);
}

// ---- Engine: stall-free chunked execution ---------------------------

TEST(HybridEngine, ChunkedRunCompletesAllRequests)
{
    for (auto kind : {perf::BackendKind::kFa2VAttention,
                      perf::BackendKind::kFa2Paged}) {
        auto config = tinyConfig(kind);
        config.scheduler.mode = SchedulingMode::kStallFreeChunked;
        config.scheduler.chunk_tokens = 512;
        Engine engine(config);
        auto report = engine.run(uniformTrace(12, 2000, 50));
        EXPECT_EQ(report.num_requests, 12);
        EXPECT_EQ(report.decode_tokens, 12 * 50);
        EXPECT_GT(report.mixed_iterations, 0);
    }
}

TEST(HybridEngine, OversizedPromptSpansAtLeastThreeIterations)
{
    auto config = tinyConfig(perf::BackendKind::kFa2VAttention);
    config.scheduler.mode = SchedulingMode::kStallFreeChunked;
    config.scheduler.chunk_tokens = 1024;
    config.record_iterations = true;
    Engine engine(config);
    // 3500-token prompt over a 1024-token budget: 4 chunk iterations.
    auto report = engine.run(uniformTrace(1, 3500, 5));
    EXPECT_EQ(report.num_requests, 1);
    i64 chunk_iterations = 0;
    i64 chunk_tokens = 0;
    for (const auto &iteration : report.iterations) {
        if (iteration.num_prefill_chunks > 0) {
            ++chunk_iterations;
            chunk_tokens += iteration.prefill_chunk_tokens;
            EXPECT_LE(iteration.prefill_chunk_tokens, 1024);
        }
    }
    EXPECT_EQ(chunk_iterations, 4);
    EXPECT_EQ(chunk_tokens, 3500);
}

TEST(HybridEngine, PreemptedHalfPrefilledRequestRecomputesFromZero)
{
    auto config = tinyConfig(perf::BackendKind::kFa2VAttention);
    config.scheduler.mode = SchedulingMode::kStallFreeChunked;
    config.scheduler.chunk_tokens = 512;
    config.kv_budget_override = 600 * MiB; // ~9600 tokens of KV
    config.vattn.page_group = PageGroup::k2MB;
    config.record_iterations = true;
    Engine engine(config);
    auto trace = uniformTrace(6, 1500, 600);
    const i64 total_prompt = 6 * 1500;
    auto report = engine.run(std::move(trace));
    EXPECT_EQ(report.num_requests, 6);
    EXPECT_EQ(report.decode_tokens, 6 * 600);
    EXPECT_GT(report.preemptions, 0u);
    // Preemption restarts the victim's prefill from prompt token 0,
    // so recomputation makes total chunked work exceed the trace's
    // prompt tokens.
    i64 chunk_tokens = 0;
    for (const auto &iteration : report.iterations) {
        chunk_tokens += iteration.prefill_chunk_tokens;
    }
    EXPECT_GT(chunk_tokens, total_prompt);
}

TEST(HybridEngine, MaxNumSeqsCapsHybridBatch)
{
    auto config = tinyConfig(perf::BackendKind::kFa2VAttention);
    config.scheduler.mode = SchedulingMode::kStallFreeChunked;
    config.scheduler.chunk_tokens = 512;
    config.scheduler.max_num_seqs = 4;
    Engine engine(config);
    auto report = engine.run(uniformTrace(16, 1000, 30));
    EXPECT_EQ(report.num_requests, 16);
    EXPECT_EQ(report.peak_batch, 4);
}

TEST(HybridEngine, IterationAccountingCoversAllKinds)
{
    auto config = tinyConfig(perf::BackendKind::kFa2VAttention);
    config.scheduler.mode = SchedulingMode::kStallFreeChunked;
    config.scheduler.chunk_tokens = 512;
    config.record_iterations = true;
    Engine engine(config);
    auto report = engine.run(uniformTrace(8, 1500, 40));
    EXPECT_EQ(static_cast<i64>(report.iterations.size()),
              report.prefill_iterations + report.decode_iterations +
                  report.mixed_iterations);
    TimeNs sum = 0;
    for (const auto &iteration : report.iterations) {
        sum += iteration.duration_ns;
        EXPECT_EQ(iteration.num_prefill_chunks > 0 &&
                      iteration.decode_batch == 0,
                  iteration.is_prefill);
    }
    EXPECT_EQ(sum, report.makespan_ns); // offline run: no idle gaps
}

// ---- TBT and normalized-latency metrics -----------------------------

TEST(HybridEngine, TbtSampleCountMatchesTokenEmissions)
{
    auto config = tinyConfig(perf::BackendKind::kFa2VAttention);
    Engine engine(config);
    auto report = engine.run(uniformTrace(6, 1000, 25));
    ASSERT_EQ(report.preemptions, 0u);
    // Every token after a request's first yields one TBT sample.
    EXPECT_EQ(static_cast<i64>(report.tbt_s.count()),
              report.decode_tokens - report.num_requests);
    EXPECT_GT(report.tbt_s.min(), 0.0);
    EXPECT_EQ(report.normalized_latency_s.count(), 6u);
}

TEST(HybridEngine, NormalizedLatencyIsLatencyPerDecodeToken)
{
    auto config = tinyConfig(perf::BackendKind::kFa2VAttention);
    Engine engine(config);
    auto report = engine.run(uniformTrace(4, 800, 20));
    // Uniform decode lengths: the percentile-by-percentile relation
    // holds exactly.
    EXPECT_DOUBLE_EQ(report.normalized_latency_s.median(),
                     report.latency_s.median() / 20.0);
    EXPECT_DOUBLE_EQ(report.normalized_latency_s.max(),
                     report.latency_s.max() / 20.0);
}

TEST(HybridEngine, StallFreeCutsTailTbtOnLongPromptTrace)
{
    // The headline behaviour: long arXiv prompts stall running
    // decodes for whole prefill iterations under the prioritized
    // policy; chunking bounds the stall at one iteration.
    auto run = [](SchedulingMode mode) {
        EngineConfig config;
        config.model = perf::ModelSpec::yi6B();
        config.tp_degree = 1;
        config.backend = perf::BackendKind::kFa2VAttention;
        config.scheduler.max_num_seqs = 256;
        config.scheduler.max_batched_tokens = 192 * 1024;
        config.scheduler.mode = mode;
        config.scheduler.chunk_tokens = 2048;
        config.vattn.max_batch_size = 256;
        auto trace = arxivOnlineTrace(64);
        assignPoissonArrivals(trace, 0.25, 2024);
        Engine engine(config);
        return engine.run(std::move(trace));
    };
    const auto prioritized = run(SchedulingMode::kPrefillPrioritized);
    const auto chunked = run(SchedulingMode::kStallFreeChunked);
    EXPECT_EQ(prioritized.num_requests, 64);
    EXPECT_EQ(chunked.num_requests, 64);
    // Same tokens served either way.
    EXPECT_EQ(chunked.decode_tokens, prioritized.decode_tokens);
    EXPECT_LT(chunked.tbt_s.p99(), 0.5 * prioritized.tbt_s.p99());
    EXPECT_LT(chunked.tbt_s.max(), 0.2 * prioritized.tbt_s.max());
}

// ---- Golden regression: kPrefillPrioritized == pre-refactor ---------

struct Golden
{
    perf::BackendKind kind;
    u64 kv_budget_override;
    int n;
    double qps;
    i64 num_requests;
    i64 prefill_iterations;
    i64 decode_iterations;
    u64 preemptions;
    i64 peak_batch;
    TimeNs makespan_ns;
    TimeNs busy_ns;
    double latency_median_s;
    double latency_p99_s;
    double ttft_median_s;
};

class GoldenRegression : public ::testing::TestWithParam<Golden>
{
};

TEST_P(GoldenRegression, PrefillPrioritizedReproducesPreRefactorRun)
{
    const Golden &golden = GetParam();
    EngineConfig config;
    config.model = perf::ModelSpec::yi6B();
    config.gpu = perf::GpuSpec::a100();
    config.tp_degree = 1;
    config.backend = golden.kind;
    config.kv_budget_override = golden.kv_budget_override;
    config.scheduler.max_num_seqs = 256;
    config.scheduler.max_batched_tokens = 192 * 1024;
    config.vattn.max_batch_size = 256;
    auto trace = arxivOnlineTrace(golden.n);
    assignPoissonArrivals(trace, golden.qps, 2024);
    Engine engine(config);
    const auto report = engine.run(std::move(trace));

    // Scheduling decisions must match the pre-refactor engine
    // exactly: same iteration sequence, same preemptions.
    EXPECT_EQ(report.num_requests, golden.num_requests);
    EXPECT_EQ(report.prefill_iterations, golden.prefill_iterations);
    EXPECT_EQ(report.decode_iterations, golden.decode_iterations);
    EXPECT_EQ(report.mixed_iterations, 0);
    EXPECT_EQ(report.preemptions, golden.preemptions);
    EXPECT_EQ(report.peak_batch, golden.peak_batch);
    // Virtual-time results agree to sub-microsecond (exact on the
    // reference toolchain; the slack only absorbs cross-toolchain
    // FP-contraction differences).
    EXPECT_NEAR(static_cast<double>(report.makespan_ns),
                static_cast<double>(golden.makespan_ns), 1e3);
    EXPECT_NEAR(static_cast<double>(report.busy_ns),
                static_cast<double>(golden.busy_ns), 1e3);
    EXPECT_NEAR(report.latency_s.median(), golden.latency_median_s,
                1e-6);
    EXPECT_NEAR(report.latency_s.p99(), golden.latency_p99_s, 1e-6);
    EXPECT_NEAR(report.ttft_s.median(), golden.ttft_median_s, 1e-6);
}

// Captured from the pre-refactor engine (commit 5ac9b1d) with the
// golden-capture harness: arXiv online trace, Yi-6B TP-1, arrival
// seed 2024. One correction: the pre-refactor report double-counted
// preemptions (events at preemption time plus per-request totals at
// finish, exactly 2x when every preempted request completes, as in
// these runs); the golden values below are the true event counts,
// i.e. the captured 60/140/216 halved.
INSTANTIATE_TEST_SUITE_P(
    PreRefactor, GoldenRegression,
    ::testing::Values(
        Golden{perf::BackendKind::kFa2VAttention, 0, 64, 0.25, 64, 46,
               2897, 30, 28, 275589569625, 273092652142,
               64.590524985499997, 173.23790165374999,
               7.5961115860000001},
        Golden{perf::BackendKind::kFa2Paged, 0, 64, 0.25, 64, 47,
               2243, 70, 31, 300410591200, 297913673717,
               100.83197760499999, 237.39405995185999,
               12.173029296500001},
        Golden{perf::BackendKind::kFa2VAttention, 8ull * GiB, 32, 0.5,
               32, 31, 4036, 108, 4, 165523627466, 164275168725,
               52.360582227499997, 104.92974204530002,
               42.932052745}));

TEST(HybridEngine, PrefillPrioritizedIsDeterministicIterationForIteration)
{
    RunReport reports[2];
    for (auto &report : reports) {
        auto config = tinyConfig(perf::BackendKind::kFa2VAttention);
        config.kv_budget_override = 0;
        config.record_iterations = true;
        Engine engine(config);
        auto trace = arxivOnlineTrace(24, 3);
        assignPoissonArrivals(trace, 0.5, 99);
        report = engine.run(std::move(trace));
    }
    ASSERT_EQ(reports[0].iterations.size(),
              reports[1].iterations.size());
    for (std::size_t i = 0; i < reports[0].iterations.size(); ++i) {
        const auto &a = reports[0].iterations[i];
        const auto &b = reports[1].iterations[i];
        EXPECT_EQ(a.start_ns, b.start_ns);
        EXPECT_EQ(a.duration_ns, b.duration_ns);
        EXPECT_EQ(a.is_prefill, b.is_prefill);
        EXPECT_EQ(a.batch, b.batch);
        EXPECT_EQ(a.prefill_chunk_tokens, b.prefill_chunk_tokens);
        EXPECT_EQ(a.decode_batch, b.decode_batch);
    }
}

} // namespace
} // namespace vattn::serving
