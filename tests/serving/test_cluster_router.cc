#include <algorithm>
#include <thread>

#include <gtest/gtest.h>

#include "serving/cluster.hh"
#include "test_util.hh"

namespace vattn::serving
{
namespace
{

EngineConfig
replicaConfig(perf::BackendKind kind = perf::BackendKind::kFa2VAttention)
{
    EngineConfig config;
    config.model = perf::ModelSpec::yi6B();
    config.gpu = perf::GpuSpec::a100();
    config.tp_degree = 1;
    config.backend = kind;
    config.kv_budget_override = 2 * GiB;
    config.scheduler.max_num_seqs = 8;
    config.scheduler.max_batched_tokens = 8192;
    config.vattn.max_batch_size = 8;
    return config;
}

std::vector<Request>
chatTrace(int n, double qps, u64 seed)
{
    auto trace = openChatTrace(n, seed);
    assignPoissonArrivals(trace, qps, seed + 11);
    return trace;
}

std::function<Router::Estimate(int)>
flatEstimate(TimeNs service_ns, u64 kv_bytes)
{
    return [service_ns, kv_bytes](int) {
        return Router::Estimate{service_ns, kv_bytes};
    };
}

// ---- Router unit tests ---------------------------------------------

TEST(Router, RoundRobinCycles)
{
    Router router(RoutingPolicy::kRoundRobin,
                  {{1 * GiB}, {1 * GiB}, {1 * GiB}});
    for (int i = 0; i < 9; ++i) {
        EXPECT_EQ(router.route(static_cast<TimeNs>(i),
                               flatEstimate(1000, 100)),
                  i % 3);
    }
}

TEST(Router, JoinShortestQueueSpreadsAndDrains)
{
    Router router(RoutingPolicy::kJoinShortestQueue,
                  {{1 * GiB}, {1 * GiB}});
    // Simultaneous arrivals alternate via the lowest-index tie-break.
    EXPECT_EQ(router.route(0, flatEstimate(100, 1)), 0);
    EXPECT_EQ(router.route(0, flatEstimate(100, 1)), 1);
    EXPECT_EQ(router.route(0, flatEstimate(500, 1)), 0);
    EXPECT_EQ(router.outstanding(0), 2);
    EXPECT_EQ(router.outstanding(1), 1);
    // By t=200 the two 100ns requests have drained; replica 0 still
    // holds the 500ns one, so the next arrival joins replica 1.
    EXPECT_EQ(router.route(200, flatEstimate(100, 1)), 1);
    EXPECT_EQ(router.outstanding(0), 1);
    EXPECT_EQ(router.outstanding(1), 1);
}

TEST(Router, LeastKvPressureNormalizesByBudget)
{
    // Replica 1 has 4x the budget: equal commitments pressure it 4x
    // less, so it absorbs most of a simultaneous burst.
    Router router(RoutingPolicy::kLeastKvPressure,
                  {{1 * GiB}, {4 * GiB}});
    int to_large = 0;
    for (int i = 0; i < 10; ++i) {
        to_large += router.route(0, flatEstimate(1000000, 64 * MiB));
    }
    EXPECT_EQ(to_large, 8); // 1:4 budget ratio => 2:8 split
    EXPECT_GT(router.kvBytes(1), router.kvBytes(0));
    // Pressure stays budget-normalized within one request of even.
    EXPECT_NEAR(router.kvPressure(0), router.kvPressure(1),
                static_cast<double>(64 * MiB) / (1 * GiB));
}

TEST(Router, KvPressureDrainsOverTime)
{
    Router router(RoutingPolicy::kLeastKvPressure, {{1 * GiB}});
    router.route(0, flatEstimate(100, 512 * MiB));
    EXPECT_DOUBLE_EQ(router.kvPressure(0), 0.5);
    router.route(1000, flatEstimate(100, 1 * MiB));
    EXPECT_EQ(router.kvBytes(0), 1 * MiB); // first request retired
}

TEST(Router, RejectsMalformedInput)
{
    test::ScopedThrowErrors guard;
    Router router(RoutingPolicy::kRoundRobin, {{1 * GiB}, {1 * GiB}});
    // Null estimator.
    EXPECT_THROW(router.route(0, nullptr), SimError);
    // Time going backwards.
    router.route(100, flatEstimate(1, 1));
    EXPECT_THROW(router.route(50, flatEstimate(1, 1)), SimError);
    // Empty cluster / zero budget are configuration errors.
    EXPECT_THROW(Router(RoutingPolicy::kRoundRobin, {}), SimError);
    EXPECT_THROW(Router(RoutingPolicy::kRoundRobin, {{0}}), SimError);
}

TEST(Router, PolicyNames)
{
    EXPECT_STREQ(toString(RoutingPolicy::kRoundRobin), "round_robin");
    EXPECT_STREQ(toString(RoutingPolicy::kJoinShortestQueue),
                 "join_shortest_queue");
    EXPECT_STREQ(toString(RoutingPolicy::kLeastKvPressure),
                 "least_kv_pressure");
}

// ---- Cluster tests --------------------------------------------------

TEST(Cluster, SingleReplicaMatchesEngine)
{
    auto trace = chatTrace(40, 4.0, 17);
    Engine engine(replicaConfig());
    const auto solo = engine.run(trace);

    ServingCluster cluster(ServingCluster::uniform(
        replicaConfig(), 1, RoutingPolicy::kJoinShortestQueue));
    const auto report = cluster.run(trace);

    EXPECT_EQ(report.merged.makespan_ns, solo.makespan_ns);
    EXPECT_EQ(report.merged.num_requests, solo.num_requests);
    EXPECT_EQ(report.merged.decode_tokens, solo.decode_tokens);
    EXPECT_EQ(report.merged.preemptions, solo.preemptions);
    EXPECT_DOUBLE_EQ(report.merged.latency_s.median(),
                     solo.latency_s.median());
    EXPECT_DOUBLE_EQ(report.request_imbalance, 1.0);
    EXPECT_DOUBLE_EQ(report.jain_fairness, 1.0);
}

TEST(Cluster, EveryRequestServedExactlyOnce)
{
    const int n = 60;
    auto trace = chatTrace(n, 8.0, 23);
    for (RoutingPolicy policy : kAllRoutingPolicies) {
        ServingCluster cluster(
            ServingCluster::uniform(replicaConfig(), 3, policy));
        const auto report = cluster.run(trace);
        EXPECT_EQ(report.merged.num_requests, n) << toString(policy);
        EXPECT_EQ(report.merged.latency_s.count(),
                  static_cast<u64>(n));
        i64 assigned = 0;
        for (std::size_t r = 0; r < report.assigned.size(); ++r) {
            assigned += report.assigned[r];
            EXPECT_EQ(report.assigned[r],
                      report.replicas[r].num_requests);
            // Busy time excludes idle gaps between arrivals.
            EXPECT_GT(report.replicas[r].busy_ns, 0u);
            EXPECT_LE(report.replicas[r].busy_ns,
                      report.replicas[r].makespan_ns);
        }
        EXPECT_EQ(assigned, n) << toString(policy);
        EXPECT_GE(report.busy_imbalance, 1.0) << toString(policy);
    }
}

TEST(Cluster, SecondRunOnSameClusterPanics)
{
    // Replica clocks are consumed by a run; silent reuse would shift
    // every arrival of the next trace into the past.
    test::ScopedThrowErrors guard;
    ServingCluster cluster(ServingCluster::uniform(
        replicaConfig(), 2, RoutingPolicy::kRoundRobin));
    cluster.run(chatTrace(6, 6.0, 53));
    EXPECT_THROW(cluster.run(chatTrace(6, 6.0, 53)), SimError);
}

TEST(Cluster, DeterministicMergedReportAcrossRuns)
{
    // Same seed => byte-identical merged report, independent of how
    // the four worker threads interleave.
    ClusterReport reports[2];
    for (auto &report : reports) {
        auto config = ServingCluster::uniform(
            replicaConfig(), 4, RoutingPolicy::kLeastKvPressure);
        config.replicas[1].kv_budget_override = 1 * GiB; // mild skew
        ServingCluster cluster(std::move(config));
        report = cluster.run(chatTrace(64, 10.0, 31));
    }
    EXPECT_EQ(reports[0].merged.makespan_ns,
              reports[1].merged.makespan_ns);
    EXPECT_EQ(reports[0].merged.preemptions,
              reports[1].merged.preemptions);
    EXPECT_EQ(reports[0].assigned, reports[1].assigned);
    // Full latency sample vectors, bit for bit.
    EXPECT_EQ(reports[0].merged.latency_s.sorted(),
              reports[1].merged.latency_s.sorted());
    EXPECT_EQ(reports[0].merged.ttft_s.sorted(),
              reports[1].merged.ttft_s.sorted());
    for (int r = 0; r < 4; ++r) {
        const auto idx = static_cast<std::size_t>(r);
        EXPECT_EQ(reports[0].replicas[idx].makespan_ns,
                  reports[1].replicas[idx].makespan_ns);
        EXPECT_EQ(reports[0].replicas[idx].decode_iterations,
                  reports[1].replicas[idx].decode_iterations);
    }
    EXPECT_DOUBLE_EQ(reports[0].jain_fairness,
                     reports[1].jain_fairness);
    EXPECT_DOUBLE_EQ(reports[0].merged.latency_s.mean(),
                     reports[1].merged.latency_s.mean());
}

TEST(Cluster, RoutingDecisionsMadeUpFrontAreInspectable)
{
    auto trace = chatTrace(24, 6.0, 37);
    ServingCluster cluster(ServingCluster::uniform(
        replicaConfig(), 2, RoutingPolicy::kRoundRobin));
    const auto assignment = cluster.routeTrace(trace);
    ASSERT_EQ(assignment.size(), trace.size());
    // Poisson arrivals are strictly increasing with overwhelming
    // probability, so round-robin alternates in arrival order.
    int flips = 0;
    for (std::size_t i = 1; i < assignment.size(); ++i) {
        flips += assignment[i] != assignment[i - 1];
    }
    EXPECT_EQ(flips, static_cast<int>(assignment.size()) - 1);
    // run() serves exactly that assignment.
    const auto report = cluster.run(trace);
    i64 expect0 = 0;
    for (int replica : assignment) {
        expect0 += replica == 0;
    }
    EXPECT_EQ(report.assigned[0], expect0);
}

TEST(Cluster, LeastKvPressureFavoursBiggerReplica)
{
    // 3:1 budget skew: the pressure-aware policy must shift load to
    // the big replica while round-robin splits evenly regardless.
    auto make = [](RoutingPolicy policy) {
        auto config = ServingCluster::uniform(replicaConfig(), 2,
                                              policy);
        config.replicas[0].kv_budget_override = 3 * GiB;
        config.replicas[1].kv_budget_override = 1 * GiB;
        return ServingCluster(std::move(config));
    };
    auto trace = chatTrace(48, 12.0, 41);

    auto rr = make(RoutingPolicy::kRoundRobin);
    const auto rr_report = rr.run(trace);
    EXPECT_EQ(rr_report.assigned[0], rr_report.assigned[1]);

    auto kv = make(RoutingPolicy::kLeastKvPressure);
    const auto kv_report = kv.run(trace);
    EXPECT_GT(kv_report.assigned[0], kv_report.assigned[1]);
    EXPECT_GT(kv_report.request_imbalance, 1.0);
    EXPECT_LT(kv_report.jain_fairness, 1.0);
}

TEST(Cluster, MergedIterationsSortedByTimestamp)
{
    auto config = replicaConfig();
    config.record_iterations = true;
    ServingCluster cluster(ServingCluster::uniform(
        config, 3, RoutingPolicy::kJoinShortestQueue));
    const auto report = cluster.run(chatTrace(30, 9.0, 43));
    ASSERT_FALSE(report.merged.iterations.empty());
    std::size_t total = 0;
    for (const auto &replica : report.replicas) {
        total += replica.iterations.size();
    }
    EXPECT_EQ(report.merged.iterations.size(), total);
    for (std::size_t i = 1; i < report.merged.iterations.size(); ++i) {
        EXPECT_GE(report.merged.iterations[i].start_ns,
                  report.merged.iterations[i - 1].start_ns);
    }
}

TEST(Cluster, EmptyTraceYieldsZeroedReport)
{
    ServingCluster cluster(ServingCluster::uniform(
        replicaConfig(), 2, RoutingPolicy::kJoinShortestQueue));
    const auto report = cluster.run({});
    EXPECT_EQ(report.merged.num_requests, 0);
    EXPECT_EQ(report.merged.makespan_ns, 0u);
    EXPECT_EQ(report.merged.requestsPerMinute(), 0.0);
    EXPECT_EQ(report.merged.decodeTokensPerSecond(), 0.0);
    EXPECT_DOUBLE_EQ(report.jain_fairness, 1.0);
    EXPECT_DOUBLE_EQ(report.request_imbalance, 0.0);
}

TEST(Cluster, ProgressAccumulatorMatchesMergedReport)
{
    // The worker threads accumulate run progress into the shared
    // mutex-guarded counter; after the run it must agree exactly with
    // the deterministic merged report (integer sums are
    // order-independent). Polling it concurrently from this thread is
    // the cross-thread read the thread-safety annotations certify —
    // and a data-race probe under the TSan preset.
    ServingCluster cluster(ServingCluster::uniform(
        replicaConfig(), 4, RoutingPolicy::kRoundRobin));
    EXPECT_EQ(cluster.progress().replicas_finished, 0);

    ClusterReport report;
    std::thread runner([&cluster, &report] {
        report = cluster.run(chatTrace(32, 8.0, 91));
    });
    // Concurrent observation: monotone, never past the replica count.
    int last_seen = 0;
    while (last_seen < 4) {
        const auto snapshot = cluster.progress();
        EXPECT_GE(snapshot.replicas_finished, last_seen);
        EXPECT_LE(snapshot.replicas_finished, 4);
        last_seen = std::max(last_seen, snapshot.replicas_finished);
    }
    runner.join();

    const auto final_progress = cluster.progress();
    EXPECT_EQ(final_progress.replicas_finished, 4);
    EXPECT_EQ(final_progress.requests_finished,
              report.merged.num_requests);
    EXPECT_EQ(final_progress.tokens_served,
              report.merged.prompt_tokens + report.merged.decode_tokens);
}

TEST(Cluster, MixedBackendReplicasServe)
{
    // A cluster may mix vAttention and paged replicas (e.g. staged
    // rollout); both serve their share.
    ServingCluster::Config config;
    config.replicas = {replicaConfig(perf::BackendKind::kFa2VAttention),
                       replicaConfig(perf::BackendKind::kFa2Paged)};
    config.policy = RoutingPolicy::kJoinShortestQueue;
    ServingCluster cluster(std::move(config));
    const auto report = cluster.run(chatTrace(24, 6.0, 47));
    EXPECT_EQ(report.merged.num_requests, 24);
    EXPECT_GT(report.assigned[0], 0);
    EXPECT_GT(report.assigned[1], 0);
}

} // namespace
} // namespace vattn::serving
