#include <cmath>

#include <gtest/gtest.h>

#include "serving/engine.hh"
#include "test_util.hh"

namespace vattn::serving
{
namespace
{

EngineConfig
baseConfig(perf::BackendKind kind)
{
    EngineConfig config;
    config.model = perf::ModelSpec::yi6B();
    config.gpu = perf::GpuSpec::a100();
    config.tp_degree = 1;
    config.backend = kind;
    config.kv_budget_override = 2 * GiB;
    config.scheduler.max_num_seqs = 8;
    config.scheduler.max_batched_tokens = 8192;
    config.vattn.max_batch_size = 8;
    return config;
}

std::vector<Request>
uniformTrace(int n, i64 prompt, i64 decode)
{
    std::vector<Request> trace(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        trace[static_cast<std::size_t>(i)].id = static_cast<u64>(i);
        trace[static_cast<std::size_t>(i)].prompt_tokens = prompt;
        trace[static_cast<std::size_t>(i)].max_new_tokens = decode;
    }
    assignOfflineArrivals(trace);
    return trace;
}

TEST(EngineExtended, DeterministicAcrossRuns)
{
    // Identical config + trace => bit-identical virtual-time results.
    RunReport reports[2];
    for (auto &report : reports) {
        auto config = baseConfig(perf::BackendKind::kFa2VAttention);
        config.kv_budget_override = 0; // long prompts need real budget
        Engine engine(config);
        auto trace = arxivOnlineTrace(40, 3);
        assignPoissonArrivals(trace, 0.5, 99);
        report = engine.run(std::move(trace));
    }
    EXPECT_EQ(reports[0].makespan_ns, reports[1].makespan_ns);
    EXPECT_EQ(reports[0].decode_iterations,
              reports[1].decode_iterations);
    EXPECT_EQ(reports[0].preemptions, reports[1].preemptions);
    EXPECT_DOUBLE_EQ(reports[0].latency_s.median(),
                     reports[1].latency_s.median());
}

TEST(EngineExtended, TensorSlicingBackendServes)
{
    auto config = baseConfig(perf::BackendKind::kFa2VAttention);
    config.vattn.tensor_slicing = true;
    config.vattn.page_group = PageGroup::k2MB;
    Engine engine(config);
    auto report = engine.run(uniformTrace(8, 1500, 40));
    EXPECT_EQ(report.num_requests, 8);
    EXPECT_EQ(report.decode_tokens, 8 * 40);
}

TEST(EngineExtended, SmallPageGroupBackendsServe)
{
    for (PageGroup group : kAllPageGroups) {
        auto config = baseConfig(perf::BackendKind::kFa2VAttention);
        config.vattn.page_group = group;
        Engine engine(config);
        auto report = engine.run(uniformTrace(6, 1000, 25));
        EXPECT_EQ(report.num_requests, 6) << toString(group);
    }
}

TEST(EngineExtended, Fa3OnHopper)
{
    auto config = baseConfig(perf::BackendKind::kFa3VAttention);
    config.gpu = perf::GpuSpec::h100();
    Engine fa3(config);
    auto report_fa3 = fa3.run(uniformTrace(6, 20000, 20));

    auto config_fa2 = baseConfig(perf::BackendKind::kFa2VAttention);
    config_fa2.gpu = perf::GpuSpec::h100();
    Engine fa2(config_fa2);
    auto report_fa2 = fa2.run(uniformTrace(6, 20000, 20));

    EXPECT_EQ(report_fa3.num_requests, 6);
    // FA3's Hopper-tuned kernels win end to end (§7.5).
    EXPECT_LT(report_fa3.makespan_ns, report_fa2.makespan_ns);
}

TEST(EngineExtended, Fa3OnAmpereRefused)
{
    test::ScopedThrowErrors guard;
    auto config = baseConfig(perf::BackendKind::kFa3VAttention);
    config.gpu = perf::GpuSpec::a100();
    Engine engine(config);
    EXPECT_THROW(engine.run(uniformTrace(1, 1000, 5)), SimError);
}

TEST(EngineExtended, DecodeOnlyPreemptsWhenOversubscribed)
{
    auto config = baseConfig(perf::BackendKind::kFa2VAttention);
    config.kv_budget_override = 700 * MiB; // ~11K tokens of KV
    Engine engine(config);
    // 8 requests x 2048 tokens = 16K tokens: does not fit; the run
    // must shed requests instead of crashing.
    auto run = engine.decodeOnly(8, 2048, 20);
    EXPECT_GT(run.preemptions, 0u);
    EXPECT_LT(run.effective_batch, 8);
    EXPECT_GT(run.effective_batch, 0);
    EXPECT_GT(run.tokens_per_s, 0.0);
}

TEST(EngineExtended, ThroughputOrderingAcrossBackends)
{
    // At a decode-heavy operating point the kernel-quality ordering
    // of Figure 8 must hold end to end: FA2 back-ends > FI_Paged >
    // vLLM.
    auto tput = [&](perf::BackendKind kind) {
        auto config = baseConfig(kind);
        config.kv_budget_override = 0; // 8 x 16K tokens must fit
        Engine engine(config);
        return engine.decodeOnly(8, 16 * 1024, 100).tokens_per_s;
    };
    const double vllm = tput(perf::BackendKind::kVllmPaged);
    const double fi = tput(perf::BackendKind::kFiPaged);
    const double fa2_paged = tput(perf::BackendKind::kFa2Paged);
    const double fa2_vattn = tput(perf::BackendKind::kFa2VAttention);
    EXPECT_GT(fi, vllm);
    EXPECT_GT(fa2_paged, fi);
    EXPECT_GT(fa2_vattn, fi);
    // FA2_vAttention ~= FA2_Paged (the overlapping lines of Fig. 8).
    EXPECT_NEAR(fa2_vattn / fa2_paged, 1.0, 0.05);
}

TEST(EngineExtended, ReportAccountingConsistent)
{
    auto config = baseConfig(perf::BackendKind::kFa2VAttention);
    config.record_iterations = true;
    Engine engine(config);
    auto trace = uniformTrace(10, 800, 30);
    i64 expect_prompt = 0;
    for (const auto &request : trace) {
        expect_prompt += request.prompt_tokens;
    }
    auto report = engine.run(std::move(trace));
    EXPECT_EQ(report.prompt_tokens, expect_prompt);
    EXPECT_EQ(report.decode_tokens, 10 * 30);
    // Iteration duration sum accounts for the whole makespan (offline
    // run: no idle gaps).
    TimeNs sum = 0;
    for (const auto &iteration : report.iterations) {
        sum += iteration.duration_ns;
    }
    EXPECT_EQ(sum, report.makespan_ns);
    EXPECT_EQ(report.busy_ns, report.makespan_ns);
    // Latency stats cover every request.
    EXPECT_EQ(report.latency_s.count(), 10u);
    EXPECT_GE(report.latency_s.min(), 0.0);
}

TEST(EngineExtended, EmptyTraceYieldsZeroedFiniteReport)
{
    // Regression: an empty run has no elapsed virtual time and the
    // rate aggregates must come back as 0, never inf/NaN.
    Engine engine(baseConfig(perf::BackendKind::kFa2VAttention));
    const auto report = engine.run({});
    EXPECT_EQ(report.num_requests, 0);
    EXPECT_EQ(report.makespan_ns, 0u);
    EXPECT_EQ(report.requestsPerMinute(), 0.0);
    EXPECT_EQ(report.decodeTokensPerSecond(), 0.0);
    EXPECT_EQ(report.prefillTokensPerSecond(), 0.0);
    EXPECT_TRUE(std::isfinite(report.requestsPerMinute()));
    EXPECT_TRUE(std::isfinite(report.decodeTokensPerSecond()));
    EXPECT_TRUE(std::isfinite(report.prefillTokensPerSecond()));
}

TEST(EngineExtended, ZeroIterationDecodeRunIsFinite)
{
    // decodeOnly with zero timed iterations must not divide by a zero
    // elapsed time either.
    Engine engine(baseConfig(perf::BackendKind::kFa2VAttention));
    const auto run = engine.decodeOnly(2, 512, 0);
    EXPECT_EQ(run.tokens_per_s, 0.0);
    EXPECT_EQ(run.alloc_bytes_per_s, 0.0);
    EXPECT_TRUE(std::isfinite(run.tokens_per_s));
    EXPECT_TRUE(std::isfinite(run.alloc_bytes_per_s));
}

TEST(EngineExtended, VattnStatsExposedThroughBackend)
{
    auto config = baseConfig(perf::BackendKind::kFa2VAttention);
    Engine engine(config);
    ASSERT_NE(engine.vattnBackend(), nullptr);
    engine.run(uniformTrace(4, 3000, 10));
    const auto &stats = engine.vattnBackend()->runtime().stats();
    EXPECT_GT(stats.steps, 0u);
    EXPECT_GT(stats.sync_handles + stats.background_handles, 0);
    // Paged engines expose no vattn backend.
    Engine paged(baseConfig(perf::BackendKind::kFa2Paged));
    EXPECT_EQ(paged.vattnBackend(), nullptr);
}

} // namespace
} // namespace vattn::serving
