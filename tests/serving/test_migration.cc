/**
 * @file
 * Cross-replica KV migration: backend-level export/import of swapped
 * KV images (both backend families, TP lockstep, rollback), the
 * engine-level migrateQueuedTo/migrateSwappedTo transactions, and the
 * cluster-level migration accounting that ties them together.
 */

#include <gtest/gtest.h>

#include "serving/cluster.hh"
#include "serving/engine.hh"
#include "serving/paged_backend.hh"
#include "serving/vattn_backend.hh"
#include "serving/workload.hh"
#include "test_util.hh"

namespace vattn::serving
{
namespace
{

u64
kvBytes(i64 tokens)
{
    return perf::ModelSpec::yi6B().kvBytesPerTokenPerWorker(1) *
           static_cast<u64>(tokens);
}

VAttentionBackend::Options
swapOptions(u64 host_swap_bytes)
{
    VAttentionBackend::Options options;
    options.max_batch_size = 4;
    options.eager_allocation = false;
    options.overlap_allocation = false;
    options.host_swap_bytes = host_swap_bytes;
    return options;
}

// ---- Backend level: export / import of swapped KV images ------------

TEST(KvExportImportTest, VAttentionRoundTrip)
{
    VAttentionBackend donor(perf::ModelSpec::yi6B(), 1, 512 * MiB,
                            swapOptions(1 * GiB));
    VAttentionBackend target(perf::ModelSpec::yi6B(), 1, 512 * MiB,
                             swapOptions(1 * GiB));
    ASSERT_TRUE(donor.supportsKvExport());
    ASSERT_TRUE(target.supportsKvExport());

    auto slot = donor.allocSlot();
    ASSERT_TRUE(slot.isOk());
    ASSERT_TRUE(donor.ensure({{slot.value(), 4096}}).isOk());
    const u64 device_bytes = donor.bytesInUse();
    EXPECT_GT(device_bytes, 0u);

    auto out = donor.swapOut(slot.value());
    ASSERT_TRUE(out.isOk());
    EXPECT_EQ(donor.bytesInUse(), 0u);

    auto image = donor.exportSwapped(slot.value());
    ASSERT_TRUE(image.isOk());
    EXPECT_EQ(image.value().bytes, out.value().bytes);
    EXPECT_FALSE(image.value().empty());
    EXPECT_FALSE(image.value().buffer_leads.empty());
    EXPECT_TRUE(image.value().group_blocks.empty());

    ASSERT_TRUE(target.canImportSwapped(image.value()));
    auto imported = target.importSwapped(image.value());
    ASSERT_TRUE(imported.isOk());
    ASSERT_TRUE(target.canSwapIn(imported.value()));
    auto in = target.swapIn(imported.value());
    ASSERT_TRUE(in.isOk());
    EXPECT_EQ(in.value().bytes, out.value().bytes);
    // Same live ranges mapped on the target as the donor held.
    EXPECT_EQ(target.bytesInUse(), device_bytes);
    target.freeSlot(imported.value());
}

TEST(KvExportImportTest, PagedRoundTrip)
{
    PagedBackend donor(perf::ModelSpec::yi6B(), 1, 16, 64 * MiB,
                       /*enable_prefix_caching=*/false,
                       /*host_swap_bytes=*/1 * GiB);
    PagedBackend target(perf::ModelSpec::yi6B(), 1, 16, 64 * MiB,
                        /*enable_prefix_caching=*/false,
                        /*host_swap_bytes=*/1 * GiB);
    ASSERT_TRUE(donor.supportsKvExport());

    auto slot = donor.allocSlot();
    ASSERT_TRUE(slot.isOk());
    ASSERT_TRUE(donor.ensure({{slot.value(), 1000}}).isOk());
    const u64 device_bytes = donor.bytesInUse();

    auto out = donor.swapOut(slot.value());
    ASSERT_TRUE(out.isOk());
    auto image = donor.exportSwapped(slot.value());
    ASSERT_TRUE(image.isOk());
    EXPECT_EQ(image.value().bytes, out.value().bytes);
    EXPECT_FALSE(image.value().group_blocks.empty());
    EXPECT_TRUE(image.value().buffer_leads.empty());

    ASSERT_TRUE(target.canImportSwapped(image.value()));
    auto imported = target.importSwapped(image.value());
    ASSERT_TRUE(imported.isOk());
    auto in = target.swapIn(imported.value());
    ASSERT_TRUE(in.isOk());
    EXPECT_EQ(in.value().bytes, out.value().bytes);
    EXPECT_EQ(target.bytesInUse(), device_bytes);
    target.freeSlot(imported.value());
}

TEST(KvExportImportTest, DonorCanAlwaysReimportOwnExport)
{
    // The rollback primitive behind a refused migration: exporting
    // frees the donor's host pages, so re-importing the same image
    // into the donor cannot fail.
    VAttentionBackend donor(perf::ModelSpec::yi6B(), 1, 512 * MiB,
                            swapOptions(1 * GiB));
    auto slot = donor.allocSlot();
    ASSERT_TRUE(slot.isOk());
    ASSERT_TRUE(donor.ensure({{slot.value(), 4096}}).isOk());
    ASSERT_TRUE(donor.swapOut(slot.value()).isOk());
    auto image = donor.exportSwapped(slot.value());
    ASSERT_TRUE(image.isOk());

    ASSERT_TRUE(donor.canImportSwapped(image.value()));
    auto back = donor.importSwapped(image.value());
    ASSERT_TRUE(back.isOk());
    auto in = donor.swapIn(back.value());
    ASSERT_TRUE(in.isOk());
    EXPECT_EQ(in.value().bytes, image.value().bytes);
}

TEST(KvExportImportTest, RefusalsAndGeometryMismatch)
{
    VAttentionBackend donor(perf::ModelSpec::yi6B(), 1, 512 * MiB,
                            swapOptions(1 * GiB));
    auto slot = donor.allocSlot();
    ASSERT_TRUE(slot.isOk());
    ASSERT_TRUE(donor.ensure({{slot.value(), 4096}}).isOk());
    ASSERT_TRUE(donor.swapOut(slot.value()).isOk());
    auto image = donor.exportSwapped(slot.value());
    ASSERT_TRUE(image.isOk());

    // No swap tier at all: export unsupported, import refused.
    VAttentionBackend no_tier(perf::ModelSpec::yi6B(), 1, 512 * MiB,
                              swapOptions(0));
    EXPECT_FALSE(no_tier.supportsKvExport());
    EXPECT_FALSE(no_tier.canImportSwapped(image.value()));

    // Host tier too small for the image: refused, not an error.
    VAttentionBackend tiny(perf::ModelSpec::yi6B(), 1, 512 * MiB,
                           swapOptions(2 * MiB));
    EXPECT_FALSE(tiny.canImportSwapped(image.value()));

    // Different model: different buffer geometry, refused.
    VAttentionBackend other_model(perf::ModelSpec::yi34B(), 1,
                                  512 * MiB, swapOptions(1 * GiB));
    EXPECT_FALSE(other_model.canImportSwapped(image.value()));

    // Wrong backend family: a vAttention image never imports into a
    // paged pool (and vice versa), and the error is graceful.
    PagedBackend paged(perf::ModelSpec::yi6B(), 1, 16, 64 * MiB,
                       false, 1 * GiB);
    EXPECT_FALSE(paged.canImportSwapped(image.value()));
    auto cross = paged.importSwapped(image.value());
    EXPECT_EQ(cross.code(), ErrorCode::kInvalidArgument);

    SwappedKvImage empty;
    EXPECT_FALSE(donor.canImportSwapped(empty));
    EXPECT_FALSE(paged.canImportSwapped(empty));
}

TEST(KvExportImportTest, TensorParallelLockstepRoundTrip)
{
    // TP-2 shards export/import in lockstep; the image carries one
    // worker's shard bytes (half the TP-1 footprint per worker).
    VAttentionBackend tp1(perf::ModelSpec::yi6B(), 1, 512 * MiB,
                          swapOptions(1 * GiB));
    VAttentionBackend donor(perf::ModelSpec::yi6B(), 2, 512 * MiB,
                            swapOptions(1 * GiB));
    VAttentionBackend target(perf::ModelSpec::yi6B(), 2, 512 * MiB,
                             swapOptions(1 * GiB));

    auto ref_slot = tp1.allocSlot();
    ASSERT_TRUE(ref_slot.isOk());
    ASSERT_TRUE(tp1.ensure({{ref_slot.value(), 4096}}).isOk());
    ASSERT_TRUE(tp1.swapOut(ref_slot.value()).isOk());
    auto ref_image = tp1.exportSwapped(ref_slot.value());
    ASSERT_TRUE(ref_image.isOk());

    auto slot = donor.allocSlot();
    ASSERT_TRUE(slot.isOk());
    ASSERT_TRUE(donor.ensure({{slot.value(), 4096}}).isOk());
    ASSERT_TRUE(donor.swapOut(slot.value()).isOk());
    auto image = donor.exportSwapped(slot.value());
    ASSERT_TRUE(image.isOk());
    EXPECT_EQ(image.value().bytes * 2, ref_image.value().bytes);

    ASSERT_TRUE(target.canImportSwapped(image.value()));
    auto imported = target.importSwapped(image.value());
    ASSERT_TRUE(imported.isOk());
    auto in = target.swapIn(imported.value());
    ASSERT_TRUE(in.isOk());
    EXPECT_EQ(in.value().bytes, image.value().bytes);
}

// ---- Engine level: the migration transactions -----------------------

EngineConfig
migrationConfig(perf::BackendKind kind)
{
    EngineConfig config;
    config.model = perf::ModelSpec::yi6B();
    config.gpu = perf::GpuSpec::a100();
    config.backend = kind;
    config.kv_budget_override = kvBytes(9600);
    config.scheduler.max_num_seqs = 8;
    config.scheduler.max_batched_tokens = 8192;
    config.vattn.max_batch_size = 8;
    config.preemption_policy = PreemptionPolicy::kSwap;
    config.record_iterations = true;
    return config;
}

Request
heavyRequest(u64 id, i64 prompt, i64 decode)
{
    Request request;
    request.id = id;
    request.prompt_tokens = prompt;
    request.max_new_tokens = decode;
    request.arrival_ns = 0;
    return request;
}

class MigrationEngineTest
    : public ::testing::TestWithParam<perf::BackendKind>
{
};

TEST_P(MigrationEngineTest, MigrateQueuedMovesWaitingRequest)
{
    auto config = migrationConfig(GetParam());
    config.scheduler.max_num_seqs = 2;
    config.kv_budget_override = kvBytes(40000);
    Engine donor(config);
    Engine target(config);
    donor.beginOnline(4);
    target.beginOnline(4);
    for (u64 i = 0; i < 4; ++i) {
        ASSERT_TRUE(
            donor.submitOnline(heavyRequest(i, 512, 16)).isOk());
    }

    // One step admits the arrivals: 2 run, 2 wait. The back of the
    // waiting queue (FCFS-fairness: the youngest) migrates.
    donor.stepRun();
    ASSERT_TRUE(donor.migrateQueuedTo(target));

    while (donor.runActive()) {
        donor.stepRun();
    }
    while (target.runActive()) {
        target.stepRun();
    }
    donor.closeOnline();
    target.closeOnline();
    auto donor_report = donor.endRun();
    auto target_report = target.endRun();

    EXPECT_EQ(donor_report.migrations_out, 1u);
    EXPECT_EQ(donor_report.migrations_in, 0u);
    EXPECT_EQ(target_report.migrations_in, 1u);
    EXPECT_EQ(donor_report.num_requests, 3);
    EXPECT_EQ(target_report.num_requests, 1);
    EXPECT_EQ(donor_report.decode_tokens + target_report.decode_tokens,
              4 * 16);
}

TEST_P(MigrationEngineTest, MigrateSwappedPreservesComputedKv)
{
    // The donor overcommits (4 x 2600-token contexts vs a 9600-token
    // budget) and preempts by swap; a swapped victim then migrates to
    // an uncontended replica through the host tier. The migrant's
    // prefilled KV travels with it: summed prefill-chunk tokens
    // across both engines equal the trace's prompt tokens exactly —
    // nothing was re-prefilled after the hand-off.
    Engine donor(migrationConfig(GetParam()));
    auto roomy = migrationConfig(GetParam());
    roomy.kv_budget_override = kvBytes(40000);
    Engine target(roomy);
    donor.beginOnline(4);
    target.beginOnline(4);
    for (u64 i = 0; i < 4; ++i) {
        ASSERT_TRUE(
            donor.submitOnline(heavyRequest(i, 2000, 600)).isOk());
    }

    bool migrated = false;
    while (donor.runActive()) {
        if (!migrated) {
            migrated = donor.migrateSwappedTo(target);
        }
        if (donor.runActive()) {
            donor.stepRun();
        }
    }
    while (target.runActive()) {
        target.stepRun();
    }
    donor.closeOnline();
    target.closeOnline();
    auto donor_report = donor.endRun();
    auto target_report = target.endRun();

    ASSERT_TRUE(migrated);
    EXPECT_GT(donor_report.swap_outs, 0u);
    EXPECT_EQ(donor_report.migrations_out, 1u);
    EXPECT_EQ(target_report.migrations_in, 1u);
    EXPECT_GE(target_report.swap_ins, 1u);
    EXPECT_EQ(donor_report.num_requests, 3);
    EXPECT_EQ(target_report.num_requests, 1);
    EXPECT_EQ(donor_report.decode_tokens + target_report.decode_tokens,
              4 * 600);

    i64 prefill_tokens = 0;
    for (const auto &it : donor_report.iterations) {
        prefill_tokens += it.prefill_chunk_tokens;
    }
    for (const auto &it : target_report.iterations) {
        prefill_tokens += it.prefill_chunk_tokens;
    }
    EXPECT_EQ(prefill_tokens, 4 * 2000);
}

TEST_P(MigrationEngineTest, RefusedMigrationLeavesDonorIntact)
{
    // A target whose host tier cannot hold the image refuses the
    // import; the donor re-imports its own export and the run
    // completes as if nothing happened.
    Engine donor(migrationConfig(GetParam()));
    auto cramped = migrationConfig(GetParam());
    cramped.host_swap_bytes = 2 * MiB;
    Engine target(cramped);
    donor.beginOnline(4);
    target.beginOnline(0);
    for (u64 i = 0; i < 4; ++i) {
        ASSERT_TRUE(
            donor.submitOnline(heavyRequest(i, 2000, 600)).isOk());
    }

    bool migrated = false;
    while (donor.runActive()) {
        migrated = donor.migrateSwappedTo(target) || migrated;
        if (donor.runActive()) {
            donor.stepRun();
        }
    }
    donor.closeOnline();
    target.closeOnline();
    auto donor_report = donor.endRun();
    auto target_report = target.endRun();

    EXPECT_FALSE(migrated);
    EXPECT_EQ(donor_report.migrations_out, 0u);
    EXPECT_EQ(target_report.migrations_in, 0u);
    EXPECT_GT(donor_report.swap_outs, 0u);
    EXPECT_EQ(donor_report.num_requests, 4);
    EXPECT_EQ(donor_report.decode_tokens, 4 * 600);
    EXPECT_EQ(target_report.num_requests, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Backends, MigrationEngineTest,
    ::testing::Values(perf::BackendKind::kFa2VAttention,
                      perf::BackendKind::kFa2Paged));

// ---- Cluster level: migration accounting ----------------------------

TEST(ClusterMigrationTest, OvercommittedReplicaShedsLoadToIdlePeer)
{
    // Heterogeneous pair: replica 0 has a quarter of replica 1's KV
    // budget but round-robin still hands it every other request.
    // With migration enabled the saturated replica hands queued or
    // swapped work to its idle peer at arrival instants.
    // Three 2048-token page-group rows: two 2200-token contexts
    // overcommit it (4 rows), one fits — preemption, never a drop.
    auto small = migrationConfig(perf::BackendKind::kFa2VAttention);
    small.kv_budget_override = kvBytes(6144);
    small.scheduler.max_num_seqs = 2;
    auto large = small;
    large.kv_budget_override = kvBytes(40000);

    ServingCluster::Config config;
    config.replicas = {small, large};
    config.policy = RoutingPolicy::kRoundRobin;
    ServingCluster cluster(config);

    OnlineOptions options;
    options.routing = RoutingMode::kStatic;
    options.migration = true;
    options.expected_requests = 8;
    cluster.start(options);
    for (u64 i = 0; i < 8; ++i) {
        auto request = heavyRequest(i, 2000, 200);
        request.arrival_ns = static_cast<TimeNs>(i) * 50'000'000;
        ASSERT_TRUE(cluster.submit(request).isOk());
    }
    auto report = cluster.shutdown();

    EXPECT_GE(report.merged.migrations_out, 1u);
    EXPECT_EQ(report.merged.migrations_out,
              report.merged.migrations_in);
    EXPECT_EQ(report.merged.num_requests, 8);
    EXPECT_EQ(report.merged.decode_tokens, 8 * 200);
    EXPECT_EQ(report.merged.dropped_requests, 0);
    // The load moved toward the roomy replica.
    EXPECT_GE(report.replicas[1].migrations_in, 1u);
}

} // namespace
} // namespace vattn::serving
