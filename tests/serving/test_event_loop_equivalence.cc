/**
 * @file
 * Execution-mode equivalence: the event-driven paths must reproduce
 * the historical drivers bit for bit.
 *
 *  - ServingCluster under ClusterExecution::kEventLoop vs kThreads on
 *    a Figure-10-style online trace: identical merged and per-replica
 *    reports, down to the full latency sample vectors and the
 *    timestamp-merged iteration records.
 *  - Engine::beginRun/stepRun/endRun driven externally vs run() on a
 *    sparse-arrival trace: identical RunReport, identical iteration
 *    records, and the idle steps jump the clock instead of spinning.
 *  - The k-way iteration merge is pinned against its specification,
 *    a stable sort of the concatenated per-replica streams.
 */

#include <algorithm>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "serving/cluster.hh"
#include "test_util.hh"

namespace vattn::serving
{
namespace
{

EngineConfig
replicaConfig(SchedulingMode mode = SchedulingMode::kStallFreeChunked)
{
    EngineConfig config;
    config.model = perf::ModelSpec::yi6B();
    config.gpu = perf::GpuSpec::a100();
    config.backend = perf::BackendKind::kFa2VAttention;
    config.kv_budget_override = 8 * GiB;
    config.scheduler.max_num_seqs = 4;
    config.scheduler.max_batched_tokens = 8192;
    config.scheduler.mode = mode;
    config.vattn.max_batch_size = 4;
    config.record_iterations = true;
    return config;
}

void
expectSameIterations(const std::vector<IterationRecord> &a,
                     const std::vector<IterationRecord> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].start_ns, b[i].start_ns) << "record " << i;
        EXPECT_EQ(a[i].duration_ns, b[i].duration_ns) << "record " << i;
        EXPECT_EQ(a[i].is_prefill, b[i].is_prefill) << "record " << i;
        EXPECT_EQ(a[i].batch, b[i].batch) << "record " << i;
        EXPECT_EQ(a[i].mem_critical_ns, b[i].mem_critical_ns)
            << "record " << i;
        EXPECT_EQ(a[i].groups_mapped, b[i].groups_mapped)
            << "record " << i;
        EXPECT_EQ(a[i].prefill_chunk_tokens, b[i].prefill_chunk_tokens)
            << "record " << i;
        EXPECT_EQ(a[i].num_prefill_chunks, b[i].num_prefill_chunks)
            << "record " << i;
        EXPECT_EQ(a[i].decode_batch, b[i].decode_batch)
            << "record " << i;
    }
}

/** Bit-for-bit RunReport equality: every counter, every raw latency
 *  sample, every iteration record. */
void
expectSameReport(const RunReport &a, const RunReport &b)
{
    EXPECT_EQ(a.num_requests, b.num_requests);
    EXPECT_EQ(a.makespan_ns, b.makespan_ns);
    EXPECT_EQ(a.busy_ns, b.busy_ns);
    EXPECT_EQ(a.prompt_tokens, b.prompt_tokens);
    EXPECT_EQ(a.decode_tokens, b.decode_tokens);
    EXPECT_EQ(a.decode_iterations, b.decode_iterations);
    EXPECT_EQ(a.prefill_iterations, b.prefill_iterations);
    EXPECT_EQ(a.mixed_iterations, b.mixed_iterations);
    EXPECT_EQ(a.preemptions, b.preemptions);
    EXPECT_EQ(a.peak_batch, b.peak_batch);
    EXPECT_EQ(a.swap_outs, b.swap_outs);
    EXPECT_EQ(a.swap_ins, b.swap_ins);
    EXPECT_EQ(a.swap_out_bytes, b.swap_out_bytes);
    EXPECT_EQ(a.swap_in_bytes, b.swap_in_bytes);
    EXPECT_EQ(a.swap_stall_ns, b.swap_stall_ns);
    EXPECT_EQ(a.dropped_requests, b.dropped_requests);
    EXPECT_EQ(a.prefix_lookups, b.prefix_lookups);
    EXPECT_EQ(a.prefix_hits, b.prefix_hits);
    EXPECT_EQ(a.prefill_tokens_saved, b.prefill_tokens_saved);
    EXPECT_EQ(a.prefix_aliased_bytes, b.prefix_aliased_bytes);
    EXPECT_EQ(a.prefix_copied_bytes, b.prefix_copied_bytes);
    EXPECT_EQ(a.latency_s.sorted(), b.latency_s.sorted());
    EXPECT_EQ(a.ttft_s.sorted(), b.ttft_s.sorted());
    EXPECT_EQ(a.tbt_s.sorted(), b.tbt_s.sorted());
    EXPECT_EQ(a.normalized_latency_s.sorted(),
              b.normalized_latency_s.sorted());
    expectSameIterations(a.iterations, b.iterations);
}

/** Figure-10-shaped online load scaled to test size: long-context
 *  summarization requests at a near-capacity Poisson rate. */
std::vector<Request>
onlineTrace(int n)
{
    auto trace = arxivOnlineTrace(n, /*seed=*/2);
    assignPoissonArrivals(trace, /*qps=*/0.5, /*seed=*/2024);
    return trace;
}

ClusterReport
runCluster(ClusterExecution execution, const std::vector<Request> &trace)
{
    auto config = ServingCluster::uniform(
        replicaConfig(), 3, RoutingPolicy::kJoinShortestQueue);
    config.execution = execution;
    ServingCluster cluster(std::move(config));
    EXPECT_EQ(cluster.resolvedExecution(), execution);
    return cluster.run(trace);
}

TEST(EventLoopEquivalence, ClusterEventLoopMatchesThreadsBitForBit)
{
    const auto trace = onlineTrace(18);
    const auto threads = runCluster(ClusterExecution::kThreads, trace);
    const auto events = runCluster(ClusterExecution::kEventLoop, trace);

    ASSERT_EQ(threads.replicas.size(), events.replicas.size());
    for (std::size_t r = 0; r < threads.replicas.size(); ++r) {
        expectSameReport(threads.replicas[r], events.replicas[r]);
    }
    expectSameReport(threads.merged, events.merged);
    EXPECT_EQ(threads.assigned, events.assigned);
    EXPECT_DOUBLE_EQ(threads.request_imbalance, events.request_imbalance);
    EXPECT_DOUBLE_EQ(threads.token_imbalance, events.token_imbalance);
    EXPECT_DOUBLE_EQ(threads.busy_imbalance, events.busy_imbalance);
    EXPECT_DOUBLE_EQ(threads.jain_fairness, events.jain_fairness);
}

TEST(EventLoopEquivalence, ClusterEquivalenceUnderPrefillPrioritized)
{
    // The other composer policy exercises monolithic prefill
    // iterations and different preemption timing.
    auto trace = onlineTrace(12);
    ClusterReport reports[2];
    const ClusterExecution modes[] = {ClusterExecution::kThreads,
                                      ClusterExecution::kEventLoop};
    for (int i = 0; i < 2; ++i) {
        auto config = ServingCluster::uniform(
            replicaConfig(SchedulingMode::kPrefillPrioritized), 2,
            RoutingPolicy::kRoundRobin);
        config.execution = modes[i];
        ServingCluster cluster(std::move(config));
        reports[i] = cluster.run(trace);
    }
    expectSameReport(reports[0].merged, reports[1].merged);
}

TEST(EventLoopEquivalence, AutoResolvesByCoreCount)
{
    const unsigned cores =
        std::max(1u, std::thread::hardware_concurrency());
    auto config = ServingCluster::uniform(
        replicaConfig(), 2, RoutingPolicy::kRoundRobin);
    ServingCluster small(std::move(config));
    EXPECT_EQ(small.resolvedExecution(),
              2 > cores ? ClusterExecution::kEventLoop
                        : ClusterExecution::kThreads);

    // More replicas than any host has cores: must pick the event loop
    // (this is the regime the coordinator exists for).
    auto big_config = ServingCluster::uniform(
        replicaConfig(), static_cast<int>(cores) + 1,
        RoutingPolicy::kRoundRobin);
    ServingCluster big(std::move(big_config));
    EXPECT_EQ(big.resolvedExecution(), ClusterExecution::kEventLoop);

    EXPECT_STREQ(toString(ClusterExecution::kAuto), "auto");
    EXPECT_STREQ(toString(ClusterExecution::kThreads), "threads");
    EXPECT_STREQ(toString(ClusterExecution::kEventLoop), "event_loop");
}

TEST(EventLoopEquivalence, MergedIterationsMatchStableSortSpec)
{
    // Pin the k-way merge against its specification: a stable sort of
    // the concatenated per-replica streams by start time, replicas in
    // index order. Any tie-break change shows up here.
    const auto report =
        runCluster(ClusterExecution::kEventLoop, onlineTrace(18));
    std::vector<std::pair<std::size_t, const IterationRecord *>> spec;
    for (std::size_t r = 0; r < report.replicas.size(); ++r) {
        for (const auto &record : report.replicas[r].iterations) {
            spec.emplace_back(r, &record);
        }
    }
    std::stable_sort(spec.begin(), spec.end(),
                     [](const auto &a, const auto &b) {
                         return a.second->start_ns < b.second->start_ns;
                     });
    ASSERT_EQ(report.merged.iterations.size(), spec.size());
    for (std::size_t i = 0; i < spec.size(); ++i) {
        EXPECT_EQ(report.merged.iterations[i].start_ns,
                  spec[i].second->start_ns);
        EXPECT_EQ(report.merged.iterations[i].duration_ns,
                  spec[i].second->duration_ns);
        EXPECT_EQ(report.merged.iterations[i].batch,
                  spec[i].second->batch);
    }
}

// ---- Engine step API ------------------------------------------------

/** Sparse arrivals: long idle gaps between chat requests, the trace
 *  shape where the idle-skip path does all the work. */
std::vector<Request>
sparseTrace(int n)
{
    auto trace = openChatTrace(n, /*seed=*/3);
    assignPoissonArrivals(trace, /*qps=*/0.05, /*seed=*/71);
    return trace;
}

TEST(EventLoopEquivalence, StepApiMatchesRunOnSparseTrace)
{
    const auto trace = sparseTrace(16);

    Engine whole(replicaConfig());
    const RunReport via_run = whole.run(trace);

    Engine stepped(replicaConfig());
    EXPECT_EQ(stepped.nextEventNs(), sim::kNoEventNs); // no active run
    stepped.beginRun(trace);
    while (stepped.runActive()) {
        // The engine's next event never precedes its clock, and while
        // active it is always a real timestamp.
        const TimeNs next = stepped.nextEventNs();
        ASSERT_NE(next, sim::kNoEventNs);
        ASSERT_GE(next, stepped.clock().now());
        stepped.stepRun();
    }
    EXPECT_EQ(stepped.nextEventNs(), sim::kNoEventNs);
    const RunReport via_steps = stepped.endRun();

    expectSameReport(via_run, via_steps);
    // Sparse load: most of the makespan is idle gaps the engine
    // jumped over, not simulated busy time.
    EXPECT_LT(via_steps.busy_ns, via_steps.makespan_ns / 2);
}

TEST(EventLoopEquivalence, IdleEngineJumpsToNextArrival)
{
    constexpr TimeNs kHourNs = 3'600'000'000'000ULL;
    auto trace = sparseTrace(2);
    trace[0].arrival_ns = 0;
    trace[1].arrival_ns = kHourNs; // an hour of virtual time later
    Engine engine(replicaConfig());
    engine.beginRun(std::move(trace));

    // Serve the first request to completion.
    while (engine.runActive() &&
           engine.nextEventNs() <= engine.clock().now()) {
        engine.stepRun();
    }
    ASSERT_TRUE(engine.runActive());
    // Idle: the next event is the second arrival, an hour of virtual
    // time away. One step must jump the clock straight there.
    EXPECT_EQ(engine.nextEventNs(), kHourNs);
    engine.stepRun();
    EXPECT_EQ(engine.clock().now(), kHourNs);

    while (engine.runActive()) {
        engine.stepRun();
    }
    const auto report = engine.endRun();
    EXPECT_EQ(report.num_requests, 2);
}

TEST(EventLoopEquivalence, StepApiGuardsMisuse)
{
    test::ScopedThrowErrors guard;
    Engine engine(replicaConfig());
    EXPECT_THROW(engine.stepRun(), SimError); // no active run

    engine.beginRun(sparseTrace(4));
    EXPECT_THROW(engine.beginRun(sparseTrace(4)), SimError); // nested
    EXPECT_THROW(engine.endRun(), SimError); // requests in flight
    while (engine.runActive()) {
        engine.stepRun();
    }
    EXPECT_EQ(engine.endRun().num_requests, 4);

    // A drained engine reports no pending events and an empty begin/
    // end cycle yields the zero report.
    Engine fresh(replicaConfig());
    fresh.beginRun({});
    EXPECT_FALSE(fresh.runActive());
    EXPECT_EQ(fresh.endRun().num_requests, 0);
}

} // namespace
} // namespace vattn::serving
