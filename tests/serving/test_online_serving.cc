/**
 * @file
 * The online streaming serving path: incremental submission into a
 * live engine, per-token streaming callbacks, SLO accounting and
 * deadline-aware shedding, the Router's live-state scoring, and the
 * ServingCluster start/submit/shutdown session — including its
 * equivalence with the offline run() driver and across execution
 * modes.
 */

#include <gtest/gtest.h>

#include <vector>

#include "serving/cluster.hh"
#include "serving/engine.hh"
#include "serving/router.hh"
#include "serving/workload.hh"
#include "test_util.hh"

namespace vattn::serving
{
namespace
{

EngineConfig
onlineConfig(perf::BackendKind kind)
{
    EngineConfig config;
    config.model = perf::ModelSpec::yi6B();
    config.gpu = perf::GpuSpec::a100();
    config.backend = kind;
    config.kv_budget_override = 2 * GiB;
    config.scheduler.max_num_seqs = 8;
    config.scheduler.max_batched_tokens = 8192;
    config.vattn.max_batch_size = 8;
    config.record_iterations = true;
    return config;
}

std::vector<Request>
onlineTrace(int n)
{
    auto trace = shareGptTrace(n, /*seed=*/7);
    assignPoissonArrivals(trace, /*qps=*/4.0, /*seed=*/2026);
    return trace;
}

void
expectSamePercentiles(const Percentiles &a, const Percentiles &b)
{
    ASSERT_EQ(a.count(), b.count());
    EXPECT_EQ(a.sorted(), b.sorted());
}

/** Bit-for-bit equality of two run reports, iterations included. */
void
expectSameReport(const RunReport &a, const RunReport &b)
{
    EXPECT_EQ(a.num_requests, b.num_requests);
    EXPECT_EQ(a.makespan_ns, b.makespan_ns);
    EXPECT_EQ(a.busy_ns, b.busy_ns);
    EXPECT_EQ(a.prompt_tokens, b.prompt_tokens);
    EXPECT_EQ(a.decode_tokens, b.decode_tokens);
    EXPECT_EQ(a.decode_iterations, b.decode_iterations);
    EXPECT_EQ(a.prefill_iterations, b.prefill_iterations);
    EXPECT_EQ(a.mixed_iterations, b.mixed_iterations);
    EXPECT_EQ(a.preemptions, b.preemptions);
    EXPECT_EQ(a.peak_batch, b.peak_batch);
    EXPECT_EQ(a.comm_ns, b.comm_ns);
    EXPECT_EQ(a.swap_outs, b.swap_outs);
    EXPECT_EQ(a.swap_ins, b.swap_ins);
    EXPECT_EQ(a.swap_out_bytes, b.swap_out_bytes);
    EXPECT_EQ(a.swap_in_bytes, b.swap_in_bytes);
    EXPECT_EQ(a.swap_stall_ns, b.swap_stall_ns);
    EXPECT_EQ(a.dropped_requests, b.dropped_requests);
    EXPECT_EQ(a.slo_requests, b.slo_requests);
    EXPECT_EQ(a.slo_met_requests, b.slo_met_requests);
    EXPECT_EQ(a.slo_violations_ttft, b.slo_violations_ttft);
    EXPECT_EQ(a.slo_violations_tbt, b.slo_violations_tbt);
    EXPECT_EQ(a.shed_requests, b.shed_requests);
    EXPECT_EQ(a.migrations_in, b.migrations_in);
    EXPECT_EQ(a.migrations_out, b.migrations_out);
    expectSamePercentiles(a.latency_s, b.latency_s);
    expectSamePercentiles(a.ttft_s, b.ttft_s);
    expectSamePercentiles(a.tbt_s, b.tbt_s);
    expectSamePercentiles(a.normalized_latency_s,
                          b.normalized_latency_s);
    ASSERT_EQ(a.iterations.size(), b.iterations.size());
    for (std::size_t i = 0; i < a.iterations.size(); ++i) {
        EXPECT_EQ(a.iterations[i].start_ns, b.iterations[i].start_ns);
        EXPECT_EQ(a.iterations[i].duration_ns,
                  b.iterations[i].duration_ns);
        EXPECT_EQ(a.iterations[i].batch, b.iterations[i].batch);
        EXPECT_EQ(a.iterations[i].decode_batch,
                  b.iterations[i].decode_batch);
        EXPECT_EQ(a.iterations[i].prefill_chunk_tokens,
                  b.iterations[i].prefill_chunk_tokens);
    }
}

RunReport
runOnline(Engine &engine, const std::vector<Request> &trace)
{
    engine.beginOnline(trace.size());
    for (const auto &request : trace) {
        auto status = engine.submitOnline(request);
        EXPECT_TRUE(status.isOk()) << status.message();
    }
    engine.closeOnline();
    while (engine.runActive()) {
        engine.stepRun();
    }
    return engine.endRun();
}

// ---- Engine: online session vs the offline driver -------------------

class OnlineEngineTest
    : public ::testing::TestWithParam<perf::BackendKind>
{
};

TEST_P(OnlineEngineTest, OnlineSessionMatchesOfflineRunBitForBit)
{
    auto trace = onlineTrace(24);
    Engine offline(onlineConfig(GetParam()));
    auto offline_report = offline.run(trace);

    Engine online(onlineConfig(GetParam()));
    auto online_report = runOnline(online, trace);
    expectSameReport(offline_report, online_report);
}

TEST_P(OnlineEngineTest, BoundedMemoryAcrossSubmissions)
{
    // gcOnline retires terminal requests from the front of the owned
    // deque, so a drained engine owns nothing even though the session
    // saw the whole trace.
    Engine engine(onlineConfig(GetParam()));
    auto trace = onlineTrace(16);
    engine.beginOnline(trace.size());
    for (const auto &request : trace) {
        ASSERT_TRUE(engine.submitOnline(request).isOk());
        while (engine.runActive() &&
               engine.nextEventNs() <= request.arrival_ns) {
            engine.stepRun();
        }
    }
    while (engine.runActive()) {
        engine.stepRun();
    }
    EXPECT_LE(engine.ownedRequests(), trace.size());
    // One more submission garbage-collects everything terminal.
    Request probe;
    probe.id = 999;
    probe.prompt_tokens = 16;
    probe.max_new_tokens = 1;
    probe.arrival_ns = trace.back().arrival_ns + 1'000'000'000;
    ASSERT_TRUE(engine.submitOnline(probe).isOk());
    EXPECT_EQ(engine.ownedRequests(), 1u);
    engine.closeOnline();
    while (engine.runActive()) {
        engine.stepRun();
    }
    auto report = engine.endRun();
    EXPECT_EQ(report.num_requests,
              static_cast<i64>(trace.size()) + 1);
}

INSTANTIATE_TEST_SUITE_P(
    Backends, OnlineEngineTest,
    ::testing::Values(perf::BackendKind::kFa2VAttention,
                      perf::BackendKind::kFa2Paged));

TEST(OnlineEngineTest, SubmitGuards)
{
    Engine engine(onlineConfig(perf::BackendKind::kFa2VAttention));
    Request request;
    request.prompt_tokens = 16;
    request.max_new_tokens = 2;

    auto before = engine.submitOnline(request);
    EXPECT_EQ(before.code(), ErrorCode::kFailedPrecondition);

    engine.beginOnline();
    request.arrival_ns = 100;
    EXPECT_TRUE(engine.submitOnline(request).isOk());
    request.arrival_ns = 50;
    auto disorder = engine.submitOnline(request);
    EXPECT_EQ(disorder.code(), ErrorCode::kInvalidArgument);
    request.arrival_ns = 100; // equal timestamps are in order
    EXPECT_TRUE(engine.submitOnline(request).isOk());

    engine.closeOnline();
    auto after = engine.submitOnline(request);
    EXPECT_EQ(after.code(), ErrorCode::kFailedPrecondition);

    while (engine.runActive()) {
        engine.stepRun();
    }
    EXPECT_EQ(engine.endRun().num_requests, 2);
}

// ---- Streaming callbacks --------------------------------------------

TEST(OnlineStreamingTest, CallbacksFireOncePerTokenAndTerminal)
{
    struct Counts
    {
        i64 first = 0;
        i64 tokens = 0;
        i64 finished = 0;
        TimeNs last_emit_ns = 0;
        bool monotone = true;
    } counts;
    StreamCallbacks callbacks;
    callbacks.on_first_token = [&](const Request &) {
        ++counts.first;
    };
    callbacks.on_token = [&](const Request &request) {
        ++counts.tokens;
        if (request.last_emit_ns < counts.last_emit_ns) {
            counts.monotone = false;
        }
        counts.last_emit_ns = request.last_emit_ns;
    };
    callbacks.on_finish = [&](const Request &) {
        ++counts.finished;
    };

    auto trace = onlineTrace(6);
    for (auto &request : trace) {
        request.max_new_tokens = 8;
        request.stream = &callbacks;
    }
    Engine engine(onlineConfig(perf::BackendKind::kFa2VAttention));
    auto report = runOnline(engine, trace);

    EXPECT_EQ(report.num_requests, 6);
    EXPECT_EQ(counts.first, 6);
    EXPECT_EQ(counts.tokens, 6 * 8); // every emission, first included
    EXPECT_EQ(counts.finished, 6);
    EXPECT_TRUE(counts.monotone);
}

TEST(OnlineStreamingTest, CallbacksDoNotPerturbTheSimulation)
{
    auto trace = onlineTrace(12);
    Engine plain(onlineConfig(perf::BackendKind::kFa2VAttention));
    auto plain_report = runOnline(plain, trace);

    StreamCallbacks callbacks;
    i64 tokens = 0;
    callbacks.on_token = [&](const Request &) { ++tokens; };
    for (auto &request : trace) {
        request.stream = &callbacks;
    }
    Engine streamed(onlineConfig(perf::BackendKind::kFa2VAttention));
    auto streamed_report = runOnline(streamed, trace);

    EXPECT_GT(tokens, 0);
    expectSameReport(plain_report, streamed_report);
}

// ---- SLO accounting and deadline-aware shedding ---------------------

TEST(OnlineSloTest, LooseDeadlinesAllMet)
{
    auto trace = onlineTrace(8);
    for (auto &request : trace) {
        request.ttft_deadline_ns = 3'600'000'000'000ull;
        request.tbt_deadline_ns = 3'600'000'000'000ull;
    }
    Engine engine(onlineConfig(perf::BackendKind::kFa2VAttention));
    auto report = runOnline(engine, trace);
    EXPECT_EQ(report.slo_requests, 8);
    EXPECT_EQ(report.slo_met_requests, 8);
    EXPECT_EQ(report.slo_violations_ttft, 0);
    EXPECT_EQ(report.slo_violations_tbt, 0);
    EXPECT_DOUBLE_EQ(report.goodput(), 1.0);
}

TEST(OnlineSloTest, ImpossibleDeadlinesAllViolated)
{
    auto trace = onlineTrace(8);
    for (auto &request : trace) {
        request.ttft_deadline_ns = 1;
        request.tbt_deadline_ns = 1;
        request.max_new_tokens = std::max<i64>(request.max_new_tokens,
                                               2);
    }
    Engine engine(onlineConfig(perf::BackendKind::kFa2VAttention));
    auto report = runOnline(engine, trace);
    EXPECT_EQ(report.num_requests, 8); // served late, not shed
    EXPECT_EQ(report.slo_requests, 8);
    EXPECT_EQ(report.slo_met_requests, 0);
    EXPECT_EQ(report.slo_violations_ttft, 8);
    EXPECT_EQ(report.slo_violations_tbt, 8);
    EXPECT_EQ(report.shed_requests, 0); // shedding is opt-in
    EXPECT_DOUBLE_EQ(report.goodput(), 0.0);
}

TEST(OnlineSloTest, UndeadlinedRequestsStayOutOfTheDenominator)
{
    auto trace = onlineTrace(8);
    for (std::size_t i = 0; i < trace.size(); i += 2) {
        trace[i].ttft_deadline_ns = 3'600'000'000'000ull;
    }
    Engine engine(onlineConfig(perf::BackendKind::kFa2VAttention));
    auto report = runOnline(engine, trace);
    EXPECT_EQ(report.num_requests, 8);
    EXPECT_EQ(report.slo_requests, 4);
    EXPECT_EQ(report.slo_met_requests, 4);
}

TEST(OnlineSloTest, ShedOnTtftRejectsHopelessRequests)
{
    auto trace = onlineTrace(8);
    for (auto &request : trace) {
        request.ttft_deadline_ns = 1; // already unmeetable
    }
    auto config = onlineConfig(perf::BackendKind::kFa2VAttention);
    config.shed_on_ttft = true;
    Engine engine(config);
    auto report = runOnline(engine, trace);
    EXPECT_EQ(report.num_requests, 0);
    EXPECT_EQ(report.shed_requests, 8);
    EXPECT_EQ(report.dropped_requests, 0); // disjoint counters
    EXPECT_EQ(report.slo_requests, 8);
    EXPECT_DOUBLE_EQ(report.goodput(), 0.0);

    // Meetable deadlines shed nothing under the same config.
    auto relaxed = onlineTrace(8);
    for (auto &request : relaxed) {
        request.ttft_deadline_ns = 3'600'000'000'000ull;
    }
    Engine second(config);
    auto relaxed_report = runOnline(second, relaxed);
    EXPECT_EQ(relaxed_report.num_requests, 8);
    EXPECT_EQ(relaxed_report.shed_requests, 0);
}

// ---- Router live-state scoring --------------------------------------

TEST(RouterLiveTest, TieBreaksAreDeterministic)
{
    Router router(RoutingPolicy::kJoinShortestQueue,
                  {{1 * GiB}, {1 * GiB}, {1 * GiB}});
    auto uniform = [](int) { return Router::LiveLoad{}; };
    EXPECT_EQ(router.routeLive(0, uniform), 0);
    EXPECT_EQ(router.routeLive(10, uniform), 0);
    EXPECT_EQ(router.routeLive(20, uniform), 0);
}

TEST(RouterLiveTest, SaturatedReplicaNeverBeatsAnIdleOne)
{
    Router router(RoutingPolicy::kJoinShortestQueue,
                  {{1 * GiB}, {1 * GiB}, {1 * GiB}});
    auto loads = [](int replica) {
        Router::LiveLoad load;
        if (replica == 0) {
            // Full KV, otherwise quiet: saturation alone must lose.
            load.kv_pressure = 1.0;
            load.kv_saturated = true;
        } else if (replica == 1) {
            // Busy but admitting.
            load.queued = 50;
            load.running = 8;
            load.prefill_debt_tokens = 100000;
        }
        return load; // replica 2 idle
    };
    EXPECT_EQ(router.routeLive(0, loads), 2);

    // Even when every unsaturated replica is heavily loaded, the
    // saturated one is still never chosen.
    Router pair(RoutingPolicy::kJoinShortestQueue,
                {{1 * GiB}, {1 * GiB}});
    auto pair_loads = [](int replica) {
        Router::LiveLoad load;
        if (replica == 0) {
            load.kv_saturated = true;
        } else {
            load.queued = 1000;
            load.running = 64;
        }
        return load;
    };
    EXPECT_EQ(pair.routeLive(0, pair_loads), 1);
}

TEST(RouterLiveTest, ScoreOrderingMatchesLoadOrdering)
{
    Router::LiveLoad base;
    Router::LiveLoad queued = base;
    queued.queued = 1;
    Router::LiveLoad running = base;
    running.running = 1;
    Router::LiveLoad pressured = base;
    pressured.kv_pressure = 0.5;
    Router::LiveLoad debt = base;
    debt.prefill_debt_tokens = 8192;

    EXPECT_GT(Router::liveScore(queued), Router::liveScore(base));
    EXPECT_GT(Router::liveScore(running), Router::liveScore(base));
    EXPECT_GT(Router::liveScore(pressured), Router::liveScore(base));
    EXPECT_GT(Router::liveScore(debt), Router::liveScore(base));
    // A queued request weighs more than a running one (it still has
    // its whole service ahead of it).
    EXPECT_GT(Router::liveScore(queued), Router::liveScore(running));
}

// ---- Cluster session ------------------------------------------------

ServingCluster::Config
clusterConfig(ClusterExecution execution)
{
    auto config = ServingCluster::uniform(
        onlineConfig(perf::BackendKind::kFa2VAttention), 3,
        RoutingPolicy::kJoinShortestQueue);
    config.execution = execution;
    return config;
}

TEST(ClusterOnlineTest, SubmitBeforeStartReportsError)
{
    ServingCluster cluster(clusterConfig(ClusterExecution::kEventLoop));
    Request request;
    request.prompt_tokens = 16;
    request.max_new_tokens = 2;
    auto status = cluster.submit(request);
    ASSERT_FALSE(status.isOk());
    EXPECT_EQ(status.code(), ErrorCode::kFailedPrecondition);
    EXPECT_NE(status.message().find("start"), std::string::npos);

    // The same cluster still serves a session normally afterwards.
    cluster.start();
    EXPECT_TRUE(cluster.submit(request).isOk());
    auto report = cluster.shutdown();
    EXPECT_EQ(report.merged.num_requests, 1);
}

TEST(ClusterOnlineTest, SubmitAfterShutdownReportsError)
{
    ServingCluster cluster(clusterConfig(ClusterExecution::kEventLoop));
    Request request;
    request.prompt_tokens = 16;
    request.max_new_tokens = 2;
    cluster.start();
    EXPECT_TRUE(cluster.submit(request).isOk());
    auto report = cluster.shutdown();
    EXPECT_EQ(report.merged.num_requests, 1);

    auto status = cluster.submit(request);
    ASSERT_FALSE(status.isOk());
    EXPECT_EQ(status.code(), ErrorCode::kFailedPrecondition);
    EXPECT_NE(status.message().find("shutdown"), std::string::npos);
}

TEST(ClusterOnlineTest, OutOfOrderSubmissionIsInvalid)
{
    ServingCluster cluster(clusterConfig(ClusterExecution::kEventLoop));
    cluster.start();
    Request request;
    request.prompt_tokens = 16;
    request.max_new_tokens = 2;
    request.arrival_ns = 1000;
    EXPECT_TRUE(cluster.submit(request).isOk());
    request.arrival_ns = 10;
    EXPECT_EQ(cluster.submit(request).code(),
              ErrorCode::kInvalidArgument);
    cluster.shutdown();
}

TEST(ClusterOnlineTest, StaticRoutingMatchesRunBitForBit)
{
    auto trace = onlineTrace(24);
    ServingCluster offline(clusterConfig(ClusterExecution::kEventLoop));
    auto offline_report = offline.run(trace);

    ServingCluster online(clusterConfig(ClusterExecution::kEventLoop));
    OnlineOptions options;
    options.routing = RoutingMode::kStatic;
    options.expected_requests = trace.size();
    online.start(options);
    for (const auto &request : trace) {
        ASSERT_TRUE(online.submit(request).isOk());
    }
    auto online_report = online.shutdown();

    ASSERT_EQ(online_report.assigned, offline_report.assigned);
    expectSameReport(offline_report.merged, online_report.merged);
    for (std::size_t i = 0; i < offline_report.replicas.size(); ++i) {
        expectSameReport(offline_report.replicas[i],
                         online_report.replicas[i]);
    }
    EXPECT_DOUBLE_EQ(offline_report.jain_fairness,
                     online_report.jain_fairness);
}

TEST(ClusterOnlineTest, ThreadsAndEventLoopAgreeBitForBit)
{
    // The execution-mode equivalence the offline driver guarantees
    // extends to the online session with live routing and migration:
    // same goodput, bit-identical merged iteration stream.
    auto trace = skewedTenantOnlineTrace(40);
    for (auto &request : trace) {
        request.ttft_deadline_ns = 2'000'000'000;
        request.tbt_deadline_ns = 500'000'000;
    }

    auto runMode = [&](ClusterExecution execution) {
        ServingCluster cluster(clusterConfig(execution));
        OnlineOptions options;
        options.routing = RoutingMode::kLive;
        options.migration = true;
        options.expected_requests = trace.size();
        cluster.start(options);
        for (const auto &request : trace) {
            EXPECT_TRUE(cluster.submit(request).isOk());
        }
        return cluster.shutdown();
    };

    auto threads = runMode(ClusterExecution::kThreads);
    auto event_loop = runMode(ClusterExecution::kEventLoop);

    EXPECT_DOUBLE_EQ(threads.merged.goodput(),
                     event_loop.merged.goodput());
    ASSERT_EQ(threads.assigned, event_loop.assigned);
    expectSameReport(threads.merged, event_loop.merged);
    for (std::size_t i = 0; i < threads.replicas.size(); ++i) {
        expectSameReport(threads.replicas[i], event_loop.replicas[i]);
    }
}

} // namespace
} // namespace vattn::serving
