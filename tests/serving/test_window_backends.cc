/**
 * @file
 * Per-layer heterogeneous geometries at the serving-backend level:
 * layer-grouped block pools on the paged backend, window-aware
 * slotPhysBytes on both backends (regression tests pinning the
 * heterogeneous values the old uniform arithmetic got wrong), swap
 * round-trips of windowed slots, and the paged prefix-caching
 * incompatibility.
 */

#include <gtest/gtest.h>

#include "common/audit.hh"
#include "serving/paged_backend.hh"
#include "serving/vattn_backend.hh"
#include "test_util.hh"

namespace vattn::serving
{
namespace
{

constexpr i64 kWindow = 4096;

perf::ModelSpec
interleaved()
{
    return perf::ModelSpec::yi6B().withSlidingWindowInterleave(kWindow);
}

TEST(PagedWindowBackend, GroupsLayersByWindowClass)
{
    PagedBackend uniform(perf::ModelSpec::yi6B(), 1, 16, 1 * GiB);
    EXPECT_EQ(uniform.numLayerGroups(), 1);
    EXPECT_EQ(uniform.groupWindowTokens(0), 0);

    PagedBackend backend(interleaved(), 1, 16, 8 * GiB);
    ASSERT_EQ(backend.numLayerGroups(), 2);
    EXPECT_EQ(backend.groupWindowTokens(0), 0);
    EXPECT_EQ(backend.groupWindowTokens(1), kWindow);
    // The 1:1 interleave splits the budget pro rata: equal block
    // counts in both class pools.
    EXPECT_EQ(backend.groupManager(0).numBlocks(),
              backend.groupManager(1).numBlocks());
}

TEST(PagedWindowBackend, EnsureFreesDeadLeadingBlocks)
{
    // Yi-6B interleaved: each 16-layer class stores 32KiB/token, so a
    // 16-token block is 512KiB per class.
    PagedBackend backend(interleaved(), 1, 16, 48ULL * GiB);
    const int slot = backend.allocSlot().value();
    ASSERT_TRUE(backend.ensure({{slot, 64 * 1024}}).isOk());

    // Full class: 4096 blocks. Sliding class: the window kills
    // floor((65536 - 4096) / 16) = 3840 leading blocks, 256 live.
    const u64 block_bytes = 512 * KiB;
    EXPECT_EQ(backend.slotPhysBytes(slot),
              (4096 + 256) * block_bytes);
    EXPECT_EQ(backend.bytesInUse(), (4096 + 256) * block_bytes);

    // Growth keeps trimming: one more block of context advances the
    // dead lead by one block.
    ASSERT_TRUE(backend.ensure({{slot, 64 * 1024 + 16}}).isOk());
    EXPECT_EQ(backend.slotPhysBytes(slot),
              (4097 + 256) * block_bytes);

    audit::AuditReport report;
    backend.auditInto(report);
    EXPECT_TRUE(report.ok()) << report.toString();
    backend.freeSlot(slot);
    EXPECT_EQ(backend.bytesInUse(), 0u);
}

TEST(PagedWindowBackend, SwapRoundTripsTheLiveWindow)
{
    PagedBackend backend(interleaved(), 1, 16, 48ULL * GiB,
                         /*enable_prefix_caching=*/false,
                         /*host_swap_bytes=*/8ULL * GiB);
    const int slot = backend.allocSlot().value();
    ASSERT_TRUE(backend.ensure({{slot, 64 * 1024}}).isOk());
    const u64 resident = backend.slotPhysBytes(slot);

    ASSERT_TRUE(backend.canSwapOut(slot));
    const auto out = backend.swapOut(slot);
    ASSERT_TRUE(out.isOk());
    // Only the live blocks cross PCIe — the dead lead was never
    // resident.
    EXPECT_EQ(out.value().bytes, resident);
    EXPECT_EQ(backend.slotPhysBytes(slot), 0u);

    const auto in = backend.swapIn(slot);
    ASSERT_TRUE(in.isOk());
    EXPECT_EQ(in.value().bytes, resident);
    EXPECT_EQ(backend.slotPhysBytes(slot), resident);
    // The request keeps growing from exactly where it stopped.
    ASSERT_TRUE(backend.ensure({{slot, 64 * 1024 + 16}}).isOk());

    audit::AuditReport report;
    backend.auditInto(report);
    EXPECT_TRUE(report.ok()) << report.toString();
}

TEST(PagedWindowBackend, PrefixCachingRefusesSlidingLayers)
{
    // vLLM's hash-block prefix cache keys on immutable full blocks;
    // window eviction breaks that contract, so the combination is a
    // configuration error.
    test::ScopedThrowErrors guard;
    EXPECT_THROW(PagedBackend(interleaved(), 1, 16, 1 * GiB,
                              /*enable_prefix_caching=*/true),
                 SimError);
}

TEST(VAttnWindowBackend, SlotPhysBytesCountsPerLayerMappings)
{
    // Regression for the uniformity bug: slotPhysBytes used to charge
    // frontier-groups x numBuffers x groupBytes, overbilling windowed
    // slots whose leading groups are unmapped.
    VAttentionBackend backend(interleaved(), 1, 8ULL * GiB);
    const int slot = backend.allocSlot().value();
    ASSERT_TRUE(backend.ensure({{slot, 16 * 1024}}).isOk());

    // 2MB groups hold 2048 tokens of one layer's K or V (1KiB/token).
    // Full-layer buffers (32 of 64) map 8 groups each; sliding-layer
    // buffers map only the live 2 (dead lead = (16384-4096)/2048 = 6).
    const u64 group_bytes = 2 * MiB;
    EXPECT_EQ(backend.slotPhysBytes(slot),
              (32 * 8 + 32 * 2) * group_bytes);
    // The old arithmetic would have said 64 x 8 groups:
    EXPECT_NE(backend.slotPhysBytes(slot), 64 * 8 * group_bytes);

    audit::AuditReport report;
    backend.auditInto(report);
    EXPECT_TRUE(report.ok()) << report.toString();
}

TEST(VAttnWindowBackend, UniformModelsKeepTheHistoricalBilling)
{
    VAttentionBackend backend(perf::ModelSpec::yi6B(), 1, 4ULL * GiB);
    const int slot = backend.allocSlot().value();
    ASSERT_TRUE(backend.ensure({{slot, 4096}}).isOk());
    // 2 groups per buffer x 64 buffers.
    EXPECT_EQ(backend.slotPhysBytes(slot),
              static_cast<u64>(64 * 2) * 2 * MiB);
}

} // namespace
} // namespace vattn::serving
