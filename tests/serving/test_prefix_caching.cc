#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "serving/engine.hh"
#include "serving/paged_backend.hh"
#include "serving/workload.hh"
#include "test_util.hh"

namespace vattn::serving
{
namespace
{

EngineConfig
baseConfig(perf::BackendKind kind, bool caching)
{
    EngineConfig config;
    config.model = perf::ModelSpec::yi6B();
    config.gpu = perf::GpuSpec::a100();
    config.tp_degree = 1;
    config.backend = kind;
    config.scheduler.max_num_seqs = 64;
    config.scheduler.max_batched_tokens = 16384;
    config.vattn.max_batch_size = 64;
    config.enable_prefix_caching = caching;
    return config;
}

std::vector<Request>
sharedTrace()
{
    auto trace = sharedSystemPromptTrace(/*n=*/64, /*tenants=*/4,
                                         /*system_tokens=*/4096,
                                         /*user_mean=*/256, /*seed=*/3);
    assignOfflineArrivals(trace);
    return trace;
}

// ---- Trace generator ------------------------------------------------

TEST(SharedSystemPromptTrace, EmitsRealTokenIdsWithSharedPrefixes)
{
    const auto trace = sharedSystemPromptTrace(40, 4, 1024, 128, 11);
    ASSERT_EQ(trace.size(), 40u);
    int shared_pairs = 0;
    for (const Request &r : trace) {
        ASSERT_TRUE(r.hasTokenIds());
        EXPECT_EQ(static_cast<i64>(r.token_ids.size()),
                  r.prompt_tokens);
        EXPECT_GT(r.prompt_tokens, 1024);
    }
    // Requests of the same tenant share the full system prompt;
    // different tenants share nothing at the front.
    for (std::size_t i = 1; i < trace.size(); ++i) {
        const auto &a = trace[0].token_ids;
        const auto &b = trace[i].token_ids;
        const bool same_tenant =
            std::equal(a.begin(), a.begin() + 1024, b.begin());
        if (same_tenant) {
            ++shared_pairs;
        } else {
            EXPECT_NE(a[0], b[0]);
        }
    }
    EXPECT_GT(shared_pairs, 0);
}

TEST(SharedSystemPromptTrace, DeterministicForSeed)
{
    const auto a = sharedSystemPromptTrace(10, 2, 256, 64, 5);
    const auto b = sharedSystemPromptTrace(10, 2, 256, 64, 5);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].token_ids, b[i].token_ids);
        EXPECT_EQ(a[i].max_new_tokens, b[i].max_new_tokens);
    }
}

// ---- End-to-end, both backends --------------------------------------

class PrefixCachingEndToEnd
    : public ::testing::TestWithParam<perf::BackendKind>
{
};

TEST_P(PrefixCachingEndToEnd, DisabledRunsReportNoPrefixActivity)
{
    Engine engine(baseConfig(GetParam(), /*caching=*/false));
    const auto report = engine.run(sharedTrace());
    EXPECT_EQ(report.num_requests, 64);
    EXPECT_EQ(report.prefix_lookups, 0);
    EXPECT_EQ(report.prefix_hits, 0);
    EXPECT_EQ(report.prefill_tokens_saved, 0);
    EXPECT_EQ(report.prefix_aliased_bytes, 0u);
}

TEST_P(PrefixCachingEndToEnd, SharedPromptsHitAndSavePrefill)
{
    Engine off_engine(baseConfig(GetParam(), false));
    const auto off = off_engine.run(sharedTrace());

    Engine on_engine(baseConfig(GetParam(), true));
    const auto on = on_engine.run(sharedTrace());

    // Same work served.
    EXPECT_EQ(on.num_requests, off.num_requests);
    EXPECT_EQ(on.prompt_tokens, off.prompt_tokens);
    EXPECT_EQ(on.decode_tokens, off.decode_tokens);

    // The cache was consulted for every admission and hits dominate
    // (4 tenants x 16 requests; only the first of each tenant can
    // miss, modulo same-iteration co-admissions).
    EXPECT_EQ(on.prefix_lookups, 64);
    EXPECT_GT(on.prefix_hits, 32);
    // >= 50% of all prompt tokens were served from cache (the §8.1
    // acceptance bar), and sharing was physical.
    EXPECT_GE(on.prefillSavedFraction(), 0.5);
    EXPECT_GT(on.prefix_aliased_bytes, 0u);

    // Cutting ~80% of prefill work must show up end to end.
    EXPECT_LT(on.ttft_s.median(), off.ttft_s.median());
    EXPECT_LT(on.makespan_ns, off.makespan_ns);
}

INSTANTIATE_TEST_SUITE_P(Backends, PrefixCachingEndToEnd,
                         ::testing::Values(
                             perf::BackendKind::kFa2Paged,
                             perf::BackendKind::kFa2VAttention));

// ---- vAttention-specific: aliasing is observable at the driver ------

TEST(PrefixCachingVAttention, AliasedPageGroupsVisibleViaNumMappings)
{
    Engine engine(baseConfig(perf::BackendKind::kFa2VAttention, true));
    auto *backend = engine.vattnBackend();
    ASSERT_NE(backend, nullptr);

    // Two concurrent requests with a shared 2-group prefix: the
    // second aliases the first's physical page-groups.
    const i64 tpg = backend->runtime().geometry().tokensPerGroup();
    std::vector<i32> base(static_cast<std::size_t>(2 * tpg + 128));
    std::iota(base.begin(), base.end(), 1);

    std::vector<Request> trace(2);
    for (int i = 0; i < 2; ++i) {
        auto &r = trace[static_cast<std::size_t>(i)];
        r.id = static_cast<u64>(i);
        r.token_ids = base;
        // Diverge after the shared aligned groups.
        r.token_ids[static_cast<std::size_t>(2 * tpg + 10)] += i;
        r.prompt_tokens = static_cast<i64>(r.token_ids.size());
        r.max_new_tokens = 64;
        r.arrival_ns = static_cast<TimeNs>(i) * 1'000'000;
    }
    const auto report = engine.run(std::move(trace));
    EXPECT_EQ(report.prefix_hits, 1);
    EXPECT_EQ(report.prefill_tokens_saved, 2 * tpg);
    EXPECT_GT(report.prefix_aliased_bytes, 0u);
    // The runtime recorded true multi-mapping: one handle, two VAs
    // (the acceptance criterion's Driver::numMappings() > 1 is
    // asserted directly at the core layer in test_prefix_reuse).
    EXPECT_GT(backend->runtime().stats().prefix_aliased_handles, 0);
}

// ---- Admission accounts only un-cached bytes ------------------------

class PrefixAdmission
    : public ::testing::TestWithParam<perf::BackendKind>
{
  protected:
    /** r1 holds most of the KV budget while r2 (same prefix + short
     *  suffix) arrives: without the prefix discount r2 cannot be
     *  admitted until r1 finishes. */
    static std::vector<Request>
    twoRequestTrace()
    {
        std::vector<i32> base(4000);
        std::iota(base.begin(), base.end(), 7);
        std::vector<Request> trace(2);
        trace[0].id = 0;
        trace[0].token_ids = base;
        trace[0].prompt_tokens = 4000;
        trace[0].max_new_tokens = 512;
        trace[0].arrival_ns = 0;
        trace[1].id = 1;
        trace[1].token_ids = base;
        for (int i = 0; i < 100; ++i) {
            trace[1].token_ids.push_back(1'000'000 + i);
        }
        trace[1].prompt_tokens = 4100;
        trace[1].max_new_tokens = 16;
        trace[1].arrival_ns = 5'000'000'000; // after r1's prefill
        return trace;
    }

    static EngineConfig
    tightConfig(perf::BackendKind kind, bool caching)
    {
        EngineConfig config = baseConfig(kind, caching);
        // Yi-6B: 64KB KV/token. Paged: 400 blocks of 16 tokens.
        // vAttention (2MB groups, 64 buffers, 2048 tokens/group):
        // 340 groups — room for r1's 3 group-rows (192 handles) plus
        // r2's private tail-copy and suffix rows (128), but not a
        // fresh 4100-token prompt (192 more). Background allocation
        // is disabled so the arithmetic is exact.
        config.kv_budget_override =
            perf::isPaged(kind) ? 400 * MiB : 680 * MiB;
        config.vattn.eager_allocation = false;
        config.vattn.overlap_allocation = false;
        return config;
    }
};

TEST_P(PrefixAdmission, DiscountedDemandAdmitsSharerEarly)
{
    // Without caching, r2's full prompt cannot fit beside r1: it
    // waits, and the batch never exceeds 1.
    Engine off_engine(tightConfig(GetParam(), false));
    const auto off = off_engine.run(twoRequestTrace());
    EXPECT_EQ(off.num_requests, 2);
    EXPECT_EQ(off.peak_batch, 1);

    // With caching, canAdmit sees only the 100-token un-cached
    // suffix (the same helper feeds the starvation check, so the
    // engine agrees with itself): r2 runs alongside r1.
    Engine on_engine(tightConfig(GetParam(), true));
    const auto on = on_engine.run(twoRequestTrace());
    EXPECT_EQ(on.num_requests, 2);
    EXPECT_EQ(on.peak_batch, 2);
    EXPECT_EQ(on.prefix_hits, 1);
    EXPECT_GT(on.prefill_tokens_saved, 3000);
    EXPECT_EQ(on.preemptions, 0u);
}

INSTANTIATE_TEST_SUITE_P(Backends, PrefixAdmission,
                         ::testing::Values(
                             perf::BackendKind::kFa2Paged,
                             perf::BackendKind::kFa2VAttention));

// ---- Invariants under serving-shaped churn --------------------------

TEST(PrefixCachingVAttention, InvariantsHoldAcrossAServingRun)
{
    Engine engine(baseConfig(perf::BackendKind::kFa2VAttention, true));
    auto trace = sharedSystemPromptTrace(48, 3, 2048, 128, 13);
    assignPoissonArrivals(trace, 4.0, 17);
    const auto report = engine.run(std::move(trace));
    EXPECT_EQ(report.num_requests, 48);
    EXPECT_GT(report.prefix_hits, 0);
    ASSERT_NE(engine.vattnBackend(), nullptr);
    EXPECT_TRUE(engine.vattnBackend()->runtime().checkInvariants());
}

TEST(PrefixCachingPaged, BlockManagerInvariantsHoldAcrossAServingRun)
{
    Engine engine(baseConfig(perf::BackendKind::kFa2Paged, true));
    auto trace = sharedSystemPromptTrace(48, 3, 2048, 128, 13);
    assignPoissonArrivals(trace, 4.0, 17);
    const auto report = engine.run(std::move(trace));
    EXPECT_EQ(report.num_requests, 48);
    EXPECT_GT(report.prefix_hits, 0);
    auto *backend =
        dynamic_cast<PagedBackend *>(&engine.backend());
    ASSERT_NE(backend, nullptr);
    EXPECT_TRUE(backend->blockManager().checkInvariants());
}

} // namespace
} // namespace vattn::serving
