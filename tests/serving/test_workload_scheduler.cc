#include <gtest/gtest.h>

#include "serving/scheduler.hh"
#include "serving/workload.hh"

namespace vattn::serving
{
namespace
{

TEST(Workload, ArxivOfflineMatchesPaperStats)
{
    auto trace = arxivOfflineTrace();
    const auto stats = computeStats(trace);
    // §7.3: 427 requests, total context 64K-192K, decodes 17-5153,
    // mean P:D ratio 356.
    EXPECT_EQ(stats.num_requests, 427);
    EXPECT_GE(stats.min_prompt + stats.min_decode, 64 * 1024 - 5153);
    for (const auto &request : trace) {
        const i64 total = request.prompt_tokens + request.max_new_tokens;
        EXPECT_GE(total, 64 * 1024);
        EXPECT_LE(total, 192 * 1024);
        EXPECT_GE(request.max_new_tokens, 17);
        EXPECT_LE(request.max_new_tokens, 5153);
    }
    EXPECT_NEAR(stats.mean_pd_ratio, 356, 150);
}

TEST(Workload, ArxivOnlineMatchesPaperStats)
{
    auto trace = arxivOnlineTrace();
    const auto stats = computeStats(trace);
    // §7.4: 512 requests, input 22K-45K (mean 29K), decodes 6-3250
    // (mean 348).
    EXPECT_EQ(stats.num_requests, 512);
    EXPECT_GE(stats.min_prompt, 22 * 1024);
    EXPECT_LE(stats.max_prompt, 45 * 1024);
    EXPECT_NEAR(stats.mean_prompt, 29e3, 2e3);
    EXPECT_GE(stats.min_decode, 6);
    EXPECT_LE(stats.max_decode, 3250);
    EXPECT_NEAR(stats.mean_decode, 348, 120);
}

TEST(Workload, OpenChatIsShortContext)
{
    auto trace = openChatTrace(1000);
    const auto stats = computeStats(trace);
    // Chat-scale contexts: mean total ~3-4K tokens, nothing huge.
    EXPECT_LT(stats.mean_prompt + stats.mean_decode, 4500);
    EXPECT_GT(stats.mean_prompt + stats.mean_decode, 2500);
    EXPECT_LE(stats.max_prompt, 16 * 1024);
    EXPECT_GE(stats.min_prompt, 64);
}

TEST(Workload, ShareGptIsShortPromptLongDecode)
{
    auto trace = shareGptTrace(1000);
    const auto stats = computeStats(trace);
    EXPECT_EQ(stats.num_requests, 1000);
    // Conversational regime: short prompts (median a few hundred
    // tokens), answers that often outrun them.
    EXPECT_GT(stats.mean_prompt, 150);
    EXPECT_LT(stats.mean_prompt, 450);
    EXPECT_GT(stats.mean_decode, 250);
    EXPECT_LT(stats.mean_decode, 550);
    EXPECT_LT(stats.mean_pd_ratio, 1.5);
    EXPECT_GE(stats.min_prompt, 8);
    EXPECT_LE(stats.max_prompt, 8 * 1024);
    EXPECT_GE(stats.min_decode, 16);
    EXPECT_LE(stats.max_decode, 2048);
}

TEST(Workload, ShareGptDeterministicForSeed)
{
    auto a = shareGptTrace(64, 11);
    auto b = shareGptTrace(64, 11);
    auto c = shareGptTrace(64, 12);
    bool differs = false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].prompt_tokens, b[i].prompt_tokens);
        EXPECT_EQ(a[i].max_new_tokens, b[i].max_new_tokens);
        differs |= a[i].prompt_tokens != c[i].prompt_tokens;
    }
    EXPECT_TRUE(differs);
}

TEST(Workload, DeterministicForSeed)
{
    auto a = arxivOfflineTrace(50, 9);
    auto b = arxivOfflineTrace(50, 9);
    auto c = arxivOfflineTrace(50, 10);
    for (int i = 0; i < 50; ++i) {
        EXPECT_EQ(a[static_cast<std::size_t>(i)].prompt_tokens,
                  b[static_cast<std::size_t>(i)].prompt_tokens);
    }
    bool differs = false;
    for (int i = 0; i < 50; ++i) {
        differs |= a[static_cast<std::size_t>(i)].prompt_tokens !=
                   c[static_cast<std::size_t>(i)].prompt_tokens;
    }
    EXPECT_TRUE(differs);
}

TEST(Workload, PoissonArrivalsMonotonicWithCorrectRate)
{
    auto trace = arxivOnlineTrace(500);
    assignPoissonArrivals(trace, 2.0, 77);
    TimeNs prev = 0;
    for (const auto &request : trace) {
        EXPECT_GE(request.arrival_ns, prev);
        prev = request.arrival_ns;
    }
    // 500 arrivals at 2 QPS -> ~250s span.
    const double span_s = static_cast<double>(prev) / 1e9;
    EXPECT_NEAR(span_s, 250.0, 40.0);
}

TEST(Workload, OfflineArrivalsAllZero)
{
    auto trace = arxivOfflineTrace(10);
    assignOfflineArrivals(trace);
    for (const auto &request : trace) {
        EXPECT_EQ(request.arrival_ns, 0u);
    }
}

TEST(Workload, SkewedTenantTraceIsSortedAndPositionallyIdd)
{
    auto trace = skewedTenantOnlineTrace(400);
    ASSERT_EQ(trace.size(), 400u);
    for (std::size_t i = 0; i < trace.size(); ++i) {
        EXPECT_EQ(trace[i].id, i);
        EXPECT_GT(trace[i].prompt_tokens, 0);
        EXPECT_GT(trace[i].max_new_tokens, 0);
        if (i > 0) {
            EXPECT_GE(trace[i].arrival_ns, trace[i - 1].arrival_ns);
        }
    }
}

TEST(Workload, SkewedTenantTraceIsBurstierThanPoisson)
{
    auto skewed = skewedTenantOnlineTrace(400);
    const auto skewed_stats = computeStats(skewed);

    auto poisson = shareGptTrace(400, 4);
    assignPoissonArrivals(poisson, 2.0, 99);
    const auto poisson_stats = computeStats(poisson);

    // A Poisson process has inter-arrival CV ~ 1; the hot tenant's
    // bursts push the skewed trace well past it.
    EXPECT_NEAR(poisson_stats.arrival_cv, 1.0, 0.35);
    EXPECT_GT(skewed_stats.arrival_cv, 1.5);
    EXPECT_GT(skewed_stats.arrival_cv,
              poisson_stats.arrival_cv + 0.5);
}

TEST(Workload, SkewedTenantTraceDeterministicForSeed)
{
    auto a = skewedTenantOnlineTrace(128, 0.4, 2.0, 60.0, 17);
    auto b = skewedTenantOnlineTrace(128, 0.4, 2.0, 60.0, 17);
    auto c = skewedTenantOnlineTrace(128, 0.4, 2.0, 60.0, 18);
    ASSERT_EQ(a.size(), b.size());
    bool differs = a.size() != c.size();
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].arrival_ns, b[i].arrival_ns);
        EXPECT_EQ(a[i].prompt_tokens, b[i].prompt_tokens);
        EXPECT_EQ(a[i].max_new_tokens, b[i].max_new_tokens);
        if (!differs && i < c.size()) {
            differs = a[i].arrival_ns != c[i].arrival_ns ||
                      a[i].prompt_tokens != c[i].prompt_tokens;
        }
    }
    EXPECT_TRUE(differs);
}

TEST(Workload, ArrivalCvZeroWithoutArrivalTimes)
{
    auto trace = arxivOfflineTrace(10);
    assignOfflineArrivals(trace);
    EXPECT_EQ(computeStats(trace).arrival_cv, 0.0);
}

TEST(Scheduler, FcfsOrder)
{
    Scheduler scheduler(Scheduler::Config{8, 100000});
    Request a;
    a.id = 1;
    a.prompt_tokens = 10;
    Request b;
    b.id = 2;
    b.prompt_tokens = 10;
    scheduler.enqueue(&a);
    scheduler.enqueue(&b);
    auto batch = scheduler.pickPrefillBatch(
        0, [](const Request &) { return true; });
    ASSERT_EQ(batch.size(), 2u);
    EXPECT_EQ(batch[0]->id, 1u);
    EXPECT_EQ(batch[1]->id, 2u);
    EXPECT_FALSE(scheduler.hasWaiting());
}

TEST(Scheduler, TokenBudgetLimitsBatch)
{
    Scheduler scheduler(Scheduler::Config{8, 100});
    Request a;
    a.prompt_tokens = 60;
    Request b;
    b.prompt_tokens = 60;
    scheduler.enqueue(&a);
    scheduler.enqueue(&b);
    auto batch = scheduler.pickPrefillBatch(
        0, [](const Request &) { return true; });
    EXPECT_EQ(batch.size(), 1u); // second would exceed 100 tokens
    EXPECT_TRUE(scheduler.hasWaiting());
}

TEST(Scheduler, OversizedPromptStillRunsAlone)
{
    Scheduler scheduler(Scheduler::Config{8, 100});
    Request huge;
    huge.prompt_tokens = 5000;
    scheduler.enqueue(&huge);
    auto batch = scheduler.pickPrefillBatch(
        0, [](const Request &) { return true; });
    EXPECT_EQ(batch.size(), 1u);
}

TEST(Scheduler, NoHeadOfLineBypass)
{
    Scheduler scheduler(Scheduler::Config{8, 100000});
    Request big;
    big.id = 1;
    big.prompt_tokens = 1000;
    Request small;
    small.id = 2;
    small.prompt_tokens = 1;
    scheduler.enqueue(&big);
    scheduler.enqueue(&small);
    // Memory admits only the small request, but FCFS refuses to let
    // it jump the queue.
    auto batch = scheduler.pickPrefillBatch(0, [](const Request &r) {
        return r.prompt_tokens < 100;
    });
    EXPECT_TRUE(batch.empty());
    EXPECT_EQ(scheduler.numWaiting(), 2u);
}

TEST(Scheduler, MaxSeqsCap)
{
    Scheduler scheduler(Scheduler::Config{3, 100000});
    Request reqs[4];
    for (auto &r : reqs) {
        r.prompt_tokens = 1;
        scheduler.enqueue(&r);
    }
    auto batch = scheduler.pickPrefillBatch(
        2, [](const Request &) { return true; });
    EXPECT_EQ(batch.size(), 1u); // 2 running + 1 = cap
}

TEST(Scheduler, RequeueFrontForPreemption)
{
    Scheduler scheduler(Scheduler::Config{8, 100000});
    Request a;
    a.id = 1;
    Request b;
    b.id = 2;
    scheduler.enqueue(&a);
    scheduler.requeueFront(&b); // preempted request goes first
    auto batch = scheduler.pickPrefillBatch(
        0, [](const Request &) { return true; });
    ASSERT_EQ(batch.size(), 2u);
    EXPECT_EQ(batch[0]->id, 2u);
}

TEST(Scheduler, RepeatedPreemptionKeepsVictimAheadOfYoungerWaiters)
{
    // A preempted request must run again before every younger waiter,
    // even when it is preempted repeatedly (vLLM recompute semantics:
    // its arrival seniority is preserved).
    Scheduler scheduler(Scheduler::Config{3, 100000});
    Request victim;
    victim.id = 1;
    victim.prompt_tokens = 10;
    Request younger;
    younger.id = 2;
    younger.prompt_tokens = 10;
    Request youngest;
    youngest.id = 3;
    youngest.prompt_tokens = 10;
    scheduler.enqueue(&victim);
    scheduler.enqueue(&younger);

    auto admit_all = [](const Request &) { return true; };
    for (int round = 0; round < 3; ++round) {
        // 2 of 3 seats taken: only the queue head gets scheduled.
        auto batch = scheduler.pickPrefillBatch(2, admit_all);
        ASSERT_EQ(batch.size(), 1u) << "round " << round;
        EXPECT_EQ(batch[0]->id, 1u) << "round " << round;
        // OOM: the engine preempts it back to the queue head; new
        // traffic keeps arriving behind it.
        scheduler.requeueFront(&victim);
        if (round == 1) {
            scheduler.enqueue(&youngest);
        }
        EXPECT_EQ(victim.state, Request::State::kWaiting);
    }
    // Once memory clears, drain order is victim, then FCFS arrivals.
    auto batch = scheduler.pickPrefillBatch(0, admit_all);
    ASSERT_EQ(batch.size(), 3u);
    EXPECT_EQ(batch[0]->id, 1u);
    EXPECT_EQ(batch[1]->id, 2u);
    EXPECT_EQ(batch[2]->id, 3u);
}

} // namespace
} // namespace vattn::serving
