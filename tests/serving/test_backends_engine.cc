#include <gtest/gtest.h>

#include "serving/engine.hh"
#include "serving/paged_backend.hh"
#include "test_util.hh"

namespace vattn::serving
{
namespace
{

TEST(PagedBackendTest, AdmissionAndGrowth)
{
    // Yi-6B, 64KB/token, block 16 => 1MB per block. Budget 64 blocks.
    PagedBackend backend(perf::ModelSpec::yi6B(), 1, 16, 64 * MiB);
    EXPECT_EQ(backend.blockManager().numBlocks(), 64);
    EXPECT_TRUE(backend.canAdmit(16 * 63));
    EXPECT_FALSE(backend.canAdmit(16 * 65));

    auto slot = backend.allocSlot();
    ASSERT_TRUE(slot.isOk());
    ASSERT_TRUE(backend.ensure({{slot.value(), 100}}).isOk());
    EXPECT_EQ(backend.blocksHeld(slot.value()), 7);
    EXPECT_EQ(backend.bytesInUse(), 7 * MiB);
    // Watermark: admission now reserves headroom for the running req.
    EXPECT_FALSE(backend.canAdmit(16 * 57));
    EXPECT_TRUE(backend.canAdmit(16 * 56));

    backend.freeSlot(slot.value());
    EXPECT_EQ(backend.bytesInUse(), 0u);
}

TEST(PagedBackendTest, EnsureOomSurfaces)
{
    PagedBackend backend(perf::ModelSpec::yi6B(), 1, 16, 4 * MiB);
    auto slot = backend.allocSlot();
    ASSERT_TRUE(slot.isOk());
    auto r = backend.ensure({{slot.value(), 16 * 10}});
    EXPECT_EQ(r.code(), ErrorCode::kOutOfMemory);
}

TEST(PagedBackendTest, EnsureCostsNoDriverTime)
{
    PagedBackend backend(perf::ModelSpec::yi6B(), 1, 16, 64 * MiB);
    auto slot = backend.allocSlot();
    ASSERT_TRUE(slot.isOk());
    auto r = backend.ensure({{slot.value(), 1000}});
    ASSERT_TRUE(r.isOk());
    EXPECT_EQ(r.value(), 0u); // pool committed up-front
}

TEST(VAttentionBackendTest, EndToEndSlotLifecycle)
{
    VAttentionBackend::Options options;
    options.max_batch_size = 4;
    options.page_group = PageGroup::k2MB;
    options.overlap_allocation = false;
    options.eager_allocation = false;
    VAttentionBackend backend(perf::ModelSpec::yi6B(), 1, 512 * MiB,
                              options);

    EXPECT_TRUE(backend.canAdmit(4096));
    auto slot = backend.allocSlot();
    ASSERT_TRUE(slot.isOk());
    auto r = backend.ensure({{slot.value(), 4096}});
    ASSERT_TRUE(r.isOk());
    EXPECT_GT(r.value(), 0u); // real driver latency on this path
    // 4096 tokens = 2 groups x 64 buffers x 2MB.
    EXPECT_EQ(backend.bytesInUse(), 2u * 64 * 2 * MiB);
    backend.freeSlot(slot.value());
    // Deferred reclamation keeps it mapped.
    EXPECT_EQ(backend.bytesInUse(), 2u * 64 * 2 * MiB);
}

EngineConfig
tinyEngineConfig(perf::BackendKind kind)
{
    EngineConfig config;
    config.model = perf::ModelSpec::yi6B();
    config.gpu = perf::GpuSpec::a100();
    config.tp_degree = 1;
    config.backend = kind;
    config.kv_budget_override = 2 * GiB;
    config.scheduler.max_num_seqs = 8;
    config.scheduler.max_batched_tokens = 8192;
    config.vattn.max_batch_size = 8;
    return config;
}

std::vector<Request>
tinyTrace(int n, i64 prompt, i64 decode)
{
    std::vector<Request> trace(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        auto &r = trace[static_cast<std::size_t>(i)];
        r.id = static_cast<u64>(i);
        r.prompt_tokens = prompt;
        r.max_new_tokens = decode;
    }
    assignOfflineArrivals(trace);
    return trace;
}

class EngineBackendTest
    : public ::testing::TestWithParam<perf::BackendKind>
{
};

TEST_P(EngineBackendTest, OfflineRunCompletesAllRequests)
{
    Engine engine(tinyEngineConfig(GetParam()));
    auto report = engine.run(tinyTrace(12, 2000, 50));
    EXPECT_EQ(report.num_requests, 12);
    EXPECT_EQ(report.decode_tokens, 12 * 50);
    EXPECT_GT(report.makespan_ns, 0u);
    EXPECT_GT(report.prefill_iterations, 0);
    EXPECT_GT(report.decode_iterations, 0);
    EXPECT_GT(report.requestsPerMinute(), 0.0);
    EXPECT_LE(report.peak_batch, 8);
}

INSTANTIATE_TEST_SUITE_P(
    Backends, EngineBackendTest,
    ::testing::Values(perf::BackendKind::kVllmPaged,
                      perf::BackendKind::kFa2Paged,
                      perf::BackendKind::kFiPaged,
                      perf::BackendKind::kFa2VAttention,
                      perf::BackendKind::kFiVAttention));

TEST(EngineTest, ContinuousBatchingAdmitsMidStream)
{
    // More requests than max_num_seqs: later ones must join as
    // earlier ones finish, and everything completes.
    auto config = tinyEngineConfig(perf::BackendKind::kFa2VAttention);
    config.scheduler.max_num_seqs = 4;
    Engine engine(config);
    auto report = engine.run(tinyTrace(16, 1000, 30));
    EXPECT_EQ(report.num_requests, 16);
    EXPECT_EQ(report.peak_batch, 4);
}

TEST(EngineTest, PreemptionRecoversFromMemoryPressure)
{
    // Budget fits ~2 full requests; 6 long-decode requests force
    // preemptions but must all finish.
    auto config = tinyEngineConfig(perf::BackendKind::kFa2VAttention);
    config.kv_budget_override = 600 * MiB; // ~9600 tokens of KV
    config.vattn.page_group = PageGroup::k2MB;
    Engine engine(config);
    auto report = engine.run(tinyTrace(6, 1500, 600));
    EXPECT_EQ(report.num_requests, 6);
    EXPECT_EQ(report.decode_tokens, 6 * 600);
}

TEST(EngineTest, PagedPreemptionAlsoRecovers)
{
    auto config = tinyEngineConfig(perf::BackendKind::kFa2Paged);
    config.kv_budget_override = 600 * MiB;
    Engine engine(config);
    auto report = engine.run(tinyTrace(6, 1500, 600));
    EXPECT_EQ(report.num_requests, 6);
}

TEST(EngineTest, OnlineArrivalsRespectClock)
{
    auto config = tinyEngineConfig(perf::BackendKind::kFa2VAttention);
    Engine engine(config);
    auto trace = tinyTrace(5, 1000, 20);
    // Space arrivals 30 seconds apart: the system is idle between
    // them, so each latency is queue-free.
    for (std::size_t i = 0; i < trace.size(); ++i) {
        trace[i].arrival_ns = static_cast<TimeNs>(i) * 30 * kSec;
    }
    auto report = engine.run(trace);
    EXPECT_EQ(report.num_requests, 5);
    EXPECT_GE(report.makespan_ns, 4u * 30 * kSec);
    // No queueing: all latencies nearly identical.
    EXPECT_LT(report.latency_s.max() - report.latency_s.min(), 0.5);
}

TEST(EngineTest, FirstTokenBeforeFinish)
{
    auto config = tinyEngineConfig(perf::BackendKind::kFa2VAttention);
    Engine engine(config);
    auto report = engine.run(tinyTrace(4, 1000, 40));
    EXPECT_EQ(report.ttft_s.count(), 4u);
    EXPECT_LT(report.ttft_s.max(), report.latency_s.min());
}

TEST(EngineTest, DecodeOnlyThroughputSane)
{
    auto config = tinyEngineConfig(perf::BackendKind::kFa2VAttention);
    Engine engine(config);
    // Start just below a page-group boundary (2048 tokens for Yi-6B
    // with 2MB groups) so the decode run commits new memory.
    auto run = engine.decodeOnly(8, 2040, 50);
    EXPECT_GT(run.tokens_per_s, 50.0);
    EXPECT_GT(run.alloc_bytes_per_s, 0.0);
    EXPECT_GT(run.mean_iter_ms, 0.0);
    EXPECT_EQ(run.iter_ms.count(), 50u);
}

TEST(EngineTest, PrefillOnceBreakdownAddsUp)
{
    auto config = tinyEngineConfig(perf::BackendKind::kFa2VAttention);
    config.vattn.deferred_reclamation = true;
    Engine engine(config);
    auto first = engine.prefillOnce(4096);
    EXPECT_EQ(first.total_ns, first.mem_ns + first.attention_ns +
                                  first.linear_ns + first.comm_ns +
                                  first.cpu_ns);
    EXPECT_GT(first.mem_ns, 0u);
    // Second prefill reuses the cached mappings: no allocation cost.
    auto second = engine.prefillOnce(4096);
    EXPECT_EQ(second.mem_ns, 0u);
    EXPECT_LT(second.total_ns, first.total_ns);
}

TEST(EngineTest, VAttentionBeatsPagedOnPrefillHeavyWork)
{
    // Long prompts, short decodes: the Figure 9 regime. vAttention's
    // non-paged prefill kernels must win end-to-end.
    auto make_report = [&](perf::BackendKind kind) {
        auto config = tinyEngineConfig(kind);
        config.kv_budget_override = 4 * GiB;
        config.scheduler.max_batched_tokens = 32768;
        Engine engine(config);
        return engine.run(tinyTrace(8, 30000, 20));
    };
    const auto paged = make_report(perf::BackendKind::kFa2Paged);
    const auto vattn = make_report(perf::BackendKind::kFa2VAttention);
    EXPECT_EQ(paged.num_requests, 8);
    EXPECT_EQ(vattn.num_requests, 8);
    const double speedup = vattn.requestsPerMinute() /
                           paged.requestsPerMinute();
    EXPECT_GT(speedup, 1.05);
    EXPECT_LT(speedup, 1.6);
}

TEST(EngineTest, ImpossiblePromptIsDroppedGracefully)
{
    // A prompt that can never fit the KV budget used to be fatal;
    // it is now a per-request failure and the engine keeps serving.
    auto config = tinyEngineConfig(perf::BackendKind::kFa2VAttention);
    config.kv_budget_override = 256 * MiB; // ~4K tokens
    Engine engine(config);
    auto trace = tinyTrace(3, 1000, 10);
    trace[1].prompt_tokens = 150000; // impossible
    assignOfflineArrivals(trace);
    const auto report = engine.run(std::move(trace));
    EXPECT_EQ(report.dropped_requests, 1);
    EXPECT_EQ(report.num_requests, 2); // the feasible ones finished
    EXPECT_EQ(report.latency_s.count(), 2u);
}

TEST(EngineTest, KvBudgetComputation)
{
    EngineConfig config;
    config.model = perf::ModelSpec::yi6B();
    config.gpu = perf::GpuSpec::a100();
    config.tp_degree = 1;
    // 0.9*80GB - ~11.3GB weights - 2GB reserve ~= 58.7GB.
    EXPECT_NEAR(static_cast<double>(config.kvBudgetPerWorker()) /
                    static_cast<double>(GiB),
                58.7, 1.5);
    config.kv_budget_override = 1 * GiB;
    EXPECT_EQ(config.kvBudgetPerWorker(), 1 * GiB);
}

TEST(EngineTest, RecordIterationsTrace)
{
    auto config = tinyEngineConfig(perf::BackendKind::kFa2VAttention);
    config.record_iterations = true;
    Engine engine(config);
    auto report = engine.run(tinyTrace(3, 1000, 10));
    EXPECT_EQ(static_cast<i64>(report.iterations.size()),
              report.prefill_iterations + report.decode_iterations);
    TimeNs prev_start = 0;
    for (const auto &iteration : report.iterations) {
        EXPECT_GE(iteration.start_ns, prev_start);
        prev_start = iteration.start_ns;
        EXPECT_GT(iteration.duration_ns, 0u);
    }
}

} // namespace
} // namespace vattn::serving
