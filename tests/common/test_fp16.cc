#include <cmath>

#include <gtest/gtest.h>

#include "common/fp16.hh"

namespace vattn
{
namespace
{

TEST(Fp16, ExactSmallValues)
{
    // Values exactly representable in binary16 must roundtrip exactly.
    const float exact[] = {0.0f, 1.0f, -1.0f, 0.5f, 2.0f, 1024.0f,
                           -0.25f, 0.125f, 65504.0f /* max normal */};
    for (float f : exact) {
        EXPECT_EQ(fp16BitsToFp32(fp32ToFp16Bits(f)), f) << f;
    }
}

TEST(Fp16, SignedZero)
{
    EXPECT_EQ(fp32ToFp16Bits(0.0f), 0x0000);
    EXPECT_EQ(fp32ToFp16Bits(-0.0f), 0x8000);
    EXPECT_EQ(fp16BitsToFp32(0x8000), -0.0f);
    EXPECT_TRUE(std::signbit(fp16BitsToFp32(0x8000)));
}

TEST(Fp16, Infinities)
{
    EXPECT_EQ(fp32ToFp16Bits(INFINITY), 0x7c00);
    EXPECT_EQ(fp32ToFp16Bits(-INFINITY), 0xfc00);
    EXPECT_TRUE(std::isinf(fp16BitsToFp32(0x7c00)));
    // Overflow saturates to infinity.
    EXPECT_EQ(fp32ToFp16Bits(70000.0f), 0x7c00);
    EXPECT_EQ(fp32ToFp16Bits(-70000.0f), 0xfc00);
}

TEST(Fp16, NaN)
{
    const u16 bits = fp32ToFp16Bits(NAN);
    EXPECT_TRUE(std::isnan(fp16BitsToFp32(bits)));
}

TEST(Fp16, KnownEncodings)
{
    EXPECT_EQ(fp32ToFp16Bits(1.0f), 0x3c00);
    EXPECT_EQ(fp32ToFp16Bits(-2.0f), 0xc000);
    EXPECT_EQ(fp32ToFp16Bits(0.5f), 0x3800);
    EXPECT_EQ(fp32ToFp16Bits(65504.0f), 0x7bff);
}

TEST(Fp16, Subnormals)
{
    // Smallest positive subnormal: 2^-24.
    const float tiny = std::ldexp(1.0f, -24);
    EXPECT_EQ(fp32ToFp16Bits(tiny), 0x0001);
    EXPECT_FLOAT_EQ(fp16BitsToFp32(0x0001), tiny);
    // Largest subnormal: (1023/1024) * 2^-14.
    const float big_sub = std::ldexp(1023.0f / 1024.0f, -14);
    EXPECT_EQ(fp32ToFp16Bits(big_sub), 0x03ff);
    EXPECT_FLOAT_EQ(fp16BitsToFp32(0x03ff), big_sub);
    // Below half the smallest subnormal flushes to zero.
    EXPECT_EQ(fp32ToFp16Bits(std::ldexp(1.0f, -26)), 0x0000);
}

TEST(Fp16, RoundToNearestEven)
{
    // 1 + 2^-11 is exactly between 1.0 and the next half (1 + 2^-10):
    // ties go to even mantissa, i.e. 1.0.
    const float tie = 1.0f + std::ldexp(1.0f, -11);
    EXPECT_EQ(fp32ToFp16Bits(tie), 0x3c00);
    // Just above the tie rounds up.
    const float above = 1.0f + std::ldexp(1.5f, -11);
    EXPECT_EQ(fp32ToFp16Bits(above), 0x3c01);
    // 1 + 3*2^-11 ties between 0x3c01 and 0x3c02 -> even 0x3c02.
    const float tie2 = 1.0f + 3.0f * std::ldexp(1.0f, -11);
    EXPECT_EQ(fp32ToFp16Bits(tie2), 0x3c02);
}

TEST(Fp16, RoundtripErrorBounded)
{
    // Relative roundtrip error for normal values <= 2^-11.
    for (int i = 0; i < 2000; ++i) {
        const float f =
            -8.0f + 0.008f * static_cast<float>(i); // [-8, 8)
        const float back = fp16BitsToFp32(fp32ToFp16Bits(f));
        const float tolerance =
            std::max(std::fabs(f) * 0x1.0p-10f, 1e-6f);
        EXPECT_NEAR(back, f, tolerance) << f;
    }
}

TEST(Fp16, AllBitPatternsRoundtripThroughFloat)
{
    // Any finite half value converted to float and back must be
    // bit-identical (float superset of half).
    for (u32 bits = 0; bits <= 0xffff; ++bits) {
        const u16 h = static_cast<u16>(bits);
        const u32 exp = (h >> 10) & 0x1f;
        const float f = fp16BitsToFp32(h);
        if (exp == 31 && (h & 0x3ff)) {
            EXPECT_TRUE(std::isnan(f));
            continue; // NaN payloads normalize; skip bit compare
        }
        EXPECT_EQ(fp32ToFp16Bits(f), h) << std::hex << bits;
    }
}

TEST(Fp16, StructWrapper)
{
    Fp16 a(1.5f);
    EXPECT_EQ(sizeof(a), 2u);
    EXPECT_FLOAT_EQ(a.toFloat(), 1.5f);
    EXPECT_FLOAT_EQ(static_cast<float>(Fp16(-3.25f)), -3.25f);
    EXPECT_TRUE(Fp16(2.0f) == Fp16(2.0f));
}

} // namespace
} // namespace vattn
