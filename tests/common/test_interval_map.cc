#include <gtest/gtest.h>

#include "common/interval_map.hh"
#include "common/rng.hh"

namespace vattn
{
namespace
{

TEST(IntervalMap, InsertAndFind)
{
    IntervalMap<int> map;
    ASSERT_TRUE(map.insert(100, 200, 1).isOk());
    ASSERT_TRUE(map.insert(300, 400, 2).isOk());

    auto entry = map.find(150);
    ASSERT_TRUE(entry.has_value());
    EXPECT_EQ(entry->start, 100u);
    EXPECT_EQ(entry->end, 200u);
    EXPECT_EQ(entry->value, 1);

    EXPECT_FALSE(map.find(99).has_value());
    EXPECT_FALSE(map.find(200).has_value()); // end exclusive
    EXPECT_TRUE(map.find(399).has_value());
    EXPECT_FALSE(map.find(400).has_value());
}

TEST(IntervalMap, RejectsEmptyAndOverlapping)
{
    IntervalMap<int> map;
    EXPECT_EQ(map.insert(10, 10, 0).code(), ErrorCode::kInvalidArgument);
    EXPECT_EQ(map.insert(20, 10, 0).code(), ErrorCode::kInvalidArgument);
    ASSERT_TRUE(map.insert(100, 200, 1).isOk());
    // All overlap shapes rejected.
    EXPECT_EQ(map.insert(50, 101, 2).code(), ErrorCode::kAlreadyExists);
    EXPECT_EQ(map.insert(150, 160, 2).code(), ErrorCode::kAlreadyExists);
    EXPECT_EQ(map.insert(199, 300, 2).code(), ErrorCode::kAlreadyExists);
    EXPECT_EQ(map.insert(100, 200, 2).code(), ErrorCode::kAlreadyExists);
    EXPECT_EQ(map.insert(50, 300, 2).code(), ErrorCode::kAlreadyExists);
    // Touching is fine (half-open).
    EXPECT_TRUE(map.insert(200, 250, 3).isOk());
    EXPECT_TRUE(map.insert(50, 100, 4).isOk());
}

TEST(IntervalMap, EraseAt)
{
    IntervalMap<int> map;
    ASSERT_TRUE(map.insert(0, 10, 1).isOk());
    EXPECT_EQ(map.eraseAt(5).code(), ErrorCode::kNotFound);
    EXPECT_TRUE(map.eraseAt(0).isOk());
    EXPECT_FALSE(map.find(5).has_value());
    EXPECT_TRUE(map.empty());
}

TEST(IntervalMap, FindValueMutable)
{
    IntervalMap<int> map;
    ASSERT_TRUE(map.insert(0, 10, 1).isOk());
    int *value = map.findValue(3);
    ASSERT_NE(value, nullptr);
    *value = 99;
    EXPECT_EQ(map.find(3)->value, 99);
    EXPECT_EQ(map.findValue(10), nullptr);
}

TEST(IntervalMap, OverlapsQuery)
{
    IntervalMap<int> map;
    ASSERT_TRUE(map.insert(100, 200, 1).isOk());
    EXPECT_TRUE(map.overlaps(150, 160));
    EXPECT_TRUE(map.overlaps(0, 101));
    EXPECT_TRUE(map.overlaps(199, 500));
    EXPECT_FALSE(map.overlaps(0, 100));
    EXPECT_FALSE(map.overlaps(200, 300));
    EXPECT_FALSE(map.overlaps(150, 150)); // empty range
}

TEST(IntervalMap, ForEachInVisitsIntersecting)
{
    IntervalMap<int> map;
    ASSERT_TRUE(map.insert(0, 10, 1).isOk());
    ASSERT_TRUE(map.insert(10, 20, 2).isOk());
    ASSERT_TRUE(map.insert(30, 40, 3).isOk());

    std::vector<int> seen;
    map.forEachIn(5, 35, [&](const auto &e) { seen.push_back(e.value); });
    EXPECT_EQ(seen, (std::vector<int>{1, 2, 3}));

    seen.clear();
    map.forEachIn(10, 30, [&](const auto &e) { seen.push_back(e.value); });
    EXPECT_EQ(seen, (std::vector<int>{2}));
}

TEST(IntervalMap, CoveredBytes)
{
    IntervalMap<int> map;
    ASSERT_TRUE(map.insert(0, 10, 1).isOk());
    ASSERT_TRUE(map.insert(100, 150, 2).isOk());
    EXPECT_EQ(map.coveredBytes(), 60u);
    EXPECT_EQ(map.size(), 2u);
}

TEST(IntervalMap, RandomizedNoOverlapInvariant)
{
    // Property: after any sequence of inserts/erases, stored intervals
    // never overlap and covered bytes match the accepted inserts.
    IntervalMap<int> map;
    Rng rng(31);
    struct Live
    {
        Addr start;
        Addr end;
    };
    std::vector<Live> live;
    for (int step = 0; step < 2000; ++step) {
        if (live.empty() || rng.uniform() < 0.6) {
            const Addr start =
                static_cast<Addr>(rng.uniformInt(0, 10000));
            const Addr end =
                start + static_cast<Addr>(rng.uniformInt(1, 50));
            const bool expect_overlap = map.overlaps(start, end);
            const auto status = map.insert(start, end, step);
            EXPECT_EQ(status.isOk(), !expect_overlap);
            if (status.isOk()) {
                live.push_back(Live{start, end});
            }
        } else {
            const auto pick = static_cast<std::size_t>(rng.uniformInt(
                0, static_cast<i64>(live.size()) - 1));
            EXPECT_TRUE(map.eraseAt(live[pick].start).isOk());
            live.erase(live.begin() + static_cast<long>(pick));
        }
    }
    u64 expect_bytes = 0;
    for (const auto &interval : live) {
        expect_bytes += interval.end - interval.start;
    }
    EXPECT_EQ(map.coveredBytes(), expect_bytes);
    EXPECT_EQ(map.size(), live.size());
}

} // namespace
} // namespace vattn
