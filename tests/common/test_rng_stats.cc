#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "common/stats.hh"
#include "test_util.hh"

namespace vattn
{
namespace
{

TEST(Rng, DeterministicForSeed)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.next(), b.next());
    }
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        same += a.next() == b.next();
    }
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, UniformIntInclusiveBounds)
{
    Rng rng(9);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        const i64 v = rng.uniformInt(3, 8);
        ASSERT_GE(v, 3);
        ASSERT_LE(v, 8);
        saw_lo |= v == 3;
        saw_hi |= v == 8;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntUnbiasedChiSquare)
{
    // Pins the Lemire rejection sampling fix: a plain next() % span
    // over-represents low residues; the rejection sampler must pass a
    // chi-square goodness-of-fit test against the flat distribution.
    Rng rng(33);
    constexpr i64 kSpan = 6;
    constexpr int kDraws = 60000;
    u64 counts[kSpan] = {};
    for (int i = 0; i < kDraws; ++i) {
        ++counts[rng.uniformInt(0, kSpan - 1)];
    }
    const double expected = static_cast<double>(kDraws) / kSpan;
    double chi_square = 0;
    for (u64 c : counts) {
        const double d = static_cast<double>(c) - expected;
        chi_square += d * d / expected;
    }
    // 5 degrees of freedom: critical value 20.5 at p = 0.001.
    EXPECT_LT(chi_square, 20.5);
}

TEST(Rng, UniformIntExtremeSpans)
{
    Rng rng(37);
    // Degenerate span.
    EXPECT_EQ(rng.uniformInt(42, 42), 42);
    // Spans so large that rejection thresholds actually matter; the
    // sampler must stay in bounds and terminate.
    for (int i = 0; i < 1000; ++i) {
        const i64 v = rng.uniformInt(-3, (i64{1} << 62) + 5);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, (i64{1} << 62) + 5);
    }
    // Spans above 2^63: the result offset no longer fits in i64, so
    // the lo + offset add must happen in unsigned arithmetic.
    const i64 lo = std::numeric_limits<i64>::min();
    const i64 hi = std::numeric_limits<i64>::max() - 1;
    for (int i = 0; i < 1000; ++i) {
        const i64 v = rng.uniformInt(lo, hi);
        EXPECT_GE(v, lo);
        EXPECT_LE(v, hi);
    }
    // Full 64-bit range: every raw draw is fair, nothing to reject.
    bool saw_negative = false;
    bool saw_positive = false;
    for (int i = 0; i < 64; ++i) {
        const i64 v = rng.uniformInt(
            std::numeric_limits<i64>::min(),
            std::numeric_limits<i64>::max());
        saw_negative |= v < 0;
        saw_positive |= v > 0;
    }
    EXPECT_TRUE(saw_negative);
    EXPECT_TRUE(saw_positive);
}

TEST(Rng, ExponentialMean)
{
    Rng rng(11);
    double sum = 0;
    const double rate = 4.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double x = rng.exponential(rate);
        ASSERT_GE(x, 0.0);
        sum += x;
    }
    EXPECT_NEAR(sum / n, 1.0 / rate, 0.01);
}

TEST(Rng, NormalMoments)
{
    Rng rng(13);
    RunningStat stat;
    for (int i = 0; i < 20000; ++i) {
        stat.add(rng.normal());
    }
    EXPECT_NEAR(stat.mean(), 0.0, 0.03);
    EXPECT_NEAR(stat.stddev(), 1.0, 0.03);
}

TEST(Rng, LogNormalMedian)
{
    Rng rng(17);
    Percentiles p;
    for (int i = 0; i < 20000; ++i) {
        p.add(rng.logNormal(std::log(100.0), 0.5));
    }
    EXPECT_NEAR(p.median(), 100.0, 5.0);
}

TEST(Rng, CategoricalRespectsWeights)
{
    Rng rng(19);
    std::vector<double> weights = {1.0, 3.0};
    int count1 = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        count1 += rng.categorical(weights) == 1;
    }
    EXPECT_NEAR(static_cast<double>(count1) / n, 0.75, 0.02);
}

TEST(Rng, ShufflePreservesElements)
{
    Rng rng(23);
    std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
    auto copy = v;
    rng.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, copy);
}

TEST(RunningStat, BasicMoments)
{
    RunningStat stat;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
        stat.add(x);
    }
    EXPECT_EQ(stat.count(), 8u);
    EXPECT_DOUBLE_EQ(stat.mean(), 5.0);
    EXPECT_DOUBLE_EQ(stat.min(), 2.0);
    EXPECT_DOUBLE_EQ(stat.max(), 9.0);
    EXPECT_NEAR(stat.stddev(), 2.138, 1e-3); // sample stddev
}

TEST(RunningStat, EmptyIsSafe)
{
    RunningStat stat;
    EXPECT_EQ(stat.count(), 0u);
    EXPECT_EQ(stat.mean(), 0.0);
    EXPECT_EQ(stat.variance(), 0.0);
}

TEST(Percentiles, QuantilesInterpolate)
{
    Percentiles p;
    for (int i = 1; i <= 100; ++i) {
        p.add(i);
    }
    EXPECT_DOUBLE_EQ(p.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(p.quantile(1.0), 100.0);
    EXPECT_NEAR(p.median(), 50.5, 1e-9);
    EXPECT_NEAR(p.quantile(0.25), 25.75, 1e-9);
}

TEST(Percentiles, CdfAt)
{
    Percentiles p;
    for (int i = 1; i <= 10; ++i) {
        p.add(i);
    }
    EXPECT_DOUBLE_EQ(p.cdfAt(0.5), 0.0);
    EXPECT_DOUBLE_EQ(p.cdfAt(5.0), 0.5);
    EXPECT_DOUBLE_EQ(p.cdfAt(10.0), 1.0);
}

TEST(Percentiles, CdfPointsMonotonic)
{
    Percentiles p;
    Rng rng(29);
    for (int i = 0; i < 1000; ++i) {
        p.add(rng.uniform(0, 50));
    }
    const auto pts = p.cdfPoints(21);
    ASSERT_EQ(pts.size(), 21u);
    for (std::size_t i = 1; i < pts.size(); ++i) {
        EXPECT_GE(pts[i].first, pts[i - 1].first);
        EXPECT_GE(pts[i].second, pts[i - 1].second);
    }
    EXPECT_DOUBLE_EQ(pts.front().second, 0.0);
    EXPECT_DOUBLE_EQ(pts.back().second, 1.0);
}

TEST(Percentiles, CdfPointsDedupeRepeatedQuantiles)
{
    // More points than distinct samples used to repeat the same x,
    // drawing vertical stutters; duplicates must collapse into one
    // point carrying the highest cumulative fraction.
    Percentiles p;
    p.add(5.0);
    p.add(5.0);
    const auto pts = p.cdfPoints(11);
    ASSERT_EQ(pts.size(), 1u);
    EXPECT_DOUBLE_EQ(pts[0].first, 5.0);
    EXPECT_DOUBLE_EQ(pts[0].second, 1.0);
}

TEST(Percentiles, CdfPointsTwoSampleDistribution)
{
    // Two distinct samples: quantiles interpolate, x values are all
    // distinct, so nothing is dropped and x is strictly increasing.
    Percentiles p;
    p.add(1.0);
    p.add(2.0);
    const auto pts = p.cdfPoints(5);
    ASSERT_EQ(pts.size(), 5u);
    for (std::size_t i = 1; i < pts.size(); ++i) {
        EXPECT_GT(pts[i].first, pts[i - 1].first);
    }
    EXPECT_DOUBLE_EQ(pts.front().first, 1.0);
    EXPECT_DOUBLE_EQ(pts.front().second, 0.0);
    EXPECT_DOUBLE_EQ(pts.back().first, 2.0);
    EXPECT_DOUBLE_EQ(pts.back().second, 1.0);
}

TEST(Percentiles, CdfPointsMixedDuplicateRuns)
{
    // {1, 1, 1, 9}: the low plateau produces duplicate x values at
    // fine resolution, the tail stays interpolated and monotone.
    Percentiles p;
    for (double x : {1.0, 1.0, 1.0, 9.0}) {
        p.add(x);
    }
    const auto pts = p.cdfPoints(13);
    ASSERT_GE(pts.size(), 2u);
    ASSERT_LT(pts.size(), 13u); // the plateau collapsed
    for (std::size_t i = 1; i < pts.size(); ++i) {
        EXPECT_GT(pts[i].first, pts[i - 1].first);
        EXPECT_GT(pts[i].second, pts[i - 1].second);
    }
    EXPECT_DOUBLE_EQ(pts.front().first, 1.0);
    EXPECT_DOUBLE_EQ(pts.back().first, 9.0);
    EXPECT_DOUBLE_EQ(pts.back().second, 1.0);
}

TEST(Percentiles, QuantilePanicsWhenEmpty)
{
    test::ScopedThrowErrors guard;
    Percentiles p;
    EXPECT_THROW(p.quantile(0.5), SimError);
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h(0.0, 10.0, 10);
    for (int i = 0; i < 10; ++i) {
        h.add(i + 0.5);
    }
    h.add(-1.0);
    h.add(42.0);
    EXPECT_EQ(h.count(), 12u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    for (int b = 0; b < 10; ++b) {
        EXPECT_EQ(h.bucketCount(b), 1u) << b;
        EXPECT_DOUBLE_EQ(h.bucketLo(b), b);
        EXPECT_DOUBLE_EQ(h.bucketHi(b), b + 1);
    }
    EXPECT_FALSE(h.toString().empty());
}

} // namespace
} // namespace vattn
