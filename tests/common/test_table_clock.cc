#include <gtest/gtest.h>

#include "common/sim_clock.hh"
#include "common/table.hh"
#include "test_util.hh"

namespace vattn
{
namespace
{

TEST(Table, AlignedRendering)
{
    Table table({"name", "value"});
    table.addRow({"alpha", "1"});
    table.addRow({"b", "22222"});
    const std::string out = table.toString();
    EXPECT_NE(out.find("| name  | value |"), std::string::npos);
    EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
    EXPECT_NE(out.find("| b     | 22222 |"), std::string::npos);
}

TEST(Table, CsvRendering)
{
    Table table({"a", "b"});
    table.addRow({"1", "2"});
    EXPECT_EQ(table.toCsv(), "a,b\n1,2\n");
}

TEST(Table, RowArityEnforced)
{
    test::ScopedThrowErrors guard;
    Table table({"a", "b"});
    EXPECT_THROW(table.addRow({"only-one"}), SimError);
}

TEST(Table, NumFormatting)
{
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::num(3.0, 0), "3");
    EXPECT_EQ(Table::integer(42), "42");
}

TEST(SimClock, AdvanceAndConvert)
{
    SimClock clock;
    EXPECT_EQ(clock.now(), 0u);
    clock.advance(1500);
    EXPECT_EQ(clock.now(), 1500u);
    clock.advanceTo(2 * kSec);
    EXPECT_EQ(clock.now(), 2 * kSec);
    EXPECT_DOUBLE_EQ(SimClock::toSeconds(clock.now()), 2.0);
    EXPECT_DOUBLE_EQ(SimClock::toMillis(kMsec), 1.0);
    EXPECT_DOUBLE_EQ(SimClock::toMicros(kUsec), 1.0);
}

TEST(SimClock, CannotGoBackwards)
{
    test::ScopedThrowErrors guard;
    SimClock clock;
    clock.advance(100);
    EXPECT_THROW(clock.advanceTo(50), SimError);
}

TEST(SimClock, Reset)
{
    SimClock clock;
    clock.advance(100);
    clock.reset();
    EXPECT_EQ(clock.now(), 0u);
}

} // namespace
} // namespace vattn
