#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/status.hh"
#include "common/types.hh"
#include "test_util.hh"

namespace vattn
{
namespace
{

TEST(Logging, PanicThrowsInTestMode)
{
    test::ScopedThrowErrors guard;
    EXPECT_THROW(panic("boom ", 42), SimError);
}

TEST(Logging, FatalThrowsInTestMode)
{
    test::ScopedThrowErrors guard;
    EXPECT_THROW(fatal("bad config: ", "x"), SimError);
}

TEST(Logging, PanicIfOnlyFiresWhenTrue)
{
    test::ScopedThrowErrors guard;
    EXPECT_NO_THROW(panic_if(false, "should not fire"));
    EXPECT_THROW(panic_if(true, "fires"), SimError);
}

TEST(Logging, MessageConcatenatesStreamables)
{
    test::ScopedThrowErrors guard;
    try {
        panic("value=", 7, " name=", "kv", " flag=", true);
        FAIL() << "panic did not throw";
    } catch (const SimError &error) {
        EXPECT_EQ(error.message, "value=7 name=kv flag=1");
    }
}

TEST(Status, DefaultIsOk)
{
    Status status;
    EXPECT_TRUE(status.isOk());
    EXPECT_EQ(status.code(), ErrorCode::kOk);
}

TEST(Status, ErrorCarriesCodeAndMessage)
{
    Status status = errorStatus(ErrorCode::kOutOfMemory, "pool empty");
    EXPECT_FALSE(status.isOk());
    EXPECT_EQ(status.code(), ErrorCode::kOutOfMemory);
    EXPECT_EQ(status.message(), "pool empty");
}

TEST(Status, ExpectOkPanicsOnError)
{
    test::ScopedThrowErrors guard;
    Status bad = errorStatus(ErrorCode::kNotFound, "nope");
    EXPECT_THROW(bad.expectOk("ctx"), SimError);
    EXPECT_NO_THROW(Status::ok().expectOk("ctx"));
}

TEST(Result, HoldsValue)
{
    Result<int> result(42);
    ASSERT_TRUE(result.isOk());
    EXPECT_EQ(result.value(), 42);
    EXPECT_EQ(result.code(), ErrorCode::kOk);
}

TEST(Result, HoldsError)
{
    Result<int> result(ErrorCode::kInvalidArgument, "bad");
    EXPECT_FALSE(result.isOk());
    EXPECT_EQ(result.code(), ErrorCode::kInvalidArgument);
    EXPECT_EQ(result.valueOr(-1), -1);
}

TEST(Result, ValuePanicsOnError)
{
    test::ScopedThrowErrors guard;
    Result<int> result(ErrorCode::kOutOfMemory);
    EXPECT_THROW(result.value(), SimError);
}

TEST(Result, ErrorCtorRejectsOkStatus)
{
    test::ScopedThrowErrors guard;
    EXPECT_THROW(Result<int>(Status::ok()), SimError);
}

TEST(ErrorCode, ToStringCoversAll)
{
    EXPECT_STREQ(toString(ErrorCode::kOk), "OK");
    EXPECT_STREQ(toString(ErrorCode::kOutOfMemory), "OUT_OF_MEMORY");
    EXPECT_STREQ(toString(ErrorCode::kInvalidArgument),
                 "INVALID_ARGUMENT");
    EXPECT_STREQ(toString(ErrorCode::kNotFound), "NOT_FOUND");
    EXPECT_STREQ(toString(ErrorCode::kAlreadyExists), "ALREADY_EXISTS");
    EXPECT_STREQ(toString(ErrorCode::kFailedPrecondition),
                 "FAILED_PRECONDITION");
}

TEST(Units, PageSizesAndGroups)
{
    EXPECT_EQ(bytes(PageSize::k4KB), 4096u);
    EXPECT_EQ(bytes(PageSize::k64KB), 65536u);
    EXPECT_EQ(bytes(PageSize::k2MB), 2u * 1024 * 1024);
    EXPECT_EQ(bytes(PageGroup::k128KB), 128u * 1024);
    EXPECT_TRUE(isCudaNative(PageGroup::k2MB));
    EXPECT_FALSE(isCudaNative(PageGroup::k64KB));
    EXPECT_STREQ(toString(PageGroup::k256KB), "256KB");
}

TEST(Units, MathHelpers)
{
    EXPECT_TRUE(isPow2(1));
    EXPECT_TRUE(isPow2(4096));
    EXPECT_FALSE(isPow2(0));
    EXPECT_FALSE(isPow2(12));
    EXPECT_EQ(roundUp(1, 4096), 4096u);
    EXPECT_EQ(roundUp(4096, 4096), 4096u);
    EXPECT_EQ(roundDown(8191, 4096), 4096u);
    EXPECT_EQ(ceilDiv(10, 3), 4u);
    EXPECT_EQ(ceilDiv(9, 3), 3u);
    EXPECT_EQ(log2Exact(1), 0u);
    EXPECT_EQ(log2Exact(2 * MiB), 21u);
}

} // namespace
} // namespace vattn
