#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "common/prefix_hash.hh"
#include "test_util.hh"

namespace vattn
{
namespace
{

std::vector<i32>
tokens(i64 n, i32 start = 0)
{
    std::vector<i32> ids(static_cast<std::size_t>(n));
    std::iota(ids.begin(), ids.end(), start);
    return ids;
}

TEST(PrefixHash, ChunkHashesAreDeterministicAndChunkCounted)
{
    const auto ids = tokens(100);
    const PrefixKey key{ids.data(), 100};
    const auto a = key.chunkHashes(16);
    const auto b = key.chunkHashes(16);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.size(), 6u); // floor(100 / 16) full chunks
    EXPECT_TRUE(key.chunkHashes(128).empty());
}

TEST(PrefixHash, EqualPrefixesShareHashChains)
{
    // Same first 64 tokens, different tails: chunk hashes agree
    // exactly up to the shared prefix.
    auto a_ids = tokens(96);
    auto b_ids = tokens(96);
    for (std::size_t i = 64; i < 96; ++i) {
        b_ids[i] += 1000;
    }
    const PrefixKey a{a_ids.data(), 96};
    const PrefixKey b{b_ids.data(), 96};
    const auto ha = a.chunkHashes(16);
    const auto hb = b.chunkHashes(16);
    ASSERT_EQ(ha.size(), 6u);
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_EQ(ha[i], hb[i]) << "chunk " << i;
    }
    EXPECT_NE(ha[4], hb[4]);
    // Chaining: a diverging chunk poisons everything after it.
    EXPECT_NE(ha[5], hb[5]);
}

TEST(PrefixHash, SingleTokenDifferenceFlipsTheChunkHash)
{
    auto a_ids = tokens(32);
    auto b_ids = tokens(32);
    b_ids[7] ^= 1;
    const PrefixKey a{a_ids.data(), 32};
    const PrefixKey b{b_ids.data(), 32};
    EXPECT_NE(a.chunkHashes(32)[0], b.chunkHashes(32)[0]);
}

TEST(PrefixHash, RangeHashChainsOntoPreviousChunk)
{
    const auto ids = tokens(40);
    const PrefixKey key{ids.data(), 40};
    const auto chunks = key.chunkHashes(16);
    ASSERT_EQ(chunks.size(), 2u);
    // A partial tail hash chained after chunk 1 commits to the whole
    // 40-token prefix: recomputing it from an equal key matches...
    const u64 tail = key.rangeHash(chunks[1], 32, 8);
    EXPECT_EQ(tail, key.rangeHash(chunks[1], 32, 8));
    // ...and differs from the same tail chained onto a different
    // history.
    EXPECT_NE(tail, key.rangeHash(kPrefixHashSeed, 32, 8));
}

TEST(PrefixHash, ChunkSplitDoesNotCollideWithWholeRange)
{
    const auto ids = tokens(32);
    // hash(all 32) != hash(hash(first 16), next 16): the length is
    // mixed into each link.
    const u64 whole = chainTokenHash(kPrefixHashSeed, ids.data(), 32);
    const u64 split = chainTokenHash(
        chainTokenHash(kPrefixHashSeed, ids.data(), 16), ids.data() + 16,
        16);
    EXPECT_NE(whole, split);
}

} // namespace
} // namespace vattn
