/**
 * @file
 * Per-layer heterogeneous KV geometries: Config::validate() rejection
 * messages for inconsistent per-layer specs, and the KvGeometry
 * per-layer arithmetic (dead/live window splits, per-layer handle
 * sums, and the uniform-wrapper panic on heterogeneous footprints).
 */

#include <gtest/gtest.h>

#include "core/kv_geometry.hh"
#include "test_util.hh"

namespace vattn::core
{
namespace
{

/** 4 layers, 2 heads, dim 8, fp16: 32B/token/buffer; 64KB group =
 *  2048 tokens per group per buffer. Layers 1 and 3 slide with a
 *  deliberately group-UNaligned 3000-token window. */
Config
windowConfig()
{
    Config config;
    config.num_layers = 4;
    config.num_kv_heads = 2;
    config.head_dim = 8;
    config.bytes_per_elem = 2;
    config.max_batch_size = 4;
    config.max_context_len = 16384;
    config.page_group = PageGroup::k64KB;
    config.use_driver_extension = true;
    config.eager_allocation = false;
    config.overlap_allocation = false;
    config.layers.assign(4, LayerKvSpec{});
    config.layers[1].kind = AttentionKind::kSlidingWindow;
    config.layers[1].window_tokens = 3000;
    config.layers[3].kind = AttentionKind::kSlidingWindow;
    config.layers[3].window_tokens = 3000;
    return config;
}

// ---- Config::validate(): actionable per-layer rejections ------------

TEST(WindowConfigValidate, AcceptsTheWindowedSpec)
{
    EXPECT_TRUE(windowConfig().validate().isOk());
}

TEST(WindowConfigValidate, RejectsSpecListLengthMismatch)
{
    auto config = windowConfig();
    config.layers.resize(2);
    const auto status = config.validate();
    ASSERT_FALSE(status.isOk());
    EXPECT_NE(status.message().find("2 entries"), std::string::npos)
        << status.message();
    EXPECT_NE(status.message().find("num_layers is 4"),
              std::string::npos);
}

TEST(WindowConfigValidate, RejectsSlidingLayerWithoutWindow)
{
    auto config = windowConfig();
    config.layers[1].window_tokens = 0;
    const auto status = config.validate();
    ASSERT_FALSE(status.isOk());
    EXPECT_NE(status.message().find("layer 1"), std::string::npos);
    EXPECT_NE(status.message().find("window_tokens > 0"),
              std::string::npos)
        << status.message();
}

TEST(WindowConfigValidate, RejectsWindowWiderThanContext)
{
    auto config = windowConfig();
    config.layers[3].window_tokens = config.max_context_len + 1;
    const auto status = config.validate();
    ASSERT_FALSE(status.isOk());
    EXPECT_NE(status.message().find("exceeds max_context_len"),
              std::string::npos)
        << status.message();
}

TEST(WindowConfigValidate, RejectsWindowOnFullAttentionLayer)
{
    auto config = windowConfig();
    config.layers[0].window_tokens = 512;
    const auto status = config.validate();
    ASSERT_FALSE(status.isOk());
    EXPECT_NE(status.message().find("only meaningful for"),
              std::string::npos)
        << status.message();
}

TEST(WindowConfigValidate, RejectsNonPositiveResolvedShape)
{
    auto config = windowConfig();
    config.layers[2].kv_heads = -1;
    const auto status = config.validate();
    ASSERT_FALSE(status.isOk());
    EXPECT_NE(status.message().find("layer 2"), std::string::npos);
    EXPECT_NE(status.message().find("positive"), std::string::npos);

    auto config2 = windowConfig();
    config2.layers[0].bytes_per_elem = 3;
    const auto status2 = config2.validate();
    ASSERT_FALSE(status2.isOk());
    EXPECT_NE(status2.message().find("2 or 4"), std::string::npos);
}

TEST(WindowConfigValidate, RejectsTensorSlicingWithWindows)
{
    auto config = windowConfig();
    config.tensor_slicing = true;
    const auto status = config.validate();
    ASSERT_FALSE(status.isOk());
    EXPECT_NE(status.message().find("tensor_slicing"),
              std::string::npos)
        << status.message();
}

TEST(WindowConfigValidate, RejectsPrefixCachingOnMixedFootprints)
{
    auto config = windowConfig();
    config.prefix_caching = true;
    // Windows alone are fine...
    EXPECT_TRUE(config.validate().isOk());
    // ...but a per-layer head-count change is not.
    config.layers[2].kv_heads = 4;
    const auto status = config.validate();
    ASSERT_FALSE(status.isOk());
    EXPECT_NE(status.message().find("prefix_caching"),
              std::string::npos)
        << status.message();
}

// ---- KvGeometry: per-layer arithmetic -------------------------------

TEST(WindowGeometry, PerLayerBasics)
{
    const KvGeometry geom(windowConfig());
    EXPECT_EQ(geom.numBuffers(), 8);
    EXPECT_TRUE(geom.hasWindows());
    EXPECT_TRUE(geom.uniformFootprint());
    EXPECT_EQ(geom.layerOfBuffer(1), 1); // K buffer of layer 1
    EXPECT_EQ(geom.layerOfBuffer(5), 1); // V buffer of layer 1
    EXPECT_EQ(geom.windowTokens(0), 0);
    EXPECT_EQ(geom.windowTokens(1), 3000);
    EXPECT_EQ(geom.tokensPerGroup(1), 2048);
}

TEST(WindowGeometry, DeadLeadFloorsAtTheStraddledGroup)
{
    const KvGeometry geom(windowConfig());
    // Window not yet full: nothing is dead.
    EXPECT_EQ(geom.deadLeadGroups(1, 2048), 0);
    EXPECT_EQ(geom.deadLeadGroups(1, 3000), 0);
    // 5000 tokens: 2000 dead tokens < 1 group, the straddled group
    // stays mapped.
    EXPECT_EQ(geom.deadLeadGroups(1, 5000), 0);
    // 8192 tokens: floor((8192-3000)/2048) = 2 fully dead groups;
    // group 2 is straddled by the window and stays.
    EXPECT_EQ(geom.deadLeadGroups(1, 8192), 2);
    EXPECT_EQ(geom.groupsForTokens(1, 8192), 4);
    EXPECT_EQ(geom.liveGroupsForTokens(1, 8192), 2);
    // Full-attention layers never shed anything.
    EXPECT_EQ(geom.deadLeadGroups(0, 16384), 0);
}

TEST(WindowGeometry, HandleSumsSplitDeadFromFrontier)
{
    const KvGeometry geom(windowConfig());
    // At 8192 tokens: full layers (0, 2) map 4 groups on each of
    // their 2 buffers; windowed layers (1, 3) map only the 2 live
    // groups on each of theirs.
    EXPECT_EQ(geom.handlesForTokens(8192), 2 * 2 * 4 + 2 * 2 * 2);
    EXPECT_EQ(geom.frontierHandlesForTokens(8192), 8 * 4);
    // physBytes counts live mappings only.
    EXPECT_EQ(geom.physBytesForTokens(8192),
              static_cast<u64>(24) * 64 * KiB);
}

TEST(WindowGeometry, UniformWrappersStillServeWindowedSpecs)
{
    // Footprint-uniform windowed models keep the historical accessors
    // (they describe per-buffer shape, which windows do not change).
    const KvGeometry geom(windowConfig());
    EXPECT_EQ(geom.tokenBytesPerBuffer(), 32u);
    EXPECT_EQ(geom.tokensPerGroup(), 2048);
    EXPECT_EQ(geom.perRequestBytes(), 16384u * 32u);
}

TEST(WindowGeometry, UniformWrappersPanicOnHeterogeneousFootprint)
{
    auto config = windowConfig();
    config.layers[2].kv_heads = 4; // 64B/token on layer 2 only
    ASSERT_TRUE(config.validate().isOk());
    const KvGeometry geom(config);
    EXPECT_FALSE(geom.uniformFootprint());
    // Per-layer accessors answer...
    EXPECT_EQ(geom.tokenBytesPerBuffer(2), 64u);
    EXPECT_EQ(geom.tokensPerGroup(2), 1024);
    // ...the layer-blind wrappers refuse.
    test::ScopedThrowErrors throw_errors;
    EXPECT_THROW(geom.tokensPerGroup(), SimError);
    EXPECT_THROW(geom.perRequestBytes(), SimError);
}

} // namespace
} // namespace vattn::core
