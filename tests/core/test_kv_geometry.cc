#include <gtest/gtest.h>

#include "core/kv_geometry.hh"
#include "perf/model_spec.hh"

namespace vattn::core
{
namespace
{

Config
configFor(const perf::ModelSpec &model, int tp, PageGroup group,
          bool slicing = false)
{
    Config config;
    config.num_layers = model.num_layers;
    config.num_kv_heads = model.kvHeadsPerWorker(tp);
    config.head_dim = model.head_dim;
    config.bytes_per_elem = 2;
    config.max_batch_size = 100;
    config.max_context_len = model.max_context_len;
    config.page_group = group;
    config.use_driver_extension = group != PageGroup::k2MB;
    config.tensor_slicing = slicing;
    return config;
}

TEST(KvGeometry, PaperSection513Example)
{
    // §5.1.3: Yi-34B, FP16, TP-2 => N=60, H=4, D=128, P=2, L=200K:
    // S = 200MB per request per buffer; B=500 => 100GB buffers;
    // 120 buffers => 12TB of virtual memory.
    auto config = configFor(perf::ModelSpec::yi34B(), 2,
                            PageGroup::k2MB);
    config.max_batch_size = 500;
    KvGeometry geom(config);
    EXPECT_EQ(config.num_kv_heads, 4);
    EXPECT_EQ(geom.perRequestBytes(), 200ull * 1024 * 1024);
    EXPECT_EQ(geom.bufferBytes(), 500ull * 200 * 1024 * 1024);
    EXPECT_EQ(geom.numBuffers(), 120);
    // The paper's "12TB total" (120 x "100GB") in binary units:
    // 120 * 500 * 200MiB = 11.44 TiB.
    EXPECT_NEAR(static_cast<double>(geom.totalVirtualBytes()) /
                    static_cast<double>(TiB),
                11.44, 0.05);
}

TEST(KvGeometry, PerTokenKvBytesMatchesSection4)
{
    // §4: per-token KV footprint (all layers, K+V) is 64KB for Yi-6B,
    // 128KB for Llama-3-8B and 240KB for Yi-34B.
    KvGeometry yi6(configFor(perf::ModelSpec::yi6B(), 1,
                             PageGroup::k2MB));
    EXPECT_EQ(yi6.tokenBytesTotal(), 64 * KiB);
    KvGeometry llama(configFor(perf::ModelSpec::llama3_8B(), 1,
                               PageGroup::k2MB));
    EXPECT_EQ(llama.tokenBytesTotal(), 128 * KiB);
    KvGeometry yi34(configFor(perf::ModelSpec::yi34B(), 1,
                              PageGroup::k2MB));
    EXPECT_EQ(yi34.tokenBytesTotal(), 240 * KiB);
}

TEST(KvGeometry, ShardedFootprintMatchesModelSpecAcrossTp)
{
    // The geometry built from a per-worker config (H = H_kv/tp) and
    // the ModelSpec's analytic kvBytesPerTokenPerWorker must agree for
    // every legal TP degree, including the GQA boundary tp ==
    // num_kv_heads — the two are computed in different layers, so this
    // pins their consistency.
    for (const perf::ModelSpec &model :
         {perf::ModelSpec::yi6B(), perf::ModelSpec::llama3_8B(),
          perf::ModelSpec::yi34B()}) {
        for (int tp = 1; tp <= model.num_kv_heads; tp *= 2) {
            if (model.num_kv_heads % tp != 0) {
                continue;
            }
            KvGeometry geom(configFor(model, tp, PageGroup::k2MB));
            EXPECT_EQ(geom.tokenBytesTotal(),
                      model.kvBytesPerTokenPerWorker(tp))
                << model.name << " tp=" << tp;
            EXPECT_EQ(geom.tokenBytesTotal() * tp,
                      model.kvBytesPerToken())
                << model.name << " tp=" << tp;
        }
    }
}

/** Table 8: tokens per page-group ("block size") per model/TP/group. */
struct Table8Case
{
    const char *model;
    int tp;
    PageGroup group;
    i64 expect_tokens;
};

class Table8Test : public ::testing::TestWithParam<Table8Case>
{
};

TEST_P(Table8Test, BlockSizeMatchesPaper)
{
    const auto param = GetParam();
    perf::ModelSpec model = perf::ModelSpec::yi6B();
    if (std::string(param.model) == "Llama-3-8B") {
        model = perf::ModelSpec::llama3_8B();
    } else if (std::string(param.model) == "Yi-34B") {
        model = perf::ModelSpec::yi34B();
    }
    KvGeometry geom(configFor(model, param.tp, param.group));
    EXPECT_EQ(geom.tokensPerGroup(), param.expect_tokens);
}

INSTANTIATE_TEST_SUITE_P(
    Table8, Table8Test,
    ::testing::Values(
        // Yi-6B row: 64/128/256/2048 at TP-1, doubled at TP-2.
        Table8Case{"Yi-6B", 1, PageGroup::k64KB, 64},
        Table8Case{"Yi-6B", 1, PageGroup::k128KB, 128},
        Table8Case{"Yi-6B", 1, PageGroup::k256KB, 256},
        Table8Case{"Yi-6B", 1, PageGroup::k2MB, 2048},
        Table8Case{"Yi-6B", 2, PageGroup::k64KB, 128},
        Table8Case{"Yi-6B", 2, PageGroup::k2MB, 4096},
        // Llama-3-8B row: 32/64/128/1024 at TP-1.
        Table8Case{"Llama-3-8B", 1, PageGroup::k64KB, 32},
        Table8Case{"Llama-3-8B", 1, PageGroup::k128KB, 64},
        Table8Case{"Llama-3-8B", 1, PageGroup::k256KB, 128},
        Table8Case{"Llama-3-8B", 1, PageGroup::k2MB, 1024},
        Table8Case{"Llama-3-8B", 2, PageGroup::k2MB, 2048},
        // Yi-34B row equals Llama-3-8B (same H*D*P per worker).
        Table8Case{"Yi-34B", 1, PageGroup::k64KB, 32},
        Table8Case{"Yi-34B", 1, PageGroup::k2MB, 1024},
        Table8Case{"Yi-34B", 2, PageGroup::k2MB, 2048}));

TEST(KvGeometry, Table10TensorSlicing)
{
    // Table 10: tensor slicing shrinks the 2MB block size by N.
    KvGeometry yi6(configFor(perf::ModelSpec::yi6B(), 1,
                             PageGroup::k2MB, true));
    EXPECT_EQ(yi6.numBuffers(), 2);
    EXPECT_EQ(yi6.tokensPerGroup(), 64); // 2048 / 32 layers
    KvGeometry llama(configFor(perf::ModelSpec::llama3_8B(), 1,
                               PageGroup::k2MB, true));
    EXPECT_EQ(llama.tokensPerGroup(), 32); // 1024 / 32
    KvGeometry llama2(configFor(perf::ModelSpec::llama3_8B(), 2,
                                PageGroup::k2MB, true));
    EXPECT_EQ(llama2.tokensPerGroup(), 64);
    // Yi-34B TP-1: 2MiB / (60*8*128*2) = 17 (paper rounds to 18).
    KvGeometry yi34(configFor(perf::ModelSpec::yi34B(), 1,
                              PageGroup::k2MB, true));
    EXPECT_EQ(yi34.tokensPerGroup(), 17);
}

TEST(KvGeometry, GroupsForTokens)
{
    KvGeometry geom(configFor(perf::ModelSpec::yi6B(), 1,
                              PageGroup::k2MB));
    // 2048 tokens per group.
    EXPECT_EQ(geom.groupsForTokens(0), 0);
    EXPECT_EQ(geom.groupsForTokens(1), 1);
    EXPECT_EQ(geom.groupsForTokens(2048), 1);
    EXPECT_EQ(geom.groupsForTokens(2049), 2);
    EXPECT_EQ(geom.maxGroupsPerRequest(), 100); // 200K / 2048
}

TEST(KvGeometry, WasteShrinksWithSmallerGroups)
{
    // Fragmentation for a 100-token request: 2MB groups waste nearly
    // 2 full groups per buffer; 64KB groups waste far less. This is
    // the Figure 15 mechanism.
    const auto model = perf::ModelSpec::llama3_8B();
    KvGeometry big(configFor(model, 1, PageGroup::k2MB));
    KvGeometry small(configFor(model, 1, PageGroup::k64KB));
    const i64 tokens = 100;
    EXPECT_GT(big.wasteBytesForTokens(tokens),
              10 * small.wasteBytesForTokens(tokens));
    // Exact: 64 buffers * (2MB - 100*2048B) vs 64 * (4*64KB - 100*2048B)
    EXPECT_EQ(big.physBytesForTokens(tokens), 64ull * 2 * MiB);
    EXPECT_EQ(small.physBytesForTokens(tokens), 64ull * 4 * 64 * KiB);
}

TEST(KvGeometry, AlignedPerRequestNeverSharesGroups)
{
    auto config = configFor(perf::ModelSpec::yi6B(), 1,
                            PageGroup::k2MB);
    config.max_context_len = 1000; // S = 1000*1KB, not 2MB aligned
    KvGeometry geom(config);
    EXPECT_EQ(geom.perRequestBytes(), 1000u * 1024);
    EXPECT_EQ(geom.perRequestBytesAligned(), 2 * MiB);
    EXPECT_EQ(geom.perRequestBytesAligned() % geom.groupBytes(), 0u);
}

TEST(ConfigValidation, CatchesBadSettings)
{
    auto config = configFor(perf::ModelSpec::yi6B(), 1,
                            PageGroup::k2MB);
    EXPECT_TRUE(config.validate().isOk());

    auto bad = config;
    bad.num_layers = 0;
    EXPECT_FALSE(bad.validate().isOk());

    bad = config;
    bad.bytes_per_elem = 3;
    EXPECT_FALSE(bad.validate().isOk());

    bad = config;
    bad.page_group = PageGroup::k64KB;
    bad.use_driver_extension = false; // stock CUDA can't do 64KB
    EXPECT_FALSE(bad.validate().isOk());

    bad = config;
    bad.reclaim_low_watermark = 1.5;
    EXPECT_FALSE(bad.validate().isOk());
}

TEST(ConfigValidation, SlicingNeedsGroupBiggerThanToken)
{
    // Yi-34B sliced: token footprint 120KB per buffer; a 64KB group
    // cannot hold a single token -> invalid.
    auto config = configFor(perf::ModelSpec::yi34B(), 1,
                            PageGroup::k64KB, true);
    EXPECT_FALSE(config.validate().isOk());
    config.page_group = PageGroup::k2MB;
    config.use_driver_extension = false;
    EXPECT_TRUE(config.validate().isOk());
}

} // namespace
} // namespace vattn::core
