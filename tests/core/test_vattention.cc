#include <gtest/gtest.h>

#include "core/vattention.hh"
#include "test_util.hh"

namespace vattn::core
{
namespace
{

/** 2 layers, 2 heads, dim 8, fp16: 32B/token/buffer; 64KB group =
 *  2048 tokens; 4 buffers -> one "group row" = 4 handles = 256KB. */
Config
smallConfig()
{
    Config config;
    config.num_layers = 2;
    config.num_kv_heads = 2;
    config.head_dim = 8;
    config.bytes_per_elem = 2;
    config.max_batch_size = 4;
    config.max_context_len = 8192;
    config.page_group = PageGroup::k64KB;
    config.use_driver_extension = true;
    config.eager_allocation = false;
    config.overlap_allocation = false;
    config.deferred_reclamation = true;
    return config;
}

class VAttentionTest : public ::testing::Test
{
  protected:
    VAttentionTest() : device_(makeConfig()), driver_(device_) {}

    static gpu::GpuDevice::Config
    makeConfig()
    {
        gpu::GpuDevice::Config config;
        config.mem_bytes = 64 * MiB;
        return config;
    }

    std::vector<i64>
    lens(i64 a, i64 b = 0, i64 c = 0, i64 d = 0)
    {
        return {a, b, c, d};
    }

    gpu::GpuDevice device_;
    cuvmm::Driver driver_;
};

TEST_F(VAttentionTest, InitReturnsKvCacheTensors)
{
    auto config = smallConfig();
    config.phys_budget_bytes = 8 * MiB;
    VAttention vattn(driver_, config);
    // Table 4: init returns one KV tensor pair per layer.
    EXPECT_EQ(vattn.kvCache().size(), 2u);
    // Physical handles pre-created at init; init latency recorded off
    // the critical path.
    EXPECT_EQ(vattn.poolFreeHandles(), 128); // 8MB / 64KB
    EXPECT_GT(vattn.stats().init_ns, 0u);
    EXPECT_EQ(vattn.stats().critical_ns, 0u);
    EXPECT_TRUE(vattn.checkInvariants());
}

TEST_F(VAttentionTest, AlgorithmOneFlow)
{
    auto config = smallConfig();
    config.phys_budget_bytes = 8 * MiB;
    VAttention vattn(driver_, config);

    // Schedule R1 with a 3000-token prompt (line 8 of Algorithm 1).
    auto req = vattn.allocReqId();
    ASSERT_TRUE(req.isOk());
    const int r1 = req.value();

    // step (line 13): 3000 tokens -> ceil(3000/2048) = 2 groups per
    // buffer, 4 buffers -> 8 handles.
    auto stats = vattn.step(lens(3000));
    ASSERT_TRUE(stats.status.isOk());
    EXPECT_EQ(stats.handles_mapped, 8);
    EXPECT_GT(stats.critical_ns, 0u);
    EXPECT_EQ(vattn.groupsMapped(r1), 2);

    // Decode iterations: no new group needed until 4096 tokens.
    for (i64 len = 3001; len < 3005; ++len) {
        stats = vattn.step(lens(len));
        ASSERT_TRUE(stats.status.isOk());
        EXPECT_EQ(stats.handles_mapped, 0);
        EXPECT_EQ(stats.critical_ns, 0u);
    }
    // Crossing the group boundary maps one more group per buffer.
    stats = vattn.step(lens(4097));
    ASSERT_TRUE(stats.status.isOk());
    EXPECT_EQ(stats.handles_mapped, 4);
    EXPECT_EQ(vattn.groupsMapped(r1), 3);

    // Completion (line 19).
    ASSERT_TRUE(vattn.freeReqId(r1).isOk());
    EXPECT_TRUE(vattn.checkInvariants());
}

TEST_F(VAttentionTest, StepValidatesInput)
{
    auto config = smallConfig();
    config.phys_budget_bytes = 8 * MiB;
    VAttention vattn(driver_, config);

    // Wrong arity.
    EXPECT_EQ(vattn.step({1, 2}).status.code(),
              ErrorCode::kInvalidArgument);
    // Non-zero length for an inactive reqId.
    EXPECT_EQ(vattn.step(lens(100)).status.code(),
              ErrorCode::kInvalidArgument);
    // Beyond the model's max context.
    auto req = vattn.allocReqId();
    ASSERT_TRUE(req.isOk());
    EXPECT_EQ(vattn.step(lens(8193)).status.code(),
              ErrorCode::kInvalidArgument);
}

TEST_F(VAttentionTest, KvWritesThroughSteppedTensors)
{
    auto config = smallConfig();
    config.phys_budget_bytes = 8 * MiB;
    VAttention vattn(driver_, config);
    const int req = vattn.allocReqId().value();
    ASSERT_TRUE(vattn.step(lens(100)).status.isOk());

    auto view = vattn.requestView(1, req);
    float k_row[8] = {1, 2, 3, 4, 5, 6, 7, 8};
    view.storeK(99, 1, k_row);
    float out[8] = {};
    view.loadK(99, 1, out);
    for (int i = 0; i < 8; ++i) {
        EXPECT_FLOAT_EQ(out[i], k_row[i]);
    }
}

TEST_F(VAttentionTest, DeferredReclamationReusesMappings)
{
    auto config = smallConfig();
    config.phys_budget_bytes = 8 * MiB;
    VAttention vattn(driver_, config);

    // R1 runs with 3000 tokens, then completes.
    const int r1 = vattn.allocReqId().value();
    ASSERT_TRUE(vattn.step(lens(3000)).status.isOk());
    ASSERT_TRUE(vattn.freeReqId(r1).isOk());
    EXPECT_EQ(vattn.cachedHandles(), 8);

    // R2 arrives: gets R1's reqId with mappings intact (Figure 5 e);
    // a 2500-token prompt fits in the cached 2 groups -> ZERO driver
    // calls in step.
    const int r2 = vattn.allocReqId().value();
    EXPECT_EQ(r2, r1);
    EXPECT_EQ(vattn.stats().reused_cached_slots, 1u);
    auto stats = vattn.step(lens(2500));
    ASSERT_TRUE(stats.status.isOk());
    EXPECT_EQ(stats.handles_mapped, 0);
    EXPECT_EQ(stats.critical_ns, 0u);
}

TEST_F(VAttentionTest, ReclamationDisabledFreesEagerly)
{
    auto config = smallConfig();
    config.deferred_reclamation = false;
    config.phys_budget_bytes = 8 * MiB;
    VAttention vattn(driver_, config);

    const int r1 = vattn.allocReqId().value();
    ASSERT_TRUE(vattn.step(lens(3000)).status.isOk());
    const i64 available_before = vattn.poolAvailableHandles();
    ASSERT_TRUE(vattn.freeReqId(r1).isOk());
    EXPECT_EQ(vattn.cachedHandles(), 0);
    EXPECT_EQ(vattn.physBytesMapped(), 0u);
    // All 8 handles became available again (the small-page path
    // destroys them; the budget slots reopen).
    EXPECT_EQ(vattn.poolAvailableHandles(), available_before + 8);
    EXPECT_TRUE(vattn.checkInvariants());
}

TEST_F(VAttentionTest, OomTriggersStealFromCached)
{
    auto config = smallConfig();
    // Budget: exactly 12 handles = 3 group rows.
    config.phys_budget_bytes = 12 * 64 * KiB;
    VAttention vattn(driver_, config);

    // R1 uses 2 group rows (8 handles), completes, stays cached.
    const int r1 = vattn.allocReqId().value();
    ASSERT_TRUE(vattn.step(lens(3000)).status.isOk());
    ASSERT_TRUE(vattn.freeReqId(r1).isOk());

    // R2 gets R1's cached slot. R3 needs 2 rows but only 1 is free:
    // one row must be stolen from R2's... no wait, R2 is active.
    const int r2 = vattn.allocReqId().value();
    ASSERT_TRUE(vattn.step(lens(3000, 0)).status.isOk());

    // R3: slot with nothing cached; needs 2 rows, 1 free in pool,
    // and NO cached slots remain -> OOM.
    const int r3 = vattn.allocReqId().value();
    ASSERT_NE(r3, r2);
    std::vector<i64> both(4, 0);
    both[static_cast<std::size_t>(r2)] = 3000;
    both[static_cast<std::size_t>(r3)] = 3000;
    auto stats = vattn.step(both);
    EXPECT_EQ(stats.status.code(), ErrorCode::kOutOfMemory);

    // Preempt R2 (engine behaviour) and retry: now R3 fits.
    ASSERT_TRUE(vattn.freeReqId(r2).isOk());
    std::vector<i64> only(4, 0);
    only[static_cast<std::size_t>(r3)] = 3000;
    stats = vattn.step(only);
    EXPECT_TRUE(stats.status.isOk());
    EXPECT_GT(stats.handles_stolen, 0);
    EXPECT_TRUE(vattn.checkInvariants());
}

TEST_F(VAttentionTest, CanAllocateAccountsCachedAndPool)
{
    auto config = smallConfig();
    config.phys_budget_bytes = 8 * 64 * KiB; // 2 group rows
    VAttention vattn(driver_, config);

    EXPECT_TRUE(vattn.canAllocate(4096));   // 2 rows available
    EXPECT_FALSE(vattn.canAllocate(4097));  // would need 3 rows
    EXPECT_FALSE(vattn.canAllocate(99999)); // beyond max context

    const int r1 = vattn.allocReqId().value();
    ASSERT_TRUE(vattn.step(lens(2048)).status.isOk()); // 1 row used
    EXPECT_TRUE(vattn.canAllocate(2048));
    EXPECT_FALSE(vattn.canAllocate(4096));

    // Complete R1: its cached row makes a 4096 prompt feasible again
    // (reuse 1 cached row + 1 free row).
    ASSERT_TRUE(vattn.freeReqId(r1).isOk());
    EXPECT_TRUE(vattn.canAllocate(4096));
}

TEST_F(VAttentionTest, BatchFullRejectsAlloc)
{
    auto config = smallConfig();
    config.phys_budget_bytes = 8 * MiB;
    VAttention vattn(driver_, config);
    for (int i = 0; i < 4; ++i) {
        ASSERT_TRUE(vattn.allocReqId().isOk());
    }
    EXPECT_EQ(vattn.allocReqId().code(), ErrorCode::kOutOfMemory);
    EXPECT_FALSE(vattn.canAllocate(1));
}

TEST_F(VAttentionTest, FreeReqIdValidation)
{
    auto config = smallConfig();
    config.phys_budget_bytes = 8 * MiB;
    VAttention vattn(driver_, config);
    EXPECT_FALSE(vattn.freeReqId(-1).isOk());
    EXPECT_FALSE(vattn.freeReqId(0).isOk()); // not active
    const int req = vattn.allocReqId().value();
    EXPECT_TRUE(vattn.freeReqId(req).isOk());
    EXPECT_FALSE(vattn.freeReqId(req).isOk()); // double free
}

TEST_F(VAttentionTest, OverlapHidesDecodeAllocation)
{
    auto config = smallConfig();
    config.overlap_allocation = true;
    config.phys_budget_bytes = 8 * MiB;
    VAttention vattn(driver_, config);

    const int req = vattn.allocReqId().value();
    ASSERT_TRUE(vattn.step(lens(2040)).status.isOk()); // 1 group row

    // Iteration at 2048 tokens: the NEXT token (2049) needs a new
    // group. The background thread maps it during this iteration's
    // 50ms compute window...
    ASSERT_TRUE(vattn.step(lens(2048)).status.isOk());
    vattn.computePhase(50 * kMsec);
    EXPECT_EQ(vattn.groupsMapped(req), 2); // prefetched
    EXPECT_GT(vattn.stats().background_handles, 0);

    // ...so the step that actually crosses the boundary pays nothing.
    auto stats = vattn.step(lens(2049));
    ASSERT_TRUE(stats.status.isOk());
    EXPECT_EQ(stats.handles_mapped, 0);
    EXPECT_EQ(stats.critical_ns, 0u);
}

TEST_F(VAttentionTest, TinyWindowLeavesWorkForCriticalPath)
{
    auto config = smallConfig();
    config.overlap_allocation = true;
    config.phys_budget_bytes = 8 * MiB;
    VAttention vattn(driver_, config);

    vattn.allocReqId().value();
    ASSERT_TRUE(vattn.step(lens(2048)).status.isOk());
    // A 1us window cannot fit even one 8us map call.
    vattn.computePhase(1 * kUsec);

    auto stats = vattn.step(lens(2049));
    ASSERT_TRUE(stats.status.isOk());
    // All (or most) of the group row fell to the critical path.
    EXPECT_GT(stats.handles_mapped + stats.handles_stolen, 0);
    EXPECT_GT(stats.critical_ns, 0u);
}

TEST_F(VAttentionTest, EagerAllocationWarmsAFreeSlot)
{
    auto config = smallConfig();
    config.eager_allocation = true;
    config.eager_groups = 1;
    config.phys_budget_bytes = 8 * MiB;
    VAttention vattn(driver_, config);

    vattn.computePhase(10 * kMsec);
    // A free slot was parked as cached with one group row mapped.
    EXPECT_EQ(vattn.slots().numCached(), 1);
    EXPECT_EQ(vattn.cachedHandles(), 4);

    // The next request starts on the warm slot: a prompt within one
    // group needs no driver calls.
    const int req = vattn.allocReqId().value();
    auto stats = vattn.step(lens(2000));
    (void)req;
    ASSERT_TRUE(stats.status.isOk());
    EXPECT_EQ(stats.handles_mapped, 0);
    EXPECT_EQ(stats.critical_ns, 0u);
}

TEST_F(VAttentionTest, WatermarkReclamationRefillsPool)
{
    auto config = smallConfig();
    config.reclaim_low_watermark = 0.5; // refill pool to 50%
    config.phys_budget_bytes = 8 * 64 * KiB; // 8 handles
    VAttention vattn(driver_, config);

    // Use everything, then cache it.
    const int r1 = vattn.allocReqId().value();
    ASSERT_TRUE(vattn.step(lens(4096)).status.isOk()); // all 8 handles
    ASSERT_TRUE(vattn.freeReqId(r1).isOk());
    EXPECT_EQ(vattn.poolFreeHandles(), 0);
    EXPECT_EQ(vattn.cachedHandles(), 8);

    // Background reclamation trims cached groups until the pool is
    // back above the watermark (4 handles).
    vattn.computePhase(100 * kMsec);
    EXPECT_GE(vattn.poolAvailableHandles(), 4);
    EXPECT_LT(vattn.cachedHandles(), 8);
    EXPECT_TRUE(vattn.checkInvariants());
}

TEST_F(VAttentionTest, EagerGroupsClampedToRequestMaximum)
{
    // Regression (found by fuzzing): eager_groups larger than a
    // request's maximum group count must not panic growTo.
    auto config = smallConfig();
    config.eager_allocation = true;
    config.eager_groups = 100; // max per request is 4
    config.phys_budget_bytes = 8 * MiB;
    VAttention vattn(driver_, config);
    vattn.computePhase(100 * kMsec);
    EXPECT_LE(vattn.cachedHandles(), 4 * 4);
    EXPECT_TRUE(vattn.checkInvariants());
}

TEST_F(VAttentionTest, EagerKeepsExactlyOneWarmSlot)
{
    // Regression: eager allocation must not park a new warm slot on
    // every computePhase call (it once leaked the whole budget).
    auto config = smallConfig();
    config.eager_allocation = true;
    config.eager_groups = 1;
    config.phys_budget_bytes = 8 * MiB;
    VAttention vattn(driver_, config);
    for (int i = 0; i < 50; ++i) {
        vattn.computePhase(10 * kMsec);
    }
    EXPECT_EQ(vattn.slots().numCached(), 1);
    EXPECT_EQ(vattn.cachedHandles(), 4); // one group row
    EXPECT_TRUE(vattn.checkInvariants());
}

TEST_F(VAttentionTest, StatsAccumulate)
{
    auto config = smallConfig();
    config.phys_budget_bytes = 8 * MiB;
    VAttention vattn(driver_, config);
    vattn.allocReqId().value();
    vattn.step(lens(3000));
    vattn.step(lens(3001));
    EXPECT_EQ(vattn.stats().steps, 2u);
    EXPECT_EQ(vattn.stats().sync_handles, 8);
    EXPECT_GT(vattn.stats().critical_ns, 0u);
}

} // namespace
} // namespace vattn::core
