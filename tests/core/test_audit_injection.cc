/**
 * @file
 * Corruption-injection tests for the cross-layer invariant auditor:
 * each test drives the stack into a healthy state, injects one class
 * of corruption through public APIs (a leaked pool reference, a
 * driver mapping created behind the allocator, a request parked in
 * two scheduler queues, a physical allocation bypassing the pool) and
 * asserts the audit reports it with an actionable message.
 */

#include <gtest/gtest.h>

#include "common/audit.hh"
#include "core/vattention.hh"
#include "serving/engine.hh"
#include "serving/serving_audit.hh"
#include "test_util.hh"

namespace vattn
{
namespace
{

using core::Config;
using core::PagePool;
using core::KvAllocator;
using core::VAttention;
using serving::Request;

/** 2 layers, 2 heads, dim 8, fp16: 32B/token/buffer; 64KB group =
 *  2048 tokens. */
Config
smallConfig()
{
    Config config;
    config.num_layers = 2;
    config.num_kv_heads = 2;
    config.head_dim = 8;
    config.bytes_per_elem = 2;
    config.max_batch_size = 4;
    config.max_context_len = 8192;
    config.page_group = PageGroup::k64KB;
    config.use_driver_extension = true;
    config.eager_allocation = false;
    config.overlap_allocation = false;
    return config;
}

class AuditInjectionTest : public ::testing::Test
{
  protected:
    AuditInjectionTest() : device_(makeConfig()), driver_(device_) {}

    static gpu::GpuDevice::Config
    makeConfig()
    {
        gpu::GpuDevice::Config config;
        config.mem_bytes = 64 * MiB;
        return config;
    }

    gpu::GpuDevice device_;
    cuvmm::Driver driver_;
};

TEST(AuditReport, AccumulatesAndFormatsViolations)
{
    audit::AuditReport report;
    EXPECT_TRUE(report.ok());
    EXPECT_EQ(report.toString(), "audit: all invariants hold");
    EXPECT_TRUE(report.check(true, "never recorded"));
    EXPECT_TRUE(report.ok());
    EXPECT_FALSE(report.check(1 + 1 == 3, "math: ", 1, "+", 1,
                              " != ", 3));
    report.fail("layer: second problem");
    EXPECT_FALSE(report.ok());
    EXPECT_EQ(report.numViolations(), 2u);
    EXPECT_TRUE(report.contains("math: 1+1 != 3"));
    EXPECT_TRUE(report.contains("second problem"));
    EXPECT_FALSE(report.contains("never recorded"));
    const std::string text = report.toString();
    EXPECT_NE(text.find("2 invariant violations"), std::string::npos);
    EXPECT_NE(text.find("math"), std::string::npos);
}

TEST_F(AuditInjectionTest, HealthyStackPassesEveryLayer)
{
    auto config = smallConfig();
    PagePool pool(driver_, config.page_group, 8 * MiB);
    KvAllocator allocator(driver_, config, pool);
    ASSERT_TRUE(allocator.growTo(0, 2).isOk());
    ASSERT_TRUE(allocator.growTo(1, 1).isOk());

    audit::AuditReport report;
    driver_.auditInto(report);
    pool.auditInto(report);
    allocator.auditInto(report);
    EXPECT_TRUE(report.ok()) << report.toString();
}

TEST_F(AuditInjectionTest, LeakedPoolReferenceIsReported)
{
    auto config = smallConfig();
    PagePool pool(driver_, config.page_group, 8 * MiB);
    KvAllocator allocator(driver_, config, pool);
    ASSERT_TRUE(allocator.growTo(0, 2).isOk());

    // Injection: take a pool reference with no matching mapping — the
    // kind of leak a buggy prefix-sharing path would produce.
    const cuvmm::MemHandle handle = allocator.handleAt(0, 0, 0);
    pool.addRef(handle);

    audit::AuditReport report;
    allocator.auditInto(report);
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(report.contains("reference")) << report.toString();
    EXPECT_TRUE(report.contains("pool holds 2")) << report.toString();

    // Repair and re-audit: clean.
    pool.dropShared(handle);
    audit::AuditReport clean;
    allocator.auditInto(clean);
    EXPECT_TRUE(clean.ok()) << clean.toString();
}

TEST_F(AuditInjectionTest, DanglingAliasMappingIsReported)
{
    auto config = smallConfig();
    PagePool pool(driver_, config.page_group, 8 * MiB);
    KvAllocator allocator(driver_, config, pool);
    ASSERT_TRUE(allocator.growTo(0, 1).isOk());

    // Injection: map a KV handle at a second VA directly through the
    // driver, bypassing the allocator's alias bookkeeping (what a
    // missed unmap on the §8.1 sharing path would leave behind).
    const cuvmm::MemHandle handle = allocator.handleAt(0, 0, 0);
    Addr rogue_va = 0;
    ASSERT_EQ(driver_.vMemReserve(&rogue_va, bytes(config.page_group)),
              cuvmm::CuResult::kSuccess);
    ASSERT_EQ(driver_.vMemMap(rogue_va, handle),
              cuvmm::CuResult::kSuccess);

    audit::AuditReport report;
    allocator.auditInto(report);
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(report.contains("behind the allocator"))
        << report.toString();

    // Repair: remove the rogue mapping; the stack audits clean again.
    ASSERT_EQ(driver_.vMemUnmap(rogue_va), cuvmm::CuResult::kSuccess);
    audit::AuditReport clean;
    driver_.auditInto(clean);
    allocator.auditInto(clean);
    EXPECT_TRUE(clean.ok()) << clean.toString();
}

TEST_F(AuditInjectionTest, PhysBytesDriftBehindThePoolIsReported)
{
    auto config = smallConfig();
    config.phys_budget_bytes = 8 * MiB;
    VAttention vattn(driver_, config);
    ASSERT_TRUE(vattn.checkInvariants());

    // Injection: a rogue physical allocation on the runtime's driver
    // that the page pool knows nothing about — the driver's ledger is
    // self-consistent, so only the pool/driver cross-check can see it.
    cuvmm::MemHandle rogue = cuvmm::kInvalidHandle;
    ASSERT_EQ(driver_.cuMemCreate(&rogue, 2 * MiB),
              cuvmm::CuResult::kSuccess);

    audit::AuditReport report;
    vattn.auditInto(report);
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(report.contains("bypassed the pool"))
        << report.toString();
    EXPECT_FALSE(vattn.checkInvariants());

    ASSERT_EQ(driver_.cuMemRelease(rogue), cuvmm::CuResult::kSuccess);
    EXPECT_TRUE(vattn.checkInvariants());
}

TEST(ServingAudit, RequestInTwoQueuesIsReported)
{
    serving::Scheduler scheduler(serving::Scheduler::Config{});
    Request request;
    request.id = 42;
    request.prompt_tokens = 16;
    scheduler.enqueue(&request);

    // Injection: park the queued request on the swapped queue too (a
    // preemption path that forgot to pop it from waiting).
    request.slot = 3;
    scheduler.pushSwapped(&request);

    audit::AuditReport report;
    serving::auditServingState({}, scheduler, report);
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(report.contains("waiting and swapped at once"))
        << report.toString();
}

TEST(ServingAudit, StateAndSlotShapeMismatchesAreReported)
{
    serving::Scheduler scheduler(serving::Scheduler::Config{});
    Request waiting_with_slot;
    waiting_with_slot.id = 1;
    scheduler.enqueue(&waiting_with_slot);
    waiting_with_slot.slot = 7; // waiting requests hold no slot

    Request not_running;
    not_running.id = 2;
    not_running.state = Request::State::kFinished;
    not_running.slot = 0;
    std::vector<Request *> running = {&not_running};

    Request also_slot_7;
    also_slot_7.id = 3;
    also_slot_7.state = Request::State::kRunning;
    also_slot_7.slot = 7;
    running.push_back(&also_slot_7);

    audit::AuditReport report;
    serving::auditServingState(running, scheduler, report);
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(report.contains("still holds slot 7"))
        << report.toString();
    EXPECT_TRUE(report.contains("state is Finished"))
        << report.toString();
    EXPECT_TRUE(report.contains("both hold slot 7"))
        << report.toString();
}

TEST(ServingAudit, TransitionTableMatchesTheLifecycle)
{
    using State = Request::State;
    using serving::isLegalTransition;
    EXPECT_TRUE(isLegalTransition(State::kPending, State::kWaiting));
    EXPECT_TRUE(isLegalTransition(State::kWaiting, State::kRunning));
    EXPECT_TRUE(isLegalTransition(State::kWaiting, State::kDropped));
    EXPECT_TRUE(isLegalTransition(State::kWaiting, State::kPending));
    EXPECT_TRUE(isLegalTransition(State::kRunning, State::kWaiting));
    EXPECT_TRUE(isLegalTransition(State::kRunning, State::kSwapped));
    EXPECT_TRUE(isLegalTransition(State::kRunning, State::kFinished));
    EXPECT_TRUE(isLegalTransition(State::kRunning, State::kDropped));
    EXPECT_TRUE(isLegalTransition(State::kSwapped, State::kRunning));
    // Illegal edges.
    EXPECT_FALSE(isLegalTransition(State::kPending, State::kRunning));
    EXPECT_FALSE(isLegalTransition(State::kSwapped, State::kWaiting));
    EXPECT_FALSE(isLegalTransition(State::kFinished, State::kRunning));
    EXPECT_FALSE(isLegalTransition(State::kDropped, State::kWaiting));
    EXPECT_FALSE(isLegalTransition(State::kRunning, State::kRunning));
}

TEST(ServingAudit, ReachabilityCoversMultiHopObservations)
{
    using State = Request::State;
    using serving::isReachableState;
    // Same state: trivially reachable (no transition happened).
    EXPECT_TRUE(isReachableState(State::kRunning, State::kRunning));
    // Admit + preempt-to-swap within one iteration.
    EXPECT_TRUE(isReachableState(State::kWaiting, State::kSwapped));
    // Swap-in + preempt-to-recompute within one iteration.
    EXPECT_TRUE(isReachableState(State::kSwapped, State::kWaiting));
    EXPECT_TRUE(isReachableState(State::kPending, State::kFinished));
    // Terminal states lead nowhere.
    EXPECT_FALSE(isReachableState(State::kFinished, State::kRunning));
    EXPECT_FALSE(isReachableState(State::kDropped, State::kPending));
}

TEST(EngineAudit, WholeStackAuditsCleanOnBothBackends)
{
    for (const auto backend : {perf::BackendKind::kFa2VAttention,
                               perf::BackendKind::kFa2Paged}) {
        serving::EngineConfig config;
        config.backend = backend;
        config.kv_budget_override = 1 * GiB;
        config.vattn.max_batch_size = 8;
        config.scheduler.max_num_seqs = 8;
        serving::Engine engine(config);

        std::vector<Request> trace;
        for (int i = 0; i < 6; ++i) {
            Request request;
            request.id = static_cast<u64>(i);
            request.prompt_tokens = 512 + 128 * i;
            request.max_new_tokens = 32;
            trace.push_back(request);
        }
        const auto report = engine.run(std::move(trace));
        EXPECT_EQ(report.num_requests, 6);

        const auto audit = engine.auditNow();
        EXPECT_TRUE(audit.ok())
            << toString(backend) << ": " << audit.toString();
    }
}

} // namespace
} // namespace vattn
