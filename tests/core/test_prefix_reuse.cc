#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "common/prefix_hash.hh"
#include "core/vattention.hh"
#include "test_util.hh"

namespace vattn::core
{
namespace
{

/** 2 layers, 2 heads, dim 8, fp16: 32B/token/buffer; 64KB group =
 *  2048 tokens; 4 buffers -> one "group row" = 4 handles = 256KB. */
constexpr i64 kTokensPerGroup = 2048;

Config
prefixConfig()
{
    Config config;
    config.num_layers = 2;
    config.num_kv_heads = 2;
    config.head_dim = 8;
    config.bytes_per_elem = 2;
    config.max_batch_size = 4;
    config.max_context_len = 16384;
    config.page_group = PageGroup::k64KB;
    config.use_driver_extension = true;
    config.eager_allocation = false;
    config.overlap_allocation = false;
    config.deferred_reclamation = true;
    config.prefix_caching = true;
    return config;
}

class PrefixReuseTest : public ::testing::Test
{
  protected:
    PrefixReuseTest() : device_(makeConfig()), driver_(device_) {}

    static gpu::GpuDevice::Config
    makeConfig()
    {
        gpu::GpuDevice::Config config;
        config.mem_bytes = 64 * MiB;
        return config;
    }

    /** Token ids 0..n-1 offset by @p salt (same salt = same prefix). */
    static std::vector<i32>
    tokens(i64 n, i32 salt = 0)
    {
        std::vector<i32> ids(static_cast<std::size_t>(n));
        std::iota(ids.begin(), ids.end(), salt);
        return ids;
    }

    /** Build a group-granularity query the way the serving backend
     *  does. The token vector must outlive the query. */
    static PrefixQuery
    queryFor(const std::vector<i32> &ids)
    {
        const PrefixKey key{ids.data(), static_cast<i64>(ids.size())};
        PrefixQuery query;
        query.total_tokens = key.size;
        query.group_hashes = key.chunkHashes(kTokensPerGroup);
        query.tail_hash = [key](u64 prev, i64 groups, i64 n) {
            return key.rangeHash(prev, groups * kTokensPerGroup, n);
        };
        return query;
    }

    std::vector<i64>
    lens(i64 a, i64 b = 0, i64 c = 0, i64 d = 0)
    {
        return {a, b, c, d};
    }

    gpu::GpuDevice device_;
    cuvmm::Driver driver_;
};

TEST_F(PrefixReuseTest, CachedSlotReusedInPlaceOnFullMatch)
{
    auto config = prefixConfig();
    config.phys_budget_bytes = 8 * MiB;
    VAttention vattn(driver_, config);

    const auto ids = tokens(5000);
    const auto query = queryFor(ids);

    auto r1 = vattn.allocReqId();
    ASSERT_TRUE(r1.isOk());
    ASSERT_TRUE(vattn.step(lens(5000)).status.isOk());
    vattn.registerPrefix(r1.value(), query, 5000);
    ASSERT_TRUE(vattn.freeReqId(r1.value()).isOk());
    EXPECT_EQ(vattn.slots().numCached(), 1);

    // Same prompt arrives: the cached slot is handed back with its
    // prefix KV intact — tail included (it is mapped in place).
    i64 cached = 0;
    auto r2 = vattn.allocReqIdWithPrefix(query, 4999, &cached);
    ASSERT_TRUE(r2.isOk());
    EXPECT_EQ(r2.value(), r1.value());
    // Capped at 4999: the full 2 aligned groups (4096 tokens) are
    // reusable; the 904-token tail would exceed the cap only if the
    // whole 5000 matched, so expect 4096 or the tail-trimmed value.
    EXPECT_EQ(cached, 4096);
    EXPECT_EQ(vattn.stats().prefix_hits, 1);
    EXPECT_EQ(vattn.stats().prefix_inplace_hits, 1);
    EXPECT_EQ(driver_.numMappings(vattn.handleAt(r2.value(), 0, 0)),
              1u);
    EXPECT_TRUE(vattn.checkInvariants());
}

TEST_F(PrefixReuseTest, InPlaceReuseKeepsMatchedTailWithinCap)
{
    auto config = prefixConfig();
    config.phys_budget_bytes = 8 * MiB;
    VAttention vattn(driver_, config);

    const auto ids = tokens(5000);
    const auto query = queryFor(ids);
    auto r1 = vattn.allocReqId();
    ASSERT_TRUE(r1.isOk());
    ASSERT_TRUE(vattn.step(lens(5000)).status.isOk());
    vattn.registerPrefix(r1.value(), query, 5000);
    ASSERT_TRUE(vattn.freeReqId(r1.value()).isOk());

    // A longer prompt sharing the whole 5000-token prefix: the match
    // includes the partial tail group, reused in place.
    auto longer = tokens(6000);
    const auto long_query = queryFor(longer);
    i64 cached = 0;
    auto r2 = vattn.allocReqIdWithPrefix(long_query, 5999, &cached);
    ASSERT_TRUE(r2.isOk());
    EXPECT_EQ(cached, 5000);
    EXPECT_TRUE(vattn.checkInvariants());
}

TEST_F(PrefixReuseTest, ActiveSourceAliasesGroupsIntoFreeSlot)
{
    auto config = prefixConfig();
    config.phys_budget_bytes = 8 * MiB;
    VAttention vattn(driver_, config);

    const auto ids = tokens(4096); // exactly 2 aligned groups
    const auto query = queryFor(ids);
    auto r1 = vattn.allocReqId();
    ASSERT_TRUE(r1.isOk());
    ASSERT_TRUE(vattn.step(lens(4096)).status.isOk());
    vattn.registerPrefix(r1.value(), query, 4096);

    // R1 is still ACTIVE (mid-decode): a second identical prompt must
    // alias, not steal, its groups.
    i64 cached = 0;
    auto r2 = vattn.allocReqIdWithPrefix(query, 4095, &cached);
    ASSERT_TRUE(r2.isOk());
    EXPECT_NE(r2.value(), r1.value());
    EXPECT_EQ(cached, 4096 - kTokensPerGroup); // capped below 4096
    EXPECT_EQ(vattn.groupsMapped(r2.value()), 1);

    // The §8.1 capability, observable at the driver: one physical
    // handle mapped at two virtual addresses.
    const auto handle = vattn.handleAt(r2.value(), 0, 0);
    EXPECT_EQ(handle, vattn.handleAt(r1.value(), 0, 0));
    EXPECT_EQ(driver_.numMappings(handle), 2u);
    EXPECT_GT(vattn.aliasedBytes(), 0u);
    EXPECT_TRUE(vattn.checkInvariants());

    // Both requests step; aliased groups serve both contexts.
    ASSERT_TRUE(vattn.step(lens(4097, 4096)).status.isOk());
    EXPECT_TRUE(vattn.checkInvariants());
}

TEST_F(PrefixReuseTest, AliasedTailCopyIsPrivate)
{
    auto config = prefixConfig();
    config.phys_budget_bytes = 8 * MiB;
    VAttention vattn(driver_, config);

    const auto ids = tokens(5000); // 2 aligned groups + 904 tail
    const auto query = queryFor(ids);
    auto r1 = vattn.allocReqId();
    ASSERT_TRUE(r1.isOk());
    ASSERT_TRUE(vattn.step(lens(5000)).status.isOk());
    vattn.registerPrefix(r1.value(), query, 5000);

    auto longer = tokens(8000);
    const auto long_query = queryFor(longer);
    i64 cached = 0;
    auto r2 = vattn.allocReqIdWithPrefix(long_query, 7999, &cached);
    ASSERT_TRUE(r2.isOk());
    EXPECT_EQ(cached, 5000); // aligned groups aliased + tail copied
    EXPECT_EQ(vattn.groupsMapped(r2.value()), 3);
    // Aligned groups are shared; the tail group is a private copy.
    EXPECT_EQ(driver_.numMappings(vattn.handleAt(r2.value(), 0, 0)),
              2u);
    EXPECT_EQ(driver_.numMappings(vattn.handleAt(r2.value(), 0, 2)),
              1u);
    EXPECT_GT(vattn.stats().prefix_copied_handles, 0);
    EXPECT_TRUE(vattn.checkInvariants());
}

TEST_F(PrefixReuseTest, StealFromCachedSourceWhilePrefixPinned)
{
    auto config = prefixConfig();
    // Pool of 32 groups (2MB / 64KB): R1 takes 8 (2 groups x 4
    // buffers), aliasing adds none.
    config.phys_budget_bytes = 2 * MiB;
    VAttention vattn(driver_, config);

    const auto ids = tokens(4096);
    const auto query = queryFor(ids);
    auto r1 = vattn.allocReqId();
    ASSERT_TRUE(r1.isOk());
    ASSERT_TRUE(vattn.step(lens(4096)).status.isOk());
    vattn.registerPrefix(r1.value(), query, 4096);
    ASSERT_TRUE(vattn.freeReqId(r1.value()).isOk()); // cached source

    // Alias the cached prefix from an ACTIVE sharer... by first
    // activating a request that hits it in place? In-place reuse
    // would consume the entry, so pin it via an aliasing sharer
    // instead: make the source active again through a hit, then
    // register and free to recreate the cached entry while the
    // sharer holds the aliased groups.
    i64 cached = 0;
    auto sharer = vattn.allocReqIdWithPrefix(query, 4095, &cached);
    ASSERT_TRUE(sharer.isOk());
    ASSERT_EQ(sharer.value(), r1.value()); // in-place reuse
    ASSERT_TRUE(vattn.step(lens(4096)).status.isOk());
    vattn.registerPrefix(sharer.value(), query, 4096);

    // Second identical prompt aliases from the (now active) sharer.
    i64 cached2 = 0;
    auto r2 = vattn.allocReqIdWithPrefix(query, 4095, &cached2);
    ASSERT_TRUE(r2.isOk());
    ASSERT_NE(r2.value(), sharer.value());
    ASSERT_EQ(cached2, kTokensPerGroup);
    const auto pinned = vattn.handleAt(r2.value(), 0, 0);
    ASSERT_EQ(driver_.numMappings(pinned), 2u);

    // The original holder completes: its slot is cached with the
    // aliased group still pinned by r2.
    ASSERT_TRUE(vattn.freeReqId(sharer.value()).isOk());

    // Demand beyond the pool's free handles: the steal loop reclaims
    // the cached slot's groups, including the shared one. Stealing
    // the shared group only drops the VICTIM's mapping — the pinned
    // handle must survive with r2's mapping intact.
    ASSERT_TRUE(vattn.step(lens(0, 4096 * 4)).status.isOk());
    EXPECT_EQ(driver_.handleSize(pinned), 64 * KiB); // still live
    EXPECT_GE(driver_.numMappings(pinned), 1u);
    EXPECT_TRUE(vattn.checkInvariants());
}

TEST_F(PrefixReuseTest, FreeReqIdOfSharingRequestKeepsSource)
{
    auto config = prefixConfig();
    config.phys_budget_bytes = 8 * MiB;
    VAttention vattn(driver_, config);

    const auto ids = tokens(4096);
    const auto query = queryFor(ids);
    auto r1 = vattn.allocReqId();
    ASSERT_TRUE(r1.isOk());
    ASSERT_TRUE(vattn.step(lens(4096)).status.isOk());
    vattn.registerPrefix(r1.value(), query, 4096);

    i64 cached = 0;
    auto r2 = vattn.allocReqIdWithPrefix(query, 4095, &cached);
    ASSERT_TRUE(r2.isOk());
    const auto handle = vattn.handleAt(r2.value(), 0, 0);
    ASSERT_EQ(driver_.numMappings(handle), 2u);
    const u64 phys_before = driver_.physBytesInUse();

    // The sharer dies first (deferred reclamation caches its slot,
    // alias included). Source keeps its mapping and the physical
    // bytes are unchanged; invariants hold throughout.
    ASSERT_TRUE(vattn.freeReqId(r2.value()).isOk());
    EXPECT_EQ(driver_.physBytesInUse(), phys_before);
    EXPECT_GE(driver_.numMappings(handle), 1u);
    EXPECT_TRUE(vattn.checkInvariants());

    // Now the source dies too; everything still consistent.
    ASSERT_TRUE(vattn.freeReqId(r1.value()).isOk());
    EXPECT_TRUE(vattn.checkInvariants());
}

TEST_F(PrefixReuseTest, WatermarkRefillWithPinnedEntries)
{
    auto config = prefixConfig();
    config.phys_budget_bytes = 2 * MiB; // 32 groups
    config.reclaim_low_watermark = 0.9; // aggressive refill target
    VAttention vattn(driver_, config);

    const auto ids = tokens(4096);
    const auto query = queryFor(ids);
    auto r1 = vattn.allocReqId();
    ASSERT_TRUE(r1.isOk());
    ASSERT_TRUE(vattn.step(lens(4096)).status.isOk());
    vattn.registerPrefix(r1.value(), query, 4096);

    i64 cached = 0;
    auto r2 = vattn.allocReqIdWithPrefix(query, 4095, &cached);
    ASSERT_TRUE(r2.isOk());
    ASSERT_GT(cached, 0);

    // Cache the source; the background reclaimer then chews on it
    // while one group is pinned by r2's alias.
    ASSERT_TRUE(vattn.freeReqId(r1.value()).isOk());
    vattn.computePhase(1'000'000'000); // ample window
    // Reclamation must terminate, keep invariants, and never free
    // pinned physical memory out from under the sharer.
    EXPECT_TRUE(vattn.checkInvariants());
    EXPECT_GE(driver_.numMappings(vattn.handleAt(r2.value(), 0, 0)),
              1u);
    ASSERT_TRUE(vattn.step(lens(0, 4097)).status.isOk());
    EXPECT_TRUE(vattn.checkInvariants());
}

TEST_F(PrefixReuseTest, InPlaceReusePrivatizesStaleSharedGroups)
{
    auto config = prefixConfig();
    config.phys_budget_bytes = 8 * MiB;
    VAttention vattn(driver_, config);

    // S holds 2 aligned groups; T aliases BOTH of them.
    const auto ids = tokens(4096);
    const auto query = queryFor(ids);
    auto s = vattn.allocReqId();
    ASSERT_TRUE(s.isOk());
    ASSERT_TRUE(vattn.step(lens(4096)).status.isOk());
    vattn.registerPrefix(s.value(), query, 4096);

    auto longer = tokens(6000);
    const auto long_query = queryFor(longer);
    i64 cached = 0;
    auto t = vattn.allocReqIdWithPrefix(long_query, 5999, &cached);
    ASSERT_TRUE(t.isOk());
    ASSERT_EQ(cached, 4096);
    const auto shared1 = vattn.handleAt(t.value(), 0, 1);
    ASSERT_EQ(driver_.numMappings(shared1), 2u);

    // S completes and is cached; a prompt sharing only the FIRST
    // group reuses S in place. Its stale second group is still
    // aliased by T, so overwriting it would corrupt T's KV: the
    // runtime must remap it onto a private handle first.
    ASSERT_TRUE(vattn.freeReqId(s.value()).isOk());
    auto diverging = tokens(4096);
    for (std::size_t i = 2048; i < 4096; ++i) {
        diverging[i] += 500000;
    }
    const auto div_query = queryFor(diverging);
    i64 cached2 = 0;
    auto u = vattn.allocReqIdWithPrefix(div_query, 4095, &cached2);
    ASSERT_TRUE(u.isOk());
    EXPECT_EQ(u.value(), s.value()); // in-place reuse of S
    EXPECT_EQ(cached2, kTokensPerGroup);

    // T's aliased group-1 handle is now T's alone; U's group 1 is a
    // fresh private handle it may write into.
    EXPECT_EQ(driver_.numMappings(shared1), 1u);
    const auto replaced = vattn.handleAt(u.value(), 0, 1);
    EXPECT_NE(replaced, shared1);
    EXPECT_EQ(driver_.numMappings(replaced), 1u);
    // Group 0 stays legitimately shared (read-only prefix).
    EXPECT_EQ(driver_.numMappings(vattn.handleAt(u.value(), 0, 0)),
              2u);
    EXPECT_TRUE(vattn.checkInvariants());
}

TEST_F(PrefixReuseTest, MissWithDifferentTokensAllocatesFresh)
{
    auto config = prefixConfig();
    config.phys_budget_bytes = 8 * MiB;
    VAttention vattn(driver_, config);

    const auto ids = tokens(4096);
    const auto query = queryFor(ids);
    auto r1 = vattn.allocReqId();
    ASSERT_TRUE(r1.isOk());
    ASSERT_TRUE(vattn.step(lens(4096)).status.isOk());
    vattn.registerPrefix(r1.value(), query, 4096);
    ASSERT_TRUE(vattn.freeReqId(r1.value()).isOk());

    const auto other = tokens(4096, /*salt=*/100000);
    const auto other_query = queryFor(other);
    i64 cached = 0;
    auto r2 = vattn.allocReqIdWithPrefix(other_query, 4095, &cached);
    ASSERT_TRUE(r2.isOk());
    EXPECT_EQ(cached, 0);
    EXPECT_EQ(vattn.stats().prefix_hits, 0);
    EXPECT_TRUE(vattn.checkInvariants());
}

} // namespace
} // namespace vattn::core
