#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/worker_group.hh"
#include "test_util.hh"

namespace vattn::core
{
namespace
{

Config
tpConfig()
{
    // Per-worker shape for a 2-way split of a 4-KV-head model.
    Config config;
    config.num_layers = 2;
    config.num_kv_heads = 2; // 4 heads / TP-2
    config.head_dim = 8;
    config.max_batch_size = 4;
    config.max_context_len = 8192;
    config.page_group = PageGroup::k64KB;
    config.use_driver_extension = true;
    config.phys_budget_bytes = 8 * MiB;
    return config;
}

TEST(WorkerGroup, LockstepThroughBasicLifecycle)
{
    WorkerGroup group(2, tpConfig(), 64 * MiB);
    ASSERT_EQ(group.numWorkers(), 2);
    EXPECT_TRUE(group.inLockstep());

    auto req = group.allocReqId();
    ASSERT_TRUE(req.isOk());
    std::vector<i64> lens(4, 0);
    lens[static_cast<std::size_t>(req.value())] = 3000;
    auto stats = group.step(lens);
    ASSERT_TRUE(stats.status.isOk());
    EXPECT_EQ(stats.handles_mapped, 8); // per worker: 2 groups x 4 buf
    EXPECT_TRUE(group.inLockstep());

    // Aggregate physical bytes = workers x per-worker bytes.
    EXPECT_EQ(group.physBytesMappedTotal(),
              2 * group.worker(0).physBytesMapped());

    group.computePhase(20 * kMsec);
    EXPECT_TRUE(group.inLockstep());
    ASSERT_TRUE(group.freeReqId(req.value()).isOk());
    EXPECT_TRUE(group.checkInvariants());
}

TEST(WorkerGroup, LockstepUnderRandomTraffic)
{
    WorkerGroup group(4, tpConfig(), 64 * MiB);
    Rng rng(808);
    std::vector<i64> lens(4, 0);
    std::vector<int> active;

    for (int step = 0; step < 300; ++step) {
        const double dice = rng.uniform();
        if (dice < 0.3 && active.size() < 3) {
            auto req = group.allocReqId();
            if (req.isOk()) {
                active.push_back(req.value());
                lens[static_cast<std::size_t>(req.value())] =
                    rng.uniformInt(1, 4000);
            }
        } else if (dice < 0.45 && !active.empty()) {
            const auto pick = static_cast<std::size_t>(rng.uniformInt(
                0, static_cast<i64>(active.size()) - 1));
            lens[static_cast<std::size_t>(active[pick])] = 0;
            ASSERT_TRUE(group.freeReqId(active[pick]).isOk());
            active.erase(active.begin() + static_cast<long>(pick));
        } else if (dice < 0.7) {
            group.computePhase(
                static_cast<TimeNs>(rng.uniformInt(0, 15)) * kMsec);
        } else {
            for (int id : active) {
                lens[static_cast<std::size_t>(id)] = std::min<i64>(
                    8192, lens[static_cast<std::size_t>(id)] +
                              rng.uniformInt(0, 100));
            }
            auto stats = group.step(lens);
            if (!stats.status.isOk() && !active.empty()) {
                lens[static_cast<std::size_t>(active.back())] = 0;
                group.freeReqId(active.back()).expectOk("preempt");
                active.pop_back();
            }
        }
        ASSERT_TRUE(group.checkInvariants()) << "step " << step;
    }
}

TEST(WorkerGroup, AggregateAllocationBandwidthScalesWithTp)
{
    // Table 9's TP scaling, measured rather than asserted: each
    // worker pays the same critical-path latency but the group maps
    // TP x the bytes in that window.
    auto measure = [&](int tp) {
        WorkerGroup group(tp, tpConfig(), 64 * MiB);
        auto req = group.allocReqId();
        std::vector<i64> lens(4, 0);
        lens[static_cast<std::size_t>(req.value())] = 8000;
        const auto stats = group.step(lens);
        stats.status.expectOk("bandwidth step");
        return static_cast<double>(group.physBytesMappedTotal()) /
               (static_cast<double>(stats.critical_ns) / 1e9);
    };
    const double bw1 = measure(1);
    const double bw2 = measure(2);
    EXPECT_NEAR(bw2 / bw1, 2.0, 0.01);
}

TEST(WorkerGroup, PerWorkerDevicesAreIsolated)
{
    WorkerGroup group(2, tpConfig(), 64 * MiB);
    auto req = group.allocReqId();
    std::vector<i64> lens(4, 0);
    lens[static_cast<std::size_t>(req.value())] = 100;
    ASSERT_TRUE(group.step(lens).status.isOk());

    // Each worker holds its own shard: writing K on worker 0 must not
    // appear on worker 1 (different GPUs).
    auto view0 = group.worker(0).requestView(0, req.value());
    auto view1 = group.worker(1).requestView(0, req.value());
    float row[8] = {1, 2, 3, 4, 5, 6, 7, 8};
    view0.storeK(0, 0, row);
    float out[8] = {};
    view1.loadK(0, 0, out);
    for (int c = 0; c < 8; ++c) {
        EXPECT_FLOAT_EQ(out[c], 0.0f);
    }
    view0.loadK(0, 0, out);
    EXPECT_FLOAT_EQ(out[3], 4.0f);
}

TEST(WorkerGroup, InvalidConfigRejected)
{
    test::ScopedThrowErrors guard;
    auto config = tpConfig();
    config.num_layers = 0;
    EXPECT_THROW(WorkerGroup(2, config, 64 * MiB), SimError);
    EXPECT_THROW(WorkerGroup(0, tpConfig(), 64 * MiB), SimError);
}

TEST(WorkerGroup, LockstepAcrossPreemptionCycles)
{
    // The serving engine's recomputation preemption as the runtime
    // sees it: freeReqId mid-flight (half-grown KV), then re-admission
    // that hands back the SAME reqId (the cached slot with the most
    // retained groups) on every worker simultaneously.
    WorkerGroup group(2, tpConfig(), 64 * MiB);
    const int r1 = group.allocReqId().value();
    std::vector<i64> lens(4, 0);
    lens[static_cast<std::size_t>(r1)] = 3000;
    ASSERT_TRUE(group.step(lens).status.isOk());

    // Preempt mid-flight: mappings are retained (deferred
    // reclamation), every worker parks the same cached slot.
    ASSERT_TRUE(group.freeReqId(r1).isOk());
    EXPECT_TRUE(group.inLockstep());
    EXPECT_GT(group.worker(0).cachedHandles(), 0);

    // Re-admission reuses the same reqId on all workers (the group
    // panics on divergence, so allocReqId returning at all proves
    // agreement) and the retained groups serve the new prompt without
    // fresh mapping work.
    const auto again = group.allocReqId();
    ASSERT_TRUE(again.isOk());
    EXPECT_EQ(again.value(), r1);
    auto stats = group.step(lens);
    ASSERT_TRUE(stats.status.isOk());
    EXPECT_EQ(stats.handles_mapped, 0);
    EXPECT_TRUE(group.checkInvariants());
}

TEST(WorkerGroup, LockstepAcrossSwapCycles)
{
    auto config = tpConfig();
    config.host_swap_bytes = 8 * MiB;
    WorkerGroup group(2, config, 64 * MiB);
    const int r1 = group.allocReqId().value();
    const int r2 = group.allocReqId().value();
    std::vector<i64> lens(4, 0);
    lens[static_cast<std::size_t>(r1)] = 3000;
    lens[static_cast<std::size_t>(r2)] = 2000;
    ASSERT_TRUE(group.step(lens).status.isOk());

    // Swap r1 to each worker's host tier; every worker stashes its own
    // shard and the device shares must agree.
    const auto out = group.swapOutReq(r1);
    ASSERT_TRUE(out.status.isOk()) << out.status.message();
    EXPECT_EQ(out.handles, 8); // per worker: 2 groups x 4 buffers
    EXPECT_TRUE(group.inLockstep());
    EXPECT_EQ(group.worker(0).groupsMapped(r1), 0);
    EXPECT_EQ(group.worker(1).swappedGroups(r1), 2);

    // r2 keeps decoding while r1 sits on the host (freeReqId mid-
    // flight of a *different* request must not disturb the stash).
    lens[static_cast<std::size_t>(r2)] = 2500;
    ASSERT_TRUE(group.step(lens).status.isOk());
    ASSERT_TRUE(group.freeReqId(r2).isOk());
    EXPECT_TRUE(group.inLockstep());

    // Swap back in and resume: same reqId, same virtual layout, no
    // divergence.
    const auto in = group.swapInReq(r1);
    ASSERT_TRUE(in.status.isOk()) << in.status.message();
    EXPECT_EQ(in.handles, 8);
    lens[static_cast<std::size_t>(r2)] = 0;
    lens[static_cast<std::size_t>(r1)] = 3001;
    ASSERT_TRUE(group.step(lens).status.isOk());
    EXPECT_TRUE(group.checkInvariants());
    ASSERT_TRUE(group.freeReqId(r1).isOk());
    EXPECT_TRUE(group.inLockstep());
}

TEST(WorkerGroup, AuditPassesOnHealthyGroup)
{
    WorkerGroup group(2, tpConfig(), 64 * MiB);
    const int r1 = group.allocReqId().value();
    std::vector<i64> lens(4, 0);
    lens[static_cast<std::size_t>(r1)] = 3000;
    ASSERT_TRUE(group.step(lens).status.isOk());

    audit::AuditReport report;
    group.auditInto(report);
    EXPECT_TRUE(report.ok()) << report.toString();
}

TEST(WorkerGroup, AuditLocalizesInjectedWorkerDesync)
{
    // Corruption injection: drive ONE worker's runtime directly —
    // exactly the bug class the lockstep design must catch — by
    // growing worker 1's sequence past the group-agreed length. The
    // audit must fail, name the diverging worker/slot and describe the
    // drift actionably (not just "mismatch").
    WorkerGroup group(2, tpConfig(), 64 * MiB);
    const int r1 = group.allocReqId().value();
    std::vector<i64> lens(4, 0);
    lens[static_cast<std::size_t>(r1)] = 1000;
    ASSERT_TRUE(group.step(lens).status.isOk());
    EXPECT_TRUE(group.inLockstep());

    // Worker 1 silently steps ahead: its slot maps more groups and
    // more physical bytes than worker 0's.
    std::vector<i64> ahead = lens;
    ahead[static_cast<std::size_t>(r1)] = 5000;
    ASSERT_TRUE(group.worker(1).step(ahead).status.isOk());
    EXPECT_FALSE(group.inLockstep());

    audit::AuditReport report;
    group.auditInto(report);
    ASSERT_FALSE(report.ok());
    const std::string text = report.toString();
    EXPECT_NE(text.find("worker 1"), std::string::npos) << text;
    EXPECT_NE(text.find("desynced"), std::string::npos) << text;
    EXPECT_NE(text.find("slot " + std::to_string(r1)),
              std::string::npos)
        << text;
}

TEST(WorkerGroup, AuditCatchesLifecycleDesync)
{
    // A second injection flavour: one worker frees the request while
    // the others keep it live (a lost/duplicated control message).
    WorkerGroup group(3, tpConfig(), 64 * MiB);
    const int r1 = group.allocReqId().value();
    std::vector<i64> lens(4, 0);
    lens[static_cast<std::size_t>(r1)] = 500;
    ASSERT_TRUE(group.step(lens).status.isOk());

    ASSERT_TRUE(group.worker(2).freeReqId(r1).isOk());
    EXPECT_FALSE(group.inLockstep());

    audit::AuditReport report;
    group.auditInto(report);
    ASSERT_FALSE(report.ok());
    const std::string text = report.toString();
    EXPECT_NE(text.find("worker 2"), std::string::npos) << text;
    EXPECT_NE(text.find("lockstep divergence"), std::string::npos)
        << text;
}

} // namespace
} // namespace vattn::core
