/**
 * @file
 * Host-memory KV swap tier at the core layer: swapOutReq/swapInReq on
 * core::VAttention (page-group granularity over the CUDA-VMM
 * substrate) plus the PagePool host-page accounting behind them. The
 * headline property is the paper-substrate advantage: a swapped slot's
 * VIRTUAL layout never changes, so swap-in is remap + copy only.
 */

#include <gtest/gtest.h>

#include "common/prefix_hash.hh"
#include "core/vattention.hh"
#include "test_util.hh"

namespace vattn::core
{
namespace
{

/** 2 layers, 2 heads, dim 8, fp16: 32B/token/buffer; 64KB group =
 *  2048 tokens; 4 buffers -> one "group row" = 4 handles = 256KB. */
Config
smallConfig()
{
    Config config;
    config.num_layers = 2;
    config.num_kv_heads = 2;
    config.head_dim = 8;
    config.bytes_per_elem = 2;
    config.max_batch_size = 4;
    config.max_context_len = 8192;
    config.page_group = PageGroup::k64KB;
    config.use_driver_extension = true;
    config.eager_allocation = false;
    config.overlap_allocation = false;
    config.deferred_reclamation = true;
    config.phys_budget_bytes = 8 * MiB;
    config.host_swap_bytes = 8 * MiB;
    return config;
}

class CoreSwapTest : public ::testing::Test
{
  protected:
    CoreSwapTest() : device_(makeConfig()), driver_(device_) {}

    static gpu::GpuDevice::Config
    makeConfig()
    {
        gpu::GpuDevice::Config config;
        config.mem_bytes = 64 * MiB;
        return config;
    }

    std::vector<i64>
    lens(i64 a, i64 b = 0, i64 c = 0, i64 d = 0)
    {
        return {a, b, c, d};
    }

    gpu::GpuDevice device_;
    cuvmm::Driver driver_;
};

TEST_F(CoreSwapTest, SwapOutFreesDeviceAndStashesOnHost)
{
    VAttention vattn(driver_, smallConfig());
    auto req = vattn.allocReqId();
    ASSERT_TRUE(req.isOk());
    const int r1 = req.value();
    ASSERT_TRUE(vattn.step(lens(3000)).status.isOk());
    ASSERT_EQ(vattn.groupsMapped(r1), 2);
    const i64 pool_before = vattn.poolAvailableHandles();
    const u64 host_before = driver_.hostBytesInUse();

    ASSERT_TRUE(vattn.canSwapOut(r1));
    const auto out = vattn.swapOutReq(r1);
    ASSERT_TRUE(out.status.isOk()) << out.status.message();
    // 2 groups x 4 buffers moved, device fully released.
    EXPECT_EQ(out.handles, 8);
    EXPECT_EQ(out.bytes, 8u * 64 * KiB);
    EXPECT_GT(out.critical_ns, 0u);
    EXPECT_EQ(vattn.groupsMapped(r1), 0);
    EXPECT_EQ(vattn.swappedGroups(r1), 2);
    EXPECT_EQ(vattn.poolAvailableHandles(), pool_before + 8);
    EXPECT_EQ(vattn.hostGroupsInUse(), 8);
    EXPECT_GT(driver_.hostBytesInUse(), host_before);
    EXPECT_EQ(driver_.counters().copy_dtoh, 8u);
    // The slot stays leased: it cannot be handed to a new request.
    EXPECT_EQ(vattn.slots().state(r1), SlotState::kActive);
    EXPECT_TRUE(vattn.checkInvariants());
}

TEST_F(CoreSwapTest, SwapInRemapsAndRestores)
{
    VAttention vattn(driver_, smallConfig());
    const int r1 = vattn.allocReqId().value();
    ASSERT_TRUE(vattn.step(lens(3000)).status.isOk());
    ASSERT_TRUE(vattn.swapOutReq(r1).status.isOk());

    ASSERT_TRUE(vattn.canSwapIn(r1));
    const auto in = vattn.swapInReq(r1);
    ASSERT_TRUE(in.status.isOk()) << in.status.message();
    EXPECT_EQ(in.handles, 8);
    EXPECT_EQ(in.bytes, 8u * 64 * KiB);
    EXPECT_EQ(vattn.groupsMapped(r1), 2);
    EXPECT_EQ(vattn.swappedGroups(r1), 0);
    // Host pages returned to the pool for the next victim.
    EXPECT_EQ(vattn.hostGroupsInUse(), 0);
    EXPECT_EQ(driver_.counters().copy_htod, 8u);
    // The virtual layout survived: stepping to the same length needs
    // no further mapping work.
    const auto step = vattn.step(lens(3000));
    ASSERT_TRUE(step.status.isOk());
    EXPECT_EQ(step.handles_mapped, 0);
    EXPECT_TRUE(vattn.checkInvariants());
}

TEST_F(CoreSwapTest, SwapRoundTripKeepsVirtualAddresses)
{
    VAttention vattn(driver_, smallConfig());
    const int r1 = vattn.allocReqId().value();
    ASSERT_TRUE(vattn.step(lens(3000)).status.isOk());
    const Addr k_before = vattn.kCache(0, r1).baseVa();
    const Addr v_before = vattn.vCache(1, r1).baseVa();
    ASSERT_TRUE(vattn.swapOutReq(r1).status.isOk());
    ASSERT_TRUE(vattn.swapInReq(r1).status.isOk());
    // No allocator churn: the request's tensors are where they were.
    EXPECT_EQ(vattn.kCache(0, r1).baseVa(), k_before);
    EXPECT_EQ(vattn.vCache(1, r1).baseVa(), v_before);
}

TEST_F(CoreSwapTest, RefusesWhileAnotherSlotMapsThePages)
{
    auto config = smallConfig();
    config.prefix_caching = true;
    VAttention vattn(driver_, config);

    // r1 holds a registered 2048-token (1 aligned group) prefix.
    const int r1 = vattn.allocReqId().value();
    ASSERT_TRUE(vattn.step(lens(2500)).status.isOk());
    PrefixQuery query;
    query.total_tokens = 2048;
    query.group_hashes = {0x1234u};
    vattn.registerPrefix(r1, query, 2048);

    // r2 aliases r1's aligned group via a live-to-live prefix hit.
    i64 cached = 0;
    PrefixQuery same;
    same.total_tokens = 4000;
    same.group_hashes = {0x1234u, 0x9999u};
    auto r2 = vattn.allocReqIdWithPrefix(same, 3999, &cached);
    ASSERT_TRUE(r2.isOk());
    ASSERT_EQ(cached, 2048);
    ASSERT_GT(vattn.aliasedBytes(), 0u);

    // Neither end of the alias may swap out while the other maps the
    // physical group.
    EXPECT_FALSE(vattn.canSwapOut(r1));
    EXPECT_FALSE(vattn.canSwapOut(r2.value()));
    EXPECT_EQ(vattn.swapOutReq(r1).status.code(),
              ErrorCode::kFailedPrecondition);
    EXPECT_EQ(vattn.swapOutReq(r2.value()).status.code(),
              ErrorCode::kFailedPrecondition);
    EXPECT_EQ(driver_.counters().copy_dtoh, 0u);

    // Freeing r2 parks its slot as a cached prefix entry that STILL
    // aliases r1's group, so r1 remains unswappable — the refusal
    // tracks the physical sharing, not request liveness.
    ASSERT_TRUE(vattn.freeReqId(r2.value()).isOk());
    EXPECT_FALSE(vattn.canSwapOut(r1));
    EXPECT_TRUE(vattn.checkInvariants());
}

TEST_F(CoreSwapTest, HostBudgetBoundsSwapOut)
{
    auto config = smallConfig();
    config.host_swap_bytes = 4 * 64 * KiB; // one group row only
    VAttention vattn(driver_, config);
    const int r1 = vattn.allocReqId().value();
    ASSERT_TRUE(vattn.step(lens(3000)).status.isOk()); // 2 group rows
    EXPECT_FALSE(vattn.canSwapOut(r1));
    EXPECT_EQ(vattn.swapOutReq(r1).status.code(),
              ErrorCode::kOutOfMemory);
    // Nothing moved, nothing leaked.
    EXPECT_EQ(vattn.hostGroupsInUse(), 0);
    EXPECT_EQ(vattn.groupsMapped(r1), 2);
    EXPECT_TRUE(vattn.checkInvariants());
}

TEST_F(CoreSwapTest, DisabledTierRefusesSwaps)
{
    auto config = smallConfig();
    config.host_swap_bytes = 0;
    VAttention vattn(driver_, config);
    const int r1 = vattn.allocReqId().value();
    ASSERT_TRUE(vattn.step(lens(1000)).status.isOk());
    EXPECT_FALSE(vattn.canSwapOut(r1));
    EXPECT_EQ(vattn.swapOutReq(r1).status.code(),
              ErrorCode::kOutOfMemory);
}

TEST_F(CoreSwapTest, SwapInStealsCachedGroupsLikeStep)
{
    auto config = smallConfig();
    config.phys_budget_bytes = 1 * MiB; // 16 handles = 4 group rows
    VAttention vattn(driver_, config);
    const int r1 = vattn.allocReqId().value();
    ASSERT_TRUE(vattn.step(lens(3000)).status.isOk()); // 2 rows
    ASSERT_TRUE(vattn.swapOutReq(r1).status.isOk());

    // Fill the whole pool with a max-context request, then free it:
    // its groups stay cached (deferred reclamation), free pool empty.
    const int r2 = vattn.allocReqId().value();
    ASSERT_TRUE(vattn.step(lens(0, 8192)).status.isOk()); // 4 rows
    ASSERT_TRUE(vattn.freeReqId(r2).isOk());
    ASSERT_EQ(vattn.poolFreeHandles(), 0);
    ASSERT_EQ(vattn.cachedHandles(), 16);

    // Swap-in must reclaim cached groups exactly as step() would.
    ASSERT_TRUE(vattn.canSwapIn(r1));
    const auto in = vattn.swapInReq(r1);
    ASSERT_TRUE(in.status.isOk()) << in.status.message();
    EXPECT_EQ(vattn.groupsMapped(r1), 2);
    EXPECT_LT(vattn.cachedHandles(), 16);
    EXPECT_TRUE(vattn.checkInvariants());
}

TEST_F(CoreSwapTest, FreeReqIdAbandonsStash)
{
    VAttention vattn(driver_, smallConfig());
    const int r1 = vattn.allocReqId().value();
    ASSERT_TRUE(vattn.step(lens(3000)).status.isOk());
    ASSERT_TRUE(vattn.swapOutReq(r1).status.isOk());
    ASSERT_EQ(vattn.hostGroupsInUse(), 8);

    ASSERT_TRUE(vattn.freeReqId(r1).isOk());
    // The stash is discarded and its host pages return to the pool;
    // the slot is reusable (no mappings survived the swap-out).
    EXPECT_EQ(vattn.hostGroupsInUse(), 0);
    EXPECT_EQ(vattn.slots().state(r1), SlotState::kFree);
    EXPECT_TRUE(vattn.checkInvariants());
}

TEST_F(CoreSwapTest, DoubleSwapAndBadStatesAreErrors)
{
    VAttention vattn(driver_, smallConfig());
    const int r1 = vattn.allocReqId().value();
    ASSERT_TRUE(vattn.step(lens(1000)).status.isOk());
    // Not swapped yet: swap-in refuses.
    EXPECT_EQ(vattn.swapInReq(r1).status.code(),
              ErrorCode::kFailedPrecondition);
    ASSERT_TRUE(vattn.swapOutReq(r1).status.isOk());
    // Already swapped: a second swap-out refuses.
    EXPECT_EQ(vattn.swapOutReq(r1).status.code(),
              ErrorCode::kFailedPrecondition);
    // Inactive / out-of-range ids.
    EXPECT_EQ(vattn.swapOutReq(3).status.code(),
              ErrorCode::kFailedPrecondition);
    EXPECT_EQ(vattn.swapOutReq(-1).status.code(),
              ErrorCode::kInvalidArgument);
    EXPECT_EQ(vattn.swapInReq(99).status.code(),
              ErrorCode::kInvalidArgument);
    const auto &stats = vattn.stats();
    EXPECT_EQ(stats.swap_out_reqs, 1);
    EXPECT_EQ(stats.swap_in_reqs, 0);
    EXPECT_EQ(stats.swap_out_bytes, 4u * 64 * KiB);
}

} // namespace
} // namespace vattn::core
