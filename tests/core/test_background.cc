#include <gtest/gtest.h>

#include "core/background.hh"

namespace vattn::core
{
namespace
{

TEST(BackgroundWorker, ConsumesWithinWindow)
{
    BackgroundWorker worker;
    worker.beginWindow(1000);
    EXPECT_TRUE(worker.tryConsume(400));
    EXPECT_TRUE(worker.tryConsume(600));
    EXPECT_EQ(worker.windowRemaining(), 0u);
    EXPECT_EQ(worker.itemsCompleted(), 2u);
    EXPECT_EQ(worker.totalHiddenNs(), 1000u);
    EXPECT_EQ(worker.numWindows(), 1u);
}

TEST(BackgroundWorker, OverflowSpillsAndClosesWindow)
{
    BackgroundWorker worker;
    worker.beginWindow(500);
    EXPECT_FALSE(worker.tryConsume(501));
    // An item that does not fit gives up the rest of the window (the
    // queue is in-order; later items may not bypass it).
    EXPECT_EQ(worker.windowRemaining(), 0u);
    EXPECT_EQ(worker.itemsCompleted(), 0u);
    EXPECT_EQ(worker.totalHiddenNs(), 0u);
}

TEST(BackgroundWorker, ZeroCostItemDoesNotTouchWindowAccounting)
{
    // A zero-cost item (e.g. an already-mapped page-group) completes
    // without consuming budget or hidden time — including on a fully
    // exhausted or never-opened window.
    BackgroundWorker worker;
    EXPECT_TRUE(worker.tryConsume(0)); // no window opened yet
    EXPECT_EQ(worker.windowRemaining(), 0u);
    EXPECT_EQ(worker.itemsCompleted(), 1u);
    EXPECT_EQ(worker.totalHiddenNs(), 0u);

    worker.beginWindow(250);
    EXPECT_TRUE(worker.tryConsume(0));
    EXPECT_EQ(worker.windowRemaining(), 250u); // budget untouched
    EXPECT_TRUE(worker.tryConsume(250));
    EXPECT_EQ(worker.windowRemaining(), 0u);
    EXPECT_TRUE(worker.tryConsume(0)); // still fits: costs nothing
    EXPECT_EQ(worker.itemsCompleted(), 4u);
    EXPECT_EQ(worker.totalHiddenNs(), 250u);
}

TEST(BackgroundWorker, NewWindowResetsBudgetNotLifetimeStats)
{
    BackgroundWorker worker;
    worker.beginWindow(100);
    EXPECT_TRUE(worker.tryConsume(100));
    worker.beginWindow(100);
    EXPECT_EQ(worker.windowRemaining(), 100u);
    EXPECT_TRUE(worker.tryConsume(30));
    EXPECT_EQ(worker.numWindows(), 2u);
    EXPECT_EQ(worker.itemsCompleted(), 2u);
    EXPECT_EQ(worker.totalHiddenNs(), 130u);
}

} // namespace
} // namespace vattn::core
