#include <array>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/background.hh"

namespace vattn::core
{
namespace
{

TEST(BackgroundWorker, ConsumesWithinWindow)
{
    BackgroundWorker worker;
    worker.beginWindow(1000);
    EXPECT_TRUE(worker.tryConsume(400));
    EXPECT_TRUE(worker.tryConsume(600));
    EXPECT_EQ(worker.windowRemaining(), 0u);
    EXPECT_EQ(worker.itemsCompleted(), 2u);
    EXPECT_EQ(worker.totalHiddenNs(), 1000u);
    EXPECT_EQ(worker.numWindows(), 1u);
}

TEST(BackgroundWorker, OverflowSpillsAndClosesWindow)
{
    BackgroundWorker worker;
    worker.beginWindow(500);
    EXPECT_FALSE(worker.tryConsume(501));
    // An item that does not fit gives up the rest of the window (the
    // queue is in-order; later items may not bypass it).
    EXPECT_EQ(worker.windowRemaining(), 0u);
    EXPECT_EQ(worker.itemsCompleted(), 0u);
    EXPECT_EQ(worker.totalHiddenNs(), 0u);
}

TEST(BackgroundWorker, ZeroCostItemDoesNotTouchWindowAccounting)
{
    // A zero-cost item (e.g. an already-mapped page-group) completes
    // without consuming budget or hidden time — including on a fully
    // exhausted or never-opened window.
    BackgroundWorker worker;
    EXPECT_TRUE(worker.tryConsume(0)); // no window opened yet
    EXPECT_EQ(worker.windowRemaining(), 0u);
    EXPECT_EQ(worker.itemsCompleted(), 1u);
    EXPECT_EQ(worker.totalHiddenNs(), 0u);

    worker.beginWindow(250);
    EXPECT_TRUE(worker.tryConsume(0));
    EXPECT_EQ(worker.windowRemaining(), 250u); // budget untouched
    EXPECT_TRUE(worker.tryConsume(250));
    EXPECT_EQ(worker.windowRemaining(), 0u);
    EXPECT_TRUE(worker.tryConsume(0)); // still fits: costs nothing
    EXPECT_EQ(worker.itemsCompleted(), 4u);
    EXPECT_EQ(worker.totalHiddenNs(), 250u);
}

TEST(BackgroundWorker, NewWindowResetsBudgetNotLifetimeStats)
{
    BackgroundWorker worker;
    worker.beginWindow(100);
    EXPECT_TRUE(worker.tryConsume(100));
    worker.beginWindow(100);
    EXPECT_EQ(worker.windowRemaining(), 100u);
    EXPECT_TRUE(worker.tryConsume(30));
    EXPECT_EQ(worker.numWindows(), 2u);
    EXPECT_EQ(worker.itemsCompleted(), 2u);
    EXPECT_EQ(worker.totalHiddenNs(), 130u);
}

TEST(BackgroundWorker, ConcurrentConsumersConserveBudget)
{
    // The tracker models a thread that races the step API for window
    // budget; with the mutex-guarded counters, N threads draining one
    // window must account every consumed nanosecond exactly once.
    // (TSan-relevant: this is the cross-thread access pattern the
    // thread-safety annotations certify.)
    BackgroundWorker worker;
    constexpr TimeNs kBudget = 10000;
    worker.beginWindow(kBudget);
    constexpr int kThreads = 4;
    std::vector<std::thread> threads;
    std::array<u64, kThreads> consumed{};
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&worker, &consumed, t] {
            while (worker.tryConsume(7)) {
                consumed[static_cast<std::size_t>(t)] += 7;
            }
        });
    }
    for (std::thread &thread : threads) {
        thread.join();
    }
    u64 total = 0;
    for (u64 c : consumed) {
        total += c;
    }
    EXPECT_EQ(total, worker.totalHiddenNs());
    EXPECT_LE(total, kBudget);
    // Exhausted: every full 7ns item was either consumed or refused.
    EXPECT_EQ(worker.windowRemaining(), 0u);
    EXPECT_EQ(worker.itemsCompleted(), total / 7);
}

} // namespace
} // namespace vattn::core
