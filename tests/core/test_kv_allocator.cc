#include <gtest/gtest.h>

#include "core/kv_allocator.hh"
#include "test_util.hh"

namespace vattn::core
{
namespace
{

/** Small model so tests run fast: 2 layers, 2 heads, dim 8, fp16.
 *  Token bytes per buffer = 2*8*2 = 32B; 64KB group = 2048 tokens. */
Config
smallConfig(PageGroup group = PageGroup::k64KB, bool slicing = false)
{
    Config config;
    config.num_layers = 2;
    config.num_kv_heads = 2;
    config.head_dim = 8;
    config.bytes_per_elem = 2;
    config.max_batch_size = 4;
    config.max_context_len = 8192; // 4 groups per buffer at 64KB
    config.page_group = group;
    config.use_driver_extension = group != PageGroup::k2MB;
    config.tensor_slicing = slicing;
    config.eager_allocation = false;
    config.overlap_allocation = false;
    return config;
}

class KvAllocatorTest : public ::testing::Test
{
  protected:
    KvAllocatorTest() : device_(makeConfig()), driver_(device_) {}

    static gpu::GpuDevice::Config
    makeConfig()
    {
        gpu::GpuDevice::Config config;
        config.mem_bytes = 64 * MiB;
        return config;
    }

    gpu::GpuDevice device_;
    cuvmm::Driver driver_;
};

TEST_F(KvAllocatorTest, ReservesVirtualBuffersUpFront)
{
    auto config = smallConfig();
    PagePool pool(driver_, config.page_group, 8 * MiB);
    KvAllocator allocator(driver_, config, pool);

    // 2N = 4 buffers; each B * S_aligned.
    const auto &geom = allocator.geometry();
    EXPECT_EQ(geom.numBuffers(), 4);
    EXPECT_EQ(device_.vaSpace().numReservations(), 4u);
    EXPECT_EQ(device_.vaSpace().reservedBytes(),
              4 * geom.bufferBytes());
    // No physical memory mapped into the KV tensors yet.
    EXPECT_EQ(allocator.totalHandlesMapped(), 0);
    EXPECT_EQ(allocator.layerTensors().size(), 2u);
}

TEST_F(KvAllocatorTest, GrowMapsLockstepAcrossBuffers)
{
    auto config = smallConfig();
    PagePool pool(driver_, config.page_group, 8 * MiB);
    KvAllocator allocator(driver_, config, pool);

    ASSERT_TRUE(allocator.growTo(0, 2).isOk());
    EXPECT_EQ(allocator.groupsMapped(0), 2);
    // 2 groups x 4 buffers = 8 handles.
    EXPECT_EQ(allocator.totalHandlesMapped(), 8);
    EXPECT_EQ(pool.groupsInUse(), 8);
    EXPECT_EQ(allocator.physBytesMapped(), 8 * 64 * KiB);
    EXPECT_TRUE(allocator.checkInvariants());

    // Growing to a smaller target is a no-op.
    ASSERT_TRUE(allocator.growTo(0, 1).isOk());
    EXPECT_EQ(allocator.groupsMapped(0), 2);
}

TEST_F(KvAllocatorTest, MappedRegionIsReadableWritable)
{
    auto config = smallConfig();
    PagePool pool(driver_, config.page_group, 8 * MiB);
    KvAllocator allocator(driver_, config, pool);
    ASSERT_TRUE(allocator.growTo(1, 1).isOk());

    // Token 100 of slot 1 at layer 0 is inside the first group.
    auto k = allocator.kView(0, 1);
    k.writeElem({100, 1, 3}, 2.5f);
    EXPECT_FLOAT_EQ(k.readElem({100, 1, 3}), 2.5f);
    // The same cell through the full-batch tensor.
    EXPECT_FLOAT_EQ(
        allocator.layerTensors()[0].k.readElem({1, 100, 1, 3}), 2.5f);
}

TEST_F(KvAllocatorTest, UnbackedRegionStillFaults)
{
    test::ScopedThrowErrors guard;
    auto config = smallConfig();
    PagePool pool(driver_, config.page_group, 8 * MiB);
    KvAllocator allocator(driver_, config, pool);
    ASSERT_TRUE(allocator.growTo(0, 1).isOk()); // 2048 tokens backed

    auto k = allocator.kView(0, 0);
    EXPECT_NO_THROW(k.writeElem({2047, 0, 0}, 1.0f));
    EXPECT_THROW(k.writeElem({2048, 0, 0}, 1.0f), SimError);
    // Slot 1 has nothing mapped at all.
    auto other = allocator.kView(0, 1);
    EXPECT_THROW(other.readElem({0, 0, 0}), SimError);
}

TEST_F(KvAllocatorTest, ShrinkTailReturnsGroups)
{
    auto config = smallConfig();
    PagePool pool(driver_, config.page_group, 8 * MiB);
    KvAllocator allocator(driver_, config, pool);
    ASSERT_TRUE(allocator.growTo(0, 3).isOk());
    ASSERT_TRUE(allocator.shrinkTail(0).isOk());
    EXPECT_EQ(allocator.groupsMapped(0), 2);
    EXPECT_EQ(pool.groupsInUse(), 8);
    EXPECT_TRUE(allocator.checkInvariants());
    ASSERT_TRUE(allocator.shrinkTail(0).isOk());
    ASSERT_TRUE(allocator.shrinkTail(0).isOk());
    EXPECT_EQ(allocator.groupsMapped(0), 0);
    EXPECT_FALSE(allocator.shrinkTail(0).isOk()); // nothing left
    EXPECT_EQ(pool.groupsInUse(), 0);
}

TEST_F(KvAllocatorTest, OomRollsBackPartialGroup)
{
    auto config = smallConfig();
    // Budget of 6 groups; a full group row needs 4 (one per buffer).
    PagePool pool(driver_, config.page_group, 6 * 64 * KiB);
    KvAllocator allocator(driver_, config, pool);

    ASSERT_TRUE(allocator.growTo(0, 1).isOk()); // uses 4
    const auto status = allocator.growTo(0, 2); // needs 4, only 2 left
    EXPECT_EQ(status.code(), ErrorCode::kOutOfMemory);
    // The failed group must be fully rolled back: group counts stay
    // consistent across buffers and the 2 remaining handles returned.
    EXPECT_EQ(allocator.groupsMapped(0), 1);
    EXPECT_EQ(pool.groupsInUse(), 4);
    EXPECT_EQ(pool.availableGroups(), 2);
    EXPECT_TRUE(allocator.checkInvariants());
}

TEST_F(KvAllocatorTest, SlotsAreIsolated)
{
    auto config = smallConfig();
    PagePool pool(driver_, config.page_group, 16 * MiB);
    KvAllocator allocator(driver_, config, pool);
    ASSERT_TRUE(allocator.growTo(0, 1).isOk());
    ASSERT_TRUE(allocator.growTo(2, 2).isOk());

    auto k0 = allocator.kView(0, 0);
    auto k2 = allocator.kView(0, 2);
    k0.writeElem({0, 0, 0}, 1.0f);
    k2.writeElem({0, 0, 0}, 2.0f);
    EXPECT_FLOAT_EQ(k0.readElem({0, 0, 0}), 1.0f);
    EXPECT_FLOAT_EQ(k2.readElem({0, 0, 0}), 2.0f);
    allocator.releaseAll(0);
    // Slot 2 untouched by slot 0's release.
    EXPECT_FLOAT_EQ(k2.readElem({0, 0, 0}), 2.0f);
    EXPECT_EQ(allocator.groupsMapped(2), 2);
}

TEST_F(KvAllocatorTest, CuPathUsesMapPlusSetAccess)
{
    auto config = smallConfig(PageGroup::k2MB);
    config.max_context_len = 128 * 1024; // 2 groups of 64K tokens
    PagePool pool(driver_, config.page_group, 32 * MiB);
    KvAllocator allocator(driver_, config, pool);

    const u64 maps_before = driver_.counters().map;
    const u64 access_before = driver_.counters().set_access;
    ASSERT_TRUE(allocator.growTo(0, 1).isOk());
    // Stock CUDA path: one cuMemMap + one cuMemSetAccess per buffer.
    EXPECT_EQ(driver_.counters().map - maps_before, 4u);
    EXPECT_EQ(driver_.counters().set_access - access_before, 4u);

    // And unmap path: cuMemUnmap, handle kept pooled (no release).
    const u64 unmap_before = driver_.counters().unmap;
    const i64 available_before = pool.availableGroups();
    ASSERT_TRUE(allocator.shrinkTail(0).isOk());
    EXPECT_EQ(driver_.counters().unmap - unmap_before, 4u);
    EXPECT_EQ(pool.availableGroups(), available_before + 4);
}

TEST_F(KvAllocatorTest, ExtensionPathUsesFusedCalls)
{
    auto config = smallConfig(PageGroup::k64KB);
    PagePool pool(driver_, config.page_group, 8 * MiB);
    KvAllocator allocator(driver_, config, pool);

    const u64 access_before = driver_.counters().set_access;
    ASSERT_TRUE(allocator.growTo(0, 1).isOk());
    // vMemMap fuses the access grant: no cuMemSetAccess calls.
    EXPECT_EQ(driver_.counters().set_access, access_before);
    EXPECT_TRUE(device_.pageTable().isAccessible(
        allocator.kView(0, 0).baseVa(), 64 * KiB));
}

TEST_F(KvAllocatorTest, TensorSlicingLayout)
{
    auto config = smallConfig(PageGroup::k64KB, /*slicing=*/true);
    PagePool pool(driver_, config.page_group, 8 * MiB);
    KvAllocator allocator(driver_, config, pool);

    const auto &geom = allocator.geometry();
    EXPECT_EQ(geom.numBuffers(), 2); // one K + one V tensor
    // Token bytes per buffer now include all layers: 2*2*8*2 = 64B.
    EXPECT_EQ(geom.tokenBytesPerBuffer(), 64u);
    EXPECT_EQ(geom.tokensPerGroup(), 1024);

    ASSERT_TRUE(allocator.growTo(0, 1).isOk());
    // One group backs the first 1024 tokens of BOTH layers.
    auto k_layer0 = allocator.kView(0, 0);
    auto k_layer1 = allocator.kView(1, 0);
    k_layer0.writeElem({5, 1, 2}, 1.5f);
    k_layer1.writeElem({5, 1, 2}, -1.5f);
    EXPECT_FLOAT_EQ(k_layer0.readElem({5, 1, 2}), 1.5f);
    EXPECT_FLOAT_EQ(k_layer1.readElem({5, 1, 2}), -1.5f);
    EXPECT_EQ(allocator.totalHandlesMapped(), 2); // K + V only
    EXPECT_TRUE(allocator.checkInvariants());
}

TEST_F(KvAllocatorTest, SlicedLayerViewsInterleaveInMemory)
{
    auto config = smallConfig(PageGroup::k64KB, /*slicing=*/true);
    PagePool pool(driver_, config.page_group, 8 * MiB);
    KvAllocator allocator(driver_, config, pool);
    ASSERT_TRUE(allocator.growTo(0, 1).isOk());

    // [B, L, N, H, D]: consecutive layers of one token are adjacent;
    // the distance between token t and t+1 of one layer is N*H*D.
    auto k_layer0 = allocator.kView(0, 0);
    const Addr t0 = k_layer0.elemVa({0, 0, 0});
    const Addr t1 = k_layer0.elemVa({1, 0, 0});
    EXPECT_EQ(t1 - t0, 2u * 2 * 8 * 2); // N*H*D*P bytes
    auto k_layer1 = allocator.kView(1, 0);
    EXPECT_EQ(k_layer1.elemVa({0, 0, 0}) - t0, 2u * 8 * 2); // H*D*P
}

} // namespace
} // namespace vattn::core
