/**
 * @file
 * Sliding-window KV eviction on the vAttention runtime: dead leading
 * page-groups of windowed layers are unmapped as the context outgrows
 * the window, with the edge cases pinned — prompts shorter than the
 * window unmap nothing, a group the window straddles stays mapped,
 * swap round-trips exactly the live window, prefix-aliased leading
 * groups survive until the last sharer releases — plus a corruption
 * injection proving the auditor names a rogue window-tail mapping.
 */

#include <gtest/gtest.h>

#include "common/prefix_hash.hh"
#include "core/vattention.hh"
#include "test_util.hh"

namespace vattn::core
{
namespace
{

/** 2 layers, 2 heads, dim 8, fp16: 32B/token/buffer; 64KB group =
 *  2048 tokens; buffers 0/2 = K/V of the full layer 0, buffers 1/3 =
 *  K/V of the sliding layer 1 (window 3000, deliberately not
 *  group-aligned). */
constexpr i64 kTokensPerGroup = 2048;
constexpr i64 kWindow = 3000;

Config
windowConfig()
{
    Config config;
    config.num_layers = 2;
    config.num_kv_heads = 2;
    config.head_dim = 8;
    config.bytes_per_elem = 2;
    config.max_batch_size = 4;
    config.max_context_len = 16384;
    config.page_group = PageGroup::k64KB;
    config.use_driver_extension = true;
    config.eager_allocation = false;
    config.overlap_allocation = false;
    config.phys_budget_bytes = 16 * MiB;
    config.layers.assign(2, LayerKvSpec{});
    config.layers[1].kind = AttentionKind::kSlidingWindow;
    config.layers[1].window_tokens = kWindow;
    return config;
}

class WindowEvictionTest : public ::testing::Test
{
  protected:
    WindowEvictionTest() : device_(makeConfig()), driver_(device_) {}

    static gpu::GpuDevice::Config
    makeConfig()
    {
        gpu::GpuDevice::Config config;
        config.mem_bytes = 64 * MiB;
        return config;
    }

    std::vector<i64>
    lens(i64 a, i64 b = 0, i64 c = 0, i64 d = 0)
    {
        return {a, b, c, d};
    }

    /** mappedHandles re-derived from the runtime's per-buffer view. */
    static i64
    liveHandles(const VAttention &vattn, int req_id)
    {
        return vattn.mappedHandles(req_id);
    }

    gpu::GpuDevice device_;
    cuvmm::Driver driver_;
};

TEST_F(WindowEvictionTest, PromptShorterThanWindowUnmapsNothing)
{
    VAttention vattn(driver_, windowConfig());
    const int req = vattn.allocReqId().value();
    ASSERT_TRUE(vattn.step(lens(2500)).status.isOk());
    // 2 groups on every one of the 4 buffers; no dead lead anywhere.
    EXPECT_EQ(liveHandles(vattn, req), 8);
    for (int buffer = 0; buffer < 4; ++buffer) {
        EXPECT_NE(vattn.handleAt(req, buffer, 0), cuvmm::kInvalidHandle);
        EXPECT_NE(vattn.handleAt(req, buffer, 1), cuvmm::kInvalidHandle);
    }
    EXPECT_TRUE(vattn.checkInvariants());
}

TEST_F(WindowEvictionTest, StraddledLeadingGroupStaysMapped)
{
    VAttention vattn(driver_, windowConfig());
    const int req = vattn.allocReqId().value();
    ASSERT_TRUE(vattn.step(lens(5000)).status.isOk());
    // 5000 - 3000 = 2000 dead tokens: less than one group, so even
    // the windowed buffers keep group 0.
    EXPECT_EQ(liveHandles(vattn, req), 12);

    ASSERT_TRUE(vattn.step(lens(8192)).status.isOk());
    // floor((8192 - 3000) / 2048) = 2 dead groups on the windowed
    // buffers (1 and 3); group 2 is straddled by the window and must
    // stay. Full-attention buffers keep all 4 groups.
    EXPECT_EQ(vattn.handleAt(req, 1, 0), cuvmm::kInvalidHandle);
    EXPECT_EQ(vattn.handleAt(req, 1, 1), cuvmm::kInvalidHandle);
    EXPECT_NE(vattn.handleAt(req, 1, 2), cuvmm::kInvalidHandle);
    EXPECT_EQ(vattn.handleAt(req, 3, 0), cuvmm::kInvalidHandle);
    EXPECT_NE(vattn.handleAt(req, 0, 0), cuvmm::kInvalidHandle);
    EXPECT_EQ(liveHandles(vattn, req), 2 * 4 + 2 * 2);
    EXPECT_TRUE(vattn.checkInvariants());
}

TEST_F(WindowEvictionTest, FreshLongPromptNeverMapsTheDeadRegion)
{
    VAttention vattn(driver_, windowConfig());
    const i64 pool_before = vattn.poolAvailableHandles();
    const int req = vattn.allocReqId().value();
    // Jumping straight to 8192 tokens must not map-then-unmap the
    // dead leading groups: only the 12 live mappings are created.
    ASSERT_TRUE(vattn.step(lens(8192)).status.isOk());
    EXPECT_EQ(liveHandles(vattn, req), 12);
    EXPECT_EQ(vattn.stats().sync_handles, 12);
    EXPECT_EQ(pool_before - vattn.poolAvailableHandles(), 12);
    EXPECT_TRUE(vattn.checkInvariants());
}

TEST_F(WindowEvictionTest, SwapRoundTripsTheLiveWindowExactly)
{
    auto config = windowConfig();
    config.host_swap_bytes = 8 * MiB;
    VAttention vattn(driver_, config);
    const int req = vattn.allocReqId().value();
    ASSERT_TRUE(vattn.step(lens(8192)).status.isOk());
    ASSERT_EQ(liveHandles(vattn, req), 12);

    ASSERT_TRUE(vattn.canSwapOut(req));
    const auto out = vattn.swapOutReq(req);
    ASSERT_TRUE(out.status.isOk()) << out.status.message();
    // Only the live [lead, end) ranges cross PCIe: 12 page-groups,
    // not the 16-group frontier.
    EXPECT_EQ(out.handles, 12);
    EXPECT_EQ(out.bytes, static_cast<u64>(12) * 64 * KiB);
    EXPECT_EQ(vattn.hostGroupsInUse(), 12);
    EXPECT_EQ(liveHandles(vattn, req), 0);
    EXPECT_TRUE(vattn.checkInvariants());

    const auto in = vattn.swapInReq(req);
    ASSERT_TRUE(in.status.isOk()) << in.status.message();
    EXPECT_EQ(in.handles, 12);
    EXPECT_EQ(vattn.hostGroupsInUse(), 0);
    // The window layout is restored exactly: dead lead still dead,
    // straddled group live.
    EXPECT_EQ(vattn.handleAt(req, 1, 1), cuvmm::kInvalidHandle);
    EXPECT_NE(vattn.handleAt(req, 1, 2), cuvmm::kInvalidHandle);
    EXPECT_EQ(liveHandles(vattn, req), 12);
    // The runtime can keep stepping where it left off.
    ASSERT_TRUE(vattn.step(lens(8200)).status.isOk());
    EXPECT_TRUE(vattn.checkInvariants());
}

TEST_F(WindowEvictionTest, AliasedLeadingGroupsSurviveUntilLastSharer)
{
    auto config = windowConfig();
    config.prefix_caching = true;
    config.deferred_reclamation = false; // frees unmap immediately
    VAttention vattn(driver_, config);

    // Request A prefills 4096 tokens — still within lead 0 (the first
    // dead group needs 3000 + 2048 tokens) — and registers the prefix.
    std::vector<i32> ids(4096);
    for (std::size_t i = 0; i < ids.size(); ++i) {
        ids[i] = static_cast<i32>(i % 32000);
    }
    const PrefixKey key{ids.data(), static_cast<i64>(ids.size())};
    PrefixQuery query;
    query.total_tokens = key.size;
    query.group_hashes = key.chunkHashes(kTokensPerGroup);
    query.tail_hash = [key](u64 prev, i64 groups, i64 n) {
        return key.rangeHash(prev, groups * kTokensPerGroup, n);
    };

    const int req_a = vattn.allocReqId().value();
    ASSERT_TRUE(vattn.step(lens(4096)).status.isOk());
    vattn.registerPrefix(req_a, query, 4096);

    // Request B adopts the prefix: A's groups 0..1 are aliased into
    // B's virtual ranges on every buffer.
    i64 cached = 0;
    auto req_b_result =
        vattn.allocReqIdWithPrefix(query, 4096, &cached);
    ASSERT_TRUE(req_b_result.isOk());
    const int req_b = req_b_result.value();
    ASSERT_EQ(cached, 4096);
    ASSERT_EQ(vattn.handleAt(req_a, 1, 0), vattn.handleAt(req_b, 1, 0));

    const i64 pool_after_alias = vattn.poolAvailableHandles();

    // A's window now advances past its first two groups; A unmaps
    // them, but B still maps the same handles — they must survive.
    ASSERT_TRUE(vattn.step(lens(8192, 4096)).status.isOk());
    EXPECT_EQ(vattn.handleAt(req_a, 1, 0), cuvmm::kInvalidHandle);
    EXPECT_NE(vattn.handleAt(req_b, 1, 0), cuvmm::kInvalidHandle);
    EXPECT_TRUE(vattn.checkInvariants());
    // A's growth maps 8 fresh groups (frontier groups 2-3 on all four
    // buffers); dropping A's aliased windowed-lead mappings returns
    // NOTHING — B still holds references to those handles.
    EXPECT_EQ(vattn.poolAvailableHandles(), pool_after_alias - 8);

    // Only when the LAST sharer releases do the lead groups come
    // back: B's four windowed-buffer aliases (buffers 1/3, groups
    // 0-1) hit refcount zero; the full-buffer aliases stay live
    // under A.
    ASSERT_TRUE(vattn.freeReqId(req_b).isOk());
    EXPECT_EQ(vattn.poolAvailableHandles(), pool_after_alias - 4);
    EXPECT_TRUE(vattn.checkInvariants());
}

TEST_F(WindowEvictionTest, RecycledWarmSlotStillSkipsTheDeadRegion)
{
    // Deferred reclamation hands a freed slot's mappings to the next
    // request (a "warm" slot). If every leftover group sits below the
    // new prompt's window, the lead must jump the whole dead region —
    // stopping at the old frontier would make growth map dead groups.
    auto config = windowConfig();
    config.deferred_reclamation = true;
    VAttention vattn(driver_, config);

    const int req1 = vattn.allocReqId().value();
    ASSERT_TRUE(vattn.step(lens(2500)).status.isOk()); // 2 groups warm
    ASSERT_TRUE(vattn.freeReqId(req1).isOk());

    const int req2 = vattn.allocReqId().value();
    EXPECT_EQ(req2, req1); // warm reuse, mappings intact
    // 12000 tokens: dead lead floor((12000-3000)/2048) = 4 on the
    // windowed buffers, frontier 6.
    ASSERT_TRUE(vattn.step(lens(12000)).status.isOk());
    for (const int buffer : {1, 3}) {
        EXPECT_EQ(vattn.handleAt(req2, buffer, 2), cuvmm::kInvalidHandle);
        EXPECT_EQ(vattn.handleAt(req2, buffer, 3), cuvmm::kInvalidHandle);
        EXPECT_NE(vattn.handleAt(req2, buffer, 4), cuvmm::kInvalidHandle);
    }
    // 2 full buffers x 6 groups + 2 windowed x 2 live groups.
    EXPECT_EQ(liveHandles(vattn, req2), 2 * 6 + 2 * 2);
    EXPECT_TRUE(vattn.checkInvariants());
}

TEST_F(WindowEvictionTest, RogueWindowTailMappingIsCaughtAndNamed)
{
    VAttention vattn(driver_, windowConfig());
    const int req = vattn.allocReqId().value();
    ASSERT_TRUE(vattn.step(lens(8192)).status.isOk());
    ASSERT_TRUE(vattn.checkInvariants());

    // Injection: re-map a live handle at the window-dead VA of the
    // sliding layer's K tensor (group 0 of buffer 1) directly through
    // the driver — the stale mapping a buggy window-trim path would
    // leave behind.
    const Addr dead_va = vattn.kCache(1, req).baseVa();
    const cuvmm::MemHandle live = vattn.handleAt(req, 1, 2);
    ASSERT_EQ(driver_.vMemMap(dead_va, live), cuvmm::CuResult::kSuccess);

    audit::AuditReport report;
    vattn.auditInto(report);
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(report.contains("rogue window-tail mapping"))
        << report.toString();

    // Repair: unmap the rogue VA; the stack audits clean again.
    ASSERT_EQ(driver_.vMemUnmap(dead_va), cuvmm::CuResult::kSuccess);
    EXPECT_TRUE(vattn.checkInvariants());
}

} // namespace
} // namespace vattn::core
