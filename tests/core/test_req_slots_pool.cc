#include <gtest/gtest.h>

#include "core/page_pool.hh"
#include "core/req_slots.hh"
#include "test_util.hh"

namespace vattn::core
{
namespace
{

TEST(ReqSlots, LifecycleTransitions)
{
    ReqSlots slots(4);
    EXPECT_EQ(slots.numFree(), 4);
    EXPECT_EQ(slots.firstFree(), 0);

    ASSERT_TRUE(slots.activate(0).isOk());
    EXPECT_EQ(slots.state(0), SlotState::kActive);
    EXPECT_EQ(slots.numActive(), 1);
    EXPECT_EQ(slots.firstFree(), 1);

    ASSERT_TRUE(slots.moveToCached(0).isOk());
    EXPECT_EQ(slots.state(0), SlotState::kCached);
    EXPECT_EQ(slots.numCached(), 1);

    // Cached slots can be re-activated (deferred reclamation reuse).
    ASSERT_TRUE(slots.activate(0).isOk());
    EXPECT_EQ(slots.state(0), SlotState::kActive);

    ASSERT_TRUE(slots.moveToFree(0).isOk());
    EXPECT_EQ(slots.numFree(), 4);
}

TEST(ReqSlots, IllegalTransitionsRejected)
{
    ReqSlots slots(2);
    EXPECT_FALSE(slots.moveToCached(0).isOk()); // free -> cached
    EXPECT_FALSE(slots.moveToFree(0).isOk());   // already free
    ASSERT_TRUE(slots.activate(0).isOk());
    EXPECT_FALSE(slots.activate(0).isOk()); // already active
    ASSERT_TRUE(slots.moveToCached(0).isOk());
    EXPECT_FALSE(slots.moveToCached(0).isOk());
}

TEST(ReqSlots, CachedLruOrder)
{
    ReqSlots slots(4);
    for (int slot : {0, 1, 2}) {
        ASSERT_TRUE(slots.activate(slot).isOk());
    }
    // Cache in order 1, 0, 2: LRU order must reflect insertion.
    ASSERT_TRUE(slots.moveToCached(1).isOk());
    ASSERT_TRUE(slots.moveToCached(0).isOk());
    ASSERT_TRUE(slots.moveToCached(2).isOk());
    EXPECT_EQ(slots.cachedLruOrder(), (std::vector<int>{1, 0, 2}));
    EXPECT_EQ(slots.oldestCached(), 1);

    // Re-activating removes from LRU order.
    ASSERT_TRUE(slots.activate(0).isOk());
    EXPECT_EQ(slots.cachedLruOrder(), (std::vector<int>{1, 2}));
}

TEST(ReqSlots, CacheFreeSlotParksWarmSlot)
{
    ReqSlots slots(3);
    ASSERT_TRUE(slots.cacheFreeSlot(2).isOk());
    EXPECT_EQ(slots.state(2), SlotState::kCached);
    EXPECT_EQ(slots.numFree(), 2);
    EXPECT_FALSE(slots.cacheFreeSlot(2).isOk()); // no longer free
    // The warm slot is handed out like any cached slot.
    ASSERT_TRUE(slots.activate(2).isOk());
}

TEST(ReqSlots, ActiveSlotsSorted)
{
    ReqSlots slots(5);
    ASSERT_TRUE(slots.activate(3).isOk());
    ASSERT_TRUE(slots.activate(1).isOk());
    EXPECT_EQ(slots.activeSlots(), (std::vector<int>{1, 3}));
}

TEST(ReqSlots, OutOfRangePanics)
{
    test::ScopedThrowErrors guard;
    ReqSlots slots(2);
    EXPECT_THROW(slots.state(2), SimError);
    EXPECT_THROW(slots.activate(-1), SimError);
}

class PagePoolTest : public ::testing::Test
{
  protected:
    PagePoolTest() : device_(makeConfig()), driver_(device_) {}

    static gpu::GpuDevice::Config
    makeConfig()
    {
        gpu::GpuDevice::Config config;
        config.mem_bytes = 16 * MiB;
        return config;
    }

    gpu::GpuDevice device_;
    cuvmm::Driver driver_;
};

TEST_F(PagePoolTest, PrecreatesWholeBudget)
{
    PagePool pool(driver_, PageGroup::k64KB, 1 * MiB);
    EXPECT_EQ(pool.totalGroups(), 16);
    EXPECT_EQ(pool.freeGroups(), 16);
    // Physical memory committed at init, off the critical path.
    EXPECT_EQ(driver_.physBytesInUse(), 1 * MiB);
    EXPECT_GT(driver_.counters().create, 0u);
}

TEST_F(PagePoolTest, AcquireReleaseAccounting)
{
    PagePool pool(driver_, PageGroup::k64KB, 256 * KiB);
    auto a = pool.acquire();
    auto b = pool.acquire();
    ASSERT_TRUE(a.isOk());
    ASSERT_TRUE(b.isOk());
    EXPECT_EQ(pool.groupsInUse(), 2);
    EXPECT_EQ(pool.freeGroups(), 2);
    EXPECT_EQ(pool.availableGroups(), 2);
    pool.release(a.value());
    EXPECT_EQ(pool.groupsInUse(), 1);
    EXPECT_EQ(pool.freeGroups(), 3);
}

TEST_F(PagePoolTest, BudgetExhaustion)
{
    PagePool pool(driver_, PageGroup::k64KB, 128 * KiB);
    auto a = pool.acquire();
    auto b = pool.acquire();
    ASSERT_TRUE(a.isOk());
    ASSERT_TRUE(b.isOk());
    EXPECT_EQ(pool.acquire().code(), ErrorCode::kOutOfMemory);
    EXPECT_TRUE(pool.exhausted());
    pool.release(b.value());
    EXPECT_TRUE(pool.acquire().isOk());
}

TEST_F(PagePoolTest, ReleaseDestroyedReopensBudget)
{
    PagePool pool(driver_, PageGroup::k64KB, 128 * KiB);
    auto a = pool.acquire();
    ASSERT_TRUE(a.isOk());
    // Simulate the small-page reclaim path: the handle was destroyed
    // via vMemRelease elsewhere.
    ASSERT_EQ(driver_.vMemRelease(a.value()),
              cuvmm::CuResult::kSuccess);
    pool.releaseDestroyed(a.value());
    EXPECT_EQ(pool.groupsInUse(), 0);
    // The budget slot is creatable again.
    auto b = pool.acquire();
    auto c = pool.acquire();
    EXPECT_TRUE(b.isOk());
    EXPECT_TRUE(c.isOk());
}

TEST_F(PagePoolTest, LazyCreationWithinBudget)
{
    PagePool pool(driver_, PageGroup::k2MB, 4 * MiB,
                  /*precreate=*/false);
    EXPECT_EQ(driver_.physBytesInUse(), 0u);
    auto a = pool.acquire();
    ASSERT_TRUE(a.isOk());
    EXPECT_EQ(driver_.physBytesInUse(), 2 * MiB);
    EXPECT_EQ(pool.availableGroups(), 1);
}

TEST_F(PagePoolTest, DeviceSmallerThanBudgetShrinks)
{
    // Budget claims 32MB but the device only has 16MB: the pool warns
    // and shrinks instead of crashing.
    PagePool pool(driver_, PageGroup::k2MB, 32 * MiB);
    EXPECT_EQ(pool.totalGroups(), 8); // 16MB device / 2MB
}

TEST_F(PagePoolTest, DtorReturnsPhysicalMemory)
{
    {
        PagePool pool(driver_, PageGroup::k256KB, 1 * MiB);
        EXPECT_EQ(driver_.physBytesInUse(), 1 * MiB);
    }
    EXPECT_EQ(driver_.physBytesInUse(), 0u);
    EXPECT_EQ(driver_.numLiveHandles(), 0u);
}

} // namespace
} // namespace vattn::core
