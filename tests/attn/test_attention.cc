#include <tuple>

#include <gtest/gtest.h>

#include "attn/kernels.hh"
#include "attn/reference.hh"
#include "common/rng.hh"
#include "cuvmm/driver.hh"
#include "test_util.hh"

namespace vattn::attn
{
namespace
{

using tensor::HostTensor;
using tensor::Shape;

/** Fill host KV + queries with deterministic random data. */
struct Problem
{
    AttnConfig config;
    i64 kv_len;
    i64 q_len;
    HostTensor q;      // [Lq, Hq, D]
    HostTensor k;      // [L, Hkv, D]
    HostTensor v;      // [L, Hkv, D]

    Problem(int hq, int hkv, int d, i64 kv_len_in, i64 q_len_in,
            u64 seed)
        : config{hq, hkv, d, true, 0.0f}, kv_len(kv_len_in),
          q_len(q_len_in), q(Shape{q_len_in, hq, d}),
          k(Shape{kv_len_in, hkv, d}), v(Shape{kv_len_in, hkv, d})
    {
        Rng rng(seed);
        q.fillRandom(rng);
        k.fillRandom(rng);
        v.fillRandom(rng);
    }
};

TEST(AttnConfig, GqaMapping)
{
    AttnConfig config{32, 4, 128, true, 0.0f};
    EXPECT_EQ(config.kvHeadFor(0), 0);
    EXPECT_EQ(config.kvHeadFor(7), 0);
    EXPECT_EQ(config.kvHeadFor(8), 1);
    EXPECT_EQ(config.kvHeadFor(31), 3);
    EXPECT_NEAR(config.effectiveScale(), 1.0 / std::sqrt(128.0), 1e-7);
}

TEST(AttnConfig, ValidationRejectsBadGqa)
{
    test::ScopedThrowErrors guard;
    AttnConfig config{30, 4, 64, true, 0.0f};
    EXPECT_THROW(config.validate(), SimError);
}

TEST(Reference, SingleTokenIsIdentityOverV)
{
    // With one KV token, attention output must equal that token's V.
    Problem p(2, 2, 8, 1, 1, 42);
    HostTensor out(p.q.shape());
    HostKvView kv(&p.k, &p.v);
    referencePrefill(p.config, p.q, kv, 1, out);
    for (int h = 0; h < 2; ++h) {
        for (int c = 0; c < 8; ++c) {
            EXPECT_FLOAT_EQ(out.at({0, h, c}), p.v.at({0, h, c}));
        }
    }
}

TEST(Reference, UniformScoresAverageV)
{
    // Identical keys => uniform weights => output = mean of V rows.
    const int d = 4;
    const i64 len = 6;
    AttnConfig config{1, 1, d, false, 0.0f};
    HostTensor q(Shape{1, 1, d});
    HostTensor k(Shape{len, 1, d});
    HostTensor v(Shape{len, 1, d});
    q.fill(0.3f);
    k.fill(1.0f);
    for (i64 t = 0; t < len; ++t) {
        for (int c = 0; c < d; ++c) {
            v.at({t, 0, c}) = static_cast<float>(t);
        }
    }
    HostTensor out(q.shape());
    HostKvView kv(&k, &v);
    referencePrefill(config, q, kv, len, out);
    for (int c = 0; c < d; ++c) {
        EXPECT_NEAR(out.at({0, 0, c}), 2.5f, 1e-5f);
    }
}

TEST(Reference, CausalMaskLimitsVisibility)
{
    // Query at position 0 of a 4-token prefill sees only token 0.
    Problem p(1, 1, 8, 4, 4, 7);
    HostTensor out(p.q.shape());
    HostKvView kv(&p.k, &p.v);
    referencePrefill(p.config, p.q, kv, 4, out);
    for (int c = 0; c < 8; ++c) {
        EXPECT_FLOAT_EQ(out.at({0, 0, c}), p.v.at({0, 0, c}));
    }
}

TEST(FlashKernels, MatchesReferencePrefill)
{
    Problem p(4, 2, 16, 100, 100, 1234);
    HostKvView kv(&p.k, &p.v);
    HostTensor expect(p.q.shape());
    HostTensor got(p.q.shape());
    referencePrefill(p.config, p.q, kv, p.kv_len, expect);
    flashPrefill(p.config, p.q, kv, p.kv_len, got);
    EXPECT_LT(expect.maxAbsDiff(got), 2e-5f);
}

TEST(FlashKernels, MatchesReferenceDecode)
{
    Problem p(8, 2, 32, 200, 1, 99);
    HostKvView kv(&p.k, &p.v);
    HostTensor q(Shape{8, 32});
    Rng rng(5);
    q.fillRandom(rng);
    HostTensor expect(q.shape());
    HostTensor got(q.shape());
    referenceDecode(p.config, q, kv, p.kv_len, expect);
    flashDecode(p.config, q, kv, p.kv_len, got);
    EXPECT_LT(expect.maxAbsDiff(got), 2e-5f);
}

TEST(FlashKernels, DecodeEqualsLastPrefillRow)
{
    Problem p(4, 4, 16, 75, 75, 31);
    HostKvView kv(&p.k, &p.v);
    HostTensor prefill_out(p.q.shape());
    flashPrefill(p.config, p.q, kv, p.kv_len, prefill_out);

    HostTensor q_last(Shape{4, 16});
    for (int h = 0; h < 4; ++h) {
        for (int c = 0; c < 16; ++c) {
            q_last.at({h, c}) = p.q.at({74, h, c});
        }
    }
    HostTensor decode_out(q_last.shape());
    flashDecode(p.config, q_last, kv, p.kv_len, decode_out);
    for (int h = 0; h < 4; ++h) {
        for (int c = 0; c < 16; ++c) {
            EXPECT_NEAR(decode_out.at({h, c}),
                        prefill_out.at({74, h, c}), 2e-5f);
        }
    }
}

TEST(FlashKernels, ChunkedPrefillWithHistory)
{
    // Queries occupying the last 10 of 50 positions must match the
    // corresponding rows of a full 50-token prefill.
    Problem full(2, 2, 8, 50, 50, 77);
    HostKvView kv(&full.k, &full.v);
    HostTensor full_out(full.q.shape());
    flashPrefill(full.config, full.q, kv, 50, full_out);

    HostTensor tail_q(Shape{10, 2, 8});
    for (i64 i = 0; i < 10; ++i) {
        for (int h = 0; h < 2; ++h) {
            for (int c = 0; c < 8; ++c) {
                tail_q.at({i, h, c}) = full.q.at({40 + i, h, c});
            }
        }
    }
    HostTensor tail_out(tail_q.shape());
    flashPrefill(full.config, tail_q, kv, 50, tail_out);
    for (i64 i = 0; i < 10; ++i) {
        for (int h = 0; h < 2; ++h) {
            for (int c = 0; c < 8; ++c) {
                EXPECT_NEAR(tail_out.at({i, h, c}),
                            full_out.at({40 + i, h, c}), 2e-5f);
            }
        }
    }
}

/**
 * Property sweep: flash == reference over (Hq, Hkv, D, L) shapes,
 * including GQA ratios and lengths straddling the tile size.
 */
class KernelEquivalence
    : public ::testing::TestWithParam<std::tuple<int, int, int, i64>>
{
};

TEST_P(KernelEquivalence, FlashMatchesReference)
{
    const auto [hq, hkv, d, len] = GetParam();
    Problem p(hq, hkv, d, len, len, 1000 + static_cast<u64>(len));
    HostKvView kv(&p.k, &p.v);
    HostTensor expect(p.q.shape());
    HostTensor got(p.q.shape());
    referencePrefill(p.config, p.q, kv, len, expect);
    flashPrefill(p.config, p.q, kv, len, got);
    EXPECT_LT(expect.maxAbsDiff(got), 3e-5f);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, KernelEquivalence,
    ::testing::Values(
        std::make_tuple(1, 1, 8, 5),
        std::make_tuple(2, 1, 16, 63),   // just under the KV tile
        std::make_tuple(2, 2, 16, 64),   // exactly one tile
        std::make_tuple(4, 2, 16, 65),   // straddles tiles
        std::make_tuple(8, 2, 32, 130),
        std::make_tuple(8, 1, 8, 200),   // max GQA ratio
        std::make_tuple(3, 3, 24, 97))); // non-pow2 heads/dim

} // namespace
} // namespace vattn::attn
