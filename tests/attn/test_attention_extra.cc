/**
 * @file
 * Additional attention-kernel properties: non-causal mode, custom
 * softmax scale, degenerate lengths, and the prefill/decode
 * consistency across tile boundaries.
 */

#include <gtest/gtest.h>

#include "attn/kernels.hh"
#include "attn/reference.hh"
#include "common/rng.hh"

namespace vattn::attn
{
namespace
{

using tensor::HostTensor;
using tensor::Shape;

struct Fixture
{
    AttnConfig config;
    HostTensor k;
    HostTensor v;

    Fixture(int hq, int hkv, int d, i64 len, u64 seed, bool causal,
            float scale = 0.0f)
        : config{hq, hkv, d, causal, scale}, k(Shape{len, hkv, d}),
          v(Shape{len, hkv, d})
    {
        Rng rng(seed);
        k.fillRandom(rng);
        v.fillRandom(rng);
    }
};

TEST(AttnExtra, NonCausalFlashMatchesReference)
{
    Fixture f(4, 2, 16, 90, 11, /*causal=*/false);
    HostKvView kv(&f.k, &f.v);
    Rng rng(12);
    HostTensor q(Shape{90, 4, 16});
    q.fillRandom(rng);
    HostTensor expect(q.shape());
    HostTensor got(q.shape());
    referencePrefill(f.config, q, kv, 90, expect);
    flashPrefill(f.config, q, kv, 90, got);
    EXPECT_LT(expect.maxAbsDiff(got), 3e-5f);
}

TEST(AttnExtra, NonCausalEveryRowSeesEverything)
{
    // Without masking, every query attends over the full KV, so a
    // constant query yields identical rows.
    Fixture f(1, 1, 8, 40, 21, /*causal=*/false);
    HostKvView kv(&f.k, &f.v);
    HostTensor q(Shape{5, 1, 8});
    q.fill(0.37f);
    HostTensor out(q.shape());
    flashPrefill(f.config, q, kv, 40, out);
    for (i64 i = 1; i < 5; ++i) {
        for (int c = 0; c < 8; ++c) {
            EXPECT_FLOAT_EQ(out.at({i, 0, c}), out.at({0, 0, c}));
        }
    }
}

TEST(AttnExtra, CustomScaleChangesResultConsistently)
{
    Fixture def(2, 2, 16, 50, 31, true);
    Fixture sharp(2, 2, 16, 50, 31, true, /*scale=*/2.0f);
    HostKvView kv_def(&def.k, &def.v);
    HostKvView kv_sharp(&sharp.k, &sharp.v);
    Rng rng(32);
    HostTensor q(Shape{16, 16});
    q.fillRandom(rng);
    HostTensor out_def(q.shape());
    HostTensor out_sharp(q.shape());

    // Use decode for a single-row comparison.
    HostTensor q1(Shape{2, 16});
    q1.fillRandom(rng);
    HostTensor o1(q1.shape());
    HostTensor o2(q1.shape());
    AttnConfig c1{2, 2, 16, true, 0.0f};
    AttnConfig c2{2, 2, 16, true, 2.0f};
    flashDecode(c1, q1, kv_def, 50, o1);
    flashDecode(c2, q1, kv_def, 50, o2);
    // A sharper scale changes the distribution => different output.
    EXPECT_GT(o1.maxAbsDiff(o2), 1e-4f);
    // And flash agrees with reference under the custom scale.
    HostTensor o3(q1.shape());
    referenceDecode(c2, q1, kv_def, 50, o3);
    EXPECT_LT(o2.maxAbsDiff(o3), 3e-5f);
    (void)out_def;
    (void)out_sharp;
    (void)kv_sharp;
}

TEST(AttnExtra, SingleQueryPrefillEqualsDecode)
{
    // A one-token prefill chunk over an existing KV history is
    // exactly a decode step.
    Fixture f(4, 2, 16, 77, 41, true);
    HostKvView kv(&f.k, &f.v);
    Rng rng(42);
    HostTensor q3(Shape{1, 4, 16});
    q3.fillRandom(rng);
    HostTensor prefill_out(q3.shape());
    flashPrefill(f.config, q3, kv, 77, prefill_out);

    HostTensor q2(Shape{4, 16});
    for (int h = 0; h < 4; ++h) {
        for (int c = 0; c < 16; ++c) {
            q2.at({h, c}) = q3.at({0, h, c});
        }
    }
    HostTensor decode_out(q2.shape());
    flashDecode(f.config, q2, kv, 77, decode_out);
    for (int h = 0; h < 4; ++h) {
        for (int c = 0; c < 16; ++c) {
            EXPECT_NEAR(decode_out.at({h, c}),
                        prefill_out.at({0, h, c}), 2e-5f);
        }
    }
}

/** Decode across KV lengths straddling the tile size. */
class TileBoundary : public ::testing::TestWithParam<i64>
{
};

TEST_P(TileBoundary, FlashDecodeMatchesReference)
{
    const i64 len = GetParam();
    Fixture f(2, 1, 8, len, 1000 + static_cast<u64>(len), true);
    HostKvView kv(&f.k, &f.v);
    Rng rng(51);
    HostTensor q(Shape{2, 8});
    q.fillRandom(rng);
    HostTensor expect(q.shape());
    HostTensor got(q.shape());
    referenceDecode(f.config, q, kv, len, expect);
    flashDecode(f.config, q, kv, len, got);
    EXPECT_LT(expect.maxAbsDiff(got), 3e-5f);
}

INSTANTIATE_TEST_SUITE_P(AroundTiles, TileBoundary,
                         ::testing::Values(1, 2, 63, 64, 65, 127, 128,
                                           129, 255, 256, 257));

TEST(AttnExtra, AttentionOutputIsConvexCombination)
{
    // Softmax weights are positive and sum to 1, so each output
    // coordinate lies within [min, max] of the V column.
    Fixture f(1, 1, 4, 30, 61, false);
    HostKvView kv(&f.k, &f.v);
    Rng rng(62);
    HostTensor q(Shape{1, 4});
    q.fillRandom(rng);
    HostTensor out(q.shape());
    flashDecode(f.config, q, kv, 30, out);
    for (int c = 0; c < 4; ++c) {
        float lo = 1e9f;
        float hi = -1e9f;
        for (i64 t = 0; t < 30; ++t) {
            lo = std::min(lo, f.v.at({t, 0, c}));
            hi = std::max(hi, f.v.at({t, 0, c}));
        }
        EXPECT_GE(out.at({0, c}), lo - 1e-5f);
        EXPECT_LE(out.at({0, c}), hi + 1e-5f);
    }
}

} // namespace
} // namespace vattn::attn
