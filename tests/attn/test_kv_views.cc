#include <gtest/gtest.h>

#include "attn/kernels.hh"
#include "attn/reference.hh"
#include "common/rng.hh"
#include "cuvmm/driver.hh"
#include "paged/paged_kv_cache.hh"
#include "test_util.hh"

namespace vattn::attn
{
namespace
{

using tensor::HostTensor;
using tensor::Shape;

/** Device + driver fixture with committed KV storage helpers. */
class KvViewTest : public ::testing::Test
{
  protected:
    KvViewTest() : device_(makeConfig()), driver_(device_) {}

    static gpu::GpuDevice::Config
    makeConfig()
    {
        gpu::GpuDevice::Config config;
        config.mem_bytes = 128 * MiB;
        return config;
    }

    tensor::VirtualTensor
    committedTensor(const Shape &shape)
    {
        Addr ptr = 0;
        const u64 size = static_cast<u64>(shape.numel()) * 2;
        const auto r = driver_.cudaMalloc(&ptr, size);
        panic_if(r != cuvmm::CuResult::kSuccess, "cudaMalloc failed");
        return tensor::VirtualTensor(&device_, ptr,
                                     tensor::Layout::contiguous(shape),
                                     tensor::DType::kF16);
    }

    gpu::GpuDevice device_;
    cuvmm::Driver driver_;
};

/** Copy fp32 host KV into any KvWriter (quantizing to fp16). */
void
copyInto(KvWriter &writer, const HostTensor &k, const HostTensor &v)
{
    const i64 len = k.shape()[0];
    const int heads = static_cast<int>(k.shape()[1]);
    const int dim = static_cast<int>(k.shape()[2]);
    for (i64 t = 0; t < len; ++t) {
        for (int h = 0; h < heads; ++h) {
            writer.storeK(t, h, k.row({t, h}));
            writer.storeV(t, h, v.row({t, h}));
        }
    }
    (void)dim;
}

/**
 * THE portability property of the paper: the same non-paged kernel
 * over (a) host arrays, (b) a contiguous virtual tensor, and (c) a
 * strided tensor-slicing view produces identical results, and the
 * rewritten paged kernel over a block-table layout agrees too.
 */
class LayoutEquivalence
    : public KvViewTest,
      public ::testing::WithParamInterface<std::tuple<int, int, i64, i64>>
{
};

TEST_P(LayoutEquivalence, AllLayoutsAgree)
{
    const auto [hkv, d, len, block_size] = GetParam();
    const int hq = hkv * 2;
    AttnConfig config{hq, hkv, d, true, 0.0f};

    Rng rng(0x5eed + static_cast<u64>(len));
    HostTensor host_k(Shape{len, hkv, d});
    HostTensor host_v(Shape{len, hkv, d});
    HostTensor q(Shape{len, hq, d});
    host_k.fillRandom(rng);
    host_v.fillRandom(rng);
    q.fillRandom(rng);

    // Quantize host KV to fp16 so every layout sees identical data.
    for (i64 t = 0; t < len; ++t) {
        for (int h = 0; h < hkv; ++h) {
            for (int c = 0; c < d; ++c) {
                host_k.at({t, h, c}) = fp16BitsToFp32(
                    fp32ToFp16Bits(host_k.at({t, h, c})));
                host_v.at({t, h, c}) = fp16BitsToFp32(
                    fp32ToFp16Bits(host_v.at({t, h, c})));
            }
        }
    }

    // (a) host reference.
    HostKvView host_view(&host_k, &host_v);
    HostTensor expect(q.shape());
    flashPrefill(config, q, host_view, len, expect);

    // (b) contiguous virtual tensor (vAttention view).
    auto k_tensor = committedTensor(Shape{len, hkv, d});
    auto v_tensor = committedTensor(Shape{len, hkv, d});
    TensorKvView contiguous(k_tensor, v_tensor);
    copyInto(contiguous, host_k, host_v);
    HostTensor got_contiguous(q.shape());
    flashPrefill(config, q, contiguous, len, got_contiguous);
    EXPECT_FLOAT_EQ(expect.maxAbsDiff(got_contiguous), 0.0f);

    // (c) strided tensor-slicing layout (§8.2): [L, N=3, H, D] with
    // our layer in the middle.
    const int fake_layers = 3;
    auto big_k = committedTensor(Shape{len, fake_layers, hkv, d});
    auto big_v = committedTensor(Shape{len, fake_layers, hkv, d});
    TensorKvView strided(big_k.slice(1, 1, 1).squeeze(1),
                         big_v.slice(1, 1, 1).squeeze(1));
    copyInto(strided, host_k, host_v);
    HostTensor got_strided(q.shape());
    flashPrefill(config, q, strided, len, got_strided);
    EXPECT_FLOAT_EQ(expect.maxAbsDiff(got_strided), 0.0f);

    // (d) paged layout with a shuffled block table.
    const i64 num_blocks = (len + block_size - 1) / block_size + 2;
    auto k_pool = committedTensor(Shape{num_blocks, block_size, hkv, d});
    auto v_pool = committedTensor(Shape{num_blocks, block_size, hkv, d});
    std::vector<i32> table(
        static_cast<std::size_t>((len + block_size - 1) / block_size));
    std::vector<i32> ids(static_cast<std::size_t>(num_blocks));
    for (i64 i = 0; i < num_blocks; ++i) {
        ids[static_cast<std::size_t>(i)] = static_cast<i32>(i);
    }
    rng.shuffle(ids); // physical blocks deliberately scrambled
    std::copy(ids.begin(), ids.begin() + static_cast<long>(table.size()),
              table.begin());
    PagedKvView paged(k_pool, v_pool, table, block_size);
    copyInto(paged, host_k, host_v);
    HostTensor got_paged(q.shape());
    flashPrefill(config, q, paged, len, got_paged);
    EXPECT_FLOAT_EQ(expect.maxAbsDiff(got_paged), 0.0f);
}

INSTANTIATE_TEST_SUITE_P(
    Layouts, LayoutEquivalence,
    ::testing::Values(std::make_tuple(2, 16, 40, 16),
                      std::make_tuple(2, 16, 64, 16),
                      std::make_tuple(4, 32, 100, 32),
                      std::make_tuple(1, 8, 33, 8),
                      std::make_tuple(2, 8, 129, 64)));

TEST_F(KvViewTest, PagedViewRejectsUnallocatedBlocks)
{
    test::ScopedThrowErrors guard;
    auto k_pool = committedTensor(Shape{4, 16, 2, 8});
    auto v_pool = committedTensor(Shape{4, 16, 2, 8});
    PagedKvView view(k_pool, v_pool, {0, -1}, 16);
    float buf[8];
    EXPECT_NO_THROW(view.loadK(5, 0, buf));
    EXPECT_THROW(view.loadK(20, 0, buf), SimError); // block -1
    EXPECT_THROW(view.loadK(40, 0, buf), SimError); // past the table
}

TEST_F(KvViewTest, AppendKvWritesSequentially)
{
    auto k_tensor = committedTensor(Shape{32, 2, 4});
    auto v_tensor = committedTensor(Shape{32, 2, 4});
    TensorKvView view(k_tensor, v_tensor);

    // Two appends: tokens [0, 3) then [3, 5).
    std::vector<float> kdata(3 * 2 * 4);
    std::vector<float> vdata(3 * 2 * 4);
    for (std::size_t i = 0; i < kdata.size(); ++i) {
        kdata[i] = static_cast<float>(i);
        vdata[i] = static_cast<float>(i) + 0.5f;
    }
    appendKv(view, 0, 3, 2, 4, kdata.data(), vdata.data());
    appendKv(view, 3, 2, 2, 4, kdata.data(), vdata.data());

    float out[4];
    view.loadK(1, 1, out); // token 1, head 1 -> kdata[(1*2+1)*4 ...]
    EXPECT_FLOAT_EQ(out[0], 12.0f);
    view.loadV(4, 0, out); // second append, token index 1, head 0
    EXPECT_FLOAT_EQ(out[0], 8.5f);
}

TEST_F(KvViewTest, CacheBatchIdxRemapsRows)
{
    // Three KV slots; Q batch of two uses slots {2, 0} — the hole at
    // slot 1 mimics a completed request (§5.3.4).
    const int hq = 2;
    const int d = 8;
    AttnConfig config{hq, 1, d, true, 0.0f};
    Rng rng(404);

    std::vector<HostTensor> ks;
    std::vector<HostTensor> vs;
    std::vector<i64> lens = {12, 20, 30};
    for (i64 len : lens) {
        ks.emplace_back(Shape{len, 1, d});
        vs.emplace_back(Shape{len, 1, d});
        ks.back().fillRandom(rng);
        vs.back().fillRandom(rng);
    }
    HostKvView view0(&ks[0], &vs[0]);
    HostKvView view1(&ks[1], &vs[1]);
    HostKvView view2(&ks[2], &vs[2]);
    std::vector<const KvView *> views = {&view0, &view1, &view2};

    HostTensor q(Shape{2, hq, d});
    q.fillRandom(rng);
    HostTensor out(q.shape());
    flashDecodeBatch(config, q, views, lens, {2, 0}, out);

    // Row 0 must equal a direct decode over slot 2.
    HostTensor q0(Shape{hq, d});
    std::copy(q.row({0}), q.row({0}) + hq * d, q0.data());
    HostTensor expect0(q0.shape());
    flashDecode(config, q0, view2, lens[2], expect0);
    for (int h = 0; h < hq; ++h) {
        for (int c = 0; c < d; ++c) {
            EXPECT_FLOAT_EQ(out.at({0, h, c}), expect0.at({h, c}));
        }
    }
    // Row 1 over slot 0.
    HostTensor q1(Shape{hq, d});
    std::copy(q.row({1}), q.row({1}) + hq * d, q1.data());
    HostTensor expect1(q1.shape());
    flashDecode(config, q1, view0, lens[0], expect1);
    for (int h = 0; h < hq; ++h) {
        for (int c = 0; c < d; ++c) {
            EXPECT_FLOAT_EQ(out.at({1, h, c}), expect1.at({h, c}));
        }
    }
}

TEST_F(KvViewTest, TlbTouchRecording)
{
    auto k_tensor = committedTensor(Shape{64, 2, 8});
    auto v_tensor = committedTensor(Shape{64, 2, 8});
    TensorKvView view(k_tensor, v_tensor, /*touch_tlb=*/true);
    float buf[8];
    for (i64 t = 0; t < 64; ++t) {
        view.loadK(t, 0, buf);
    }
    EXPECT_EQ(device_.tlb().l1Stats(PageSize::k2MB).accesses(),
              64u);
}

} // namespace
} // namespace vattn::attn
