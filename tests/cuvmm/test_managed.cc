#include <gtest/gtest.h>

#include "cuvmm/managed.hh"
#include "test_util.hh"

namespace vattn::cuvmm
{
namespace
{

class ManagedTest : public ::testing::Test
{
  protected:
    ManagedTest() : device_(makeConfig()), managed_(device_) {}

    static gpu::GpuDevice::Config
    makeConfig()
    {
        gpu::GpuDevice::Config config;
        config.mem_bytes = 64 * MiB;
        return config;
    }

    gpu::GpuDevice device_;
    ManagedMemory managed_;
};

TEST_F(ManagedTest, NoPhysicalCommitUntilTouch)
{
    Addr ptr = 0;
    ASSERT_EQ(managed_.mallocManaged(&ptr, 16 * MiB),
              CuResult::kSuccess);
    // Demand paging: nothing committed yet.
    EXPECT_EQ(managed_.committedBytes(), 0u);
    EXPECT_FALSE(device_.pageTable().isAccessible(ptr, 1));
}

TEST_F(ManagedTest, TouchCommits2MbPages)
{
    Addr ptr = 0;
    ASSERT_EQ(managed_.mallocManaged(&ptr, 16 * MiB),
              CuResult::kSuccess);
    // Touch one byte: a whole 2MB page is committed — the
    // fragmentation problem of §8.1 for a KV cache that grows ~64KB
    // at a time.
    auto committed = managed_.touch(ptr + 5000, 1);
    ASSERT_TRUE(committed.isOk());
    EXPECT_EQ(committed.value(), 1);
    EXPECT_EQ(managed_.committedBytes(), 2 * MiB);
    EXPECT_TRUE(device_.pageTable().isAccessible(ptr, 2 * MiB));

    // Re-touching the same page commits nothing new.
    committed = managed_.touch(ptr, 2 * MiB);
    ASSERT_TRUE(committed.isOk());
    EXPECT_EQ(committed.value(), 0);

    // A range spanning pages 2..4 commits three more.
    committed = managed_.touch(ptr + 4 * MiB, 4 * MiB + 1);
    ASSERT_TRUE(committed.isOk());
    EXPECT_EQ(committed.value(), 3);
    EXPECT_EQ(managed_.committedBytes(), 8 * MiB);
}

TEST_F(ManagedTest, FunctionalReadsAndWrites)
{
    Addr ptr = 0;
    ASSERT_EQ(managed_.mallocManaged(&ptr, 4 * MiB),
              CuResult::kSuccess);
    ASSERT_TRUE(managed_.touch(ptr, 4 * MiB).isOk());
    const u32 value = 0xabcd1234;
    device_.writeVa(ptr + 3 * MiB, &value, sizeof(value));
    u32 out = 0;
    device_.readVa(ptr + 3 * MiB, &out, sizeof(out));
    EXPECT_EQ(out, value);
}

TEST_F(ManagedTest, NoPartialFreeing)
{
    // §8.1 limitation 1: you cannot reclaim an individual request's
    // pages — only the whole allocation.
    Addr ptr = 0;
    ASSERT_EQ(managed_.mallocManaged(&ptr, 8 * MiB),
              CuResult::kSuccess);
    ASSERT_TRUE(managed_.touch(ptr, 8 * MiB).isOk());
    EXPECT_EQ(managed_.releaseRange(ptr, 2 * MiB),
              CuResult::kErrorInvalidValue);
    EXPECT_EQ(managed_.committedBytes(), 8 * MiB);

    const u64 free_before = device_.freePhysBytes();
    ASSERT_EQ(managed_.freeManaged(ptr), CuResult::kSuccess);
    EXPECT_EQ(managed_.committedBytes(), 0u);
    EXPECT_EQ(device_.freePhysBytes(), free_before + 8 * MiB);
}

TEST_F(ManagedTest, TouchOutsideAllocationFails)
{
    Addr ptr = 0;
    ASSERT_EQ(managed_.mallocManaged(&ptr, 4 * MiB),
              CuResult::kSuccess);
    EXPECT_FALSE(managed_.touch(ptr + 4 * MiB, 1).isOk());
    EXPECT_FALSE(managed_.touch(0x1234, 1).isOk());
    EXPECT_FALSE(managed_.touch(ptr + 3 * MiB, 2 * MiB).isOk());
}

TEST_F(ManagedTest, OutOfMemorySurfacesOnTouch)
{
    // Virtual allocation succeeds way beyond physical capacity (the
    // device has 64MB); the failure shows up at touch time.
    Addr ptr = 0;
    ASSERT_EQ(managed_.mallocManaged(&ptr, 128 * MiB),
              CuResult::kSuccess);
    auto r = managed_.touch(ptr, 128 * MiB);
    EXPECT_FALSE(r.isOk());
    EXPECT_EQ(r.code(), ErrorCode::kOutOfMemory);
}

TEST_F(ManagedTest, PerAllocationAccounting)
{
    Addr a = 0;
    Addr b = 0;
    ASSERT_EQ(managed_.mallocManaged(&a, 8 * MiB), CuResult::kSuccess);
    ASSERT_EQ(managed_.mallocManaged(&b, 8 * MiB), CuResult::kSuccess);
    ASSERT_TRUE(managed_.touch(a, 2 * MiB).isOk());
    ASSERT_TRUE(managed_.touch(b, 6 * MiB).isOk());
    EXPECT_EQ(managed_.committedBytes(a), 2 * MiB);
    EXPECT_EQ(managed_.committedBytes(b), 6 * MiB);
    EXPECT_EQ(managed_.committedBytes(), 8 * MiB);
    EXPECT_EQ(managed_.freeManaged(a), CuResult::kSuccess);
    EXPECT_EQ(managed_.committedBytes(), 6 * MiB);
    EXPECT_EQ(managed_.freeManaged(a), CuResult::kErrorInvalidValue);
}

TEST_F(ManagedTest, FragmentationVersusVattnGeometry)
{
    // The quantitative §8.1 point: a KV cache that holds 100 tokens
    // of a Yi-6B-like layer (64KB of data per buffer) pins a full 2MB
    // managed page per buffer — 32x waste — while the driver
    // extension's 64KB page-groups fit it exactly.
    Addr ptr = 0;
    ASSERT_EQ(managed_.mallocManaged(&ptr, 2 * MiB),
              CuResult::kSuccess);
    ASSERT_TRUE(managed_.touch(ptr, 64 * KiB).isOk());
    EXPECT_EQ(managed_.committedBytes(), 2 * MiB); // 32x the data
}

} // namespace
} // namespace vattn::cuvmm
