#include <gtest/gtest.h>

#include "cuvmm/latency_model.hh"
#include "perf/pcie_spec.hh"
#include "test_util.hh"

namespace vattn::cuvmm
{
namespace
{

TEST(LatencyModel, Table3Values)
{
    LatencyModel model;
    // Reserve: 18/17/16/2 us.
    EXPECT_EQ(model.cost(Api::kAddressReserve, PageGroup::k64KB), 18000u);
    EXPECT_EQ(model.cost(Api::kAddressReserve, PageGroup::k128KB), 17000u);
    EXPECT_EQ(model.cost(Api::kAddressReserve, PageGroup::k256KB), 16000u);
    EXPECT_EQ(model.cost(Api::kAddressReserve, PageGroup::k2MB), 2000u);
    // Create: 1.7/2/2.1/29 us.
    EXPECT_EQ(model.cost(Api::kCreate, PageGroup::k64KB), 1700u);
    EXPECT_EQ(model.cost(Api::kCreate, PageGroup::k2MB), 29000u);
    // Map: 8/8.5/9/2 us.
    EXPECT_EQ(model.cost(Api::kMap, PageGroup::k128KB), 8500u);
    EXPECT_EQ(model.cost(Api::kMap, PageGroup::k2MB), 2000u);
    // SetAccess only exists on the 2MB (stock CUDA) path.
    EXPECT_EQ(model.cost(Api::kSetAccess, PageGroup::k2MB), 38000u);
    EXPECT_EQ(model.cost(Api::kUnmap, PageGroup::k2MB), 34000u);
    // Sub-2MB unmap is the standalone vMemUnmap (prefix sharing):
    // just under the fused release cost.
    EXPECT_EQ(model.cost(Api::kUnmap, PageGroup::k64KB), 1800u);
    EXPECT_EQ(model.cost(Api::kUnmap, PageGroup::k256KB), 3600u);
    // Release: 2/3/4/23 us.
    EXPECT_EQ(model.cost(Api::kRelease, PageGroup::k256KB), 4000u);
    EXPECT_EQ(model.cost(Api::kRelease, PageGroup::k2MB), 23000u);
    // AddressFree: 35/35/35/1 us.
    EXPECT_EQ(model.cost(Api::kAddressFree, PageGroup::k64KB), 35000u);
    EXPECT_EQ(model.cost(Api::kAddressFree, PageGroup::k2MB), 1000u);
}

TEST(LatencyModel, FusedApisHaveNoSmallPageCost)
{
    test::ScopedThrowErrors guard;
    LatencyModel model;
    // SetAccess stays fused into vMemMap on the extension path (Unmap
    // gained a standalone sub-2MB cost with vMemUnmap).
    EXPECT_THROW(model.cost(Api::kSetAccess, PageGroup::k64KB),
                 SimError);
}

TEST(LatencyModel, MapGroupCostFusesAccessOn2Mb)
{
    LatencyModel model;
    // Stock path: cuMemMap (2us) + cuMemSetAccess (38us) = 40us —
    // this is the §6.1 example: 120 calls * 40us ~= 5ms per request.
    EXPECT_EQ(model.mapGroupCost(PageGroup::k2MB), 40000u);
    // Extension path: one fused vMemMap call.
    EXPECT_EQ(model.mapGroupCost(PageGroup::k64KB), 8000u);
    EXPECT_EQ(model.mapGroupCost(PageGroup::k256KB), 9000u);
}

TEST(LatencyModel, UnmapGroupCost)
{
    LatencyModel model;
    EXPECT_EQ(model.unmapGroupCost(PageGroup::k2MB), 57000u); // 34+23
    EXPECT_EQ(model.unmapGroupCost(PageGroup::k64KB), 2000u);
}

TEST(LatencyModel, GrowRequestExampleFromPaper)
{
    // §6.1: extending one request of Yi-34B (60 layers, 120 buffers)
    // by one 2MB page-group each costs ~5ms of API latency.
    LatencyModel model;
    const TimeNs per_group = model.mapGroupCost(PageGroup::k2MB);
    const TimeNs total = per_group * 120;
    EXPECT_NEAR(static_cast<double>(total) / 1e6, 5.0, 0.3); // ~5ms
}

TEST(LatencyModel, ScaleMultipliesCosts)
{
    LatencyModel model;
    model.setScale(2.0);
    EXPECT_EQ(model.cost(Api::kMap, PageGroup::k64KB), 16000u);
    model.setScale(1.0);
    EXPECT_EQ(model.cost(Api::kMap, PageGroup::k64KB), 8000u);
}

TEST(LatencyModel, ApiNames)
{
    EXPECT_STREQ(toString(Api::kMap), "MemMap");
    EXPECT_STREQ(toString(Api::kSetAccess), "MemSetAccess");
}

TEST(LatencyModel, DefaultCopyModelMirrorsGen4Pcie)
{
    // A bare driver must price swap copies like the calibrated A100
    // link; perf::PcieSpec::gen4x16() is the authoritative source and
    // the CopyModel defaults must not drift from it.
    const LatencyModel model;
    const auto gen4 = perf::PcieSpec::gen4x16().toCopyModel();
    EXPECT_EQ(model.copyModel().d2h_bytes_per_s, gen4.d2h_bytes_per_s);
    EXPECT_EQ(model.copyModel().h2d_bytes_per_s, gen4.h2d_bytes_per_s);
    EXPECT_EQ(model.copyModel().launch_ns, gen4.launch_ns);
    // Host allocation is dominated by page-locking: linear-ish growth.
    EXPECT_GT(model.hostAllocCost(2 * MiB),
              4 * model.hostAllocCost(64 * KiB) / 2);
    EXPECT_GT(model.hostAllocCost(64 * KiB), model.hostFreeCost(0));
}

} // namespace
} // namespace vattn::cuvmm
