#include <gtest/gtest.h>

#include "cuvmm/driver.hh"
#include "test_util.hh"

namespace vattn::cuvmm
{
namespace
{

class DriverTest : public ::testing::Test
{
  protected:
    DriverTest()
        : device_(makeConfig()), driver_(device_)
    {
    }

    static gpu::GpuDevice::Config
    makeConfig()
    {
        gpu::GpuDevice::Config config;
        config.mem_bytes = 64 * MiB;
        return config;
    }

    gpu::GpuDevice device_;
    Driver driver_;
};

TEST_F(DriverTest, ReserveCreateMapAccessLifecycle)
{
    Addr va = 0;
    ASSERT_EQ(driver_.cuMemAddressReserve(&va, 4 * MiB),
              CuResult::kSuccess);
    ASSERT_NE(va, 0u);

    MemHandle handle = kInvalidHandle;
    ASSERT_EQ(driver_.cuMemCreate(&handle, 2 * MiB), CuResult::kSuccess);
    EXPECT_EQ(driver_.handleSize(handle), 2 * MiB);
    EXPECT_FALSE(driver_.isMapped(handle));

    ASSERT_EQ(driver_.cuMemMap(va, 2 * MiB, 0, handle),
              CuResult::kSuccess);
    EXPECT_TRUE(driver_.isMapped(handle));
    // Mapped but not accessible until cuMemSetAccess.
    EXPECT_FALSE(device_.pageTable().isAccessible(va, 2 * MiB));
    ASSERT_EQ(driver_.cuMemSetAccess(va, 2 * MiB), CuResult::kSuccess);
    EXPECT_TRUE(device_.pageTable().isAccessible(va, 2 * MiB));

    ASSERT_EQ(driver_.cuMemUnmap(va, 2 * MiB), CuResult::kSuccess);
    EXPECT_FALSE(driver_.isMapped(handle));
    ASSERT_EQ(driver_.cuMemRelease(handle), CuResult::kSuccess);
    ASSERT_EQ(driver_.cuMemAddressFree(va, 4 * MiB), CuResult::kSuccess);
    EXPECT_EQ(driver_.physBytesInUse(), 0u);
    EXPECT_EQ(driver_.numLiveHandles(), 0u);
}

TEST_F(DriverTest, CuApisRequire2MbMultiples)
{
    Addr va = 0;
    EXPECT_EQ(driver_.cuMemAddressReserve(&va, 64 * KiB),
              CuResult::kErrorInvalidValue);
    MemHandle handle = kInvalidHandle;
    EXPECT_EQ(driver_.cuMemCreate(&handle, 64 * KiB),
              CuResult::kErrorInvalidValue);
    EXPECT_EQ(driver_.cuMemCreate(&handle, 0),
              CuResult::kErrorInvalidValue);
}

TEST_F(DriverTest, MapOutsideReservationRejected)
{
    MemHandle handle = kInvalidHandle;
    ASSERT_EQ(driver_.cuMemCreate(&handle, 2 * MiB), CuResult::kSuccess);
    EXPECT_EQ(driver_.cuMemMap(0x700000000000ULL, 2 * MiB, 0, handle),
              CuResult::kErrorNotReserved);
}

TEST_F(DriverTest, MapSizeMustMatchHandle)
{
    Addr va = 0;
    ASSERT_EQ(driver_.cuMemAddressReserve(&va, 8 * MiB),
              CuResult::kSuccess);
    MemHandle handle = kInvalidHandle;
    ASSERT_EQ(driver_.cuMemCreate(&handle, 4 * MiB), CuResult::kSuccess);
    EXPECT_EQ(driver_.cuMemMap(va, 2 * MiB, 0, handle),
              CuResult::kErrorInvalidValue);
    EXPECT_EQ(driver_.cuMemMap(va, 4 * MiB, 2 * MiB, handle),
              CuResult::kErrorInvalidValue); // nonzero offset
}

TEST_F(DriverTest, AliasingBadHandlesAndReleaseRules)
{
    Addr va = 0;
    ASSERT_EQ(driver_.cuMemAddressReserve(&va, 8 * MiB),
              CuResult::kSuccess);
    MemHandle handle = kInvalidHandle;
    ASSERT_EQ(driver_.cuMemCreate(&handle, 2 * MiB), CuResult::kSuccess);
    ASSERT_EQ(driver_.cuMemMap(va, 2 * MiB, 0, handle),
              CuResult::kSuccess);
    // Mapping the same handle at a second VA is ALLOWED — physical
    // aliasing is how KV prefix sharing works (§8.1).
    EXPECT_EQ(driver_.cuMemMap(va + 2 * MiB, 2 * MiB, 0, handle),
              CuResult::kSuccess);
    EXPECT_EQ(driver_.numMappings(handle), 2u);
    // Mapping over an already-mapped VA is still rejected.
    EXPECT_EQ(driver_.cuMemMap(va, 2 * MiB, 0, handle),
              CuResult::kErrorAlreadyMapped);
    EXPECT_EQ(driver_.cuMemMap(va + 4 * MiB, 2 * MiB, 0, 9999),
              CuResult::kErrorInvalidHandle);
    EXPECT_EQ(driver_.cuMemRelease(9999), CuResult::kErrorInvalidHandle);
    // Releasing while any mapping is live is refused.
    EXPECT_EQ(driver_.cuMemRelease(handle),
              CuResult::kErrorAlreadyMapped);
    EXPECT_EQ(driver_.cuMemUnmap(va, 2 * MiB), CuResult::kSuccess);
    EXPECT_EQ(driver_.cuMemRelease(handle),
              CuResult::kErrorAlreadyMapped);
    EXPECT_EQ(driver_.cuMemUnmap(va + 2 * MiB, 2 * MiB),
              CuResult::kSuccess);
    EXPECT_EQ(driver_.cuMemRelease(handle), CuResult::kSuccess);
}

TEST_F(DriverTest, AliasedMappingsShareData)
{
    // KV de-duplication at driver level: two virtual views of one
    // physical page-group observe each other's writes.
    Addr va1 = 0;
    Addr va2 = 0;
    ASSERT_EQ(driver_.vMemReserve(&va1, 64 * KiB), CuResult::kSuccess);
    ASSERT_EQ(driver_.vMemReserve(&va2, 64 * KiB), CuResult::kSuccess);
    MemHandle handle = kInvalidHandle;
    ASSERT_EQ(driver_.vMemCreate(&handle, PageGroup::k64KB),
              CuResult::kSuccess);
    ASSERT_EQ(driver_.vMemMap(va1, handle), CuResult::kSuccess);
    ASSERT_EQ(driver_.vMemMap(va2, handle), CuResult::kSuccess);
    EXPECT_EQ(driver_.numMappings(handle), 2u);
    // Only one page-group of physical memory backs both.
    EXPECT_EQ(driver_.physBytesInUse(), 64 * KiB);

    const u64 value = 0xfeedface12345678ULL;
    device_.writeVa(va1 + 100, &value, sizeof(value));
    u64 out = 0;
    device_.readVa(va2 + 100, &out, sizeof(out));
    EXPECT_EQ(out, value);

    // vMemRelease tears down every alias.
    ASSERT_EQ(driver_.vMemRelease(handle), CuResult::kSuccess);
    EXPECT_FALSE(device_.pageTable().isAccessible(va1, 64 * KiB));
    EXPECT_FALSE(device_.pageTable().isAccessible(va2, 64 * KiB));
    EXPECT_EQ(driver_.physBytesInUse(), 0u);
}

TEST_F(DriverTest, AddressFreeRequiresUnmapped)
{
    Addr va = 0;
    ASSERT_EQ(driver_.cuMemAddressReserve(&va, 2 * MiB),
              CuResult::kSuccess);
    MemHandle handle = kInvalidHandle;
    ASSERT_EQ(driver_.cuMemCreate(&handle, 2 * MiB), CuResult::kSuccess);
    ASSERT_EQ(driver_.cuMemMap(va, 2 * MiB, 0, handle),
              CuResult::kSuccess);
    EXPECT_EQ(driver_.cuMemAddressFree(va, 2 * MiB),
              CuResult::kErrorAlreadyMapped);
    ASSERT_EQ(driver_.cuMemUnmap(va, 2 * MiB), CuResult::kSuccess);
    EXPECT_EQ(driver_.cuMemAddressFree(va, 2 * MiB), CuResult::kSuccess);
    driver_.cuMemRelease(handle);
}

TEST_F(DriverTest, PhysicalExhaustionReturnsOom)
{
    // Device has 64MB; create handles until it refuses.
    std::vector<MemHandle> handles;
    while (true) {
        MemHandle handle = kInvalidHandle;
        const auto r = driver_.cuMemCreate(&handle, 2 * MiB);
        if (r != CuResult::kSuccess) {
            EXPECT_EQ(r, CuResult::kErrorOutOfMemory);
            break;
        }
        handles.push_back(handle);
    }
    EXPECT_EQ(handles.size(), 32u);
    for (MemHandle handle : handles) {
        EXPECT_EQ(driver_.cuMemRelease(handle), CuResult::kSuccess);
    }
    EXPECT_EQ(driver_.physBytesInUse(), 0u);
}

TEST_F(DriverTest, VMemExtensionLifecycle)
{
    Addr va = 0;
    ASSERT_EQ(driver_.vMemReserve(&va, 1 * MiB), CuResult::kSuccess);

    MemHandle handle = kInvalidHandle;
    ASSERT_EQ(driver_.vMemCreate(&handle, PageGroup::k64KB),
              CuResult::kSuccess);
    EXPECT_EQ(driver_.handleSize(handle), 64 * KiB);

    // vMemMap fuses map + access grant.
    ASSERT_EQ(driver_.vMemMap(va, handle), CuResult::kSuccess);
    EXPECT_TRUE(device_.pageTable().isAccessible(va, 64 * KiB));

    // vMemRelease fuses unmap + free.
    ASSERT_EQ(driver_.vMemRelease(handle), CuResult::kSuccess);
    EXPECT_FALSE(device_.pageTable().isAccessible(va, 64 * KiB));
    EXPECT_EQ(driver_.physBytesInUse(), 0u);
    EXPECT_EQ(driver_.vMemFree(va, 1 * MiB), CuResult::kSuccess);
}

TEST_F(DriverTest, VMemSupportsAllPageGroups)
{
    Addr va = 0;
    ASSERT_EQ(driver_.vMemReserve(&va, 16 * MiB, 2 * MiB),
              CuResult::kSuccess);
    Addr cursor = va;
    for (PageGroup group : kAllPageGroups) {
        // Hardware pages must be mapped at naturally aligned VAs.
        cursor = roundUp(cursor, bytes(group));
        MemHandle handle = kInvalidHandle;
        ASSERT_EQ(driver_.vMemCreate(&handle, group), CuResult::kSuccess)
            << toString(group);
        ASSERT_EQ(driver_.vMemMap(cursor, handle), CuResult::kSuccess);
        EXPECT_TRUE(
            device_.pageTable().isAccessible(cursor, bytes(group)));
        cursor += bytes(group);
        ASSERT_EQ(driver_.vMemRelease(handle), CuResult::kSuccess);
    }
}

TEST_F(DriverTest, SmallGroupsBackedBy64KbPages)
{
    Addr va = 0;
    ASSERT_EQ(driver_.vMemReserve(&va, 1 * MiB), CuResult::kSuccess);
    MemHandle handle = kInvalidHandle;
    ASSERT_EQ(driver_.vMemCreate(&handle, PageGroup::k256KB),
              CuResult::kSuccess);
    ASSERT_EQ(driver_.vMemMap(va, handle), CuResult::kSuccess);
    auto t = device_.pageTable().translate(va);
    ASSERT_TRUE(t.isOk());
    EXPECT_EQ(t.value().page, PageSize::k64KB);
    driver_.vMemRelease(handle);
}

TEST_F(DriverTest, CudaMallocCommitsEverything)
{
    Addr ptr = 0;
    ASSERT_EQ(driver_.cudaMalloc(&ptr, 3 * MiB), CuResult::kSuccess);
    // Rounded to 2MB multiple, fully accessible immediately: the
    // reservation-based model the paper contrasts against.
    EXPECT_TRUE(device_.pageTable().isAccessible(ptr, 3 * MiB));
    EXPECT_EQ(driver_.physBytesInUse(), 4 * MiB);
    ASSERT_EQ(driver_.cudaFree(ptr), CuResult::kSuccess);
    EXPECT_EQ(driver_.physBytesInUse(), 0u);
    EXPECT_EQ(driver_.cudaFree(ptr), CuResult::kErrorInvalidValue);
}

TEST_F(DriverTest, LatencyLedgerChargesTable3Costs)
{
    driver_.consumeElapsedNs();
    MemHandle handle = kInvalidHandle;
    ASSERT_EQ(driver_.vMemCreate(&handle, PageGroup::k64KB),
              CuResult::kSuccess);
    // Table 3: vMemCreate(64KB) = 1.7us.
    EXPECT_EQ(driver_.consumeElapsedNs(), 1700u);

    Addr va = 0;
    ASSERT_EQ(driver_.vMemReserve(&va, 64 * KiB), CuResult::kSuccess);
    EXPECT_EQ(driver_.consumeElapsedNs(), 18000u); // 18us

    ASSERT_EQ(driver_.vMemMap(va, handle), CuResult::kSuccess);
    EXPECT_EQ(driver_.consumeElapsedNs(), 8000u); // 8us

    ASSERT_EQ(driver_.vMemRelease(handle), CuResult::kSuccess);
    EXPECT_EQ(driver_.consumeElapsedNs(), 2000u); // 2us

    // The ledger drains: nothing pending now.
    EXPECT_EQ(driver_.consumeElapsedNs(), 0u);
    EXPECT_GT(driver_.totalNs(), 0u);
}

TEST_F(DriverTest, CountersTrackCalls)
{
    Addr va = 0;
    driver_.cuMemAddressReserve(&va, 2 * MiB);
    MemHandle handle = kInvalidHandle;
    driver_.cuMemCreate(&handle, 2 * MiB);
    driver_.cuMemMap(va, 2 * MiB, 0, handle);
    driver_.cuMemSetAccess(va, 2 * MiB);
    driver_.cuMemUnmap(va, 2 * MiB);
    driver_.cuMemRelease(handle);
    driver_.cuMemAddressFree(va, 2 * MiB);
    const auto &counters = driver_.counters();
    EXPECT_EQ(counters.reserve, 1u);
    EXPECT_EQ(counters.create, 1u);
    EXPECT_EQ(counters.map, 1u);
    EXPECT_EQ(counters.set_access, 1u);
    EXPECT_EQ(counters.unmap, 1u);
    EXPECT_EQ(counters.release, 1u);
    EXPECT_EQ(counters.address_free, 1u);
    EXPECT_EQ(counters.total(), 7u);
}

TEST_F(DriverTest, FunctionalDataThroughVmmMapping)
{
    // End to end: reserve, create, map, write through VA, remap
    // elsewhere, confirm the data lives in physical memory.
    Addr va1 = 0;
    ASSERT_EQ(driver_.vMemReserve(&va1, 128 * KiB), CuResult::kSuccess);
    MemHandle handle = kInvalidHandle;
    ASSERT_EQ(driver_.vMemCreate(&handle, PageGroup::k64KB),
              CuResult::kSuccess);
    ASSERT_EQ(driver_.vMemMap(va1, handle), CuResult::kSuccess);

    const u32 value = 0xcafef00d;
    device_.writeVa(va1 + 500, &value, sizeof(value));

    // Unmap (keeping physical) is only possible via the cu path; use
    // a second mapping address to show handle identity instead:
    // release destroys content, so re-create and check zeros.
    ASSERT_EQ(driver_.vMemRelease(handle), CuResult::kSuccess);
    MemHandle handle2 = kInvalidHandle;
    ASSERT_EQ(driver_.vMemCreate(&handle2, PageGroup::k64KB),
              CuResult::kSuccess);
    ASSERT_EQ(driver_.vMemMap(va1, handle2), CuResult::kSuccess);
    u32 out = 0xffffffff;
    device_.readVa(va1 + 500, &out, sizeof(out));
    // Physical frame may be recycled; the mapping itself must work.
    device_.writeVa(va1 + 500, &value, sizeof(value));
    device_.readVa(va1 + 500, &out, sizeof(out));
    EXPECT_EQ(out, value);
    driver_.vMemRelease(handle2);
}

// ---- Aliased handles (one handle mapped at several VAs, §8.1) -------

TEST_F(DriverTest, CuAliasedUnmapOneVaKeepsPhysicalMemory)
{
    Addr va1 = 0;
    Addr va2 = 0;
    ASSERT_EQ(driver_.cuMemAddressReserve(&va1, 2 * MiB),
              CuResult::kSuccess);
    ASSERT_EQ(driver_.cuMemAddressReserve(&va2, 2 * MiB),
              CuResult::kSuccess);
    MemHandle handle = kInvalidHandle;
    ASSERT_EQ(driver_.cuMemCreate(&handle, 2 * MiB), CuResult::kSuccess);
    ASSERT_EQ(driver_.cuMemMap(va1, 2 * MiB, 0, handle),
              CuResult::kSuccess);
    ASSERT_EQ(driver_.cuMemMap(va2, 2 * MiB, 0, handle),
              CuResult::kSuccess);
    EXPECT_EQ(driver_.numMappings(handle), 2u);
    EXPECT_EQ(driver_.physBytesInUse(), 2 * MiB);

    // Unmapping one VA must not release the physical memory: the
    // other request's mapping still resolves.
    ASSERT_EQ(driver_.cuMemUnmap(va1, 2 * MiB), CuResult::kSuccess);
    EXPECT_EQ(driver_.numMappings(handle), 1u);
    EXPECT_TRUE(driver_.isMapped(handle));
    EXPECT_EQ(driver_.physBytesInUse(), 2 * MiB);

    // Release with a live mapping is refused (vAttention's protocol
    // unmaps first); after the last unmap the release frees exactly
    // once.
    EXPECT_EQ(driver_.cuMemRelease(handle),
              CuResult::kErrorAlreadyMapped);
    ASSERT_EQ(driver_.cuMemUnmap(va2, 2 * MiB), CuResult::kSuccess);
    ASSERT_EQ(driver_.cuMemRelease(handle), CuResult::kSuccess);
    EXPECT_EQ(driver_.physBytesInUse(), 0u);
}

TEST_F(DriverTest, VMemUnmapRemovesOneMappingOnly)
{
    Addr va1 = 0;
    Addr va2 = 0;
    ASSERT_EQ(driver_.vMemReserve(&va1, 64 * KiB), CuResult::kSuccess);
    ASSERT_EQ(driver_.vMemReserve(&va2, 64 * KiB), CuResult::kSuccess);
    MemHandle handle = kInvalidHandle;
    ASSERT_EQ(driver_.vMemCreate(&handle, PageGroup::k64KB),
              CuResult::kSuccess);
    ASSERT_EQ(driver_.vMemMap(va1, handle), CuResult::kSuccess);
    ASSERT_EQ(driver_.vMemMap(va2, handle), CuResult::kSuccess);
    EXPECT_EQ(driver_.numMappings(handle), 2u);

    ASSERT_EQ(driver_.vMemUnmap(va1), CuResult::kSuccess);
    EXPECT_EQ(driver_.numMappings(handle), 1u);
    EXPECT_EQ(driver_.physBytesInUse(), 64 * KiB);
    // The surviving mapping is still accessible.
    EXPECT_TRUE(device_.pageTable().isAccessible(va2, 64 * KiB));
    // Unmapping an unmapped VA reports kErrorNotMapped.
    EXPECT_EQ(driver_.vMemUnmap(va1), CuResult::kErrorNotMapped);

    ASSERT_EQ(driver_.vMemRelease(handle), CuResult::kSuccess);
    EXPECT_EQ(driver_.physBytesInUse(), 0u);
}

TEST_F(DriverTest, VMemReleaseOnAliasedHandleUnmapsAllAndFreesOnce)
{
    Addr va1 = 0;
    Addr va2 = 0;
    ASSERT_EQ(driver_.vMemReserve(&va1, 64 * KiB), CuResult::kSuccess);
    ASSERT_EQ(driver_.vMemReserve(&va2, 64 * KiB), CuResult::kSuccess);
    MemHandle handle = kInvalidHandle;
    ASSERT_EQ(driver_.vMemCreate(&handle, PageGroup::k64KB),
              CuResult::kSuccess);
    ASSERT_EQ(driver_.vMemMap(va1, handle), CuResult::kSuccess);
    ASSERT_EQ(driver_.vMemMap(va2, handle), CuResult::kSuccess);
    const u64 phys_before = driver_.physBytesInUse();

    ASSERT_EQ(driver_.vMemRelease(handle), CuResult::kSuccess);
    EXPECT_EQ(driver_.numMappings(handle), 0u);
    EXPECT_EQ(driver_.physBytesInUse(), phys_before - 64 * KiB);
    EXPECT_FALSE(device_.pageTable().isAccessible(va1, 64 * KiB));
    EXPECT_FALSE(device_.pageTable().isAccessible(va2, 64 * KiB));
    // Both reservations are mapping-free and can be returned.
    EXPECT_EQ(driver_.vMemFree(va1, 64 * KiB), CuResult::kSuccess);
    EXPECT_EQ(driver_.vMemFree(va2, 64 * KiB), CuResult::kSuccess);
}

TEST_F(DriverTest, AliasedVasTranslateToTheSamePhysAddr)
{
    Addr va1 = 0;
    Addr va2 = 0;
    ASSERT_EQ(driver_.vMemReserve(&va1, 64 * KiB), CuResult::kSuccess);
    ASSERT_EQ(driver_.vMemReserve(&va2, 64 * KiB), CuResult::kSuccess);
    MemHandle handle = kInvalidHandle;
    ASSERT_EQ(driver_.vMemCreate(&handle, PageGroup::k64KB),
              CuResult::kSuccess);
    ASSERT_EQ(driver_.vMemMap(va1, handle), CuResult::kSuccess);
    ASSERT_EQ(driver_.vMemMap(va2, handle), CuResult::kSuccess);

    // Page-table + TLB path: both virtual addresses resolve to one
    // physical page (the de-duplicated KV bytes exist once).
    const PhysAddr p1 = device_.translateTouched(va1 + 4096);
    const PhysAddr p2 = device_.translateTouched(va2 + 4096);
    EXPECT_EQ(p1, p2);

    // Writes through one alias are visible through the other.
    const u32 value = 0x5eedf00d;
    device_.writeVa(va1 + 128, &value, sizeof(value));
    u32 out = 0;
    device_.readVa(va2 + 128, &out, sizeof(out));
    EXPECT_EQ(out, value);

    driver_.vMemRelease(handle);
}

TEST_F(DriverTest, HostAllocCopyReleaseLifecycle)
{
    // Host allocations live beside device handles with their own
    // accounting; copies price the PCIe link and hit the same ledger.
    MemHandle host = kInvalidHandle;
    ASSERT_EQ(driver_.cuMemHostCreate(&host, 64 * KiB),
              CuResult::kSuccess);
    EXPECT_EQ(driver_.hostBytesInUse(), 64 * KiB);
    EXPECT_EQ(driver_.numLiveHostHandles(), 1u);
    EXPECT_EQ(driver_.physBytesInUse(), 0u); // not device memory

    MemHandle dev = kInvalidHandle;
    ASSERT_EQ(driver_.vMemCreate(&dev, PageGroup::k64KB),
              CuResult::kSuccess);
    driver_.consumeElapsedNs();

    ASSERT_EQ(driver_.cuMemcpyDtoH(host, dev), CuResult::kSuccess);
    const TimeNs dtoh = driver_.consumeElapsedNs();
    EXPECT_GE(dtoh, driver_.latency().copyModel().launch_ns);
    ASSERT_EQ(driver_.cuMemcpyHtoD(dev, host), CuResult::kSuccess);
    EXPECT_GT(driver_.consumeElapsedNs(), 0u);
    EXPECT_EQ(driver_.counters().copy_dtoh, 1u);
    EXPECT_EQ(driver_.counters().copy_htod, 1u);

    ASSERT_EQ(driver_.cuMemHostRelease(host), CuResult::kSuccess);
    EXPECT_EQ(driver_.hostBytesInUse(), 0u);
    EXPECT_EQ(driver_.numLiveHostHandles(), 0u);
    driver_.vMemRelease(dev);
}

TEST_F(DriverTest, HostCopyRejectsBadHandlesAndSizeMismatch)
{
    MemHandle host = kInvalidHandle;
    ASSERT_EQ(driver_.cuMemHostCreate(&host, 128 * KiB),
              CuResult::kSuccess);
    MemHandle dev = kInvalidHandle;
    ASSERT_EQ(driver_.vMemCreate(&dev, PageGroup::k64KB),
              CuResult::kSuccess);
    // Sizes must match exactly (page-group granular swap).
    EXPECT_EQ(driver_.cuMemcpyDtoH(host, dev),
              CuResult::kErrorInvalidValue);
    // Host/device namespaces do not mix.
    EXPECT_EQ(driver_.cuMemcpyDtoH(dev, dev),
              CuResult::kErrorInvalidHandle);
    EXPECT_EQ(driver_.cuMemcpyHtoD(host, host),
              CuResult::kErrorInvalidHandle);
    EXPECT_EQ(driver_.cuMemHostRelease(dev),
              CuResult::kErrorInvalidHandle);
    // A host handle cannot be mapped into the GPU VA space.
    Addr va = 0;
    ASSERT_EQ(driver_.vMemReserve(&va, 128 * KiB), CuResult::kSuccess);
    EXPECT_EQ(driver_.vMemMap(va, host),
              CuResult::kErrorInvalidHandle);
    driver_.cuMemHostRelease(host);
    driver_.vMemRelease(dev);
}

TEST_F(DriverTest, CopyCostsFollowTheInstalledPcieModel)
{
    LatencyModel::CopyModel slow;
    slow.d2h_bytes_per_s = 1e9;
    slow.h2d_bytes_per_s = 2e9;
    slow.launch_ns = 1000;
    driver_.latency().setCopyModel(slow);
    MemHandle host = kInvalidHandle;
    ASSERT_EQ(driver_.cuMemHostCreate(&host, 2 * MiB),
              CuResult::kSuccess);
    MemHandle dev = kInvalidHandle;
    ASSERT_EQ(driver_.cuMemCreate(&dev, 2 * MiB), CuResult::kSuccess);
    driver_.consumeElapsedNs();

    ASSERT_EQ(driver_.cuMemcpyDtoH(host, dev), CuResult::kSuccess);
    // 2 MiB at 1 GB/s ~= 2.097 ms plus launch.
    EXPECT_NEAR(static_cast<double>(driver_.consumeElapsedNs()),
                1000.0 + 2.0 * MiB / 1e9 * 1e9, 1e3);
    ASSERT_EQ(driver_.cuMemcpyHtoD(dev, host), CuResult::kSuccess);
    EXPECT_NEAR(static_cast<double>(driver_.consumeElapsedNs()),
                1000.0 + 2.0 * MiB / 2e9 * 1e9, 1e3);
    driver_.cuMemHostRelease(host);
    driver_.cuMemRelease(dev);
}

} // namespace
} // namespace vattn::cuvmm
