/**
 * @file
 * End-to-end functional integration test: a miniature transformer
 * attention stack served through the vAttention runtime, validated
 * token-by-token against a host-side reference. Every step of
 * Algorithm 1 runs for real — reqId allocation, step() growing the
 * physical backing, KV appends through the virtual tensors, decode
 * attention over the (possibly strided) views, completion with
 * deferred reclamation and slot reuse — across page-group sizes and
 * both KV layouts.
 */

#include <tuple>

#include <gtest/gtest.h>

#include "attn/kernels.hh"
#include "attn/reference.hh"
#include "common/rng.hh"
#include "core/vattention.hh"
#include "cuvmm/driver.hh"
#include "test_util.hh"

namespace vattn
{
namespace
{

using Param = std::tuple<PageGroup, bool>; // (page group, slicing)

class FunctionalServing : public ::testing::TestWithParam<Param>
{
  protected:
    static constexpr int kLayers = 3;
    static constexpr int kKvHeads = 2;
    static constexpr int kQHeads = 4;
    static constexpr int kDim = 16;
    static constexpr int kBatch = 3;
};

TEST_P(FunctionalServing, MatchesHostReference)
{
    const auto [group, slicing] = GetParam();

    gpu::GpuDevice::Config dev_config;
    dev_config.mem_bytes = 512 * MiB;
    gpu::GpuDevice device(dev_config);
    cuvmm::Driver driver(device);

    core::Config config;
    config.num_layers = kLayers;
    config.num_kv_heads = kKvHeads;
    config.head_dim = kDim;
    config.max_batch_size = kBatch;
    config.max_context_len = 2048;
    config.page_group = group;
    config.use_driver_extension = group != PageGroup::k2MB;
    config.tensor_slicing = slicing;
    config.phys_budget_bytes = 256 * MiB;
    ASSERT_TRUE(config.validate().isOk());
    core::VAttention vattn(driver, config);

    const attn::AttnConfig attn_config{kQHeads, kKvHeads, kDim, true,
                                       0.0f};
    Rng rng(0xabc);

    // Host-side mirror of every request's KV at every layer.
    struct HostState
    {
        std::vector<tensor::HostTensor> k; // per layer [L, H, D]
        std::vector<tensor::HostTensor> v;
        i64 len = 0;
        int req_id = -1;
    };
    const i64 prompts[kBatch] = {70, 33, 128};
    const int decodes = 12;
    std::vector<HostState> requests(kBatch);
    std::vector<i64> seq_lens(kBatch, 0);

    // ---- Prefill every request -------------------------------------
    for (int r = 0; r < kBatch; ++r) {
        auto &host = requests[static_cast<std::size_t>(r)];
        auto id = vattn.allocReqId();
        ASSERT_TRUE(id.isOk());
        host.req_id = id.value();
        host.len = prompts[r];
        seq_lens[static_cast<std::size_t>(host.req_id)] = host.len;
        for (int layer = 0; layer < kLayers; ++layer) {
            host.k.emplace_back(
                tensor::Shape{2048, kKvHeads, kDim});
            host.v.emplace_back(
                tensor::Shape{2048, kKvHeads, kDim});
        }
    }
    ASSERT_TRUE(vattn.step(seq_lens).status.isOk());

    auto append_tokens = [&](HostState &host, i64 start, i64 count) {
        for (int layer = 0; layer < kLayers; ++layer) {
            auto view = vattn.requestView(layer, host.req_id);
            for (i64 t = start; t < start + count; ++t) {
                for (int h = 0; h < kKvHeads; ++h) {
                    float row[kDim];
                    for (int c = 0; c < kDim; ++c) {
                        // Quantize to fp16 so host and device agree
                        // bit-exactly.
                        row[c] = fp16BitsToFp32(fp32ToFp16Bits(
                            static_cast<float>(rng.uniform(-1, 1))));
                    }
                    view.storeK(t, h, row);
                    std::copy(
                        row, row + kDim,
                        host.k[static_cast<std::size_t>(layer)].row(
                            {t, h}));
                    for (int c = 0; c < kDim; ++c) {
                        row[c] = fp16BitsToFp32(fp32ToFp16Bits(
                            static_cast<float>(rng.uniform(-1, 1))));
                    }
                    view.storeV(t, h, row);
                    std::copy(
                        row, row + kDim,
                        host.v[static_cast<std::size_t>(layer)].row(
                            {t, h}));
                }
            }
        }
    };
    for (auto &host : requests) {
        append_tokens(host, 0, host.len);
    }

    // ---- Decode iterations -----------------------------------------
    tensor::HostTensor q(tensor::Shape{kQHeads, kDim});
    tensor::HostTensor out_device(q.shape());
    tensor::HostTensor out_host(q.shape());
    for (int iter = 0; iter < decodes; ++iter) {
        // Grow the KV backing for the incoming token.
        for (auto &host : requests) {
            ++host.len;
            seq_lens[static_cast<std::size_t>(host.req_id)] = host.len;
        }
        ASSERT_TRUE(vattn.step(seq_lens).status.isOk());
        vattn.computePhase(10 * kMsec);

        for (auto &host : requests) {
            append_tokens(host, host.len - 1, 1);
            q.fillRandom(rng);
            for (int layer = 0; layer < kLayers; ++layer) {
                auto view = vattn.requestView(layer, host.req_id);
                attn::flashDecode(attn_config, q, view, host.len,
                                  out_device);
                attn::HostKvView host_view(
                    &host.k[static_cast<std::size_t>(layer)],
                    &host.v[static_cast<std::size_t>(layer)]);
                attn::referenceDecode(attn_config, q, host_view,
                                      host.len, out_host);
                ASSERT_LT(out_host.maxAbsDiff(out_device), 2e-5f)
                    << "iter " << iter << " layer " << layer;
            }
        }
        ASSERT_TRUE(vattn.checkInvariants());
    }

    // ---- Completion + slot reuse -------------------------------------
    auto &done = requests[0];
    seq_lens[static_cast<std::size_t>(done.req_id)] = 0;
    ASSERT_TRUE(vattn.freeReqId(done.req_id).isOk());

    auto fresh = vattn.allocReqId();
    ASSERT_TRUE(fresh.isOk());
    EXPECT_EQ(fresh.value(), done.req_id); // deferred reclamation
    seq_lens[static_cast<std::size_t>(fresh.value())] = 40;
    auto stats = vattn.step(seq_lens);
    ASSERT_TRUE(stats.status.isOk());
    EXPECT_EQ(stats.handles_mapped, 0); // fully reused mappings

    // The reused slot serves a brand-new request correctly.
    HostState reborn;
    reborn.req_id = fresh.value();
    reborn.len = 40;
    for (int layer = 0; layer < kLayers; ++layer) {
        reborn.k.emplace_back(tensor::Shape{2048, kKvHeads, kDim});
        reborn.v.emplace_back(tensor::Shape{2048, kKvHeads, kDim});
    }
    append_tokens(reborn, 0, 40);
    q.fillRandom(rng);
    auto view = vattn.requestView(kLayers - 1, reborn.req_id);
    attn::flashDecode(attn_config, q, view, 40, out_device);
    attn::HostKvView host_view(&reborn.k.back(), &reborn.v.back());
    attn::referenceDecode(attn_config, q, host_view, 40, out_host);
    EXPECT_LT(out_host.maxAbsDiff(out_device), 2e-5f);
}

INSTANTIATE_TEST_SUITE_P(
    LayoutsAndGroups, FunctionalServing,
    ::testing::Values(std::make_tuple(PageGroup::k64KB, false),
                      std::make_tuple(PageGroup::k128KB, false),
                      std::make_tuple(PageGroup::k256KB, false),
                      std::make_tuple(PageGroup::k2MB, false),
                      std::make_tuple(PageGroup::k2MB, true),
                      std::make_tuple(PageGroup::k64KB, true)));

} // namespace
} // namespace vattn
