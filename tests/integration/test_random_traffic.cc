/**
 * @file
 * Randomized property tests ("fuzzing with invariants"):
 *
 *  - VAttention under random serving traffic — alloc/free/step/
 *    computePhase in random order with random lengths — must never
 *    violate its accounting invariants, leak page-groups, or leave a
 *    slot inconsistent, and must end with everything reclaimable.
 *
 *  - The VMM driver under random API sequences must agree with a
 *    simple reference model of reservation/handle/mapping state.
 */

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/vattention.hh"
#include "cuvmm/driver.hh"
#include "test_util.hh"

namespace vattn
{
namespace
{

class RandomTrafficTest : public ::testing::TestWithParam<PageGroup>
{
};

TEST_P(RandomTrafficTest, VattnInvariantsHoldUnderChaos)
{
    const PageGroup group = GetParam();
    gpu::GpuDevice::Config dev_config;
    dev_config.mem_bytes = 256 * MiB;
    gpu::GpuDevice device(dev_config);
    cuvmm::Driver driver(device);

    core::Config config;
    config.num_layers = 2;
    config.num_kv_heads = 2;
    config.head_dim = 8;
    config.max_batch_size = 6;
    config.max_context_len = 4096;
    config.page_group = group;
    config.use_driver_extension = group != PageGroup::k2MB;
    // Deliberately tight: forces OOM paths, stealing, preemption.
    config.phys_budget_bytes = 24 * bytes(group);
    core::VAttention vattn(driver, config);

    Rng rng(0x7'ea5e + static_cast<u64>(group));
    std::map<int, i64> active; // reqId -> current length
    const i64 max_len = config.max_context_len;

    for (int step = 0; step < 1500; ++step) {
        const double dice = rng.uniform();
        if (dice < 0.25) {
            // New request with a random prompt.
            const i64 prompt = rng.uniformInt(1, max_len / 2);
            const bool can = vattn.canAllocate(prompt);
            auto id = vattn.allocReqId();
            if (!id.isOk()) {
                EXPECT_FALSE(can);
            } else if (active.count(id.value())) {
                ADD_FAILURE() << "duplicate reqId " << id.value();
            } else {
                active[id.value()] = prompt;
            }
        } else if (dice < 0.40 && !active.empty()) {
            // Complete a random request.
            auto it = active.begin();
            std::advance(it, rng.uniformInt(
                                 0, static_cast<i64>(active.size()) -
                                        1));
            EXPECT_TRUE(vattn.freeReqId(it->first).isOk());
            active.erase(it);
        } else if (dice < 0.55 && !active.empty()) {
            // Grow a random request (decode burst).
            auto it = active.begin();
            std::advance(it, rng.uniformInt(
                                 0, static_cast<i64>(active.size()) -
                                        1));
            it->second =
                std::min<i64>(max_len, it->second +
                                           rng.uniformInt(1, 300));
        } else if (dice < 0.70) {
            vattn.computePhase(
                static_cast<TimeNs>(rng.uniformInt(0, 20)) * kMsec);
        } else {
            // An iteration: step over the current lengths.
            std::vector<i64> lens(6, 0);
            for (const auto &[id, len] : active) {
                lens[static_cast<std::size_t>(id)] = len;
            }
            auto result = vattn.step(lens);
            if (!result.status.isOk()) {
                ASSERT_EQ(result.status.code(),
                          ErrorCode::kOutOfMemory);
                // Preempt the request with the longest context.
                int victim = -1;
                i64 longest = -1;
                for (const auto &[id, len] : active) {
                    if (len > longest) {
                        longest = len;
                        victim = id;
                    }
                }
                ASSERT_GE(victim, 0);
                EXPECT_TRUE(vattn.freeReqId(victim).isOk());
                active.erase(victim);
            }
        }
        ASSERT_TRUE(vattn.checkInvariants()) << "step " << step;
    }

    // Drain: free everything; all memory must be reclaimable.
    for (const auto &[id, len] : active) {
        EXPECT_TRUE(vattn.freeReqId(id).isOk());
    }
    EXPECT_TRUE(vattn.checkInvariants());
    // Every mapped group is now cached (stealable), so a request
    // using the whole budget must be admissible.
    const i64 budget_tokens =
        std::min<i64>(config.max_context_len,
                      24 / vattn.geometry().numBuffers() *
                          vattn.geometry().tokensPerGroup());
    EXPECT_TRUE(vattn.canAllocate(budget_tokens));
}

INSTANTIATE_TEST_SUITE_P(PageGroups, RandomTrafficTest,
                         ::testing::Values(PageGroup::k64KB,
                                           PageGroup::k256KB,
                                           PageGroup::k2MB));

TEST(DriverFuzz, AgreesWithReferenceModel)
{
    gpu::GpuDevice::Config dev_config;
    dev_config.mem_bytes = 64 * MiB;
    gpu::GpuDevice device(dev_config);
    cuvmm::Driver driver(device);
    Rng rng(0xd21e);

    struct RefHandle
    {
        u64 size;
        std::set<Addr> mappings;
    };
    std::map<Addr, u64> reservations; // va -> size
    std::map<cuvmm::MemHandle, RefHandle> handles;
    u64 phys = 0;

    for (int step = 0; step < 4000; ++step) {
        switch (rng.uniformInt(0, 5)) {
          case 0: { // reserve
            Addr va = 0;
            const u64 size =
                static_cast<u64>(rng.uniformInt(1, 8)) * 64 * KiB;
            if (driver.vMemReserve(&va, size) ==
                cuvmm::CuResult::kSuccess) {
                reservations[va] = size;
            }
            break;
          }
          case 1: { // create
            const PageGroup group =
                kAllPageGroups[rng.uniformInt(0, 3)];
            cuvmm::MemHandle handle = cuvmm::kInvalidHandle;
            const auto r = driver.vMemCreate(&handle, group);
            if (phys + bytes(group) > 64 * MiB) {
                // Over capacity must fail; under capacity may still
                // fail on (rare) buddy fragmentation.
                EXPECT_NE(r, cuvmm::CuResult::kSuccess);
            }
            if (r == cuvmm::CuResult::kSuccess) {
                handles[handle] = RefHandle{bytes(group), {}};
                phys += bytes(group);
            }
            break;
          }
          case 2: { // map a random handle into a random reservation
            if (handles.empty() || reservations.empty()) {
                break;
            }
            auto hit = handles.begin();
            std::advance(hit,
                         rng.uniformInt(0, static_cast<i64>(
                                               handles.size()) -
                                               1));
            auto rit = reservations.begin();
            std::advance(rit,
                         rng.uniformInt(0, static_cast<i64>(
                                               reservations.size()) -
                                               1));
            if (rit->second < hit->second.size) {
                break;
            }
            const Addr va = rit->first;
            const auto r = driver.vMemMap(va, hit->first);
            // Backing page size dictates the VA alignment: 2MB
            // multiples use 2MB pages, everything else 64KB pages.
            const u64 align = hit->second.size % (2 * MiB) == 0
                                  ? 2 * MiB
                                  : 64 * KiB;
            if (hit->second.size > rit->second || va % align != 0) {
                EXPECT_NE(r, cuvmm::CuResult::kSuccess);
            }
            if (r == cuvmm::CuResult::kSuccess) {
                hit->second.mappings.insert(va);
            }
            break;
          }
          case 3: { // release a random handle (unmaps aliases too)
            if (handles.empty()) {
                break;
            }
            auto hit = handles.begin();
            std::advance(hit,
                         rng.uniformInt(0, static_cast<i64>(
                                               handles.size()) -
                                               1));
            ASSERT_EQ(driver.vMemRelease(hit->first),
                      cuvmm::CuResult::kSuccess);
            phys -= hit->second.size;
            handles.erase(hit);
            break;
          }
          case 4: { // free an empty reservation
            if (reservations.empty()) {
                break;
            }
            auto rit = reservations.begin();
            std::advance(rit,
                         rng.uniformInt(0, static_cast<i64>(
                                               reservations.size()) -
                                               1));
            bool mapped = false;
            for (const auto &[h, ref] : handles) {
                for (Addr va : ref.mappings) {
                    if (va >= rit->first &&
                        va < rit->first + rit->second) {
                        mapped = true;
                    }
                }
            }
            const auto r = driver.vMemFree(rit->first, rit->second);
            EXPECT_EQ(r == cuvmm::CuResult::kSuccess, !mapped);
            if (r == cuvmm::CuResult::kSuccess) {
                reservations.erase(rit);
            }
            break;
          }
          default: { // cross-check aggregate state
            EXPECT_EQ(driver.physBytesInUse(), phys);
            EXPECT_EQ(driver.numLiveHandles(), handles.size());
            u64 mapped_bytes = 0;
            for (const auto &[h, ref] : handles) {
                EXPECT_EQ(driver.numMappings(h), ref.mappings.size());
                mapped_bytes += ref.size * ref.mappings.size();
            }
            EXPECT_EQ(device.pageTable().mappedBytes(), mapped_bytes);
            break;
          }
        }
    }

    // Teardown: release everything; the device must come back whole.
    for (const auto &[h, ref] : handles) {
        EXPECT_EQ(driver.vMemRelease(h), cuvmm::CuResult::kSuccess);
    }
    for (const auto &[va, size] : reservations) {
        EXPECT_EQ(driver.vMemFree(va, size), cuvmm::CuResult::kSuccess);
    }
    EXPECT_EQ(driver.physBytesInUse(), 0u);
    EXPECT_EQ(device.freePhysBytes(), 64 * MiB);
    EXPECT_EQ(device.pageTable().numExtents(), 0u);
}

} // namespace
} // namespace vattn
