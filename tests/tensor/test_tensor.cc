#include <gtest/gtest.h>

#include "cuvmm/driver.hh"
#include "tensor/host_tensor.hh"
#include "tensor/virtual_tensor.hh"
#include "test_util.hh"

namespace vattn::tensor
{
namespace
{

TEST(Shape, BasicProperties)
{
    Shape shape{2, 3, 4};
    EXPECT_EQ(shape.rank(), 3);
    EXPECT_EQ(shape.numel(), 24);
    EXPECT_EQ(shape[0], 2);
    EXPECT_EQ(shape[2], 4);
    EXPECT_EQ(shape.toString(), "[2, 3, 4]");
    EXPECT_TRUE(shape == (Shape{2, 3, 4}));
    EXPECT_FALSE(shape == (Shape{2, 3}));
    EXPECT_EQ(Shape{}.numel(), 0);
}

TEST(Shape, ContiguousStrides)
{
    Shape shape{2, 3, 4};
    const auto strides = shape.contiguousStrides();
    EXPECT_EQ(strides[0], 12);
    EXPECT_EQ(strides[1], 4);
    EXPECT_EQ(strides[2], 1);
}

TEST(Shape, InvalidDimsPanic)
{
    test::ScopedThrowErrors guard;
    EXPECT_THROW(Shape({0, 2}), SimError);
    EXPECT_THROW(Shape({-1}), SimError);
}

TEST(Layout, IndexingAndBounds)
{
    test::ScopedThrowErrors guard;
    auto layout = Layout::contiguous(Shape{2, 3});
    EXPECT_EQ(layout.at({0, 0}), 0);
    EXPECT_EQ(layout.at({1, 2}), 5);
    EXPECT_TRUE(layout.isContiguous());
    EXPECT_THROW(layout.at({2, 0}), SimError);
    EXPECT_THROW(layout.at({0}), SimError); // rank mismatch
}

TEST(Layout, SliceAndSqueeze)
{
    auto layout = Layout::contiguous(Shape{4, 5, 6});
    auto sliced = layout.slice(1, 2, 2); // [4, 2, 6] starting at row 2
    EXPECT_EQ(sliced.shape[1], 2);
    EXPECT_EQ(sliced.offset, 2 * 6);
    EXPECT_EQ(sliced.at({0, 0, 0}), 12);
    EXPECT_EQ(sliced.at({1, 1, 3}), 12 + 30 + 6 + 3);
    EXPECT_FALSE(sliced.isContiguous());

    auto single = layout.slice(0, 3, 1); // [1, 5, 6]
    auto squeezed = single.squeeze(0);   // [5, 6]
    EXPECT_EQ(squeezed.shape.rank(), 2);
    EXPECT_EQ(squeezed.at({0, 0}), 3 * 30);
    EXPECT_EQ(squeezed.at({4, 5}), 3 * 30 + 4 * 6 + 5);
}

TEST(Layout, SliceValidation)
{
    test::ScopedThrowErrors guard;
    auto layout = Layout::contiguous(Shape{4, 4});
    EXPECT_THROW(layout.slice(0, 3, 2), SimError);
    EXPECT_THROW(layout.slice(2, 0, 1), SimError);
    EXPECT_THROW(layout.squeeze(0), SimError); // dim size 4 != 1
}

TEST(HostTensor, FillAndAt)
{
    HostTensor t(Shape{2, 3});
    t.fill(1.5f);
    EXPECT_FLOAT_EQ(t.at({1, 2}), 1.5f);
    t.at({0, 1}) = 7.0f;
    EXPECT_FLOAT_EQ(t.at({0, 1}), 7.0f);
    EXPECT_FLOAT_EQ(t.row({0})[1], 7.0f);
}

TEST(HostTensor, MaxAbsDiff)
{
    HostTensor a(Shape{4});
    HostTensor b(Shape{4});
    a.fill(1.0f);
    b.fill(1.0f);
    b.at({2}) = 1.5f;
    EXPECT_FLOAT_EQ(a.maxAbsDiff(b), 0.5f);
}

class VirtualTensorTest : public ::testing::Test
{
  protected:
    VirtualTensorTest()
        : device_(makeConfig()), driver_(device_)
    {
    }

    static gpu::GpuDevice::Config
    makeConfig()
    {
        gpu::GpuDevice::Config config;
        config.mem_bytes = 64 * MiB;
        return config;
    }

    Addr
    committed(u64 size)
    {
        Addr ptr = 0;
        const auto r = driver_.cudaMalloc(&ptr, size);
        panic_if(r != cuvmm::CuResult::kSuccess, "cudaMalloc failed");
        return ptr;
    }

    gpu::GpuDevice device_;
    cuvmm::Driver driver_;
};

TEST_F(VirtualTensorTest, ElementRoundtripF16)
{
    const Addr base = committed(1 * MiB);
    VirtualTensor t(&device_, base,
                    Layout::contiguous(Shape{8, 4, 16}), DType::kF16);
    t.writeElem({3, 2, 5}, 1.25f);
    EXPECT_FLOAT_EQ(t.readElem({3, 2, 5}), 1.25f);
    EXPECT_FLOAT_EQ(t.readElem({3, 2, 6}), 0.0f);
    EXPECT_EQ(t.denseBytes(), 8u * 4 * 16 * 2);
}

TEST_F(VirtualTensorTest, ElementRoundtripF32)
{
    const Addr base = committed(1 * MiB);
    VirtualTensor t(&device_, base,
                    Layout::contiguous(Shape{4, 4}), DType::kF32);
    t.writeElem({1, 3}, 3.14159f);
    EXPECT_FLOAT_EQ(t.readElem({1, 3}), 3.14159f);
}

TEST_F(VirtualTensorTest, RowIo)
{
    const Addr base = committed(1 * MiB);
    VirtualTensor t(&device_, base,
                    Layout::contiguous(Shape{4, 8}), DType::kF16);
    float in[8];
    for (int i = 0; i < 8; ++i) {
        in[i] = static_cast<float>(i) * 0.5f;
    }
    const i64 idx[2] = {2, 0};
    t.writeRow(idx, 2, in, 8);
    float out[8] = {};
    t.readRow(idx, 2, out, 8);
    for (int i = 0; i < 8; ++i) {
        EXPECT_FLOAT_EQ(out[i], in[i]);
    }
}

TEST_F(VirtualTensorTest, SliceSharesStorage)
{
    const Addr base = committed(1 * MiB);
    VirtualTensor t(&device_, base,
                    Layout::contiguous(Shape{4, 4, 8}), DType::kF16);
    auto view = t.slice(0, 2, 1).squeeze(0); // [4, 8] of batch row 2
    view.writeElem({1, 3}, 9.0f);
    EXPECT_FLOAT_EQ(t.readElem({2, 1, 3}), 9.0f);
    EXPECT_EQ(view.elemVa({1, 3}), t.elemVa({2, 1, 3}));
}

TEST_F(VirtualTensorTest, FullyBackedReflectsMappings)
{
    // Reserve 4MB but back only the first 2MB.
    Addr va = 0;
    ASSERT_EQ(driver_.cuMemAddressReserve(&va, 4 * MiB),
              cuvmm::CuResult::kSuccess);
    cuvmm::MemHandle handle = cuvmm::kInvalidHandle;
    ASSERT_EQ(driver_.cuMemCreate(&handle, 2 * MiB),
              cuvmm::CuResult::kSuccess);
    ASSERT_EQ(driver_.cuMemMap(va, 2 * MiB, 0, handle),
              cuvmm::CuResult::kSuccess);
    ASSERT_EQ(driver_.cuMemSetAccess(va, 2 * MiB),
              cuvmm::CuResult::kSuccess);

    VirtualTensor small(&device_, va,
                        Layout::contiguous(Shape{1024, 512}),
                        DType::kF16); // 1MB
    EXPECT_TRUE(small.fullyBacked());
    VirtualTensor big(&device_, va,
                      Layout::contiguous(Shape{4096, 512}),
                      DType::kF16); // 4MB
    EXPECT_FALSE(big.fullyBacked());
}

TEST_F(VirtualTensorTest, TouchingUnbackedRegionFaults)
{
    test::ScopedThrowErrors guard;
    Addr va = 0;
    ASSERT_EQ(driver_.cuMemAddressReserve(&va, 4 * MiB),
              cuvmm::CuResult::kSuccess);
    VirtualTensor t(&device_, va, Layout::contiguous(Shape{16, 16}),
                    DType::kF16);
    EXPECT_THROW(t.writeElem({0, 0}, 1.0f), SimError);
    EXPECT_THROW(t.readElem({0, 0}), SimError);
}

} // namespace
} // namespace vattn::tensor
