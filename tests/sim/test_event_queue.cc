/**
 * @file
 * sim::EventQueue: min-heap ordering over TimeNs, FIFO tie-breaking
 * (the determinism contract the engine's arrival queue and the
 * cluster's event-loop coordinator both lean on), storage reuse and
 * the empty-queue panics.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "sim/event_queue.hh"
#include "test_util.hh"

namespace vattn::sim
{
namespace
{

TEST(EventQueueTest, PopsInTimeOrder)
{
    EventQueue<int> queue;
    queue.push(30, 3);
    queue.push(10, 1);
    queue.push(20, 2);
    EXPECT_EQ(queue.size(), 3u);
    EXPECT_EQ(queue.nextTimeNs(), TimeNs{10});
    EXPECT_EQ(queue.pop(), 1);
    EXPECT_EQ(queue.pop(), 2);
    EXPECT_EQ(queue.pop(), 3);
    EXPECT_TRUE(queue.empty());
}

TEST(EventQueueTest, SameInstantPopsInPushOrder)
{
    // The FIFO tie-break is what makes the engine's arrival admission
    // reproduce the historical stable_sort: same-instant events leave
    // in exactly the order they were scheduled.
    EventQueue<int> queue;
    for (int i = 0; i < 32; ++i) {
        queue.push(100, i);
    }
    queue.push(50, -1);
    EXPECT_EQ(queue.pop(), -1);
    for (int i = 0; i < 32; ++i) {
        EXPECT_EQ(queue.pop(), i);
    }
}

TEST(EventQueueTest, InterleavedPushPopKeepsOrdering)
{
    EventQueue<u64> queue;
    Rng rng(99);
    // Steady-state churn: push a batch, pop the earliest half, repeat.
    // Every popped timestamp must be non-decreasing once the queue has
    // seen everything earlier (we track the floor explicitly).
    std::vector<TimeNs> popped;
    TimeNs floor = 0;
    for (int round = 0; round < 50; ++round) {
        for (int i = 0; i < 8; ++i) {
            // New events never predate what already left the queue
            // (time only moves forward for producers too).
            const TimeNs t =
                floor + static_cast<TimeNs>(rng.uniformInt(0, 1000));
            queue.push(t, t);
        }
        for (int i = 0; i < 4 && !queue.empty(); ++i) {
            const TimeNs t = queue.nextTimeNs();
            EXPECT_EQ(queue.pop(), t);
            popped.push_back(t);
            floor = t;
        }
    }
    while (!queue.empty()) {
        popped.push_back(queue.pop());
    }
    for (std::size_t i = 1; i < popped.size(); ++i) {
        EXPECT_LE(popped[i - 1], popped[i]);
    }
}

TEST(EventQueueTest, PeekDoesNotRemove)
{
    EventQueue<std::string> queue;
    queue.push(7, "first");
    queue.push(9, "second");
    EXPECT_EQ(queue.peek(), "first");
    EXPECT_EQ(queue.size(), 2u);
    EXPECT_EQ(queue.pop(), "first");
    EXPECT_EQ(queue.peek(), "second");
}

TEST(EventQueueTest, ClearEmptiesAndResetsTieBreaks)
{
    EventQueue<int> queue;
    queue.push(5, 1);
    queue.push(5, 2);
    queue.clear();
    EXPECT_TRUE(queue.empty());
    // Tie-break sequence restarts: push order still rules.
    queue.push(5, 10);
    queue.push(5, 11);
    EXPECT_EQ(queue.pop(), 10);
    EXPECT_EQ(queue.pop(), 11);
}

TEST(EventQueueTest, MovableOnlyPayload)
{
    EventQueue<std::unique_ptr<int>> queue;
    queue.push(2, std::make_unique<int>(2));
    queue.push(1, std::make_unique<int>(1));
    EXPECT_EQ(*queue.pop(), 1);
    EXPECT_EQ(*queue.pop(), 2);
}

TEST(EventQueueTest, NoEventSentinelSortsAfterEverything)
{
    EXPECT_GT(kNoEventNs, TimeNs{0});
    // Any real timestamp the simulation can produce sorts before it.
    EXPECT_LT(static_cast<TimeNs>(1) << 60, kNoEventNs);
}

TEST(EventQueueTest, EmptyAccessPanics)
{
    test::ScopedThrowErrors throw_errors;
    EventQueue<int> queue;
    EXPECT_THROW((void)queue.nextTimeNs(), SimError);
    EXPECT_THROW((void)queue.peek(), SimError);
    EXPECT_THROW((void)queue.pop(), SimError);
}

} // namespace
} // namespace vattn::sim
