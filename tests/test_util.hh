/**
 * @file
 * Shared helpers for the vattn test suite.
 */

#ifndef VATTN_TESTS_TEST_UTIL_HH
#define VATTN_TESTS_TEST_UTIL_HH

#include "common/logging.hh"

namespace vattn::test
{

/** Make panic()/fatal() throw SimError within a scope. */
class ScopedThrowErrors
{
  public:
    ScopedThrowErrors() { log_detail::setThrowOnError(true); }
    ~ScopedThrowErrors() { log_detail::setThrowOnError(false); }
};

} // namespace vattn::test

#endif // VATTN_TESTS_TEST_UTIL_HH
