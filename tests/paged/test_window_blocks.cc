/**
 * @file
 * Dead-lead block handling in the paged layer: RequestBlocks'
 * advanceLeadTo frees the leading blocks a sliding window has killed
 * (parking hash-cached ones on the evictable LRU instead), keeps
 * indexing absolute with kNoBlock placeholders, never rewinds, and
 * lets fresh long requests skip the dead region without allocating it.
 */

#include <gtest/gtest.h>

#include "paged/block_manager.hh"
#include "test_util.hh"

namespace vattn::paged
{
namespace
{

TEST(RequestBlocksLead, AdvanceFreesLeadingBlocks)
{
    BlockManager manager(16, 16);
    RequestBlocks blocks(&manager);
    ASSERT_TRUE(blocks.ensureTokens(100).isOk()); // 7 blocks
    ASSERT_EQ(manager.numAllocated(), 7);

    blocks.advanceLeadTo(3);
    EXPECT_EQ(blocks.lead(), 3);
    EXPECT_EQ(blocks.liveBlockCount(), 4);
    EXPECT_EQ(manager.numAllocated(), 4);
    // Dead entries stay in the table as kNoBlock so logical indexing
    // remains absolute.
    EXPECT_EQ(blocks.blocks()[0], RequestBlocks::kNoBlock);
    EXPECT_EQ(blocks.blocks()[2], RequestBlocks::kNoBlock);
    EXPECT_NE(blocks.blocks()[3], RequestBlocks::kNoBlock);

    // The lead never rewinds.
    blocks.advanceLeadTo(1);
    EXPECT_EQ(blocks.lead(), 3);

    blocks.releaseAll();
    EXPECT_EQ(manager.numAllocated(), 0);
    EXPECT_EQ(blocks.lead(), 0);
}

TEST(RequestBlocksLead, FreshRequestSkipsTheDeadRegion)
{
    BlockManager manager(16, 16);
    RequestBlocks blocks(&manager);
    // A long prompt on a windowed layer group starts with its lead
    // already deep in the context: the dead region must never be
    // allocated at all.
    blocks.advanceLeadTo(5);
    EXPECT_EQ(blocks.lead(), 5);
    EXPECT_EQ(manager.numAllocated(), 0);

    ASSERT_TRUE(blocks.ensureTokens(7 * 16).isOk());
    EXPECT_EQ(manager.numAllocated(), 2); // blocks 5 and 6 only
    EXPECT_EQ(blocks.liveBlockCount(), 2);
    EXPECT_EQ(blocks.blocks()[4], RequestBlocks::kNoBlock);
    EXPECT_NE(blocks.blocks()[5], RequestBlocks::kNoBlock);
    EXPECT_TRUE(manager.checkInvariants());
}

TEST(RequestBlocksLead, HashCachedBlocksParkInsteadOfFreeing)
{
    BlockManager manager(16, 16, /*enable_prefix_cache=*/true);
    RequestBlocks blocks(&manager);
    ASSERT_TRUE(blocks.ensureTokens(4 * 16).isOk());
    const i32 hashed = blocks.blocks()[0];
    manager.setBlockHash(hashed, 0xabcdu);

    blocks.advanceLeadTo(2);
    // The hashed block survives on the evictable LRU (it may serve a
    // future prefix hit); the unhashed one goes straight to the free
    // list.
    EXPECT_EQ(manager.numEvictable(), 1);
    EXPECT_EQ(manager.lookupHash(0xabcdu), hashed);
    EXPECT_EQ(manager.refCount(hashed), 0);
    EXPECT_TRUE(manager.checkInvariants());
}

TEST(RequestBlocksLead, ShareFromRejectsTrimmedParents)
{
    BlockManager manager(16, 16, /*enable_prefix_cache=*/true);
    RequestBlocks parent(&manager);
    ASSERT_TRUE(parent.ensureTokens(4 * 16).isOk());
    parent.advanceLeadTo(2);

    RequestBlocks child(&manager);
    // A window-trimmed parent has no intact prefix to share.
    const auto status = child.shareFrom(parent, 16);
    EXPECT_FALSE(status.isOk());
}

} // namespace
} // namespace vattn::paged
