#include <gtest/gtest.h>

#include "paged/block_manager.hh"
#include "test_util.hh"

namespace vattn::paged
{
namespace
{

TEST(BlockCache, DisabledModeFreesEagerly)
{
    BlockManager manager(8, 16, /*enable_prefix_cache=*/false);
    auto block = manager.allocBlock();
    ASSERT_TRUE(block.isOk());
    manager.setBlockHash(block.value(), 42); // no-op when disabled
    ASSERT_TRUE(manager.freeBlock(block.value()).isOk());
    EXPECT_EQ(manager.numFree(), 8);
    EXPECT_EQ(manager.numEvictable(), 0);
    EXPECT_EQ(manager.lookupHash(42), -1);
    EXPECT_TRUE(manager.checkInvariants());
}

TEST(BlockCache, HashedBlockParksOnReleaseAndRevives)
{
    BlockManager manager(4, 16, /*enable_prefix_cache=*/true);
    auto block = manager.allocBlock();
    ASSERT_TRUE(block.isOk());
    manager.setBlockHash(block.value(), 7);
    ASSERT_TRUE(manager.freeBlock(block.value()).isOk());
    // Parked, not freed: still allocatable, still findable.
    EXPECT_EQ(manager.numFree(), 3);
    EXPECT_EQ(manager.numEvictable(), 1);
    EXPECT_EQ(manager.numAllocatable(), 4);
    EXPECT_EQ(manager.numLive(), 0);
    EXPECT_EQ(manager.lookupHash(7), block.value());

    // A prefix hit revives it with a fresh reference.
    ASSERT_TRUE(manager.refSharedBlock(block.value()).isOk());
    EXPECT_EQ(manager.refCount(block.value()), 1);
    EXPECT_EQ(manager.numEvictable(), 0);
    EXPECT_EQ(manager.lookupHash(7), block.value());
    EXPECT_TRUE(manager.checkInvariants());
}

TEST(BlockCache, SharedLiveBlockRefCounts)
{
    BlockManager manager(4, 16, /*enable_prefix_cache=*/true);
    auto block = manager.allocBlock();
    ASSERT_TRUE(block.isOk());
    manager.setBlockHash(block.value(), 9);
    // A second request shares the live block.
    ASSERT_TRUE(manager.refSharedBlock(block.value()).isOk());
    EXPECT_EQ(manager.refCount(block.value()), 2);
    // Owner leaves: the sharer keeps the block live.
    ASSERT_TRUE(manager.freeBlock(block.value()).isOk());
    EXPECT_EQ(manager.refCount(block.value()), 1);
    EXPECT_EQ(manager.numEvictable(), 0);
    // Last reference: parked for future hits.
    ASSERT_TRUE(manager.freeBlock(block.value()).isOk());
    EXPECT_EQ(manager.numEvictable(), 1);
    EXPECT_TRUE(manager.checkInvariants());
}

TEST(BlockCache, AllocationEvictsLruCachedBlock)
{
    BlockManager manager(2, 16, /*enable_prefix_cache=*/true);
    auto a = manager.allocBlock();
    auto b = manager.allocBlock();
    ASSERT_TRUE(a.isOk());
    ASSERT_TRUE(b.isOk());
    manager.setBlockHash(a.value(), 1);
    manager.setBlockHash(b.value(), 2);
    // Park a first, then b: a is the LRU eviction victim.
    ASSERT_TRUE(manager.freeBlock(a.value()).isOk());
    ASSERT_TRUE(manager.freeBlock(b.value()).isOk());
    EXPECT_EQ(manager.numEvictable(), 2);

    auto c = manager.allocBlock();
    ASSERT_TRUE(c.isOk());
    EXPECT_EQ(c.value(), a.value()); // oldest parked block reused
    EXPECT_EQ(manager.lookupHash(1), -1);
    EXPECT_EQ(manager.lookupHash(2), b.value());
    EXPECT_TRUE(manager.checkInvariants());

    // Exhaust the rest, then genuinely OOM.
    auto d = manager.allocBlock();
    ASSERT_TRUE(d.isOk());
    EXPECT_EQ(manager.allocBlock().code(), ErrorCode::kOutOfMemory);
}

TEST(BlockCache, NewerBlockSupersedesHashMapping)
{
    BlockManager manager(4, 16, /*enable_prefix_cache=*/true);
    auto a = manager.allocBlock();
    auto b = manager.allocBlock();
    ASSERT_TRUE(a.isOk());
    ASSERT_TRUE(b.isOk());
    manager.setBlockHash(a.value(), 5);
    manager.setBlockHash(b.value(), 5); // same content, newer block
    EXPECT_EQ(manager.lookupHash(5), b.value());
    // The superseded block frees instead of parking (it would never
    // be found again).
    ASSERT_TRUE(manager.freeBlock(a.value()).isOk());
    EXPECT_EQ(manager.numEvictable(), 0);
    EXPECT_EQ(manager.numFree(), 3);
    ASSERT_TRUE(manager.freeBlock(b.value()).isOk());
    EXPECT_EQ(manager.numEvictable(), 1);
    EXPECT_TRUE(manager.checkInvariants());
}

TEST(BlockCache, SetBlockHashUnparksSupersededEvictableHolder)
{
    BlockManager manager(4, 16, /*enable_prefix_cache=*/true);
    auto a = manager.allocBlock();
    ASSERT_TRUE(a.isOk());
    manager.setBlockHash(a.value(), 21);
    ASSERT_TRUE(manager.freeBlock(a.value()).isOk());
    ASSERT_EQ(manager.numEvictable(), 1);

    // A fresh block recomputes the same content: the parked copy can
    // never be found again, so it must return to the free list (a
    // stale evictable entry would break the invariants forever).
    auto b = manager.allocBlock();
    ASSERT_TRUE(b.isOk());
    ASSERT_NE(b.value(), a.value());
    manager.setBlockHash(b.value(), 21);
    EXPECT_EQ(manager.lookupHash(21), b.value());
    EXPECT_EQ(manager.numEvictable(), 0);
    EXPECT_EQ(manager.numFree(), 3);
    EXPECT_TRUE(manager.checkInvariants());
    ASSERT_TRUE(manager.freeBlock(b.value()).isOk());
    EXPECT_TRUE(manager.checkInvariants());
}

TEST(BlockCache, AdoptedSharedBlocksSurviveParentRelease)
{
    BlockManager manager(8, 16, /*enable_prefix_cache=*/true);
    RequestBlocks parent(&manager);
    ASSERT_TRUE(parent.ensureTokens(32).isOk());
    manager.setBlockHash(parent.blocks()[0], 11);
    manager.setBlockHash(parent.blocks()[1], 12);

    RequestBlocks child(&manager);
    for (u64 hash : {u64{11}, u64{12}}) {
        const i32 block = manager.lookupHash(hash);
        ASSERT_GE(block, 0);
        ASSERT_TRUE(manager.refSharedBlock(block).isOk());
        child.adoptBlock(block);
    }
    parent.releaseAll();
    // Content still live through the child's references.
    EXPECT_EQ(manager.numLive(), 2);
    child.releaseAll();
    EXPECT_EQ(manager.numEvictable(), 2);
    EXPECT_TRUE(manager.checkInvariants());
}

TEST(BlockSwap, RoundTripMovesBlocksThroughTheCpuPool)
{
    BlockManager manager(4, 16, /*enable_prefix_cache=*/false,
                         /*num_cpu_blocks=*/2);
    EXPECT_EQ(manager.numCpuBlocks(), 2);
    EXPECT_EQ(manager.numCpuFree(), 2);

    auto block = manager.allocBlock();
    ASSERT_TRUE(block.isOk());
    auto cpu = manager.swapOutBlock(block.value());
    ASSERT_TRUE(cpu.isOk());
    // The device block is free again, the CPU block is occupied.
    EXPECT_EQ(manager.numFree(), 4);
    EXPECT_EQ(manager.numCpuInUse(), 1);
    EXPECT_TRUE(manager.checkInvariants());

    auto back = manager.swapInBlock(cpu.value());
    ASSERT_TRUE(back.isOk());
    EXPECT_EQ(manager.refCount(back.value()), 1);
    EXPECT_EQ(manager.numCpuFree(), 2);
    EXPECT_TRUE(manager.checkInvariants());
    manager.freeBlock(back.value()).expectOk("free");
}

TEST(BlockSwap, RefusesSharedAndFreeBlocks)
{
    BlockManager manager(4, 16, /*enable_prefix_cache=*/true,
                         /*num_cpu_blocks=*/4);
    auto block = manager.allocBlock();
    ASSERT_TRUE(block.isOk());
    manager.addRef(block.value()).expectOk("share");
    // Shared (prefix-aliased) blocks must stay resident.
    EXPECT_EQ(manager.swapOutBlock(block.value()).code(),
              ErrorCode::kFailedPrecondition);
    manager.freeBlock(block.value()).expectOk("unshare");
    // Refcount back to 1: swappable now.
    EXPECT_TRUE(manager.swapOutBlock(block.value()).isOk());
    // A free block has nothing to move.
    auto other = manager.allocBlock();
    ASSERT_TRUE(other.isOk());
    manager.freeBlock(other.value()).expectOk("free");
    EXPECT_EQ(manager.swapOutBlock(other.value()).code(),
              ErrorCode::kFailedPrecondition);
    EXPECT_TRUE(manager.checkInvariants());
}

TEST(BlockSwap, SwapOutDropsTheBlockHash)
{
    BlockManager manager(4, 16, /*enable_prefix_cache=*/true,
                         /*num_cpu_blocks=*/2);
    auto block = manager.allocBlock();
    ASSERT_TRUE(block.isOk());
    manager.setBlockHash(block.value(), 0xabcu);
    ASSERT_EQ(manager.lookupHash(0xabcu), block.value());
    auto cpu = manager.swapOutBlock(block.value());
    ASSERT_TRUE(cpu.isOk());
    // The content left the device: the hash may not match anymore.
    EXPECT_EQ(manager.lookupHash(0xabcu), -1);
    manager.freeCpuBlock(cpu.value()).expectOk("drop CPU block");
    EXPECT_EQ(manager.numCpuFree(), 2);
    EXPECT_TRUE(manager.checkInvariants());
}

TEST(BlockSwap, CpuPoolExhaustionAndDisabledPool)
{
    BlockManager manager(4, 16, /*enable_prefix_cache=*/false,
                         /*num_cpu_blocks=*/1);
    auto a = manager.allocBlock();
    auto b = manager.allocBlock();
    ASSERT_TRUE(a.isOk());
    ASSERT_TRUE(b.isOk());
    ASSERT_TRUE(manager.swapOutBlock(a.value()).isOk());
    EXPECT_EQ(manager.swapOutBlock(b.value()).code(),
              ErrorCode::kOutOfMemory);

    BlockManager no_pool(4, 16);
    auto c = no_pool.allocBlock();
    ASSERT_TRUE(c.isOk());
    EXPECT_EQ(no_pool.swapOutBlock(c.value()).code(),
              ErrorCode::kOutOfMemory);
    EXPECT_EQ(no_pool.numCpuBlocks(), 0);
}

TEST(BlockSwap, SwapInEvictsCachedBlocksWhenDeviceIsFull)
{
    BlockManager manager(2, 16, /*enable_prefix_cache=*/true,
                         /*num_cpu_blocks=*/2);
    // One block swapped out...
    auto victim = manager.allocBlock();
    ASSERT_TRUE(victim.isOk());
    auto cpu = manager.swapOutBlock(victim.value());
    ASSERT_TRUE(cpu.isOk());
    // ...then fill the device with hashed blocks parked evictable.
    auto a = manager.allocBlock();
    auto b = manager.allocBlock();
    ASSERT_TRUE(a.isOk());
    ASSERT_TRUE(b.isOk());
    manager.setBlockHash(a.value(), 1);
    manager.setBlockHash(b.value(), 2);
    manager.freeBlock(a.value()).expectOk("park a");
    manager.freeBlock(b.value()).expectOk("park b");
    ASSERT_EQ(manager.numFree(), 0);
    ASSERT_EQ(manager.numEvictable(), 2);
    // Swap-in must evict the LRU cached block to make room.
    auto back = manager.swapInBlock(cpu.value());
    ASSERT_TRUE(back.isOk());
    EXPECT_EQ(manager.numEvictable(), 1);
    EXPECT_TRUE(manager.checkInvariants());
}

} // namespace
} // namespace vattn::paged
