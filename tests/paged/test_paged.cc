#include <gtest/gtest.h>

#include "cuvmm/driver.hh"
#include "paged/block_manager.hh"
#include "paged/block_table.hh"
#include "paged/paged_kv_cache.hh"
#include "test_util.hh"

namespace vattn::paged
{
namespace
{

TEST(BlockManager, AllocFreeCycle)
{
    BlockManager manager(8, 16);
    EXPECT_EQ(manager.numFree(), 8);
    auto a = manager.allocBlock();
    auto b = manager.allocBlock();
    ASSERT_TRUE(a.isOk());
    ASSERT_TRUE(b.isOk());
    EXPECT_NE(a.value(), b.value());
    EXPECT_EQ(manager.numFree(), 6);
    EXPECT_TRUE(manager.freeBlock(a.value()).isOk());
    EXPECT_EQ(manager.numFree(), 7);
    EXPECT_TRUE(manager.checkInvariants());
}

TEST(BlockManager, ExhaustionReturnsOom)
{
    BlockManager manager(2, 16);
    ASSERT_TRUE(manager.allocBlock().isOk());
    ASSERT_TRUE(manager.allocBlock().isOk());
    EXPECT_EQ(manager.allocBlock().code(), ErrorCode::kOutOfMemory);
}

TEST(BlockManager, RefCounting)
{
    BlockManager manager(4, 16);
    auto block = manager.allocBlock();
    ASSERT_TRUE(block.isOk());
    EXPECT_TRUE(manager.addRef(block.value()).isOk());
    EXPECT_EQ(manager.refCount(block.value()), 2);
    EXPECT_TRUE(manager.freeBlock(block.value()).isOk());
    EXPECT_EQ(manager.numFree(), 3); // still referenced
    EXPECT_TRUE(manager.freeBlock(block.value()).isOk());
    EXPECT_EQ(manager.numFree(), 4);
    EXPECT_FALSE(manager.freeBlock(block.value()).isOk()); // double free
    EXPECT_FALSE(manager.addRef(block.value()).isOk());
}

TEST(BlockManager, BlocksForTokens)
{
    BlockManager manager(100, 16);
    EXPECT_EQ(manager.blocksFor(0), 0);
    EXPECT_EQ(manager.blocksFor(1), 1);
    EXPECT_EQ(manager.blocksFor(16), 1);
    EXPECT_EQ(manager.blocksFor(17), 2);
    EXPECT_EQ(manager.blocksFor(160), 10);
}

TEST(RequestBlocks, GrowsMonotonically)
{
    BlockManager manager(10, 16);
    RequestBlocks blocks(&manager);
    ASSERT_TRUE(blocks.ensureTokens(20).isOk()); // 2 blocks
    EXPECT_EQ(blocks.blocks().size(), 2u);
    ASSERT_TRUE(blocks.ensureTokens(10).isOk()); // no shrink
    EXPECT_EQ(blocks.blocks().size(), 2u);
    ASSERT_TRUE(blocks.ensureTokens(64).isOk());
    EXPECT_EQ(blocks.blocks().size(), 4u);
    EXPECT_EQ(blocks.numTokensCapacity(), 64);
    blocks.releaseAll();
    EXPECT_EQ(manager.numFree(), 10);
}

TEST(RequestBlocks, DtorReleases)
{
    BlockManager manager(10, 16);
    {
        RequestBlocks blocks(&manager);
        ASSERT_TRUE(blocks.ensureTokens(100).isOk());
        EXPECT_EQ(manager.numFree(), 3);
    }
    EXPECT_EQ(manager.numFree(), 10);
}

TEST(RequestBlocks, OomSurfacedMidGrowth)
{
    BlockManager manager(3, 16);
    RequestBlocks blocks(&manager);
    const auto status = blocks.ensureTokens(100); // needs 7
    EXPECT_EQ(status.code(), ErrorCode::kOutOfMemory);
    // Partial growth retained (vLLM would preempt at this point).
    EXPECT_EQ(blocks.blocks().size(), 3u);
}

TEST(PaddedBlockTable, PadsToLongestRequest)
{
    std::vector<i32> r0 = {5};
    std::vector<i32> r1 = {1, 2, 3, 4};
    auto table = PaddedBlockTable::build({&r0, &r1});
    EXPECT_EQ(table.batch, 2);
    EXPECT_EQ(table.max_blocks, 4);
    // The padding is the §3.3.2 cost driver: 8 slots for 5 blocks.
    EXPECT_EQ(table.numEntries(), 8);
    EXPECT_EQ(table.at(0, 0), 5);
    EXPECT_EQ(table.at(0, 1), -1);
    EXPECT_EQ(table.at(1, 3), 4);
}

TEST(CompressedBlockTable, CsrLayout)
{
    std::vector<i32> r0 = {5};
    std::vector<i32> r1 = {1, 2, 3, 4};
    auto table = CompressedBlockTable::build({&r0, &r1});
    EXPECT_EQ(table.batch(), 2);
    EXPECT_EQ(table.numEntries(), 5); // no padding
    auto [begin0, end0] = table.row(0);
    EXPECT_EQ(end0 - begin0, 1);
    EXPECT_EQ(*begin0, 5);
    auto [begin1, end1] = table.row(1);
    EXPECT_EQ(end1 - begin1, 4);
    EXPECT_EQ(begin1[2], 3);
}

TEST(BlockTables, PaddedCostExceedsCsrWithSkew)
{
    // One long and many short requests: exactly the pathological
    // padding case the paper describes.
    std::vector<i32> longreq(1000);
    std::vector<i32> shortreq = {1};
    std::vector<const std::vector<i32> *> batch;
    batch.push_back(&longreq);
    for (int i = 0; i < 31; ++i) {
        batch.push_back(&shortreq);
    }
    auto padded = PaddedBlockTable::build(batch);
    auto csr = CompressedBlockTable::build(batch);
    EXPECT_EQ(padded.numEntries(), 32 * 1000);
    EXPECT_EQ(csr.numEntries(), 1000 + 31);
    EXPECT_GT(padded.numEntries(), 30 * csr.numEntries());
}

class PagedCacheTest : public ::testing::Test
{
  protected:
    PagedCacheTest() : device_(makeConfig()), driver_(device_) {}

    static gpu::GpuDevice::Config
    makeConfig()
    {
        gpu::GpuDevice::Config config;
        config.mem_bytes = 256 * MiB;
        return config;
    }

    gpu::GpuDevice device_;
    cuvmm::Driver driver_;
};

TEST_F(PagedCacheTest, PoolsCommittedUpFront)
{
    PagedKvCache::Config config;
    config.num_layers = 2;
    config.num_kv_heads = 2;
    config.head_dim = 8;
    config.block_size = 16;
    config.num_blocks = 32;
    PagedKvCache cache(driver_, config);

    // 2 layers x {K,V} x [32, 16, 2, 8] fp16.
    EXPECT_EQ(cache.committedBytes(), 2u * 2 * 32 * 16 * 2 * 8 * 2);
    // All of it is physically committed immediately (cudaMalloc
    // reservation-based model) — before any request arrived.
    EXPECT_GE(driver_.physBytesInUse(), cache.committedBytes());
    EXPECT_TRUE(cache.kPool(0).fullyBacked());
    EXPECT_TRUE(cache.vPool(1).fullyBacked());
}

TEST_F(PagedCacheTest, ViewReadsWhatWriterStored)
{
    PagedKvCache::Config config;
    config.num_layers = 1;
    config.num_kv_heads = 2;
    config.head_dim = 4;
    config.block_size = 8;
    config.num_blocks = 8;
    PagedKvCache cache(driver_, config);

    auto &manager = cache.blockManager();
    RequestBlocks blocks(&manager);
    ASSERT_TRUE(blocks.ensureTokens(20).isOk());

    auto view = cache.view(blocks.blocks(), 0);
    float in[4] = {1, 2, 3, 4};
    view.storeK(17, 1, in); // token 17 lives in the third block
    float out[4] = {};
    view.loadK(17, 1, out);
    for (int i = 0; i < 4; ++i) {
        EXPECT_FLOAT_EQ(out[i], in[i]);
    }
}

} // namespace
} // namespace vattn::paged
