#include <gtest/gtest.h>

#include "attn/kernels.hh"
#include "common/rng.hh"
#include "cuvmm/driver.hh"
#include "paged/paged_kv_cache.hh"
#include "test_util.hh"

namespace vattn::paged
{
namespace
{

class PrefixSharingTest : public ::testing::Test
{
  protected:
    PrefixSharingTest() : device_(makeConfig()), driver_(device_)
    {
        PagedKvCache::Config config;
        config.num_layers = 2;
        config.num_kv_heads = 2;
        config.head_dim = 8;
        config.block_size = 16;
        config.num_blocks = 32;
        cache_ = std::make_unique<PagedKvCache>(driver_, config);
    }

    static gpu::GpuDevice::Config
    makeConfig()
    {
        gpu::GpuDevice::Config config;
        config.mem_bytes = 64 * MiB;
        return config;
    }

    gpu::GpuDevice device_;
    cuvmm::Driver driver_;
    std::unique_ptr<PagedKvCache> cache_;
};

TEST_F(PrefixSharingTest, ShareFromRefCountsWholeBlocks)
{
    auto &manager = cache_->blockManager();
    RequestBlocks parent(&manager);
    ASSERT_TRUE(parent.ensureTokens(50).isOk()); // 4 blocks

    RequestBlocks child(&manager);
    // 40-token prefix: only 2 FULL blocks (32 tokens) can be shared.
    ASSERT_TRUE(child.shareFrom(parent, 40).isOk());
    EXPECT_EQ(child.blocks().size(), 2u);
    EXPECT_EQ(child.blocks()[0], parent.blocks()[0]);
    EXPECT_EQ(child.blocks()[1], parent.blocks()[1]);
    EXPECT_EQ(manager.refCount(parent.blocks()[0]), 2);
    EXPECT_EQ(manager.refCount(parent.blocks()[2]), 1);
    // Shared blocks don't consume new pool capacity.
    EXPECT_EQ(manager.numAllocated(), 4);
    EXPECT_TRUE(manager.checkInvariants());
}

TEST_F(PrefixSharingTest, ShareFromValidation)
{
    auto &manager = cache_->blockManager();
    RequestBlocks parent(&manager);
    ASSERT_TRUE(parent.ensureTokens(32).isOk());
    RequestBlocks child(&manager);
    ASSERT_TRUE(child.ensureTokens(16).isOk());
    // Non-empty child refused.
    EXPECT_FALSE(child.shareFrom(parent, 16).isOk());
    // Prefix longer than the parent refused.
    RequestBlocks other(&manager);
    EXPECT_FALSE(other.shareFrom(parent, 200).isOk());
}

TEST_F(PrefixSharingTest, SharedBlocksServeBothRequests)
{
    auto &manager = cache_->blockManager();
    Rng rng(5);

    RequestBlocks parent(&manager);
    ASSERT_TRUE(parent.ensureTokens(32).isOk());
    auto parent_view = cache_->view(parent.blocks(), 0);
    std::vector<float> k(32 * 2 * 8);
    std::vector<float> v(32 * 2 * 8);
    for (auto &x : k) {
        x = static_cast<float>(rng.uniform(-1, 1));
    }
    for (auto &x : v) {
        x = static_cast<float>(rng.uniform(-1, 1));
    }
    attn::appendKv(parent_view, 0, 32, 2, 8, k.data(), v.data());

    RequestBlocks child(&manager);
    ASSERT_TRUE(child.shareFrom(parent, 32).isOk());
    auto child_view = cache_->view(child.blocks(), 0);
    // The child reads the parent's prefix without any copies.
    float expect[8];
    float got[8];
    for (i64 t = 0; t < 32; ++t) {
        parent_view.loadK(t, 1, expect);
        child_view.loadK(t, 1, got);
        for (int c = 0; c < 8; ++c) {
            ASSERT_FLOAT_EQ(got[c], expect[c]) << "token " << t;
        }
    }
}

TEST_F(PrefixSharingTest, CopyOnWriteIsolatesWriter)
{
    auto &manager = cache_->blockManager();
    RequestBlocks parent(&manager);
    ASSERT_TRUE(parent.ensureTokens(16).isOk());
    auto parent_view = cache_->view(parent.blocks(), 1);
    float row[8] = {1, 2, 3, 4, 5, 6, 7, 8};
    parent_view.storeK(3, 0, row);

    RequestBlocks child(&manager);
    ASSERT_TRUE(child.shareFrom(parent, 16).isOk());
    const i32 shared_block = child.blocks()[0];

    // COW before writing into the shared region.
    auto fresh = cache_->ensurePrivate(child, 3);
    ASSERT_TRUE(fresh.isOk());
    EXPECT_NE(fresh.value(), shared_block);
    EXPECT_EQ(manager.refCount(shared_block), 1); // parent only
    EXPECT_EQ(manager.refCount(fresh.value()), 1);

    // The copy carried the data...
    auto child_view = cache_->view(child.blocks(), 1);
    float got[8];
    child_view.loadK(3, 0, got);
    for (int c = 0; c < 8; ++c) {
        EXPECT_FLOAT_EQ(got[c], row[c]);
    }
    // ...and subsequent writes do not leak into the parent.
    float updated[8] = {9, 9, 9, 9, 9, 9, 9, 9};
    child_view.storeK(3, 0, updated);
    parent_view.loadK(3, 0, got);
    for (int c = 0; c < 8; ++c) {
        EXPECT_FLOAT_EQ(got[c], row[c]);
    }
}

TEST_F(PrefixSharingTest, EnsurePrivateOnPrivateBlockIsNoop)
{
    auto &manager = cache_->blockManager();
    RequestBlocks blocks(&manager);
    ASSERT_TRUE(blocks.ensureTokens(16).isOk());
    const i32 original = blocks.blocks()[0];
    auto result = cache_->ensurePrivate(blocks, 5);
    ASSERT_TRUE(result.isOk());
    EXPECT_EQ(result.value(), original);
    EXPECT_EQ(manager.numAllocated(), 1);
}

TEST_F(PrefixSharingTest, ReleaseOrderIndependent)
{
    auto &manager = cache_->blockManager();
    {
        RequestBlocks parent(&manager);
        ASSERT_TRUE(parent.ensureTokens(48).isOk());
        {
            RequestBlocks child(&manager);
            ASSERT_TRUE(child.shareFrom(parent, 48).isOk());
            // Parent dies first; blocks survive via the child's refs.
            parent.releaseAll();
            EXPECT_EQ(manager.numAllocated(), 3);
        }
        // Child died: everything back.
        EXPECT_EQ(manager.numAllocated(), 0);
    }
    EXPECT_TRUE(manager.checkInvariants());
}

TEST_F(PrefixSharingTest, CowUnderPoolPressure)
{
    test::ScopedThrowErrors guard;
    // Fill the pool so COW cannot allocate a fresh block.
    auto &manager = cache_->blockManager();
    RequestBlocks parent(&manager);
    ASSERT_TRUE(
        parent.ensureTokens(manager.numBlocks() * 16).isOk());
    RequestBlocks child(&manager);
    ASSERT_TRUE(child.shareFrom(parent, 16).isOk());
    auto result = cache_->ensurePrivate(child, 0);
    EXPECT_FALSE(result.isOk());
    EXPECT_EQ(result.code(), ErrorCode::kOutOfMemory);
}

} // namespace
} // namespace vattn::paged
