/**
 * @file
 * Shared-prefix KV cache reuse (§8.1): multi-tenant serving where
 * every request starts with its tenant's fixed system prompt. With
 * prefix caching on, the paged backend shares refcounted hash-blocks
 * and the vAttention backend aliases physical page-groups into each
 * new request's virtual tensors, so only the unique user suffix is
 * prefilled. Reported: prefill tokens saved, hit rate, TTFT/latency
 * percentiles, and the physically shared (aliased) bytes.
 */

#include "bench_util.hh"

using namespace vattn;
using namespace vattn::bench;

namespace
{

struct Variant
{
    perf::BackendKind kind;
    bool caching;
};

serving::RunReport
runVariant(const Variant &variant)
{
    serving::EngineConfig config =
        makeEngineConfig(Setup{perf::ModelSpec::yi6B(), 1},
                         variant.kind);
    config.enable_prefix_caching = variant.caching;
    serving::Engine engine(config);
    auto trace = serving::sharedSystemPromptTrace(
        /*n=*/256, /*tenants=*/8, /*system_tokens=*/8192,
        /*user_mean=*/512, /*seed=*/9);
    serving::assignOfflineArrivals(trace);
    return engine.run(std::move(trace));
}

} // namespace

int
main()
{
    banner("Prefix caching: multi-tenant shared system prompts",
           "256 requests, 8 tenants x 8K-token system prompt + ~512 "
           "unique user tokens; Yi-6B on 1x A100");
    JsonReport json("prefix_caching");

    const Variant variants[] = {
        {perf::BackendKind::kFa2Paged, false},
        {perf::BackendKind::kFa2Paged, true},
        {perf::BackendKind::kFa2VAttention, false},
        {perf::BackendKind::kFa2VAttention, true},
    };

    Table table({"backend", "prefix cache", "req/min", "TTFT p50 s",
                 "TTFT p99 s", "latency p50 s", "hit rate",
                 "prefill saved", "shared GB (cum)"});
    double ttft_off[2] = {0, 0};
    for (const Variant &variant : variants) {
        const auto report = runVariant(variant);
        const int idx = perf::isPaged(variant.kind) ? 0 : 1;
        if (!variant.caching) {
            ttft_off[idx] = report.ttft_s.median();
        }
        table.addRow({
            toString(variant.kind),
            variant.caching ? "on" : "off",
            Table::num(report.requestsPerMinute(), 1),
            Table::num(report.ttft_s.median(), 2),
            Table::num(report.ttft_s.p99(), 2),
            Table::num(report.latency_s.median(), 2),
            variant.caching
                ? Table::num(100.0 * report.prefixHitRate(), 1) + "%"
                : "-",
            variant.caching
                ? Table::num(100.0 * report.prefillSavedFraction(), 1) +
                      "%"
                : "-",
            Table::num(
                static_cast<double>(report.prefix_aliased_bytes) / 1e9,
                1),
        });
        if (variant.caching) {
            maybePrintPrefixStats(report,
                                  std::string(toString(variant.kind)));
            std::printf("%s TTFT p50 improvement vs caching off: "
                        "%.0f%%\n",
                        toString(variant.kind),
                        100.0 * (1.0 - report.ttft_s.median() /
                                           ttft_off[idx]));
        }
    }
    json.printTable("shared-system-prompt trace, offline arrivals", table);
    std::printf("\nReading: both backends skip the shared system "
                "prompt's prefill on a hit; vAttention additionally "
                "maps one physical page-group into several requests' "
                "virtual tensors (CUDA VMM aliasing, "
                "Driver::numMappings > 1), which block-table systems "
                "express through refcounted block ids.\n");
    return 0;
}
