/**
 * @file
 * Long-running soak of the online serving path: one engine streams
 * through a million-request session (smoke: 20K) submitted
 * incrementally, with per-token streaming callbacks installed, while
 * a counting operator-new shim watches the heap.
 *
 * What the soak demonstrates (and asserts):
 *   - bounded memory: terminal requests are garbage-collected as the
 *     stream advances, so the live-request high-water mark stays a
 *     tiny fraction of the session size;
 *   - zero-allocation steady state at soak scale: after a warmup
 *     prefix, the step loop (everything except submitOnline, which
 *     legitimately reserves sample stores and deque nodes) performs
 *     no heap allocations at all, streaming callbacks included;
 *   - sustained throughput: the whole session completes, with wall
 *     clock and simulated token rates reported.
 */

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <new>

#include "bench_util.hh"

#include "serving/engine.hh"

// ---- Counting operator new/delete (same harness as -----------------
// test_alloc_regression: every replaceable variant funnels through
// malloc/free with one relaxed counter bump).

namespace
{

std::atomic<long long> g_allocs{0};

long long
allocCount()
{
    return g_allocs.load(std::memory_order_relaxed);
}

void *
countedAlloc(std::size_t size)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    return std::malloc(size ? size : 1);
}

void *
countedAllocAligned(std::size_t size, std::align_val_t align)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    std::size_t alignment = static_cast<std::size_t>(align);
    if (alignment < sizeof(void *)) {
        alignment = sizeof(void *);
    }
    void *ptr = nullptr;
    if (posix_memalign(&ptr, alignment, size ? size : 1) != 0) {
        return nullptr;
    }
    return ptr;
}

} // namespace

void *
operator new(std::size_t size)
{
    if (void *ptr = countedAlloc(size)) {
        return ptr;
    }
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    if (void *ptr = countedAlloc(size)) {
        return ptr;
    }
    throw std::bad_alloc();
}

void *
operator new(std::size_t size, const std::nothrow_t &) noexcept
{
    return countedAlloc(size);
}

void *
operator new[](std::size_t size, const std::nothrow_t &) noexcept
{
    return countedAlloc(size);
}

void *
operator new(std::size_t size, std::align_val_t align)
{
    if (void *ptr = countedAllocAligned(size, align)) {
        return ptr;
    }
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size, std::align_val_t align)
{
    if (void *ptr = countedAllocAligned(size, align)) {
        return ptr;
    }
    throw std::bad_alloc();
}

void
operator delete(void *ptr) noexcept
{
    std::free(ptr);
}

void
operator delete[](void *ptr) noexcept
{
    std::free(ptr);
}

void
operator delete(void *ptr, std::size_t) noexcept
{
    std::free(ptr);
}

void
operator delete[](void *ptr, std::size_t) noexcept
{
    std::free(ptr);
}

void
operator delete(void *ptr, std::align_val_t) noexcept
{
    std::free(ptr);
}

void
operator delete[](void *ptr, std::align_val_t) noexcept
{
    std::free(ptr);
}

void
operator delete(void *ptr, std::size_t, std::align_val_t) noexcept
{
    std::free(ptr);
}

void
operator delete[](void *ptr, std::size_t, std::align_val_t) noexcept
{
    std::free(ptr);
}

using namespace vattn;
using namespace vattn::bench;

int
main()
{
    const i64 total = smokeN(1'000'000, 20'000);
    banner("Soak: long-running online session",
           std::to_string(total) +
               " requests streamed through one Yi-6B replica; "
               "bounded live-request memory, allocation-free steady "
               "state with streaming callbacks installed");
    JsonReport json("soak_longrun");

    serving::EngineConfig config =
        makeEngineConfig({perf::ModelSpec::yi6B(), 1},
                         perf::BackendKind::kFa2VAttention);
    // Generous enough that every slot's warm page-group mappings fit
    // at once (64 slots x one 128 MiB group row): past warmup,
    // deferred reclamation goes quiescent and admission reuses cached
    // slots without a single driver (un)map call.
    config.kv_budget_override = 12 * GiB;
    config.scheduler.max_num_seqs = 64;
    config.scheduler.max_batched_tokens = 8192;
    config.vattn.max_batch_size = 64;
    serving::Engine engine(config);

    long long token_events = 0;
    serving::StreamCallbacks callbacks; // pre-built, reused throughout
    callbacks.on_token = [&token_events](const serving::Request &) {
        ++token_events;
    };

    // Small requests at a fixed inter-arrival gap the engine can
    // sustain: the session reaches a steady state where admission,
    // decode and retirement all recur at the high-water shape.
    constexpr i64 kPromptTokens = 32;
    constexpr i64 kDecodeTokens = 4;
    constexpr TimeNs kGapNs = 5'000'000; // 200 QPS offered
    const i64 warmup = total / 10;

    std::size_t owned_high_water = 0;
    long long steady_allocs = 0;
    long long steady_steps = 0;
    const auto wall_start = std::chrono::steady_clock::now();

    engine.beginOnline(static_cast<std::size_t>(total));
    TimeNs arrival = 0;
    for (i64 i = 0; i < total; ++i, arrival += kGapNs) {
        serving::Request request;
        request.id = static_cast<u64>(i);
        request.prompt_tokens = kPromptTokens;
        request.max_new_tokens = kDecodeTokens;
        request.arrival_ns = arrival;
        request.stream = &callbacks;
        engine.submitOnline(std::move(request))
            .expectOk("soak submit");
        owned_high_water =
            std::max(owned_high_water, engine.ownedRequests());
        // Pump the engine up to the next arrival instant — the step
        // loop a live server would run between submissions. Past the
        // warmup prefix this loop must never touch the heap.
        const long long before = allocCount();
        long long steps = 0;
        while (engine.runActive() &&
               engine.nextEventNs() < arrival + kGapNs) {
            engine.stepRun();
            ++steps;
        }
        if (i >= warmup) {
            steady_allocs += allocCount() - before;
            steady_steps += steps;
        }
    }
    engine.closeOnline();
    {
        const long long before = allocCount();
        while (engine.runActive()) {
            engine.stepRun();
            ++steady_steps;
        }
        steady_allocs += allocCount() - before;
    }
    const auto report = engine.endRun();
    const double wall_s =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - wall_start)
            .count();

    Table table({"requests", "owned high-water", "steady steps",
                 "steady allocs", "decode tok/s (sim)", "wall s",
                 "req/s (wall)"});
    table.addRow({std::to_string(report.num_requests),
                  std::to_string(owned_high_water),
                  std::to_string(steady_steps),
                  std::to_string(steady_allocs),
                  Table::num(report.decodeTokensPerSecond(), 0),
                  Table::num(wall_s, 1),
                  Table::num(static_cast<double>(total) / wall_s, 0)});
    json.printTable("soak session", table);

    json.metric("requests", report.num_requests);
    json.metric("owned_high_water",
                static_cast<i64>(owned_high_water));
    json.metric("steady_state_allocs",
                static_cast<i64>(steady_allocs));
    json.metric("steady_state_steps",
                static_cast<i64>(steady_steps));
    json.metric("decode_tokens_per_s_sim",
                report.decodeTokensPerSecond());
    json.metric("wall_s", wall_s);
    json.metric("requests_per_s_wall",
                static_cast<double>(total) / wall_s);

    int failures = 0;
    const auto expect = [&failures](bool ok, const char *what) {
        std::printf("  %-6s %s\n", ok ? "[ok]" : "[FAIL]", what);
        if (!ok) {
            ++failures;
        }
    };
    expect(report.num_requests == total,
           "every submitted request was served");
    expect(token_events ==
               static_cast<long long>(total) * kDecodeTokens,
           "streaming callbacks saw every emitted token");
    expect(owned_high_water <
               static_cast<std::size_t>(total) / 100 + 256,
           "live-request memory stays bounded (high-water << "
           "session size)");
#if VATTN_AUDIT
    std::printf("  [skip] zero-allocation steady state (audit builds "
                "allocate per iteration by design)\n");
#else
    expect(steady_allocs == 0,
           "steady-state step loop performed zero heap allocations");
#endif

    if (failures > 0) {
        std::printf("\n%d soak assertion(s) FAILED\n", failures);
        return 1;
    }
    return 0;
}
