/**
 * @file
 * Figure 12 (§7.6.1): latency of decode iterations with and without
 * overlapping memory allocation with compute. Batch 32, Llama-3-8B on
 * 2 A100s, per-request contexts spread over 4K-8K, 2MB pages (worst
 * case allocation latency). Synchronous allocation produces 5-15ms
 * spikes whenever requests cross page-group boundaries; overlapping
 * hides them completely.
 */

#include "bench_util.hh"
#include "common/rng.hh"

using namespace vattn;
using namespace vattn::bench;

int
main()
{
    banner("Figure 12: hiding allocation latency (decode iterations)",
           "Llama-3-8B TP-2, batch 32, ctx 4K-8K, 2MB page-groups");
    JsonReport json("fig12_overlap_ablation");

    // Contexts are multiples of 256 so several requests cross a
    // page-group boundary in the same iteration, like a real batch
    // whose prompts cluster around common lengths.
    Rng rng(42);
    std::vector<i64> contexts;
    for (int i = 0; i < 32; ++i) {
        contexts.push_back(4096 + 256 * rng.uniformInt(0, 15));
    }

    const Setup setup{perf::ModelSpec::llama3_8B(), 2};
    Table table({"mode", "mean iter ms", "p50", "p99", "max",
                 "iters > mean+2ms"});
    for (bool overlap : {false, true}) {
        auto config =
            makeEngineConfig(setup, perf::BackendKind::kFa2VAttention);
        config.vattn.overlap_allocation = overlap;
        config.vattn.eager_allocation = false;
        config.vattn.page_group = PageGroup::k2MB;
        config.record_iterations = true;
        serving::Engine engine(config);
        auto run = engine.decodeOnlyVaried(contexts, 520);

        const double mean = run.iter_ms.mean();
        int spikes = 0;
        double worst_spike = 0;
        for (const auto &iteration : run.iterations) {
            const double ms =
                static_cast<double>(iteration.duration_ns) / 1e6;
            if (ms > mean + 2.0) {
                ++spikes;
                worst_spike = std::max(
                    worst_spike,
                    static_cast<double>(iteration.mem_critical_ns) /
                        1e6);
            }
        }
        table.addRow({
            overlap ? "with overlapping" : "without overlapping",
            Table::num(mean, 2),
            Table::num(run.iter_ms.median(), 2),
            Table::num(run.iter_ms.p99(), 2),
            Table::num(run.iter_ms.max(), 2),
            Table::integer(spikes),
        });
        if (!overlap) {
            std::printf("worst synchronous allocation spike: %.1f ms "
                        "(paper: 5-15 ms)\n",
                        worst_spike);
        }
    }
    json.printTable("Figure 12 summary", table);
    return 0;
}
