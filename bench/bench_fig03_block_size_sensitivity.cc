/**
 * @file
 * Figure 3: latency of vLLM's paged decode kernel vs KV block size
 * (Llama-3-8B, one A100). Larger blocks hurt L1 efficiency: block 128
 * is up to 1.9x slower than block 16.
 */

#include "bench_util.hh"
#include "perf/kernel_model.hh"

using namespace vattn;
using namespace vattn::bench;

int
main()
{
    banner("Figure 3: vLLM paged decode kernel vs block size",
           "model: Llama-3-8B, 1x A100 (kernel latency model)");
    JsonReport json("fig03_block_size_sensitivity");

    perf::KernelModel model(perf::GpuSpec::a100(),
                            perf::ModelSpec::llama3_8B(), 1);

    Table table({"batch x ctx", "block16 (ms)", "block32", "block64",
                 "block128", "128 vs 16"});
    for (i64 batch = 1; batch <= 16; batch *= 2) {
        const i64 total = batch * 16 * 1024;
        const double t16 =
            static_cast<double>(model.decodeAttention(
                perf::BackendKind::kVllmPaged, total, 16)) /
            1e6;
        auto cell = [&](int block) {
            const double t =
                static_cast<double>(model.decodeAttention(
                    perf::BackendKind::kVllmPaged, total, block)) /
                1e6;
            return Table::num(t, 2) + " (" + Table::num(t / t16, 2) +
                   "x)";
        };
        table.addRow({
            std::to_string(batch) + "*16K",
            Table::num(t16, 2),
            cell(32),
            cell(64),
            cell(128),
            Table::num(static_cast<double>(model.decodeAttention(
                           perf::BackendKind::kVllmPaged, total, 128)) /
                           1e6 / t16,
                       2) + "x",
        });
    }
    json.printTable("Figure 3 (paper: block 128 is 1.86-1.93x block 16)", table);
    return 0;
}
