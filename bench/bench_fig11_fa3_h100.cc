/**
 * @file
 * Figure 11: portability — offline throughput on H100 GPUs with
 * FlashAttention-3, which shipped without PagedAttention support.
 * vAttention runs FA3 out of the box: FA3_vAttention adds up to
 * 1.35x over FA2_vAttention, which itself beats FA2_Paged.
 */

#include "bench_util.hh"

using namespace vattn;
using namespace vattn::bench;

int
main()
{
    banner("Figure 11: offline throughput on H100s (FA3 portability)",
           "arXiv-Summarization offline trace; requests per minute");
    JsonReport json("fig11_fa3_h100");

    const perf::BackendKind kinds[] = {
        perf::BackendKind::kFa2Paged,
        perf::BackendKind::kFa2VAttention,
        perf::BackendKind::kFa3VAttention,
    };

    Table table({"model", "FA2_Paged", "FA2_vAttention",
                 "FA3_vAttention", "FA3/FA2_vAttn", "FA3/FA2_Paged"});
    for (const auto &setup : evalSetups()) {
        double rpm[3];
        for (int i = 0; i < 3; ++i) {
            auto trace = serving::arxivOfflineTrace(smokeN(427, 16));
            serving::assignOfflineArrivals(trace);
            serving::Engine engine(makeEngineConfig(
                setup, kinds[i], perf::GpuSpec::h100()));
            rpm[i] = engine.run(std::move(trace)).requestsPerMinute();
        }
        table.addRow({
            setupLabel(setup),
            Table::num(rpm[0], 2),
            Table::num(rpm[1], 2),
            Table::num(rpm[2], 2),
            Table::num(rpm[2] / rpm[1], 2) + "x",
            Table::num(rpm[2] / rpm[0], 2) + "x",
        });
    }
    json.printTable("Figure 11 (paper: 5.93/6.57/8.90, 8.06/9.28/10.17, "
                "2.65/2.81/3.50 req/min)", table);
    return 0;
}
