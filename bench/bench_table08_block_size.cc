/**
 * @file
 * Table 8: KV cache "block size" (tokens per physical page-group) as
 * a function of page-group size and tensor-parallel degree. Smaller
 * page-groups approach vLLM's recommended block size of 16-32 while
 * FA2's paged kernel cannot go below 256.
 */

#include "bench_util.hh"
#include "core/kv_geometry.hh"

using namespace vattn;
using namespace vattn::bench;

namespace
{

core::Config
configFor(const perf::ModelSpec &model, int tp, PageGroup group)
{
    core::Config config;
    config.num_layers = model.num_layers;
    config.num_kv_heads = model.kvHeadsPerWorker(tp);
    config.head_dim = model.head_dim;
    config.bytes_per_elem = model.bytes_per_elem;
    config.max_batch_size = 1;
    config.max_context_len = model.max_context_len;
    config.page_group = group;
    config.use_driver_extension = group != PageGroup::k2MB;
    return config;
}

} // namespace

int
main()
{
    banner("Table 8: tokens per page-group (block size)",
           "per model and tensor-parallel degree");
    JsonReport json("table08_block_size");

    Table table({"model", "64KB", "128KB", "256KB", "2MB"});
    for (const auto &base : evalSetups()) {
        for (int tp : {1, 2}) {
            std::vector<std::string> cells{
                base.model.name + " (TP-" + std::to_string(tp) + ")"};
            for (PageGroup group : kAllPageGroups) {
                core::KvGeometry geom(
                    configFor(base.model, tp, group));
                cells.push_back(Table::integer(geom.tokensPerGroup()));
            }
            table.addRow(cells);
        }
    }
    json.printTable("Table 8 (paper: Yi-6B TP-1 row = 64/128/256/2048; "
                "Llama-3-8B TP-1 = 32/64/128/1024; TP-2 doubles)", table);
    return 0;
}
