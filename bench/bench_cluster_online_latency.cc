/**
 * @file
 * Cluster-scale extension of the Figure 10 scenario: the arXiv online
 * summarization trace served by 1/2/4/8 Engine replicas behind the
 * router, comparing the three routing policies. Total offered load
 * scales with the replica count (fixed per-replica QPS), so the
 * numbers isolate what the router adds: per-policy p50/p99 TTFT and
 * end-to-end latency, plus cross-replica load-imbalance stats.
 */

#include "bench_util.hh"

#include "serving/cluster.hh"

using namespace vattn;
using namespace vattn::bench;

int
main()
{
    banner("Cluster: online latency vs routing policy",
           "arXiv-Summarization online trace, Yi-6B TP-1 replicas, "
           "Poisson arrivals at 0.2 QPS per replica; seconds");
    JsonReport json("cluster_online_latency");

    const Setup setup{perf::ModelSpec::yi6B(), 1};
    const double qps_per_replica = 0.2;
    const int trace_per_replica = 64;

    for (int replicas : {1, 2, 4, 8}) {
        Table table({"policy", "TTFT p50", "TTFT p99", "latency p50",
                     "latency p99", "TBT p99", "norm p50", "req/min",
                     "req imbalance", "jain"});
        for (serving::RoutingPolicy policy :
             serving::kAllRoutingPolicies) {
            auto config = serving::ServingCluster::uniform(
                makeEngineConfig(setup,
                                 perf::BackendKind::kFa2VAttention),
                replicas, policy);
            serving::ServingCluster cluster(std::move(config));

            auto trace =
                serving::arxivOnlineTrace(trace_per_replica * replicas);
            serving::assignPoissonArrivals(
                trace, qps_per_replica * replicas, 2024);
            const auto report = cluster.run(std::move(trace));

            table.addRow({
                toString(policy),
                Table::num(report.merged.ttft_s.median(), 1),
                Table::num(report.merged.ttft_s.p99(), 1),
                Table::num(report.merged.latency_s.median(), 1),
                Table::num(report.merged.latency_s.p99(), 1),
                Table::num(report.merged.tbt_s.p99(), 2),
                Table::num(
                    report.merged.normalized_latency_s.median(), 3),
                Table::num(report.merged.requestsPerMinute(), 1),
                Table::num(report.request_imbalance, 2),
                Table::num(report.jain_fairness, 3),
            });
        }
        json.printTable("replicas = " + std::to_string(replicas) +
                    " (offered load " +
                    Table::num(qps_per_replica * replicas, 2) +
                    " QPS, " +
                    std::to_string(trace_per_replica * replicas) +
                    " requests)", table);
    }

    std::printf("\nload-aware policies (JSQ, least-KV) should match "
                "round-robin at 1 replica and cut tail TTFT as the "
                "fleet grows; KV-pressure routing additionally adapts "
                "to skewed replica budgets.\n");
    return 0;
}
