/**
 * @file
 * Chunked-prefill hybrid batching: p99 time-between-tokens (TBT) for
 * both scheduling modes x {paged, vAttention} back-ends. Under the
 * prefill-prioritized vLLM v0.2.7 policy a 29K-token arXiv prompt
 * stalls every running decode for a full prefill iteration, blowing
 * the decode tail to tens of seconds; Sarathi-style stall-free
 * chunking bounds the stall at one chunk. Larger chunks trade TBT
 * for throughput (fewer iterations, better GPU occupancy).
 */

#include "bench_util.hh"

using namespace vattn;
using namespace vattn::bench;

namespace
{

struct Mode
{
    serving::SchedulingMode mode;
    i64 chunk_tokens; ///< unused under kPrefillPrioritized
};

std::string
modeLabel(const Mode &mode)
{
    std::string label = toString(mode.mode);
    if (mode.mode == serving::SchedulingMode::kStallFreeChunked) {
        label.append("/").append(std::to_string(mode.chunk_tokens));
    }
    return label;
}

void
scenario(JsonReport &json, const std::string &title,
         std::vector<serving::Request> trace)
{
    const perf::BackendKind kinds[] = {
        perf::BackendKind::kFa2Paged,
        perf::BackendKind::kFa2VAttention,
    };
    const Mode modes[] = {
        {serving::SchedulingMode::kPrefillPrioritized, 0},
        {serving::SchedulingMode::kStallFreeChunked, 2048},
        {serving::SchedulingMode::kStallFreeChunked, 8192},
    };

    Table table({"backend", "mode", "req/min", "TBT p50", "TBT p99",
                 "TBT max", "norm-lat p50", "norm-lat p99",
                 "preempt"});
    for (const auto kind : kinds) {
        for (const auto &mode : modes) {
            auto config =
                makeEngineConfig({perf::ModelSpec::yi6B(), 1}, kind);
            config.scheduler.mode = mode.mode;
            config.scheduler.chunk_tokens = mode.chunk_tokens;
            serving::Engine engine(config);
            const auto report = engine.run(trace);
            table.addRow({
                toString(kind),
                modeLabel(mode),
                Table::num(report.requestsPerMinute(), 2),
                Table::num(report.tbt_s.median(), 3),
                Table::num(report.tbt_s.p99(), 3),
                Table::num(report.tbt_s.max(), 3),
                Table::num(report.normalized_latency_s.median(), 3),
                Table::num(report.normalized_latency_s.p99(), 3),
                std::to_string(report.preemptions),
            });
        }
    }
    json.printTable(title, table);
}

} // namespace

int
main()
{
    banner("Hybrid batching: time-between-tokens vs scheduling mode",
           "Yi-6B TP-1 on A100; TBT and normalized latency in "
           "seconds, both scheduling modes x {paged, vAttention}");
    JsonReport json("hybrid_batching_tbt");

    {
        auto trace = serving::arxivOnlineTrace(128);
        serving::assignPoissonArrivals(trace, 0.25, 2024);
        scenario(json,
                 "arXiv-Summarization online, 128 reqs, 0.25 QPS "
                 "(29K-token prompts: worst-case decode stalls)",
                 std::move(trace));
    }
    {
        auto trace = serving::shareGptTrace(512);
        serving::assignPoissonArrivals(trace, 6.0, 2024);
        scenario(json,
                 "ShareGPT-style chat, 512 reqs, 6 QPS (short "
                 "prompts, long decodes)",
                 std::move(trace));
    }

    std::printf("\nstall-free chunking bounds the decode stall at one "
                "chunk: p99 TBT drops by an order of magnitude on the "
                "arXiv trace while the 8K chunk keeps throughput "
                "within a few percent of prefill-prioritized.\n");
    return 0;
}
