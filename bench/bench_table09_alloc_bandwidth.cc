/**
 * @file
 * Table 9 (§7.6.4): physical memory allocation bandwidth achievable
 * through the VMM APIs per page-group size and TP degree, measured by
 * growing a request's KV on the live simulated driver and dividing
 * mapped bytes by charged driver latency. The point: even the
 * smallest groups sustain several GB/s — an order of magnitude more
 * than the <=750 MB/s the decode phase ever demands (Figure 4b).
 */

#include "bench_util.hh"
#include "core/vattention.hh"

using namespace vattn;
using namespace vattn::bench;

namespace
{

double
measureGBps(PageGroup group, int tp)
{
    // Per-worker measurement on Llama-3-8B geometry; workers allocate
    // in parallel so aggregate bandwidth scales with TP.
    const auto model = perf::ModelSpec::llama3_8B();
    gpu::GpuDevice::Config dev_config;
    dev_config.mem_bytes = 4 * GiB;
    gpu::GpuDevice device(dev_config);
    cuvmm::Driver driver(device);

    core::Config config;
    config.num_layers = model.num_layers;
    config.num_kv_heads = model.kvHeadsPerWorker(tp);
    config.head_dim = model.head_dim;
    config.max_batch_size = 4;
    config.max_context_len = model.max_context_len;
    config.page_group = group;
    config.use_driver_extension = group != PageGroup::k2MB;
    config.deferred_reclamation = false;
    config.eager_allocation = false;
    config.overlap_allocation = false;
    config.phys_budget_bytes = 3 * GiB;
    core::VAttention vattn(driver, config);

    const int req = vattn.allocReqId().value();
    (void)req;
    // Grow the request's KV in one shot; all latency is charged to
    // the critical path, giving bytes-per-driver-second.
    std::vector<i64> lens(4, 0);
    lens[0] = 16 * 1024;
    const auto stats = vattn.step(lens);
    stats.status.expectOk("bandwidth measurement");
    const double mapped_bytes =
        static_cast<double>(stats.handles_mapped) *
        static_cast<double>(vattn::bytes(group));
    return mapped_bytes /
           (static_cast<double>(stats.critical_ns) / 1e9) / 1e9 * tp;
}

} // namespace

int
main()
{
    banner("Table 9: physical memory allocation bandwidth (GB/s)",
           "live driver measurement, Llama-3-8B KV geometry");
    JsonReport json("table09_alloc_bandwidth");

    Table table({"config", "64KB", "128KB", "256KB", "2MB"});
    for (int tp : {1, 2}) {
        std::vector<std::string> cells{"TP-" + std::to_string(tp)};
        for (PageGroup group : kAllPageGroups) {
            cells.push_back(Table::num(measureGBps(group, tp), 2));
        }
        table.addRow(cells);
    }
    json.printTable("Table 9 (paper: TP-1 7.59/14.56/27.04/35.17; TP-2 "
                "doubles; every value >> the 0.75 GB/s decode "
                "demand)", table);
    return 0;
}
