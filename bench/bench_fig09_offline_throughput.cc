/**
 * @file
 * Figure 9: offline (batch) inference throughput in requests/minute
 * on the arXiv-Summarization long-context trace (427 requests,
 * 64K-192K total context, mean P:D 356). FA2_vAttention beats
 * FA2_Paged by 1.18/1.15/1.13x and FI_Paged by 1.19/1.23/1.14x.
 */

#include "bench_util.hh"

using namespace vattn;
using namespace vattn::bench;

int
main()
{
    banner("Figure 9: offline throughput, arXiv-Summarization trace",
           "427 requests, ctx 64K-192K; requests per minute; A100s");
    JsonReport json("fig09_offline_throughput");

    const perf::BackendKind kinds[] = {
        perf::BackendKind::kFa2Paged,
        perf::BackendKind::kFiPaged,
        perf::BackendKind::kFa2VAttention,
    };

    Table table({"model", "FA2_Paged", "FI_Paged", "FA2_vAttention",
                 "vAttn/FA2_Paged", "vAttn/FI_Paged"});
    for (const auto &setup : evalSetups()) {
        double rpm[3];
        for (int i = 0; i < 3; ++i) {
            auto trace = serving::arxivOfflineTrace(smokeN(427, 16));
            serving::assignOfflineArrivals(trace);
            serving::Engine engine(makeEngineConfig(setup, kinds[i]));
            const auto report = engine.run(std::move(trace));
            rpm[i] = report.requestsPerMinute();
            // No-op on this token-id-less trace unless prefix caching
            // is turned on (output stays byte-identical by default).
            maybePrintPrefixStats(report, toString(kinds[i]));
        }
        table.addRow({
            setupLabel(setup),
            Table::num(rpm[0], 2),
            Table::num(rpm[1], 2),
            Table::num(rpm[2], 2),
            Table::num(rpm[2] / rpm[0], 2) + "x",
            Table::num(rpm[2] / rpm[1], 2) + "x",
        });
    }
    json.printTable("Figure 9 (paper: 2.79/2.75/3.28, 4.55/4.27/5.25, "
                "1.30/1.28/1.47 req/min)", table);
    return 0;
}
