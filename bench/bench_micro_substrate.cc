/**
 * @file
 * google-benchmark micro-benchmarks of the substrates themselves
 * (real wall time, not modelled time): functional attention kernels
 * over the three KV layouts, the buddy allocator, the page table and
 * the VMM driver fast paths. These guard against performance
 * regressions in the simulator itself.
 */

#include <benchmark/benchmark.h>

#include "attn/kernels.hh"
#include "bench_util.hh"
#include "common/rng.hh"
#include "cuvmm/driver.hh"
#include "gpu/buddy_allocator.hh"
#include "paged/paged_kv_cache.hh"

namespace vattn
{
namespace
{

gpu::GpuDevice::Config
benchDeviceConfig()
{
    gpu::GpuDevice::Config config;
    config.mem_bytes = 1 * GiB;
    return config;
}

void
BM_FlashPrefillContiguous(benchmark::State &state)
{
    const auto len = static_cast<i64>(state.range(0));
    gpu::GpuDevice device(benchDeviceConfig());
    cuvmm::Driver driver(device);
    Addr k_ptr = 0;
    Addr v_ptr = 0;
    const u64 size = static_cast<u64>(len) * 4 * 32 * 2;
    driver.cudaMalloc(&k_ptr, size);
    driver.cudaMalloc(&v_ptr, size);
    tensor::Shape shape{len, 4, 32};
    attn::TensorKvView kv(
        tensor::VirtualTensor(&device, k_ptr,
                              tensor::Layout::contiguous(shape),
                              tensor::DType::kF16),
        tensor::VirtualTensor(&device, v_ptr,
                              tensor::Layout::contiguous(shape),
                              tensor::DType::kF16));
    Rng rng(1);
    tensor::HostTensor q(tensor::Shape{len, 8, 32});
    tensor::HostTensor out(q.shape());
    q.fillRandom(rng);
    std::vector<float> row(32, 0.5f);
    for (i64 t = 0; t < len; ++t) {
        for (int h = 0; h < 4; ++h) {
            kv.storeK(t, h, row.data());
            kv.storeV(t, h, row.data());
        }
    }
    attn::AttnConfig config{8, 4, 32, true, 0.0f};
    for (auto _ : state) {
        attn::flashPrefill(config, q, kv, len, out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * len);
}
BENCHMARK(BM_FlashPrefillContiguous)->Arg(64)->Arg(128)->Arg(256);

void
BM_FlashDecodePagedVsContiguous(benchmark::State &state)
{
    const bool paged = state.range(0) != 0;
    const i64 len = 512;
    gpu::GpuDevice device(benchDeviceConfig());
    cuvmm::Driver driver(device);

    paged::PagedKvCache::Config cache_config;
    cache_config.num_layers = 1;
    cache_config.num_kv_heads = 4;
    cache_config.head_dim = 32;
    cache_config.block_size = 16;
    cache_config.num_blocks = 64;
    paged::PagedKvCache cache(driver, cache_config);
    paged::RequestBlocks blocks(&cache.blockManager());
    blocks.ensureTokens(len).expectOk("bench blocks");
    auto paged_view = cache.view(blocks.blocks(), 0);

    Addr k_ptr = 0;
    Addr v_ptr = 0;
    const u64 size = static_cast<u64>(len) * 4 * 32 * 2;
    driver.cudaMalloc(&k_ptr, size);
    driver.cudaMalloc(&v_ptr, size);
    tensor::Shape shape{len, 4, 32};
    attn::TensorKvView flat_view(
        tensor::VirtualTensor(&device, k_ptr,
                              tensor::Layout::contiguous(shape),
                              tensor::DType::kF16),
        tensor::VirtualTensor(&device, v_ptr,
                              tensor::Layout::contiguous(shape),
                              tensor::DType::kF16));

    std::vector<float> row(32, 0.25f);
    for (i64 t = 0; t < len; ++t) {
        for (int h = 0; h < 4; ++h) {
            paged_view.storeK(t, h, row.data());
            paged_view.storeV(t, h, row.data());
            flat_view.storeK(t, h, row.data());
            flat_view.storeV(t, h, row.data());
        }
    }

    Rng rng(2);
    tensor::HostTensor q(tensor::Shape{8, 32});
    tensor::HostTensor out(q.shape());
    q.fillRandom(rng);
    attn::AttnConfig config{8, 4, 32, true, 0.0f};
    const attn::KvView &kv =
        paged ? static_cast<const attn::KvView &>(paged_view)
              : static_cast<const attn::KvView &>(flat_view);
    for (auto _ : state) {
        attn::flashDecode(config, q, kv, len, out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetLabel(paged ? "paged" : "contiguous");
}
BENCHMARK(BM_FlashDecodePagedVsContiguous)->Arg(0)->Arg(1);

void
BM_BuddyAllocFree(benchmark::State &state)
{
    const u64 block = static_cast<u64>(state.range(0));
    gpu::BuddyAllocator buddy(1 * GiB);
    for (auto _ : state) {
        auto addr = buddy.alloc(block);
        benchmark::DoNotOptimize(addr);
        buddy.free(addr.value(), block).expectOk("bench free");
    }
}
BENCHMARK(BM_BuddyAllocFree)->Arg(64 * KiB)->Arg(2 * MiB);

void
BM_DriverMapUnmap64KB(benchmark::State &state)
{
    gpu::GpuDevice device(benchDeviceConfig());
    cuvmm::Driver driver(device);
    Addr va = 0;
    driver.vMemReserve(&va, 64 * KiB);
    for (auto _ : state) {
        cuvmm::MemHandle handle = cuvmm::kInvalidHandle;
        driver.vMemCreate(&handle, PageGroup::k64KB);
        driver.vMemMap(va, handle);
        driver.vMemRelease(handle);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DriverMapUnmap64KB);

void
BM_PageTableTranslate(benchmark::State &state)
{
    gpu::GpuDevice device(benchDeviceConfig());
    cuvmm::Driver driver(device);
    // 256 scattered 64KB mappings.
    std::vector<Addr> vas;
    for (int i = 0; i < 256; ++i) {
        Addr va = 0;
        driver.vMemReserve(&va, 64 * KiB);
        cuvmm::MemHandle handle = cuvmm::kInvalidHandle;
        driver.vMemCreate(&handle, PageGroup::k64KB);
        driver.vMemMap(va, handle);
        vas.push_back(va);
    }
    std::size_t i = 0;
    for (auto _ : state) {
        const Addr va = vas[i++ & 255] + 1234;
        benchmark::DoNotOptimize(device.pageTable().translate(va));
    }
}
BENCHMARK(BM_PageTableTranslate);

} // namespace
} // namespace vattn

int
main(int argc, char **argv)
{
    // Manual BENCHMARK_MAIN so the run also emits the machine-readable
    // report every bench binary writes (google-benchmark prints its
    // own wall-time table; the JSON records that the suite ran).
    vattn::bench::JsonReport json("micro_substrate");
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
        return 1;
    }
    json.metric("benchmarks_run",
                static_cast<vattn::i64>(
                    benchmark::RunSpecifiedBenchmarks()));
    benchmark::Shutdown();
    return 0;
}
