/**
 * @file
 * Table 7: total attention-kernel latency per decode iteration (sum
 * over all layers, milliseconds) at 16K context. vLLM's kernel is up
 * to 2.8x / 1.5x / 2.5x slower than FlashAttention-2 for Yi-6B /
 * Llama-3-8B / Yi-34B; FA2_vAttention matches FA2_Paged.
 */

#include "bench_util.hh"
#include "perf/kernel_model.hh"

using namespace vattn;
using namespace vattn::bench;

int
main()
{
    banner("Table 7: decode attention latency per iteration (ms)",
           "context 16K per request (kernel latency model)");
    JsonReport json("table07_decode_latency");

    for (const auto &setup : evalSetups()) {
        perf::KernelModel model(perf::GpuSpec::a100(), setup.model,
                                setup.tp);
        Table table({"batch", "vLLM", "FA2_Paged", "FI_Paged",
                     "FA2_vAttention", "vLLM/FA2"});
        const std::vector<i64> batches =
            setup.model.name == "Yi-34B" ? std::vector<i64>{12, 16}
                                         : std::vector<i64>{16, 32};
        for (i64 batch : batches) {
            const i64 total_kv = batch * 16 * 1024;
            auto ms = [&](perf::BackendKind kind) {
                return static_cast<double>(
                           model.decodeAttention(kind, total_kv)) /
                       1e6;
            };
            const double vllm = ms(perf::BackendKind::kVllmPaged);
            const double fa2p = ms(perf::BackendKind::kFa2Paged);
            table.addRow({
                Table::integer(batch),
                Table::num(vllm, 1),
                Table::num(fa2p, 1),
                Table::num(ms(perf::BackendKind::kFiPaged), 1),
                Table::num(ms(perf::BackendKind::kFa2VAttention), 1),
                Table::num(vllm / fa2p, 2) + "x",
            });
        }
        json.printTable("Table 7: " + setupLabel(setup), table);
    }
    std::printf("\npaper anchors (bs16): Yi-6B 32.3/11.5/15.2/11.3; "
                "Llama-3-8B 17.8/11.9/12.1/11.8; Yi-34B(bs16) "
                "55.1/21.7/28.8/21.8\n");
    return 0;
}
