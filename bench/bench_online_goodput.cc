/**
 * @file
 * Online serving goodput under SLOs: a bursty multi-tenant trace
 * streamed through ServingCluster's submit() path, comparing static
 * routing (the offline pre-pass policy applied at dispatch), live
 * routing (replica state sampled at every arrival) and live routing
 * with cross-replica migration, on both backend families.
 *
 * Two fleets, each swept over all three modes:
 *
 *  - "skewed fleet": one replica holds a fraction of its peers' KV
 *    budget. The static estimate model keeps feeding the starved
 *    replica, which thrashes through the swap tier; live routing
 *    sees the saturation and queue depth at dispatch time.
 *    Asserted: live routing strictly improves goodput AND p99 TTFT
 *    over static, on both backends.
 *
 *  - "overcommitted fleet": every replica is tight and the hot
 *    tenant's bursts exceed fleet capacity, so even live routing
 *    strands requests behind saturated replicas; migration drains
 *    them toward whichever replica frees up first.
 *    Asserted: migration reduces total SLO violations (TTFT + TBT)
 *    and actually triggers, on both backends.
 */

#include "bench_util.hh"

#include "serving/cluster.hh"

using namespace vattn;
using namespace vattn::bench;

namespace
{

u64
kvBytes(i64 tokens)
{
    return perf::ModelSpec::yi6B().kvBytesPerTokenPerWorker(1) *
           static_cast<u64>(tokens);
}

serving::EngineConfig
replicaConfig(perf::BackendKind backend, i64 budget_tokens)
{
    serving::EngineConfig config =
        makeEngineConfig({perf::ModelSpec::yi6B(), 1}, backend);
    config.kv_budget_override = kvBytes(budget_tokens);
    config.scheduler.max_num_seqs = 16;
    config.scheduler.max_batched_tokens = 16 * 1024;
    config.vattn.max_batch_size = 16;
    config.preemption_policy = serving::PreemptionPolicy::kSwap;
    return config;
}

struct ModeResult
{
    double goodput = 0;
    double ttft_p99_s = 0;
    i64 violations_ttft = 0;
    i64 violations_tbt = 0;
    i64 violations() const
    {
        return violations_ttft + violations_tbt;
    }
    i64 shed = 0;
    u64 migrations = 0;
    double req_per_min = 0;
};

ModeResult
runMode(perf::BackendKind backend,
        const std::vector<i64> &budget_tokens,
        serving::RoutingMode routing, bool migration,
        const std::vector<serving::Request> &trace)
{
    serving::ServingCluster::Config config;
    for (i64 tokens : budget_tokens) {
        config.replicas.push_back(replicaConfig(backend, tokens));
    }
    config.policy = serving::RoutingPolicy::kJoinShortestQueue;
    config.execution = serving::ClusterExecution::kEventLoop;
    serving::ServingCluster cluster(std::move(config));

    serving::OnlineOptions options;
    options.routing = routing;
    options.migration = migration;
    options.expected_requests = trace.size();
    cluster.start(options);
    for (const auto &request : trace) {
        cluster.submit(request).expectOk("online submit");
    }
    const auto report = cluster.shutdown();

    ModeResult result;
    result.goodput = report.merged.goodput();
    result.ttft_p99_s = report.merged.ttft_s.p99();
    result.violations_ttft = report.merged.slo_violations_ttft;
    result.violations_tbt = report.merged.slo_violations_tbt;
    result.shed = report.merged.shed_requests;
    result.migrations = report.merged.migrations_in;
    result.req_per_min = report.merged.requestsPerMinute();
    return result;
}

std::vector<serving::Request>
sloTrace(int n, double hot_fraction, double mean_qps, double period_s)
{
    auto trace = serving::skewedTenantOnlineTrace(
        n, hot_fraction, mean_qps, period_s);
    for (auto &request : trace) {
        request.ttft_deadline_ns = 5'000'000'000;  // 5 s
        request.tbt_deadline_ns = 400'000'000;     // 400 ms
    }
    return trace;
}

struct Mode
{
    const char *name;
    serving::RoutingMode routing;
    bool migration;
};

constexpr Mode kModes[] = {
    {"static", serving::RoutingMode::kStatic, false},
    {"live", serving::RoutingMode::kLive, false},
    {"live_migration", serving::RoutingMode::kLive, true},
};

} // namespace

int
main()
{
    banner("Online serving: goodput under SLOs",
           "bursty multi-tenant trace -> Yi-6B replica fleets; "
           "static vs live routing vs live+migration; "
           "TTFT SLO 5s, TBT SLO 400ms");
    JsonReport json("online_goodput");

    int failures = 0;
    const auto expect = [&failures](bool ok, const std::string &what) {
        std::printf("  %-6s %s\n", ok ? "[ok]" : "[FAIL]",
                    what.c_str());
        if (!ok) {
            ++failures;
        }
    };

    // Budgets are scaled per backend family so both fleets feel the
    // same pressure: vAttention commits whole 2048-token page-group
    // rows per sequence while the paged backend allocates 256-token
    // blocks, so an identical token budget admits ~8x fewer
    // concurrent sequences on vAttention.
    struct Scenario
    {
        const char *name;
        std::vector<i64> vattn_budget_tokens;
        std::vector<i64> paged_budget_tokens;
        double hot_fraction;
        double mean_qps;
        // Diurnal period; 0 scales it with the trace length so the
        // smoke run covers the same number of peaks as the full run.
        double period_s;
    };
    const Scenario scenarios[] = {
        // One starved replica: static routing keeps feeding it.
        {"skewed_fleet",
         {12 * 1024, 48 * 1024, 48 * 1024},
         {6 * 1024, 24 * 1024, 24 * 1024},
         0.4, 2.5, 60.0},
        // Every replica tight: bursts exceed fleet capacity and
        // strand requests wherever they queued.
        {"overcommit",
         {12 * 1024, 48 * 1024, 48 * 1024},
         {6 * 1024, 24 * 1024, 24 * 1024},
         0.5, 2.8, 0.0},
    };
    const int n = smokeN(240, 180);

    for (const Scenario &scenario : scenarios) {
        const double period_s =
            scenario.period_s > 0
                ? scenario.period_s
                : static_cast<double>(n) / (1.5 * scenario.mean_qps);
        const auto trace = sloTrace(n, scenario.hot_fraction,
                                    scenario.mean_qps, period_s);
        for (perf::BackendKind backend :
             {perf::BackendKind::kFa2VAttention,
              perf::BackendKind::kFa2Paged}) {
            Table table({"mode", "goodput", "TTFT p99 (s)",
                         "viol TTFT", "viol TBT", "shed",
                         "migrations", "req/min"});
            const auto &budgets =
                backend == perf::BackendKind::kFa2VAttention
                    ? scenario.vattn_budget_tokens
                    : scenario.paged_budget_tokens;
            ModeResult results[3];
            for (std::size_t m = 0; m < 3; ++m) {
                results[m] = runMode(backend, budgets,
                                     kModes[m].routing,
                                     kModes[m].migration, trace);
                const auto &r = results[m];
                table.addRow({kModes[m].name,
                              Table::num(r.goodput, 3),
                              Table::num(r.ttft_p99_s, 2),
                              std::to_string(r.violations_ttft),
                              std::to_string(r.violations_tbt),
                              std::to_string(r.shed),
                              std::to_string(r.migrations),
                              Table::num(r.req_per_min, 1)});
                const std::string key = std::string(scenario.name) +
                                        "_" + toString(backend) + "_" +
                                        kModes[m].name;
                json.metric(key + "_goodput", r.goodput);
                json.metric(key + "_ttft_p99_s", r.ttft_p99_s);
                json.metric(key + "_slo_violations_ttft",
                            r.violations_ttft);
                json.metric(key + "_slo_violations_tbt",
                            r.violations_tbt);
                json.metric(key + "_shed_requests", r.shed);
                json.metric(key + "_migrations",
                            static_cast<i64>(r.migrations));
            }
            json.printTable(std::string(scenario.name) + ", " +
                                toString(backend) + " (" +
                                std::to_string(n) + " requests)",
                            table);

            const auto &st = results[0];
            const auto &live = results[1];
            const auto &mig = results[2];
            const std::string tag = std::string(scenario.name) + "/" +
                                    toString(backend);
            if (std::string(scenario.name) == "skewed_fleet") {
                expect(live.goodput > st.goodput,
                       tag + ": live routing strictly improves "
                             "goodput (" +
                           Table::num(st.goodput, 3) + " -> " +
                           Table::num(live.goodput, 3) + ")");
                expect(live.ttft_p99_s < st.ttft_p99_s,
                       tag + ": live routing strictly improves p99 "
                             "TTFT (" +
                           Table::num(st.ttft_p99_s, 2) + "s -> " +
                           Table::num(live.ttft_p99_s, 2) + "s)");
            } else {
                expect(mig.violations() < live.violations(),
                       tag + ": migration reduces SLO violations (" +
                           std::to_string(live.violations()) +
                           " -> " +
                           std::to_string(mig.violations()) + ")");
                expect(mig.migrations > 0,
                       tag + ": migrations actually happened");
            }
        }
    }

    std::printf("\nstatic routing dispatches on the estimate model "
                "alone and keeps feeding the starved replica; live "
                "routing reads queue depth and KV saturation at every "
                "arrival, and migration drains requests already "
                "stranded behind a thrashing swap tier.\n");
    if (failures > 0) {
        std::printf("\n%d goodput assertion(s) FAILED\n", failures);
        return 1;
    }
    return 0;
}
