/**
 * @file
 * Table 10 (§8.2): tensor slicing as the driver-change-free
 * alternative for shrinking 2MB-page block sizes. Storing all layers
 * of a token in one [B, L, N, H, D] tensor divides the per-group
 * token footprint by N — e.g. Llama-3-8B TP-1 drops from 1024 to 32
 * tokens per 2MB page.
 */

#include "bench_util.hh"
#include "core/kv_geometry.hh"

using namespace vattn;
using namespace vattn::bench;

namespace
{

i64
blockSize(const perf::ModelSpec &model, int tp, bool slicing)
{
    core::Config config;
    config.num_layers = model.num_layers;
    config.num_kv_heads = model.kvHeadsPerWorker(tp);
    config.head_dim = model.head_dim;
    config.bytes_per_elem = model.bytes_per_elem;
    config.max_batch_size = 1;
    config.max_context_len = model.max_context_len;
    config.page_group = PageGroup::k2MB;
    config.use_driver_extension = false;
    config.tensor_slicing = slicing;
    return core::KvGeometry(config).tokensPerGroup();
}

} // namespace

int
main()
{
    banner("Table 10: block size with and without tensor slicing",
           "2MB pages, stock CUDA APIs (no driver modification)");
    JsonReport json("table10_tensor_slicing");

    Table table({"model", "w/o slicing", "w/ slicing", "reduction"});
    for (const auto &base : evalSetups()) {
        for (int tp : {1, 2, 4, 8}) {
            // GQA bound: a worker needs at least one whole KV head.
            if (base.model.num_kv_heads % tp != 0) {
                continue;
            }
            const i64 plain = blockSize(base.model, tp, false);
            const i64 sliced = blockSize(base.model, tp, true);
            table.addRow({
                base.model.name + " (TP-" + std::to_string(tp) + ")",
                Table::integer(plain),
                Table::integer(sliced),
                Table::num(static_cast<double>(plain) /
                               static_cast<double>(sliced),
                           0) + "x",
            });
            const std::string key = base.model.name + "_tp" +
                                    std::to_string(tp);
            json.metric(key + "_block_tokens_plain", plain);
            json.metric(key + "_block_tokens_sliced", sliced);
        }
    }
    json.printTable("Table 10 (paper: 2048->64, 4096->128, 1024->32, "
                "2048->64, 1024->18, 2048->36; we compute 17 where "
                "the paper rounds Yi-34B TP-1 to 18)", table);
    return 0;
}
