/**
 * @file
 * Figure 15 (§7.6.3): maximum batch size sustained on a dynamic
 * chat-style trace (OpenChat-like, 7 QPS) with different page-group
 * sizes. Smaller page-groups waste less memory to rounding, so more
 * requests fit: paper reports +1.23x/1.26x/1.20x going from 2MB to
 * 64KB for Yi-6B/Llama-3-8B/Yi-34B.
 */

#include "bench_util.hh"

using namespace vattn;
using namespace vattn::bench;

int
main()
{
    banner("Figure 15: max batch size vs page-group size",
           "OpenChat-like trace at 7 QPS (engine simulation)");
    JsonReport json("fig15_max_batch_size");

    Table table({"model", "2MB", "256KB", "128KB", "64KB",
                 "64KB vs 2MB"});
    for (const auto &setup : evalSetups()) {
        std::vector<std::string> cells{setupLabel(setup)};
        i64 peak_2mb = 0;
        i64 peak_64kb = 0;
        const PageGroup order[] = {PageGroup::k2MB, PageGroup::k256KB,
                                   PageGroup::k128KB, PageGroup::k64KB};
        for (PageGroup group : order) {
            auto config = makeEngineConfig(
                setup, perf::BackendKind::kFa2VAttention);
            config.vattn.page_group = group;
            config.scheduler.max_num_seqs = 400;
            config.vattn.max_batch_size = 400;
            // vLLM v0.2.7's default prefill token budget: admission
            // trickles in (~one prompt per iteration) instead of
            // flooding memory with prompt-stage requests.
            config.scheduler.max_batched_tokens = 2560;
            // Big-batch serving needs a larger activation share, so
            // the KV pool gets less than in the long-context runs.
            config.gpu_mem_util = 0.80;
            serving::Engine engine(config);

            auto trace = serving::openChatTrace(smokeN(1200, 60));
            serving::assignPoissonArrivals(trace, 7.0, 99);
            const auto report = engine.run(std::move(trace));
            cells.push_back(Table::integer(report.peak_batch));
            if (group == PageGroup::k2MB) {
                peak_2mb = report.peak_batch;
            }
            if (group == PageGroup::k64KB) {
                peak_64kb = report.peak_batch;
            }
        }
        cells.push_back(Table::num(static_cast<double>(peak_64kb) /
                                       static_cast<double>(peak_2mb),
                                   2) + "x");
        table.addRow(cells);
    }
    json.printTable("Figure 15 (paper: 187->240 (1.23x), 203->258 "
                "(1.26x), 56->68 (1.20x) including intermediate "
                "sizes)", table);
    return 0;
}
