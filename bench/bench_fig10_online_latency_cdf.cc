/**
 * @file
 * Figure 10: CDF of end-to-end request execution latency under online
 * load (arXiv-Summarization, 512 requests, Poisson arrivals) near
 * system capacity. vAttention reduces the median latency by up to
 * 42%/28%/29% for Yi-6B/Llama-3-8B/Yi-34B because it prefilled new
 * requests faster, cutting queueing delays.
 */

#include "bench_util.hh"

using namespace vattn;
using namespace vattn::bench;

namespace
{

struct QpsPoints
{
    double low;
    double high;
};

QpsPoints
qpsFor(const std::string &model)
{
    // The paper's load points per model (§7.4).
    if (model == "Yi-6B") {
        return {0.20, 0.25};
    }
    if (model == "Llama-3-8B") {
        return {0.25, 0.30};
    }
    return {0.10, 0.125};
}

} // namespace

int
main()
{
    banner("Figure 10: online request latency CDF",
           "arXiv-Summarization online trace, 512 reqs, Poisson "
           "arrivals; seconds");
    JsonReport json("fig10_online_latency_cdf");

    const perf::BackendKind kinds[] = {
        perf::BackendKind::kFa2Paged,
        perf::BackendKind::kFiPaged,
        perf::BackendKind::kFa2VAttention,
    };

    for (const auto &setup : evalSetups()) {
        const auto points = qpsFor(setup.model.name);
        for (double qps : {points.low, points.high}) {
            Table table({"backend", "p25", "median", "p75", "p90",
                         "p99", "mean", "TBT p99", "norm p50"});
            double medians[3] = {0, 0, 0};
            for (int i = 0; i < 3; ++i) {
                auto trace = serving::arxivOnlineTrace(smokeN(512, 16));
                serving::assignPoissonArrivals(trace, qps, 2024);
                serving::Engine engine(
                    makeEngineConfig(setup, kinds[i]));
                auto report = engine.run(std::move(trace));
                medians[i] = report.latency_s.median();
                table.addRow({
                    toString(kinds[i]),
                    Table::num(report.latency_s.quantile(0.25), 1),
                    Table::num(report.latency_s.median(), 1),
                    Table::num(report.latency_s.quantile(0.75), 1),
                    Table::num(report.latency_s.quantile(0.90), 1),
                    Table::num(report.latency_s.p99(), 1),
                    Table::num(report.latency_s.mean(), 1),
                    Table::num(report.tbt_s.p99(), 2),
                    Table::num(report.normalized_latency_s.median(),
                               3),
                });
                // Prints only when the prefix cache was exercised, so
                // the default output stays byte-identical.
                maybePrintPrefixStats(report, toString(kinds[i]));
            }
            json.printTable("Figure 10: " + setupLabel(setup) + ", QPS=" +
                        Table::num(qps, 3), table);
            std::printf("median reduction vs FA2_Paged: %.0f%%  (vs "
                        "FI_Paged: %.0f%%)\n",
                        100.0 * (1.0 - medians[2] / medians[0]),
                        100.0 * (1.0 - medians[2] / medians[1]));
        }
    }
    std::printf("\npaper: median latency reduced by up to 42%% "
                "(Yi-6B@0.25), 28%% (Llama-3-8B@0.3), 29%% "
                "(Yi-34B@0.1)\n");
    return 0;
}
