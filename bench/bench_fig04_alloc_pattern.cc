/**
 * @file
 * Figure 4: decode throughput (a) and physical memory allocation rate
 * (b) vs batch size, initial context 1K. Both saturate with batch
 * size; the peak allocation rate stays under ~750 MB/s — the §4
 * observation that makes demand paging through slow VMM APIs viable.
 */

#include "bench_util.hh"

using namespace vattn;
using namespace vattn::bench;

int
main()
{
    banner("Figure 4: decode throughput and memory allocation rate",
           "batch 1-320, initial context 1K, A100s (engine simulation)");
    JsonReport json("fig04_alloc_pattern");

    for (const auto &setup : evalSetups()) {
        Table table({"batch", "effective", "tokens/s", "alloc MB/s"});
        double peak_alloc = 0;
        for (int batch : {1, 32, 64, 128, 192, 256, 320}) {
            auto config = makeEngineConfig(
                setup, perf::BackendKind::kFa2VAttention);
            config.scheduler.max_num_seqs = 512;
            config.vattn.max_batch_size = 512;
            // Decode-only stress: nearly all memory can go to KV
            // (Yi-34B at batch 320 holds 38GB of KV per worker).
            config.gpu_mem_util = 0.95;
            config.activation_reserve_bytes = 1 * GiB;
            serving::Engine engine(config);
            // Stagger initial contexts across one page-group span so
            // group-boundary crossings — and hence allocations — are
            // spread uniformly over the run (steady state).
            const i64 span = 2048; // tokens per 2MB group, all setups
            std::vector<i64> contexts;
            for (int i = 0; i < batch; ++i) {
                contexts.push_back(1024 + (static_cast<i64>(i) * span) /
                                              batch);
            }
            auto run = engine.decodeOnlyVaried(contexts, 300);
            peak_alloc =
                std::max(peak_alloc, run.alloc_bytes_per_s / 1e6);
            table.addRow({
                Table::integer(batch),
                Table::integer(run.effective_batch),
                Table::num(run.tokens_per_s, 0),
                Table::num(run.alloc_bytes_per_s / 1e6, 1),
            });
        }
        json.printTable("Figure 4: " + setupLabel(setup), table);
        std::printf("peak allocation rate: %.0f MB/s "
                    "(paper: <= ~750 MB/s across models)\n",
                    peak_alloc);
    }
    return 0;
}
