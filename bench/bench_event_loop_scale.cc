/**
 * @file
 * Cluster driver scaling: thread-per-replica vs the event-driven
 * coordinator, swept over replica count x per-replica trace length on
 * two arrival regimes (sparse Poisson and bursty diurnal). Each cell
 * runs the identical routed workload under both drivers and reports
 * wall-clock, simulated makespan and the wall-clock speedup; the
 * merged reports are cross-checked for equality, so the speedup is
 * measured on provably identical simulations.
 *
 * The regime that motivates the event loop: replica counts far beyond
 * the host's cores with little work per replica, where the thread
 * driver pays creation + context-switch overhead per replica and the
 * coordinator just walks the virtual-time heap. In full mode the
 * sparse small-share rows at 64+ replicas assert a >= 5x wall-clock
 * speedup (comfortably under the measured margin); smoke mode skips
 * the assertion (timing under smoke is meaningless).
 */

#include "bench_util.hh"

#include <chrono>

#include "serving/cluster.hh"

using namespace vattn;
using namespace vattn::bench;

namespace
{

struct CellResult
{
    double threads_ms = 0;
    double event_ms = 0;
    double sim_s = 0;
    i64 requests = 0;
};

serving::EngineConfig
lightReplica()
{
    serving::EngineConfig config;
    config.model = perf::ModelSpec::yi6B();
    config.backend = perf::BackendKind::kFa2Paged;
    config.kv_budget_override = 256 * MiB;
    config.scheduler.max_num_seqs = 16;
    config.scheduler.max_batched_tokens = 8192;
    return config;
}

std::vector<serving::Request>
makeTrace(int replicas, int reqs_per_replica, bool diurnal)
{
    std::vector<serving::Request> trace(
        static_cast<std::size_t>(replicas * reqs_per_replica));
    for (std::size_t i = 0; i < trace.size(); ++i) {
        trace[i].id = static_cast<u64>(i);
        trace[i].prompt_tokens = 16;
        trace[i].max_new_tokens = 4;
    }
    // Low offered load either way (the gaps are what the event core
    // jumps over); the diurnal day packs the same mean into bursts.
    const double mean_qps = 0.2 * replicas;
    if (diurnal) {
        serving::assignDiurnalArrivals(trace, mean_qps,
                                       /*period_s=*/60.0,
                                       /*depth=*/0.9, /*seed=*/13);
    } else {
        serving::assignPoissonArrivals(trace, mean_qps, /*seed=*/11);
    }
    return trace;
}

double
wallMs(serving::ServingCluster &cluster,
       std::vector<serving::Request> trace,
       serving::ClusterReport &out)
{
    const auto t0 = std::chrono::steady_clock::now();
    out = cluster.run(std::move(trace));
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

CellResult
runCell(int replicas, int reqs_per_replica, bool diurnal)
{
    CellResult cell;
    serving::ClusterReport threads_report;
    serving::ClusterReport event_report;
    for (int pass = 0; pass < 2; ++pass) {
        auto config = serving::ServingCluster::uniform(
            lightReplica(), replicas, serving::RoutingPolicy::kRoundRobin);
        config.execution = pass == 0
                               ? serving::ClusterExecution::kThreads
                               : serving::ClusterExecution::kEventLoop;
        serving::ServingCluster cluster(std::move(config));
        auto &report = pass == 0 ? threads_report : event_report;
        const double ms = wallMs(
            cluster, makeTrace(replicas, reqs_per_replica, diurnal),
            report);
        (pass == 0 ? cell.threads_ms : cell.event_ms) = ms;
    }
    // Same simulation either way — the wall-clock comparison below is
    // only meaningful because these are equal.
    fatal_if(threads_report.merged.num_requests !=
                     event_report.merged.num_requests ||
                 threads_report.merged.makespan_ns !=
                     event_report.merged.makespan_ns ||
                 threads_report.merged.decode_tokens !=
                     event_report.merged.decode_tokens,
             "event-loop run diverged from the thread run");
    cell.sim_s = SimClock::toSeconds(event_report.merged.makespan_ns);
    cell.requests = event_report.merged.num_requests;
    return cell;
}

} // namespace

int
main()
{
    banner("Cluster event-loop scaling",
           "thread-per-replica vs event-driven coordinator; identical "
           "simulations, wall-clock compared (Yi-6B paged replicas, "
           "16-token prompts, 4 output tokens)");
    JsonReport json("bench_event_loop_scale");

    const std::vector<int> replica_counts =
        smokeMode() ? std::vector<int>{2, 4}
                    : std::vector<int>{16, 64, 128};
    const std::vector<int> lengths = {1, 4};

    double min_asserted_speedup = 0;
    for (const bool diurnal : {false, true}) {
        const char *regime = diurnal ? "diurnal" : "sparse";
        Table table({"replicas", "reqs/replica", "threads ms",
                     "event ms", "speedup", "sim s", "requests"});
        for (const int replicas : replica_counts) {
            for (const int reqs_per_replica : lengths) {
                const CellResult cell =
                    runCell(replicas, reqs_per_replica, diurnal);
                const double speedup =
                    cell.event_ms > 0 ? cell.threads_ms / cell.event_ms
                                      : 0;
                table.addRow({std::to_string(replicas),
                              std::to_string(reqs_per_replica),
                              Table::num(cell.threads_ms, 2),
                              Table::num(cell.event_ms, 2),
                              Table::num(speedup, 2),
                              Table::num(cell.sim_s, 1),
                              std::to_string(cell.requests)});
                const std::string key =
                    std::string(regime) + "_n" +
                    std::to_string(replicas) + "_r" +
                    std::to_string(reqs_per_replica);
                // Wall-clock keys carry "wall"/"speedup" so the CI
                // perf-diff skips them (host-dependent); the sim-side
                // metrics are deterministic and tracked.
                json.metric(key + "_threads_wall_ms", cell.threads_ms);
                json.metric(key + "_event_wall_ms", cell.event_ms);
                json.metric(key + "_speedup", speedup);
                json.metric(key + "_sim_s", cell.sim_s);
                json.metric(key + "_requests", cell.requests);
                // The headline claim, asserted where the margin is
                // largest: small shares at replica counts well past
                // the core count. Skipped under smoke (tiny replica
                // counts, meaningless timing).
                if (!smokeMode() && !diurnal && replicas >= 64 &&
                    reqs_per_replica == 1) {
                    fatal_if(speedup < 5.0,
                             "event loop only ", speedup,
                             "x faster than threads at ", replicas,
                             " replicas (need >= 5x)");
                    min_asserted_speedup =
                        min_asserted_speedup == 0
                            ? speedup
                            : std::min(min_asserted_speedup, speedup);
                }
            }
        }
        json.printTable(std::string("regime = ") + regime +
                            " arrivals (0.2 QPS/replica mean)",
                        table);
    }
    if (!smokeMode()) {
        json.metric("min_asserted_speedup", min_asserted_speedup);
        std::printf("\nasserted: event loop >= 5x threads on sparse "
                    "1-request shares at 64+ replicas (measured min "
                    "%.1fx)\n",
                    min_asserted_speedup);
    }
    return 0;
}
