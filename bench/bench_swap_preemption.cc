/**
 * @file
 * Memory-pressure study: recompute vs swap vs auto preemption on both
 * memory backends under a bursty online trace that overcommits the KV
 * budget. vLLM-style recomputation burns prefill FLOPs exactly when
 * the system is most loaded; the host-memory swap tier moves KV over
 * PCIe instead (on vAttention, swap-out unmaps physical page-groups
 * while the virtual layout stays intact, so swap-in is remap + copy).
 * kAuto compares the modeled recompute time against the modeled PCIe
 * round trip per victim and picks the cheaper.
 */

#include "bench_util.hh"

#include "common/rng.hh"

using namespace vattn;
using namespace vattn::bench;

namespace
{

/**
 * Bursty long-form chat: every 30 s a batch of requests lands at
 * once. Prompts are small (admission lets nearly everyone in), but
 * decodes run long, so the admitted set's KV grows far past the
 * budget mid-flight — the regime where the preemption policy decides
 * everything: recomputation throws away thousands of computed tokens
 * per victim, swap moves them over PCIe instead.
 */
std::vector<serving::Request>
burstTrace(int bursts, int per_burst, u64 seed)
{
    Rng rng(seed);
    std::vector<serving::Request> trace;
    trace.reserve(static_cast<std::size_t>(bursts * per_burst));
    for (int b = 0; b < bursts; ++b) {
        for (int i = 0; i < per_burst; ++i) {
            serving::Request request;
            request.id = trace.size();
            const bool long_doc = rng.uniformInt(0, 7) == 0;
            request.prompt_tokens =
                long_doc ? rng.uniformInt(4000, 8000)
                         : rng.uniformInt(256, 1024);
            request.max_new_tokens = rng.uniformInt(1500, 3000);
            request.arrival_ns =
                static_cast<TimeNs>(b) * 30 * kSec +
                static_cast<TimeNs>(rng.uniformInt(0, 200)) * kMsec;
            trace.push_back(request);
        }
    }
    return trace;
}

serving::EngineConfig
pressuredConfig(perf::BackendKind kind,
                serving::PreemptionPolicy policy,
                serving::PreemptionVictim victim)
{
    serving::EngineConfig config;
    config.model = perf::ModelSpec::yi6B();
    config.gpu = perf::GpuSpec::a100();
    config.tp_degree = 1;
    config.backend = kind;
    // ~40K tokens of KV: prompts are admitted comfortably, but decode
    // growth pushes the admitted set far past the budget.
    config.kv_budget_override =
        config.model.kvBytesPerTokenPerWorker(1) * 40000;
    // Seats sized near the budget's resident capacity, so preemption
    // churn comes from decode growth (real victims with computed KV),
    // not from admission bouncing empty slots.
    config.scheduler.max_num_seqs = 24;
    config.scheduler.max_batched_tokens = 8192;
    config.vattn.max_batch_size = 24;
    config.preemption_policy = policy;
    config.preemption_victim = victim;
    // A100 hosts carry hundreds of GB of DRAM; with 2MB page-groups a
    // swapped vAttention request stashes whole group-rows (128MB per
    // 2048 tokens across the 64 buffers), so the tier must be sized
    // for the parked set, not vLLM's old 4GB default.
    config.host_swap_bytes = 64 * GiB;
    return config;
}

} // namespace

int
main()
{
    banner("Swap vs recompute preemption under memory pressure",
           "bursty online trace overcommitting the KV budget; "
           "Yi-6B on 1x A100, both memory backends");
    JsonReport json("swap_preemption");

    const int bursts = smokeN(4, 2);
    const int per_burst = smokeN(24, 6);

    const perf::BackendKind kinds[] = {
        perf::BackendKind::kFa2Paged,
        perf::BackendKind::kFa2VAttention,
    };
    const serving::PreemptionPolicy policies[] = {
        serving::PreemptionPolicy::kRecompute,
        serving::PreemptionPolicy::kSwap,
        serving::PreemptionPolicy::kAuto,
    };

    for (auto kind : kinds) {
        Table table({"policy", "TTFT p50 s", "TTFT p99 s", "TBT p99 s",
                     "latency p99 s", "preempt", "swaps", "moved GB",
                     "stall ms"});
        double ttft_p99_recompute = 0;
        double ttft_p99_swap = 0;
        for (auto policy : policies) {
            serving::Engine engine(pressuredConfig(
                kind, policy, serving::PreemptionVictim::kLifo));
            const auto report =
                engine.run(burstTrace(bursts, per_burst, 1));
            if (policy == serving::PreemptionPolicy::kRecompute) {
                ttft_p99_recompute = report.ttft_s.p99();
            }
            if (policy == serving::PreemptionPolicy::kSwap) {
                ttft_p99_swap = report.ttft_s.p99();
            }
            table.addRow({
                toString(policy),
                Table::num(report.ttft_s.median(), 2),
                Table::num(report.ttft_s.p99(), 2),
                Table::num(report.tbt_s.p99(), 3),
                Table::num(report.latency_s.p99(), 2),
                Table::integer(static_cast<i64>(report.preemptions)),
                Table::integer(static_cast<i64>(report.swap_outs +
                                                report.swap_ins)),
                Table::num(static_cast<double>(report.swap_out_bytes +
                                               report.swap_in_bytes) /
                               1e9,
                           2),
                Table::num(static_cast<double>(report.swap_stall_ns) /
                               1e6,
                           1),
            });
        }
        json.printTable(std::string("preemption policies on ") +
                    toString(kind), table);
        if (ttft_p99_recompute > 0) {
            std::printf("p99 TTFT, swap vs recompute: %.0f%% lower\n",
                        100.0 * (1.0 - ttft_p99_swap /
                                           ttft_p99_recompute));
        }
    }

    // Victim-selection knob at a glance (vAttention, recompute).
    Table victims({"victim policy", "TTFT p99 s", "latency p99 s",
                   "preempt"});
    for (auto victim :
         {serving::PreemptionVictim::kLifo,
          serving::PreemptionVictim::kSmallestRecompute}) {
        serving::Engine engine(pressuredConfig(
            perf::BackendKind::kFa2VAttention,
            serving::PreemptionPolicy::kRecompute, victim));
        const auto report =
            engine.run(burstTrace(bursts, per_burst, 1));
        victims.addRow({
            toString(victim),
            Table::num(report.ttft_s.p99(), 2),
            Table::num(report.latency_s.p99(), 2),
            Table::integer(static_cast<i64>(report.preemptions)),
        });
    }
    json.printTable("victim selection (recompute policy, vAttention)", victims);
    return 0;
}
