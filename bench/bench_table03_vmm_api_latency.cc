/**
 * @file
 * Table 3: latency of the VMM driver APIs per page-group size — the
 * stock CUDA path (2MB) and the paper's driver-extension path
 * (64KB/128KB/256KB). Values are the calibrated model; the second
 * table exercises the live simulated driver and cross-checks that the
 * ledger charges exactly these costs.
 */

#include "bench_util.hh"
#include "cuvmm/driver.hh"

using namespace vattn;
using namespace vattn::bench;

int
main()
{
    banner("Table 3: CUDA VMM / driver-extension API latencies",
           "microseconds per call; '-' = fused into another call");
    JsonReport json("table03_vmm_api_latency");

    cuvmm::LatencyModel model;
    Table table({"API", "64KB", "128KB", "256KB", "2MB"});
    struct Row
    {
        const char *name;
        cuvmm::Api api;
        bool only_2mb;
    };
    const Row rows[] = {
        {"MemAddressReserve", cuvmm::Api::kAddressReserve, false},
        {"MemCreate", cuvmm::Api::kCreate, false},
        {"MemMap", cuvmm::Api::kMap, false},
        {"MemSetAccess", cuvmm::Api::kSetAccess, true},
        {"MemUnmap", cuvmm::Api::kUnmap, true},
        {"MemRelease", cuvmm::Api::kRelease, false},
        {"MemAddressFree", cuvmm::Api::kAddressFree, false},
    };
    for (const Row &row : rows) {
        std::vector<std::string> cells{row.name};
        for (PageGroup group : kAllPageGroups) {
            if (row.only_2mb && group != PageGroup::k2MB) {
                cells.push_back("-");
            } else {
                cells.push_back(Table::num(
                    static_cast<double>(model.cost(row.api, group)) /
                        1e3,
                    1));
            }
        }
        table.addRow(cells);
    }
    json.printTable("Table 3 (model values = paper's measurements)", table);

    // Live cross-check: run one full lifecycle per page-group size on
    // the simulated driver and report the charged latency per call.
    gpu::GpuDevice device;
    cuvmm::Driver driver(device);
    Table live({"page-group", "reserve us", "create us", "map us",
                "reclaim us", "free us", "steady-state grow us"});
    for (PageGroup group : kAllPageGroups) {
        Addr va = 0;
        cuvmm::MemHandle handle = cuvmm::kInvalidHandle;
        driver.consumeElapsedNs();

        std::vector<double> us;
        if (group == PageGroup::k2MB) {
            driver.cuMemAddressReserve(&va, bytes(group));
            us.push_back(driver.consumeElapsedNs() / 1e3);
            driver.cuMemCreate(&handle, bytes(group));
            us.push_back(driver.consumeElapsedNs() / 1e3);
            driver.cuMemMap(va, bytes(group), 0, handle);
            driver.cuMemSetAccess(va, bytes(group));
            us.push_back(driver.consumeElapsedNs() / 1e3);
            driver.cuMemUnmap(va, bytes(group));
            driver.cuMemRelease(handle);
            us.push_back(driver.consumeElapsedNs() / 1e3);
            driver.cuMemAddressFree(va, bytes(group));
            us.push_back(driver.consumeElapsedNs() / 1e3);
        } else {
            driver.vMemReserve(&va, bytes(group));
            us.push_back(driver.consumeElapsedNs() / 1e3);
            driver.vMemCreate(&handle, group);
            us.push_back(driver.consumeElapsedNs() / 1e3);
            driver.vMemMap(va, handle);
            us.push_back(driver.consumeElapsedNs() / 1e3);
            driver.vMemRelease(handle);
            us.push_back(driver.consumeElapsedNs() / 1e3);
            driver.vMemFree(va, bytes(group));
            us.push_back(driver.consumeElapsedNs() / 1e3);
        }
        live.addRow({
            toString(group),
            Table::num(us[0], 1),
            Table::num(us[1], 1),
            Table::num(us[2], 1),
            Table::num(us[3], 1),
            Table::num(us[4], 1),
            Table::num(static_cast<double>(
                           driver.latency().mapGroupCost(group)) /
                           1e3,
                       1),
        });
    }
    json.printTable("Live driver lifecycle (map column includes the access "
               "grant; reclaim = unmap+release path)", live);
    return 0;
}
