/**
 * @file
 * Table 6: prefill completion time and attention time (in
 * parentheses) for 64K/128K/192K contexts under FlashAttention-2 and
 * FlashInfer, paged vs vAttention. Paper example: Yi-6B @192K:
 * FA2 paged 81.5s (70.0s) vs vAttention 64.6s (53.6s).
 */

#include "bench_util.hh"

using namespace vattn;
using namespace vattn::bench;

namespace
{

std::string
cell(serving::Engine &engine, i64 ctx)
{
    const auto run = engine.prefillOnce(ctx);
    return Table::num(static_cast<double>(run.total_ns) / 1e9, 1) +
           " (" +
           Table::num(static_cast<double>(run.attention_ns) / 1e9, 1) +
           ")";
}

} // namespace

int
main()
{
    banner("Table 6: prefill completion (attention) time, seconds",
           "single prompt; FA2/FI x paged/vAttention; A100s");
    JsonReport json("table06_prefill_time");

    for (const auto &setup : evalSetups()) {
        Table table({"context", "FA2_Paged", "FA2_vAttention",
                     "FI_Paged", "FI_vAttention"});
        // One engine per backend so deferred-reclamation state does
        // not leak across columns; ctx rows share the engine (reuse
        // is identical across the paper's measurements).
        serving::Engine fa2_paged(
            makeEngineConfig(setup, perf::BackendKind::kFa2Paged));
        serving::Engine fa2_vattn(
            makeEngineConfig(setup, perf::BackendKind::kFa2VAttention));
        serving::Engine fi_paged(
            makeEngineConfig(setup, perf::BackendKind::kFiPaged));
        serving::Engine fi_vattn(
            makeEngineConfig(setup, perf::BackendKind::kFiVAttention));
        for (i64 ctx : {64 * 1024, 128 * 1024, 192 * 1024}) {
            table.addRow({
                std::to_string(ctx / 1024) + "K",
                cell(fa2_paged, ctx),
                cell(fa2_vattn, ctx),
                cell(fi_paged, ctx),
                cell(fi_vattn, ctx),
            });
        }
        json.printTable("Table 6: " + setupLabel(setup), table);
    }
    std::printf("\npaper anchors: Yi-6B@192K FA2 81.5 (70.0) vs vAttn "
                "64.6 (53.6); Llama-3-8B@192K 43.3 (35.6) vs 34.8 "
                "(26.9); Yi-34B@192K 170.7 (131.8) vs 136.9 (98.8)\n");
    return 0;
}
