/**
 * @file
 * Figure 2: overhead of PagedAttention in prefill kernels
 * (Llama-3-8B, one A100). Prints the normalized runtime of the paged
 * FlashAttention-2 / FlashInfer prefill kernels over their non-paged
 * counterparts across context lengths — paper: FA2 1.07x-1.37x
 * (growing with context), FI up to 1.42x.
 */

#include "bench_util.hh"
#include "perf/kernel_model.hh"

using namespace vattn;
using namespace vattn::bench;

int
main()
{
    banner("Figure 2: paged-vs-non-paged prefill kernel overhead",
           "model: Llama-3-8B, 1x A100 (kernel latency model)");
    JsonReport json("fig02_prefill_paging_overhead");

    perf::KernelModel model(perf::GpuSpec::a100(),
                            perf::ModelSpec::llama3_8B(), 1);

    Table table({"context", "FA2 (ms)", "FA2_Paged (ms)", "FA2 overhead",
                 "FI (ms)", "FI_Paged (ms)", "FI overhead"});
    for (i64 ctx = 1024; ctx <= 32 * 1024; ctx *= 2) {
        const auto fa2 = model.prefillAttention(
            perf::BackendKind::kFa2VAttention, ctx);
        const auto fa2_paged =
            model.prefillAttention(perf::BackendKind::kFa2Paged, ctx);
        const auto fi = model.prefillAttention(
            perf::BackendKind::kFiVAttention, ctx);
        const auto fi_paged =
            model.prefillAttention(perf::BackendKind::kFiPaged, ctx);
        table.addRow({
            std::to_string(ctx / 1024) + "K",
            Table::num(static_cast<double>(fa2) / 1e6, 3),
            Table::num(static_cast<double>(fa2_paged) / 1e6, 3),
            Table::num(static_cast<double>(fa2_paged) /
                           static_cast<double>(fa2),
                       2) + "x",
            Table::num(static_cast<double>(fi) / 1e6, 3),
            Table::num(static_cast<double>(fi_paged) / 1e6, 3),
            Table::num(static_cast<double>(fi_paged) /
                           static_cast<double>(fi),
                       2) + "x",
        });
    }
    json.printTable("Figure 2 (paper: FA2 1.07-1.37x, FI 1.25-1.42x)", table);
    return 0;
}
