/**
 * @file
 * Figure 7: prefill throughput (prompt tokens/second) vs context
 * length for FA2_Paged / FI_Paged / FA2_vAttention / FI_vAttention.
 * vAttention wins, and the gap widens once attention dominates
 * (>=16K): FA2 +1.24-1.26x at 192K, FI up to +1.36x.
 */

#include "bench_util.hh"

using namespace vattn;
using namespace vattn::bench;

int
main()
{
    banner("Figure 7: prefill throughput (tokens/second)",
           "single prompt per iteration; A100s (engine simulation)");
    JsonReport json("fig07_prefill_throughput");

    const perf::BackendKind kinds[] = {
        perf::BackendKind::kFa2Paged,
        perf::BackendKind::kFiPaged,
        perf::BackendKind::kFa2VAttention,
        perf::BackendKind::kFiVAttention,
    };

    for (const auto &setup : evalSetups()) {
        std::vector<std::unique_ptr<serving::Engine>> engines;
        for (auto kind : kinds) {
            engines.push_back(std::make_unique<serving::Engine>(
                makeEngineConfig(setup, kind)));
        }
        Table table({"context", "FA2_Paged", "FI_Paged",
                     "FA2_vAttention", "FI_vAttention",
                     "FA2 speedup", "FI speedup"});
        const i64 contexts[] = {1024,       2048,       4096,
                                8192,       16 * 1024,  32 * 1024,
                                64 * 1024,  128 * 1024, 192 * 1024};
        for (i64 ctx : contexts) {
            double tput[4];
            for (int i = 0; i < 4; ++i) {
                const auto run = engines[static_cast<std::size_t>(i)]
                                     ->prefillOnce(ctx);
                tput[i] = static_cast<double>(ctx) /
                          (static_cast<double>(run.total_ns) / 1e9);
            }
            table.addRow({
                ctx >= 1024 ? std::to_string(ctx / 1024) + "K" : "",
                Table::num(tput[0], 0),
                Table::num(tput[1], 0),
                Table::num(tput[2], 0),
                Table::num(tput[3], 0),
                Table::num(tput[2] / tput[0], 2) + "x",
                Table::num(tput[3] / tput[1], 2) + "x",
            });
        }
        json.printTable("Figure 7: " + setupLabel(setup), table);
    }
    std::printf("\npaper: at 192K FA2_vAttention/FA2_Paged = "
                "1.24-1.26x; FI gains up to 1.36x at 16K\n");
    return 0;
}
