/**
 * @file
 * Figure 8: decode throughput (tokens/second) vs batch size with 16K
 * initial contexts, 400 timed decode iterations. FA2_vAttention is on
 * par with FA2_Paged (best paged), ahead of FI_Paged, and up to
 * 1.99x/1.58x/1.53x over vLLM for Yi-6B/Llama-3-8B/Yi-34B.
 */

#include "bench_util.hh"

using namespace vattn;
using namespace vattn::bench;

int
main()
{
    banner("Figure 8: decode throughput (tokens/second)",
           "initial context 16K, 400 decode iterations; A100s");
    JsonReport json("fig08_decode_throughput");

    const perf::BackendKind kinds[] = {
        perf::BackendKind::kVllmPaged,
        perf::BackendKind::kFa2Paged,
        perf::BackendKind::kFiPaged,
        perf::BackendKind::kFa2VAttention,
    };

    for (const auto &setup : evalSetups()) {
        Table table({"batch", "vLLM", "FA2_Paged", "FI_Paged",
                     "FA2_vAttention", "vAttn/vLLM"});
        const std::vector<int> batches =
            setup.model.name == "Yi-34B"
                ? std::vector<int>{1, 2, 4, 8, 12, 16}
                : std::vector<int>{1, 2, 4, 8, 12, 16, 32};
        for (int batch : batches) {
            double tput[4];
            for (int i = 0; i < 4; ++i) {
                serving::Engine engine(
                    makeEngineConfig(setup, kinds[i]));
                tput[i] = engine.decodeOnly(batch, 16 * 1024, 400)
                              .tokens_per_s;
            }
            table.addRow({
                Table::integer(batch),
                Table::num(tput[0], 0),
                Table::num(tput[1], 0),
                Table::num(tput[2], 0),
                Table::num(tput[3], 0),
                Table::num(tput[3] / tput[0], 2) + "x",
            });
        }
        json.printTable("Figure 8: " + setupLabel(setup), table);
    }
    std::printf("\npaper: FA2_vAttention ~= FA2_Paged; gains over "
                "vLLM up to 1.99x (Yi-6B), 1.58x (Llama-3-8B), "
                "1.53x (Yi-34B), growing with batch size\n");
    return 0;
}
