/**
 * @file
 * Shared helpers for the benchmark harness. Every bench binary
 * regenerates one table or figure of the paper (see DESIGN.md §3) and
 * prints it in a uniform, diffable format.
 */

#ifndef VATTN_BENCH_BENCH_UTIL_HH
#define VATTN_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "common/table.hh"
#include "perf/backend_kind.hh"
#include "perf/gpu_spec.hh"
#include "perf/model_spec.hh"
#include "serving/engine.hh"

namespace vattn::bench
{

/** One evaluated deployment (Table 5 of the paper). */
struct Setup
{
    perf::ModelSpec model;
    int tp;
};

/**
 * CI smoke mode: VATTN_BENCH_SMOKE=1 shrinks every bench to a tiny
 * configuration so the whole suite executes in seconds. This is a
 * bitrot guard (does the binary still run end to end?), not a
 * measurement — numbers printed under smoke are meaningless.
 */
inline bool
smokeMode()
{
    const char *env = std::getenv("VATTN_BENCH_SMOKE");
    return env != nullptr && *env != '\0' && *env != '0';
}

/** @p full requests normally, @p tiny under VATTN_BENCH_SMOKE=1. */
inline int
smokeN(int full, int tiny)
{
    return smokeMode() ? tiny : full;
}

/** The three models on their paper hardware (Table 5); only Yi-6B
 *  under smoke mode. */
inline std::vector<Setup>
evalSetups()
{
    if (smokeMode()) {
        return {{perf::ModelSpec::yi6B(), 1}};
    }
    return {
        {perf::ModelSpec::yi6B(), 1},
        {perf::ModelSpec::llama3_8B(), 2},
        {perf::ModelSpec::yi34B(), 2},
    };
}

/** Engine configuration matching the paper's serving setup. */
inline serving::EngineConfig
makeEngineConfig(const Setup &setup, perf::BackendKind backend,
                 const perf::GpuSpec &gpu = perf::GpuSpec::a100())
{
    serving::EngineConfig config;
    config.model = setup.model;
    config.gpu = gpu;
    config.tp_degree = setup.tp;
    config.backend = backend;
    config.scheduler.max_num_seqs = 256;
    config.scheduler.max_batched_tokens = 192 * 1024;
    config.vattn.max_batch_size = 256;
    return config;
}

inline void
banner(const std::string &title, const std::string &what)
{
    std::printf("==========================================================\n");
    std::printf("%s\n", title.c_str());
    std::printf("%s\n", what.c_str());
    std::printf("==========================================================\n");
    std::fflush(stdout);
}

inline std::string
setupLabel(const Setup &setup)
{
    return setup.model.name + " (TP-" + std::to_string(setup.tp) + ")";
}

/**
 * Machine-readable companion to the printed tables. Each bench binary
 * owns one JsonReport; tables routed through printTable() and scalar
 * metrics recorded with metric() are written to BENCH_<name>.json in
 * the working directory (or $VATTN_BENCH_JSON_DIR) when the report is
 * destroyed. CI uploads these files as build artifacts. Recording
 * never alters stdout, so the golden text outputs stay byte-identical.
 */
class JsonReport
{
  public:
    explicit JsonReport(std::string name) : name_(std::move(name)) {}

    JsonReport(const JsonReport &) = delete;
    JsonReport &operator=(const JsonReport &) = delete;

    ~JsonReport() { write(); }

    void
    metric(const std::string &key, double value)
    {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.10g", value);
        metrics_.emplace_back(key, std::string(buf));
    }

    void
    metric(const std::string &key, i64 value)
    {
        metrics_.emplace_back(key, std::to_string(value));
    }

    void
    metric(const std::string &key, const std::string &value)
    {
        metrics_.emplace_back(key, quoted(value));
    }

    /** Print @p table under @p caption (byte-identical to
     *  Table::print) and record both in the JSON report. */
    void
    printTable(const std::string &caption, const Table &table)
    {
        table.print(caption);
        tables_.emplace_back(caption, table);
    }

    /** Record without printing (for sub-tables a bench aggregates). */
    void
    recordTable(const std::string &caption, const Table &table)
    {
        tables_.emplace_back(caption, table);
    }

    /** Flush BENCH_<name>.json now (the destructor is then a no-op). */
    void
    write()
    {
        if (written_) {
            return;
        }
        written_ = true;
        const char *dir = std::getenv("VATTN_BENCH_JSON_DIR");
        std::string path =
            (dir != nullptr && *dir != '\0') ? std::string(dir) + "/" : "";
        path += "BENCH_" + name_ + ".json";
        std::FILE *file = std::fopen(path.c_str(), "w");
        if (file == nullptr) {
            std::fprintf(stderr, "warning: cannot write %s\n",
                         path.c_str());
            return;
        }
        const std::string body = render();
        std::fwrite(body.data(), 1, body.size(), file);
        std::fclose(file);
    }

  private:
    static std::string
    quoted(const std::string &s)
    {
        std::string out = "\"";
        for (const char c : s) {
            switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
            }
        }
        out += '"';
        return out;
    }

    static std::string
    cellList(const std::vector<std::string> &cells)
    {
        std::string out = "[";
        for (std::size_t i = 0; i < cells.size(); ++i) {
            out += (i != 0 ? ", " : "") + quoted(cells[i]);
        }
        return out + "]";
    }

    std::string
    render() const
    {
        std::string out = "{\n";
        out += "  \"bench\": " + quoted(name_) + ",\n";
        out += std::string("  \"smoke\": ") +
               (smokeMode() ? "true" : "false") + ",\n";
        out += "  \"metrics\": {";
        for (std::size_t i = 0; i < metrics_.size(); ++i) {
            out += (i != 0 ? "," : "");
            out += "\n    " + quoted(metrics_[i].first) + ": " +
                   metrics_[i].second;
        }
        out += metrics_.empty() ? "},\n" : "\n  },\n";
        out += "  \"tables\": [";
        for (std::size_t t = 0; t < tables_.size(); ++t) {
            const Table &table = tables_[t].second;
            out += (t != 0 ? "," : "");
            out += "\n    {\n      \"caption\": " +
                   quoted(tables_[t].first) + ",\n";
            out += "      \"headers\": " + cellList(table.headers()) +
                   ",\n";
            out += "      \"rows\": [";
            const auto &rows = table.rows();
            for (std::size_t r = 0; r < rows.size(); ++r) {
                out += (r != 0 ? "," : "");
                out += "\n        " + cellList(rows[r]);
            }
            out += rows.empty() ? "]\n    }" : "\n      ]\n    }";
        }
        out += tables_.empty() ? "]\n" : "\n  ]\n";
        out += "}\n";
        return out;
    }

    std::string name_;
    /// key -> pre-rendered JSON value (number or quoted string)
    std::vector<std::pair<std::string, std::string>> metrics_;
    std::vector<std::pair<std::string, Table>> tables_;
    bool written_ = false;
};

/**
 * One-line prefix-cache summary. Prints nothing when the run never
 * consulted the cache (caching disabled or a trace without token
 * ids), so benches that default the feature off keep byte-identical
 * output.
 */
inline void
maybePrintPrefixStats(const serving::RunReport &report,
                      const std::string &label)
{
    if (report.prefix_lookups == 0) {
        return;
    }
    std::printf("%s prefix cache: hit rate %.1f%% (%lld/%lld), "
                "prefill tokens saved %lld (%.1f%%), shared %.1f GB "
                "cumulative, copied %.2f GB\n",
                label.c_str(), 100.0 * report.prefixHitRate(),
                static_cast<long long>(report.prefix_hits),
                static_cast<long long>(report.prefix_lookups),
                static_cast<long long>(report.prefill_tokens_saved),
                100.0 * report.prefillSavedFraction(),
                static_cast<double>(report.prefix_aliased_bytes) / 1e9,
                static_cast<double>(report.prefix_copied_bytes) / 1e9);
}

} // namespace vattn::bench

#endif // VATTN_BENCH_BENCH_UTIL_HH
