/**
 * @file
 * Shared helpers for the benchmark harness. Every bench binary
 * regenerates one table or figure of the paper (see DESIGN.md §3) and
 * prints it in a uniform, diffable format.
 */

#ifndef VATTN_BENCH_BENCH_UTIL_HH
#define VATTN_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/table.hh"
#include "perf/backend_kind.hh"
#include "perf/gpu_spec.hh"
#include "perf/model_spec.hh"
#include "serving/engine.hh"

namespace vattn::bench
{

/** One evaluated deployment (Table 5 of the paper). */
struct Setup
{
    perf::ModelSpec model;
    int tp;
};

/**
 * CI smoke mode: VATTN_BENCH_SMOKE=1 shrinks every bench to a tiny
 * configuration so the whole suite executes in seconds. This is a
 * bitrot guard (does the binary still run end to end?), not a
 * measurement — numbers printed under smoke are meaningless.
 */
inline bool
smokeMode()
{
    const char *env = std::getenv("VATTN_BENCH_SMOKE");
    return env != nullptr && *env != '\0' && *env != '0';
}

/** @p full requests normally, @p tiny under VATTN_BENCH_SMOKE=1. */
inline int
smokeN(int full, int tiny)
{
    return smokeMode() ? tiny : full;
}

/** The three models on their paper hardware (Table 5); only Yi-6B
 *  under smoke mode. */
inline std::vector<Setup>
evalSetups()
{
    if (smokeMode()) {
        return {{perf::ModelSpec::yi6B(), 1}};
    }
    return {
        {perf::ModelSpec::yi6B(), 1},
        {perf::ModelSpec::llama3_8B(), 2},
        {perf::ModelSpec::yi34B(), 2},
    };
}

/** Engine configuration matching the paper's serving setup. */
inline serving::EngineConfig
makeEngineConfig(const Setup &setup, perf::BackendKind backend,
                 const perf::GpuSpec &gpu = perf::GpuSpec::a100())
{
    serving::EngineConfig config;
    config.model = setup.model;
    config.gpu = gpu;
    config.tp = setup.tp;
    config.backend = backend;
    config.scheduler.max_num_seqs = 256;
    config.scheduler.max_batched_tokens = 192 * 1024;
    config.vattn.max_batch_size = 256;
    return config;
}

inline void
banner(const std::string &title, const std::string &what)
{
    std::printf("==========================================================\n");
    std::printf("%s\n", title.c_str());
    std::printf("%s\n", what.c_str());
    std::printf("==========================================================\n");
    std::fflush(stdout);
}

inline std::string
setupLabel(const Setup &setup)
{
    return setup.model.name + " (TP-" + std::to_string(setup.tp) + ")";
}

/**
 * One-line prefix-cache summary. Prints nothing when the run never
 * consulted the cache (caching disabled or a trace without token
 * ids), so benches that default the feature off keep byte-identical
 * output.
 */
inline void
maybePrintPrefixStats(const serving::RunReport &report,
                      const std::string &label)
{
    if (report.prefix_lookups == 0) {
        return;
    }
    std::printf("%s prefix cache: hit rate %.1f%% (%lld/%lld), "
                "prefill tokens saved %lld (%.1f%%), shared %.1f GB "
                "cumulative, copied %.2f GB\n",
                label.c_str(), 100.0 * report.prefixHitRate(),
                static_cast<long long>(report.prefix_hits),
                static_cast<long long>(report.prefix_lookups),
                static_cast<long long>(report.prefill_tokens_saved),
                100.0 * report.prefillSavedFraction(),
                static_cast<double>(report.prefix_aliased_bytes) / 1e9,
                static_cast<double>(report.prefix_copied_bytes) / 1e9);
}

} // namespace vattn::bench

#endif // VATTN_BENCH_BENCH_UTIL_HH
