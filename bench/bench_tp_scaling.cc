/**
 * @file
 * Replicas x tensor-parallelism sweep on a fixed 8-GPU budget: the
 * same Llama-3-8B fleet deployed as 8xTP-1, 4xTP-2, 2xTP-4 or 1xTP-8
 * and offered the same total load. More TP per replica means fewer,
 * larger engines: per-worker KV shrinks 1/TP (bigger effective batch
 * per engine) while every layer pays two all-reduces on the NCCL-style
 * cost model (nccl_spec.hh), so the interconnect share of busy time
 * climbs with TP. The sweep runs both workload regimes (short-context
 * online chat and 32K-128K long-context) on a vAttention and a paged
 * back-end, reporting throughput, TTFT/TBT percentiles, comm share and
 * preemptions per arm.
 */

#include "bench_util.hh"

#include "common/logging.hh"
#include "perf/nccl_spec.hh"
#include "serving/cluster.hh"
#include "serving/workload.hh"

using namespace vattn;
using namespace vattn::bench;

namespace
{

constexpr int kTotalGpus = 8;

/** One point of the sweep: tp * replicas == kTotalGpus always. */
struct Arm
{
    int tp;
    int replicas;
};

constexpr Arm kArms[] = {{1, 8}, {2, 4}, {4, 2}, {8, 1}};

struct Workload
{
    const char *name; ///< table caption fragment
    const char *key;  ///< JSON metric prefix
    double total_qps; ///< offered load across the whole fleet
    std::vector<serving::Request> (*make)(int n);
    int full_n;
    int smoke_n;
};

std::vector<serving::Request>
makeChat(int n)
{
    return serving::openChatTrace(n);
}

std::vector<serving::Request>
makeLongContext(int n)
{
    return serving::longContextTrace(n);
}

serving::EngineConfig
armConfig(int tp, perf::BackendKind backend)
{
    auto config =
        makeEngineConfig(Setup{perf::ModelSpec::llama3_8B(), tp},
                         backend);
    // The α–β link model (not the legacy flat constant): A100 fleets
    // talk over NVLink gen-3, so tree wins the small decode
    // all-reduces and ring the large prefill ones.
    config.nccl = perf::NcclSpec::nvlinkGen3();
    return config;
}

double
commShare(const serving::RunReport &report)
{
    return report.busy_ns == 0
               ? 0.0
               : static_cast<double>(report.comm_ns) /
                     static_cast<double>(report.busy_ns);
}

} // namespace

int
main()
{
    banner("Replicas x TP sweep on a fixed 8-GPU budget",
           "Llama-3-8B, A100 NVLink gen-3 collectives, same offered "
           "load per arm; seconds unless noted");
    JsonReport json("tp_scaling");

    const Workload workloads[] = {
        {"online chat", "chat", 8.0, makeChat, 384, 24},
        {"long-context 32K-128K", "longctx", 0.25, makeLongContext, 48,
         8},
    };
    const perf::BackendKind backends[] = {
        perf::BackendKind::kFa2VAttention,
        perf::BackendKind::kFa2Paged,
    };

    // Per-worker KV shard: exactly 1/TP of the whole-model footprint
    // for every arm (the GQA heads divide evenly at 1/2/4/8).
    const auto model = perf::ModelSpec::llama3_8B();
    for (const Arm &arm : kArms) {
        const u64 shard = model.kvBytesPerTokenPerWorker(arm.tp);
        fatal_if(shard * static_cast<u64>(arm.tp) !=
                     model.kvBytesPerToken(),
                 "per-worker KV bytes must shrink proportionally to "
                 "1/TP");
        json.metric("kv_bytes_per_token_per_worker_tp" +
                        std::to_string(arm.tp),
                    static_cast<i64>(shard));
    }

    for (const Workload &workload : workloads) {
        for (perf::BackendKind backend : backends) {
            Table table({"fleet", "req/min", "decode tok/s", "TTFT p50",
                         "TTFT p99", "TBT p50", "TBT p99", "comm share",
                         "preempt"});
            double prev_share = -1.0;
            for (const Arm &arm : kArms) {
                auto cluster_config = serving::ServingCluster::uniform(
                    armConfig(arm.tp, backend), arm.replicas,
                    serving::RoutingPolicy::kJoinShortestQueue);
                serving::ServingCluster cluster(
                    std::move(cluster_config));

                auto trace = workload.make(
                    smokeN(workload.full_n, workload.smoke_n));
                serving::assignPoissonArrivals(trace,
                                               workload.total_qps);
                const auto report = cluster.run(std::move(trace));

                const double share = commShare(report.merged);
                table.addRow({
                    std::to_string(arm.replicas) + " x TP-" +
                        std::to_string(arm.tp),
                    Table::num(report.merged.requestsPerMinute(), 1),
                    Table::num(report.merged.decodeTokensPerSecond(),
                               0),
                    Table::num(report.merged.ttft_s.median(), 2),
                    Table::num(report.merged.ttft_s.p99(), 2),
                    Table::num(report.merged.tbt_s.median(), 3),
                    Table::num(report.merged.tbt_s.p99(), 3),
                    Table::num(100.0 * share, 1) + "%",
                    Table::integer(
                        static_cast<i64>(report.merged.preemptions)),
                });

                // The in-bench acceptance check: every step up in TP
                // must spend a strictly larger fraction of busy time
                // in all-reduces (TP-1 spends none).
                fatal_if(share <= prev_share,
                         "comm share must grow monotonically with TP");
                prev_share = share;

                const std::string key = std::string(workload.key) +
                                        "_" + toString(backend) +
                                        "_tp" + std::to_string(arm.tp);
                json.metric(key + "_req_per_min",
                            report.merged.requestsPerMinute());
                json.metric(key + "_decode_tok_per_s",
                            report.merged.decodeTokensPerSecond());
                json.metric(key + "_ttft_p99_s",
                            report.merged.ttft_s.p99());
                json.metric(key + "_tbt_p99_s",
                            report.merged.tbt_s.p99());
                json.metric(key + "_comm_share", share);
                json.metric(
                    key + "_preemptions",
                    static_cast<i64>(report.merged.preemptions));
            }
            json.printTable(std::string(workload.name) + ", " +
                                toString(backend) + " (" +
                                std::to_string(kTotalGpus) +
                                " GPUs total)",
                            table);
        }
    }

    // The overlap knob: hiding all-reduces behind compute on the
    // biggest-TP arm shows how much of the comm share is hideable.
    {
        auto config =
            armConfig(8, perf::BackendKind::kFa2VAttention);
        config.overlap_comm = true;
        serving::ServingCluster cluster(serving::ServingCluster::uniform(
            config, 1, serving::RoutingPolicy::kJoinShortestQueue));
        auto trace = makeChat(smokeN(384, 24));
        serving::assignPoissonArrivals(trace, 8.0);
        const auto report = cluster.run(std::move(trace));
        const double share = commShare(report.merged);
        std::printf("\nwith overlap_comm at 1 x TP-8 (chat): comm "
                    "share %.1f%% (only the non-hideable excess over "
                    "compute remains on the critical path)\n",
                    100.0 * share);
        json.metric("chat_FA2_vAttention_tp8_overlap_comm_share",
                    share);
    }
    return 0;
}
