/**
 * @file
 * Figure 14 (§7.6.3): effect of the backing page size on attention
 * kernel runtime. The KV access stream of FlashAttention-2's prefill
 * and decode kernels is replayed through the simulated GPU TLB with
 * 64KB and 2MB pages; page-walk counts are converted to exposed
 * latency by the kernel model. Finding: attention's sequential access
 * pattern never thrashes the TLB, so 64KB pages cost ~nothing
 * (paper: 0.98x-1.02x).
 */

#include "bench_util.hh"
#include "gpu/tlb.hh"
#include "perf/kernel_model.hh"

using namespace vattn;
using namespace vattn::bench;

namespace
{

/**
 * Replay the per-token KV touch stream of an attention kernel over
 * @p tokens tokens (one K + one V touch per token per KV head, per
 * layer) and return the number of page walks.
 */
u64
replayKvStream(PageSize page, const perf::ModelSpec &model, int tp,
               i64 tokens, int passes)
{
    gpu::Tlb tlb;
    const u64 token_stride =
        static_cast<u64>(model.kvHeadsPerWorker(tp)) *
        static_cast<u64>(model.head_dim) * 2;
    // K and V live in separate buffers per layer; give each a
    // distinct VA region so they contend in the TLB like real life.
    const Addr layer_stride = 1ULL << 40;
    for (int pass = 0; pass < passes; ++pass) {
        for (int layer = 0; layer < model.num_layers; ++layer) {
            const Addr k_base = layer_stride * (2u * layer + 1);
            const Addr v_base = layer_stride * (2u * layer + 2);
            for (i64 t = 0; t < tokens; ++t) {
                tlb.access(k_base + static_cast<u64>(t) * token_stride,
                           page);
                tlb.access(v_base + static_cast<u64>(t) * token_stride,
                           page);
            }
        }
    }
    return tlb.pageWalks();
}

} // namespace

int
main()
{
    banner("Figure 14: effect of page size on attention kernels",
           "FA2 kernels, Llama-3-8B; TLB replay + kernel model");
    JsonReport json("fig14_page_size_effect");

    const perf::ModelSpec model = perf::ModelSpec::llama3_8B();
    perf::KernelModel kernel(perf::GpuSpec::a100(), model, 1);

    Table prefill({"context", "kernel ms", "walks 2MB", "walks 64KB",
                   "runtime 64KB vs 2MB"});
    for (i64 ctx = 2048; ctx <= 32 * 1024; ctx *= 2) {
        const auto base_ns = kernel.prefillAttention(
            perf::BackendKind::kFa2VAttention, ctx);
        const u64 walks_2m =
            replayKvStream(PageSize::k2MB, model, 1, ctx, 1);
        const u64 walks_64k =
            replayKvStream(PageSize::k64KB, model, 1, ctx, 1);
        const double t_2m = static_cast<double>(
            base_ns + perf::KernelModel::tlbWalkPenalty(walks_2m));
        const double t_64k = static_cast<double>(
            base_ns + perf::KernelModel::tlbWalkPenalty(walks_64k));
        prefill.addRow({
            std::to_string(ctx / 1024) + "K",
            Table::num(static_cast<double>(base_ns) / 1e6, 2),
            Table::integer(static_cast<long long>(walks_2m)),
            Table::integer(static_cast<long long>(walks_64k)),
            Table::num(t_64k / t_2m, 3) + "x",
        });
    }
    json.printTable("Figure 14 (left): prefill kernel", prefill);

    Table decode({"batch x ctx", "kernel ms", "walks 2MB",
                  "walks 64KB", "runtime 64KB vs 2MB"});
    for (i64 batch = 1; batch <= 16; batch *= 2) {
        const i64 ctx = 32 * 1024;
        const auto base_ns = kernel.decodeAttention(
            perf::BackendKind::kFa2VAttention, batch * ctx);
        // Decode streams every request's KV once per iteration.
        const u64 walks_2m = replayKvStream(PageSize::k2MB, model, 1,
                                            ctx,
                                            static_cast<int>(batch));
        const u64 walks_64k = replayKvStream(PageSize::k64KB, model, 1,
                                             ctx,
                                             static_cast<int>(batch));
        const double t_2m = static_cast<double>(
            base_ns + perf::KernelModel::tlbWalkPenalty(walks_2m));
        const double t_64k = static_cast<double>(
            base_ns + perf::KernelModel::tlbWalkPenalty(walks_64k));
        decode.addRow({
            std::to_string(batch) + "*32K",
            Table::num(static_cast<double>(base_ns) / 1e6, 2),
            Table::integer(static_cast<long long>(walks_2m)),
            Table::integer(static_cast<long long>(walks_64k)),
            Table::num(t_64k / t_2m, 3) + "x",
        });
    }
    json.printTable("Figure 14 (right): decode kernel", decode);
    std::printf("\npaper: 64KB pages change kernel runtime by at most "
                "~2%% in either direction (no TLB thrashing)\n");
    return 0;
}
