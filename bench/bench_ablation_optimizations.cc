/**
 * @file
 * Ablation of the §6.1 optimizations beyond the paper's Figures 12-13:
 * each of { overlap with compute, deferred reclamation, eager
 * allocation } is disabled one at a time (and all together) on the
 * same online serving run, reporting how much allocation latency
 * lands on the critical path and what it costs end to end. The "all
 * off" row shows raw CUDA-VMM demand paging — functional but slower —
 * and the "all on" row shows the paper's full system, where the
 * driver effectively disappears from the critical path.
 */

#include "bench_util.hh"

using namespace vattn;
using namespace vattn::bench;

namespace
{

struct Variant
{
    const char *name;
    bool overlap;
    bool deferred;
    bool eager;
};

} // namespace

int
main()
{
    banner("Ablation: the §6.1 latency-hiding optimizations",
           "Yi-6B, 1x A100, chat trace at 5 QPS, 2MB page-groups");
    JsonReport json("ablation_optimizations");

    const Variant variants[] = {
        {"all optimizations ON", true, true, true},
        {"no overlap (sync decode alloc)", false, true, true},
        {"no deferred reclamation", true, false, true},
        {"no eager allocation", true, true, false},
        {"all OFF (raw demand paging)", false, false, false},
    };

    Table table({"variant", "median lat s", "p99 s",
                 "critical alloc ms", "hidden alloc ms",
                 "sync handles", "bg handles"});
    for (const Variant &variant : variants) {
        Setup setup{perf::ModelSpec::yi6B(), 1};
        auto config =
            makeEngineConfig(setup, perf::BackendKind::kFa2VAttention);
        config.vattn.page_group = PageGroup::k2MB;
        config.vattn.overlap_allocation = variant.overlap;
        config.vattn.deferred_reclamation = variant.deferred;
        config.vattn.eager_allocation = variant.eager;
        config.scheduler.max_batched_tokens = 8192;
        serving::Engine engine(config);

        auto trace = serving::openChatTrace(300, 17);
        serving::assignPoissonArrivals(trace, 5.0, 33);
        const auto report = engine.run(std::move(trace));

        const auto &stats =
            engine.vattnBackend()->runtime().stats();
        table.addRow({
            variant.name,
            Table::num(report.latency_s.median(), 2),
            Table::num(report.latency_s.p99(), 2),
            Table::num(static_cast<double>(stats.critical_ns) / 1e6,
                       1),
            Table::num(static_cast<double>(stats.background_ns) / 1e6,
                       1),
            Table::integer(stats.sync_handles),
            Table::integer(stats.background_handles),
        });
    }
    json.printTable("ablation (critical alloc ms = total driver latency "
                "paid inside step(); hidden = absorbed by the "
                "background worker)", table);
    std::printf("\nreading: with everything on, nearly all page-group "
                "mapping is prefetched or reused, so the critical "
                "path sees almost no driver latency; turning the "
                "optimizations off pushes every map call into the "
                "iteration, like the spikes of Figure 12.\n");
    return 0;
}
