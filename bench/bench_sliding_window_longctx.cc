/**
 * @file
 * Sliding-window long-context study. Mistral-style models interleave
 * full-attention and sliding-window (SWA) layers 1:1; a windowed
 * layer attends to at most W tokens, so its KV beyond the window is
 * dead weight. With per-layer heterogeneous geometries both backends
 * reclaim that tail — vAttention unmaps dead leading page-groups,
 * the paged backend frees dead leading blocks from the SWA layer
 * group's pool — so resident KV stops growing with context on half
 * the layers.
 *
 * Sweeps 32K-128K prompts and reports (a) resident KV bytes per
 * request, uniform vs 1:1-interleaved, on both backends, and (b)
 * engine throughput on the long-context trace. At 64K with a 4K
 * window the interleaved model must hold >= 40% fewer KV bytes on
 * both backends; the bench aborts if that bar regresses.
 */

#include "bench_util.hh"

#include "common/logging.hh"
#include "serving/paged_backend.hh"
#include "serving/vattn_backend.hh"
#include "serving/workload.hh"

using namespace vattn;
using namespace vattn::bench;

namespace
{

constexpr i64 kWindowTokens = 4096; ///< Mistral-7B's SWA width
constexpr u64 kBudgetBytes = 48ULL * GiB;

/** Resident KV bytes of one request at @p tokens context under the
 *  vAttention backend (dead window tails unmapped by ensure()). */
u64
vattnResidentBytes(const perf::ModelSpec &model, i64 tokens)
{
    serving::VAttentionBackend backend(model, 1, kBudgetBytes);
    auto slot = backend.allocSlot();
    fatal_if(!slot.isOk(), "allocSlot failed");
    const auto ensured = backend.ensure({{slot.value(), tokens}});
    fatal_if(!ensured.isOk(), "ensure failed at ", tokens, " tokens");
    return backend.slotPhysBytes(slot.value());
}

/** Same measurement under the paged backend (dead leading blocks
 *  freed from each sliding layer group's pool). */
u64
pagedResidentBytes(const perf::ModelSpec &model, i64 tokens)
{
    serving::PagedBackend backend(model, 1, 16, kBudgetBytes);
    auto slot = backend.allocSlot();
    fatal_if(!slot.isOk(), "allocSlot failed");
    const auto ensured = backend.ensure({{slot.value(), tokens}});
    fatal_if(!ensured.isOk(), "ensure failed at ", tokens, " tokens");
    return backend.slotPhysBytes(slot.value());
}

} // namespace

int
main()
{
    banner("Sliding-window long context: per-layer KV geometries",
           "Yi-6B vs Mistral-style 1:1 full/SWA-4K interleave; "
           "resident KV per request and offline throughput, both "
           "backends; A100");
    JsonReport json("sliding_window_longctx");

    const auto uniform = perf::ModelSpec::yi6B();
    const auto interleaved =
        uniform.withSlidingWindowInterleave(kWindowTokens);

    const std::vector<i64> sweep =
        smokeMode() ? std::vector<i64>{64 * 1024}
                    : std::vector<i64>{32 * 1024, 64 * 1024, 96 * 1024,
                                       128 * 1024};

    // ---- (a) resident KV bytes per request --------------------------
    Table bytes_table({"backend", "prompt", "uniform KV GB",
                       "interleaved KV GB", "saved"});
    double vattn_saved_64k = 0;
    double paged_saved_64k = 0;
    for (const i64 tokens : sweep) {
        const u64 v_uni = vattnResidentBytes(uniform, tokens);
        const u64 v_swa = vattnResidentBytes(interleaved, tokens);
        const u64 p_uni = pagedResidentBytes(uniform, tokens);
        const u64 p_swa = pagedResidentBytes(interleaved, tokens);
        const double v_saved =
            1.0 - static_cast<double>(v_swa) / static_cast<double>(v_uni);
        const double p_saved =
            1.0 - static_cast<double>(p_swa) / static_cast<double>(p_uni);
        if (tokens == 64 * 1024) {
            vattn_saved_64k = v_saved;
            paged_saved_64k = p_saved;
        }
        const std::string prompt_label =
            std::to_string(tokens / 1024) + "K";
        bytes_table.addRow({"vAttention", prompt_label,
                            Table::num(static_cast<double>(v_uni) / 1e9,
                                       2),
                            Table::num(static_cast<double>(v_swa) / 1e9,
                                       2),
                            Table::num(100.0 * v_saved, 1) + "%"});
        bytes_table.addRow({"Paged", prompt_label,
                            Table::num(static_cast<double>(p_uni) / 1e9,
                                       2),
                            Table::num(static_cast<double>(p_swa) / 1e9,
                                       2),
                            Table::num(100.0 * p_saved, 1) + "%"});
    }
    json.printTable("resident KV per request (window " +
                        std::to_string(kWindowTokens) + " tokens, " +
                        interleaved.name + ")",
                    bytes_table);
    json.metric("vattn_kv_saved_64k_pct", 100.0 * vattn_saved_64k);
    json.metric("paged_kv_saved_64k_pct", 100.0 * paged_saved_64k);
    std::printf("64K-token request: interleaved model holds %.1f%% "
                "(vAttention) / %.1f%% (paged) less resident KV\n\n",
                100.0 * vattn_saved_64k, 100.0 * paged_saved_64k);
    // The tentpole acceptance bar: half the layers windowed at 4K of
    // 64K context must shed >= 40% of resident KV on both backends.
    panic_if(vattn_saved_64k < 0.40,
             "vAttention KV saving at 64K below the 40% bar: ",
             100.0 * vattn_saved_64k, "%");
    panic_if(paged_saved_64k < 0.40,
             "paged KV saving at 64K below the 40% bar: ",
             100.0 * paged_saved_64k, "%");

    // ---- (b) offline throughput on the long-context trace -----------
    const perf::BackendKind kinds[] = {
        perf::BackendKind::kFa2Paged,
        perf::BackendKind::kFa2VAttention,
    };
    Table run_table({"backend", "model", "req/min", "preempt",
                     "dropped"});
    for (const auto kind : kinds) {
        for (const auto *model : {&uniform, &interleaved}) {
            auto trace = serving::longContextTrace(smokeN(64, 8));
            serving::assignOfflineArrivals(trace);
            serving::Engine engine(
                makeEngineConfig({*model, 1}, kind));
            const auto report = engine.run(std::move(trace));
            run_table.addRow({
                toString(kind),
                model->name,
                Table::num(report.requestsPerMinute(), 2),
                std::to_string(report.preemptions),
                std::to_string(report.dropped_requests),
            });
            json.metric(std::string(toString(kind)) + "/" +
                            model->name + "/req_per_min",
                        report.requestsPerMinute());
        }
    }
    json.printTable("long-context trace (32K-128K prompts, offline)",
                    run_table);
    std::printf("\nwindowed layers cap their KV at W tokens, so the "
                "interleaved model admits larger long-context batches "
                "on the same budget.\n");
    return 0;
}
