/**
 * @file
 * Figure 13 (§7.6.2): prefill completion time of a single 16K-token
 * prompt under four allocation strategies:
 *   (1) without CUDA APIs        — memory already committed (ideal)
 *   (2) synchronous, 64KB pages  — every group mapped in step()
 *   (3) synchronous, 2MB pages   — fewer, slower calls
 *   (4) deferred reclamation     — a completed request's mappings are
 *                                  reused; no driver calls at all.
 * Paper: sync-64KB costs up to 1.15x, sync-2MB up to 1.03x, deferred
 * reclamation restores 1.00x.
 */

#include "bench_util.hh"

using namespace vattn;
using namespace vattn::bench;

int
main()
{
    banner("Figure 13: prefill time of a 16K prompt vs allocation "
           "strategy",
           "seconds; ratios normalized to the no-allocation ideal");
    JsonReport json("fig13_deferred_reclamation");

    for (const auto &setup : evalSetups()) {
        Table table({"strategy", "prefill s", "alloc ms", "ratio"});

        auto run_once = [&](PageGroup group, bool deferred,
                            bool warmup) {
            auto config = makeEngineConfig(
                setup, perf::BackendKind::kFa2VAttention);
            config.vattn.page_group = group;
            config.vattn.deferred_reclamation = deferred;
            config.vattn.eager_allocation = false;
            config.vattn.overlap_allocation = false;
            serving::Engine engine(config);
            if (warmup) {
                // A prior request ran and completed; with deferred
                // reclamation its pages stay mapped on the slot.
                engine.prefillOnce(16 * 1024);
            }
            return engine.prefillOnce(16 * 1024);
        };

        // (1) ideal: measure compute-only time (subtract mem).
        const auto sync64 = run_once(PageGroup::k64KB, false, false);
        const auto sync2m = run_once(PageGroup::k2MB, false, false);
        const auto deferred = run_once(PageGroup::k2MB, true, true);
        const double ideal_s =
            static_cast<double>(sync2m.total_ns - sync2m.mem_ns) / 1e9;

        auto add = [&](const char *name,
                       const serving::Engine::PrefillRun &run) {
            const double total_s =
                static_cast<double>(run.total_ns) / 1e9;
            table.addRow({
                name,
                Table::num(total_s, 2),
                Table::num(static_cast<double>(run.mem_ns) / 1e6, 1),
                Table::num(total_s / ideal_s, 2) + "x",
            });
        };
        table.addRow({"without CUDA APIs", Table::num(ideal_s, 2),
                      "0.0", "1.00x"});
        add("CUDA APIs + 64KB (synchronous)", sync64);
        add("CUDA APIs + 2MB (synchronous)", sync2m);
        add("CUDA APIs + deferred reclamation", deferred);
        json.printTable("Figure 13: " + setupLabel(setup), table);
    }
    std::printf("\npaper: sync 64KB up to 1.15x, sync 2MB up to "
                "1.03x, deferred reclamation 1.00x\n");
    return 0;
}
