#!/usr/bin/env python3
"""Project-convention lint for the vAttention reproduction.

Machine-checks the conventions the simulator's correctness leans on:

  1. naming   — fields of type TimeNs end in `_ns`; integer fields
                whose name mentions bytes end in `bytes` (ratios may
                start with `bytes_per_`); double fields whose name
                mentions bytes are bandwidths and end in `_bytes_per_s`
                (the perf specs — GPU links, PCIe, NCCL collectives —
                all quote rates in bytes/second); fields whose name
                mentions a deadline are absolute-or-relative times and
                end in `_ns` (an SLO compared against the virtual
                clock in the wrong unit silently admits everything);
                double fields whose name contains `_per_` are rates
                and end in `_per_s` (per-second is the project's one
                rate denominator — `_per_second`, `_per_sec` spellings
                drift into unit confusion). Mixed units inside one
                struct are how latency/capacity accounting bugs start.
  2. sim-time — simulation code (src/) never reads wall clocks or
                libc randomness: `std::chrono` clocks, std::rand and
                friends are forbidden there. Determinism comes from
                SimClock and common/rng.hh only.
  3. memory   — no naked `new` in src/; ownership goes through
                std::unique_ptr / std::make_unique or containers.
  4. hot path — src/ never calls std::this_thread (sleep_for/yield
                wait on the wall clock; the event-driven core jumps
                virtual time instead), and heap allocation via
                make_unique/make_shared in src/serving/ must carry an
                `alloc-ok` annotation (same line or the line above)
                naming why it is off the per-iteration path. The
                allocation-regression tests enforce the steady state
                at runtime; the annotation keeps new call sites
                deliberate at review time.

Usage: tools/check_invariants.py [--root DIR]
Exits non-zero and prints file:line diagnostics on violations.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

# Field declaration of type TimeNs: the name must end `_ns` (members
# keep their trailing underscore). Headers only — locals in .cc files
# legitimately use short names (`cost`, `start`).
TIMENS_FIELD_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:const\s+)?TimeNs\s+(\w+)\s*(?:=[^;]*)?;"
)

# Integer field whose name mentions bytes: must *end* in `bytes`
# (e.g. budget_bytes, swap_out_bytes) or be a `bytes_per_*` ratio.
BYTES_FIELD_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:const\s+)?(?:u64|i64|u32|i32)\s+"
    r"(\w*bytes\w*)\s*(?:=[^;]*)?;"
)

# Floating-point field whose name mentions bytes: a bandwidth, and
# must end `_bytes_per_s` (gpu_spec / pcie_spec / nccl_spec quote
# every link rate in bytes per second).
BANDWIDTH_FIELD_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:const\s+)?double\s+"
    r"(\w*bytes\w*)\s*(?:=[^;]*)?;"
)

# Deadline fields are times and must carry the `_ns` unit, whatever
# their declared type (a TimeNs deadline is caught by the TimeNs rule
# too; an i64/u64 one only here).
DEADLINE_FIELD_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:const\s+)?(?:TimeNs|u64|i64|u32|i32|int)\s+"
    r"(\w*deadline\w*)\s*(?:=[^;]*)?;"
)

# Rate fields: a numeric field with a time denominator must quote it
# as `_per_s` — the project's single rate spelling (`_per_second`,
# `_per_sec`, `_per_minute` drift into unit confusion). Per-item
# ratios (`_per_token`, `_per_worker`) are not rates and pass.
RATE_FIELD_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:const\s+)?(?:double|float|u64|i64)\s+"
    r"(\w*_per_(?:s|sec|second|seconds|min|minute|ms|us|ns)_?)"
    r"\s*(?:=[^;]*)?;"
)

# Sliding-window extents are token counts: an integer field whose
# name mentions `window` must end in `_tokens` (window_tokens, never
# window_size / window_len). Time-typed windows (TimeNs window_ns)
# are covered by the TimeNs rule instead.
WINDOW_FIELD_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:const\s+)?(?:u64|i64|u32|i32|int)\s+"
    r"(\w*window\w*)\s*(?:=[^;]*)?;"
)

# Wall-clock / libc-randomness reads that break simulation determinism.
WALL_CLOCK_RE = re.compile(r"std::chrono")
LIBC_RAND_RE = re.compile(r"(?:std::|\b)s?rand\s*\(")

# Naked allocation. `new` as an English word in comments is stripped
# before matching.
NAKED_NEW_RE = re.compile(r"\bnew\b\s*(?:\(|[A-Za-z_:])")

# Wall-clock waiting: sleep_for/sleep_until/yield spin the host
# scheduler, which simulation code must never do (idle time is jumped
# over on the virtual clock).
THIS_THREAD_RE = re.compile(r"std::this_thread")

# Heap allocation in the serving layer: fine at construction, a perf
# bug inside the per-iteration hot path. Call sites declare which with
# an `alloc-ok` comment.
ALLOC_CALL_RE = re.compile(r"\bmake_(?:unique|shared)\s*<")

BLOCK_COMMENT_RE = re.compile(r"/\*.*?\*/", re.DOTALL)
LINE_COMMENT_RE = re.compile(r"//[^\n]*")
STRING_RE = re.compile(r'"(?:[^"\\]|\\.)*"')


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string literals, preserving line
    numbers so diagnostics stay accurate."""

    def blank(match: re.Match[str]) -> str:
        return re.sub(r"[^\n]", " ", match.group(0))

    text = STRING_RE.sub(blank, text)
    text = BLOCK_COMMENT_RE.sub(blank, text)
    return LINE_COMMENT_RE.sub(blank, text)


def check_file(path: pathlib.Path, root: pathlib.Path) -> list[str]:
    raw = path.read_text(encoding="utf-8")
    code = strip_comments_and_strings(raw)
    rel = path.relative_to(root)
    problems: list[str] = []
    raw_lines = raw.splitlines()
    in_serving = rel.parts[:2] == ("src", "serving")

    for lineno, line in enumerate(code.splitlines(), start=1):
        where = f"{rel}:{lineno}"

        if path.suffix == ".hh":
            m = TIMENS_FIELD_RE.match(line)
            if m and not m.group(1).rstrip("_").endswith("_ns"):
                problems.append(
                    f"{where}: TimeNs field `{m.group(1)}` must end in"
                    " `_ns` (time fields carry their unit)"
                )
            m = BYTES_FIELD_RE.match(line)
            if m:
                name = m.group(1).rstrip("_")
                if not (name.endswith("bytes")
                        or name.startswith("bytes_per_")):
                    problems.append(
                        f"{where}: byte-quantity field `{m.group(1)}`"
                        " must end in `bytes` (sizes carry their unit)"
                    )
            m = BANDWIDTH_FIELD_RE.match(line)
            if m and not m.group(1).rstrip("_").endswith("_bytes_per_s"):
                problems.append(
                    f"{where}: bandwidth field `{m.group(1)}` must end"
                    " in `_bytes_per_s` (link rates carry their unit)"
                )
            m = WINDOW_FIELD_RE.match(line)
            if m and not m.group(1).rstrip("_").endswith("_tokens"):
                problems.append(
                    f"{where}: window field `{m.group(1)}` must end in"
                    " `_tokens` (window extents are token counts)"
                )
            m = DEADLINE_FIELD_RE.match(line)
            if m and not m.group(1).rstrip("_").endswith("_ns"):
                problems.append(
                    f"{where}: deadline field `{m.group(1)}` must end"
                    " in `_ns` (SLO deadlines compare against the"
                    " virtual clock)"
                )
            m = RATE_FIELD_RE.match(line)
            if m and not m.group(1).rstrip("_").endswith("_per_s"):
                problems.append(
                    f"{where}: rate field `{m.group(1)}` must end in"
                    " `_per_s` (per-second is the one rate"
                    " denominator)"
                )

        if WALL_CLOCK_RE.search(line):
            problems.append(
                f"{where}: std::chrono in simulation code — simulated"
                " time comes from common/sim_clock.hh only"
            )
        if LIBC_RAND_RE.search(line):
            problems.append(
                f"{where}: libc randomness in simulation code — use"
                " the seeded generators in common/rng.hh"
            )
        if NAKED_NEW_RE.search(line):
            problems.append(
                f"{where}: naked `new` — own memory via"
                " std::unique_ptr / std::make_unique or a container"
            )
        if THIS_THREAD_RE.search(line):
            problems.append(
                f"{where}: std::this_thread in simulation code —"
                " never wait on the wall clock; jump virtual time on"
                " the event queue instead"
            )
        if in_serving and ALLOC_CALL_RE.search(line):
            annotated = any(
                "alloc-ok" in raw_lines[i]
                for i in (lineno - 2, lineno - 1)
                if 0 <= i < len(raw_lines)
            )
            if not annotated:
                problems.append(
                    f"{where}: heap allocation in src/serving/ without"
                    " an `alloc-ok` annotation — hoist it off the"
                    " per-iteration path or mark the call site"
                    " `// alloc-ok: <why>`"
                )

    return problems


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--root",
        type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent,
        help="repository root (default: the checkout containing this"
        " script)",
    )
    args = parser.parse_args()

    src = args.root / "src"
    if not src.is_dir():
        print(f"check_invariants: no src/ under {args.root}",
              file=sys.stderr)
        return 2

    problems: list[str] = []
    for path in sorted(src.rglob("*")):
        if path.suffix in {".hh", ".cc"}:
            problems.extend(check_file(path, args.root))

    # bench_util.hh is shared infrastructure every benchmark links:
    # hold it to the same conventions as src/.
    bench_util = args.root / "bench" / "bench_util.hh"
    if bench_util.is_file():
        problems.extend(check_file(bench_util, args.root))

    for problem in problems:
        print(problem)
    if problems:
        print(f"check_invariants: {len(problems)} violation(s)",
              file=sys.stderr)
        return 1
    print("check_invariants: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
