#!/usr/bin/env python3
"""Diff machine-readable bench reports against a baseline run.

Every bench binary writes a ``BENCH_<name>.json`` report (see
bench/bench_util.hh JsonReport): a ``metrics`` object of scalar
results. CI keeps the previous run's reports in an actions cache; this
script compares the current directory of reports against that baseline
and flags per-metric regressions, so a perf PR sees its trajectory in
the job log instead of only in manually eyeballed tables.

What is compared:

  - numeric metrics only, matched by (bench, key);
  - host-dependent keys are skipped: anything containing ``wall`` or
    ``speedup`` measures the CI runner, not the simulator (benches
    name their wall-clock metrics accordingly on purpose);
  - direction comes from the key name: throughput-like keys must not
    drop, latency-like keys must not grow; keys with no recognizable
    direction are reported as drift but never fail the job;
  - interconnect metrics (``comm_ns``, ``comm_share``, ...) are
    lower-is-better like other time costs, but gate at their own
    ``--comm-threshold`` (default 2x the base tolerance): comm time is
    a modelled subset of busy time, so any batching or scheduling
    change legitimately moves it more than it moves end-to-end
    latencies — growth beyond the wider band still fails the job;
  - online-serving quality metrics have their own class, classified
    *before* the generic name heuristics (``shed_requests`` would
    otherwise read as a throughput via the ``requests`` marker):
    ``goodput`` must not drop; SLO-violation, shed and migration
    counts must not grow. Both gate at ``--slo-threshold`` (default
    0.25): these are small integer counts near an admission cliff, so
    tiny scheduling shifts move them by whole percents of themselves;
  - a report whose ``smoke`` flag differs from the baseline's is
    skipped entirely (full and smoke runs are incomparable).

Exit status: 1 when any directional metric regresses by more than
``--threshold`` (relative), 0 otherwise. A missing baseline (first
run, expired cache) is a clean pass — there is nothing to diff.

Usage: tools/diff_bench_json.py --baseline DIR --current DIR
                                [--threshold 0.05]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

# Substrings marking a metric as measured on the host, not in the
# simulation. These never gate CI: runner hardware varies run to run.
HOST_DEPENDENT = ("wall", "speedup")

# Key-name direction heuristics. First match wins; checked on the
# lower-cased key. "lower" = smaller is better (latencies, stalls),
# "higher" = bigger is better (throughputs, hit rates).
LOWER_IS_BETTER = (
    "comm",
    "latency",
    "_ms",
    "_ns",
    "_s",
    "p50",
    "p90",
    "p99",
    "median",
    "stall",
    "overhead",
    "preemption",
    "time",
)
HIGHER_IS_BETTER = (
    "throughput",
    "tokens_per",
    "per_second",
    "per_min",
    "per_s",
    "bandwidth",
    "qps",
    "hit_rate",
    "requests",
    "saved",
)

# Online-serving quality metrics. Matched before the generic lists:
# "shed_requests" and "slo_requests" contain the HIGHER_IS_BETTER
# marker "requests" but are emphatically not throughputs.
SLO_GOOD = ("goodput",)
SLO_COST = ("slo_violation", "shed", "migration")


def is_comm_metric(key: str) -> bool:
    """Interconnect-cost metrics (comm_ns sums, comm shares) gate at
    their own, wider tolerance — see the module docstring."""
    return "comm" in key.lower()


def is_slo_metric(key: str) -> bool:
    """Online-serving quality metrics gate at --slo-threshold — see
    the module docstring."""
    lowered = key.lower()
    return any(marker in lowered for marker in SLO_GOOD + SLO_COST)


def direction(key: str) -> str:
    lowered = key.lower()
    for marker in SLO_GOOD:
        if marker in lowered:
            return "higher"
    for marker in SLO_COST:
        if marker in lowered:
            return "lower"
    for marker in HIGHER_IS_BETTER:
        if marker in lowered:
            return "higher"
    for marker in LOWER_IS_BETTER:
        if marker in lowered:
            return "lower"
    return "either"


def load_reports(directory: pathlib.Path) -> dict[str, dict]:
    """Map bench name -> parsed report for every BENCH_*.json."""
    reports: dict[str, dict] = {}
    for path in sorted(directory.glob("BENCH_*.json")):
        try:
            report = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as error:
            print(f"diff_bench_json: skipping unreadable {path}: "
                  f"{error}", file=sys.stderr)
            continue
        name = report.get("bench", path.stem.removeprefix("BENCH_"))
        reports[name] = report
    return reports


def numeric_metrics(report: dict) -> dict[str, float]:
    metrics = report.get("metrics", {})
    out: dict[str, float] = {}
    for key, value in metrics.items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        if any(marker in key.lower() for marker in HOST_DEPENDENT):
            continue
        out[key] = float(value)
    return out


def relative_change(baseline: float, current: float) -> float:
    if baseline == 0:
        return 0.0 if current == 0 else float("inf")
    return (current - baseline) / abs(baseline)


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--baseline", type=pathlib.Path, required=True,
                        help="directory of the previous run's "
                        "BENCH_*.json reports")
    parser.add_argument("--current", type=pathlib.Path, required=True,
                        help="directory of this run's reports")
    parser.add_argument("--threshold", type=float, default=0.05,
                        help="relative regression tolerance per metric "
                        "(default 0.05 = 5%%)")
    parser.add_argument("--comm-threshold", type=float, default=None,
                        help="tolerance for interconnect metrics "
                        "(keys containing `comm`); defaults to twice "
                        "--threshold")
    parser.add_argument("--slo-threshold", type=float, default=0.25,
                        help="tolerance for online-serving quality "
                        "metrics (goodput, SLO violations, shed and "
                        "migration counts; default 0.25 = 25%%)")
    args = parser.parse_args()
    if args.comm_threshold is None:
        args.comm_threshold = 2.0 * args.threshold

    if not args.current.is_dir():
        print(f"diff_bench_json: no current report dir {args.current}",
              file=sys.stderr)
        return 2
    if not args.baseline.is_dir():
        print(f"diff_bench_json: no baseline at {args.baseline} "
              "(first run or expired cache) — nothing to diff")
        return 0

    baseline_reports = load_reports(args.baseline)
    current_reports = load_reports(args.current)
    if not baseline_reports:
        print("diff_bench_json: baseline directory holds no reports "
              "— nothing to diff")
        return 0

    rows: list[tuple[str, str, float, float, float, str]] = []
    regressions = 0
    for bench, current in sorted(current_reports.items()):
        baseline = baseline_reports.get(bench)
        if baseline is None:
            print(f"  [new bench] {bench}")
            continue
        if baseline.get("smoke") != current.get("smoke"):
            print(f"  [skipped] {bench}: smoke flag differs between "
                  "runs")
            continue
        base_metrics = numeric_metrics(baseline)
        cur_metrics = numeric_metrics(current)
        for key in sorted(cur_metrics):
            if key not in base_metrics:
                continue
            before = base_metrics[key]
            after = cur_metrics[key]
            change = relative_change(before, after)
            if is_slo_metric(key):
                tolerance = args.slo_threshold
            elif is_comm_metric(key):
                tolerance = args.comm_threshold
            else:
                tolerance = args.threshold
            if abs(change) <= tolerance:
                continue
            sense = direction(key)
            regressed = (sense == "lower" and change > 0) or \
                        (sense == "higher" and change < 0)
            if regressed:
                verdict = "REGRESSION"
                regressions += 1
            elif sense == "either":
                verdict = "drift"
            else:
                verdict = "improved"
            rows.append((bench, key, before, after, change, verdict))

    if rows:
        widths = (max(len(r[0]) for r in rows),
                  max(len(r[1]) for r in rows))
        header = (f"{'bench':<{widths[0]}}  {'metric':<{widths[1]}}  "
                  f"{'baseline':>14}  {'current':>14}  {'change':>8}  "
                  "verdict")
        print(header)
        print("-" * len(header))
        for bench, key, before, after, change, verdict in rows:
            print(f"{bench:<{widths[0]}}  {key:<{widths[1]}}  "
                  f"{before:>14.6g}  {after:>14.6g}  "
                  f"{change:>+7.1%}  {verdict}")
    else:
        print("diff_bench_json: no tracked metric moved beyond "
              f"{args.threshold:.0%}")

    if regressions:
        print(f"diff_bench_json: {regressions} metric(s) regressed "
              f"beyond {args.threshold:.0%}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
