/**
 * @file
 * Numerically straightforward attention implementations (full-matrix
 * softmax, O(L^2) memory) used as the oracle against which the
 * flash-style tiled kernels are verified.
 */

#ifndef VATTN_ATTN_REFERENCE_HH
#define VATTN_ATTN_REFERENCE_HH

#include "attn/kv_view.hh"
#include "tensor/host_tensor.hh"

namespace vattn::attn
{

/** Kernel-level attention configuration (one request, one layer). */
struct AttnConfig
{
    int num_q_heads;
    int num_kv_heads;
    int head_dim;
    bool causal = true;
    /** softmax scale; 0 means 1/sqrt(head_dim). */
    float scale = 0.0f;

    float effectiveScale() const;
    /** KV head serving query head @p q_head (GQA mapping). */
    int kvHeadFor(int q_head) const;
    void validate() const;
};

/**
 * Reference prefill attention. q has shape [Lq, Hq, D]; the queries
 * occupy the *last* Lq positions of a kv_len-token context (so chunked
 * prefill with history is expressible). out has shape [Lq, Hq, D].
 */
void referencePrefill(const AttnConfig &config,
                      const tensor::HostTensor &q, const KvView &kv,
                      i64 kv_len, tensor::HostTensor &out);

/** Reference single-token decode. q/out have shape [Hq, D]. */
void referenceDecode(const AttnConfig &config,
                     const tensor::HostTensor &q, const KvView &kv,
                     i64 kv_len, tensor::HostTensor &out);

} // namespace vattn::attn

#endif // VATTN_ATTN_REFERENCE_HH
