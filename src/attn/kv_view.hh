/**
 * @file
 * KV-cache accessors for the attention kernels. The paper's central
 * point is that kernels written for *contiguous* KV (FlashAttention-2,
 * FlashInfer non-paged, FA3) work unmodified under vAttention, while
 * PagedAttention forces a rewrite to dereference scattered blocks.
 * We model that split explicitly:
 *
 *  - TensorKvView   : contiguous (or strided, §8.2) virtual tensor —
 *                     what an unmodified kernel consumes.
 *  - PagedKvView    : block-table indirection over a block pool — what
 *                     a PagedAttention kernel must implement.
 *  - HostKvView     : plain host arrays for reference tests.
 *
 * Views optionally replay their page touches through the device TLB
 * model (for the §7.6.3 page-size study).
 */

#ifndef VATTN_ATTN_KV_VIEW_HH
#define VATTN_ATTN_KV_VIEW_HH

#include <vector>

#include "tensor/host_tensor.hh"
#include "tensor/virtual_tensor.hh"

namespace vattn::attn
{

/** Read access to the K/V vectors of one request at one layer. */
class KvView
{
  public:
    virtual ~KvView() = default;

    /** Number of KV heads. */
    virtual int numKvHeads() const = 0;
    /** Head dimension. */
    virtual int headDim() const = 0;

    /** Load K[token, head, :] into @p out (headDim floats). */
    virtual void loadK(i64 token, int head, float *out) const = 0;
    /** Load V[token, head, :] into @p out (headDim floats). */
    virtual void loadV(i64 token, int head, float *out) const = 0;
};

/** Write access used when appending new tokens to the cache. */
class KvWriter
{
  public:
    virtual ~KvWriter() = default;
    virtual void storeK(i64 token, int head, const float *in) = 0;
    virtual void storeV(i64 token, int head, const float *in) = 0;
};

/**
 * View over K and V virtual tensors of logical shape [L, H, D]; the
 * tensors may be strided views into bigger buffers ([B, L, H, D] batch
 * tensors or the [B, L, N, H, D] tensor-slicing layout).
 */
class TensorKvView : public KvView, public KvWriter
{
  public:
    TensorKvView(tensor::VirtualTensor k, tensor::VirtualTensor v,
                 bool touch_tlb = false);

    int numKvHeads() const override;
    int headDim() const override;
    void loadK(i64 token, int head, float *out) const override;
    void loadV(i64 token, int head, float *out) const override;
    void storeK(i64 token, int head, const float *in) override;
    void storeV(i64 token, int head, const float *in) override;

  private:
    void touch(const tensor::VirtualTensor &t, i64 token, int head) const;

    tensor::VirtualTensor k_;
    tensor::VirtualTensor v_;
    bool touch_tlb_;
};

/**
 * PagedAttention-style view: token t lives in pool block
 * block_table[t / block_size] at offset t % block_size. Pool tensors
 * have shape [num_blocks, block_size, H, D].
 */
class PagedKvView : public KvView, public KvWriter
{
  public:
    PagedKvView(tensor::VirtualTensor k_pool, tensor::VirtualTensor v_pool,
                std::vector<i32> block_table, i64 block_size,
                bool touch_tlb = false);

    int numKvHeads() const override;
    int headDim() const override;
    void loadK(i64 token, int head, float *out) const override;
    void loadV(i64 token, int head, float *out) const override;
    void storeK(i64 token, int head, const float *in) override;
    void storeV(i64 token, int head, const float *in) override;

    const std::vector<i32> &blockTable() const { return block_table_; }

  private:
    std::pair<i64, i64> locate(i64 token) const; ///< (block, offset)

    tensor::VirtualTensor k_pool_;
    tensor::VirtualTensor v_pool_;
    std::vector<i32> block_table_;
    i64 block_size_;
    bool touch_tlb_;
};

/** Host-array KV view for reference tests; shape [L, H, D]. */
class HostKvView : public KvView, public KvWriter
{
  public:
    HostKvView(tensor::HostTensor *k, tensor::HostTensor *v);

    int numKvHeads() const override;
    int headDim() const override;
    void loadK(i64 token, int head, float *out) const override;
    void loadV(i64 token, int head, float *out) const override;
    void storeK(i64 token, int head, const float *in) override;
    void storeV(i64 token, int head, const float *in) override;

  private:
    tensor::HostTensor *k_;
    tensor::HostTensor *v_;
};

} // namespace vattn::attn

#endif // VATTN_ATTN_KV_VIEW_HH
