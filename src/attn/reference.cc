#include "attn/reference.hh"

#include <cmath>
#include <vector>

#include "common/logging.hh"

namespace vattn::attn
{

float
AttnConfig::effectiveScale() const
{
    return scale != 0.0f
               ? scale
               : 1.0f / std::sqrt(static_cast<float>(head_dim));
}

int
AttnConfig::kvHeadFor(int q_head) const
{
    return q_head / (num_q_heads / num_kv_heads);
}

void
AttnConfig::validate() const
{
    fatal_if(num_q_heads <= 0 || num_kv_heads <= 0 || head_dim <= 0,
             "attention dims must be positive");
    fatal_if(num_q_heads % num_kv_heads != 0,
             "num_q_heads must be a multiple of num_kv_heads (GQA)");
}

namespace
{

float
dot(const float *a, const float *b, int n)
{
    float acc = 0.0f;
    for (int i = 0; i < n; ++i) {
        acc += a[i] * b[i];
    }
    return acc;
}

} // namespace

void
referencePrefill(const AttnConfig &config, const tensor::HostTensor &q,
                 const KvView &kv, i64 kv_len, tensor::HostTensor &out)
{
    config.validate();
    const i64 lq = q.shape()[0];
    panic_if(q.shape().rank() != 3, "q must be [Lq, Hq, D]");
    panic_if(q.shape()[1] != config.num_q_heads, "q head count mismatch");
    panic_if(q.shape()[2] != config.head_dim, "q head dim mismatch");
    panic_if(kv_len < lq, "kv_len must cover the queries");
    panic_if(!(out.shape() == q.shape()), "out shape mismatch");

    const float scale = config.effectiveScale();
    const int d = config.head_dim;
    const i64 kv_offset = kv_len - lq; // first query's position

    std::vector<float> key(static_cast<std::size_t>(d));
    std::vector<float> value(static_cast<std::size_t>(d));
    std::vector<float> scores;

    for (int qh = 0; qh < config.num_q_heads; ++qh) {
        const int kvh = config.kvHeadFor(qh);
        for (i64 i = 0; i < lq; ++i) {
            const i64 visible =
                config.causal ? kv_offset + i + 1 : kv_len;
            scores.assign(static_cast<std::size_t>(visible), 0.0f);
            const float *qrow = q.row({i, qh});

            float peak = -INFINITY;
            for (i64 t = 0; t < visible; ++t) {
                kv.loadK(t, kvh, key.data());
                const float s = dot(qrow, key.data(), d) * scale;
                scores[static_cast<std::size_t>(t)] = s;
                peak = std::max(peak, s);
            }
            float denom = 0.0f;
            for (i64 t = 0; t < visible; ++t) {
                auto &s = scores[static_cast<std::size_t>(t)];
                s = std::exp(s - peak);
                denom += s;
            }
            float *orow = out.row({i, qh});
            for (int c = 0; c < d; ++c) {
                orow[c] = 0.0f;
            }
            for (i64 t = 0; t < visible; ++t) {
                kv.loadV(t, kvh, value.data());
                const float w = scores[static_cast<std::size_t>(t)] / denom;
                for (int c = 0; c < d; ++c) {
                    orow[c] += w * value[c];
                }
            }
        }
    }
}

void
referenceDecode(const AttnConfig &config, const tensor::HostTensor &q,
                const KvView &kv, i64 kv_len, tensor::HostTensor &out)
{
    config.validate();
    panic_if(q.shape().rank() != 2, "q must be [Hq, D]");
    panic_if(q.shape()[0] != config.num_q_heads, "q head count mismatch");
    panic_if(q.shape()[1] != config.head_dim, "q head dim mismatch");
    panic_if(!(out.shape() == q.shape()), "out shape mismatch");

    const float scale = config.effectiveScale();
    const int d = config.head_dim;

    std::vector<float> key(static_cast<std::size_t>(d));
    std::vector<float> value(static_cast<std::size_t>(d));
    std::vector<float> scores(static_cast<std::size_t>(kv_len));

    for (int qh = 0; qh < config.num_q_heads; ++qh) {
        const int kvh = config.kvHeadFor(qh);
        const float *qrow = q.row({qh});

        float peak = -INFINITY;
        for (i64 t = 0; t < kv_len; ++t) {
            kv.loadK(t, kvh, key.data());
            const float s = dot(qrow, key.data(), d) * scale;
            scores[static_cast<std::size_t>(t)] = s;
            peak = std::max(peak, s);
        }
        float denom = 0.0f;
        for (i64 t = 0; t < kv_len; ++t) {
            auto &s = scores[static_cast<std::size_t>(t)];
            s = std::exp(s - peak);
            denom += s;
        }
        float *orow = out.row({qh});
        for (int c = 0; c < d; ++c) {
            orow[c] = 0.0f;
        }
        for (i64 t = 0; t < kv_len; ++t) {
            kv.loadV(t, kvh, value.data());
            const float w = scores[static_cast<std::size_t>(t)] / denom;
            for (int c = 0; c < d; ++c) {
                orow[c] += w * value[c];
            }
        }
    }
}

} // namespace vattn::attn
