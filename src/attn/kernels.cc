#include "attn/kernels.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace vattn::attn
{

// --------------------------------------------------------------------
// KV views
// --------------------------------------------------------------------

TensorKvView::TensorKvView(tensor::VirtualTensor k,
                           tensor::VirtualTensor v, bool touch_tlb)
    : k_(std::move(k)), v_(std::move(v)), touch_tlb_(touch_tlb)
{
    panic_if(k_.shape().rank() != 3 || v_.shape().rank() != 3,
             "TensorKvView expects [L, H, D] tensors");
    panic_if(!(k_.shape() == v_.shape()), "K/V shape mismatch");
}

int
TensorKvView::numKvHeads() const
{
    return static_cast<int>(k_.shape()[1]);
}

int
TensorKvView::headDim() const
{
    return static_cast<int>(k_.shape()[2]);
}

void
TensorKvView::touch(const tensor::VirtualTensor &t, i64 token,
                    int head) const
{
    if (touch_tlb_) {
        const i64 idx[3] = {token, head, 0};
        t.device()->translateTouched(t.elemVa(idx, 3));
    }
}

void
TensorKvView::loadK(i64 token, int head, float *out) const
{
    touch(k_, token, head);
    const i64 idx[3] = {token, head, 0};
    k_.readRow(idx, 3, out, headDim());
}

void
TensorKvView::loadV(i64 token, int head, float *out) const
{
    touch(v_, token, head);
    const i64 idx[3] = {token, head, 0};
    v_.readRow(idx, 3, out, headDim());
}

void
TensorKvView::storeK(i64 token, int head, const float *in)
{
    touch(k_, token, head);
    const i64 idx[3] = {token, head, 0};
    k_.writeRow(idx, 3, in, headDim());
}

void
TensorKvView::storeV(i64 token, int head, const float *in)
{
    touch(v_, token, head);
    const i64 idx[3] = {token, head, 0};
    v_.writeRow(idx, 3, in, headDim());
}

PagedKvView::PagedKvView(tensor::VirtualTensor k_pool,
                         tensor::VirtualTensor v_pool,
                         std::vector<i32> block_table, i64 block_size,
                         bool touch_tlb)
    : k_pool_(std::move(k_pool)), v_pool_(std::move(v_pool)),
      block_table_(std::move(block_table)), block_size_(block_size),
      touch_tlb_(touch_tlb)
{
    panic_if(k_pool_.shape().rank() != 4,
             "pool must be [num_blocks, block_size, H, D]");
    panic_if(k_pool_.shape()[1] != block_size_,
             "pool block size mismatch");
    panic_if(!(k_pool_.shape() == v_pool_.shape()),
             "K/V pool shape mismatch");
}

int
PagedKvView::numKvHeads() const
{
    return static_cast<int>(k_pool_.shape()[2]);
}

int
PagedKvView::headDim() const
{
    return static_cast<int>(k_pool_.shape()[3]);
}

std::pair<i64, i64>
PagedKvView::locate(i64 token) const
{
    // This is the Block-Table indirection PagedAttention kernels pay
    // for on every KV tile (§3.3.1).
    const auto slot = static_cast<std::size_t>(token / block_size_);
    panic_if(slot >= block_table_.size(),
             "token ", token, " beyond block table (",
             block_table_.size(), " blocks)");
    const i64 block = block_table_[slot];
    panic_if(block < 0, "token in unallocated block");
    return {block, token % block_size_};
}

void
PagedKvView::loadK(i64 token, int head, float *out) const
{
    const auto [block, offset] = locate(token);
    const i64 idx[4] = {block, offset, head, 0};
    if (touch_tlb_) {
        k_pool_.device()->translateTouched(k_pool_.elemVa(idx, 4));
    }
    k_pool_.readRow(idx, 4, out, headDim());
}

void
PagedKvView::loadV(i64 token, int head, float *out) const
{
    const auto [block, offset] = locate(token);
    const i64 idx[4] = {block, offset, head, 0};
    if (touch_tlb_) {
        v_pool_.device()->translateTouched(v_pool_.elemVa(idx, 4));
    }
    v_pool_.readRow(idx, 4, out, headDim());
}

void
PagedKvView::storeK(i64 token, int head, const float *in)
{
    const auto [block, offset] = locate(token);
    const i64 idx[4] = {block, offset, head, 0};
    k_pool_.writeRow(idx, 4, in, headDim());
}

void
PagedKvView::storeV(i64 token, int head, const float *in)
{
    const auto [block, offset] = locate(token);
    const i64 idx[4] = {block, offset, head, 0};
    v_pool_.writeRow(idx, 4, in, headDim());
}

HostKvView::HostKvView(tensor::HostTensor *k, tensor::HostTensor *v)
    : k_(k), v_(v)
{
    panic_if(!k_ || !v_, "HostKvView with null tensors");
    panic_if(k_->shape().rank() != 3, "host KV must be [L, H, D]");
    panic_if(!(k_->shape() == v_->shape()), "K/V shape mismatch");
}

int
HostKvView::numKvHeads() const
{
    return static_cast<int>(k_->shape()[1]);
}

int
HostKvView::headDim() const
{
    return static_cast<int>(k_->shape()[2]);
}

void
HostKvView::loadK(i64 token, int head, float *out) const
{
    const float *row = k_->row({token, head});
    std::copy(row, row + headDim(), out);
}

void
HostKvView::loadV(i64 token, int head, float *out) const
{
    const float *row = v_->row({token, head});
    std::copy(row, row + headDim(), out);
}

void
HostKvView::storeK(i64 token, int head, const float *in)
{
    float *row = k_->row({token, head});
    std::copy(in, in + headDim(), row);
}

void
HostKvView::storeV(i64 token, int head, const float *in)
{
    float *row = v_->row({token, head});
    std::copy(in, in + headDim(), row);
}

// --------------------------------------------------------------------
// Tiled kernels (online softmax)
// --------------------------------------------------------------------

namespace
{

float
dot(const float *a, const float *b, int n)
{
    float acc = 0.0f;
    for (int i = 0; i < n; ++i) {
        acc += a[i] * b[i];
    }
    return acc;
}

/**
 * Online-softmax accumulator state for one query row: running max,
 * running denominator, and the un-normalized output accumulator —
 * exactly the FlashAttention recurrence.
 */
struct OnlineRow
{
    float row_max = -INFINITY;
    float denom = 0.0f;
    std::vector<float> acc;

    explicit OnlineRow(int d) : acc(static_cast<std::size_t>(d), 0.0f) {}

    void
    absorb(float score, const float *value, int d)
    {
        if (score > row_max) {
            const float correction =
                row_max == -INFINITY ? 0.0f : std::exp(row_max - score);
            denom *= correction;
            for (int c = 0; c < d; ++c) {
                acc[static_cast<std::size_t>(c)] *= correction;
            }
            row_max = score;
        }
        const float w = std::exp(score - row_max);
        denom += w;
        for (int c = 0; c < d; ++c) {
            acc[static_cast<std::size_t>(c)] += w * value[c];
        }
    }

    void
    finish(float *out, int d) const
    {
        const float inv = denom > 0.0f ? 1.0f / denom : 0.0f;
        for (int c = 0; c < d; ++c) {
            out[c] = acc[static_cast<std::size_t>(c)] * inv;
        }
    }
};

} // namespace

void
flashPrefill(const AttnConfig &config, const tensor::HostTensor &q,
             const KvView &kv, i64 kv_len, tensor::HostTensor &out)
{
    config.validate();
    const i64 lq = q.shape()[0];
    panic_if(q.shape().rank() != 3, "q must be [Lq, Hq, D]");
    panic_if(kv_len < lq, "kv_len must cover the queries");
    panic_if(!(out.shape() == q.shape()), "out shape mismatch");

    const float scale = config.effectiveScale();
    const int d = config.head_dim;
    const i64 kv_offset = kv_len - lq;

    std::vector<float> key(static_cast<std::size_t>(d));
    std::vector<float> value(static_cast<std::size_t>(d));

    for (int qh = 0; qh < config.num_q_heads; ++qh) {
        const int kvh = config.kvHeadFor(qh);
        for (i64 i = 0; i < lq; ++i) {
            const i64 visible =
                config.causal ? kv_offset + i + 1 : kv_len;
            const float *qrow = q.row({i, qh});
            OnlineRow state(d);
            // Iterate KV in tiles, maintaining the online softmax.
            for (i64 tile = 0; tile < visible; tile += kKvTile) {
                const i64 tile_end = std::min(tile + kKvTile, visible);
                for (i64 t = tile; t < tile_end; ++t) {
                    kv.loadK(t, kvh, key.data());
                    const float s = dot(qrow, key.data(), d) * scale;
                    kv.loadV(t, kvh, value.data());
                    state.absorb(s, value.data(), d);
                }
            }
            state.finish(out.row({i, qh}), d);
        }
    }
}

void
flashDecode(const AttnConfig &config, const tensor::HostTensor &q,
            const KvView &kv, i64 kv_len, tensor::HostTensor &out)
{
    config.validate();
    panic_if(q.shape().rank() != 2, "q must be [Hq, D]");
    panic_if(!(out.shape() == q.shape()), "out shape mismatch");

    const float scale = config.effectiveScale();
    const int d = config.head_dim;

    std::vector<float> key(static_cast<std::size_t>(d));
    std::vector<float> value(static_cast<std::size_t>(d));

    for (int qh = 0; qh < config.num_q_heads; ++qh) {
        const int kvh = config.kvHeadFor(qh);
        const float *qrow = q.row({qh});
        OnlineRow state(d);
        for (i64 tile = 0; tile < kv_len; tile += kKvTile) {
            const i64 tile_end = std::min(tile + kKvTile, kv_len);
            for (i64 t = tile; t < tile_end; ++t) {
                kv.loadK(t, kvh, key.data());
                const float s = dot(qrow, key.data(), d) * scale;
                kv.loadV(t, kvh, value.data());
                state.absorb(s, value.data(), d);
            }
        }
        state.finish(out.row({qh}), d);
    }
}

void
flashDecodeBatch(const AttnConfig &config, const tensor::HostTensor &q,
                 const std::vector<const KvView *> &kv_views,
                 const std::vector<i64> &kv_lens,
                 const std::vector<i32> &cache_batch_idx,
                 tensor::HostTensor &out)
{
    panic_if(q.shape().rank() != 3, "q must be [B, Hq, D]");
    const i64 batch = q.shape()[0];
    panic_if(cache_batch_idx.size() != static_cast<std::size_t>(batch),
             "cache_batch_idx size mismatch");
    panic_if(kv_views.size() != kv_lens.size(),
             "kv_views/kv_lens size mismatch");

    tensor::HostTensor qi(
        tensor::Shape{q.shape()[1], q.shape()[2]});
    tensor::HostTensor oi(
        tensor::Shape{q.shape()[1], q.shape()[2]});

    for (i64 b = 0; b < batch; ++b) {
        const auto slot =
            static_cast<std::size_t>(cache_batch_idx[
                static_cast<std::size_t>(b)]);
        panic_if(slot >= kv_views.size(),
                 "cache_batch_idx out of range");
        std::copy(q.row({b}),
                  q.row({b}) + q.shape()[1] * q.shape()[2], qi.data());
        flashDecode(config, qi, *kv_views[slot], kv_lens[slot], oi);
        std::copy(oi.data(), oi.data() + oi.numel(), out.row({b}));
    }
}

void
appendKv(KvWriter &writer, i64 start, i64 num_tokens, int num_kv_heads,
         int head_dim, const float *k_in, const float *v_in)
{
    for (i64 t = 0; t < num_tokens; ++t) {
        for (int h = 0; h < num_kv_heads; ++h) {
            const std::size_t off = static_cast<std::size_t>(
                (t * num_kv_heads + h) * head_dim);
            writer.storeK(start + t, h, k_in + off);
            writer.storeV(start + t, h, v_in + off);
        }
    }
}

} // namespace vattn::attn
