/**
 * @file
 * Flash-style tiled attention kernels (online softmax over KV tiles,
 * O(tile) memory) — functional models of FlashAttention-2 / FlashInfer /
 * FA3 compute. They consume any KvView, so the *same kernel code* runs
 * over a contiguous vAttention cache, a strided tensor-slicing cache, or
 * (via PagedKvView) a paged cache — mirroring the portability argument
 * of the paper.
 *
 * Also provides the KV append path (what a serving iteration does after
 * QKV projection) and a batched decode entry point with FA2's
 * cache_batch_idx semantics (§5.3.4: Q row i may use any KV slot).
 */

#ifndef VATTN_ATTN_KERNELS_HH
#define VATTN_ATTN_KERNELS_HH

#include <vector>

#include "attn/kv_view.hh"
#include "attn/reference.hh"
#include "tensor/host_tensor.hh"

namespace vattn::attn
{

/** KV tile width used by the tiled kernels. */
constexpr i64 kKvTile = 64;

/**
 * Tiled prefill attention: q [Lq, Hq, D] occupying the last Lq
 * positions of kv_len tokens; out [Lq, Hq, D].
 */
void flashPrefill(const AttnConfig &config, const tensor::HostTensor &q,
                  const KvView &kv, i64 kv_len, tensor::HostTensor &out);

/** Tiled decode attention: q/out [Hq, D] over kv_len tokens. */
void flashDecode(const AttnConfig &config, const tensor::HostTensor &q,
                 const KvView &kv, i64 kv_len, tensor::HostTensor &out);

/**
 * Batched decode with cache_batch_idx: row i of q (shape [B, Hq, D])
 * attends over kv_views[cache_batch_idx[i]] with length
 * kv_lens[cache_batch_idx[i]]. This is the FlashAttention-2 API surface
 * that lets vAttention leave holes in the KV batch dimension when a
 * request finishes mid-batch (continuous batching, §5.3.4).
 */
void flashDecodeBatch(const AttnConfig &config,
                      const tensor::HostTensor &q,
                      const std::vector<const KvView *> &kv_views,
                      const std::vector<i64> &kv_lens,
                      const std::vector<i32> &cache_batch_idx,
                      tensor::HostTensor &out);

/**
 * Append the K/V vectors of @p num_tokens tokens (host arrays of shape
 * [num_tokens, Hkv, D]) to the cache starting at position @p start.
 */
void appendKv(KvWriter &writer, i64 start, i64 num_tokens, int num_kv_heads,
              int head_dim, const float *k_in, const float *v_in);

} // namespace vattn::attn

#endif // VATTN_ATTN_KERNELS_HH
