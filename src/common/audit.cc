#include "common/audit.hh"

namespace vattn::audit
{

bool
AuditReport::contains(const std::string &needle) const
{
    for (const std::string &violation : violations_) {
        if (violation.find(needle) != std::string::npos) {
            return true;
        }
    }
    return false;
}

std::string
AuditReport::toString() const
{
    if (ok()) {
        return "audit: all invariants hold";
    }
    std::ostringstream oss;
    oss << "audit: " << violations_.size() << " invariant violation"
        << (violations_.size() == 1 ? "" : "s");
    for (const std::string &violation : violations_) {
        oss << "\n  - " << violation;
    }
    return oss.str();
}

} // namespace vattn::audit
