/**
 * @file
 * Measurement helpers: running scalar statistics, percentile/CDF
 * accumulators (for Figure 10 style latency CDFs) and fixed-bucket
 * histograms.
 */

#ifndef VATTN_COMMON_STATS_HH
#define VATTN_COMMON_STATS_HH

#include <limits>
#include <string>
#include <vector>

#include "common/types.hh"

namespace vattn
{

/** Streaming mean/variance/min/max (Welford). */
class RunningStat
{
  public:
    void add(double x);

    u64 count() const { return count_; }
    double mean() const { return count_ ? mean_ : 0.0; }
    double variance() const;
    double stddev() const;
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double sum() const { return sum_; }

    void reset();

  private:
    u64 count_ = 0;
    double mean_ = 0;
    double m2_ = 0;
    double sum_ = 0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Collects raw samples and answers percentile / CDF queries.
 * Samples are sorted lazily on first query.
 */
class Percentiles
{
  public:
    void add(double x);
    u64 count() const { return samples_.size(); }

    /** Pre-size the sample store (allocation-free steady-state adds:
     *  the engine reserves for a whole run's samples up front so the
     *  per-iteration hot path never reallocates). */
    void reserve(std::size_t n) { samples_.reserve(n); }
    /** Reserved sample slots (the online path grows geometrically at
     *  submission time and needs to see where it stands). */
    std::size_t capacity() const { return samples_.capacity(); }

    /** Value at quantile q in [0, 1] (linear interpolation). */
    double quantile(double q) const;
    double median() const { return quantile(0.5); }
    double p99() const { return quantile(0.99); }
    double mean() const;
    double min() const { return quantile(0.0); }
    double max() const { return quantile(1.0); }

    /** Fraction of samples <= x. */
    double cdfAt(double x) const;

    /**
     * Evenly spaced (value, cumulative-fraction) points for plotting a
     * CDF, like Figure 10 of the paper.
     */
    std::vector<std::pair<double, double>> cdfPoints(int num_points) const;

    const std::vector<double> &sorted() const;

  private:
    mutable std::vector<double> samples_;
    mutable bool sorted_ = false;
};

/** Fixed-width bucket histogram over [lo, hi). */
class Histogram
{
  public:
    Histogram(double lo, double hi, int num_buckets);

    void add(double x);
    u64 count() const { return total_; }
    u64 bucketCount(int b) const;
    int numBuckets() const { return static_cast<int>(buckets_.size()); }
    double bucketLo(int b) const;
    double bucketHi(int b) const;
    u64 underflow() const { return underflow_; }
    u64 overflow() const { return overflow_; }

    std::string toString(int max_width = 50) const;

  private:
    double lo_;
    double hi_;
    double width_;
    std::vector<u64> buckets_;
    u64 underflow_ = 0;
    u64 overflow_ = 0;
    u64 total_ = 0;
};

} // namespace vattn

#endif // VATTN_COMMON_STATS_HH
