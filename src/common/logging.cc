#include "common/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "common/thread_annotations.hh"
#include "common/types.hh"

namespace vattn
{

const char *
toString(PageGroup pg)
{
    switch (pg) {
      case PageGroup::k64KB: return "64KB";
      case PageGroup::k128KB: return "128KB";
      case PageGroup::k256KB: return "256KB";
      case PageGroup::k2MB: return "2MB";
    }
    return "?";
}

const char *
toString(PageSize ps)
{
    switch (ps) {
      case PageSize::k4KB: return "4KB";
      case PageSize::k64KB: return "64KB";
      case PageSize::k2MB: return "2MB";
    }
    return "?";
}

namespace log_detail
{

namespace
{

/** Serializes log output and guards the error-mode flag: replica
 *  worker threads (serving/cluster.cc) report through here
 *  concurrently, and interleaved half-lines are useless in CI logs. */
std::mutex log_mutex;

bool throw_on_error GUARDED_BY(log_mutex) = false;

} // namespace

void
setThrowOnError(bool enable)
{
    std::lock_guard<std::mutex> lock(log_mutex);
    throw_on_error = enable;
}

bool
throwOnError()
{
    std::lock_guard<std::mutex> lock(log_mutex);
    return throw_on_error;
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    {
        std::lock_guard<std::mutex> lock(log_mutex);
        if (throw_on_error) {
            throw SimError{msg};
        }
        std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file,
                     line);
    }
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    {
        std::lock_guard<std::mutex> lock(log_mutex);
        if (throw_on_error) {
            throw SimError{msg};
        }
        std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file,
                     line);
    }
    std::exit(1);
}

void
warnImpl(const char *file, int line, const std::string &msg)
{
    std::lock_guard<std::mutex> lock(log_mutex);
    std::fprintf(stderr, "warn: %s (%s:%d)\n", msg.c_str(), file, line);
}

void
informImpl(const std::string &msg)
{
    std::lock_guard<std::mutex> lock(log_mutex);
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace log_detail
} // namespace vattn
