/**
 * @file
 * Clang thread-safety-analysis annotation macros (the abseil/LLVM
 * convention). Classes with cross-thread state annotate which mutex
 * guards each member (GUARDED_BY) and which lock a method needs
 * (REQUIRES) or takes (ACQUIRE/RELEASE), and clang's -Wthread-safety
 * turns locking-discipline violations into compile errors. The clang
 * CI job builds with -Wthread-safety -Werror; on compilers without the
 * attribute (gcc) every macro expands to nothing, so annotations are
 * documentation there and machine-checked contract under clang.
 *
 * Only the subset this codebase uses is defined — add macros from the
 * LLVM mutex.h reference as they become needed rather than carrying
 * dead ones.
 */

#ifndef VATTN_COMMON_THREAD_ANNOTATIONS_HH
#define VATTN_COMMON_THREAD_ANNOTATIONS_HH

#if defined(__clang__) && (!defined(SWIG))
#define VATTN_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define VATTN_THREAD_ANNOTATION(x) // no-op off clang
#endif

/** The member is protected by the given mutex (read and write). */
#define GUARDED_BY(x) VATTN_THREAD_ANNOTATION(guarded_by(x))

/** The pointed-to data is protected by the given mutex. */
#define PT_GUARDED_BY(x) VATTN_THREAD_ANNOTATION(pt_guarded_by(x))

/** Caller must hold the mutex(es) when calling this function. */
#define REQUIRES(...) \
    VATTN_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** Caller must NOT hold the mutex(es) when calling this function
 *  (the function acquires them itself — deadlock guard). */
#define EXCLUDES(...) \
    VATTN_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** The function acquires the mutex(es) and holds them on return. */
#define ACQUIRE(...) \
    VATTN_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** The function releases the mutex(es) held on entry. */
#define RELEASE(...) \
    VATTN_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** Declares a type to be a lockable capability (e.g. a mutex
 *  wrapper); std::mutex is already known to the analysis. */
#define CAPABILITY(x) VATTN_THREAD_ANNOTATION(capability(x))

/** RAII types that acquire on construction, release on destruction
 *  (std::lock_guard/std::unique_lock are already known). */
#define SCOPED_CAPABILITY VATTN_THREAD_ANNOTATION(scoped_lockable)

/** The function returns a reference to the given mutex. */
#define RETURN_CAPABILITY(x) \
    VATTN_THREAD_ANNOTATION(lock_returned(x))

/** Escape hatch: the function touches guarded state but is vetted by
 *  other means (e.g. called before threads exist). Use sparingly and
 *  say why at the call site. */
#define NO_THREAD_SAFETY_ANALYSIS \
    VATTN_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif // VATTN_COMMON_THREAD_ANNOTATIONS_HH
