/**
 * @file
 * Fundamental integer/size types and unit constants shared by all of the
 * vattn substrates (gem5-style naming).
 */

#ifndef VATTN_COMMON_TYPES_HH
#define VATTN_COMMON_TYPES_HH

#include <cstdint>
#include <cstddef>

namespace vattn
{

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/** Device virtual address (byte-granular). */
using Addr = u64;
/** Device physical address (byte-granular). */
using PhysAddr = u64;
/** Simulated time in nanoseconds. */
using TimeNs = u64;

constexpr u64 KiB = 1024ULL;
constexpr u64 MiB = 1024ULL * KiB;
constexpr u64 GiB = 1024ULL * MiB;
constexpr u64 TiB = 1024ULL * GiB;

constexpr u64 kUsec = 1000ULL;            ///< ns in a microsecond
constexpr u64 kMsec = 1000ULL * kUsec;    ///< ns in a millisecond
constexpr u64 kSec = 1000ULL * kMsec;     ///< ns in a second

/** Is @p x a power of two (zero is not). */
constexpr bool
isPow2(u64 x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/** Round @p x up to the next multiple of @p align (align must be pow2). */
constexpr u64
roundUp(u64 x, u64 align)
{
    return (x + align - 1) & ~(align - 1);
}

/** Round @p x down to a multiple of @p align (align must be pow2). */
constexpr u64
roundDown(u64 x, u64 align)
{
    return x & ~(align - 1);
}

/** Ceiling division for unsigned integers. */
constexpr u64
ceilDiv(u64 num, u64 den)
{
    return (num + den - 1) / den;
}

/** log2 of a power-of-two value. */
constexpr unsigned
log2Exact(u64 x)
{
    unsigned n = 0;
    while (x > 1) {
        x >>= 1;
        ++n;
    }
    return n;
}

/**
 * Hardware page sizes natively supported by the simulated GPU MMU
 * (NVIDIA GPUs support at least 4KB, 64KB and 2MB; §6.2 of the paper).
 */
enum class PageSize : u64
{
    k4KB = 4 * KiB,
    k64KB = 64 * KiB,
    k2MB = 2 * MiB,
};

constexpr u64
bytes(PageSize ps)
{
    return static_cast<u64>(ps);
}

/**
 * Physical allocation granularities ("page-groups", §2.2/§6.2). A single
 * driver call allocates one page-group. CUDA stock APIs only support the
 * 2MB granularity; the paper's driver extension adds the smaller three.
 */
enum class PageGroup : u64
{
    k64KB = 64 * KiB,
    k128KB = 128 * KiB,
    k256KB = 256 * KiB,
    k2MB = 2 * MiB,
};

constexpr u64
bytes(PageGroup pg)
{
    return static_cast<u64>(pg);
}

/** All page-group sizes, smallest first (handy for sweeps). */
constexpr PageGroup kAllPageGroups[] = {
    PageGroup::k64KB, PageGroup::k128KB, PageGroup::k256KB, PageGroup::k2MB,
};

/** True iff the page-group size is servable by stock CUDA APIs. */
constexpr bool
isCudaNative(PageGroup pg)
{
    return bytes(pg) % bytes(PageSize::k2MB) == 0;
}

const char *toString(PageGroup pg);
const char *toString(PageSize ps);

} // namespace vattn

#endif // VATTN_COMMON_TYPES_HH
