#include "common/prefix_hash.hh"

#include "common/logging.hh"

namespace vattn
{

namespace
{

/** splitmix64 finalizer: full-avalanche mixing of one 64-bit word. */
constexpr u64
mix64(u64 x)
{
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
}

} // namespace

u64
chainTokenHash(u64 prev, const i32 *tokens, i64 n)
{
    u64 h = prev;
    for (i64 i = 0; i < n; ++i) {
        h = mix64(h ^ (static_cast<u64>(static_cast<u32>(tokens[i])) +
                       0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2)));
    }
    // Mix the length in so a chunk of n tokens never collides with a
    // chain over the same tokens split differently.
    return mix64(h ^ static_cast<u64>(n));
}

std::vector<u64>
PrefixKey::chunkHashes(i64 chunk_tokens) const
{
    panic_if(chunk_tokens <= 0, "chunkHashes needs a positive chunk");
    if (empty()) {
        return {};
    }
    if (cache && cache->chunk_tokens == chunk_tokens &&
        !cache->hashes.empty()) {
        return cache->hashes;
    }
    std::vector<u64> hashes;
    const i64 full = size / chunk_tokens;
    hashes.reserve(static_cast<std::size_t>(full));
    u64 h = kPrefixHashSeed;
    for (i64 i = 0; i < full; ++i) {
        h = chainTokenHash(h, tokens + i * chunk_tokens, chunk_tokens);
        hashes.push_back(h);
    }
    if (cache) {
        cache->chunk_tokens = chunk_tokens;
        cache->hashes = hashes;
    }
    return hashes;
}

u64
PrefixKey::rangeHash(u64 prev, i64 start, i64 n) const
{
    panic_if(start < 0 || n < 0 || start + n > size,
             "rangeHash out of bounds");
    return chainTokenHash(prev, tokens + start, n);
}

} // namespace vattn
