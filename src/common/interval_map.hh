/**
 * @file
 * Address-range container mapping disjoint [start, end) intervals to
 * values. Backs the VA reservation book-keeping and the page table: both
 * need exact-range insert/erase, containment lookup and overlap queries
 * over a sparse 64-bit space.
 */

#ifndef VATTN_COMMON_INTERVAL_MAP_HH
#define VATTN_COMMON_INTERVAL_MAP_HH

#include <map>
#include <optional>

#include "common/logging.hh"
#include "common/status.hh"
#include "common/types.hh"

namespace vattn
{

/**
 * Map from disjoint half-open byte ranges to values of type T.
 * Ranges never overlap; inserting an overlapping range is rejected.
 */
template <typename T>
class IntervalMap
{
  public:
    struct Entry
    {
        Addr start;
        Addr end; ///< exclusive
        T value;
    };

    /** Insert [start, end) -> value. Fails on overlap or empty range. */
    Status
    insert(Addr start, Addr end, T value)
    {
        if (end <= start) {
            return errorStatus(ErrorCode::kInvalidArgument,
                               "empty interval");
        }
        if (overlaps(start, end)) {
            return errorStatus(ErrorCode::kAlreadyExists,
                               "interval overlaps existing entry");
        }
        map_.emplace(start, Node{end, std::move(value)});
        return Status::ok();
    }

    /** Remove the entry that starts exactly at @p start. */
    Status
    eraseAt(Addr start)
    {
        auto it = map_.find(start);
        if (it == map_.end()) {
            return errorStatus(ErrorCode::kNotFound, "no interval at start");
        }
        map_.erase(it);
        return Status::ok();
    }

    /** Entry containing @p addr, if any. */
    std::optional<Entry>
    find(Addr addr) const
    {
        auto it = findIter(addr);
        if (it == map_.end()) {
            return std::nullopt;
        }
        return Entry{it->first, it->second.end, it->second.value};
    }

    /** Mutable access to the value of the entry containing @p addr. */
    T *
    findValue(Addr addr)
    {
        auto it = findIterMut(addr);
        return it == map_.end() ? nullptr : &it->second.value;
    }

    const T *
    findValue(Addr addr) const
    {
        auto it = findIter(addr);
        return it == map_.end() ? nullptr : &it->second.value;
    }

    /** Entry starting exactly at @p start, if any. */
    std::optional<Entry>
    findExact(Addr start) const
    {
        auto it = map_.find(start);
        if (it == map_.end()) {
            return std::nullopt;
        }
        return Entry{it->first, it->second.end, it->second.value};
    }

    /** Does [start, end) intersect any stored interval? */
    bool
    overlaps(Addr start, Addr end) const
    {
        if (end <= start || map_.empty()) {
            return false;
        }
        // First interval with key >= start could clip from the right,
        // the one before it could contain start.
        auto it = map_.lower_bound(start);
        if (it != map_.end() && it->first < end) {
            return true;
        }
        if (it != map_.begin()) {
            --it;
            if (it->second.end > start) {
                return true;
            }
        }
        return false;
    }

    /** Visit every entry intersecting [start, end) in address order. */
    template <typename Fn>
    void
    forEachIn(Addr start, Addr end, Fn &&fn) const
    {
        if (end <= start) {
            return;
        }
        auto it = map_.lower_bound(start);
        if (it != map_.begin()) {
            auto prev = std::prev(it);
            if (prev->second.end > start) {
                it = prev;
            }
        }
        for (; it != map_.end() && it->first < end; ++it) {
            fn(Entry{it->first, it->second.end, it->second.value});
        }
    }

    /** Visit all entries in address order. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const auto &[start, node] : map_) {
            fn(Entry{start, node.end, node.value});
        }
    }

    std::size_t size() const { return map_.size(); }
    bool empty() const { return map_.empty(); }
    void clear() { map_.clear(); }

    /** Total bytes covered by stored intervals. */
    u64
    coveredBytes() const
    {
        u64 total = 0;
        for (const auto &[start, node] : map_) {
            total += node.end - start;
        }
        return total;
    }

  private:
    struct Node
    {
        Addr end;
        T value;
    };

    using MapType = std::map<Addr, Node>;

    typename MapType::const_iterator
    findIter(Addr addr) const
    {
        auto it = map_.upper_bound(addr);
        if (it == map_.begin()) {
            return map_.end();
        }
        --it;
        if (addr >= it->first && addr < it->second.end) {
            return it;
        }
        return map_.end();
    }

    typename MapType::iterator
    findIterMut(Addr addr)
    {
        auto it = map_.upper_bound(addr);
        if (it == map_.begin()) {
            return map_.end();
        }
        --it;
        if (addr >= it->first && addr < it->second.end) {
            return it;
        }
        return map_.end();
    }

    MapType map_;
};

} // namespace vattn

#endif // VATTN_COMMON_INTERVAL_MAP_HH
