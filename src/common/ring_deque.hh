/**
 * @file
 * Growable circular double-ended queue. std::deque allocates and
 * frees fixed-size blocks as elements stream through it, which puts
 * heap traffic on any steady-state loop that pushes and pops at the
 * high-water shape (the serving scheduler's FCFS queues do exactly
 * that). RingDeque keeps one power-of-two buffer that only grows:
 * once the high-water capacity has been seen, every push/pop is
 * pointer arithmetic with no allocation at all.
 */

#ifndef VATTN_COMMON_RING_DEQUE_HH
#define VATTN_COMMON_RING_DEQUE_HH

#include <cstddef>
#include <iterator>
#include <vector>

#include "common/logging.hh"

namespace vattn
{

template <typename T>
class RingDeque
{
  public:
    RingDeque() = default;

    bool empty() const { return count_ == 0; }
    std::size_t size() const { return count_; }

    T &front()
    {
        panic_if(empty(), "front() on an empty RingDeque");
        return buf_[head_];
    }
    const T &front() const
    {
        panic_if(empty(), "front() on an empty RingDeque");
        return buf_[head_];
    }
    T &back()
    {
        panic_if(empty(), "back() on an empty RingDeque");
        return buf_[wrap(head_ + count_ - 1)];
    }
    const T &back() const
    {
        panic_if(empty(), "back() on an empty RingDeque");
        return buf_[wrap(head_ + count_ - 1)];
    }

    void
    push_back(const T &value)
    {
        reserveOneMore();
        buf_[wrap(head_ + count_)] = value;
        ++count_;
    }

    void
    push_front(const T &value)
    {
        reserveOneMore();
        head_ = wrap(head_ + buf_.size() - 1);
        buf_[head_] = value;
        ++count_;
    }

    void
    pop_front()
    {
        panic_if(empty(), "pop_front() on an empty RingDeque");
        buf_[head_] = T{};
        head_ = wrap(head_ + 1);
        --count_;
    }

    void
    pop_back()
    {
        panic_if(empty(), "pop_back() on an empty RingDeque");
        buf_[wrap(head_ + count_ - 1)] = T{};
        --count_;
    }

    /** Drop all elements; capacity is retained. */
    void
    clear()
    {
        while (!empty()) {
            pop_front();
        }
        head_ = 0;
    }

    class const_iterator
    {
      public:
        using iterator_category = std::forward_iterator_tag;
        using value_type = T;
        using difference_type = std::ptrdiff_t;
        using pointer = const T *;
        using reference = const T &;

        const_iterator(const RingDeque *owner, std::size_t pos)
            : owner_(owner), pos_(pos)
        {
        }
        const T &operator*() const
        {
            return owner_->buf_[owner_->wrap(owner_->head_ + pos_)];
        }
        const_iterator &operator++()
        {
            ++pos_;
            return *this;
        }
        bool operator==(const const_iterator &other) const
        {
            return pos_ == other.pos_;
        }
        bool operator!=(const const_iterator &other) const
        {
            return pos_ != other.pos_;
        }

      private:
        const RingDeque *owner_;
        std::size_t pos_;
    };

    const_iterator begin() const { return {this, 0}; }
    const_iterator end() const { return {this, count_}; }

  private:
    std::size_t
    wrap(std::size_t index) const
    {
        // Capacity is always a power of two (or zero, never indexed).
        return index & (buf_.size() - 1);
    }

    void
    reserveOneMore()
    {
        if (count_ < buf_.size()) {
            return;
        }
        const std::size_t grown =
            buf_.empty() ? kInitialCapacity : buf_.size() * 2;
        std::vector<T> next(grown);
        for (std::size_t i = 0; i < count_; ++i) {
            next[i] = buf_[wrap(head_ + i)];
        }
        buf_ = std::move(next);
        head_ = 0;
    }

    static constexpr std::size_t kInitialCapacity = 16;

    std::vector<T> buf_;
    std::size_t head_ = 0;
    std::size_t count_ = 0;
};

} // namespace vattn

#endif // VATTN_COMMON_RING_DEQUE_HH
