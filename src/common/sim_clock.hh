/**
 * @file
 * Deterministic virtual clock. All kernel / driver latencies in the
 * reproduction are model outputs accumulated on this clock, which makes
 * every experiment replayable bit-for-bit (see DESIGN.md §2.1).
 */

#ifndef VATTN_COMMON_SIM_CLOCK_HH
#define VATTN_COMMON_SIM_CLOCK_HH

#include "common/logging.hh"
#include "common/types.hh"

namespace vattn
{

/** Monotonic simulated-time source (nanoseconds). */
class SimClock
{
  public:
    TimeNs now() const { return now_ns_; }

    /** Move time forward by @p delta_ns. */
    void
    advance(TimeNs delta_ns)
    {
        now_ns_ += delta_ns;
    }

    /** Jump to an absolute time >= now. */
    void
    advanceTo(TimeNs t_ns)
    {
        panic_if(t_ns < now_ns_, "SimClock cannot go backwards: ",
                 t_ns, " < ", now_ns_);
        now_ns_ = t_ns;
    }

    void reset() { now_ns_ = 0; }

    static double toSeconds(TimeNs t) { return static_cast<double>(t) / 1e9; }
    static double toMillis(TimeNs t) { return static_cast<double>(t) / 1e6; }
    static double toMicros(TimeNs t) { return static_cast<double>(t) / 1e3; }

  private:
    TimeNs now_ns_ = 0;
};

} // namespace vattn

#endif // VATTN_COMMON_SIM_CLOCK_HH
