/**
 * @file
 * Cross-layer invariant auditing. Every layer that owns accountable
 * state (driver ledgers, page pool, KV allocator, block manager,
 * scheduler queues) implements an `auditInto(AuditReport &)` that
 * re-derives its invariants from first principles and records every
 * violation with an actionable message — generalizing the older
 * boolean `checkInvariants()` predicates, which now wrap auditInto.
 *
 * Audit functions are always compiled (tests inject corruption and
 * assert on the produced report); only the engine's per-iteration
 * whole-stack audit hook is gated behind the VATTN_AUDIT build option,
 * so Release serving runs pay nothing.
 */

#ifndef VATTN_COMMON_AUDIT_HH
#define VATTN_COMMON_AUDIT_HH

#include <cstddef>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace vattn::audit
{

/** Accumulates invariant violations across the layers of one audit
 *  sweep. Empty report = every audited invariant holds. */
class AuditReport
{
  public:
    bool ok() const { return violations_.empty(); }
    std::size_t numViolations() const { return violations_.size(); }
    const std::vector<std::string> &violations() const
    {
        return violations_;
    }

    /** Record one violation; arguments are streamed like logging. By
     *  convention the first part names the layer ("page_pool: ..."). */
    template <typename... Args>
    void
    fail(Args &&...parts)
    {
        std::ostringstream oss;
        (oss << ... << std::forward<Args>(parts));
        violations_.push_back(oss.str());
    }

    /** Record a violation when @p holds is false; returns @p holds so
     *  callers can skip checks that depend on this one. */
    template <typename... Args>
    bool
    check(bool holds, Args &&...parts)
    {
        if (!holds) {
            fail(std::forward<Args>(parts)...);
        }
        return holds;
    }

    /** Does any violation message contain @p needle? (test helper) */
    bool contains(const std::string &needle) const;

    /** Human-readable multi-line summary of every violation. */
    std::string toString() const;

  private:
    std::vector<std::string> violations_;
};

} // namespace vattn::audit

#endif // VATTN_COMMON_AUDIT_HH
