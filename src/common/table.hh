/**
 * @file
 * ASCII table / CSV emitter used by the benchmark harness to print the
 * paper's tables and figure series in a uniform, diffable format.
 */

#ifndef VATTN_COMMON_TABLE_HH
#define VATTN_COMMON_TABLE_HH

#include <string>
#include <vector>

namespace vattn
{

/** Column-aligned text table with optional CSV rendering. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Append a row; must have the same arity as the header. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format a double with fixed precision. */
    static std::string num(double v, int precision = 2);
    static std::string integer(long long v);

    /** Render with aligned columns. */
    std::string toString() const;
    /** Render as CSV. */
    std::string toCsv() const;

    /** Print toString() to stdout with a caption line. */
    void print(const std::string &caption) const;

    std::size_t numRows() const { return rows_.size(); }

    /** Raw cells, for machine-readable re-emission (JSON reports). */
    const std::vector<std::string> &headers() const { return headers_; }
    const std::vector<std::vector<std::string>> &rows() const
    {
        return rows_;
    }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace vattn

#endif // VATTN_COMMON_TABLE_HH
