/**
 * @file
 * IEEE-754 binary16 (half precision) storage type. The KV cache in the
 * paper is FP16/BF16 (P = 2 bytes, Table 2); our functional kernels store
 * KV in fp16 and accumulate in fp32, like FlashAttention does.
 */

#ifndef VATTN_COMMON_FP16_HH
#define VATTN_COMMON_FP16_HH

#include <cmath>
#include <cstring>

#include "common/types.hh"

namespace vattn
{

/** Convert fp32 -> fp16 bits with round-to-nearest-even. */
inline u16
fp32ToFp16Bits(float f)
{
    u32 x;
    std::memcpy(&x, &f, sizeof(x));

    const u32 sign = (x >> 16) & 0x8000u;
    u32 mantissa = x & 0x007fffffu;
    const i32 exp = static_cast<i32>((x >> 23) & 0xffu) - 127;

    if (exp == 128) { // inf or nan
        if (mantissa) {
            return static_cast<u16>(sign | 0x7e00u); // quiet NaN
        }
        return static_cast<u16>(sign | 0x7c00u); // inf
    }
    if (exp > 15) { // overflow -> inf
        return static_cast<u16>(sign | 0x7c00u);
    }
    if (exp >= -14) { // normal range
        u32 half_exp = static_cast<u32>(exp + 15);
        // round mantissa from 23 to 10 bits, round-to-nearest-even
        u32 mant = mantissa >> 13;
        const u32 rest = mantissa & 0x1fffu;
        if (rest > 0x1000u || (rest == 0x1000u && (mant & 1u))) {
            ++mant;
            if (mant == 0x400u) { // mantissa overflow -> bump exponent
                mant = 0;
                ++half_exp;
                if (half_exp == 31) {
                    return static_cast<u16>(sign | 0x7c00u);
                }
            }
        }
        return static_cast<u16>(sign | (half_exp << 10) | mant);
    }
    if (exp >= -25) { // subnormal half
        mantissa |= 0x00800000u; // implicit leading one
        // Shift so the result is expressed in units of 2^-24 (the half
        // subnormal ulp); a round-up past 0x3ff naturally carries into
        // the exponent field and yields the smallest normal.
        const u32 total_shift = static_cast<u32>(13 + (-14 - exp));
        u32 mant = mantissa >> total_shift;
        const u32 rest = mantissa & ((1u << total_shift) - 1);
        const u32 halfway = 1u << (total_shift - 1);
        if (rest > halfway || (rest == halfway && (mant & 1u))) {
            ++mant;
        }
        return static_cast<u16>(sign | mant);
    }
    return static_cast<u16>(sign); // underflow -> signed zero
}

/** Convert fp16 bits -> fp32. */
inline float
fp16BitsToFp32(u16 h)
{
    const u32 sign = static_cast<u32>(h & 0x8000u) << 16;
    const u32 exp = (h >> 10) & 0x1fu;
    const u32 mant = h & 0x3ffu;

    u32 out;
    if (exp == 0) {
        if (mant == 0) {
            out = sign; // zero
        } else {
            // subnormal: normalize
            u32 m = mant;
            i32 e = -1;
            while (!(m & 0x400u)) {
                m <<= 1;
                ++e;
            }
            m &= 0x3ffu;
            out = sign | static_cast<u32>((127 - 15 - e) << 23) | (m << 13);
        }
    } else if (exp == 31) {
        out = sign | 0x7f800000u | (mant << 13); // inf / nan
    } else {
        out = sign | ((exp + 127 - 15) << 23) | (mant << 13);
    }
    float f;
    std::memcpy(&f, &out, sizeof(f));
    return f;
}

/** Half-precision value with fp32 conversion operators. */
struct Fp16
{
    u16 bits = 0;

    Fp16() = default;
    explicit Fp16(float f) : bits(fp32ToFp16Bits(f)) {}

    float toFloat() const { return fp16BitsToFp32(bits); }
    explicit operator float() const { return toFloat(); }

    bool operator==(const Fp16 &o) const { return bits == o.bits; }
};

static_assert(sizeof(Fp16) == 2, "Fp16 must be 2 bytes");

} // namespace vattn

#endif // VATTN_COMMON_FP16_HH
