/**
 * @file
 * Deterministic random number generation (xoshiro256** seeded through
 * splitmix64) and the distributions used by the workload generators:
 * uniform, exponential (Poisson inter-arrivals), log-normal (context
 * length spread) and categorical mixes.
 */

#ifndef VATTN_COMMON_RNG_HH
#define VATTN_COMMON_RNG_HH

#include <array>
#include <cmath>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace vattn
{

/** xoshiro256** PRNG; fast, high quality, fully deterministic. */
class Rng
{
  public:
    explicit Rng(u64 seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

    void
    reseed(u64 seed)
    {
        // splitmix64 expansion of the seed into the full state
        u64 x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ULL;
            u64 z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    u64
    next()
    {
        const u64 result = rotl(state_[1] * 5, 7) * 9;
        const u64 t = state_[1] << 17;

        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /**
     * Uniform integer in [lo, hi] inclusive, with no modulo bias:
     * Lemire's multiply-shift rejection method maps next() through a
     * 128-bit product and rejects the (at most span-1 out of 2^64)
     * raw values that would over-represent the low residues.
     */
    i64
    uniformInt(i64 lo, i64 hi)
    {
        panic_if(hi < lo, "uniformInt: hi < lo");
        const u64 span = static_cast<u64>(hi) - static_cast<u64>(lo) + 1;
        if (span == 0) { // full 64-bit range: every value is fair
            return static_cast<i64>(next());
        }
        using u128 = unsigned __int128;
        u128 product = static_cast<u128>(next()) * span;
        if (static_cast<u64>(product) < span) {
            const u64 threshold = (0 - span) % span; // 2^64 mod span
            while (static_cast<u64>(product) < threshold) {
                product = static_cast<u128>(next()) * span;
            }
        }
        // Unsigned add: offsets >= 2^63 (spans above 2^63) would be
        // signed overflow if added as i64.
        return static_cast<i64>(static_cast<u64>(lo) +
                                static_cast<u64>(product >> 64));
    }

    /** Exponential with given rate (mean = 1/rate). */
    double
    exponential(double rate)
    {
        panic_if(rate <= 0, "exponential: rate must be > 0");
        double u = uniform();
        if (u <= 0) {
            u = 0x1.0p-53;
        }
        return -std::log1p(-u) / rate;
    }

    /** Log-normal with the given parameters of the underlying normal. */
    double
    logNormal(double mu, double sigma)
    {
        return std::exp(mu + sigma * normal());
    }

    /** Standard normal via Box-Muller (one value per call). */
    double
    normal()
    {
        if (have_cached_) {
            have_cached_ = false;
            return cached_;
        }
        double u1 = uniform();
        double u2 = uniform();
        if (u1 <= 0) {
            u1 = 0x1.0p-53;
        }
        const double r = std::sqrt(-2.0 * std::log(u1));
        const double theta = 2.0 * M_PI * u2;
        cached_ = r * std::sin(theta);
        have_cached_ = true;
        return r * std::cos(theta);
    }

    /** Sample an index from unnormalized weights. */
    std::size_t
    categorical(const std::vector<double> &weights)
    {
        panic_if(weights.empty(), "categorical: empty weights");
        double total = 0;
        for (double w : weights) {
            total += w;
        }
        double x = uniform() * total;
        for (std::size_t i = 0; i < weights.size(); ++i) {
            x -= weights[i];
            if (x <= 0) {
                return i;
            }
        }
        return weights.size() - 1;
    }

    /** Fisher-Yates shuffle. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            const std::size_t j =
                static_cast<std::size_t>(uniformInt(0, static_cast<i64>(i) - 1));
            std::swap(v[i - 1], v[j]);
        }
    }

  private:
    static u64
    rotl(u64 x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::array<u64, 4> state_{};
    bool have_cached_ = false;
    double cached_ = 0;
};

} // namespace vattn

#endif // VATTN_COMMON_RNG_HH
