#include "common/stats.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.hh"

namespace vattn
{

void
RunningStat::add(double x)
{
    ++count_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

double
RunningStat::variance() const
{
    if (count_ < 2) {
        return 0.0;
    }
    return m2_ / static_cast<double>(count_ - 1);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

void
RunningStat::reset()
{
    *this = RunningStat();
}

void
Percentiles::add(double x)
{
    samples_.push_back(x);
    sorted_ = false;
}

const std::vector<double> &
Percentiles::sorted() const
{
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
    return samples_;
}

double
Percentiles::quantile(double q) const
{
    panic_if(samples_.empty(), "Percentiles::quantile with no samples");
    panic_if(q < 0.0 || q > 1.0, "quantile out of range: ", q);
    const auto &s = sorted();
    if (s.size() == 1) {
        return s[0];
    }
    const double pos = q * static_cast<double>(s.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(pos));
    const auto hi = static_cast<std::size_t>(std::ceil(pos));
    const double frac = pos - static_cast<double>(lo);
    return s[lo] * (1.0 - frac) + s[hi] * frac;
}

double
Percentiles::mean() const
{
    if (samples_.empty()) {
        return 0.0;
    }
    double sum = 0;
    for (double x : samples_) {
        sum += x;
    }
    return sum / static_cast<double>(samples_.size());
}

double
Percentiles::cdfAt(double x) const
{
    if (samples_.empty()) {
        return 0.0;
    }
    const auto &s = sorted();
    const auto it = std::upper_bound(s.begin(), s.end(), x);
    return static_cast<double>(it - s.begin()) /
           static_cast<double>(s.size());
}

std::vector<std::pair<double, double>>
Percentiles::cdfPoints(int num_points) const
{
    panic_if(num_points < 2, "cdfPoints needs >= 2 points");
    std::vector<std::pair<double, double>> pts;
    if (samples_.empty()) {
        return pts;
    }
    pts.reserve(static_cast<std::size_t>(num_points));
    for (int i = 0; i < num_points; ++i) {
        const double q = static_cast<double>(i) /
                         static_cast<double>(num_points - 1);
        const double x = quantile(q);
        // More points than distinct sample values repeats the same x
        // (vertical stutters in a CDF plot); a CDF has one cumulative
        // fraction per x, so keep only the highest q for each x.
        if (!pts.empty() && pts.back().first == x) {
            pts.back().second = q;
        } else {
            pts.emplace_back(x, q);
        }
    }
    return pts;
}

Histogram::Histogram(double lo, double hi, int num_buckets)
    : lo_(lo), hi_(hi),
      width_((hi - lo) / static_cast<double>(num_buckets)),
      buckets_(static_cast<std::size_t>(num_buckets), 0)
{
    panic_if(num_buckets <= 0, "Histogram needs > 0 buckets");
    panic_if(hi <= lo, "Histogram needs hi > lo");
}

void
Histogram::add(double x)
{
    ++total_;
    if (x < lo_) {
        ++underflow_;
        return;
    }
    if (x >= hi_) {
        ++overflow_;
        return;
    }
    const auto b = static_cast<std::size_t>((x - lo_) / width_);
    ++buckets_[std::min(b, buckets_.size() - 1)];
}

u64
Histogram::bucketCount(int b) const
{
    panic_if(b < 0 || b >= numBuckets(), "bucket out of range");
    return buckets_[static_cast<std::size_t>(b)];
}

double
Histogram::bucketLo(int b) const
{
    return lo_ + width_ * b;
}

double
Histogram::bucketHi(int b) const
{
    return lo_ + width_ * (b + 1);
}

std::string
Histogram::toString(int max_width) const
{
    u64 peak = 1;
    for (u64 c : buckets_) {
        peak = std::max(peak, c);
    }
    std::ostringstream oss;
    for (int b = 0; b < numBuckets(); ++b) {
        const u64 c = bucketCount(b);
        const int bar = static_cast<int>(
            static_cast<double>(c) / static_cast<double>(peak) * max_width);
        oss << "[" << bucketLo(b) << ", " << bucketHi(b) << ") "
            << std::string(static_cast<std::size_t>(bar), '#')
            << " " << c << "\n";
    }
    return oss.str();
}

} // namespace vattn
