#include "common/table.hh"

#include <cstdio>
#include <iomanip>
#include <sstream>

#include "common/logging.hh"

namespace vattn
{

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    panic_if(headers_.empty(), "Table needs at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    panic_if(cells.size() != headers_.size(),
             "row arity ", cells.size(), " != header arity ",
             headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
Table::num(double v, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << v;
    return oss.str();
}

std::string
Table::integer(long long v)
{
    return std::to_string(v);
}

std::string
Table::toString() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        widths[c] = headers_[c].size();
    }
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            widths[c] = std::max(widths[c], row[c].size());
        }
    }

    std::ostringstream oss;
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            oss << (c == 0 ? "| " : " | ")
                << std::left << std::setw(static_cast<int>(widths[c]))
                << row[c];
        }
        oss << " |\n";
    };

    emit_row(headers_);
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        oss << (c == 0 ? "|" : "-|") << std::string(widths[c] + 2, '-');
    }
    oss << "-|\n";
    for (const auto &row : rows_) {
        emit_row(row);
    }
    return oss.str();
}

std::string
Table::toCsv() const
{
    std::ostringstream oss;
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c) {
                oss << ",";
            }
            oss << row[c];
        }
        oss << "\n";
    };
    emit(headers_);
    for (const auto &row : rows_) {
        emit(row);
    }
    return oss.str();
}

void
Table::print(const std::string &caption) const
{
    std::printf("\n== %s ==\n%s", caption.c_str(), toString().c_str());
    std::fflush(stdout);
}

} // namespace vattn
