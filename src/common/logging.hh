/**
 * @file
 * gem5-style status/error reporting: panic() for internal invariant
 * violations, fatal() for user/configuration errors, warn()/inform() for
 * diagnostics. Message formatting uses ostream chaining so any
 * streamable type can be logged.
 */

#ifndef VATTN_COMMON_LOGGING_HH
#define VATTN_COMMON_LOGGING_HH

#include <sstream>
#include <string>

namespace vattn
{

namespace log_detail
{

/** Concatenate any streamable arguments into a string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const char *file, int line, const std::string &msg);
void informImpl(const std::string &msg);

/** Test hook: when set, panic/fatal throw instead of aborting. */
void setThrowOnError(bool enable);
bool throwOnError();

} // namespace log_detail

/** Thrown by panic()/fatal() in unit tests (see setThrowOnError). */
struct SimError
{
    std::string message;
};

} // namespace vattn

/**
 * panic: something happened that should never happen regardless of what
 * the user does — an actual simulator bug. Aborts (or throws in tests).
 */
#define panic(...)                                                        \
    ::vattn::log_detail::panicImpl(__FILE__, __LINE__,                    \
        ::vattn::log_detail::concat(__VA_ARGS__))

/** panic if @p cond does not hold. */
#define panic_if(cond, ...)                                               \
    do {                                                                  \
        if (cond) {                                                       \
            panic(__VA_ARGS__);                                           \
        }                                                                 \
    } while (0)

/**
 * fatal: the simulation cannot continue due to a condition that is the
 * user's fault (bad configuration, invalid arguments).
 */
#define fatal(...)                                                        \
    ::vattn::log_detail::fatalImpl(__FILE__, __LINE__,                    \
        ::vattn::log_detail::concat(__VA_ARGS__))

/** fatal if @p cond does not hold. */
#define fatal_if(cond, ...)                                               \
    do {                                                                  \
        if (cond) {                                                       \
            fatal(__VA_ARGS__);                                           \
        }                                                                 \
    } while (0)

/** Non-fatal warning about questionable behaviour. */
#define warn(...)                                                         \
    ::vattn::log_detail::warnImpl(__FILE__, __LINE__,                     \
        ::vattn::log_detail::concat(__VA_ARGS__))

/** Informative status message. */
#define inform(...)                                                       \
    ::vattn::log_detail::informImpl(                                      \
        ::vattn::log_detail::concat(__VA_ARGS__))

#endif // VATTN_COMMON_LOGGING_HH
