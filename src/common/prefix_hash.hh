/**
 * @file
 * Content hashing for KV-cache prefix reuse (§8.1 of the paper; the
 * vLLM hash-block scheme). A request's prompt token ids are hashed in
 * fixed-size chunks, with each chunk hash chained onto the previous
 * one, so equal hash chains imply equal token prefixes: chunk i's hash
 * commits to every token in chunks [0, i]. Both memory backends key
 * their prefix stores on these chained hashes — the paged backend at
 * block granularity, the vAttention backend at page-group granularity.
 */

#ifndef VATTN_COMMON_PREFIX_HASH_HH
#define VATTN_COMMON_PREFIX_HASH_HH

#include <vector>

#include "common/types.hh"

namespace vattn
{

/** Seed of every hash chain (chunk 0 chains onto this). */
constexpr u64 kPrefixHashSeed = 0x9e3779b97f4a7c15ULL;

/** Chain @p n token ids onto @p prev (order-sensitive, avalanche
 *  mixed so single-token differences flip the whole hash). */
u64 chainTokenHash(u64 prev, const i32 *tokens, i64 n);

/**
 * Memo for one token sequence's chunk-hash chain at one chunk size.
 * Token ids are immutable once a request is built, so the chain is
 * computed once and replayed by every admission check / prefix match
 * instead of rehashing the whole prompt each time.
 */
struct PrefixHashCache
{
    i64 chunk_tokens = 0; ///< granularity the memo was built at
    std::vector<u64> hashes;
};

/**
 * A non-owning view of one request's prompt token ids, with helpers to
 * derive the chained chunk hashes a backend's prefix store is keyed
 * on. The referenced tokens (and the optional cache) must outlive the
 * key (the serving engine builds one per Request on demand).
 */
struct PrefixKey
{
    const i32 *tokens = nullptr;
    i64 size = 0;
    /** Optional memo, filled on first chunkHashes() call. */
    PrefixHashCache *cache = nullptr;

    bool empty() const { return size <= 0; }

    /**
     * Chained hashes of the first floor(size / chunk_tokens) full
     * chunks: result[i] covers tokens [0, (i+1)*chunk_tokens).
     * Partial trailing tokens are not hashed here (see rangeHash).
     * Served from (and memoized into) @p cache when one is attached
     * and its chunk size matches.
     */
    std::vector<u64> chunkHashes(i64 chunk_tokens) const;

    /** Hash of tokens [start, start + n) chained onto @p prev (used
     *  for partial trailing chunks). Requires start + n <= size. */
    u64 rangeHash(u64 prev, i64 start, i64 n) const;
};

} // namespace vattn

#endif // VATTN_COMMON_PREFIX_HASH_HH
