/**
 * @file
 * Lightweight Status / Result<T> error propagation used across module
 * boundaries where failures are expected behaviour (e.g. out-of-memory in
 * allocators), as opposed to panic()/fatal() which terminate.
 */

#ifndef VATTN_COMMON_STATUS_HH
#define VATTN_COMMON_STATUS_HH

#include <optional>
#include <string>
#include <utility>

#include "common/logging.hh"

namespace vattn
{

/** Error taxonomy shared by the substrates. */
enum class ErrorCode
{
    kOk = 0,
    kOutOfMemory,     ///< physical or virtual space exhausted
    kInvalidArgument, ///< caller error: bad size/alignment/id
    kNotFound,        ///< handle/address unknown
    kAlreadyExists,   ///< double insert / double map
    kFailedPrecondition, ///< operation not legal in current state
    kUnimplemented,
};

const char *toString(ErrorCode code);

/** A success-or-error value with an optional human-readable message. */
class Status
{
  public:
    Status() : code_(ErrorCode::kOk) {}
    Status(ErrorCode code, std::string msg)
        : code_(code), message_(std::move(msg)) {}

    static Status ok() { return Status(); }

    bool isOk() const { return code_ == ErrorCode::kOk; }
    ErrorCode code() const { return code_; }
    const std::string &message() const { return message_; }

    /** panic unless the status is OK (for call sites where failure is
     *  a bug, not an expected outcome). */
    void
    expectOk(const char *what) const
    {
        panic_if(!isOk(), what, ": ", toString(code_), " (", message_, ")");
    }

    bool operator==(const Status &o) const { return code_ == o.code_; }

  private:
    ErrorCode code_;
    std::string message_;
};

inline Status
errorStatus(ErrorCode code, std::string msg = "")
{
    return Status(code, std::move(msg));
}

/** A value or a Status describing why it could not be produced. */
template <typename T>
class Result
{
  public:
    Result(T value) : value_(std::move(value)) {}
    Result(Status status) : status_(std::move(status))
    {
        panic_if(status_.isOk(), "Result error ctor given OK status");
    }
    Result(ErrorCode code, std::string msg = "")
        : status_(code, std::move(msg)) {}

    bool isOk() const { return value_.has_value(); }
    const Status &status() const { return status_; }
    ErrorCode code() const
    {
        return isOk() ? ErrorCode::kOk : status_.code();
    }

    /** Access the value; panics if the result holds an error. */
    const T &
    value() const
    {
        panic_if(!isOk(), "Result::value() on error: ",
                 toString(status_.code()), " (", status_.message(), ")");
        return *value_;
    }

    T &
    value()
    {
        panic_if(!isOk(), "Result::value() on error: ",
                 toString(status_.code()), " (", status_.message(), ")");
        return *value_;
    }

    T
    valueOr(T fallback) const
    {
        return isOk() ? *value_ : std::move(fallback);
    }

  private:
    std::optional<T> value_;
    Status status_;
};

inline const char *
toString(ErrorCode code)
{
    switch (code) {
      case ErrorCode::kOk: return "OK";
      case ErrorCode::kOutOfMemory: return "OUT_OF_MEMORY";
      case ErrorCode::kInvalidArgument: return "INVALID_ARGUMENT";
      case ErrorCode::kNotFound: return "NOT_FOUND";
      case ErrorCode::kAlreadyExists: return "ALREADY_EXISTS";
      case ErrorCode::kFailedPrecondition: return "FAILED_PRECONDITION";
      case ErrorCode::kUnimplemented: return "UNIMPLEMENTED";
    }
    return "?";
}

} // namespace vattn

#endif // VATTN_COMMON_STATUS_HH
