/**
 * @file
 * Discrete-event scaffolding over the virtual TimeNs timeline: a
 * deterministic binary min-heap of timestamped events. This is the
 * core of the event-driven simulation paths — the engine schedules
 * request arrivals on it, and the cluster's event-loop driver steps
 * whichever replica has the earliest next event instead of burning one
 * std::thread per replica.
 *
 * Determinism contract: events pop in non-decreasing time order, and
 * events carrying the same timestamp pop in push (FIFO) order. That
 * makes every consumer reproducible: the engine admits same-instant
 * arrivals in trace order (exactly what the historical stable_sort
 * did), and the cluster coordinator breaks replica ties by push order.
 */

#ifndef VATTN_SIM_EVENT_QUEUE_HH
#define VATTN_SIM_EVENT_QUEUE_HH

#include <algorithm>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace vattn::sim
{

/** No pending event (sorts after every real timestamp). */
inline constexpr TimeNs kNoEventNs = ~TimeNs{0} >> 1;

/**
 * Min-heap of (time, payload) events with FIFO tie-breaking.
 *
 * Payload is any movable type (the engine uses Request*, the cluster
 * a replica index). Pop returns the payload only; peek exposes the
 * timestamp. The heap storage is reused across push/pop cycles, so a
 * steady-state push-one-pop-one consumer performs no allocations.
 */
template <typename Payload>
class EventQueue
{
  public:
    bool empty() const { return heap_.empty(); }
    std::size_t size() const { return heap_.size(); }

    void reserve(std::size_t n) { heap_.reserve(n); }

    /** Schedule @p payload to fire at @p time_ns. */
    void
    push(TimeNs time_ns, Payload payload)
    {
        heap_.push_back(Event{time_ns, next_seq_++,
                              std::move(payload)});
        std::push_heap(heap_.begin(), heap_.end(), After{});
    }

    /** Timestamp of the earliest pending event. */
    TimeNs
    nextTimeNs() const
    {
        panic_if(heap_.empty(), "EventQueue::nextTimeNs on empty queue");
        return heap_.front().time_ns;
    }

    /** Payload of the earliest pending event (not removed). */
    const Payload &
    peek() const
    {
        panic_if(heap_.empty(), "EventQueue::peek on empty queue");
        return heap_.front().payload;
    }

    /** Remove and return the earliest event's payload. */
    Payload
    pop()
    {
        panic_if(heap_.empty(), "EventQueue::pop on empty queue");
        std::pop_heap(heap_.begin(), heap_.end(), After{});
        Payload payload = std::move(heap_.back().payload);
        heap_.pop_back();
        return payload;
    }

    /** Drop every pending event (storage is kept for reuse). */
    void
    clear()
    {
        heap_.clear();
        next_seq_ = 0;
    }

  private:
    struct Event
    {
        TimeNs time_ns = 0;
        u64 seq = 0; ///< push order, breaks same-instant ties FIFO
        Payload payload;
    };

    /** Heap comparator: `a` fires after `b` (max-heap order flipped
     *  into a min-heap by std::push_heap/pop_heap). */
    struct After
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.time_ns != b.time_ns) {
                return a.time_ns > b.time_ns;
            }
            return a.seq > b.seq;
        }
    };

    std::vector<Event> heap_;
    u64 next_seq_ = 0;
};

} // namespace vattn::sim

#endif // VATTN_SIM_EVENT_QUEUE_HH
