/**
 * @file
 * reqId slot registry (§5.2.3): requests occupy non-overlapping
 * sub-tensors identified by an integer reqId in [0, B). Slots move
 * through Free -> Active -> (Cached | Free): Cached slots belong to
 * completed requests whose physical page-groups were deliberately kept
 * mapped (deferred reclamation, §6.1.2) so a future request can reuse
 * them without any driver calls.
 */

#ifndef VATTN_CORE_REQ_SLOTS_HH
#define VATTN_CORE_REQ_SLOTS_HH

#include <list>
#include <vector>

#include "common/status.hh"
#include "common/types.hh"

namespace vattn::core
{

enum class SlotState : u8
{
    kFree = 0,
    kActive,
    kCached, ///< free for reuse, mappings retained
};

const char *toString(SlotState state);

/** Tracks slot states plus the LRU order of cached slots. */
class ReqSlots
{
  public:
    explicit ReqSlots(int capacity);

    int capacity() const { return capacity_; }
    SlotState state(int slot) const;

    int numActive() const { return num_active_; }
    int numFree() const { return num_free_; }
    int numCached() const
    {
        return capacity_ - num_active_ - num_free_;
    }

    /** Activate a specific slot (must be Free or Cached). */
    Status activate(int slot);

    /** Active -> Cached (deferred reclamation). */
    Status moveToCached(int slot);

    /** Free -> Cached (eager allocation parks a pre-mapped warm slot
     *  with the cached ones so allocReqId can hand it out). */
    Status cacheFreeSlot(int slot);

    /** Active or Cached -> Free (mappings gone). */
    Status moveToFree(int slot);

    /** Lowest-numbered free slot, or -1. */
    int firstFree() const;

    /** Cached slots, least recently cached first (reclaim victims). */
    std::vector<int> cachedLruOrder() const;

    /** Same order without the copy (per-iteration hot paths; the
     *  caller must not mutate slot states while iterating). */
    const std::list<int> &cachedOrder() const { return cached_order_; }

    /** Oldest cached slot, or -1. */
    int oldestCached() const;

    /** All active slots in ascending order. */
    std::vector<int> activeSlots() const;

  private:
    void checkSlot(int slot) const;

    int capacity_;
    int num_active_ = 0;
    int num_free_;
    std::vector<SlotState> states_;
    /** Cached slots in insertion order (front = oldest). */
    std::list<int> cached_order_;
    /** Iterator into cached_order_ per slot (valid when Cached). */
    std::vector<std::list<int>::iterator> cached_pos_;
};

} // namespace vattn::core

#endif // VATTN_CORE_REQ_SLOTS_HH
