/**
 * @file
 * reqId slot registry (§5.2.3): requests occupy non-overlapping
 * sub-tensors identified by an integer reqId in [0, B). Slots move
 * through Free -> Active -> (Cached | Free): Cached slots belong to
 * completed requests whose physical page-groups were deliberately kept
 * mapped (deferred reclamation, §6.1.2) so a future request can reuse
 * them without any driver calls.
 *
 * The LRU order of cached slots is an intrusive doubly-linked list
 * threaded through two per-slot index arrays: each slot appears at
 * most once, so linking and unlinking are O(1) pointer swaps with no
 * heap traffic — request retirement sits on the serving steady-state
 * path and must stay allocation-free.
 */

#ifndef VATTN_CORE_REQ_SLOTS_HH
#define VATTN_CORE_REQ_SLOTS_HH

#include <vector>

#include "common/status.hh"
#include "common/types.hh"

namespace vattn::core
{

enum class SlotState : u8
{
    kFree = 0,
    kActive,
    kCached, ///< free for reuse, mappings retained
};

const char *toString(SlotState state);

/** Tracks slot states plus the LRU order of cached slots. */
class ReqSlots
{
  public:
    explicit ReqSlots(int capacity);

    int capacity() const { return capacity_; }
    SlotState state(int slot) const;

    int numActive() const { return num_active_; }
    int numFree() const { return num_free_; }
    int numCached() const
    {
        return capacity_ - num_active_ - num_free_;
    }

    /** Activate a specific slot (must be Free or Cached). */
    Status activate(int slot);

    /** Active -> Cached (deferred reclamation). */
    Status moveToCached(int slot);

    /** Free -> Cached (eager allocation parks a pre-mapped warm slot
     *  with the cached ones so allocReqId can hand it out). */
    Status cacheFreeSlot(int slot);

    /** Active or Cached -> Free (mappings gone). */
    Status moveToFree(int slot);

    /** Lowest-numbered free slot, or -1. */
    int firstFree() const;

    /** Cached slots, least recently cached first (reclaim victims).
     *  Copies — safe to mutate slot states while walking it. */
    std::vector<int> cachedLruOrder() const;

    /** In-place view of the same order (per-iteration hot paths; the
     *  caller must not mutate slot states while iterating). */
    class CachedOrderView
    {
      public:
        class iterator
        {
          public:
            iterator(const std::vector<int> *next, int slot)
                : next_(next), slot_(slot)
            {
            }
            int operator*() const { return slot_; }
            iterator &operator++()
            {
                slot_ = (*next_)[static_cast<std::size_t>(slot_)];
                return *this;
            }
            bool operator!=(const iterator &other) const
            {
                return slot_ != other.slot_;
            }

          private:
            const std::vector<int> *next_;
            int slot_;
        };

        CachedOrderView(const std::vector<int> *next, int head)
            : next_(next), head_(head)
        {
        }
        iterator begin() const { return {next_, head_}; }
        iterator end() const { return {next_, -1}; }

      private:
        const std::vector<int> *next_;
        int head_;
    };

    CachedOrderView cachedOrder() const
    {
        return {&cached_next_, cached_head_};
    }

    /** Oldest cached slot, or -1. */
    int oldestCached() const { return cached_head_; }

    /** All active slots in ascending order. */
    std::vector<int> activeSlots() const;

  private:
    void checkSlot(int slot) const;
    void linkCachedBack(int slot);
    void unlinkCached(int slot);

    int capacity_;
    int num_active_ = 0;
    int num_free_;
    std::vector<SlotState> states_;
    /** Intrusive LRU chain over cached slots (head = oldest). A
     *  slot's links are only meaningful while it is Cached. */
    std::vector<int> cached_next_;
    std::vector<int> cached_prev_;
    int cached_head_ = -1;
    int cached_tail_ = -1;
};

} // namespace vattn::core

#endif // VATTN_CORE_REQ_SLOTS_HH
