#include "core/config.hh"

#include <string>

#include "core/kv_geometry.hh"

namespace vattn::core
{

tensor::DType
Config::dtype() const
{
    return bytes_per_elem == 4 ? tensor::DType::kF32
                               : tensor::DType::kF16;
}

LayerKvSpec
Config::layerSpec(int layer) const
{
    LayerKvSpec spec;
    if (layer >= 0 && layer < static_cast<int>(layers.size())) {
        spec = layers[static_cast<std::size_t>(layer)];
    }
    if (spec.kv_heads == 0) {
        spec.kv_heads = num_kv_heads;
    }
    if (spec.head_dim == 0) {
        spec.head_dim = head_dim;
    }
    if (spec.bytes_per_elem == 0) {
        spec.bytes_per_elem = bytes_per_elem;
    }
    return spec;
}

bool
Config::hasWindowLayers() const
{
    for (const LayerKvSpec &spec : layers) {
        if (spec.kind == AttentionKind::kSlidingWindow) {
            return true;
        }
    }
    return false;
}

bool
Config::uniformLayers() const
{
    for (const LayerKvSpec &spec : layers) {
        if (spec.kind != AttentionKind::kFull ||
            (spec.kv_heads != 0 && spec.kv_heads != num_kv_heads) ||
            (spec.head_dim != 0 && spec.head_dim != head_dim) ||
            (spec.bytes_per_elem != 0 &&
             spec.bytes_per_elem != bytes_per_elem)) {
            return false;
        }
    }
    return true;
}

bool
Config::uniformFootprint() const
{
    const LayerKvSpec first = layerSpec(0);
    for (int layer = 1; layer < num_layers; ++layer) {
        const LayerKvSpec spec = layerSpec(layer);
        if (spec.kv_heads != first.kv_heads ||
            spec.head_dim != first.head_dim ||
            spec.bytes_per_elem != first.bytes_per_elem) {
            return false;
        }
    }
    return true;
}

Status
Config::validate() const
{
    if (num_layers <= 0 || num_kv_heads <= 0 || head_dim <= 0) {
        return errorStatus(ErrorCode::kInvalidArgument,
                           "model dimensions must be positive");
    }
    if (bytes_per_elem != 2 && bytes_per_elem != 4) {
        return errorStatus(ErrorCode::kInvalidArgument,
                           "bytes_per_elem must be 2 or 4");
    }
    if (max_batch_size <= 0) {
        return errorStatus(ErrorCode::kInvalidArgument,
                           "max_batch_size must be positive");
    }
    if (max_context_len <= 0) {
        return errorStatus(ErrorCode::kInvalidArgument,
                           "max_context_len must be positive");
    }
    if (!use_driver_extension && page_group != PageGroup::k2MB) {
        return errorStatus(ErrorCode::kInvalidArgument,
                           "stock CUDA APIs only allocate 2MB multiples; "
                           "enable use_driver_extension for smaller "
                           "page-groups");
    }
    if (eager_groups < 0) {
        return errorStatus(ErrorCode::kInvalidArgument,
                           "eager_groups must be >= 0");
    }
    if (reclaim_low_watermark < 0.0 || reclaim_low_watermark > 1.0) {
        return errorStatus(ErrorCode::kInvalidArgument,
                           "reclaim_low_watermark must be in [0, 1]");
    }
    if (!layers.empty() &&
        static_cast<int>(layers.size()) != num_layers) {
        return errorStatus(
            ErrorCode::kInvalidArgument,
            "per-layer spec list has " +
                std::to_string(layers.size()) +
                " entries but num_layers is " +
                std::to_string(num_layers) +
                "; provide one LayerKvSpec per layer (or none for "
                "the uniform default)");
    }
    for (int layer = 0; layer < num_layers && !layers.empty();
         ++layer) {
        const LayerKvSpec spec = layerSpec(layer);
        const std::string where = "layer " + std::to_string(layer);
        if (spec.kv_heads <= 0 || spec.head_dim <= 0) {
            return errorStatus(ErrorCode::kInvalidArgument,
                               where + ": kv_heads and head_dim must "
                                       "resolve to positive values");
        }
        if (spec.bytes_per_elem != 2 && spec.bytes_per_elem != 4) {
            return errorStatus(ErrorCode::kInvalidArgument,
                               where +
                                   ": bytes_per_elem must resolve "
                                   "to 2 or 4");
        }
        if (spec.kind == AttentionKind::kSlidingWindow) {
            if (spec.window_tokens <= 0) {
                return errorStatus(
                    ErrorCode::kInvalidArgument,
                    where + ": sliding-window layers need "
                            "window_tokens > 0");
            }
            if (spec.window_tokens > max_context_len) {
                return errorStatus(
                    ErrorCode::kInvalidArgument,
                    where + ": window_tokens " +
                        std::to_string(spec.window_tokens) +
                        " exceeds max_context_len " +
                        std::to_string(max_context_len) +
                        "; a window that wide never evicts — use a "
                        "full-attention layer instead");
            }
        } else if (spec.window_tokens != 0) {
            return errorStatus(
                ErrorCode::kInvalidArgument,
                where + ": window_tokens is only meaningful for "
                        "kSlidingWindow layers (set kind, or zero "
                        "the window)");
        }
    }
    if (tensor_slicing && !uniformLayers()) {
        return errorStatus(
            ErrorCode::kInvalidArgument,
            "tensor_slicing packs every layer into one buffer and "
            "requires the uniform full-attention layer list");
    }
    if (prefix_caching && !uniformFootprint()) {
        return errorStatus(
            ErrorCode::kInvalidArgument,
            "prefix_caching hashes group-aligned token runs and "
            "requires the same per-token footprint on every layer "
            "(sliding windows are fine)");
    }
    const KvGeometry geometry(*this);
    // Slicing folds the model into one logical layer (one spec).
    const int geom_layers = tensor_slicing ? 1 : num_layers;
    for (int layer = 0; layer < geom_layers; ++layer) {
        if (geometry.tokensPerGroup(layer) < 1) {
            return errorStatus(
                ErrorCode::kInvalidArgument,
                "page-group smaller than one token's footprint; use "
                "a larger page-group or disable tensor slicing");
        }
    }
    return Status::ok();
}

} // namespace vattn::core
