#include "core/config.hh"

#include "core/kv_geometry.hh"

namespace vattn::core
{

tensor::DType
Config::dtype() const
{
    return bytes_per_elem == 4 ? tensor::DType::kF32
                               : tensor::DType::kF16;
}

Status
Config::validate() const
{
    if (num_layers <= 0 || num_kv_heads <= 0 || head_dim <= 0) {
        return errorStatus(ErrorCode::kInvalidArgument,
                           "model dimensions must be positive");
    }
    if (bytes_per_elem != 2 && bytes_per_elem != 4) {
        return errorStatus(ErrorCode::kInvalidArgument,
                           "bytes_per_elem must be 2 or 4");
    }
    if (max_batch_size <= 0) {
        return errorStatus(ErrorCode::kInvalidArgument,
                           "max_batch_size must be positive");
    }
    if (max_context_len <= 0) {
        return errorStatus(ErrorCode::kInvalidArgument,
                           "max_context_len must be positive");
    }
    if (!use_driver_extension && page_group != PageGroup::k2MB) {
        return errorStatus(ErrorCode::kInvalidArgument,
                           "stock CUDA APIs only allocate 2MB multiples; "
                           "enable use_driver_extension for smaller "
                           "page-groups");
    }
    if (eager_groups < 0) {
        return errorStatus(ErrorCode::kInvalidArgument,
                           "eager_groups must be >= 0");
    }
    if (reclaim_low_watermark < 0.0 || reclaim_low_watermark > 1.0) {
        return errorStatus(ErrorCode::kInvalidArgument,
                           "reclaim_low_watermark must be in [0, 1]");
    }
    const KvGeometry geometry(*this);
    if (geometry.tokensPerGroup() < 1) {
        return errorStatus(
            ErrorCode::kInvalidArgument,
            "page-group smaller than one token's footprint; use a "
            "larger page-group or disable tensor slicing");
    }
    return Status::ok();
}

} // namespace vattn::core
