#include "core/page_pool.hh"

#include "common/logging.hh"

namespace vattn::core
{

PagePool::PagePool(cuvmm::Driver &driver, PageGroup group,
                   u64 budget_bytes, bool precreate,
                   u64 host_budget_bytes)
    : driver_(driver), group_(group), budget_bytes_(budget_bytes),
      total_groups_(static_cast<i64>(budget_bytes / bytes(group))),
      host_budget_bytes_(host_budget_bytes),
      host_total_groups_(
          static_cast<i64>(host_budget_bytes / bytes(group)))
{
    fatal_if(total_groups_ <= 0,
             "page pool budget smaller than one page-group");
    if (precreate) {
        free_.reserve(static_cast<std::size_t>(total_groups_));
        while (created_ < total_groups_) {
            cuvmm::MemHandle handle = cuvmm::kInvalidHandle;
            const auto r = driver_.vMemCreate(&handle, group_);
            if (r != cuvmm::CuResult::kSuccess) {
                // Device memory ran out below the nominal budget
                // (some is owned by weights/activations); shrink.
                warn("page pool pre-creation stopped at ", created_,
                     " of ", total_groups_, " groups: ",
                     cuvmm::toString(r));
                total_groups_ = created_;
                break;
            }
            free_.push_back(handle);
            ++created_;
        }
    }
}

PagePool::~PagePool()
{
    for (cuvmm::MemHandle handle : free_) {
        driver_.vMemRelease(handle);
    }
    for (cuvmm::MemHandle handle : host_free_) {
        driver_.cuMemHostRelease(handle);
    }
}

Result<cuvmm::MemHandle>
PagePool::acquireHost()
{
    if (!host_free_.empty()) {
        const cuvmm::MemHandle handle = host_free_.back();
        host_free_.pop_back();
        ++host_in_use_;
        return handle;
    }
    if (host_created_ >= host_total_groups_) {
        return Result<cuvmm::MemHandle>(
            ErrorCode::kOutOfMemory,
            host_total_groups_ == 0 ? "host swap tier disabled"
                                    : "host swap budget exhausted");
    }
    cuvmm::MemHandle handle = cuvmm::kInvalidHandle;
    const auto r = driver_.cuMemHostCreate(&handle, bytes(group_));
    panic_if(r != cuvmm::CuResult::kSuccess,
             "pinned host allocation failed: ", cuvmm::toString(r));
    ++host_created_;
    ++host_in_use_;
    return handle;
}

void
PagePool::releaseHost(cuvmm::MemHandle handle)
{
    panic_if(host_in_use_ <= 0, "host release without acquire");
    --host_in_use_;
    host_free_.push_back(handle);
}

Result<cuvmm::MemHandle>
PagePool::acquire()
{
    if (!free_.empty()) {
        const cuvmm::MemHandle handle = free_.back();
        free_.pop_back();
        ++groups_in_use_;
        refs_[handle] = 1;
        return handle;
    }
    if (created_ >= total_groups_) {
        return Result<cuvmm::MemHandle>(ErrorCode::kOutOfMemory,
                                        "page pool budget exhausted");
    }
    cuvmm::MemHandle handle = cuvmm::kInvalidHandle;
    const auto r = driver_.vMemCreate(&handle, group_);
    if (r != cuvmm::CuResult::kSuccess) {
        total_groups_ = created_; // device genuinely out of memory
        return Result<cuvmm::MemHandle>(ErrorCode::kOutOfMemory,
                                        "device out of physical memory");
    }
    ++created_;
    ++groups_in_use_;
    refs_[handle] = 1;
    return handle;
}

i64
PagePool::sharedExtraRefs() const
{
    i64 extra = 0;
    for (const auto &[handle, count] : refs_) {
        (void)handle;
        if (count > 0) {
            extra += count - 1;
        }
    }
    return extra;
}

void
PagePool::auditInto(audit::AuditReport &report) const
{
    report.check(created_ <= total_groups_,
                 "page_pool: created ", created_,
                 " groups but the budget allows only ", total_groups_);
    report.check(freeGroups() + groups_in_use_ == created_,
                 "page_pool: ", freeGroups(), " free + ",
                 groups_in_use_, " in-use groups != ", created_,
                 " created (a handle leaked out of the pool)");
    i64 handed_out = 0;
    for (const auto &[handle, count] : refs_) {
        (void)handle;
        if (count > 0) {
            ++handed_out;
        }
    }
    report.check(handed_out == groups_in_use_,
                 "page_pool: ", handed_out,
                 " positive refcount entries but ", groups_in_use_,
                 " groups handed out");
    for (const auto &[handle, count] : refs_) {
        if (count < 1) {
            continue; // parked entry: handle is back in the free pool
        }
        if (driver_.handleSize(handle) != groupBytes()) {
            report.fail("page_pool: handed-out handle ", handle,
                        " is ", driver_.handleSize(handle),
                        " bytes in the driver, expected group size ",
                        groupBytes(), " (0 = released behind the pool)");
        }
    }
    for (const cuvmm::MemHandle handle : free_) {
        if (driver_.handleSize(handle) != groupBytes()) {
            report.fail("page_pool: pooled handle ", handle, " is ",
                        driver_.handleSize(handle),
                        " bytes in the driver, expected group size ",
                        groupBytes(), " (0 = released behind the pool)");
        }
        if (driver_.isMapped(handle)) {
            report.fail("page_pool: pooled handle ", handle,
                        " is still mapped in the driver");
        }
    }
    // Host tier conservation.
    report.check(host_created_ <= host_total_groups_,
                 "page_pool: created ", host_created_,
                 " host pages but the host budget allows only ",
                 host_total_groups_);
    report.check(static_cast<i64>(host_free_.size()) + host_in_use_ ==
                     host_created_,
                 "page_pool: ", host_free_.size(), " free + ",
                 host_in_use_, " in-use host pages != ", host_created_,
                 " created");
}

void
PagePool::addRef(cuvmm::MemHandle handle)
{
    auto it = refs_.find(handle);
    panic_if(it == refs_.end() || it->second < 1,
             "addRef on a handle not handed out");
    ++it->second;
}

int
PagePool::refCount(cuvmm::MemHandle handle) const
{
    auto it = refs_.find(handle);
    return it == refs_.end() ? 0 : it->second;
}

void
PagePool::dropShared(cuvmm::MemHandle handle)
{
    auto it = refs_.find(handle);
    panic_if(it == refs_.end() || it->second <= 1,
             "dropShared needs a handle with other references");
    --it->second;
}

void
PagePool::release(cuvmm::MemHandle handle)
{
    auto it = refs_.find(handle);
    panic_if(groups_in_use_ <= 0 || it == refs_.end() ||
                 it->second < 1,
             "pool release without acquire");
    panic_if(it->second != 1,
             "pool release of a handle still referenced elsewhere");
    // Park the entry at zero instead of erasing it: the handle cycles
    // back through acquire() and reusing the node keeps the
    // release/acquire steady state off the heap.
    it->second = 0;
    --groups_in_use_;
    free_.push_back(handle);
}

void
PagePool::releaseDestroyed(cuvmm::MemHandle handle)
{
    auto it = refs_.find(handle);
    panic_if(groups_in_use_ <= 0 || it == refs_.end() ||
                 it->second < 1,
             "pool release without acquire");
    panic_if(it->second != 1,
             "destroying a handle still referenced elsewhere");
    refs_.erase(it); // gone for good: never returns through acquire()
    --groups_in_use_;
    --created_;
}

} // namespace vattn::core
