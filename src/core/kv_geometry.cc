#include "core/kv_geometry.hh"

namespace vattn::core
{

KvGeometry::KvGeometry(const Config &config)
    : config_(config)
{
}

int
KvGeometry::numBuffers() const
{
    return config_.tensor_slicing ? 2 : 2 * config_.num_layers;
}

u64
KvGeometry::tokenBytesPerBuffer() const
{
    u64 per_layer = static_cast<u64>(config_.num_kv_heads) *
                    static_cast<u64>(config_.head_dim) *
                    static_cast<u64>(config_.bytes_per_elem);
    return config_.tensor_slicing
               ? per_layer * static_cast<u64>(config_.num_layers)
               : per_layer;
}

u64
KvGeometry::tokenBytesTotal() const
{
    return 2 * static_cast<u64>(config_.num_layers) *
           static_cast<u64>(config_.num_kv_heads) *
           static_cast<u64>(config_.head_dim) *
           static_cast<u64>(config_.bytes_per_elem);
}

u64
KvGeometry::perRequestBytes() const
{
    return static_cast<u64>(config_.max_context_len) *
           tokenBytesPerBuffer();
}

u64
KvGeometry::perRequestBytesAligned() const
{
    return roundUp(perRequestBytes(), groupBytes());
}

u64
KvGeometry::bufferBytes() const
{
    return static_cast<u64>(config_.max_batch_size) *
           perRequestBytesAligned();
}

u64
KvGeometry::totalVirtualBytes() const
{
    return bufferBytes() * static_cast<u64>(numBuffers());
}

i64
KvGeometry::tokensPerGroup() const
{
    return static_cast<i64>(groupBytes() / tokenBytesPerBuffer());
}

i64
KvGeometry::groupsForTokens(i64 tokens) const
{
    if (tokens <= 0) {
        return 0;
    }
    const u64 bytes_needed =
        static_cast<u64>(tokens) * tokenBytesPerBuffer();
    return static_cast<i64>(ceilDiv(bytes_needed, groupBytes()));
}

i64
KvGeometry::maxGroupsPerRequest() const
{
    return groupsForTokens(config_.max_context_len);
}

u64
KvGeometry::physBytesForTokens(i64 tokens) const
{
    return static_cast<u64>(groupsForTokens(tokens)) * groupBytes() *
           static_cast<u64>(numBuffers());
}

u64
KvGeometry::wasteBytesForTokens(i64 tokens) const
{
    if (tokens <= 0) {
        return 0;
    }
    return physBytesForTokens(tokens) -
           static_cast<u64>(tokens) * tokenBytesTotal();
}

} // namespace vattn::core
