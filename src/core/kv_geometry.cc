#include "core/kv_geometry.hh"

#include "common/logging.hh"

namespace vattn::core
{

KvGeometry::KvGeometry(const Config &config)
    : config_(config)
{
    const int layers = config_.tensor_slicing ? 1 : config_.num_layers;
    specs_.reserve(static_cast<std::size_t>(layers));
    for (int layer = 0; layer < layers; ++layer) {
        specs_.push_back(config_.layerSpec(layer));
    }
    const LayerKvSpec &first = specs_.front();
    for (const LayerKvSpec &spec : specs_) {
        if (spec.kind == AttentionKind::kSlidingWindow) {
            has_windows_ = true;
        }
        if (spec.kv_heads != first.kv_heads ||
            spec.head_dim != first.head_dim ||
            spec.bytes_per_elem != first.bytes_per_elem) {
            uniform_footprint_ = false;
        }
    }
}

int
KvGeometry::numBuffers() const
{
    return config_.tensor_slicing ? 2 : 2 * config_.num_layers;
}

int
KvGeometry::layerOfBuffer(int buffer) const
{
    if (config_.tensor_slicing) {
        return 0;
    }
    return buffer < config_.num_layers ? buffer
                                       : buffer - config_.num_layers;
}

bool
KvGeometry::hasWindows() const
{
    return has_windows_;
}

bool
KvGeometry::uniformFootprint() const
{
    return uniform_footprint_;
}

i64
KvGeometry::windowTokens(int layer) const
{
    const LayerKvSpec &spec =
        specs_[static_cast<std::size_t>(layer)];
    return spec.kind == AttentionKind::kSlidingWindow
               ? spec.window_tokens
               : 0;
}

u64
KvGeometry::tokenBytesPerBuffer(int layer) const
{
    const LayerKvSpec &spec =
        specs_[static_cast<std::size_t>(layer)];
    u64 per_layer = static_cast<u64>(spec.kv_heads) *
                    static_cast<u64>(spec.head_dim) *
                    static_cast<u64>(spec.bytes_per_elem);
    return config_.tensor_slicing
               ? per_layer * static_cast<u64>(config_.num_layers)
               : per_layer;
}

i64
KvGeometry::tokensPerGroup(int layer) const
{
    return static_cast<i64>(groupBytes() / tokenBytesPerBuffer(layer));
}

i64
KvGeometry::groupsForTokens(int layer, i64 tokens) const
{
    if (tokens <= 0) {
        return 0;
    }
    const u64 bytes_needed =
        static_cast<u64>(tokens) * tokenBytesPerBuffer(layer);
    return static_cast<i64>(ceilDiv(bytes_needed, groupBytes()));
}

i64
KvGeometry::deadLeadGroups(int layer, i64 tokens) const
{
    const i64 window = windowTokens(layer);
    if (window <= 0 || tokens <= window) {
        return 0;
    }
    // Tokens [0, tokens - window) are behind the window; only groups
    // entirely inside that range are dead (floor keeps the straddled
    // group mapped).
    return (tokens - window) / tokensPerGroup(layer);
}

i64
KvGeometry::liveGroupsForTokens(int layer, i64 tokens) const
{
    return groupsForTokens(layer, tokens) -
           deadLeadGroups(layer, tokens);
}

u64
KvGeometry::perRequestBytes(int layer) const
{
    return static_cast<u64>(config_.max_context_len) *
           tokenBytesPerBuffer(layer);
}

u64
KvGeometry::perRequestBytesAligned(int layer) const
{
    return roundUp(perRequestBytes(layer), groupBytes());
}

u64
KvGeometry::bufferBytesFor(int buffer) const
{
    return static_cast<u64>(config_.max_batch_size) *
           perRequestBytesAligned(layerOfBuffer(buffer));
}

i64
KvGeometry::maxGroupsPerRequest(int layer) const
{
    return groupsForTokens(layer, config_.max_context_len);
}

i64
KvGeometry::handlesForTokens(i64 tokens) const
{
    i64 handles = 0;
    for (int buffer = 0; buffer < numBuffers(); ++buffer) {
        handles += liveGroupsForTokens(layerOfBuffer(buffer), tokens);
    }
    return handles;
}

i64
KvGeometry::frontierHandlesForTokens(i64 tokens) const
{
    i64 handles = 0;
    for (int buffer = 0; buffer < numBuffers(); ++buffer) {
        handles += groupsForTokens(layerOfBuffer(buffer), tokens);
    }
    return handles;
}

void
KvGeometry::requireUniformFootprint(const char *accessor) const
{
    panic_if(!uniform_footprint_,
             "KvGeometry::", accessor,
             " is only meaningful with a layer-uniform per-token "
             "footprint; use the (layer) overload");
}

u64
KvGeometry::tokenBytesPerBuffer() const
{
    requireUniformFootprint("tokenBytesPerBuffer");
    return tokenBytesPerBuffer(0);
}

u64
KvGeometry::tokenBytesTotal() const
{
    requireUniformFootprint("tokenBytesTotal");
    const LayerKvSpec &first = specs_.front();
    return 2 * static_cast<u64>(config_.num_layers) *
           static_cast<u64>(first.kv_heads) *
           static_cast<u64>(first.head_dim) *
           static_cast<u64>(first.bytes_per_elem);
}

u64
KvGeometry::perRequestBytes() const
{
    requireUniformFootprint("perRequestBytes");
    return perRequestBytes(0);
}

u64
KvGeometry::perRequestBytesAligned() const
{
    requireUniformFootprint("perRequestBytesAligned");
    return perRequestBytesAligned(0);
}

u64
KvGeometry::bufferBytes() const
{
    requireUniformFootprint("bufferBytes");
    return static_cast<u64>(config_.max_batch_size) *
           perRequestBytesAligned(0);
}

u64
KvGeometry::totalVirtualBytes() const
{
    u64 total = 0;
    for (int buffer = 0; buffer < numBuffers(); ++buffer) {
        total += bufferBytesFor(buffer);
    }
    return total;
}

i64
KvGeometry::tokensPerGroup() const
{
    requireUniformFootprint("tokensPerGroup");
    return tokensPerGroup(0);
}

i64
KvGeometry::groupsForTokens(i64 tokens) const
{
    requireUniformFootprint("groupsForTokens");
    return groupsForTokens(0, tokens);
}

i64
KvGeometry::maxGroupsPerRequest() const
{
    requireUniformFootprint("maxGroupsPerRequest");
    return groupsForTokens(0, config_.max_context_len);
}

u64
KvGeometry::physBytesForTokens(i64 tokens) const
{
    u64 total = 0;
    for (int buffer = 0; buffer < numBuffers(); ++buffer) {
        total += static_cast<u64>(liveGroupsForTokens(
                     layerOfBuffer(buffer), tokens)) *
                 groupBytes();
    }
    return total;
}

u64
KvGeometry::wasteBytesForTokens(i64 tokens) const
{
    if (tokens <= 0) {
        return 0;
    }
    // Live payload: every buffer holds min(tokens, window) useful
    // tokens plus whatever dead prefix the straddled group retains —
    // only the in-window tokens count as useful here.
    u64 useful = 0;
    for (int buffer = 0; buffer < numBuffers(); ++buffer) {
        const int layer = layerOfBuffer(buffer);
        const i64 window = windowTokens(layer);
        const i64 live =
            window > 0 && tokens > window ? window : tokens;
        useful += static_cast<u64>(live) * tokenBytesPerBuffer(layer);
    }
    return physBytesForTokens(tokens) - useful;
}

} // namespace vattn::core
