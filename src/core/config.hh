/**
 * @file
 * vAttention configuration: the init() parameters of Table 4 (N, B, L,
 * H, D, P and the preferred page-group size) plus switches for each of
 * the paper's optimizations so the ablations of §7.6 can toggle them.
 */

#ifndef VATTN_CORE_CONFIG_HH
#define VATTN_CORE_CONFIG_HH

#include "common/status.hh"
#include "common/types.hh"
#include "tensor/dtype.hh"

namespace vattn::core
{

/** Serving-worker configuration for the vAttention runtime. */
struct Config
{
    // ---- Model/worker shape (Table 2 notation) ---------------------
    int num_layers = 0;        ///< N: layers hosted by this worker
    int num_kv_heads = 0;      ///< H: KV heads on this worker
    int head_dim = 0;          ///< D
    int bytes_per_elem = 2;    ///< P (2 = FP16/BF16)
    int max_batch_size = 0;    ///< B
    i64 max_context_len = 0;   ///< L

    // ---- Allocation policy ------------------------------------------
    /** Physical allocation granularity (§6.2). */
    PageGroup page_group = PageGroup::k2MB;
    /** Use the driver extension (vMem*); required for sub-2MB groups.
     *  When false, the stock cuMem* path is used (2MB only). */
    bool use_driver_extension = true;
    /** §8.2 layout: one [B, L, N, H, D] tensor per K/V instead of 2N
     *  per-layer tensors; shrinks the per-group token footprint N-fold. */
    bool tensor_slicing = false;

    // ---- §6.1 optimizations ------------------------------------------
    /** Keep completed requests' page-groups mapped for reuse. */
    bool deferred_reclamation = true;
    /** Keep one free reqId pre-mapped with a few groups. */
    bool eager_allocation = true;
    /** Overlap allocation with the previous iteration's compute. */
    bool overlap_allocation = true;
    /** Page-groups eagerly mapped per tensor on the warm slot. */
    i64 eager_groups = 4;
    /**
     * §8.1 KV de-duplication: keep per-slot prefix hash chains and
     * serve matching prompts by aliasing the prefix's physical
     * page-groups into the new request's virtual range (or by reusing
     * a matching cached slot in place). Also biases allocReqId toward
     * free slots so cached prefix entries survive longer.
     */
    bool prefix_caching = false;

    // ---- Capacity -----------------------------------------------------
    /** Physical bytes this worker may commit for KV (0 = all device
     *  memory still free when the runtime initializes). */
    u64 phys_budget_bytes = 0;
    /**
     * Pinned host bytes this worker may commit to the KV swap tier
     * (swapOutReq/swapInReq). 0 disables swapping: the framework must
     * preempt with recomputation, the paper's §5.3.3 baseline.
     */
    u64 host_swap_bytes = 0;
    /** Background reclamation refills the pool to this fraction of the
     *  budget (§6.1.2: "e.g. less than 10% of GPU memory"). */
    double reclaim_low_watermark = 0.10;

    /** Storage dtype implied by bytes_per_elem. */
    tensor::DType dtype() const;

    /** Validate user-provided parameters. */
    Status validate() const;
};

} // namespace vattn::core

#endif // VATTN_CORE_CONFIG_HH
