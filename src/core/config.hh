/**
 * @file
 * vAttention configuration: the init() parameters of Table 4 (N, B, L,
 * H, D, P and the preferred page-group size) plus switches for each of
 * the paper's optimizations so the ablations of §7.6 can toggle them.
 */

#ifndef VATTN_CORE_CONFIG_HH
#define VATTN_CORE_CONFIG_HH

#include <vector>

#include "common/status.hh"
#include "common/types.hh"
#include "tensor/dtype.hh"

namespace vattn::core
{

/** Attention pattern of one transformer layer (Jenga-style
 *  heterogeneity: full-attention and sliding-window layers mix within
 *  one model). */
enum class AttentionKind : u8
{
    /** Causal attention over the entire context; KV of every token is
     *  kept for the request's whole lifetime. */
    kFull,
    /** Attention over the last window_tokens tokens only; KV behind
     *  the window is dead and its page-groups may be unmapped. */
    kSlidingWindow,
};

/**
 * Per-layer KV geometry. A zero in kv_heads/head_dim/bytes_per_elem
 * means "inherit the corresponding global Config field", so a spec
 * list that only sets attention kinds stays terse.
 */
struct LayerKvSpec
{
    AttentionKind kind = AttentionKind::kFull;
    /** Sliding-window width; must be positive for kSlidingWindow
     *  layers and zero for kFull layers. */
    i64 window_tokens = 0;
    int kv_heads = 0;       ///< 0 = Config::num_kv_heads
    int head_dim = 0;       ///< 0 = Config::head_dim
    int bytes_per_elem = 0; ///< 0 = Config::bytes_per_elem
};

/** Serving-worker configuration for the vAttention runtime. */
struct Config
{
    // ---- Model/worker shape (Table 2 notation) ---------------------
    int num_layers = 0;        ///< N: layers hosted by this worker
    int num_kv_heads = 0;      ///< H: KV heads on this worker
    int head_dim = 0;          ///< D
    int bytes_per_elem = 2;    ///< P (2 = FP16/BF16)
    int max_batch_size = 0;    ///< B
    i64 max_context_len = 0;   ///< L

    /**
     * Per-layer KV geometry. Empty (the default) means num_layers
     * identical full-attention layers built from the scalar fields
     * above — the historical uniform model, bit-for-bit. A non-empty
     * list must have exactly num_layers entries.
     */
    std::vector<LayerKvSpec> layers;

    // ---- Allocation policy ------------------------------------------
    /** Physical allocation granularity (§6.2). */
    PageGroup page_group = PageGroup::k2MB;
    /** Use the driver extension (vMem*); required for sub-2MB groups.
     *  When false, the stock cuMem* path is used (2MB only). */
    bool use_driver_extension = true;
    /** §8.2 layout: one [B, L, N, H, D] tensor per K/V instead of 2N
     *  per-layer tensors; shrinks the per-group token footprint N-fold. */
    bool tensor_slicing = false;

    // ---- §6.1 optimizations ------------------------------------------
    /** Keep completed requests' page-groups mapped for reuse. */
    bool deferred_reclamation = true;
    /** Keep one free reqId pre-mapped with a few groups. */
    bool eager_allocation = true;
    /** Overlap allocation with the previous iteration's compute. */
    bool overlap_allocation = true;
    /** Page-groups eagerly mapped per tensor on the warm slot. */
    i64 eager_groups = 4;
    /**
     * §8.1 KV de-duplication: keep per-slot prefix hash chains and
     * serve matching prompts by aliasing the prefix's physical
     * page-groups into the new request's virtual range (or by reusing
     * a matching cached slot in place). Also biases allocReqId toward
     * free slots so cached prefix entries survive longer.
     */
    bool prefix_caching = false;

    // ---- Capacity -----------------------------------------------------
    /** Physical bytes this worker may commit for KV (0 = all device
     *  memory still free when the runtime initializes). */
    u64 phys_budget_bytes = 0;
    /**
     * Pinned host bytes this worker may commit to the KV swap tier
     * (swapOutReq/swapInReq). 0 disables swapping: the framework must
     * preempt with recomputation, the paper's §5.3.3 baseline.
     */
    u64 host_swap_bytes = 0;
    /** Background reclamation refills the pool to this fraction of the
     *  budget (§6.1.2: "e.g. less than 10% of GPU memory"). */
    double reclaim_low_watermark = 0.10;

    /** Storage dtype implied by bytes_per_elem. */
    tensor::DType dtype() const;

    /** The resolved spec of one layer: inherited fields filled in from
     *  the global scalars, uniform default when layers is empty. */
    LayerKvSpec layerSpec(int layer) const;

    /** Any sliding-window layer present? */
    bool hasWindowLayers() const;

    /** Every layer full-attention with the global shape (the
     *  historical uniform model)? */
    bool uniformLayers() const;

    /** Same per-token KV footprint (kv_heads * head_dim *
     *  bytes_per_elem) on every layer? Sliding windows allowed. */
    bool uniformFootprint() const;

    /** Validate user-provided parameters. */
    Status validate() const;
};

} // namespace vattn::core

#endif // VATTN_CORE_CONFIG_HH
