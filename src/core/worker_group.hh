/**
 * @file
 * Tensor-parallel worker group (§5.3): one vAttention instance per TP
 * worker, each with its own (simulated) GPU and driver, driven in
 * lockstep. The paper discusses a single worker "for simplicity; all
 * workers behave the same" — this class makes that property explicit
 * and checkable: because every control input (reqIds, sequence
 * lengths, windows) is identical and the runtime is deterministic,
 * workers must remain in identical states; the group verifies it.
 *
 * Workers allocate physical memory in parallel, so the group's
 * aggregate allocation bandwidth scales with TP (Table 9) while the
 * critical-path latency per iteration stays that of one worker.
 */

#ifndef VATTN_CORE_WORKER_GROUP_HH
#define VATTN_CORE_WORKER_GROUP_HH

#include <memory>
#include <vector>

#include "core/vattention.hh"
#include "cuvmm/driver.hh"
#include "gpu/device.hh"

namespace vattn::core
{

/** Lockstep group of per-worker vAttention runtimes. */
class WorkerGroup
{
  public:
    /**
     * @param num_workers tensor-parallel degree
     * @param config per-worker configuration (H must already be the
     *        per-worker head count; §5.1.3)
     * @param device_mem_bytes memory of each worker's GPU
     */
    WorkerGroup(int num_workers, const Config &config,
                u64 device_mem_bytes);

    int numWorkers() const { return static_cast<int>(workers_.size()); }
    VAttention &worker(int index);
    const VAttention &worker(int index) const;
    cuvmm::Driver &driver(int index);

    /** Lease the same reqId on every worker. */
    Result<int> allocReqId();

    /**
     * Lease the same reqId on every worker, adopting cached prefix
     * page-groups: each worker aliases its own shard of the cached
     * prefix, so the workers must agree on the slot AND on how many
     * tokens the cache served.
     */
    Result<int> allocReqIdWithPrefix(const PrefixQuery &query,
                                     i64 max_cached,
                                     i64 *cached_tokens);

    /** Register the slot's computed prefix on every worker. */
    void registerPrefix(int req_id, const PrefixQuery &query,
                        i64 tokens);

    /** Free the reqId on every worker. */
    Status freeReqId(int req_id);

    // ---- Symmetric queries (answered by worker 0) ---------------------
    // Lockstep makes every worker's answer identical by construction;
    // auditInto verifies that construction, so reads stay O(1) in TP.

    bool canAllocate(i64 prompt_tokens) const;
    PrefixHit matchPrefix(const PrefixQuery &query) const;
    TimeNs lastPrefixAllocNs() const;
    bool canSwapOut(int req_id) const;
    bool canSwapIn(int req_id) const;
    u64 hostSwapBudgetBytes() const;
    const KvGeometry &geometry() const;
    const RuntimeStats &stats() const;
    /** Physical KV bytes mapped on ONE worker (each worker holds a
     *  1/tp shard; see physBytesMappedTotal for the group sum). */
    u64 physBytesMappedPerWorker() const;
    u64 budgetBytesPerWorker() const;
    i64 mappedHandles(int req_id) const;

    /**
     * Step every worker with the same lengths. The returned stats are
     * worker 0's; critical_ns is the per-iteration latency (workers
     * run concurrently, so the group does not serialize).
     */
    StepStats step(const std::vector<i64> &seq_lens);

    /** Run every worker's background window. */
    void computePhase(TimeNs window_ns);

    /**
     * Swap the reqId's KV to host on every worker (each worker stashes
     * its own shard; copies run concurrently, so the group's swap
     * latency is one worker's). The workers must agree on the outcome.
     */
    SwapStats swapOutReq(int req_id);

    /** Swap the reqId back in on every worker, in lockstep. */
    SwapStats swapInReq(int req_id);

    /**
     * Detach the reqId's host stash on every worker (cross-replica
     * migration). Lockstep makes every worker's image identical except
     * for the opaque host-page identities, so worker 0's image
     * describes the whole group: an adopting group rebuilds one shard
     * per worker from it.
     */
    Result<VAttention::HostKvImage> exportSwapped(int req_id);

    /** Could every worker import an image of @p handles page-groups? */
    bool canImportSwapped(i64 handles) const;

    /** Adopt the image into the same fresh reqId on every worker. */
    Result<int> importSwapped(const VAttention::HostKvImage &image);

    /** Physical KV bytes mapped across ALL workers. */
    u64 physBytesMappedTotal() const;

    /**
     * Are all workers in identical states (slot states, group counts,
     * pool levels)? True by construction; a false return indicates a
     * determinism bug.
     */
    bool inLockstep() const;

    bool checkInvariants() const;

    /**
     * Whole-stack audit of every worker (driver + pool + allocator +
     * runtime) plus the cross-worker state-equality check: lockstep
     * workers fed identical control inputs must hold identical slot
     * states, group counts and pool levels — a divergence is reported
     * with the worker index and the quantity that drifted, not
     * panicked, so audit builds localize the corruption.
     */
    void auditInto(audit::AuditReport &report) const;

  private:
    struct Worker
    {
        std::unique_ptr<gpu::GpuDevice> device;
        std::unique_ptr<cuvmm::Driver> driver;
        std::unique_ptr<VAttention> runtime;
    };

    std::vector<Worker> workers_;
};

} // namespace vattn::core

#endif // VATTN_CORE_WORKER_GROUP_HH
