/**
 * @file
 * Deterministic model of the background allocation thread (§6.1.1).
 * The real system spawns a thread from the step API and lets it map
 * page-groups while the GPU executes the current iteration; here the
 * engine grants the worker a time window equal to the iteration's
 * compute time, and the worker performs driver operations until the
 * window is spent. Work that does not fit spills back into the next
 * step()'s critical path — which is exactly the latency-spike behaviour
 * Figure 12 measures when overlapping is disabled (window = 0).
 */

#ifndef VATTN_CORE_BACKGROUND_HH
#define VATTN_CORE_BACKGROUND_HH

#include "common/types.hh"

namespace vattn::core
{

/** Time-budgeted background work tracker. */
class BackgroundWorker
{
  public:
    /** Open a window of @p budget_ns of hidden (overlapped) time. */
    void beginWindow(TimeNs budget_ns);

    /**
     * Try to account @p cost_ns of driver work inside the current
     * window. Returns true (and consumes budget) if it fits; false if
     * the window is exhausted.
     */
    bool tryConsume(TimeNs cost_ns);

    TimeNs windowRemaining() const { return remaining_ns_; }

    // Lifetime statistics.
    u64 numWindows() const { return num_windows_; }
    TimeNs totalHiddenNs() const { return total_hidden_ns_; }
    u64 itemsCompleted() const { return items_completed_; }

  private:
    TimeNs remaining_ns_ = 0;
    u64 num_windows_ = 0;
    TimeNs total_hidden_ns_ = 0;
    u64 items_completed_ = 0;
};

} // namespace vattn::core

#endif // VATTN_CORE_BACKGROUND_HH
