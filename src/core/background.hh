/**
 * @file
 * Deterministic model of the background allocation thread (§6.1.1).
 * The real system spawns a thread from the step API and lets it map
 * page-groups while the GPU executes the current iteration; here the
 * engine grants the worker a time window equal to the iteration's
 * compute time, and the worker performs driver operations until the
 * window is spent. Work that does not fit spills back into the next
 * step()'s critical path — which is exactly the latency-spike behaviour
 * Figure 12 measures when overlapping is disabled (window = 0).
 *
 * The class it models is inherently cross-thread (the allocation
 * thread races the step API for the window budget), so the tracker is
 * mutex-guarded and thread-safety annotated even though today's
 * engine drives it from one simulation thread: the async front-end on
 * the roadmap will call beginWindow/tryConsume from different threads.
 */

#ifndef VATTN_CORE_BACKGROUND_HH
#define VATTN_CORE_BACKGROUND_HH

#include <mutex>

#include "common/thread_annotations.hh"
#include "common/types.hh"

namespace vattn::core
{

/** Time-budgeted background work tracker. */
class BackgroundWorker
{
  public:
    /** Open a window of @p budget_ns of hidden (overlapped) time. */
    void beginWindow(TimeNs budget_ns) EXCLUDES(mutex_);

    /**
     * Try to account @p cost_ns of driver work inside the current
     * window. Returns true (and consumes budget) if it fits; false if
     * the window is exhausted.
     */
    bool tryConsume(TimeNs cost_ns) EXCLUDES(mutex_);

    TimeNs windowRemaining() const EXCLUDES(mutex_);

    // Lifetime statistics.
    u64 numWindows() const EXCLUDES(mutex_);
    TimeNs totalHiddenNs() const EXCLUDES(mutex_);
    u64 itemsCompleted() const EXCLUDES(mutex_);

  private:
    mutable std::mutex mutex_;
    TimeNs remaining_ns_ GUARDED_BY(mutex_) = 0;
    u64 num_windows_ GUARDED_BY(mutex_) = 0;
    TimeNs total_hidden_ns_ GUARDED_BY(mutex_) = 0;
    u64 items_completed_ GUARDED_BY(mutex_) = 0;
};

} // namespace vattn::core

#endif // VATTN_CORE_BACKGROUND_HH
