/**
 * @file
 * The vAttention runtime — the paper's primary contribution. Exposes
 * the Table-4 API to a serving framework:
 *
 *   init (constructor)  : configure with N, B, L, H, D, P and a
 *                         page-group size; reserves 2N virtual tensors
 *                         and pre-creates physical page-groups.
 *   allocReqId          : lease an unused reqId (prefers slots whose
 *                         mappings were retained by deferred
 *                         reclamation, §6.1.2).
 *   freeReqId           : return a reqId; mappings are kept (Cached)
 *                         unless deferred reclamation is disabled.
 *   step                : given the per-reqId sequence lengths, ensure
 *                         every active request's KV sub-tensors are
 *                         physically backed (Algorithm 1, line 13).
 *
 * plus the engine-facing computePhase() hook that models the
 * background allocation thread (§6.1.1): decode prefetch, eager
 * allocation and watermark-driven reclamation all run inside the
 * previous iteration's compute window.
 */

#ifndef VATTN_CORE_VATTENTION_HH
#define VATTN_CORE_VATTENTION_HH

#include <vector>

#include "attn/kv_view.hh"
#include "core/background.hh"
#include "core/config.hh"
#include "core/kv_allocator.hh"
#include "core/page_pool.hh"
#include "core/req_slots.hh"
#include "cuvmm/driver.hh"

namespace vattn::core
{

/** Outcome of one step() call. */
struct StepStats
{
    Status status;          ///< OK, or kOutOfMemory -> preempt & retry
    i64 handles_mapped = 0; ///< page-groups mapped synchronously
    i64 handles_stolen = 0; ///< groups reclaimed from cached slots
    TimeNs critical_ns = 0; ///< driver latency on the critical path
};

/** Lifetime counters for the ablation studies. */
struct RuntimeStats
{
    u64 steps = 0;
    i64 sync_handles = 0;        ///< mapped inside step()
    i64 background_handles = 0;  ///< mapped inside computePhase()
    i64 reclaimed_handles = 0;   ///< unmapped from cached slots
    i64 reused_cached_slots = 0; ///< allocReqId hits on cached slots
    TimeNs critical_ns = 0;
    TimeNs background_ns = 0;
    TimeNs init_ns = 0;
};

/** The per-worker vAttention memory manager. */
class VAttention
{
  public:
    VAttention(cuvmm::Driver &driver, const Config &config);

    const Config &config() const { return config_; }
    const KvGeometry &geometry() const { return allocator_.geometry(); }

    /** The KV cache tensors handed to the model (Table 4 init). */
    const std::vector<LayerKv> &kvCache() const
    {
        return allocator_.layerTensors();
    }

    /** One request's [L, H, D] views for attention kernels. */
    tensor::VirtualTensor kCache(int layer, int req_id) const;
    tensor::VirtualTensor vCache(int layer, int req_id) const;
    /** Convenience KV view combining both. */
    attn::TensorKvView requestView(int layer, int req_id,
                                   bool touch_tlb = false) const;

    /** Lease a reqId. Fails when all B slots are active. */
    Result<int> allocReqId();

    /** Return a reqId (request completed or preempted). */
    Status freeReqId(int req_id);

    /**
     * Ensure physical backing for the given context lengths
     * (seq_lens[reqId], 0 for inactive slots; size must be B).
     * Returns kOutOfMemory when demand cannot be met even after
     * reclaiming every cached group — the framework should preempt a
     * request and call step again (§5.3.3).
     */
    StepStats step(const std::vector<i64> &seq_lens);

    /**
     * Model the background thread running during an iteration whose
     * compute lasts @p window_ns: prefetch next-iteration decode
     * groups, keep the eager slot warm, refill the pool from cached
     * slots when it drops below the low watermark.
     */
    void computePhase(TimeNs window_ns);

    // ---- Capacity / admission ---------------------------------------

    /** Could a new request with this prompt be admitted right now? */
    bool canAllocate(i64 prompt_tokens) const;

    /** Physical bytes currently mapped into KV tensors. */
    u64 physBytesMapped() const { return allocator_.physBytesMapped(); }
    /** Groups held by completed requests awaiting reuse. */
    i64 cachedHandles() const;
    i64 poolFreeHandles() const { return pool_.freeGroups(); }
    /** Pooled + still-creatable handles (the small-page reclaim path
     *  destroys handles rather than pooling them, §6.2). */
    i64 poolAvailableHandles() const { return pool_.availableGroups(); }
    u64 budgetBytes() const { return pool_.budgetBytes(); }

    const RuntimeStats &stats() const { return stats_; }
    const ReqSlots &slots() const { return slots_; }
    i64 groupsMapped(int req_id) const
    {
        return allocator_.groupsMapped(req_id);
    }

    bool checkInvariants() const;

  private:
    /** Grow @p slot to @p target groups, stealing cached groups on
     *  pool exhaustion. */
    Status ensureGroups(int slot, i64 target, i64 *stolen);

    /** Reclaim one group from the oldest cached slot. */
    bool stealOneCachedGroup();

    /** Estimated driver cost of mapping one group on every buffer. */
    TimeNs mapAllBuffersCost() const;

    cuvmm::Driver &driver_;
    Config config_;
    PagePool pool_;
    KvAllocator allocator_;
    ReqSlots slots_;
    BackgroundWorker background_;
    std::vector<i64> last_seq_lens_;
    RuntimeStats stats_;
};

} // namespace vattn::core

#endif // VATTN_CORE_VATTENTION_HH
