/**
 * @file
 * The vAttention runtime — the paper's primary contribution. Exposes
 * the Table-4 API to a serving framework:
 *
 *   init (constructor)  : configure with N, B, L, H, D, P and a
 *                         page-group size; reserves 2N virtual tensors
 *                         and pre-creates physical page-groups.
 *   allocReqId          : lease an unused reqId (prefers slots whose
 *                         mappings were retained by deferred
 *                         reclamation, §6.1.2).
 *   freeReqId           : return a reqId; mappings are kept (Cached)
 *                         unless deferred reclamation is disabled.
 *   step                : given the per-reqId sequence lengths, ensure
 *                         every active request's KV sub-tensors are
 *                         physically backed (Algorithm 1, line 13).
 *
 * plus the engine-facing computePhase() hook that models the
 * background allocation thread (§6.1.1): decode prefetch, eager
 * allocation and watermark-driven reclamation all run inside the
 * previous iteration's compute window.
 */

#ifndef VATTN_CORE_VATTENTION_HH
#define VATTN_CORE_VATTENTION_HH

#include <functional>
#include <vector>

#include "attn/kv_view.hh"
#include "common/audit.hh"
#include "core/background.hh"
#include "core/config.hh"
#include "core/kv_allocator.hh"
#include "core/page_pool.hh"
#include "core/req_slots.hh"
#include "cuvmm/driver.hh"

namespace vattn::core
{

/** Outcome of one step() call. */
struct StepStats
{
    Status status;          ///< OK, or kOutOfMemory -> preempt & retry
    i64 handles_mapped = 0; ///< page-groups mapped synchronously
    i64 handles_stolen = 0; ///< groups reclaimed from cached slots
    TimeNs critical_ns = 0; ///< driver latency on the critical path
};

/** Outcome of one swapOutReq / swapInReq call. */
struct SwapStats
{
    Status status;          ///< OK, or why the swap did not happen
    i64 handles = 0;        ///< page-group copies performed (all buffers)
    u64 bytes = 0;          ///< KV bytes moved over PCIe
    TimeNs critical_ns = 0; ///< copy + map/unmap latency (synchronous)
};

/** Lifetime counters for the ablation studies. */
struct RuntimeStats
{
    u64 steps = 0;
    i64 sync_handles = 0;        ///< mapped inside step()
    i64 background_handles = 0;  ///< mapped inside computePhase()
    i64 reclaimed_handles = 0;   ///< unmapped from cached slots
    i64 reused_cached_slots = 0; ///< allocReqId hits on cached slots
    TimeNs critical_ns = 0;
    TimeNs background_ns = 0;
    TimeNs init_ns = 0;

    // ---- Host swap tier --------------------------------------------
    i64 swap_out_reqs = 0;      ///< requests swapped to host
    i64 swap_in_reqs = 0;       ///< requests swapped back in
    u64 swap_out_bytes = 0;     ///< KV bytes copied DtoH
    u64 swap_in_bytes = 0;      ///< KV bytes copied HtoD
    TimeNs swap_ns = 0;         ///< critical-path swap latency

    // ---- §8.1 prefix caching ---------------------------------------
    i64 prefix_hits = 0;           ///< allocations that matched a prefix
    i64 prefix_inplace_hits = 0;   ///< hits served by reusing the slot
    i64 prefix_aliased_handles = 0;///< mappings created by aliasing
    i64 prefix_copied_handles = 0; ///< partial tail groups copied
    i64 prefix_cached_tokens = 0;  ///< prompt tokens served from cache
};

/**
 * A prompt prefix described at page-group granularity for the §8.1
 * prefix store: chained hashes of the full groups plus a callback that
 * hashes a partial trailing chunk on demand (the store decides how
 * many tail tokens to compare against).
 */
struct PrefixQuery
{
    /** Chained hash per full page-group of prompt tokens. */
    std::vector<u64> group_hashes;
    /** Total prompt tokens behind the query. */
    i64 total_tokens = 0;
    /**
     * Chained hash of tokens [groups * tokensPerGroup, ... + n),
     * chained onto @p prev. Must tolerate any n that keeps the range
     * inside total_tokens.
     */
    std::function<u64(u64 prev, i64 groups, i64 n)> tail_hash;

    bool empty() const { return total_tokens <= 0; }
};

/** Longest stored prefix matching a query. */
struct PrefixHit
{
    int slot = -1;       ///< slot holding the prefix (-1 = miss)
    i64 groups = 0;      ///< aligned page-groups matched
    i64 tokens = 0;      ///< tokens matched (>= groups * tokensPerGroup
                         ///  when the partial tail matched too)
};

/** The per-worker vAttention memory manager. */
class VAttention
{
  public:
    VAttention(cuvmm::Driver &driver, const Config &config);

    const Config &config() const { return config_; }
    const KvGeometry &geometry() const { return allocator_.geometry(); }

    /** The KV cache tensors handed to the model (Table 4 init). */
    const std::vector<LayerKv> &kvCache() const
    {
        return allocator_.layerTensors();
    }

    /** One request's [L, H, D] views for attention kernels. */
    tensor::VirtualTensor kCache(int layer, int req_id) const;
    tensor::VirtualTensor vCache(int layer, int req_id) const;
    /** Convenience KV view combining both. */
    attn::TensorKvView requestView(int layer, int req_id,
                                   bool touch_tlb = false) const;

    /** Lease a reqId. Fails when all B slots are active. */
    Result<int> allocReqId();

    // ---- §8.1 prefix caching ----------------------------------------

    /**
     * Longest stored prefix matching @p query across every slot with a
     * registered hash chain (active and cached alike — a fully written
     * group is immutable, so live requests are valid sources).
     */
    PrefixHit matchPrefix(const PrefixQuery &query) const;

    /**
     * Prefix-aware allocReqId: on a match of at most @p max_cached
     * tokens, either reuses the matching cached slot in place (its
     * page-groups already hold the prefix KV — zero driver calls) or
     * aliases the source's aligned groups into a free slot via
     * multi-mapping, copying the partial trailing group when the match
     * extends into one. @p cached_tokens receives the tokens whose KV
     * the new request inherits. Falls back to plain allocReqId (0
     * cached) on a miss or when no suitable target slot exists.
     */
    Result<int> allocReqIdWithPrefix(const PrefixQuery &query,
                                     i64 max_cached,
                                     i64 *cached_tokens);

    /**
     * Record that @p req_id's sub-tensors now hold the KV of the first
     * @p tokens tokens of @p query (call as prefill chunks complete).
     * Only fully written groups plus one partial tail enter the store.
     */
    void registerPrefix(int req_id, const PrefixQuery &query,
                        i64 tokens);

    /** Driver latency of the most recent allocReqIdWithPrefix (alias
     *  and tail-copy maps run on the serving critical path). */
    TimeNs lastPrefixAllocNs() const { return last_prefix_alloc_ns_; }

    /** Return a reqId (request completed or preempted). */
    Status freeReqId(int req_id);

    // ---- Host swap tier ---------------------------------------------
    //
    // The CUDA-VMM substrate makes swapping uniquely cheap here: the
    // request's VIRTUAL KV layout (its sub-tensor addresses) stays
    // intact while its physical page-groups are copied to pinned host
    // pages and unmapped, so swap-in is remap + copy with no allocator
    // churn and no framework-visible address changes. The reqId stays
    // leased (Active) for the whole swap cycle.

    /**
     * Copy every resident page-group of @p req_id to host pages, then
     * unmap the device groups (returning them to the pool). Refuses
     * slots whose groups are prefix-aliased by another slot
     * (kFailedPrecondition — the sharer's KV must stay resident), and
     * fails with kOutOfMemory when the host tier cannot hold the slot.
     */
    SwapStats swapOutReq(int req_id);

    /**
     * Re-back a swapped-out request: remap page-groups at the slot's
     * unchanged virtual addresses (stealing cached groups like step()
     * would) and copy the stashed KV back. kOutOfMemory when device
     * supply is insufficient — the slot keeps its stash and any
     * partially remapped groups; retry later.
     */
    SwapStats swapInReq(int req_id);

    /** Could swapOutReq succeed right now? */
    bool canSwapOut(int req_id) const;
    /** Could swapInReq succeed right now (device supply check)? */
    bool canSwapIn(int req_id) const;
    /** Page-groups (per buffer) stashed on host for the slot. */
    i64 swappedGroups(int req_id) const;
    /** Host pages currently holding swapped KV (all slots). */
    i64 hostGroupsInUse() const { return pool_.hostGroupsInUse(); }
    u64 hostSwapBudgetBytes() const { return pool_.hostBudgetBytes(); }

    // ---- Cross-replica migration ------------------------------------
    //
    // A swapped-out request's host stash can be detached from this
    // runtime — freeing its reqId — and re-attached to another runtime
    // of identical geometry on the same node. Replicas on one node
    // share host memory, so the handover itself is modeled zero-copy:
    // the donor paid the DtoH copies at swap-out, the adopter pays
    // HtoD at its own swapInReq.

    /** A detached host-tier KV image: layout bookkeeping only (the
     *  simulated payload stays put in shared host memory). */
    struct HostKvImage
    {
        std::vector<i64> buffer_leads; ///< per-buffer live lead
        std::vector<i64> buffer_sizes; ///< per-buffer live page count
        i64 groups = 0;                ///< device group frontier
        i64 handles = 0;               ///< Σ buffer_sizes
        u64 bytes = 0;                 ///< handles * groupBytes
    };

    /** Detach @p req_id's stash (the slot must be swapped out) and
     *  free the reqId; the donor's host pages return to its pool. */
    Result<HostKvImage> exportSwapped(int req_id);

    /** Could importSwapped admit an image of @p handles page-groups
     *  right now (leasable reqId + host-tier supply)? */
    bool canImportSwapped(i64 handles) const;

    /** Lease a fresh reqId holding @p image in swapped-out state; the
     *  regular swapInReq then revives it on this runtime. */
    Result<int> importSwapped(const HostKvImage &image);

    /**
     * Ensure physical backing for the given context lengths
     * (seq_lens[reqId], 0 for inactive slots; size must be B).
     * Returns kOutOfMemory when demand cannot be met even after
     * reclaiming every cached group — the framework should preempt a
     * request and call step again (§5.3.3).
     */
    StepStats step(const std::vector<i64> &seq_lens);

    /**
     * Model the background thread running during an iteration whose
     * compute lasts @p window_ns: prefetch next-iteration decode
     * groups, keep the eager slot warm, refill the pool from cached
     * slots when it drops below the low watermark.
     */
    void computePhase(TimeNs window_ns);

    // ---- Capacity / admission ---------------------------------------

    /** Could a new request with this prompt be admitted right now? */
    bool canAllocate(i64 prompt_tokens) const;

    /** Physical bytes currently mapped into KV tensors. */
    u64 physBytesMapped() const { return allocator_.physBytesMapped(); }
    /** Groups held by completed requests awaiting reuse. */
    i64 cachedHandles() const;
    i64 poolFreeHandles() const { return pool_.freeGroups(); }
    /** Pooled + still-creatable handles (the small-page reclaim path
     *  destroys handles rather than pooling them, §6.2). */
    i64 poolAvailableHandles() const { return pool_.availableGroups(); }
    u64 budgetBytes() const { return pool_.budgetBytes(); }

    const RuntimeStats &stats() const { return stats_; }
    const ReqSlots &slots() const { return slots_; }
    i64 groupsMapped(int req_id) const
    {
        return allocator_.groupsMapped(req_id);
    }
    /** Page-group mappings the request holds across all buffers (the
     *  real footprint under per-layer window trims). */
    i64 mappedHandles(int req_id) const
    {
        return allocator_.mappedHandles(req_id);
    }
    /** Handle mapped at (req_id, buffer, group) — aliasing tests. */
    cuvmm::MemHandle
    handleAt(int req_id, int buffer, i64 group) const
    {
        return allocator_.handleAt(req_id, buffer, group);
    }

    /**
     * Whole-runtime audit: sub-audits the driver, pool and allocator,
     * then checks the cross-layer equalities — pool handles in use ==
     * unique handles mapped in KV tensors, driver phys/host bytes ==
     * pool-created groups (this runtime's driver serves only the KV
     * pool), free slots unmapped, host stashes and prefix chains
     * consistent with slot states. Records violations in @p report.
     */
    void auditInto(audit::AuditReport &report) const;

    /** True when auditInto records no violation. */
    bool checkInvariants() const;

    /** Bytes currently mapped into more than one virtual range. */
    u64 aliasedBytes() const
    {
        return static_cast<u64>(allocator_.aliasedMappings()) *
               allocator_.geometry().groupBytes();
    }

  private:
    /** Grow @p slot to @p target groups, stealing cached groups on
     *  pool exhaustion. */
    Status ensureGroups(int slot, i64 target, i64 *stolen);

    /** Bring @p slot to the canonical layout for @p tokens (window
     *  trims + growth), stealing cached groups on pool exhaustion. */
    Status ensureTokensSteal(int slot, i64 tokens, i64 *stolen);

    /** Rebuild an empty slot to an explicit per-buffer layout
     *  (swap-in), stealing cached groups on pool exhaustion. */
    Status growToLayoutSteal(int slot, const std::vector<i64> &leads,
                             const std::vector<i64> &ends);

    /** Reclaim one group-row from the oldest cached slot; returns the
     *  number of handle mappings freed (0 = nothing left to steal). */
    i64 stealOneCachedGroup();

    /** Estimated driver cost of mapping one group on every buffer. */
    TimeNs mapAllBuffersCost() const;

    /** Per-slot prefix store entry (content of the slot's groups). */
    struct PrefixChain
    {
        std::vector<u64> hashes; ///< chained aligned-group hashes
        i64 tokens = 0;          ///< registered token count
        u64 tail_hash = 0;       ///< chained hash incl. the partial tail

        bool empty() const { return tokens == 0; }
        void
        clear()
        {
            hashes.clear();
            tokens = 0;
            tail_hash = 0;
        }
    };

    /** Truncate @p slot's chain to what its mapped groups still hold
     *  (reclamation may have unmapped tail groups). */
    void clampChainToMapped(int slot);

    /** Host pages holding one swapped-out slot's KV. */
    struct HostStash
    {
        /** pages[buffer][i] backs device group leads[buffer] + i —
         *  only the live [lead, end) range of each buffer is stashed. */
        std::vector<std::vector<cuvmm::MemHandle>> pages;
        /** Per-buffer lead at swap-out time (all 0 without windows). */
        std::vector<i64> leads;
        i64 groups = 0;  ///< device group frontier at swap-out
        i64 handles = 0; ///< live page-group copies held (Σ sizes)

        bool empty() const { return handles == 0; }
        void
        clear()
        {
            pages.clear();
            leads.clear();
            groups = 0;
            handles = 0;
        }
    };

    cuvmm::Driver &driver_;
    Config config_;
    PagePool pool_;
    KvAllocator allocator_;
    ReqSlots slots_;
    BackgroundWorker background_;
    std::vector<i64> last_seq_lens_;
    std::vector<PrefixChain> chains_;
    std::vector<HostStash> stashes_;
    RuntimeStats stats_;
    TimeNs last_prefix_alloc_ns_ = 0;
};

} // namespace vattn::core

#endif // VATTN_CORE_VATTENTION_HH
