#include "core/vattention.hh"

#include <algorithm>
#include <limits>

#include "common/logging.hh"
#include "common/prefix_hash.hh"

namespace vattn::core
{

namespace
{

u64
resolveBudget(const Config &config, cuvmm::Driver &driver)
{
    if (config.phys_budget_bytes != 0) {
        return config.phys_budget_bytes;
    }
    return driver.device().freePhysBytes();
}

} // namespace

VAttention::VAttention(cuvmm::Driver &driver, const Config &config)
    : driver_(driver), config_(config),
      pool_(driver, config.page_group, resolveBudget(config, driver),
            /*precreate=*/true, config.host_swap_bytes),
      allocator_(driver, config, pool_),
      slots_(config.max_batch_size),
      last_seq_lens_(static_cast<std::size_t>(config.max_batch_size), 0),
      chains_(static_cast<std::size_t>(config.max_batch_size)),
      stashes_(static_cast<std::size_t>(config.max_batch_size))
{
    // Reservation + pre-created handles happen before serving starts;
    // none of it is critical-path time.
    stats_.init_ns = driver_.consumeElapsedNs();
}

tensor::VirtualTensor
VAttention::kCache(int layer, int req_id) const
{
    return allocator_.kView(layer, req_id);
}

tensor::VirtualTensor
VAttention::vCache(int layer, int req_id) const
{
    return allocator_.vView(layer, req_id);
}

attn::TensorKvView
VAttention::requestView(int layer, int req_id, bool touch_tlb) const
{
    return attn::TensorKvView(kCache(layer, req_id),
                              vCache(layer, req_id), touch_tlb);
}

Result<int>
VAttention::allocReqId()
{
    // Prefer the cached slot with the most retained page-groups: a new
    // request can then reuse R1's physical memory without any driver
    // calls (Figure 5 (d)-(e)). Under prefix caching, cached slots
    // carrying a hash chain are valuable store entries: prefer chain-
    // less cached slots (warm slots), then free slots, and sacrifice
    // the entry with the fewest registered tokens only as a last
    // resort.
    int best = -1;
    i64 best_handles = -1;
    if (config_.deferred_reclamation || config_.eager_allocation) {
        for (int slot : slots_.cachedOrder()) {
            if (config_.prefix_caching &&
                !chains_[static_cast<std::size_t>(slot)].empty()) {
                continue;
            }
            const i64 handles = allocator_.mappedHandles(slot);
            if (handles > best_handles) {
                best = slot;
                best_handles = handles;
            }
        }
    }
    if (best >= 0) {
        slots_.activate(best).expectOk("activate cached slot");
        ++stats_.reused_cached_slots;
        chains_[static_cast<std::size_t>(best)].clear();
        // A window-trimmed buffer restarts from empty (its lead can
        // never rewind for the new request); untrimmed buffers are
        // reusable as-is.
        allocator_.resetWindowTrimmed(best);
        // The new request overwrites every retained group: none may
        // still be aliased by another slot.
        allocator_.privatizeFrom(best, 0);
        return best;
    }
    const int free_slot = slots_.firstFree();
    if (free_slot >= 0) {
        slots_.activate(free_slot).expectOk("activate free slot");
        chains_[static_cast<std::size_t>(free_slot)].clear();
        return free_slot;
    }
    if (config_.prefix_caching) {
        // Every slot is active or a store entry: evict the entry with
        // the fewest registered tokens.
        int victim = -1;
        i64 victim_tokens = 0;
        for (int slot : slots_.cachedOrder()) {
            const i64 tokens =
                chains_[static_cast<std::size_t>(slot)].tokens;
            if (victim < 0 || tokens < victim_tokens) {
                victim = slot;
                victim_tokens = tokens;
            }
        }
        if (victim >= 0) {
            slots_.activate(victim).expectOk("activate cached slot");
            ++stats_.reused_cached_slots;
            chains_[static_cast<std::size_t>(victim)].clear();
            allocator_.resetWindowTrimmed(victim);
            allocator_.privatizeFrom(victim, 0);
            return victim;
        }
    }
    return Result<int>(ErrorCode::kOutOfMemory,
                       "all reqIds active (batch full)");
}

Status
VAttention::freeReqId(int req_id)
{
    if (req_id < 0 || req_id >= config_.max_batch_size) {
        return errorStatus(ErrorCode::kInvalidArgument, "bad reqId");
    }
    if (slots_.state(req_id) != SlotState::kActive) {
        return errorStatus(ErrorCode::kFailedPrecondition,
                           "reqId not active");
    }
    last_seq_lens_[static_cast<std::size_t>(req_id)] = 0;
    // A request freed while swapped out (cancellation / teardown)
    // abandons its stash: the host pages return to the pool.
    auto &stash = stashes_[static_cast<std::size_t>(req_id)];
    if (!stash.empty()) {
        for (const auto &buffer_pages : stash.pages) {
            for (cuvmm::MemHandle page : buffer_pages) {
                pool_.releaseHost(page);
            }
        }
        stash.clear();
    }
    if (config_.deferred_reclamation &&
        allocator_.mappedHandles(req_id) > 0) {
        // The slot's hash chain (if any) survives with its mappings:
        // cached slots ARE the prefix store.
        return slots_.moveToCached(req_id);
    }
    allocator_.releaseAll(req_id);
    chains_[static_cast<std::size_t>(req_id)].clear();
    return slots_.moveToFree(req_id);
}

void
VAttention::clampChainToMapped(int slot)
{
    auto &chain = chains_[static_cast<std::size_t>(slot)];
    if (chain.empty()) {
        return;
    }
    // Only the intact leading groups can source a prefix: a window
    // trim in any buffer voids the whole shareable prefix.
    const i64 groups = allocator_.prefixGroupsMapped(slot);
    const i64 tpg = allocator_.geometry().tokensPerGroup();
    if (static_cast<i64>(chain.hashes.size()) > groups) {
        chain.hashes.resize(static_cast<std::size_t>(groups));
        chain.tail_hash = 0; // the tail group is gone too
        chain.tokens = std::min(chain.tokens, groups * tpg);
    } else if (chain.tokens > groups * tpg &&
               static_cast<i64>(chain.hashes.size()) == groups) {
        // Chain claimed a partial tail in group `groups`, now unmapped.
        chain.tail_hash = 0;
        chain.tokens = groups * tpg;
    }
    if (chain.tokens == 0) {
        chain.clear();
    }
}

bool
VAttention::canSwapOut(int req_id) const
{
    if (req_id < 0 || req_id >= config_.max_batch_size ||
        slots_.state(req_id) != SlotState::kActive) {
        return false;
    }
    const i64 handles = allocator_.mappedHandles(req_id);
    if (handles <= 0 ||
        !stashes_[static_cast<std::size_t>(req_id)].empty()) {
        return false;
    }
    if (allocator_.hasSharedGroups(req_id)) {
        return false; // another slot maps these physical pages
    }
    return pool_.hostGroupsAvailable() >= handles;
}

bool
VAttention::canSwapIn(int req_id) const
{
    if (req_id < 0 || req_id >= config_.max_batch_size ||
        slots_.state(req_id) != SlotState::kActive) {
        return false;
    }
    const auto &stash = stashes_[static_cast<std::size_t>(req_id)];
    if (stash.empty()) {
        return false;
    }
    const i64 need =
        stash.handles - allocator_.mappedHandles(req_id);
    // Cached slots are stealable supply, exactly as in step() — minus
    // alias-pinned mappings, whose steal frees no physical memory
    // (the same discount canAllocate applies). Without it a doomed
    // swap-in attempt would drain every cached prefix entry for zero
    // progress before failing.
    return pool_.availableGroups() + cachedHandles() -
               allocator_.aliasedMappings() >=
           need;
}

i64
VAttention::swappedGroups(int req_id) const
{
    if (req_id < 0 || req_id >= config_.max_batch_size) {
        return 0;
    }
    return stashes_[static_cast<std::size_t>(req_id)].groups;
}

SwapStats
VAttention::swapOutReq(int req_id)
{
    SwapStats out;
    if (req_id < 0 || req_id >= config_.max_batch_size) {
        out.status = errorStatus(ErrorCode::kInvalidArgument,
                                 "bad reqId");
        return out;
    }
    if (slots_.state(req_id) != SlotState::kActive) {
        out.status = errorStatus(ErrorCode::kFailedPrecondition,
                                 "reqId not active");
        return out;
    }
    auto &stash = stashes_[static_cast<std::size_t>(req_id)];
    if (!stash.empty()) {
        out.status = errorStatus(ErrorCode::kFailedPrecondition,
                                 "reqId already swapped out");
        return out;
    }
    const i64 handles = allocator_.mappedHandles(req_id);
    if (handles <= 0) {
        out.status = errorStatus(ErrorCode::kFailedPrecondition,
                                 "no resident page-groups");
        return out;
    }
    if (allocator_.hasSharedGroups(req_id)) {
        // Prefix-aliased pages never leave the device while another
        // slot maps them; the caller should recompute instead.
        out.status = errorStatus(
            ErrorCode::kFailedPrecondition,
            "page-groups shared with another request");
        return out;
    }
    const i64 nbuf = allocator_.geometry().numBuffers();
    if (pool_.hostGroupsAvailable() < handles) {
        out.status = errorStatus(ErrorCode::kOutOfMemory,
                                 "host swap tier full");
        return out;
    }

    driver_.consumeElapsedNs(); // open a fresh accounting window
    // Stash exactly the live window of every buffer, remembering each
    // buffer's lead so swap-in restores the same [lead, end) layout.
    stash.pages.resize(static_cast<std::size_t>(nbuf));
    stash.leads.resize(static_cast<std::size_t>(nbuf));
    for (int b = 0; b < nbuf; ++b) {
        auto &buffer_pages =
            stash.pages[static_cast<std::size_t>(b)];
        const i64 lead = allocator_.bufferLead(req_id, b);
        const i64 end = allocator_.bufferEnd(req_id, b);
        stash.leads[static_cast<std::size_t>(b)] = lead;
        buffer_pages.reserve(static_cast<std::size_t>(end - lead));
        for (i64 g = lead; g < end; ++g) {
            auto page = pool_.acquireHost();
            page.status().expectOk("host page acquire after check");
            const auto r = driver_.cuMemcpyDtoH(
                page.value(), allocator_.handleAt(req_id, b, g));
            panic_if(r != cuvmm::CuResult::kSuccess,
                     "swap-out copy failed: ", cuvmm::toString(r));
            buffer_pages.push_back(page.value());
        }
    }
    stash.groups = allocator_.groupsMapped(req_id);
    stash.handles = handles;
    // Unmap the device groups; the slot's virtual layout is untouched,
    // so swap-in needs no address-space work at all.
    allocator_.releaseAll(req_id);
    // The slot's KV left the device: it can no longer source prefix
    // hits.
    chains_[static_cast<std::size_t>(req_id)].clear();
    last_seq_lens_[static_cast<std::size_t>(req_id)] = 0;

    out.handles = handles;
    out.bytes = static_cast<u64>(out.handles) *
                allocator_.geometry().groupBytes();
    out.critical_ns = driver_.consumeElapsedNs();
    ++stats_.swap_out_reqs;
    stats_.swap_out_bytes += out.bytes;
    stats_.swap_ns += out.critical_ns;
    stats_.critical_ns += out.critical_ns;
    return out;
}

SwapStats
VAttention::swapInReq(int req_id)
{
    SwapStats in;
    if (req_id < 0 || req_id >= config_.max_batch_size) {
        in.status = errorStatus(ErrorCode::kInvalidArgument,
                                "bad reqId");
        return in;
    }
    if (slots_.state(req_id) != SlotState::kActive) {
        in.status = errorStatus(ErrorCode::kFailedPrecondition,
                                "reqId not active");
        return in;
    }
    auto &stash = stashes_[static_cast<std::size_t>(req_id)];
    if (stash.empty()) {
        in.status = errorStatus(ErrorCode::kFailedPrecondition,
                                "reqId not swapped out");
        return in;
    }

    driver_.consumeElapsedNs(); // open a fresh accounting window
    const i64 nbuf = allocator_.geometry().numBuffers();
    std::vector<i64> ends(static_cast<std::size_t>(nbuf));
    for (int b = 0; b < nbuf; ++b) {
        ends[static_cast<std::size_t>(b)] =
            stash.leads[static_cast<std::size_t>(b)] +
            static_cast<i64>(
                stash.pages[static_cast<std::size_t>(b)].size());
    }
    auto status = growToLayoutSteal(req_id, stash.leads, ends);
    if (!status.isOk()) {
        // Roll the partial growth back: a swapped slot is outside the
        // framework's preemption reach, so letting it hoard device
        // groups it cannot yet use would deadlock capacity against
        // the requests that could free it. The stash survives; a
        // later attempt remaps from scratch.
        allocator_.releaseAll(req_id);
        in.status = status;
        in.critical_ns = driver_.consumeElapsedNs();
        stats_.critical_ns += in.critical_ns;
        return in;
    }
    for (int b = 0; b < nbuf; ++b) {
        auto &buffer_pages =
            stash.pages[static_cast<std::size_t>(b)];
        const i64 lead = stash.leads[static_cast<std::size_t>(b)];
        for (i64 g = 0;
             g < static_cast<i64>(buffer_pages.size()); ++g) {
            const auto r = driver_.cuMemcpyHtoD(
                allocator_.handleAt(req_id, b, lead + g),
                buffer_pages[static_cast<std::size_t>(g)]);
            panic_if(r != cuvmm::CuResult::kSuccess,
                     "swap-in copy failed: ", cuvmm::toString(r));
            pool_.releaseHost(buffer_pages[static_cast<std::size_t>(g)]);
        }
    }
    in.handles = stash.handles;
    in.bytes = static_cast<u64>(in.handles) *
               allocator_.geometry().groupBytes();
    stash.clear();
    in.critical_ns = driver_.consumeElapsedNs();
    ++stats_.swap_in_reqs;
    stats_.swap_in_bytes += in.bytes;
    stats_.swap_ns += in.critical_ns;
    stats_.critical_ns += in.critical_ns;
    return in;
}

Result<VAttention::HostKvImage>
VAttention::exportSwapped(int req_id)
{
    if (req_id < 0 || req_id >= config_.max_batch_size) {
        return Result<HostKvImage>(ErrorCode::kInvalidArgument,
                                   "bad reqId");
    }
    if (slots_.state(req_id) != SlotState::kActive) {
        return Result<HostKvImage>(ErrorCode::kFailedPrecondition,
                                   "reqId not active");
    }
    auto &stash = stashes_[static_cast<std::size_t>(req_id)];
    if (stash.empty()) {
        return Result<HostKvImage>(ErrorCode::kFailedPrecondition,
                                   "reqId not swapped out");
    }

    driver_.consumeElapsedNs(); // open a fresh accounting window
    HostKvImage image;
    image.buffer_leads = stash.leads;
    image.buffer_sizes.reserve(stash.pages.size());
    for (const auto &buffer_pages : stash.pages) {
        image.buffer_sizes.push_back(
            static_cast<i64>(buffer_pages.size()));
    }
    image.groups = stash.groups;
    image.handles = stash.handles;
    image.bytes = static_cast<u64>(stash.handles) *
                  allocator_.geometry().groupBytes();
    // The payload stays put in node-shared host memory: the donor's
    // host pages return to its pool without any copy.
    for (const auto &buffer_pages : stash.pages) {
        for (cuvmm::MemHandle page : buffer_pages) {
            pool_.releaseHost(page);
        }
    }
    stash.clear();
    // Post-swap-out the slot holds no device mappings, so this frees
    // the reqId outright (no cached-slot detour even with deferred
    // reclamation).
    freeReqId(req_id).expectOk("free exported reqId");
    stats_.critical_ns += driver_.consumeElapsedNs();
    return image;
}

bool
VAttention::canImportSwapped(i64 handles) const
{
    if (handles <= 0 || pool_.hostGroupsAvailable() < handles) {
        return false;
    }
    // allocReqId succeeds whenever any slot is non-active (free or
    // cached — cached slots are evictable supply).
    return slots_.numActive() < config_.max_batch_size;
}

Result<int>
VAttention::importSwapped(const HostKvImage &image)
{
    const i64 nbuf = allocator_.geometry().numBuffers();
    if (static_cast<i64>(image.buffer_leads.size()) != nbuf ||
        static_cast<i64>(image.buffer_sizes.size()) != nbuf ||
        image.handles <= 0) {
        return Result<int>(ErrorCode::kInvalidArgument,
                           "image geometry mismatch");
    }
    if (pool_.hostGroupsAvailable() < image.handles) {
        return Result<int>(ErrorCode::kOutOfMemory,
                           "host swap tier full");
    }
    auto slot = allocReqId();
    if (!slot.isOk()) {
        return slot;
    }
    const int req_id = slot.value();
    driver_.consumeElapsedNs(); // open a fresh accounting window
    // allocReqId's cached-reuse path deliberately keeps the previous
    // tenant's mappings (deferred reclamation); an adopted migrant
    // instead starts exactly like a swapped-out slot — no device
    // mappings, stash holding the full image — so the regular
    // swapInReq revives it.
    allocator_.releaseAll(req_id);
    auto &stash = stashes_[static_cast<std::size_t>(req_id)];
    stash.pages.resize(static_cast<std::size_t>(nbuf));
    stash.leads = image.buffer_leads;
    for (i64 b = 0; b < nbuf; ++b) {
        auto &buffer_pages = stash.pages[static_cast<std::size_t>(b)];
        const i64 count = image.buffer_sizes[static_cast<std::size_t>(b)];
        buffer_pages.reserve(static_cast<std::size_t>(count));
        for (i64 g = 0; g < count; ++g) {
            auto page = pool_.acquireHost();
            page.status().expectOk("host page acquire after check");
            buffer_pages.push_back(page.value());
        }
    }
    stash.groups = image.groups;
    stash.handles = image.handles;
    last_seq_lens_[static_cast<std::size_t>(req_id)] = 0;
    stats_.critical_ns += driver_.consumeElapsedNs();
    return req_id;
}

i64
VAttention::stealOneCachedGroup()
{
    // Walk from the LRU head: either the head is empty (free it and
    // look at the next-oldest) or one group is stolen from it and we
    // are done, so no snapshot of the order is ever needed.
    for (int victim; (victim = slots_.oldestCached()) >= 0;) {
        if (allocator_.mappedHandles(victim) == 0) {
            chains_[static_cast<std::size_t>(victim)].clear();
            slots_.moveToFree(victim).expectOk("empty cached slot");
            continue;
        }
        const i64 before = allocator_.mappedHandles(victim);
        allocator_.shrinkTail(victim).expectOk("reclaim cached group");
        const i64 freed = before - allocator_.mappedHandles(victim);
        stats_.reclaimed_handles += freed;
        // A stolen group may still be pinned by a sharer (aliased
        // prefix): the unmap then freed no physical memory, but the
        // victim's chain must forget the now-unmapped tail either way.
        clampChainToMapped(victim);
        if (allocator_.mappedHandles(victim) == 0) {
            chains_[static_cast<std::size_t>(victim)].clear();
            slots_.moveToFree(victim).expectOk("drained cached slot");
        }
        return freed;
    }
    return 0;
}

Status
VAttention::ensureGroups(int slot, i64 target, i64 *stolen)
{
    while (true) {
        auto status = allocator_.growTo(slot, target);
        if (status.isOk()) {
            return status;
        }
        if (status.code() != ErrorCode::kOutOfMemory) {
            return status;
        }
        const i64 freed = stealOneCachedGroup();
        if (freed == 0) {
            return status; // genuinely out of memory
        }
        if (stolen) {
            *stolen += freed;
        }
    }
}

Status
VAttention::ensureTokensSteal(int slot, i64 tokens, i64 *stolen)
{
    while (true) {
        auto status = allocator_.ensureTokens(slot, tokens);
        if (status.isOk()) {
            return status;
        }
        if (status.code() != ErrorCode::kOutOfMemory) {
            return status;
        }
        const i64 freed = stealOneCachedGroup();
        if (freed == 0) {
            return status; // genuinely out of memory
        }
        if (stolen) {
            *stolen += freed;
        }
    }
}

Status
VAttention::growToLayoutSteal(int slot, const std::vector<i64> &leads,
                              const std::vector<i64> &ends)
{
    while (true) {
        auto status = allocator_.growToLayout(slot, leads, ends);
        if (status.isOk()) {
            return status;
        }
        if (status.code() != ErrorCode::kOutOfMemory) {
            return status;
        }
        if (stealOneCachedGroup() == 0) {
            return status; // genuinely out of memory
        }
    }
}

PrefixHit
VAttention::matchPrefix(const PrefixQuery &query) const
{
    PrefixHit best;
    if (!config_.prefix_caching || query.empty()) {
        return best;
    }
    const i64 tpg = allocator_.geometry().tokensPerGroup();
    for (int slot = 0; slot < config_.max_batch_size; ++slot) {
        const auto &chain = chains_[static_cast<std::size_t>(slot)];
        if (chain.empty()) {
            continue;
        }
        // Aligned groups: longest common prefix of the hash chains,
        // bounded by what the slot still has mapped.
        const i64 limit = std::min<i64>(
            {static_cast<i64>(chain.hashes.size()),
             static_cast<i64>(query.group_hashes.size()),
             allocator_.groupsMapped(slot)});
        i64 groups = 0;
        while (groups < limit &&
               chain.hashes[static_cast<std::size_t>(groups)] ==
                   query.group_hashes[static_cast<std::size_t>(groups)]) {
            ++groups;
        }
        i64 tokens = groups * tpg;
        // Partial tail: only when the whole aligned chain matched and
        // the slot's tail group is still mapped; the tail is COPIED on
        // a hit, never aliased (it will be appended to).
        const i64 tail_tokens = chain.tokens -
            static_cast<i64>(chain.hashes.size()) * tpg;
        if (groups == static_cast<i64>(chain.hashes.size()) &&
            tail_tokens > 0 && allocator_.groupsMapped(slot) > groups &&
            query.total_tokens >= chain.tokens && query.tail_hash) {
            const u64 prev =
                groups > 0
                    ? chain.hashes[static_cast<std::size_t>(groups - 1)]
                    : kPrefixHashSeed;
            if (query.tail_hash(prev, groups, tail_tokens) ==
                chain.tail_hash) {
                tokens = chain.tokens;
            }
        }
        // Prefer the longest match; on ties prefer a cached source
        // (reusable in place, zero driver calls).
        const bool better =
            tokens > best.tokens ||
            (tokens == best.tokens && tokens > 0 && best.slot >= 0 &&
             slots_.state(best.slot) != SlotState::kCached &&
             slots_.state(slot) == SlotState::kCached);
        if (better && tokens > 0) {
            best.slot = slot;
            best.groups = groups;
            best.tokens = tokens;
        }
    }
    return best;
}

Result<int>
VAttention::allocReqIdWithPrefix(const PrefixQuery &query,
                                 i64 max_cached, i64 *cached_tokens)
{
    if (cached_tokens) {
        *cached_tokens = 0;
    }
    last_prefix_alloc_ns_ = 0;
    PrefixHit hit = matchPrefix(query);
    const i64 tpg = allocator_.geometry().tokensPerGroup();
    if (hit.tokens > max_cached) {
        // The engine caps reuse (e.g. at prompt_tokens - 1 so at least
        // one token is computed): drop the tail, then whole groups.
        hit.groups = std::min(hit.groups, max_cached / tpg);
        hit.tokens = hit.groups * tpg;
    }
    if (hit.slot < 0 || hit.tokens <= 0) {
        return allocReqId();
    }

    const bool has_tail = hit.tokens > hit.groups * tpg;
    if (slots_.state(hit.slot) == SlotState::kCached) {
        // In-place reuse: the prefix KV already sits at this slot's
        // virtual addresses; groups beyond the match are stale and
        // will be overwritten by the new request's prefill — any of
        // them still aliased by another slot must be remapped onto
        // private handles first (writes through a shared mapping
        // would corrupt the sharer's KV). The matched tail group is
        // never shared (only aligned groups are aliased), so
        // privatizing from hit.groups keeps it.
        slots_.activate(hit.slot).expectOk("activate prefix slot");
        ++stats_.reused_cached_slots;
        auto &chain = chains_[static_cast<std::size_t>(hit.slot)];
        chain.hashes.resize(static_cast<std::size_t>(hit.groups));
        chain.tokens = hit.tokens;
        if (!has_tail) {
            chain.tail_hash = 0;
        }
        allocator_.privatizeFrom(hit.slot, hit.groups);
        // Privatization may have had to shrink the tail instead
        // (pool exhausted): the reusable prefix shrinks with it.
        clampChainToMapped(hit.slot);
        const i64 reused = chain.tokens;
        if (reused <= 0) {
            chain.clear();
            last_prefix_alloc_ns_ = driver_.consumeElapsedNs();
            stats_.critical_ns += last_prefix_alloc_ns_;
            return hit.slot; // degraded to a plain allocation
        }
        ++stats_.prefix_hits;
        ++stats_.prefix_inplace_hits;
        stats_.prefix_cached_tokens += reused;
        if (cached_tokens) {
            *cached_tokens = reused;
        }
        last_prefix_alloc_ns_ = driver_.consumeElapsedNs();
        stats_.critical_ns += last_prefix_alloc_ns_;
        return hit.slot;
    }

    // The source is active: alias its aligned groups into a free slot.
    // (Activating a cached slot instead would first require unmapping
    // its stale groups — churn that usually costs more than the hit
    // saves — so without a free slot we fall back to a plain miss.)
    const int target = slots_.firstFree();
    if (target < 0) {
        return allocReqId();
    }
    slots_.activate(target).expectOk("activate free slot");
    auto &chain = chains_[static_cast<std::size_t>(target)];
    chain.clear();
    if (hit.groups > 0) {
        allocator_.aliasFrom(target, hit.slot, hit.groups)
            .expectOk("prefix alias");
        stats_.prefix_aliased_handles +=
            hit.groups * allocator_.geometry().numBuffers();
    }
    i64 tokens = hit.groups * tpg;
    if (has_tail) {
        // Copy the partial trailing group into a private group: the
        // new request keeps appending into it, which must not be
        // visible through the source's mapping.
        if (allocator_.growTo(target, hit.groups + 1).isOk()) {
            stats_.prefix_copied_handles +=
                allocator_.geometry().numBuffers();
            tokens = hit.tokens;
        }
    }
    if (tokens > 0) {
        chain.hashes.assign(
            chains_[static_cast<std::size_t>(hit.slot)].hashes.begin(),
            chains_[static_cast<std::size_t>(hit.slot)].hashes.begin() +
                hit.groups);
        chain.tokens = tokens;
        chain.tail_hash =
            tokens > hit.groups * tpg
                ? chains_[static_cast<std::size_t>(hit.slot)].tail_hash
                : 0;
        ++stats_.prefix_hits;
        stats_.prefix_cached_tokens += tokens;
    }
    if (cached_tokens) {
        *cached_tokens = tokens;
    }
    // Alias/copy maps happened synchronously: charge them to the
    // critical path (the serving backend folds this into ensure time).
    last_prefix_alloc_ns_ = driver_.consumeElapsedNs();
    stats_.critical_ns += last_prefix_alloc_ns_;
    return target;
}

void
VAttention::registerPrefix(int req_id, const PrefixQuery &query,
                           i64 tokens)
{
    if (!config_.prefix_caching || query.empty() || tokens <= 0) {
        return;
    }
    panic_if(req_id < 0 || req_id >= config_.max_batch_size,
             "bad reqId");
    panic_if(slots_.state(req_id) != SlotState::kActive,
             "registerPrefix on an inactive reqId");
    auto &chain = chains_[static_cast<std::size_t>(req_id)];
    tokens = std::min(tokens, query.total_tokens);
    const i64 tpg = allocator_.geometry().tokensPerGroup();
    const i64 full = std::min<i64>(
        tokens / tpg, static_cast<i64>(query.group_hashes.size()));
    chain.hashes.assign(query.group_hashes.begin(),
                        query.group_hashes.begin() + full);
    chain.tokens = tokens;
    const i64 tail = tokens - full * tpg;
    if (tail > 0 && query.tail_hash) {
        const u64 prev =
            full > 0 ? chain.hashes[static_cast<std::size_t>(full - 1)]
                     : kPrefixHashSeed;
        chain.tail_hash = query.tail_hash(prev, full, tail);
    } else {
        chain.tail_hash = 0;
        chain.tokens = full * tpg;
    }
    if (chain.tokens == 0) {
        chain.clear();
    }
    if (allocator_.geometry().hasWindows()) {
        // A sliding-window trim may already have unmapped part of the
        // registered prefix — only the intact leading groups may enter
        // the store.
        clampChainToMapped(req_id);
    }
}

StepStats
VAttention::step(const std::vector<i64> &seq_lens)
{
    StepStats result;
    if (seq_lens.size() !=
        static_cast<std::size_t>(config_.max_batch_size)) {
        result.status = errorStatus(ErrorCode::kInvalidArgument,
                                    "seq_lens size must equal B");
        return result;
    }

    ++stats_.steps;
    driver_.consumeElapsedNs(); // open a fresh accounting window
    const i64 mapped_before = allocator_.totalHandlesMapped();

    for (int slot = 0; slot < config_.max_batch_size; ++slot) {
        const i64 len = seq_lens[static_cast<std::size_t>(slot)];
        if (slots_.state(slot) != SlotState::kActive) {
            if (len != 0) {
                result.status = errorStatus(
                    ErrorCode::kInvalidArgument,
                    "non-zero length for inactive reqId");
                result.critical_ns = driver_.consumeElapsedNs();
                stats_.critical_ns += result.critical_ns;
                return result;
            }
            continue;
        }
        if (len > config_.max_context_len) {
            result.status = errorStatus(
                ErrorCode::kInvalidArgument,
                "context length beyond the model maximum");
            result.critical_ns = driver_.consumeElapsedNs();
            stats_.critical_ns += result.critical_ns;
            return result;
        }
        if (allocator_.needsEnsureTokens(slot, len)) {
            auto status = ensureTokensSteal(slot, len,
                                            &result.handles_stolen);
            if (!status.isOk()) {
                result.status = status;
                result.critical_ns = driver_.consumeElapsedNs();
                stats_.critical_ns += result.critical_ns;
                return result;
            }
            if (allocator_.geometry().hasWindows()) {
                // A window trim voids the slot's shareable prefix.
                clampChainToMapped(slot);
            }
        }
    }

    last_seq_lens_ = seq_lens;
    result.handles_mapped =
        allocator_.totalHandlesMapped() - mapped_before +
        result.handles_stolen;
    result.critical_ns = driver_.consumeElapsedNs();
    stats_.sync_handles += result.handles_mapped;
    stats_.critical_ns += result.critical_ns;
    return result;
}

TimeNs
VAttention::mapAllBuffersCost() const
{
    return driver_.latency().mapGroupCost(config_.page_group) *
           static_cast<u64>(allocator_.geometry().numBuffers());
}

void
VAttention::computePhase(TimeNs window_ns)
{
    background_.beginWindow(window_ns);
    driver_.consumeElapsedNs();
    const i64 mapped_before = allocator_.totalHandlesMapped();
    bool window_open = true;

    // (1) Decode prefetch: each active request will need at most one
    // more group per buffer next iteration (§6.1.1).
    if (config_.overlap_allocation) {
        for (int slot = 0;
             window_open && slot < config_.max_batch_size; ++slot) {
            if (slots_.state(slot) != SlotState::kActive) {
                continue;
            }
            const i64 len =
                last_seq_lens_[static_cast<std::size_t>(slot)];
            if (len <= 0 || len >= config_.max_context_len) {
                continue;
            }
            // Growth only: trimming the slot toward len + 1 here
            // would unmap groups the in-flight iteration still reads.
            while (window_open &&
                   allocator_.needsGrowthForTokens(slot, len + 1)) {
                // Gate on the estimated cost first: a real background
                // thread that runs out of iteration time simply leaves
                // the work for the next step()'s critical path.
                if (!background_.tryConsume(mapAllBuffersCost())) {
                    window_open = false;
                    break;
                }
                bool grew = false;
                while (true) {
                    auto status =
                        allocator_.growOneRowForTokens(slot, len + 1);
                    if (status.isOk()) {
                        grew = true;
                        break;
                    }
                    if (status.code() != ErrorCode::kOutOfMemory ||
                        stealOneCachedGroup() == 0) {
                        break;
                    }
                }
                if (!grew) {
                    window_open = false;
                    break;
                }
            }
        }
    }

    // (2) Eager allocation: keep ONE inactive reqId pre-mapped with a
    // few groups so a fresh prefill starts without driver calls. If a
    // cached slot (deferred reclamation or a previous warm slot)
    // already holds mappings, the next request reuses it and nothing
    // needs to be warmed.
    if (config_.eager_allocation && window_open) {
        bool have_warm = false;
        for (int slot : slots_.cachedOrder()) {
            if (allocator_.mappedHandles(slot) > 0) {
                have_warm = true;
                break;
            }
        }
        const int warm = have_warm ? -1 : slots_.firstFree();
        const auto &geom = allocator_.geometry();
        i64 max_groups = std::numeric_limits<i64>::max();
        for (int b = 0; b < geom.numBuffers(); ++b) {
            max_groups = std::min(
                max_groups,
                geom.maxGroupsPerRequest(geom.layerOfBuffer(b)));
        }
        const i64 eager_target =
            std::min(config_.eager_groups, max_groups);
        if (warm >= 0 && eager_target > 0) {
            bool warmed = false;
            while (window_open &&
                   allocator_.groupsMapped(warm) < eager_target &&
                   pool_.availableGroups() >=
                       allocator_.geometry().numBuffers()) {
                if (!background_.tryConsume(mapAllBuffersCost())) {
                    window_open = false;
                    break;
                }
                if (!allocator_
                         .growTo(warm,
                                 allocator_.groupsMapped(warm) + 1)
                         .isOk()) {
                    break;
                }
                warmed = true;
            }
            if (warmed) {
                // The warm slot now holds mappings: park it with the
                // cached slots so allocReqId can hand it out.
                slots_.cacheFreeSlot(warm).expectOk("cache warm slot");
            }
        }
    }

    // (3) Watermark reclamation: when the pool of uncommitted groups
    // runs low, trim cached slots in the background instead of paying
    // the unmap latency at allocation time (§6.1.2).
    if (config_.deferred_reclamation && window_open) {
        const i64 watermark = static_cast<i64>(
            config_.reclaim_low_watermark *
            static_cast<double>(pool_.totalGroups()));
        const TimeNs reclaim_cost =
            driver_.latency().unmapGroupCost(config_.page_group) *
            static_cast<u64>(allocator_.geometry().numBuffers());
        while (window_open && pool_.availableGroups() < watermark &&
               cachedHandles() > 0) {
            if (!background_.tryConsume(reclaim_cost)) {
                window_open = false;
                break;
            }
            if (stealOneCachedGroup() == 0) {
                break;
            }
        }
    }

    stats_.background_handles +=
        std::max<i64>(0, allocator_.totalHandlesMapped() - mapped_before);
    stats_.background_ns += driver_.consumeElapsedNs();
}

bool
VAttention::canAllocate(i64 prompt_tokens) const
{
    if (slots_.numFree() == 0 && slots_.numCached() == 0) {
        return false;
    }
    const auto &geom = allocator_.geometry();
    // Handle units throughout so heterogeneous layers sum correctly
    // (for uniform configs every term is the old per-buffer count
    // times numBuffers — the admission decision is unchanged).
    if (geom.frontierHandlesForTokens(prompt_tokens) >
        geom.frontierHandlesForTokens(config_.max_context_len)) {
        return false;
    }
    const i64 need = geom.handlesForTokens(prompt_tokens);

    i64 best_cached = 0;
    i64 cached_total = 0;
    for (int slot = 0; slot < config_.max_batch_size; ++slot) {
        if (slots_.state(slot) == SlotState::kCached) {
            const i64 handles = allocator_.mappedHandles(slot);
            cached_total += handles;
            best_cached = std::max(best_cached, handles);
        }
    }
    if (slots_.numFree() == 0 && slots_.numCached() == 0) {
        return false;
    }
    const i64 extra_needed = std::max<i64>(0, need - best_cached);
    // Alias-pinned mappings are not real supply: stealing such a
    // cached group unmaps it but frees no physical memory (the sharer
    // keeps the handle), and privatizing a reused slot consumes pool
    // handles. Discounting every aliased mapping is conservative
    // (some belong to active slots) but keeps admission from
    // promising memory that ensure() can never deliver — optimism
    // here livelocks the admit/preempt cycle under pressure.
    const i64 supply = pool_.availableGroups() +
                       (cached_total - best_cached) -
                       allocator_.aliasedMappings();
    return extra_needed <= supply;
}

i64
VAttention::cachedHandles() const
{
    i64 total = 0;
    for (int slot = 0; slot < config_.max_batch_size; ++slot) {
        if (slots_.state(slot) == SlotState::kCached) {
            total += allocator_.mappedHandles(slot);
        }
    }
    return total;
}

bool
VAttention::checkInvariants() const
{
    audit::AuditReport report;
    auditInto(report);
    return report.ok();
}

void
VAttention::auditInto(audit::AuditReport &report) const
{
    driver_.auditInto(report);
    pool_.auditInto(report);
    allocator_.auditInto(report);
    // Every handle handed out by the pool is mapped somewhere; aliased
    // mappings reuse a handed-out handle rather than consuming one.
    report.check(pool_.groupsInUse() == allocator_.totalHandlesMapped() -
                                            allocator_.aliasedMappings(),
                 "vattention: pool hands out ", pool_.groupsInUse(),
                 " groups but KV tensors map ",
                 allocator_.totalHandlesMapped(), " handles of which ",
                 allocator_.aliasedMappings(), " are aliases");
    // This runtime's driver exists solely to back the KV pool, so the
    // driver-wide byte ledgers must equal what the pool created. A
    // physical allocation made behind the pool (or a pool handle
    // destroyed behind the driver) shows up as drift here.
    report.check(driver_.physBytesInUse() ==
                     static_cast<u64>(pool_.createdGroups()) *
                         pool_.groupBytes(),
                 "vattention: driver owns ", driver_.physBytesInUse(),
                 " physical bytes but the pool created ",
                 pool_.createdGroups(), " groups = ",
                 static_cast<u64>(pool_.createdGroups()) *
                     pool_.groupBytes(),
                 " bytes (an allocation bypassed the pool)");
    report.check(driver_.hostBytesInUse() ==
                     static_cast<u64>(pool_.hostCreatedGroups()) *
                         pool_.groupBytes(),
                 "vattention: driver owns ", driver_.hostBytesInUse(),
                 " pinned host bytes but the pool created ",
                 pool_.hostCreatedGroups(), " host pages = ",
                 static_cast<u64>(pool_.hostCreatedGroups()) *
                     pool_.groupBytes(),
                 " bytes");
    const auto &geom = allocator_.geometry();
    const int nbuf = geom.numBuffers();
    i64 stashed_pages = 0;
    i64 recounted_handles = 0;
    for (int slot = 0; slot < config_.max_batch_size; ++slot) {
        // Free slots hold no mappings (cached/active ones may).
        if (slots_.state(slot) == SlotState::kFree &&
            allocator_.mappedHandles(slot) != 0) {
            report.fail("vattention: free slot ", slot, " still has ",
                        allocator_.mappedHandles(slot),
                        " page-groups mapped (freeReqId must unmap or "
                        "cache)");
        }
        // A host stash belongs to a leased (Active) slot, records the
        // live [lead, end) range of every buffer, and its slot cannot
        // be a prefix source (the KV left the device).
        const auto &stash = stashes_[static_cast<std::size_t>(slot)];
        if (!stash.empty()) {
            if (slots_.state(slot) != SlotState::kActive) {
                report.fail("vattention: slot ", slot,
                            " holds a host stash but is ",
                            toString(slots_.state(slot)),
                            ", not Active");
            }
            if (!chains_[static_cast<std::size_t>(slot)].empty()) {
                report.fail("vattention: swapped-out slot ", slot,
                            " is still registered as a prefix source");
            }
            if (static_cast<i64>(stash.pages.size()) != nbuf ||
                static_cast<i64>(stash.leads.size()) != nbuf) {
                report.fail("vattention: slot ", slot, " stashes ",
                            stash.pages.size(), " buffers / ",
                            stash.leads.size(), " leads, expected ",
                            nbuf, " of each");
            } else {
                i64 live = 0;
                for (int b = 0; b < nbuf; ++b) {
                    const i64 lead =
                        stash.leads[static_cast<std::size_t>(b)];
                    const i64 size = static_cast<i64>(
                        stash.pages[static_cast<std::size_t>(b)]
                            .size());
                    if (lead < 0 || lead + size > stash.groups) {
                        report.fail(
                            "vattention: slot ", slot, " buffer ", b,
                            " stash covers groups [", lead, ", ",
                            lead + size,
                            ") outside the stashed frontier ",
                            stash.groups);
                    }
                    if (!geom.hasWindows() &&
                        (lead != 0 || size != stash.groups)) {
                        report.fail(
                            "vattention: slot ", slot, " buffer ", b,
                            " stash covers [", lead, ", ", lead + size,
                            ") but without window layers every buffer "
                            "must stash [0, ",
                            stash.groups, ")");
                    }
                    live += size;
                    stashed_pages += size;
                }
                if (live != stash.handles) {
                    report.fail("vattention: slot ", slot, " stashes ",
                                live, " host pages but claims ",
                                stash.handles, " live page-groups");
                }
            }
        }
        // A prefix chain never describes more than the slot's intact
        // leading groups hold (a window trim voids the prefix).
        const auto &chain = chains_[static_cast<std::size_t>(slot)];
        if (!chain.empty()) {
            const i64 tpg = geom.tokensPerGroup();
            const i64 covered = geom.groupsForTokens(chain.tokens);
            const i64 prefix = allocator_.prefixGroupsMapped(slot);
            if (slots_.state(slot) == SlotState::kFree ||
                static_cast<i64>(chain.hashes.size()) > prefix ||
                covered > prefix ||
                chain.tokens >
                    (static_cast<i64>(chain.hashes.size()) + 1) * tpg) {
                report.fail("vattention: slot ", slot,
                            " prefix chain (", chain.hashes.size(),
                            " hashes, ", chain.tokens,
                            " tokens) describes more than the slot's ",
                            prefix, " intact prefix groups hold");
            }
        }
        // Per-layer window ledger: a slot last ensured at length len
        // must sit exactly at the canonical layout — lead at the dead
        // boundary, frontier at or past groupsForTokens (the overlap
        // prefetcher may run one group ahead).
        const i64 len = last_seq_lens_[static_cast<std::size_t>(slot)];
        if (slots_.state(slot) == SlotState::kActive && len > 0 &&
            stash.empty()) {
            for (int b = 0; b < nbuf; ++b) {
                const int layer = geom.layerOfBuffer(b);
                const i64 lead = allocator_.bufferLead(slot, b);
                const i64 end = allocator_.bufferEnd(slot, b);
                const i64 want_lead = geom.deadLeadGroups(layer, len);
                const i64 want_end = geom.groupsForTokens(layer, len);
                if (lead != want_lead || end < want_end) {
                    report.fail(
                        "vattention: slot ", slot, " buffer ", b,
                        " (layer ", layer, ") maps groups [", lead,
                        ", ", end, ") but a context of ", len,
                        " tokens requires the window layout [",
                        want_lead, ", >=", want_end, ")");
                }
            }
        }
        for (int b = 0; b < nbuf; ++b) {
            recounted_handles += allocator_.bufferEnd(slot, b) -
                                 allocator_.bufferLead(slot, b);
        }
    }
    // Every host page handed out by the pool is owned by some stash.
    report.check(stashed_pages == pool_.hostGroupsInUse(),
                 "vattention: slots stash ", stashed_pages,
                 " host pages but the pool hands out ",
                 pool_.hostGroupsInUse());
    // The per-buffer [lead, end) ranges re-summed across every slot
    // must reproduce the allocator's handle ledger.
    report.check(recounted_handles == allocator_.totalHandlesMapped(),
                 "vattention: per-buffer ranges recount to ",
                 recounted_handles, " mappings but the allocator's "
                 "ledger says ",
                 allocator_.totalHandlesMapped());
}

} // namespace vattn::core
