#include "core/vattention.hh"

#include <algorithm>

#include "common/logging.hh"

namespace vattn::core
{

namespace
{

u64
resolveBudget(const Config &config, cuvmm::Driver &driver)
{
    if (config.phys_budget_bytes != 0) {
        return config.phys_budget_bytes;
    }
    return driver.device().freePhysBytes();
}

} // namespace

VAttention::VAttention(cuvmm::Driver &driver, const Config &config)
    : driver_(driver), config_(config),
      pool_(driver, config.page_group, resolveBudget(config, driver),
            /*precreate=*/true),
      allocator_(driver, config, pool_),
      slots_(config.max_batch_size),
      last_seq_lens_(static_cast<std::size_t>(config.max_batch_size), 0)
{
    // Reservation + pre-created handles happen before serving starts;
    // none of it is critical-path time.
    stats_.init_ns = driver_.consumeElapsedNs();
}

tensor::VirtualTensor
VAttention::kCache(int layer, int req_id) const
{
    return allocator_.kView(layer, req_id);
}

tensor::VirtualTensor
VAttention::vCache(int layer, int req_id) const
{
    return allocator_.vView(layer, req_id);
}

attn::TensorKvView
VAttention::requestView(int layer, int req_id, bool touch_tlb) const
{
    return attn::TensorKvView(kCache(layer, req_id),
                              vCache(layer, req_id), touch_tlb);
}

Result<int>
VAttention::allocReqId()
{
    // Prefer the cached slot with the most retained page-groups: a new
    // request can then reuse R1's physical memory without any driver
    // calls (Figure 5 (d)-(e)).
    int best = -1;
    i64 best_groups = -1;
    if (config_.deferred_reclamation || config_.eager_allocation) {
        for (int slot : slots_.cachedLruOrder()) {
            const i64 groups = allocator_.groupsMapped(slot);
            if (groups > best_groups) {
                best = slot;
                best_groups = groups;
            }
        }
    }
    if (best >= 0) {
        slots_.activate(best).expectOk("activate cached slot");
        ++stats_.reused_cached_slots;
        return best;
    }
    const int free_slot = slots_.firstFree();
    if (free_slot < 0) {
        return Result<int>(ErrorCode::kOutOfMemory,
                           "all reqIds active (batch full)");
    }
    slots_.activate(free_slot).expectOk("activate free slot");
    return free_slot;
}

Status
VAttention::freeReqId(int req_id)
{
    if (req_id < 0 || req_id >= config_.max_batch_size) {
        return errorStatus(ErrorCode::kInvalidArgument, "bad reqId");
    }
    if (slots_.state(req_id) != SlotState::kActive) {
        return errorStatus(ErrorCode::kFailedPrecondition,
                           "reqId not active");
    }
    last_seq_lens_[static_cast<std::size_t>(req_id)] = 0;
    if (config_.deferred_reclamation &&
        allocator_.groupsMapped(req_id) > 0) {
        return slots_.moveToCached(req_id);
    }
    allocator_.releaseAll(req_id);
    return slots_.moveToFree(req_id);
}

bool
VAttention::stealOneCachedGroup()
{
    for (int victim : slots_.cachedLruOrder()) {
        if (allocator_.groupsMapped(victim) == 0) {
            slots_.moveToFree(victim).expectOk("empty cached slot");
            continue;
        }
        allocator_.shrinkTail(victim).expectOk("reclaim cached group");
        stats_.reclaimed_handles += allocator_.geometry().numBuffers();
        if (allocator_.groupsMapped(victim) == 0) {
            slots_.moveToFree(victim).expectOk("drained cached slot");
        }
        return true;
    }
    return false;
}

Status
VAttention::ensureGroups(int slot, i64 target, i64 *stolen)
{
    while (true) {
        auto status = allocator_.growTo(slot, target);
        if (status.isOk()) {
            return status;
        }
        if (status.code() != ErrorCode::kOutOfMemory) {
            return status;
        }
        if (!stealOneCachedGroup()) {
            return status; // genuinely out of memory
        }
        if (stolen) {
            *stolen += allocator_.geometry().numBuffers();
        }
    }
}

StepStats
VAttention::step(const std::vector<i64> &seq_lens)
{
    StepStats result;
    if (seq_lens.size() !=
        static_cast<std::size_t>(config_.max_batch_size)) {
        result.status = errorStatus(ErrorCode::kInvalidArgument,
                                    "seq_lens size must equal B");
        return result;
    }

    ++stats_.steps;
    driver_.consumeElapsedNs(); // open a fresh accounting window
    const i64 mapped_before = allocator_.totalHandlesMapped();

    for (int slot = 0; slot < config_.max_batch_size; ++slot) {
        const i64 len = seq_lens[static_cast<std::size_t>(slot)];
        if (slots_.state(slot) != SlotState::kActive) {
            if (len != 0) {
                result.status = errorStatus(
                    ErrorCode::kInvalidArgument,
                    "non-zero length for inactive reqId");
                result.critical_ns = driver_.consumeElapsedNs();
                stats_.critical_ns += result.critical_ns;
                return result;
            }
            continue;
        }
        if (len > config_.max_context_len) {
            result.status = errorStatus(
                ErrorCode::kInvalidArgument,
                "context length beyond the model maximum");
            result.critical_ns = driver_.consumeElapsedNs();
            stats_.critical_ns += result.critical_ns;
            return result;
        }
        const i64 target = allocator_.geometry().groupsForTokens(len);
        if (target > allocator_.groupsMapped(slot)) {
            auto status = ensureGroups(slot, target,
                                       &result.handles_stolen);
            if (!status.isOk()) {
                result.status = status;
                result.critical_ns = driver_.consumeElapsedNs();
                stats_.critical_ns += result.critical_ns;
                return result;
            }
        }
    }

    last_seq_lens_ = seq_lens;
    result.handles_mapped =
        allocator_.totalHandlesMapped() - mapped_before +
        result.handles_stolen;
    result.critical_ns = driver_.consumeElapsedNs();
    stats_.sync_handles += result.handles_mapped;
    stats_.critical_ns += result.critical_ns;
    return result;
}

TimeNs
VAttention::mapAllBuffersCost() const
{
    return driver_.latency().mapGroupCost(config_.page_group) *
           static_cast<u64>(allocator_.geometry().numBuffers());
}

void
VAttention::computePhase(TimeNs window_ns)
{
    background_.beginWindow(window_ns);
    driver_.consumeElapsedNs();
    const i64 mapped_before = allocator_.totalHandlesMapped();
    bool window_open = true;

    // (1) Decode prefetch: each active request will need at most one
    // more group per buffer next iteration (§6.1.1).
    if (config_.overlap_allocation) {
        for (int slot = 0;
             window_open && slot < config_.max_batch_size; ++slot) {
            if (slots_.state(slot) != SlotState::kActive) {
                continue;
            }
            const i64 len =
                last_seq_lens_[static_cast<std::size_t>(slot)];
            if (len <= 0 || len >= config_.max_context_len) {
                continue;
            }
            const i64 target =
                allocator_.geometry().groupsForTokens(len + 1);
            while (window_open &&
                   allocator_.groupsMapped(slot) < target) {
                // Gate on the estimated cost first: a real background
                // thread that runs out of iteration time simply leaves
                // the work for the next step()'s critical path.
                if (!background_.tryConsume(mapAllBuffersCost())) {
                    window_open = false;
                    break;
                }
                if (!ensureGroups(slot,
                                  allocator_.groupsMapped(slot) + 1,
                                  nullptr)
                         .isOk()) {
                    window_open = false;
                    break;
                }
            }
        }
    }

    // (2) Eager allocation: keep ONE inactive reqId pre-mapped with a
    // few groups so a fresh prefill starts without driver calls. If a
    // cached slot (deferred reclamation or a previous warm slot)
    // already holds mappings, the next request reuses it and nothing
    // needs to be warmed.
    if (config_.eager_allocation && window_open) {
        bool have_warm = false;
        for (int slot : slots_.cachedLruOrder()) {
            if (allocator_.groupsMapped(slot) > 0) {
                have_warm = true;
                break;
            }
        }
        const int warm = have_warm ? -1 : slots_.firstFree();
        const i64 eager_target =
            std::min(config_.eager_groups,
                     allocator_.geometry().maxGroupsPerRequest());
        if (warm >= 0 && eager_target > 0) {
            bool warmed = false;
            while (window_open &&
                   allocator_.groupsMapped(warm) < eager_target &&
                   pool_.availableGroups() >=
                       allocator_.geometry().numBuffers()) {
                if (!background_.tryConsume(mapAllBuffersCost())) {
                    window_open = false;
                    break;
                }
                if (!allocator_
                         .growTo(warm,
                                 allocator_.groupsMapped(warm) + 1)
                         .isOk()) {
                    break;
                }
                warmed = true;
            }
            if (warmed) {
                // The warm slot now holds mappings: park it with the
                // cached slots so allocReqId can hand it out.
                slots_.cacheFreeSlot(warm).expectOk("cache warm slot");
            }
        }
    }

    // (3) Watermark reclamation: when the pool of uncommitted groups
    // runs low, trim cached slots in the background instead of paying
    // the unmap latency at allocation time (§6.1.2).
    if (config_.deferred_reclamation && window_open) {
        const i64 watermark = static_cast<i64>(
            config_.reclaim_low_watermark *
            static_cast<double>(pool_.totalGroups()));
        const TimeNs reclaim_cost =
            driver_.latency().unmapGroupCost(config_.page_group) *
            static_cast<u64>(allocator_.geometry().numBuffers());
        while (window_open && pool_.availableGroups() < watermark &&
               cachedHandles() > 0) {
            if (!background_.tryConsume(reclaim_cost)) {
                window_open = false;
                break;
            }
            if (!stealOneCachedGroup()) {
                break;
            }
        }
    }

    stats_.background_handles +=
        std::max<i64>(0, allocator_.totalHandlesMapped() - mapped_before);
    stats_.background_ns += driver_.consumeElapsedNs();
}

bool
VAttention::canAllocate(i64 prompt_tokens) const
{
    if (slots_.numFree() == 0 && slots_.numCached() == 0) {
        return false;
    }
    const auto &geom = allocator_.geometry();
    const i64 need = geom.groupsForTokens(prompt_tokens);
    if (need > geom.maxGroupsPerRequest()) {
        return false;
    }

    i64 best_cached = 0;
    i64 cached_total = 0;
    for (int slot = 0; slot < config_.max_batch_size; ++slot) {
        if (slots_.state(slot) == SlotState::kCached) {
            const i64 groups = allocator_.groupsMapped(slot);
            cached_total += groups;
            best_cached = std::max(best_cached, groups);
        }
    }
    if (slots_.numFree() == 0 && slots_.numCached() == 0) {
        return false;
    }
    const i64 nbuf = geom.numBuffers();
    const i64 extra_needed = std::max<i64>(0, need - best_cached) * nbuf;
    const i64 supply = pool_.availableGroups() +
                       (cached_total - best_cached) * nbuf;
    return extra_needed <= supply;
}

i64
VAttention::cachedHandles() const
{
    i64 total = 0;
    for (int slot = 0; slot < config_.max_batch_size; ++slot) {
        if (slots_.state(slot) == SlotState::kCached) {
            total += allocator_.groupsMapped(slot);
        }
    }
    return total * allocator_.geometry().numBuffers();
}

bool
VAttention::checkInvariants() const
{
    if (!allocator_.checkInvariants()) {
        return false;
    }
    // Every handle handed out by the pool is mapped somewhere.
    if (pool_.groupsInUse() != allocator_.totalHandlesMapped()) {
        return false;
    }
    // Free slots hold no mappings (cached/active ones may).
    for (int slot = 0; slot < config_.max_batch_size; ++slot) {
        if (slots_.state(slot) == SlotState::kFree &&
            allocator_.groupsMapped(slot) != 0) {
            return false;
        }
    }
    return true;
}

} // namespace vattn::core
