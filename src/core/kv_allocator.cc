#include "core/kv_allocator.hh"

#include "common/logging.hh"

namespace vattn::core
{

KvAllocator::KvAllocator(cuvmm::Driver &driver, const Config &config,
                         PagePool &pool)
    : driver_(driver), config_(config), geom_(config), pool_(pool),
      use_cu_path_(config.page_group == PageGroup::k2MB),
      slots_(static_cast<std::size_t>(config.max_batch_size))
{
    config_.validate().expectOk("KvAllocator config");

    const int nbuf = geom_.numBuffers();
    const u64 buf_bytes = geom_.bufferBytes();
    buffer_base_.reserve(static_cast<std::size_t>(nbuf));
    for (int b = 0; b < nbuf; ++b) {
        Addr base = 0;
        cuvmm::CuResult r;
        if (use_cu_path_) {
            r = driver_.cuMemAddressReserve(&base, buf_bytes,
                                            geom_.groupBytes());
        } else {
            r = driver_.vMemReserve(&base, buf_bytes,
                                    geom_.groupBytes());
        }
        fatal_if(r != cuvmm::CuResult::kSuccess,
                 "virtual buffer reservation failed: ",
                 cuvmm::toString(r), " (buffer ", b, " of ", nbuf,
                 ", ", buf_bytes, " bytes)");
        buffer_base_.push_back(base);
    }

    // Build the full-batch tensor views.
    const auto dtype = config_.dtype();
    const i64 batch = config_.max_batch_size;
    const i64 len = config_.max_context_len;
    const i64 heads = config_.num_kv_heads;
    const i64 dim = config_.head_dim;
    const i64 layers = config_.num_layers;
    const i64 batch_stride = static_cast<i64>(
        geom_.perRequestBytesAligned() /
        static_cast<u64>(config_.bytes_per_elem));

    layer_tensors_.reserve(static_cast<std::size_t>(layers));
    if (config_.tensor_slicing) {
        // One [B, L, N, H, D] tensor per K/V; per-layer tensors are
        // strided slices of it.
        tensor::Layout big;
        big.shape = tensor::Shape{batch, len, layers, heads, dim};
        big.strides = {batch_stride, layers * heads * dim, heads * dim,
                       dim, 1};
        big.offset = 0;
        tensor::VirtualTensor k_big(&driver_.device(), buffer_base_[0],
                                    big, dtype);
        tensor::VirtualTensor v_big(&driver_.device(), buffer_base_[1],
                                    big, dtype);
        for (i64 layer = 0; layer < layers; ++layer) {
            layer_tensors_.push_back(LayerKv{
                k_big.slice(2, layer, 1).squeeze(2),
                v_big.slice(2, layer, 1).squeeze(2),
            });
        }
    } else {
        tensor::Layout per_layer;
        per_layer.shape = tensor::Shape{batch, len, heads, dim};
        per_layer.strides = {batch_stride, heads * dim, dim, 1};
        per_layer.offset = 0;
        for (i64 layer = 0; layer < layers; ++layer) {
            const auto kb = static_cast<std::size_t>(
                kBuffer(static_cast<int>(layer)));
            const auto vb = static_cast<std::size_t>(
                vBuffer(static_cast<int>(layer)));
            layer_tensors_.push_back(LayerKv{
                tensor::VirtualTensor(&driver_.device(),
                                      buffer_base_[kb], per_layer,
                                      dtype),
                tensor::VirtualTensor(&driver_.device(),
                                      buffer_base_[vb], per_layer,
                                      dtype),
            });
        }
    }

    for (auto &slot : slots_) {
        slot.handles.resize(static_cast<std::size_t>(nbuf));
    }
}

KvAllocator::~KvAllocator()
{
    for (int slot = 0; slot < config_.max_batch_size; ++slot) {
        releaseAll(slot);
    }
    const u64 buf_bytes = geom_.bufferBytes();
    for (Addr base : buffer_base_) {
        if (use_cu_path_) {
            driver_.cuMemAddressFree(base, buf_bytes);
        } else {
            driver_.vMemFree(base, buf_bytes);
        }
    }
}

int
KvAllocator::kBuffer(int layer) const
{
    return config_.tensor_slicing ? 0 : layer;
}

int
KvAllocator::vBuffer(int layer) const
{
    return config_.tensor_slicing ? 1 : config_.num_layers + layer;
}

Addr
KvAllocator::groupVa(int buffer, int slot, i64 group) const
{
    return buffer_base_[static_cast<std::size_t>(buffer)] +
           static_cast<u64>(slot) * geom_.perRequestBytesAligned() +
           static_cast<u64>(group) * geom_.groupBytes();
}

tensor::VirtualTensor
KvAllocator::kView(int layer, int slot) const
{
    return layer_tensors_[static_cast<std::size_t>(layer)]
        .k.slice(0, slot, 1)
        .squeeze(0);
}

tensor::VirtualTensor
KvAllocator::vView(int layer, int slot) const
{
    return layer_tensors_[static_cast<std::size_t>(layer)]
        .v.slice(0, slot, 1)
        .squeeze(0);
}

i64
KvAllocator::groupsMapped(int slot) const
{
    return slots_[static_cast<std::size_t>(slot)].groups;
}

Status
KvAllocator::mapOne(int buffer, int slot, i64 group,
                    cuvmm::MemHandle handle)
{
    const Addr va = groupVa(buffer, slot, group);
    if (use_cu_path_) {
        auto r = driver_.cuMemMap(va, geom_.groupBytes(), 0, handle);
        if (r != cuvmm::CuResult::kSuccess) {
            return errorStatus(ErrorCode::kFailedPrecondition,
                               cuvmm::toString(r));
        }
        r = driver_.cuMemSetAccess(va, geom_.groupBytes());
        if (r != cuvmm::CuResult::kSuccess) {
            return errorStatus(ErrorCode::kFailedPrecondition,
                               cuvmm::toString(r));
        }
        return Status::ok();
    }
    const auto r = driver_.vMemMap(va, handle);
    if (r != cuvmm::CuResult::kSuccess) {
        return errorStatus(ErrorCode::kFailedPrecondition,
                           cuvmm::toString(r));
    }
    return Status::ok();
}

void
KvAllocator::unmapOne(int buffer, int slot, i64 group)
{
    auto &mappings = slots_[static_cast<std::size_t>(slot)];
    auto &list = mappings.handles[static_cast<std::size_t>(buffer)];
    const cuvmm::MemHandle handle =
        list[static_cast<std::size_t>(group)];
    const Addr va = groupVa(buffer, slot, group);
    if (pool_.refCount(handle) > 1) {
        // The handle is aliased into another slot (prefix sharing):
        // drop only this VA's mapping; the physical group lives on.
        const auto r = use_cu_path_
                           ? driver_.cuMemUnmap(va, geom_.groupBytes())
                           : driver_.vMemUnmap(va);
        panic_if(r != cuvmm::CuResult::kSuccess,
                 "aliased unmap failed: ", cuvmm::toString(r));
        pool_.dropShared(handle);
        --aliased_mappings_;
    } else if (use_cu_path_) {
        // Stock path: unmap but keep the physical handle pooled.
        const auto r = driver_.cuMemUnmap(va, geom_.groupBytes());
        panic_if(r != cuvmm::CuResult::kSuccess,
                 "cuMemUnmap failed: ", cuvmm::toString(r));
        pool_.release(handle);
    } else {
        // Extension path: vMemRelease fuses unmap + free; the handle
        // is destroyed and the budget slot becomes creatable again.
        const auto r = driver_.vMemRelease(handle);
        panic_if(r != cuvmm::CuResult::kSuccess,
                 "vMemRelease failed: ", cuvmm::toString(r));
        pool_.releaseDestroyed(handle);
    }
    list[static_cast<std::size_t>(group)] = cuvmm::kInvalidHandle;
}

Status
KvAllocator::growTo(int slot, i64 target_groups)
{
    panic_if(slot < 0 || slot >= config_.max_batch_size,
             "slot out of range");
    auto &mappings = slots_[static_cast<std::size_t>(slot)];
    panic_if(target_groups > geom_.maxGroupsPerRequest(),
             "growTo beyond the max context length");

    const int nbuf = geom_.numBuffers();
    while (mappings.groups < target_groups) {
        const i64 group = mappings.groups;
        // Acquire + map the group on every buffer; only then commit.
        int mapped = 0;
        Status failure;
        for (int b = 0; b < nbuf; ++b) {
            auto handle = pool_.acquire();
            if (!handle.isOk()) {
                failure = handle.status();
                break;
            }
            auto status = mapOne(b, slot, group, handle.value());
            status.expectOk("page-group map");
            mappings.handles[static_cast<std::size_t>(b)].push_back(
                handle.value());
            ++mapped;
        }
        if (mapped < nbuf) {
            // Roll the partially mapped group back so every buffer
            // keeps the same group count.
            for (int b = mapped - 1; b >= 0; --b) {
                unmapOne(b, slot, group);
                mappings.handles[static_cast<std::size_t>(b)].pop_back();
            }
            return failure;
        }
        ++mappings.groups;
    }
    return Status::ok();
}

Status
KvAllocator::aliasFrom(int dst, int src, i64 groups)
{
    panic_if(dst < 0 || dst >= config_.max_batch_size ||
                 src < 0 || src >= config_.max_batch_size,
             "slot out of range");
    if (dst == src) {
        return errorStatus(ErrorCode::kInvalidArgument,
                           "aliasFrom onto the source slot");
    }
    auto &dst_map = slots_[static_cast<std::size_t>(dst)];
    const auto &src_map = slots_[static_cast<std::size_t>(src)];
    if (dst_map.groups != 0) {
        return errorStatus(ErrorCode::kFailedPrecondition,
                           "aliasFrom onto a slot with mappings");
    }
    if (groups <= 0 || groups > src_map.groups) {
        return errorStatus(ErrorCode::kInvalidArgument,
                           "aliasFrom beyond the source's groups");
    }
    const int nbuf = geom_.numBuffers();
    for (i64 group = 0; group < groups; ++group) {
        for (int b = 0; b < nbuf; ++b) {
            const cuvmm::MemHandle handle =
                src_map.handles[static_cast<std::size_t>(b)]
                               [static_cast<std::size_t>(group)];
            pool_.addRef(handle);
            mapOne(b, dst, group, handle).expectOk("alias map");
            dst_map.handles[static_cast<std::size_t>(b)].push_back(
                handle);
            ++aliased_mappings_;
        }
        ++dst_map.groups;
    }
    return Status::ok();
}

cuvmm::MemHandle
KvAllocator::handleAt(int slot, int buffer, i64 group) const
{
    const auto &mappings = slots_[static_cast<std::size_t>(slot)];
    return mappings.handles[static_cast<std::size_t>(buffer)]
                           [static_cast<std::size_t>(group)];
}

bool
KvAllocator::hasSharedGroups(int slot) const
{
    if (aliased_mappings_ == 0) {
        return false; // nothing anywhere is shared
    }
    const auto &mappings = slots_[static_cast<std::size_t>(slot)];
    for (const auto &list : mappings.handles) {
        for (const cuvmm::MemHandle handle : list) {
            if (pool_.refCount(handle) > 1) {
                return true;
            }
        }
    }
    return false;
}

void
KvAllocator::privatizeFrom(int slot, i64 from_group)
{
    if (aliased_mappings_ == 0) {
        return; // nothing anywhere is shared
    }
    auto &mappings = slots_[static_cast<std::size_t>(slot)];
    const int nbuf = geom_.numBuffers();
    for (i64 group = from_group; group < mappings.groups; ++group) {
        for (int b = 0; b < nbuf; ++b) {
            auto &list =
                mappings.handles[static_cast<std::size_t>(b)];
            const cuvmm::MemHandle handle =
                list[static_cast<std::size_t>(group)];
            if (pool_.refCount(handle) <= 1) {
                continue;
            }
            auto fresh = pool_.acquire();
            if (!fresh.isOk()) {
                // No replacement available: drop the tail down to
                // this group (losing retained capacity, never
                // correctness). unmapOne handles the mixed
                // private/shared rows.
                while (mappings.groups > group) {
                    shrinkTail(slot).expectOk("privatize shrink");
                }
                return;
            }
            const Addr va = groupVa(b, slot, group);
            const auto r = use_cu_path_
                               ? driver_.cuMemUnmap(va,
                                                    geom_.groupBytes())
                               : driver_.vMemUnmap(va);
            panic_if(r != cuvmm::CuResult::kSuccess,
                     "privatize unmap failed: ", cuvmm::toString(r));
            pool_.dropShared(handle);
            --aliased_mappings_;
            mapOne(b, slot, group, fresh.value())
                .expectOk("privatize map");
            list[static_cast<std::size_t>(group)] = fresh.value();
        }
    }
}

Status
KvAllocator::shrinkTail(int slot)
{
    auto &mappings = slots_[static_cast<std::size_t>(slot)];
    if (mappings.groups == 0) {
        return errorStatus(ErrorCode::kFailedPrecondition,
                           "slot has no mapped groups");
    }
    const i64 group = mappings.groups - 1;
    const int nbuf = geom_.numBuffers();
    for (int b = 0; b < nbuf; ++b) {
        unmapOne(b, slot, group);
        mappings.handles[static_cast<std::size_t>(b)].pop_back();
    }
    --mappings.groups;
    return Status::ok();
}

void
KvAllocator::releaseAll(int slot)
{
    auto &mappings = slots_[static_cast<std::size_t>(slot)];
    while (mappings.groups > 0) {
        shrinkTail(slot).expectOk("releaseAll");
    }
}

i64
KvAllocator::totalHandlesMapped() const
{
    i64 total = 0;
    for (const auto &slot : slots_) {
        total += slot.groups;
    }
    return total * geom_.numBuffers();
}

u64
KvAllocator::physBytesMapped() const
{
    // Aliased mappings share one physical group: count it once.
    return static_cast<u64>(totalHandlesMapped() - aliased_mappings_) *
           geom_.groupBytes();
}

bool
KvAllocator::checkInvariants() const
{
    audit::AuditReport report;
    auditInto(report);
    return report.ok();
}

void
KvAllocator::auditInto(audit::AuditReport &report) const
{
    const int nbuf = geom_.numBuffers();
    /** Times each physical handle appears across all slot tables. */
    std::unordered_map<cuvmm::MemHandle, i64> mapping_counts;
    for (int slot = 0; slot < config_.max_batch_size; ++slot) {
        const auto &mappings = slots_[static_cast<std::size_t>(slot)];
        for (int b = 0; b < nbuf; ++b) {
            const auto &list =
                mappings.handles[static_cast<std::size_t>(b)];
            if (static_cast<i64>(list.size()) != mappings.groups) {
                report.fail("kv_allocator: slot ", slot, " buffer ", b,
                            " holds ", list.size(),
                            " handles but the slot claims ",
                            mappings.groups,
                            " groups (buffers must grow in lockstep)");
            }
            for (const cuvmm::MemHandle handle : list) {
                ++mapping_counts[handle];
            }
            // Mapped region must be accessible; the byte after must
            // not be mapped.
            if (mappings.groups > 0 &&
                !driver_.device().pageTable().isAccessible(
                    groupVa(b, slot, 0),
                    static_cast<u64>(mappings.groups) *
                        geom_.groupBytes())) {
                report.fail("kv_allocator: slot ", slot, " buffer ", b,
                            " claims ", mappings.groups,
                            " mapped groups but the range is not "
                            "RW-accessible in the page table");
            }
        }
    }
    // Cross-layer per-handle equality: this allocator's mapping count
    // == pool refcount == driver mapping count. A pool reference
    // without a mapping (leaked addRef) or a driver mapping without a
    // pool reference (alias created behind the allocator) both break
    // it with a distinct imbalance.
    i64 aliased = 0;
    for (const auto &[handle, count] : mapping_counts) {
        aliased += count - 1;
        const int refs = pool_.refCount(handle);
        if (refs != static_cast<int>(count)) {
            report.fail("kv_allocator: handle ", handle, " mapped ",
                        count, " time(s) but the pool holds ", refs,
                        " reference(s) — a reference was taken or "
                        "dropped without a matching (un)map");
        }
        const std::size_t driver_maps = driver_.numMappings(handle);
        if (driver_maps != static_cast<std::size_t>(count)) {
            report.fail("kv_allocator: handle ", handle, " mapped ",
                        count, " time(s) in KV tensors but ",
                        driver_maps, " time(s) in the driver — a "
                        "mapping was created or destroyed behind the "
                        "allocator");
        }
    }
    report.check(aliased == aliased_mappings_,
                 "kv_allocator: aliased-mappings ledger is ",
                 aliased_mappings_, " but per-handle counts show ",
                 aliased, " mappings beyond one per handle");
}

} // namespace vattn::core
