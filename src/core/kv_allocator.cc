#include "core/kv_allocator.hh"

#include <algorithm>
#include <limits>

#include "common/logging.hh"

namespace vattn::core
{

KvAllocator::KvAllocator(cuvmm::Driver &driver, const Config &config,
                         PagePool &pool)
    : driver_(driver), config_(config), geom_(config), pool_(pool),
      use_cu_path_(config.page_group == PageGroup::k2MB),
      slots_(static_cast<std::size_t>(config.max_batch_size))
{
    config_.validate().expectOk("KvAllocator config");

    const int nbuf = geom_.numBuffers();
    buffer_base_.reserve(static_cast<std::size_t>(nbuf));
    for (int b = 0; b < nbuf; ++b) {
        const u64 buf_bytes = geom_.bufferBytesFor(b);
        Addr base = 0;
        cuvmm::CuResult r;
        if (use_cu_path_) {
            r = driver_.cuMemAddressReserve(&base, buf_bytes,
                                            geom_.groupBytes());
        } else {
            r = driver_.vMemReserve(&base, buf_bytes,
                                    geom_.groupBytes());
        }
        fatal_if(r != cuvmm::CuResult::kSuccess,
                 "virtual buffer reservation failed: ",
                 cuvmm::toString(r), " (buffer ", b, " of ", nbuf,
                 ", ", buf_bytes, " bytes)");
        buffer_base_.push_back(base);
    }

    // Build the full-batch tensor views.
    const i64 batch = config_.max_batch_size;
    const i64 len = config_.max_context_len;
    const i64 layers = config_.num_layers;

    layer_tensors_.reserve(static_cast<std::size_t>(layers));
    if (config_.tensor_slicing) {
        // One [B, L, N, H, D] tensor per K/V; per-layer tensors are
        // strided slices of it. (Slicing requires uniform layers.)
        const auto dtype = config_.dtype();
        const i64 heads = config_.num_kv_heads;
        const i64 dim = config_.head_dim;
        const i64 batch_stride = static_cast<i64>(
            geom_.perRequestBytesAligned(0) /
            static_cast<u64>(config_.bytes_per_elem));
        tensor::Layout big;
        big.shape = tensor::Shape{batch, len, layers, heads, dim};
        big.strides = {batch_stride, layers * heads * dim, heads * dim,
                       dim, 1};
        big.offset = 0;
        tensor::VirtualTensor k_big(&driver_.device(), buffer_base_[0],
                                    big, dtype);
        tensor::VirtualTensor v_big(&driver_.device(), buffer_base_[1],
                                    big, dtype);
        for (i64 layer = 0; layer < layers; ++layer) {
            layer_tensors_.push_back(LayerKv{
                k_big.slice(2, layer, 1).squeeze(2),
                v_big.slice(2, layer, 1).squeeze(2),
            });
        }
    } else {
        for (i64 layer = 0; layer < layers; ++layer) {
            const LayerKvSpec spec =
                config_.layerSpec(static_cast<int>(layer));
            const auto dtype = spec.bytes_per_elem == 4
                                   ? tensor::DType::kF32
                                   : tensor::DType::kF16;
            const i64 heads = spec.kv_heads;
            const i64 dim = spec.head_dim;
            const i64 batch_stride = static_cast<i64>(
                geom_.perRequestBytesAligned(static_cast<int>(layer)) /
                static_cast<u64>(spec.bytes_per_elem));
            tensor::Layout per_layer;
            per_layer.shape = tensor::Shape{batch, len, heads, dim};
            per_layer.strides = {batch_stride, heads * dim, dim, 1};
            per_layer.offset = 0;
            const auto kb = static_cast<std::size_t>(
                kBuffer(static_cast<int>(layer)));
            const auto vb = static_cast<std::size_t>(
                vBuffer(static_cast<int>(layer)));
            layer_tensors_.push_back(LayerKv{
                tensor::VirtualTensor(&driver_.device(),
                                      buffer_base_[kb], per_layer,
                                      dtype),
                tensor::VirtualTensor(&driver_.device(),
                                      buffer_base_[vb], per_layer,
                                      dtype),
            });
        }
    }

    for (auto &slot : slots_) {
        slot.buffers.resize(static_cast<std::size_t>(nbuf));
    }
}

KvAllocator::~KvAllocator()
{
    for (int slot = 0; slot < config_.max_batch_size; ++slot) {
        releaseAll(slot);
    }
    for (int b = 0; b < geom_.numBuffers(); ++b) {
        const Addr base = buffer_base_[static_cast<std::size_t>(b)];
        const u64 buf_bytes = geom_.bufferBytesFor(b);
        if (use_cu_path_) {
            driver_.cuMemAddressFree(base, buf_bytes);
        } else {
            driver_.vMemFree(base, buf_bytes);
        }
    }
}

int
KvAllocator::kBuffer(int layer) const
{
    return config_.tensor_slicing ? 0 : layer;
}

int
KvAllocator::vBuffer(int layer) const
{
    return config_.tensor_slicing ? 1 : config_.num_layers + layer;
}

Addr
KvAllocator::groupVa(int buffer, int slot, i64 group) const
{
    return buffer_base_[static_cast<std::size_t>(buffer)] +
           static_cast<u64>(slot) *
               geom_.perRequestBytesAligned(
                   geom_.layerOfBuffer(buffer)) +
           static_cast<u64>(group) * geom_.groupBytes();
}

tensor::VirtualTensor
KvAllocator::kView(int layer, int slot) const
{
    return layer_tensors_[static_cast<std::size_t>(layer)]
        .k.slice(0, slot, 1)
        .squeeze(0);
}

tensor::VirtualTensor
KvAllocator::vView(int layer, int slot) const
{
    return layer_tensors_[static_cast<std::size_t>(layer)]
        .v.slice(0, slot, 1)
        .squeeze(0);
}

i64
KvAllocator::groupsMapped(int slot) const
{
    const auto &mappings = slots_[static_cast<std::size_t>(slot)];
    i64 frontier = 0;
    for (const BufferMappings &buffer : mappings.buffers) {
        frontier = std::max(frontier, buffer.end());
    }
    return frontier;
}

i64
KvAllocator::mappedHandles(int slot) const
{
    const auto &mappings = slots_[static_cast<std::size_t>(slot)];
    i64 total = 0;
    for (const BufferMappings &buffer : mappings.buffers) {
        total += buffer.mapped();
    }
    return total;
}

i64
KvAllocator::bufferLead(int slot, int buffer) const
{
    return slots_[static_cast<std::size_t>(slot)]
        .buffers[static_cast<std::size_t>(buffer)]
        .lead;
}

i64
KvAllocator::bufferEnd(int slot, int buffer) const
{
    return slots_[static_cast<std::size_t>(slot)]
        .buffers[static_cast<std::size_t>(buffer)]
        .end();
}

i64
KvAllocator::prefixGroupsMapped(int slot) const
{
    const auto &mappings = slots_[static_cast<std::size_t>(slot)];
    i64 prefix = std::numeric_limits<i64>::max();
    for (const BufferMappings &buffer : mappings.buffers) {
        prefix = std::min(prefix,
                          buffer.lead > 0 ? i64{0} : buffer.end());
    }
    return prefix;
}

Status
KvAllocator::mapOne(int buffer, int slot, i64 group,
                    cuvmm::MemHandle handle)
{
    const Addr va = groupVa(buffer, slot, group);
    if (use_cu_path_) {
        auto r = driver_.cuMemMap(va, geom_.groupBytes(), 0, handle);
        if (r != cuvmm::CuResult::kSuccess) {
            return errorStatus(ErrorCode::kFailedPrecondition,
                               cuvmm::toString(r));
        }
        r = driver_.cuMemSetAccess(va, geom_.groupBytes());
        if (r != cuvmm::CuResult::kSuccess) {
            return errorStatus(ErrorCode::kFailedPrecondition,
                               cuvmm::toString(r));
        }
        return Status::ok();
    }
    const auto r = driver_.vMemMap(va, handle);
    if (r != cuvmm::CuResult::kSuccess) {
        return errorStatus(ErrorCode::kFailedPrecondition,
                           cuvmm::toString(r));
    }
    return Status::ok();
}

void
KvAllocator::unmapOne(int buffer, int slot, i64 group)
{
    auto &mappings = slots_[static_cast<std::size_t>(slot)];
    auto &list = mappings.buffers[static_cast<std::size_t>(buffer)]
                     .handles;
    const cuvmm::MemHandle handle =
        list[static_cast<std::size_t>(group)];
    const Addr va = groupVa(buffer, slot, group);
    if (pool_.refCount(handle) > 1) {
        // The handle is aliased into another slot (prefix sharing):
        // drop only this VA's mapping; the physical group lives on.
        const auto r = use_cu_path_
                           ? driver_.cuMemUnmap(va, geom_.groupBytes())
                           : driver_.vMemUnmap(va);
        panic_if(r != cuvmm::CuResult::kSuccess,
                 "aliased unmap failed: ", cuvmm::toString(r));
        pool_.dropShared(handle);
        --aliased_mappings_;
    } else if (use_cu_path_) {
        // Stock path: unmap but keep the physical handle pooled.
        const auto r = driver_.cuMemUnmap(va, geom_.groupBytes());
        panic_if(r != cuvmm::CuResult::kSuccess,
                 "cuMemUnmap failed: ", cuvmm::toString(r));
        pool_.release(handle);
    } else {
        // Extension path: vMemRelease fuses unmap + free; the handle
        // is destroyed and the budget slot becomes creatable again.
        const auto r = driver_.vMemRelease(handle);
        panic_if(r != cuvmm::CuResult::kSuccess,
                 "vMemRelease failed: ", cuvmm::toString(r));
        pool_.releaseDestroyed(handle);
    }
    list[static_cast<std::size_t>(group)] = cuvmm::kInvalidHandle;
}

Status
KvAllocator::growRows(int slot, const std::vector<i64> &targets,
                      i64 max_rows)
{
    auto &mappings = slots_[static_cast<std::size_t>(slot)];
    const int nbuf = geom_.numBuffers();
    for (int b = 0; b < nbuf; ++b) {
        panic_if(targets[static_cast<std::size_t>(b)] >
                     geom_.maxGroupsPerRequest(geom_.layerOfBuffer(b)),
                 "grow beyond the max context length");
    }
    i64 rows = 0;
    while (max_rows < 0 || rows < max_rows) {
        // The lowest group index any buffer still needs.
        i64 group = std::numeric_limits<i64>::max();
        for (int b = 0; b < nbuf; ++b) {
            const BufferMappings &buffer =
                mappings.buffers[static_cast<std::size_t>(b)];
            if (buffer.end() < targets[static_cast<std::size_t>(b)]) {
                group = std::min(group, buffer.end());
            }
        }
        if (group == std::numeric_limits<i64>::max()) {
            break;
        }
        // Acquire + map the group on every buffer whose frontier is
        // here; only then commit the row.
        std::vector<int> &row = row_scratch_;
        row.clear();
        Status failure;
        for (int b = 0; b < nbuf; ++b) {
            BufferMappings &buffer =
                mappings.buffers[static_cast<std::size_t>(b)];
            if (buffer.end() != group ||
                buffer.end() >= targets[static_cast<std::size_t>(b)]) {
                continue;
            }
            auto handle = pool_.acquire();
            if (!handle.isOk()) {
                failure = handle.status();
                break;
            }
            auto status = mapOne(b, slot, group, handle.value());
            status.expectOk("page-group map");
            buffer.handles.push_back(handle.value());
            ++total_mapped_;
            row.push_back(b);
        }
        if (!failure.isOk()) {
            // Roll the partially mapped row back so the slot stays at
            // a consistent frontier.
            for (auto it = row.rbegin(); it != row.rend(); ++it) {
                unmapOne(*it, slot, group);
                mappings.buffers[static_cast<std::size_t>(*it)]
                    .handles.pop_back();
                --total_mapped_;
            }
            return failure;
        }
        ++rows;
    }
    return Status::ok();
}

Status
KvAllocator::growTo(int slot, i64 target_groups)
{
    panic_if(slot < 0 || slot >= config_.max_batch_size,
             "slot out of range");
    targets_scratch_.assign(
        static_cast<std::size_t>(geom_.numBuffers()), target_groups);
    return growRows(slot, targets_scratch_, -1);
}

void
KvAllocator::advanceLead(int slot, int buffer, i64 target_lead)
{
    auto &state = slots_[static_cast<std::size_t>(slot)]
                      .buffers[static_cast<std::size_t>(buffer)];
    const i64 stop = std::min(target_lead, state.end());
    while (state.lead < stop) {
        unmapOne(buffer, slot, state.lead);
        ++state.lead;
        --total_mapped_;
    }
    if (state.mapped() == 0 && state.end() < target_lead) {
        // Everything mapped (if anything) was dead — a fresh long
        // prompt, or a recycled warm slot whose leftover groups all
        // sat below the window. Skip the rest of the dead region
        // without ever mapping it; stopping at the old end would make
        // growth map the dead groups [end, target_lead).
        state.handles.resize(static_cast<std::size_t>(target_lead),
                             cuvmm::kInvalidHandle);
        state.lead = target_lead;
    }
}

Status
KvAllocator::ensureTokens(int slot, i64 tokens)
{
    panic_if(slot < 0 || slot >= config_.max_batch_size,
             "slot out of range");
    const int nbuf = geom_.numBuffers();
    std::vector<i64> &targets = targets_scratch_;
    targets.assign(static_cast<std::size_t>(nbuf), 0);
    for (int b = 0; b < nbuf; ++b) {
        const int layer = geom_.layerOfBuffer(b);
        advanceLead(slot, b, geom_.deadLeadGroups(layer, tokens));
        targets[static_cast<std::size_t>(b)] =
            geom_.groupsForTokens(layer, tokens);
    }
    return growRows(slot, targets, -1);
}

bool
KvAllocator::needsEnsureTokens(int slot, i64 tokens) const
{
    const auto &mappings = slots_[static_cast<std::size_t>(slot)];
    for (int b = 0; b < geom_.numBuffers(); ++b) {
        const BufferMappings &buffer =
            mappings.buffers[static_cast<std::size_t>(b)];
        const int layer = geom_.layerOfBuffer(b);
        if (buffer.end() < geom_.groupsForTokens(layer, tokens)) {
            return true;
        }
        const i64 target_lead = geom_.deadLeadGroups(layer, tokens);
        if (buffer.lead < std::min(target_lead, buffer.end())) {
            return true;
        }
    }
    return false;
}

bool
KvAllocator::needsGrowthForTokens(int slot, i64 tokens) const
{
    const auto &mappings = slots_[static_cast<std::size_t>(slot)];
    for (int b = 0; b < geom_.numBuffers(); ++b) {
        const int layer = geom_.layerOfBuffer(b);
        if (mappings.buffers[static_cast<std::size_t>(b)].end() <
            geom_.groupsForTokens(layer, tokens)) {
            return true;
        }
    }
    return false;
}

Status
KvAllocator::growOneRowForTokens(int slot, i64 tokens)
{
    const int nbuf = geom_.numBuffers();
    std::vector<i64> &targets = targets_scratch_;
    targets.assign(static_cast<std::size_t>(nbuf), 0);
    for (int b = 0; b < nbuf; ++b) {
        targets[static_cast<std::size_t>(b)] =
            geom_.groupsForTokens(geom_.layerOfBuffer(b), tokens);
    }
    return growRows(slot, targets, 1);
}

Status
KvAllocator::growToLayout(int slot, const std::vector<i64> &leads,
                          const std::vector<i64> &ends)
{
    panic_if(slot < 0 || slot >= config_.max_batch_size,
             "slot out of range");
    auto &mappings = slots_[static_cast<std::size_t>(slot)];
    const int nbuf = geom_.numBuffers();
    if (mappedHandles(slot) == 0 && groupsMapped(slot) == 0) {
        for (int b = 0; b < nbuf; ++b) {
            BufferMappings &buffer =
                mappings.buffers[static_cast<std::size_t>(b)];
            buffer.handles.assign(static_cast<std::size_t>(
                                      leads[static_cast<std::size_t>(b)]),
                                  cuvmm::kInvalidHandle);
            buffer.lead = leads[static_cast<std::size_t>(b)];
        }
    } else {
        // Resuming a partially built layout (the caller stole supply
        // between attempts): the leads must agree.
        for (int b = 0; b < nbuf; ++b) {
            panic_if(mappings.buffers[static_cast<std::size_t>(b)]
                             .lead !=
                         leads[static_cast<std::size_t>(b)],
                     "growToLayout lead mismatch on a non-empty slot");
        }
    }
    return growRows(slot, ends, -1);
}

void
KvAllocator::resetWindowTrimmed(int slot)
{
    auto &mappings = slots_[static_cast<std::size_t>(slot)];
    for (int b = 0; b < geom_.numBuffers(); ++b) {
        BufferMappings &buffer =
            mappings.buffers[static_cast<std::size_t>(b)];
        if (buffer.lead == 0) {
            continue;
        }
        for (i64 group = buffer.lead; group < buffer.end(); ++group) {
            unmapOne(b, slot, group);
        }
        total_mapped_ -= buffer.mapped();
        buffer.handles.clear();
        buffer.lead = 0;
    }
}

Status
KvAllocator::aliasFrom(int dst, int src, i64 groups)
{
    panic_if(dst < 0 || dst >= config_.max_batch_size ||
                 src < 0 || src >= config_.max_batch_size,
             "slot out of range");
    if (dst == src) {
        return errorStatus(ErrorCode::kInvalidArgument,
                           "aliasFrom onto the source slot");
    }
    auto &dst_map = slots_[static_cast<std::size_t>(dst)];
    const auto &src_map = slots_[static_cast<std::size_t>(src)];
    if (mappedHandles(dst) != 0 || groupsMapped(dst) != 0) {
        return errorStatus(ErrorCode::kFailedPrecondition,
                           "aliasFrom onto a slot with mappings");
    }
    if (groups <= 0 || groups > prefixGroupsMapped(src)) {
        return errorStatus(ErrorCode::kInvalidArgument,
                           "aliasFrom beyond the source's intact "
                           "prefix groups");
    }
    const int nbuf = geom_.numBuffers();
    for (i64 group = 0; group < groups; ++group) {
        for (int b = 0; b < nbuf; ++b) {
            const cuvmm::MemHandle handle =
                src_map.buffers[static_cast<std::size_t>(b)]
                    .handles[static_cast<std::size_t>(group)];
            pool_.addRef(handle);
            mapOne(b, dst, group, handle).expectOk("alias map");
            dst_map.buffers[static_cast<std::size_t>(b)]
                .handles.push_back(handle);
            ++total_mapped_;
            ++aliased_mappings_;
        }
    }
    return Status::ok();
}

cuvmm::MemHandle
KvAllocator::handleAt(int slot, int buffer, i64 group) const
{
    const auto &mappings = slots_[static_cast<std::size_t>(slot)];
    return mappings.buffers[static_cast<std::size_t>(buffer)]
        .handles[static_cast<std::size_t>(group)];
}

bool
KvAllocator::hasSharedGroups(int slot) const
{
    if (aliased_mappings_ == 0) {
        return false; // nothing anywhere is shared
    }
    const auto &mappings = slots_[static_cast<std::size_t>(slot)];
    for (const BufferMappings &buffer : mappings.buffers) {
        for (i64 group = buffer.lead; group < buffer.end(); ++group) {
            if (pool_.refCount(buffer.handles[static_cast<std::size_t>(
                    group)]) > 1) {
                return true;
            }
        }
    }
    return false;
}

void
KvAllocator::privatizeFrom(int slot, i64 from_group)
{
    if (aliased_mappings_ == 0) {
        return; // nothing anywhere is shared
    }
    auto &mappings = slots_[static_cast<std::size_t>(slot)];
    const int nbuf = geom_.numBuffers();
    for (i64 group = from_group; group < groupsMapped(slot); ++group) {
        for (int b = 0; b < nbuf; ++b) {
            auto &buffer =
                mappings.buffers[static_cast<std::size_t>(b)];
            if (group < buffer.lead || group >= buffer.end()) {
                continue;
            }
            const cuvmm::MemHandle handle =
                buffer.handles[static_cast<std::size_t>(group)];
            if (pool_.refCount(handle) <= 1) {
                continue;
            }
            auto fresh = pool_.acquire();
            if (!fresh.isOk()) {
                // No replacement available: drop the tail down to
                // this group (losing retained capacity, never
                // correctness). unmapOne handles the mixed
                // private/shared rows.
                while (groupsMapped(slot) > group) {
                    shrinkTail(slot).expectOk("privatize shrink");
                }
                return;
            }
            const Addr va = groupVa(b, slot, group);
            const auto r = use_cu_path_
                               ? driver_.cuMemUnmap(va,
                                                    geom_.groupBytes())
                               : driver_.vMemUnmap(va);
            panic_if(r != cuvmm::CuResult::kSuccess,
                     "privatize unmap failed: ", cuvmm::toString(r));
            pool_.dropShared(handle);
            --aliased_mappings_;
            mapOne(b, slot, group, fresh.value())
                .expectOk("privatize map");
            buffer.handles[static_cast<std::size_t>(group)] =
                fresh.value();
        }
    }
}

Status
KvAllocator::shrinkTail(int slot)
{
    auto &mappings = slots_[static_cast<std::size_t>(slot)];
    if (mappedHandles(slot) == 0) {
        return errorStatus(ErrorCode::kFailedPrecondition,
                           "slot has no mapped groups");
    }
    for (int b = 0; b < geom_.numBuffers(); ++b) {
        BufferMappings &buffer =
            mappings.buffers[static_cast<std::size_t>(b)];
        if (buffer.mapped() == 0) {
            continue;
        }
        unmapOne(b, slot, buffer.end() - 1);
        buffer.handles.pop_back();
        --total_mapped_;
        if (buffer.mapped() == 0) {
            // Fully drained: forget the (now moot) dead lead so the
            // slot really is empty for reuse.
            buffer.handles.clear();
            buffer.lead = 0;
        }
    }
    return Status::ok();
}

void
KvAllocator::releaseAll(int slot)
{
    while (mappedHandles(slot) > 0) {
        shrinkTail(slot).expectOk("releaseAll");
    }
    // Buffers that were trimmed to emptiness already reset in
    // shrinkTail; clear any lead-only remnants (never-mapped skips).
    auto &mappings = slots_[static_cast<std::size_t>(slot)];
    for (BufferMappings &buffer : mappings.buffers) {
        buffer.handles.clear();
        buffer.lead = 0;
    }
}

u64
KvAllocator::physBytesMapped() const
{
    // Aliased mappings share one physical group: count it once.
    return static_cast<u64>(totalHandlesMapped() - aliased_mappings_) *
           geom_.groupBytes();
}

bool
KvAllocator::checkInvariants() const
{
    audit::AuditReport report;
    auditInto(report);
    return report.ok();
}

void
KvAllocator::auditInto(audit::AuditReport &report) const
{
    const int nbuf = geom_.numBuffers();
    const bool uniform = !geom_.hasWindows();
    /** Times each physical handle appears across all slot tables. */
    std::unordered_map<cuvmm::MemHandle, i64> mapping_counts;
    for (int slot = 0; slot < config_.max_batch_size; ++slot) {
        const auto &mappings = slots_[static_cast<std::size_t>(slot)];
        const i64 frontier = groupsMapped(slot);
        for (int b = 0; b < nbuf; ++b) {
            const BufferMappings &buffer =
                mappings.buffers[static_cast<std::size_t>(b)];
            if (uniform &&
                (buffer.lead != 0 || buffer.end() != frontier)) {
                report.fail("kv_allocator: slot ", slot, " buffer ", b,
                            " holds groups [", buffer.lead, ", ",
                            buffer.end(), ") but the slot frontier is ",
                            frontier,
                            " (uniform buffers must grow in lockstep "
                            "from group 0)");
            }
            for (i64 group = 0; group < buffer.end(); ++group) {
                const cuvmm::MemHandle handle =
                    buffer.handles[static_cast<std::size_t>(group)];
                if (group < buffer.lead) {
                    if (handle != cuvmm::kInvalidHandle) {
                        report.fail(
                            "kv_allocator: slot ", slot, " buffer ", b,
                            " group ", group,
                            " is behind the window lead ", buffer.lead,
                            " but still records a handle");
                    }
                    // A trimmed (window-dead) group must be unmapped;
                    // an accessible VA here is a rogue window-tail
                    // mapping created behind the allocator.
                    if (driver_.device().pageTable().isAccessible(
                            groupVa(b, slot, group),
                            geom_.groupBytes())) {
                        report.fail(
                            "kv_allocator: slot ", slot, " buffer ", b,
                            " group ", group,
                            " lies in the window-dead lead region "
                            "[0, ", buffer.lead,
                            ") yet its VA is mapped — rogue "
                            "window-tail mapping");
                    }
                    continue;
                }
                if (handle == cuvmm::kInvalidHandle) {
                    report.fail("kv_allocator: slot ", slot,
                                " buffer ", b, " group ", group,
                                " inside the mapped range [",
                                buffer.lead, ", ", buffer.end(),
                                ") has no handle");
                    continue;
                }
                ++mapping_counts[handle];
            }
            // Mapped region must be accessible.
            if (buffer.mapped() > 0 &&
                !driver_.device().pageTable().isAccessible(
                    groupVa(b, slot, buffer.lead),
                    static_cast<u64>(buffer.mapped()) *
                        geom_.groupBytes())) {
                report.fail("kv_allocator: slot ", slot, " buffer ", b,
                            " claims mapped groups [", buffer.lead,
                            ", ", buffer.end(),
                            ") but the range is not RW-accessible in "
                            "the page table");
            }
        }
    }
    // Cross-layer per-handle equality: this allocator's mapping count
    // == pool refcount == driver mapping count. A pool reference
    // without a mapping (leaked addRef) or a driver mapping without a
    // pool reference (alias created behind the allocator) both break
    // it with a distinct imbalance.
    i64 aliased = 0;
    for (const auto &[handle, count] : mapping_counts) {
        aliased += count - 1;
        const int refs = pool_.refCount(handle);
        if (refs != static_cast<int>(count)) {
            report.fail("kv_allocator: handle ", handle, " mapped ",
                        count, " time(s) but the pool holds ", refs,
                        " reference(s) — a reference was taken or "
                        "dropped without a matching (un)map");
        }
        const std::size_t driver_maps = driver_.numMappings(handle);
        if (driver_maps != static_cast<std::size_t>(count)) {
            report.fail("kv_allocator: handle ", handle, " mapped ",
                        count, " time(s) in KV tensors but ",
                        driver_maps, " time(s) in the driver — a "
                        "mapping was created or destroyed behind the "
                        "allocator");
        }
    }
    report.check(aliased == aliased_mappings_,
                 "kv_allocator: aliased-mappings ledger is ",
                 aliased_mappings_, " but per-handle counts show ",
                 aliased, " mappings beyond one per handle");
    i64 recount = 0;
    for (int slot = 0; slot < config_.max_batch_size; ++slot) {
        recount += mappedHandles(slot);
    }
    report.check(recount == total_mapped_,
                 "kv_allocator: total-mapped ledger is ", total_mapped_,
                 " but a full recount over the slot tables finds ",
                 recount, " mappings — a map or unmap bypassed the "
                 "ledger");
}

} // namespace vattn::core
