/**
 * @file
 * KV virtual-tensor allocator: reserves the 2N per-layer virtual
 * buffers (or the 2 sliced buffers of §8.2) at init and performs the
 * runtime page-group (un)mapping that backs each request's sub-tensor.
 *
 * Layout (§5.1.3 / §5.2.3): request reqId occupies the byte range
 * [reqId * S_aligned, (reqId+1) * S_aligned) of every buffer, where
 * S_aligned is the per-request share rounded up to the page-group size
 * so requests never share a group.
 *
 * Per-layer geometries: each buffer's mapped region is a contiguous
 * group range [lead, end). Full-attention layers always have lead 0
 * and (with a uniform footprint) grow in lockstep — the historical
 * invariant. Sliding-window layers advance lead as the window moves:
 * fully-dead leading page-groups are unmapped (llama.cpp-style
 * eviction bookkeeping), while prefix-aliased groups only drop this
 * slot's mapping — the sharer keeps the physical group alive.
 */

#ifndef VATTN_CORE_KV_ALLOCATOR_HH
#define VATTN_CORE_KV_ALLOCATOR_HH

#include <vector>

#include "attn/kv_view.hh"
#include "common/audit.hh"
#include "core/config.hh"
#include "core/kv_geometry.hh"
#include "core/page_pool.hh"
#include "cuvmm/driver.hh"
#include "tensor/virtual_tensor.hh"

namespace vattn::core
{

/** K and V tensors of one layer, each [B, L, H, D] (possibly strided). */
struct LayerKv
{
    tensor::VirtualTensor k;
    tensor::VirtualTensor v;
};

/** Owns the virtual buffers + per-slot mapping state. */
class KvAllocator
{
  public:
    KvAllocator(cuvmm::Driver &driver, const Config &config,
                PagePool &pool);
    ~KvAllocator();

    KvAllocator(const KvAllocator &) = delete;
    KvAllocator &operator=(const KvAllocator &) = delete;

    const KvGeometry &geometry() const { return geom_; }

    /** Per-layer full-batch KV tensors (what init() hands the serving
     *  framework, Table 4). */
    const std::vector<LayerKv> &layerTensors() const
    {
        return layer_tensors_;
    }

    /** One request's K (or V) cache at one layer: a [L, H, D] view. */
    tensor::VirtualTensor kView(int layer, int slot) const;
    tensor::VirtualTensor vView(int layer, int slot) const;

    /** The slot's group frontier: the highest end of any buffer's
     *  mapped range (equals every buffer's count in the uniform
     *  model). */
    i64 groupsMapped(int slot) const;

    /** Page-group mappings the slot holds across all buffers
     *  (Σ end − lead; per-layer trims make this the real footprint,
     *  where groupsMapped * numBuffers over-counts). */
    i64 mappedHandles(int slot) const;

    /** First mapped group of the slot in @p buffer (window trims
     *  advance it past 0). */
    i64 bufferLead(int slot, int buffer) const;

    /** One past the last mapped group of the slot in @p buffer. */
    i64 bufferEnd(int slot, int buffer) const;

    /** Leading groups mapped in EVERY buffer — the prefix usable for
     *  §8.1 aliasing. Zero as soon as any buffer trimmed its lead. */
    i64 prefixGroupsMapped(int slot) const;

    /**
     * Grow the slot's backing to @p target_groups in every buffer.
     * Groups are mapped across all buffers in lockstep; on pool
     * exhaustion the slot is left consistent at its previous (or
     * partially grown) group count and kOutOfMemory is returned.
     */
    Status growTo(int slot, i64 target_groups);

    /**
     * Bring the slot to the canonical layout for a context of
     * @p tokens tokens: per buffer, unmap dead leading groups of
     * sliding-window layers (never rewinding a lead), then grow every
     * buffer to its frontier groupsForTokens(layer, tokens). Trims
     * happen before growth so a tight pool benefits from the freed
     * groups. Uniform configs reduce to growTo(groupsForTokens).
     */
    Status ensureTokens(int slot, i64 tokens);

    /** Would ensureTokens(slot, tokens) perform any work? */
    bool needsEnsureTokens(int slot, i64 tokens) const;

    /** Any buffer below its frontier for @p tokens? (Growth only —
     *  ignores pending trims; the overlap prefetcher must never trim
     *  groups the current iteration still reads.) */
    bool needsGrowthForTokens(int slot, i64 tokens) const;

    /** Map the single lowest missing group row toward the frontier
     *  for @p tokens (incremental overlap-allocation step). */
    Status growOneRowForTokens(int slot, i64 tokens);

    /**
     * Rebuild an empty slot to an explicit per-buffer layout
     * (swap-in): set each buffer's lead, then map [lead, end) group
     * rows. On pool exhaustion the partial layout remains (the caller
     * rolls back with releaseAll).
     */
    Status growToLayout(int slot, const std::vector<i64> &leads,
                        const std::vector<i64> &ends);

    /**
     * Unmap and forget every buffer whose lead advanced past 0. A
     * lead can never rewind, so a slot recycled for a NEW request
     * must restart its window-trimmed buffers from empty; untrimmed
     * buffers keep their mappings for §6.1 reuse. No-op without
     * windows.
     */
    void resetWindowTrimmed(int slot);

    /** Unmap the last mapped group of every non-empty buffer
     *  (reclaim). */
    Status shrinkTail(int slot);

    /** Unmap everything mapped for the slot (leads reset to 0). */
    void releaseAll(int slot);

    /**
     * Prefix sharing (§8.1): map @p src's first @p groups page-groups
     * into @p dst's virtual range as well — the same physical handle
     * becomes visible at both requests' sub-tensors (vMemMap /
     * cuMemMap multi-mapping; Driver::numMappings > 1). Handles are
     * reference-counted in the pool, so either slot may release
     * independently. @p dst must currently have no groups mapped; the
     * shared groups must never be written through @p dst. The source
     * prefix must be intact in every buffer (window trims clear a
     * slot's shareable prefix).
     */
    Status aliasFrom(int dst, int src, i64 groups);

    /** The handle mapped at (slot, buffer, group) — introspection for
     *  aliasing tests. kInvalidHandle in a trimmed lead. */
    cuvmm::MemHandle handleAt(int slot, int buffer, i64 group) const;

    /**
     * Does any of the slot's mapped groups share its physical handle
     * with another slot (pool refcount > 1)? Such a slot must not be
     * swapped out: unmapping would not free the memory, and the
     * sharer's KV must stay resident.
     */
    bool hasSharedGroups(int slot) const;

    /**
     * Make the slot's groups from @p from_group onward private: any
     * group whose handle is shared with another slot is remapped onto
     * a fresh pool handle (the other slot keeps the original and its
     * content). Required before a slot with retained mappings is
     * recycled for a new request — writing through a shared mapping
     * would corrupt the sharer's KV. If the pool cannot supply a
     * replacement the tail is shrunk instead, so on return no group
     * at or beyond @p from_group is shared. No-op when nothing is
     * aliased.
     */
    void privatizeFrom(int slot, i64 from_group);

    /** Sum of mappedHandles over all slots (counts mappings; aliased
     *  groups count once per mapping). O(1): a ledger maintained at
     *  every map/unmap — the serving hot path reads this several times
     *  per iteration, and the audit cross-checks it against a full
     *  recount. */
    i64 totalHandlesMapped() const { return total_mapped_; }
    /** Mappings that alias another slot's physical group. */
    i64 aliasedMappings() const { return aliased_mappings_; }
    /** Unique physical bytes mapped (aliases counted once). */
    u64 physBytesMapped() const;

    /**
     * Self- and cross-layer audit: per-slot mapping tables are
     * contiguous [lead, end) ranges that are RW-accessible, trimmed
     * lead regions are NOT mapped (a rogue window-tail mapping is
     * caught here by name), uniform configs additionally keep every
     * buffer in lockstep with lead 0; every physical handle's mapping
     * count here equals its pool refcount AND its driver mapping
     * count (a leaked pool reference or a mapping created behind the
     * allocator breaks the equality); the aliased-mappings ledger
     * matches the per-handle excess.
     */
    void auditInto(audit::AuditReport &report) const;

    /** Every mapped group must be RW-accessible; per-slot counts must
     *  be consistent with the page table. Wraps auditInto. */
    bool checkInvariants() const;

  private:
    int kBuffer(int layer) const;
    int vBuffer(int layer) const;
    Addr groupVa(int buffer, int slot, i64 group) const;

    /** Map one pool handle at (buffer, slot, group). */
    Status mapOne(int buffer, int slot, i64 group,
                  cuvmm::MemHandle handle);
    /** Unmap the group and return/destroy its handle per the API
     *  path (§6.2: 2MB keeps the handle, vMemRelease destroys it). */
    void unmapOne(int buffer, int slot, i64 group);

    /** Mapped range of one slot in one buffer: groups [lead, end)
     *  where end == handles.size(); entries below lead are
     *  kInvalidHandle placeholders (absolute indexing). */
    struct BufferMappings
    {
        i64 lead = 0;
        std::vector<cuvmm::MemHandle> handles;

        i64 end() const { return static_cast<i64>(handles.size()); }
        i64 mapped() const { return end() - lead; }
    };

    struct SlotMappings
    {
        std::vector<BufferMappings> buffers;
    };

    /** Map group rows until every buffer reaches its target end
     *  (group-major, buffer-inner — the historical growTo order);
     *  @p max_rows < 0 means unbounded. Rolls a partial row back on
     *  pool exhaustion. */
    Status growRows(int slot, const std::vector<i64> &targets,
                    i64 max_rows);

    /** Advance one buffer's lead to @p target_lead, unmapping dead
     *  groups (or skipping never-mapped ones when empty). */
    void advanceLead(int slot, int buffer, i64 target_lead);

    cuvmm::Driver &driver_;
    Config config_;
    KvGeometry geom_;
    PagePool &pool_;
    bool use_cu_path_; ///< stock CUDA calls (2MB) vs vMem extension
    std::vector<Addr> buffer_base_;
    std::vector<LayerKv> layer_tensors_;
    std::vector<SlotMappings> slots_;
    i64 aliased_mappings_ = 0; ///< current mappings beyond one per handle
    i64 total_mapped_ = 0;     ///< sum of mappedHandles over all slots

    // Reusable growth scratch (clear()-not-reallocate): growth runs
    // inside the serving hot path, so per-call vector churn here shows
    // up in every decode iteration that crosses a group boundary.
    std::vector<i64> targets_scratch_; ///< per-buffer growth targets
    std::vector<int> row_scratch_;     ///< buffers mapped this row
};

} // namespace vattn::core

#endif // VATTN_CORE_KV_ALLOCATOR_HH
