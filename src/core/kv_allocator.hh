/**
 * @file
 * KV virtual-tensor allocator: reserves the 2N per-layer virtual
 * buffers (or the 2 sliced buffers of §8.2) at init and performs the
 * runtime page-group (un)mapping that backs each request's sub-tensor.
 *
 * Layout (§5.1.3 / §5.2.3): request reqId occupies the byte range
 * [reqId * S_aligned, (reqId+1) * S_aligned) of every buffer, where
 * S_aligned is the per-request share rounded up to the page-group size
 * so requests never share a group. The invariant maintained here is
 * that a slot has the same number of groups mapped in every buffer
 * (tokens arrive at all layers simultaneously).
 */

#ifndef VATTN_CORE_KV_ALLOCATOR_HH
#define VATTN_CORE_KV_ALLOCATOR_HH

#include <vector>

#include "attn/kv_view.hh"
#include "common/audit.hh"
#include "core/config.hh"
#include "core/kv_geometry.hh"
#include "core/page_pool.hh"
#include "cuvmm/driver.hh"
#include "tensor/virtual_tensor.hh"

namespace vattn::core
{

/** K and V tensors of one layer, each [B, L, H, D] (possibly strided). */
struct LayerKv
{
    tensor::VirtualTensor k;
    tensor::VirtualTensor v;
};

/** Owns the virtual buffers + per-slot mapping state. */
class KvAllocator
{
  public:
    KvAllocator(cuvmm::Driver &driver, const Config &config,
                PagePool &pool);
    ~KvAllocator();

    KvAllocator(const KvAllocator &) = delete;
    KvAllocator &operator=(const KvAllocator &) = delete;

    const KvGeometry &geometry() const { return geom_; }

    /** Per-layer full-batch KV tensors (what init() hands the serving
     *  framework, Table 4). */
    const std::vector<LayerKv> &layerTensors() const
    {
        return layer_tensors_;
    }

    /** One request's K (or V) cache at one layer: a [L, H, D] view. */
    tensor::VirtualTensor kView(int layer, int slot) const;
    tensor::VirtualTensor vView(int layer, int slot) const;

    /** Page-groups currently mapped for the slot (per buffer). */
    i64 groupsMapped(int slot) const;

    /**
     * Grow the slot's backing to @p target_groups per buffer. Groups
     * are mapped across all buffers in lockstep; on pool exhaustion the
     * slot is left consistent at its previous (or partially grown)
     * group count and kOutOfMemory is returned.
     */
    Status growTo(int slot, i64 target_groups);

    /** Unmap the slot's last group from every buffer (reclaim). */
    Status shrinkTail(int slot);

    /** Unmap everything mapped for the slot. */
    void releaseAll(int slot);

    /**
     * Prefix sharing (§8.1): map @p src's first @p groups page-groups
     * into @p dst's virtual range as well — the same physical handle
     * becomes visible at both requests' sub-tensors (vMemMap /
     * cuMemMap multi-mapping; Driver::numMappings > 1). Handles are
     * reference-counted in the pool, so either slot may release
     * independently. @p dst must currently have no groups mapped; the
     * shared groups must never be written through @p dst.
     */
    Status aliasFrom(int dst, int src, i64 groups);

    /** The handle mapped at (slot, buffer, group) — introspection for
     *  aliasing tests. */
    cuvmm::MemHandle handleAt(int slot, int buffer, i64 group) const;

    /**
     * Does any of the slot's mapped groups share its physical handle
     * with another slot (pool refcount > 1)? Such a slot must not be
     * swapped out: unmapping would not free the memory, and the
     * sharer's KV must stay resident.
     */
    bool hasSharedGroups(int slot) const;

    /**
     * Make the slot's groups from @p from_group onward private: any
     * group whose handle is shared with another slot is remapped onto
     * a fresh pool handle (the other slot keeps the original and its
     * content). Required before a slot with retained mappings is
     * recycled for a new request — writing through a shared mapping
     * would corrupt the sharer's KV. If the pool cannot supply a
     * replacement the tail is shrunk instead, so on return no group
     * at or beyond @p from_group is shared. No-op when nothing is
     * aliased.
     */
    void privatizeFrom(int slot, i64 from_group);

    /** Sum of groupsMapped over all slots, times numBuffers (counts
     *  mappings; aliased groups count once per mapping). */
    i64 totalHandlesMapped() const;
    /** Mappings that alias another slot's physical group. */
    i64 aliasedMappings() const { return aliased_mappings_; }
    /** Unique physical bytes mapped (aliases counted once). */
    u64 physBytesMapped() const;

    /**
     * Self- and cross-layer audit: per-slot mapping tables are
     * rectangular (same group count in every buffer) and RW-accessible;
     * every physical handle's mapping count here equals its pool
     * refcount AND its driver mapping count (a leaked pool reference or
     * a mapping created behind the allocator breaks the equality); the
     * aliased-mappings ledger matches the per-handle excess.
     */
    void auditInto(audit::AuditReport &report) const;

    /** Every mapped group must be RW-accessible; per-slot counts must
     *  be consistent with the page table. Wraps auditInto. */
    bool checkInvariants() const;

  private:
    int kBuffer(int layer) const;
    int vBuffer(int layer) const;
    Addr groupVa(int buffer, int slot, i64 group) const;

    /** Map one pool handle at (buffer, slot, group). */
    Status mapOne(int buffer, int slot, i64 group,
                  cuvmm::MemHandle handle);
    /** Unmap the group and return/destroy its handle per the API
     *  path (§6.2: 2MB keeps the handle, vMemRelease destroys it). */
    void unmapOne(int buffer, int slot, i64 group);

    struct SlotMappings
    {
        i64 groups = 0;
        /** handles[buffer][group] */
        std::vector<std::vector<cuvmm::MemHandle>> handles;
    };

    cuvmm::Driver &driver_;
    Config config_;
    KvGeometry geom_;
    PagePool &pool_;
    bool use_cu_path_; ///< stock CUDA calls (2MB) vs vMem extension
    std::vector<Addr> buffer_base_;
    std::vector<LayerKv> layer_tensors_;
    std::vector<SlotMappings> slots_;
    i64 aliased_mappings_ = 0; ///< current mappings beyond one per handle
};

} // namespace vattn::core

#endif // VATTN_CORE_KV_ALLOCATOR_HH
