/**
 * @file
 * Physical page-group pool. vAttention pre-allocates physical memory
 * handles at initialization (§5.3.1) so that creating physical memory
 * (cuMemCreate / vMemCreate — a slow OS round-trip) never happens in
 * the serving critical path; at runtime only (un)map operations touch
 * the driver. The pool hands handles to the KV allocator and takes them
 * back when groups are reclaimed.
 */

#ifndef VATTN_CORE_PAGE_POOL_HH
#define VATTN_CORE_PAGE_POOL_HH

#include <unordered_map>
#include <vector>

#include "common/audit.hh"
#include "common/status.hh"
#include "common/types.hh"
#include "cuvmm/driver.hh"

namespace vattn::core
{

/** Pool of same-sized physical page-group handles. */
class PagePool
{
  public:
    /**
     * @param driver driver owning the physical memory
     * @param group page-group size for every handle
     * @param budget_bytes maximum physical bytes the pool may own
     * @param precreate create all handles now (init-time, off the
     *        critical path) instead of lazily on first acquire
     * @param host_budget_bytes pinned host memory the pool may commit
     *        for the KV swap tier (0 disables the tier)
     */
    PagePool(cuvmm::Driver &driver, PageGroup group, u64 budget_bytes,
             bool precreate = true, u64 host_budget_bytes = 0);
    ~PagePool();

    PagePool(const PagePool &) = delete;
    PagePool &operator=(const PagePool &) = delete;

    /** Take a handle out of the pool (refcount 1). Fails when the
     *  budget is fully handed out (the caller may then reclaim cached
     *  groups). */
    Result<cuvmm::MemHandle> acquire();

    /**
     * Add a reference to a handed-out handle (prefix sharing maps the
     * same physical group into several requests' virtual ranges). The
     * handle stays in use until every reference is dropped.
     */
    void addRef(cuvmm::MemHandle handle);

    /** References held on a handed-out handle (0 = not handed out). */
    int refCount(cuvmm::MemHandle handle) const;

    /** Drop one of several references (the handle remains mapped
     *  elsewhere; panics when it is the last reference — use
     *  release/releaseDestroyed for that). */
    void dropShared(cuvmm::MemHandle handle);

    /** Return a handle to the pool (last reference). */
    void release(cuvmm::MemHandle handle);

    /**
     * Account for a handed-out handle that was destroyed instead of
     * returned (the sub-2MB reclaim path uses vMemRelease, which fuses
     * unmap + free, so the handle ceases to exist; the budget slot it
     * occupied becomes creatable again). Last reference only.
     */
    void releaseDestroyed(cuvmm::MemHandle handle);

    /** Groups still obtainable: pooled handles + creatable budget. */
    i64
    availableGroups() const
    {
        return totalGroups() - groupsInUse();
    }

    PageGroup group() const { return group_; }
    u64 groupBytes() const { return bytes(group_); }
    u64 budgetBytes() const { return budget_bytes_; }

    /** Handles currently in the pool (not handed out). */
    i64 freeGroups() const { return static_cast<i64>(free_.size()); }
    /** Handles handed out to the allocator. */
    i64 groupsInUse() const { return groups_in_use_; }
    /** Total groups the budget allows. */
    i64 totalGroups() const { return total_groups_; }
    /** Device handles created so far (== free + in-use). */
    i64 createdGroups() const { return created_; }
    /** References beyond the first across all handed-out handles
     *  (each one corresponds to an aliased mapping, §8.1). */
    i64 sharedExtraRefs() const;

    /**
     * Self-audit: handle conservation (free + in-use == created <=
     * total), refcount table shape (one entry >= 1 per handed-out
     * handle), and that every pooled/handed-out handle is live in the
     * driver at exactly the pool's group size.
     */
    void auditInto(audit::AuditReport &report) const;

    bool
    exhausted() const
    {
        return free_.empty() && created_ >= total_groups_;
    }

    // ---- Host page tier (KV swap) -----------------------------------
    //
    // Group-sized pinned host pages that hold swapped-out KV. Pages
    // are pooled after first use (page-locking is far more expensive
    // than the PCIe copy itself), so steady-state swap traffic pays
    // only copy time.

    /** Take one pinned host page (fails when the host budget is fully
     *  handed out, or the tier is disabled). */
    Result<cuvmm::MemHandle> acquireHost();

    /** Return a host page to the host free list. */
    void releaseHost(cuvmm::MemHandle handle);

    u64 hostBudgetBytes() const { return host_budget_bytes_; }
    /** Host pages created so far (== host free + host in-use). */
    i64 hostCreatedGroups() const { return host_created_; }
    /** Host pages currently holding swapped KV. */
    i64 hostGroupsInUse() const { return host_in_use_; }
    /** Host pages still obtainable right now. */
    i64
    hostGroupsAvailable() const
    {
        return host_total_groups_ - host_in_use_;
    }

  private:
    cuvmm::Driver &driver_;
    PageGroup group_;
    u64 budget_bytes_;
    i64 total_groups_;
    i64 created_ = 0;
    i64 groups_in_use_ = 0; ///< unique handles handed out
    std::vector<cuvmm::MemHandle> free_;
    /** Reference counts of handed-out handles. */
    std::unordered_map<cuvmm::MemHandle, int> refs_;
    // Host tier.
    u64 host_budget_bytes_;
    i64 host_total_groups_;
    i64 host_created_ = 0;
    i64 host_in_use_ = 0;
    std::vector<cuvmm::MemHandle> host_free_;
};

} // namespace vattn::core

#endif // VATTN_CORE_PAGE_POOL_HH
