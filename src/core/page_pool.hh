/**
 * @file
 * Physical page-group pool. vAttention pre-allocates physical memory
 * handles at initialization (§5.3.1) so that creating physical memory
 * (cuMemCreate / vMemCreate — a slow OS round-trip) never happens in
 * the serving critical path; at runtime only (un)map operations touch
 * the driver. The pool hands handles to the KV allocator and takes them
 * back when groups are reclaimed.
 */

#ifndef VATTN_CORE_PAGE_POOL_HH
#define VATTN_CORE_PAGE_POOL_HH

#include <unordered_map>
#include <vector>

#include "common/status.hh"
#include "common/types.hh"
#include "cuvmm/driver.hh"

namespace vattn::core
{

/** Pool of same-sized physical page-group handles. */
class PagePool
{
  public:
    /**
     * @param driver driver owning the physical memory
     * @param group page-group size for every handle
     * @param budget_bytes maximum physical bytes the pool may own
     * @param precreate create all handles now (init-time, off the
     *        critical path) instead of lazily on first acquire
     */
    PagePool(cuvmm::Driver &driver, PageGroup group, u64 budget_bytes,
             bool precreate = true);
    ~PagePool();

    PagePool(const PagePool &) = delete;
    PagePool &operator=(const PagePool &) = delete;

    /** Take a handle out of the pool (refcount 1). Fails when the
     *  budget is fully handed out (the caller may then reclaim cached
     *  groups). */
    Result<cuvmm::MemHandle> acquire();

    /**
     * Add a reference to a handed-out handle (prefix sharing maps the
     * same physical group into several requests' virtual ranges). The
     * handle stays in use until every reference is dropped.
     */
    void addRef(cuvmm::MemHandle handle);

    /** References held on a handed-out handle (0 = not handed out). */
    int refCount(cuvmm::MemHandle handle) const;

    /** Drop one of several references (the handle remains mapped
     *  elsewhere; panics when it is the last reference — use
     *  release/releaseDestroyed for that). */
    void dropShared(cuvmm::MemHandle handle);

    /** Return a handle to the pool (last reference). */
    void release(cuvmm::MemHandle handle);

    /**
     * Account for a handed-out handle that was destroyed instead of
     * returned (the sub-2MB reclaim path uses vMemRelease, which fuses
     * unmap + free, so the handle ceases to exist; the budget slot it
     * occupied becomes creatable again). Last reference only.
     */
    void releaseDestroyed(cuvmm::MemHandle handle);

    /** Groups still obtainable: pooled handles + creatable budget. */
    i64
    availableGroups() const
    {
        return totalGroups() - groupsInUse();
    }

    PageGroup group() const { return group_; }
    u64 groupBytes() const { return bytes(group_); }
    u64 budgetBytes() const { return budget_bytes_; }

    /** Handles currently in the pool (not handed out). */
    i64 freeGroups() const { return static_cast<i64>(free_.size()); }
    /** Handles handed out to the allocator. */
    i64 groupsInUse() const { return groups_in_use_; }
    /** Total groups the budget allows. */
    i64 totalGroups() const { return total_groups_; }

    bool
    exhausted() const
    {
        return free_.empty() && created_ >= total_groups_;
    }

  private:
    cuvmm::Driver &driver_;
    PageGroup group_;
    u64 budget_bytes_;
    i64 total_groups_;
    i64 created_ = 0;
    i64 groups_in_use_ = 0; ///< unique handles handed out
    std::vector<cuvmm::MemHandle> free_;
    /** Reference counts of handed-out handles. */
    std::unordered_map<cuvmm::MemHandle, int> refs_;
};

} // namespace vattn::core

#endif // VATTN_CORE_PAGE_POOL_HH
