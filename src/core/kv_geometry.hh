/**
 * @file
 * All of the paper's KV-cache size arithmetic in one place (§5.1.3,
 * Table 8, Table 10): buffer sizes, per-request sub-tensor strides,
 * tokens per page-group ("block size"), and page-group counts for a
 * given context length.
 *
 * Since the per-layer geometry refactor this class is the per-layer
 * authority: every quantity exists in a (layer) overload, and
 * sliding-window layers additionally expose the dead/live split of a
 * request's leading page-groups. The historical zero-argument
 * accessors remain valid whenever the per-token footprint is uniform
 * across layers (the default, and any windows-only spec list); they
 * panic on truly heterogeneous footprints so stale call sites fail
 * loudly instead of silently using layer 0's shape.
 */

#ifndef VATTN_CORE_KV_GEOMETRY_HH
#define VATTN_CORE_KV_GEOMETRY_HH

#include <vector>

#include "common/types.hh"
#include "core/config.hh"

namespace vattn::core
{

/** Derived size/layout quantities for one worker's KV cache. */
class KvGeometry
{
  public:
    explicit KvGeometry(const Config &config);

    /** Number of virtual buffers: 2N per-layer tensors, or 2 in the
     *  tensor-slicing layout (§8.2). */
    int numBuffers() const;

    /** The layer whose KV lives in buffer @p buffer (K buffers are
     *  0..N-1, V buffers N..2N-1; slicing folds everything into
     *  layer 0's shape). */
    int layerOfBuffer(int buffer) const;

    /** Any sliding-window layer in the spec list? */
    bool hasWindows() const;

    /** Same per-token footprint on every layer? (Windows allowed —
     *  only kv_heads/head_dim/bytes_per_elem must match.) */
    bool uniformFootprint() const;

    /** Sliding-window width of @p layer; 0 for full attention. */
    i64 windowTokens(int layer) const;

    // ---- Per-layer quantities (the authority) ------------------------

    /** Bytes one token contributes to ONE buffer of @p layer. */
    u64 tokenBytesPerBuffer(int layer) const;

    /** Tokens covered by one page-group in one buffer of @p layer. */
    i64 tokensPerGroup(int layer) const;

    /** Page-groups (per buffer) of @p layer needed to reach a context
     *  of @p tokens tokens — the frontier, dead groups included. */
    i64 groupsForTokens(int layer, i64 tokens) const;

    /**
     * Leading page-groups of @p layer that are fully behind the
     * sliding window at context @p tokens and may be unmapped. The
     * division floors: a group the window straddles stays mapped.
     * Always 0 for full-attention layers.
     */
    i64 deadLeadGroups(int layer, i64 tokens) const;

    /** Page-groups of @p layer actually mapped at context @p tokens:
     *  groupsForTokens minus the dead lead. */
    i64 liveGroupsForTokens(int layer, i64 tokens) const;

    /** One request's maximum share of one buffer of @p layer. */
    u64 perRequestBytes(int layer) const;

    /** perRequestBytes(layer) rounded up to the page-group. */
    u64 perRequestBytesAligned(int layer) const;

    /** Total size of virtual buffer @p buffer (B requests). */
    u64 bufferBytesFor(int buffer) const;

    /** Max page-groups per buffer of @p layer (context = L). */
    i64 maxGroupsPerRequest(int layer) const;

    // ---- Cross-layer sums --------------------------------------------

    /** Live page-group mappings summed over every buffer at context
     *  @p tokens (the handle-count a fresh request of that length
     *  occupies). */
    i64 handlesForTokens(i64 tokens) const;

    /** Frontier page-group count summed over every buffer (dead lead
     *  included) — the virtual-range high-water mark. */
    i64 frontierHandlesForTokens(i64 tokens) const;

    // ---- Uniform-model wrappers --------------------------------------
    // Valid whenever the footprint is uniform across layers; they
    // panic otherwise.

    /**
     * Bytes one token contributes to ONE buffer: H*D*P for per-layer
     * tensors, N*H*D*P when slicing (the token's KV of all layers
     * lives in one tensor).
     */
    u64 tokenBytesPerBuffer() const;

    /** Bytes one token contributes across the whole KV cache
     *  (2*N*H*D*P — §4's 64KB/128KB/240KB per-token figures). */
    u64 tokenBytesTotal() const;

    /** S: one request's maximum share of one buffer (L tokens). */
    u64 perRequestBytes() const;

    /** S rounded up to the page-group so requests never share one. */
    u64 perRequestBytesAligned() const;

    /** BS = B * S_aligned: total size of one virtual buffer. */
    u64 bufferBytes() const;

    /** Total virtual memory reserved across all buffers. */
    u64 totalVirtualBytes() const;

    /** Tokens covered by one page-group in one buffer — the paper's
     *  "block size" (Tables 8 and 10). */
    i64 tokensPerGroup() const;

    /** Page-groups (per buffer) needed to back @p tokens tokens. */
    i64 groupsForTokens(i64 tokens) const;

    /** Max page-groups per buffer per request (context = L). */
    i64 maxGroupsPerRequest() const;

    /** Physical bytes mapped for a request of @p tokens tokens across
     *  all buffers, including page-group rounding waste. Dead leading
     *  groups of sliding-window layers are excluded — they are
     *  unmapped by the runtime. */
    u64 physBytesForTokens(i64 tokens) const;

    /** Internal fragmentation for a request of @p tokens tokens
     *  (mapped bytes minus live-token payload). */
    u64 wasteBytesForTokens(i64 tokens) const;

    u64 groupBytes() const { return bytes(config_.page_group); }

  private:
    /** Panic unless the per-token footprint is layer-uniform. */
    void requireUniformFootprint(const char *accessor) const;

    Config config_;
    /** Resolved per-layer specs; size num_layers (or 1 when
     *  slicing folds the model into one logical layer). */
    std::vector<LayerKvSpec> specs_;
    bool has_windows_ = false;
    bool uniform_footprint_ = true;
};

} // namespace vattn::core

#endif // VATTN_CORE_KV_GEOMETRY_HH
