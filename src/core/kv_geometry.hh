/**
 * @file
 * All of the paper's KV-cache size arithmetic in one place (§5.1.3,
 * Table 8, Table 10): buffer sizes, per-request sub-tensor strides,
 * tokens per page-group ("block size"), and page-group counts for a
 * given context length.
 */

#ifndef VATTN_CORE_KV_GEOMETRY_HH
#define VATTN_CORE_KV_GEOMETRY_HH

#include "common/types.hh"
#include "core/config.hh"

namespace vattn::core
{

/** Derived size/layout quantities for one worker's KV cache. */
class KvGeometry
{
  public:
    explicit KvGeometry(const Config &config);

    /** Number of virtual buffers: 2N per-layer tensors, or 2 in the
     *  tensor-slicing layout (§8.2). */
    int numBuffers() const;

    /**
     * Bytes one token contributes to ONE buffer: H*D*P for per-layer
     * tensors, N*H*D*P when slicing (the token's KV of all layers
     * lives in one tensor).
     */
    u64 tokenBytesPerBuffer() const;

    /** Bytes one token contributes across the whole KV cache
     *  (2*N*H*D*P — §4's 64KB/128KB/240KB per-token figures). */
    u64 tokenBytesTotal() const;

    /** S: one request's maximum share of one buffer (L tokens). */
    u64 perRequestBytes() const;

    /** S rounded up to the page-group so requests never share one. */
    u64 perRequestBytesAligned() const;

    /** BS = B * S_aligned: total size of one virtual buffer. */
    u64 bufferBytes() const;

    /** Total virtual memory reserved across all buffers. */
    u64 totalVirtualBytes() const;

    /** Tokens covered by one page-group in one buffer — the paper's
     *  "block size" (Tables 8 and 10). */
    i64 tokensPerGroup() const;

    /** Page-groups (per buffer) needed to back @p tokens tokens. */
    i64 groupsForTokens(i64 tokens) const;

    /** Max page-groups per buffer per request (context = L). */
    i64 maxGroupsPerRequest() const;

    /** Physical bytes mapped for a request of @p tokens tokens across
     *  all buffers, including page-group rounding waste. */
    u64 physBytesForTokens(i64 tokens) const;

    /** Internal fragmentation for a request of @p tokens tokens. */
    u64 wasteBytesForTokens(i64 tokens) const;

    u64 groupBytes() const { return bytes(config_.page_group); }

  private:
    Config config_;
};

} // namespace vattn::core

#endif // VATTN_CORE_KV_GEOMETRY_HH
