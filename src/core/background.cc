#include "core/background.hh"

namespace vattn::core
{

void
BackgroundWorker::beginWindow(TimeNs budget_ns)
{
    std::lock_guard<std::mutex> lock(mutex_);
    remaining_ns_ = budget_ns;
    ++num_windows_;
}

bool
BackgroundWorker::tryConsume(TimeNs cost_ns)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (cost_ns > remaining_ns_) {
        remaining_ns_ = 0;
        return false;
    }
    remaining_ns_ -= cost_ns;
    total_hidden_ns_ += cost_ns;
    ++items_completed_;
    return true;
}

TimeNs
BackgroundWorker::windowRemaining() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return remaining_ns_;
}

u64
BackgroundWorker::numWindows() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return num_windows_;
}

TimeNs
BackgroundWorker::totalHiddenNs() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return total_hidden_ns_;
}

u64
BackgroundWorker::itemsCompleted() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return items_completed_;
}

} // namespace vattn::core
