#include "core/background.hh"

namespace vattn::core
{

void
BackgroundWorker::beginWindow(TimeNs budget_ns)
{
    remaining_ns_ = budget_ns;
    ++num_windows_;
}

bool
BackgroundWorker::tryConsume(TimeNs cost_ns)
{
    if (cost_ns > remaining_ns_) {
        remaining_ns_ = 0;
        return false;
    }
    remaining_ns_ -= cost_ns;
    total_hidden_ns_ += cost_ns;
    ++items_completed_;
    return true;
}

} // namespace vattn::core
