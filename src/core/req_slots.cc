#include "core/req_slots.hh"

#include "common/logging.hh"

namespace vattn::core
{

const char *
toString(SlotState state)
{
    switch (state) {
      case SlotState::kFree: return "Free";
      case SlotState::kActive: return "Active";
      case SlotState::kCached: return "Cached";
    }
    return "?";
}

ReqSlots::ReqSlots(int capacity)
    : capacity_(capacity), num_free_(capacity),
      states_(static_cast<std::size_t>(capacity), SlotState::kFree),
      cached_next_(static_cast<std::size_t>(capacity), -1),
      cached_prev_(static_cast<std::size_t>(capacity), -1)
{
    fatal_if(capacity <= 0, "ReqSlots needs positive capacity");
}

void
ReqSlots::linkCachedBack(int slot)
{
    cached_prev_[static_cast<std::size_t>(slot)] = cached_tail_;
    cached_next_[static_cast<std::size_t>(slot)] = -1;
    if (cached_tail_ >= 0) {
        cached_next_[static_cast<std::size_t>(cached_tail_)] = slot;
    } else {
        cached_head_ = slot;
    }
    cached_tail_ = slot;
}

void
ReqSlots::unlinkCached(int slot)
{
    const int prev = cached_prev_[static_cast<std::size_t>(slot)];
    const int next = cached_next_[static_cast<std::size_t>(slot)];
    if (prev >= 0) {
        cached_next_[static_cast<std::size_t>(prev)] = next;
    } else {
        cached_head_ = next;
    }
    if (next >= 0) {
        cached_prev_[static_cast<std::size_t>(next)] = prev;
    } else {
        cached_tail_ = prev;
    }
}

void
ReqSlots::checkSlot(int slot) const
{
    panic_if(slot < 0 || slot >= capacity_, "reqId ", slot,
             " out of range [0, ", capacity_, ")");
}

SlotState
ReqSlots::state(int slot) const
{
    checkSlot(slot);
    return states_[static_cast<std::size_t>(slot)];
}

Status
ReqSlots::activate(int slot)
{
    checkSlot(slot);
    auto &s = states_[static_cast<std::size_t>(slot)];
    switch (s) {
      case SlotState::kFree:
        --num_free_;
        break;
      case SlotState::kCached:
        unlinkCached(slot);
        break;
      case SlotState::kActive:
        return errorStatus(ErrorCode::kFailedPrecondition,
                           "slot already active");
    }
    s = SlotState::kActive;
    ++num_active_;
    return Status::ok();
}

Status
ReqSlots::moveToCached(int slot)
{
    checkSlot(slot);
    auto &s = states_[static_cast<std::size_t>(slot)];
    if (s != SlotState::kActive) {
        return errorStatus(ErrorCode::kFailedPrecondition,
                           "only active slots can be cached");
    }
    s = SlotState::kCached;
    --num_active_;
    linkCachedBack(slot);
    return Status::ok();
}

Status
ReqSlots::cacheFreeSlot(int slot)
{
    checkSlot(slot);
    auto &s = states_[static_cast<std::size_t>(slot)];
    if (s != SlotState::kFree) {
        return errorStatus(ErrorCode::kFailedPrecondition,
                           "only free slots can be parked as cached");
    }
    s = SlotState::kCached;
    --num_free_;
    linkCachedBack(slot);
    return Status::ok();
}

Status
ReqSlots::moveToFree(int slot)
{
    checkSlot(slot);
    auto &s = states_[static_cast<std::size_t>(slot)];
    switch (s) {
      case SlotState::kFree:
        return errorStatus(ErrorCode::kFailedPrecondition,
                           "slot already free");
      case SlotState::kActive:
        --num_active_;
        break;
      case SlotState::kCached:
        unlinkCached(slot);
        break;
    }
    s = SlotState::kFree;
    ++num_free_;
    return Status::ok();
}

int
ReqSlots::firstFree() const
{
    for (int slot = 0; slot < capacity_; ++slot) {
        if (states_[static_cast<std::size_t>(slot)] == SlotState::kFree) {
            return slot;
        }
    }
    return -1;
}

std::vector<int>
ReqSlots::cachedLruOrder() const
{
    std::vector<int> out;
    out.reserve(static_cast<std::size_t>(numCached()));
    for (int slot : cachedOrder()) {
        out.push_back(slot);
    }
    return out;
}

std::vector<int>
ReqSlots::activeSlots() const
{
    std::vector<int> out;
    for (int slot = 0; slot < capacity_; ++slot) {
        if (states_[static_cast<std::size_t>(slot)] ==
            SlotState::kActive) {
            out.push_back(slot);
        }
    }
    return out;
}

} // namespace vattn::core
