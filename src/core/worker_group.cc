#include "core/worker_group.hh"

#include "common/logging.hh"

namespace vattn::core
{

WorkerGroup::WorkerGroup(int num_workers, const Config &config,
                         u64 device_mem_bytes)
{
    fatal_if(num_workers <= 0, "WorkerGroup needs >= 1 worker");
    config.validate().expectOk("WorkerGroup config");
    workers_.reserve(static_cast<std::size_t>(num_workers));
    for (int w = 0; w < num_workers; ++w) {
        Worker worker;
        gpu::GpuDevice::Config dev_config;
        dev_config.name = "simGPU-worker" + std::to_string(w);
        dev_config.mem_bytes = device_mem_bytes;
        worker.device = std::make_unique<gpu::GpuDevice>(dev_config);
        worker.driver = std::make_unique<cuvmm::Driver>(*worker.device);
        worker.runtime =
            std::make_unique<VAttention>(*worker.driver, config);
        workers_.push_back(std::move(worker));
    }
}

VAttention &
WorkerGroup::worker(int index)
{
    panic_if(index < 0 || index >= numWorkers(), "bad worker index");
    return *workers_[static_cast<std::size_t>(index)].runtime;
}

const VAttention &
WorkerGroup::worker(int index) const
{
    panic_if(index < 0 || index >= numWorkers(), "bad worker index");
    return *workers_[static_cast<std::size_t>(index)].runtime;
}

cuvmm::Driver &
WorkerGroup::driver(int index)
{
    panic_if(index < 0 || index >= numWorkers(), "bad worker index");
    return *workers_[static_cast<std::size_t>(index)].driver;
}

Result<int>
WorkerGroup::allocReqId()
{
    auto first = workers_[0].runtime->allocReqId();
    for (std::size_t w = 1; w < workers_.size(); ++w) {
        auto other = workers_[w].runtime->allocReqId();
        panic_if(other.isOk() != first.isOk() ||
                     (first.isOk() && other.value() != first.value()),
                 "TP workers diverged in allocReqId");
    }
    return first;
}

Result<int>
WorkerGroup::allocReqIdWithPrefix(const PrefixQuery &query,
                                  i64 max_cached, i64 *cached_tokens)
{
    i64 first_cached = 0;
    auto first = workers_[0].runtime->allocReqIdWithPrefix(
        query, max_cached, &first_cached);
    for (std::size_t w = 1; w < workers_.size(); ++w) {
        i64 other_cached = 0;
        auto other = workers_[w].runtime->allocReqIdWithPrefix(
            query, max_cached, &other_cached);
        panic_if(other.isOk() != first.isOk() ||
                     (first.isOk() && other.value() != first.value()) ||
                     other_cached != first_cached,
                 "TP workers diverged in allocReqIdWithPrefix");
    }
    if (cached_tokens != nullptr) {
        *cached_tokens = first_cached;
    }
    return first;
}

void
WorkerGroup::registerPrefix(int req_id, const PrefixQuery &query,
                            i64 tokens)
{
    for (auto &worker : workers_) {
        worker.runtime->registerPrefix(req_id, query, tokens);
    }
}

Status
WorkerGroup::freeReqId(int req_id)
{
    Status first = workers_[0].runtime->freeReqId(req_id);
    for (std::size_t w = 1; w < workers_.size(); ++w) {
        Status other = workers_[w].runtime->freeReqId(req_id);
        panic_if(!(other == first), "TP workers diverged in freeReqId");
    }
    return first;
}

StepStats
WorkerGroup::step(const std::vector<i64> &seq_lens)
{
    StepStats first = workers_[0].runtime->step(seq_lens);
    for (std::size_t w = 1; w < workers_.size(); ++w) {
        StepStats other = workers_[w].runtime->step(seq_lens);
        panic_if(other.handles_mapped != first.handles_mapped ||
                     other.critical_ns != first.critical_ns ||
                     !(other.status == first.status),
                 "TP workers diverged in step");
    }
    return first;
}

SwapStats
WorkerGroup::swapOutReq(int req_id)
{
    SwapStats first = workers_[0].runtime->swapOutReq(req_id);
    for (std::size_t w = 1; w < workers_.size(); ++w) {
        SwapStats other = workers_[w].runtime->swapOutReq(req_id);
        panic_if(other.handles != first.handles ||
                     other.bytes != first.bytes ||
                     !(other.status == first.status),
                 "TP workers diverged in swapOutReq");
    }
    return first;
}

SwapStats
WorkerGroup::swapInReq(int req_id)
{
    SwapStats first = workers_[0].runtime->swapInReq(req_id);
    for (std::size_t w = 1; w < workers_.size(); ++w) {
        SwapStats other = workers_[w].runtime->swapInReq(req_id);
        panic_if(other.handles != first.handles ||
                     other.bytes != first.bytes ||
                     !(other.status == first.status),
                 "TP workers diverged in swapInReq");
    }
    return first;
}

Result<VAttention::HostKvImage>
WorkerGroup::exportSwapped(int req_id)
{
    auto first = workers_[0].runtime->exportSwapped(req_id);
    for (std::size_t w = 1; w < workers_.size(); ++w) {
        auto other = workers_[w].runtime->exportSwapped(req_id);
        panic_if(other.isOk() != first.isOk() ||
                     (first.isOk() &&
                      (other.value().handles != first.value().handles ||
                       other.value().bytes != first.value().bytes)),
                 "TP workers diverged in exportSwapped");
    }
    return first;
}

bool
WorkerGroup::canImportSwapped(i64 handles) const
{
    return workers_[0].runtime->canImportSwapped(handles);
}

Result<int>
WorkerGroup::importSwapped(const VAttention::HostKvImage &image)
{
    auto first = workers_[0].runtime->importSwapped(image);
    for (std::size_t w = 1; w < workers_.size(); ++w) {
        auto other = workers_[w].runtime->importSwapped(image);
        panic_if(other.isOk() != first.isOk() ||
                     (first.isOk() && other.value() != first.value()),
                 "TP workers diverged in importSwapped");
    }
    return first;
}

void
WorkerGroup::computePhase(TimeNs window_ns)
{
    for (auto &worker : workers_) {
        worker.runtime->computePhase(window_ns);
    }
}

u64
WorkerGroup::physBytesMappedTotal() const
{
    u64 total = 0;
    for (const auto &worker : workers_) {
        total += worker.runtime->physBytesMapped();
    }
    return total;
}

bool
WorkerGroup::inLockstep() const
{
    const auto &reference = *workers_[0].runtime;
    for (std::size_t w = 1; w < workers_.size(); ++w) {
        const auto &other = *workers_[w].runtime;
        if (other.physBytesMapped() != reference.physBytesMapped() ||
            other.poolFreeHandles() != reference.poolFreeHandles() ||
            other.cachedHandles() != reference.cachedHandles() ||
            other.slots().numActive() !=
                reference.slots().numActive() ||
            other.slots().numCached() !=
                reference.slots().numCached()) {
            return false;
        }
        for (int slot = 0; slot < reference.config().max_batch_size;
             ++slot) {
            if (other.groupsMapped(slot) !=
                    reference.groupsMapped(slot) ||
                other.slots().state(slot) !=
                    reference.slots().state(slot)) {
                return false;
            }
        }
    }
    return true;
}

bool
WorkerGroup::checkInvariants() const
{
    for (const auto &worker : workers_) {
        if (!worker.runtime->checkInvariants()) {
            return false;
        }
    }
    return inLockstep();
}

bool
WorkerGroup::canAllocate(i64 prompt_tokens) const
{
    return workers_[0].runtime->canAllocate(prompt_tokens);
}

PrefixHit
WorkerGroup::matchPrefix(const PrefixQuery &query) const
{
    return workers_[0].runtime->matchPrefix(query);
}

TimeNs
WorkerGroup::lastPrefixAllocNs() const
{
    return workers_[0].runtime->lastPrefixAllocNs();
}

bool
WorkerGroup::canSwapOut(int req_id) const
{
    return workers_[0].runtime->canSwapOut(req_id);
}

bool
WorkerGroup::canSwapIn(int req_id) const
{
    return workers_[0].runtime->canSwapIn(req_id);
}

u64
WorkerGroup::hostSwapBudgetBytes() const
{
    return workers_[0].runtime->hostSwapBudgetBytes();
}

const KvGeometry &
WorkerGroup::geometry() const
{
    return workers_[0].runtime->geometry();
}

const RuntimeStats &
WorkerGroup::stats() const
{
    return workers_[0].runtime->stats();
}

u64
WorkerGroup::physBytesMappedPerWorker() const
{
    return workers_[0].runtime->physBytesMapped();
}

u64
WorkerGroup::budgetBytesPerWorker() const
{
    return workers_[0].runtime->budgetBytes();
}

i64
WorkerGroup::mappedHandles(int req_id) const
{
    return workers_[0].runtime->mappedHandles(req_id);
}

void
WorkerGroup::auditInto(audit::AuditReport &report) const
{
    for (const auto &worker : workers_) {
        worker.runtime->auditInto(report);
    }
    // Cross-worker state equality: every control input was identical
    // and the runtime is deterministic, so any divergence means one
    // worker's state machine drifted — localize it by worker, slot and
    // quantity so the failure is actionable.
    const auto &reference = *workers_[0].runtime;
    for (std::size_t w = 1; w < workers_.size(); ++w) {
        const auto &other = *workers_[w].runtime;
        report.check(other.physBytesMapped() ==
                         reference.physBytesMapped(),
                     "worker_group: worker ", w, " maps ",
                     other.physBytesMapped(),
                     " physical bytes but worker 0 maps ",
                     reference.physBytesMapped(),
                     " (lockstep divergence)");
        report.check(other.poolFreeHandles() ==
                         reference.poolFreeHandles(),
                     "worker_group: worker ", w, " pool has ",
                     other.poolFreeHandles(),
                     " free handles but worker 0 has ",
                     reference.poolFreeHandles(),
                     " (lockstep divergence)");
        report.check(other.cachedHandles() == reference.cachedHandles(),
                     "worker_group: worker ", w, " caches ",
                     other.cachedHandles(),
                     " handles but worker 0 caches ",
                     reference.cachedHandles(),
                     " (lockstep divergence)");
        for (int slot = 0; slot < reference.config().max_batch_size;
             ++slot) {
            report.check(
                other.groupsMapped(slot) == reference.groupsMapped(slot),
                "worker_group: worker ", w, " slot ", slot, " maps ",
                other.groupsMapped(slot),
                " groups but worker 0 maps ",
                reference.groupsMapped(slot),
                " — a worker's sequence state desynced from the group");
            report.check(
                other.slots().state(slot) == reference.slots().state(slot),
                "worker_group: worker ", w, " slot ", slot,
                " is in a different lifecycle state than worker 0's"
                " (lockstep divergence)");
        }
    }
}

} // namespace vattn::core
