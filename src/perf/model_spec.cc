#include "perf/model_spec.hh"

#include "common/logging.hh"

namespace vattn::perf
{

ModelSpec
ModelSpec::yi6B()
{
    return ModelSpec{
        "Yi-6B", 32, 32, 4, 128, 4096, 11008, 64000, 200 * 1024,
    };
}

ModelSpec
ModelSpec::llama3_8B()
{
    return ModelSpec{
        "Llama-3-8B", 32, 32, 8, 128, 4096, 14336, 128256, 200 * 1024,
    };
}

ModelSpec
ModelSpec::yi34B()
{
    return ModelSpec{
        "Yi-34B", 60, 56, 8, 128, 7168, 20480, 64000, 200 * 1024,
    };
}

ModelSpec
ModelSpec::llama3_70B()
{
    return ModelSpec{
        "Llama-3-70B", 80, 64, 8, 128, 8192, 28672, 128256, 128 * 1024,
    };
}

ModelSpec
ModelSpec::gpt3_175B()
{
    // GPT-3 uses multi-head attention (96 KV heads), hidden 12288 and
    // a 2-matrix GELU MLP of width 4h; numParams() assumes a 3-matrix
    // SwiGLU MLP, so we record the parameter-equivalent width 8h/3.
    return ModelSpec{
        "GPT-3-175B", 96, 96, 96, 128, 12288, 32768, 50257, 16 * 1024,
    };
}

const std::vector<ModelSpec> &
ModelSpec::evaluationModels()
{
    static const std::vector<ModelSpec> models = {
        yi6B(), llama3_8B(), yi34B(),
    };
    return models;
}

ModelSpec
ModelSpec::withSlidingWindowInterleave(i64 window_tokens,
                                       int period) const
{
    fatal_if(window_tokens <= 0,
             "sliding-window interleave needs window_tokens > 0");
    fatal_if(period < 2, "interleave period must be at least 2 (a "
                         "period of 1 would leave no full layer)");
    ModelSpec spec = *this;
    spec.name += "-swa" + std::to_string(window_tokens);
    spec.layer_window_tokens.assign(
        static_cast<std::size_t>(num_layers), 0);
    for (int layer = 0; layer < num_layers; ++layer) {
        if (layer % period != 0) {
            spec.layer_window_tokens[static_cast<std::size_t>(layer)] =
                window_tokens;
        }
    }
    return spec;
}

bool
ModelSpec::hasSlidingLayers() const
{
    for (i64 window : layer_window_tokens) {
        if (window > 0) {
            return true;
        }
    }
    return false;
}

i64
ModelSpec::windowTokensOf(int layer) const
{
    if (layer_window_tokens.empty()) {
        return 0;
    }
    fatal_if(layer < 0 ||
                 static_cast<std::size_t>(layer) >=
                     layer_window_tokens.size(),
             "layer ", layer, " out of range for the ",
             layer_window_tokens.size(), "-entry window list");
    return layer_window_tokens[static_cast<std::size_t>(layer)];
}

std::vector<ModelSpec::WindowClass>
ModelSpec::windowClasses() const
{
    std::vector<WindowClass> classes;
    for (int layer = 0; layer < num_layers; ++layer) {
        const i64 window = windowTokensOf(layer);
        bool found = false;
        for (WindowClass &cls : classes) {
            if (cls.window_tokens == window) {
                ++cls.layers;
                found = true;
                break;
            }
        }
        if (!found) {
            classes.push_back(WindowClass{window, 1});
        }
    }
    // Full attention first for stable reporting order.
    for (std::size_t i = 1; i < classes.size(); ++i) {
        if (classes[i].window_tokens == 0) {
            std::swap(classes[0], classes[i]);
            break;
        }
    }
    return classes;
}

double
ModelSpec::numParams() const
{
    const double h = hidden_size;
    const double q_dim = static_cast<double>(num_q_heads) * head_dim;
    const double kv_dim = static_cast<double>(num_kv_heads) * head_dim;
    // Attention: Wq, Wo (h x q_dim each) + Wk, Wv (h x kv_dim each).
    const double attn = 2.0 * h * q_dim + 2.0 * h * kv_dim;
    // SwiGLU MLP: gate, up, down.
    const double mlp = 3.0 * h * intermediate_size;
    const double per_layer = attn + mlp;
    // Input embedding + output head.
    const double embed = 2.0 * static_cast<double>(vocab_size) * h;
    return per_layer * num_layers + embed;
}

u64
ModelSpec::weightBytesPerWorker(int tp) const
{
    return static_cast<u64>(numParams() * bytes_per_elem /
                            static_cast<double>(tp));
}

int
ModelSpec::kvHeadsPerWorker(int tp) const
{
    fatal_if(num_kv_heads % tp != 0,
             "KV heads (", num_kv_heads, ") not divisible by TP ", tp);
    return num_kv_heads / tp;
}

int
ModelSpec::qHeadsPerWorker(int tp) const
{
    fatal_if(num_q_heads % tp != 0,
             "Q heads (", num_q_heads, ") not divisible by TP ", tp);
    return num_q_heads / tp;
}

u64
ModelSpec::kvBytesPerToken() const
{
    return 2ULL * static_cast<u64>(num_layers) *
           static_cast<u64>(num_kv_heads) * static_cast<u64>(head_dim) *
           static_cast<u64>(bytes_per_elem);
}

u64
ModelSpec::kvBytesPerTokenPerWorker(int tp) const
{
    // Via the head count, not kvBytesPerToken()/tp: a non-divisible
    // TP degree must fail loudly, never round.
    return 2ULL * static_cast<u64>(num_layers) *
           static_cast<u64>(kvHeadsPerWorker(tp)) *
           static_cast<u64>(head_dim) * static_cast<u64>(bytes_per_elem);
}

} // namespace vattn::perf
