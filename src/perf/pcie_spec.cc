#include "perf/pcie_spec.hh"

namespace vattn::perf
{

PcieSpec
PcieSpec::gen4x16()
{
    return PcieSpec{
        "PCIe4.0-x16",
        26e9, // pinned HtoD, ~82% of the 31.5 GB/s raw link
        24e9, // DtoH runs slightly behind HtoD on A100 systems
        8 * kUsec,
    };
}

PcieSpec
PcieSpec::gen5x16()
{
    return PcieSpec{
        "PCIe5.0-x16",
        52e9,
        48e9,
        8 * kUsec,
    };
}

namespace
{

TimeNs
copyNs(u64 bytes, double bytes_per_s, TimeNs launch_ns)
{
    return launch_ns +
           static_cast<TimeNs>(static_cast<double>(bytes) /
                               bytes_per_s * 1e9);
}

} // namespace

TimeNs
PcieSpec::dtohNs(u64 bytes) const
{
    return copyNs(bytes, d2h_bytes_per_s, launch_ns);
}

TimeNs
PcieSpec::htodNs(u64 bytes) const
{
    return copyNs(bytes, h2d_bytes_per_s, launch_ns);
}

TimeNs
PcieSpec::roundTripNs(u64 bytes) const
{
    return dtohNs(bytes) + htodNs(bytes);
}

cuvmm::LatencyModel::CopyModel
PcieSpec::toCopyModel() const
{
    return cuvmm::LatencyModel::CopyModel{d2h_bytes_per_s,
                                          h2d_bytes_per_s, launch_ns};
}

} // namespace vattn::perf
