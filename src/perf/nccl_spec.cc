#include "perf/nccl_spec.hh"

#include <algorithm>

#include "common/logging.hh"

namespace vattn::perf
{

namespace
{

/** ceil(log2(n)) for n >= 2: tree depth of an n-rank group. */
int
log2Ceil(int n)
{
    int depth = 0;
    int reach = 1;
    while (reach < n) {
        reach *= 2;
        ++depth;
    }
    return depth;
}

} // namespace

double
NcclSpec::allReduceSeconds(double payload_bytes, int ranks) const
{
    if (ranks <= 1 || payload_bytes <= 0) {
        return 0;
    }
    fatal_if(ring_bytes_per_s <= 0 && tree_bytes_per_s <= 0,
             "NcclSpec ", name, " enables no algorithm");
    double best = -1;
    if (ring_bytes_per_s > 0) {
        // 2(n-1) steps, each moving B/n over every link concurrently.
        // The bandwidth term is written in the exact floating-point
        // operation order of the historical commTime formula so the
        // legacy() preset (hop latency 0) reproduces it bit for bit.
        const double ring =
            base_latency_s +
            2.0 * (ranks - 1) * hop_latency_s +
            payload_bytes * 2.0 * (ranks - 1) / ranks /
                ring_bytes_per_s;
        best = ring;
    }
    if (tree_bytes_per_s > 0) {
        // Reduce up + broadcast down a binary tree: the full payload
        // crosses a link twice, but only 2*ceil(lg n) hop latencies
        // are serialized — the small-message winner.
        const double tree =
            base_latency_s +
            2.0 * log2Ceil(ranks) * hop_latency_s +
            payload_bytes * 2.0 / tree_bytes_per_s;
        best = best < 0 ? tree : std::min(best, tree);
    }
    return best;
}

double
NcclSpec::allGatherSeconds(double payload_bytes, int ranks) const
{
    if (ranks <= 1 || payload_bytes <= 0) {
        return 0;
    }
    fatal_if(ring_bytes_per_s <= 0 && tree_bytes_per_s <= 0,
             "NcclSpec ", name, " enables no algorithm");
    double best = -1;
    if (ring_bytes_per_s > 0) {
        // (n-1) steps, each forwarding one B/n shard per link.
        const double ring =
            base_latency_s +
            (ranks - 1) * hop_latency_s +
            payload_bytes * (ranks - 1) / ranks / ring_bytes_per_s;
        best = ring;
    }
    if (tree_bytes_per_s > 0) {
        // Pipelined broadcast of every shard down ceil(lg n) hops.
        const double tree =
            base_latency_s +
            log2Ceil(ranks) * hop_latency_s +
            payload_bytes / tree_bytes_per_s;
        best = best < 0 ? tree : std::min(best, tree);
    }
    return best;
}

TimeNs
NcclSpec::allReduceNs(u64 bytes, int ranks) const
{
    return static_cast<TimeNs>(
        allReduceSeconds(static_cast<double>(bytes), ranks) * 1e9);
}

TimeNs
NcclSpec::allGatherNs(u64 bytes, int ranks) const
{
    return static_cast<TimeNs>(
        allGatherSeconds(static_cast<double>(bytes), ranks) * 1e9);
}

NcclSpec
NcclSpec::legacy(double link_bytes_per_s)
{
    NcclSpec spec;
    spec.name = "legacy-flat";
    spec.ring_bytes_per_s = link_bytes_per_s;
    spec.tree_bytes_per_s = 0; // ring-only: the historical formula
    spec.base_latency_s = 5e-6;
    spec.hop_latency_s = 0;
    return spec;
}

NcclSpec
NcclSpec::nvlinkGen3()
{
    NcclSpec spec;
    spec.name = "nvlink-gen3";
    spec.ring_bytes_per_s = 300e9; // A100 NVLink3 per direction
    spec.tree_bytes_per_s = 240e9; // tree sustains ~80% of the bus
    spec.base_latency_s = 3.6e-6;
    spec.hop_latency_s = 0.6e-6;
    return spec;
}

NcclSpec
NcclSpec::nvlinkGen4()
{
    NcclSpec spec;
    spec.name = "nvlink-gen4";
    spec.ring_bytes_per_s = 450e9; // H100 NVLink4 per direction
    spec.tree_bytes_per_s = 360e9;
    spec.base_latency_s = 3.2e-6;
    spec.hop_latency_s = 0.5e-6;
    return spec;
}

NcclSpec
NcclSpec::pcieFallback()
{
    NcclSpec spec;
    spec.name = "pcie-fallback";
    spec.ring_bytes_per_s = 24e9; // gen4 x16 effective
    spec.tree_bytes_per_s = 20e9;
    spec.base_latency_s = 8e-6;
    spec.hop_latency_s = 1.5e-6;
    return spec;
}

} // namespace vattn::perf
