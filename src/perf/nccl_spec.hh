/**
 * @file
 * NCCL-style collective-communication cost model for the tensor-
 * parallel all-reduce/all-gather traffic between TP workers: a
 * latency–bandwidth (α–β) model with ring and tree algorithms over a
 * named link generation, sitting next to perf/pcie_spec.hh in the
 * interconnect layer.
 *
 * Per collective the model charges a fixed launch/rendezvous latency
 * (α, `base_latency_s`), a per-hop link-traversal latency for each
 * algorithm step (`hop_latency_s`), and a bandwidth term (β) from the
 * bytes each algorithm actually moves over the busiest link:
 *
 *   ring all-reduce : 2(n-1) steps of B/n  -> 2(n-1)/n * B / bw
 *   tree all-reduce : reduce + broadcast   -> 2 * B / bw, 2*ceil(lg n) hops
 *   ring all-gather : (n-1) steps of B/n   -> (n-1)/n * B / bw
 *   tree all-gather : pipelined broadcast  -> B / bw, ceil(lg n) hops
 *
 * Algorithm selection is message-size dependent, as in NCCL's tuner:
 * each collective takes the cheaper of the enabled algorithms, so
 * small messages ride the tree (few hops dominate) and large messages
 * ride the ring (best bus bandwidth). Disable an algorithm by setting
 * its bandwidth to 0.
 *
 * The `legacy()` preset reproduces the historical hardcoded constants
 * of `KernelModel::commTime` bit for bit (5µs launch + flat-link ring
 * with no per-hop latency), which is what keeps the fig09/fig10
 * golden outputs byte-identical on default configurations.
 */

#ifndef VATTN_PERF_NCCL_SPEC_HH
#define VATTN_PERF_NCCL_SPEC_HH

#include <string>

#include "common/types.hh"

namespace vattn::perf
{

/** α–β collective cost model of one TP group's interconnect. */
struct NcclSpec
{
    std::string name;
    /** Per-direction link bandwidth of the ring algorithm (0 disables
     *  the ring). */
    double ring_bytes_per_s = 0;
    /** Effective link bandwidth of the tree algorithm (0 disables the
     *  tree; NCCL's tree sustains less than the ring's bus rate). */
    double tree_bytes_per_s = 0;
    /** α: fixed launch/rendezvous latency charged once per
     *  collective. */
    double base_latency_s = 0;
    /** Per-hop link-traversal latency charged per algorithm step. */
    double hop_latency_s = 0;

    /** An empty name means "unset": consumers substitute the legacy
     *  default derived from the GPU's NVLink bandwidth. */
    bool enabled() const { return !name.empty(); }

    /**
     * All-reduce of a @p payload_bytes tensor across @p ranks workers,
     * in seconds: the cheaper of the enabled algorithms (0 when the
     * group is trivial). Double-precision seconds so callers control
     * where the single nanosecond cast happens (KernelModel::commTime
     * must cast exactly where the legacy code did).
     */
    double allReduceSeconds(double payload_bytes, int ranks) const;

    /** All-gather producing @p payload_bytes gathered output across
     *  @p ranks workers, in seconds. */
    double allGatherSeconds(double payload_bytes, int ranks) const;

    /** Nanosecond conveniences over the seconds forms. */
    TimeNs allReduceNs(u64 bytes, int ranks) const;
    TimeNs allGatherNs(u64 bytes, int ranks) const;

    // ---- Presets ------------------------------------------------------

    /**
     * The historical hardcoded model: 5µs launch plus a flat ring over
     * @p link_bytes_per_s with no per-hop latency. Bit-for-bit the old
     * `KernelModel::commTime` arithmetic — the default when a config
     * leaves its spec unset.
     */
    static NcclSpec legacy(double link_bytes_per_s);
    /** NVLink gen3 (A100 platform: 300 GB/s per direction). */
    static NcclSpec nvlinkGen3();
    /** NVLink gen4 (H100 platform: 450 GB/s per direction). */
    static NcclSpec nvlinkGen4();
    /** PCIe-switched fallback for boxes without NVLink. */
    static NcclSpec pcieFallback();
};

} // namespace vattn::perf

#endif // VATTN_PERF_NCCL_SPEC_HH
