#include "perf/kernel_model.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace vattn::perf
{

namespace
{

/** Piecewise-linear interpolation over log2(ctx). */
double
interpLogCtx(const double *ctx_points, const double *values, int n,
             i64 ctx)
{
    const double x = std::log2(static_cast<double>(std::max<i64>(ctx, 1)));
    if (x <= ctx_points[0]) {
        return values[0];
    }
    if (x >= ctx_points[n - 1]) {
        return values[n - 1];
    }
    for (int i = 1; i < n; ++i) {
        if (x <= ctx_points[i]) {
            const double t =
                (x - ctx_points[i - 1]) / (ctx_points[i] - ctx_points[i - 1]);
            return values[i - 1] + t * (values[i] - values[i - 1]);
        }
    }
    return values[n - 1];
}

// Figure 2 + Table 6 calibration: paged-over-non-paged prefill kernel
// ratio vs context length (log2 of tokens).
constexpr double kOverheadCtx[] = {10, 11, 12, 13, 14, 15, 16, 17, 17.6};
constexpr double kFa2PagedOverhead[] = {
    1.07, 1.11, 1.26, 1.30, 1.36, 1.37, 1.34, 1.32, 1.31,
};
constexpr double kFiPagedOverhead[] = {
    1.42, 1.25, 1.28, 1.25, 1.25, 1.26, 1.11, 1.09, 1.09,
};
constexpr int kNumOverheadPoints =
    static_cast<int>(sizeof(kOverheadCtx) / sizeof(kOverheadCtx[0]));

/** Kernel launch overhead per layer. */
constexpr TimeNs kLaunchNsPerLayer = 3000;

/** Fraction of peak HBM bandwidth decode attention sustains. */
constexpr double kDecodeMemEff = 0.72;
/** Fraction of peak HBM bandwidth weight streaming sustains. */
constexpr double kWeightMemEff = 0.85;
/** GEMM efficiency of the linear operators. */
constexpr double kLinearEff = 0.65;

} // namespace

KernelModel::KernelModel(GpuSpec gpu, ModelSpec model, int tp,
                         NcclSpec nccl)
    : gpu_(std::move(gpu)), model_(std::move(model)), tp_(tp),
      nccl_(std::move(nccl))
{
    fatal_if(tp_ <= 0, "tensor parallel degree must be positive");
    if (!nccl_.enabled()) {
        // Unset spec: the historical hardcoded constants, derived from
        // this GPU's NVLink bandwidth (keeps default-config goldens
        // byte-identical).
        nccl_ = NcclSpec::legacy(gpu_.nvlink_bytes_per_s);
    }
}

bool
KernelModel::isHopper() const
{
    return gpu_.name.rfind("H100", 0) == 0;
}

double
KernelModel::prefillEfficiency(KernelFamily family) const
{
    if (family == KernelFamily::kFa3) {
        fatal_if(!isHopper(), "FA3 requires the Hopper architecture");
        return 0.62; // warp-specialized / TMA pipeline (§7.5)
    }
    // FA2/FI are tuned for Ampere; on Hopper they leave the new
    // hardware idle, which is exactly why FA3 wins in Figure 11.
    return isHopper() ? 0.46 : 0.60;
}

double
KernelModel::prefillPagedOverhead(KernelFamily family, i64 ctx) const
{
    switch (family) {
      case KernelFamily::kFa2:
        return interpLogCtx(kOverheadCtx, kFa2PagedOverhead,
                            kNumOverheadPoints, ctx);
      case KernelFamily::kFi:
        return interpLogCtx(kOverheadCtx, kFiPagedOverhead,
                            kNumOverheadPoints, ctx);
      case KernelFamily::kVllm:
        // vLLM has no paged prefill kernel (§7.2); it falls back to a
        // non-paged prefill (xformers-style), modelled as FA2-like.
        return interpLogCtx(kOverheadCtx, kFa2PagedOverhead,
                            kNumOverheadPoints, ctx);
      case KernelFamily::kFa3:
        panic("FA3 has no paged kernel (that is the point, §7.5)");
    }
    return 1.0;
}

double
KernelModel::vllmBlockSizeFactor(int block_size,
                                 i64 total_kv_tokens) const
{
    // Figure 3: larger blocks hurt L1 efficiency badly. The single-
    // sequence case (<=16K tokens) shows a flatter curve at 64 but the
    // same 1.9x cliff at 128.
    const bool single_seq = total_kv_tokens <= 16 * 1024;
    switch (block_size) {
      case 16: return 1.0;
      case 32: return single_seq ? 1.13 : 1.04;
      case 64: return single_seq ? 1.26 : 1.45;
      case 128: return 1.90;
      default:
        fatal("unsupported vLLM block size ", block_size);
    }
    return 1.0;
}

double
KernelModel::decodeBackendFactor(BackendKind kind) const
{
    const double gqa = static_cast<double>(model_.num_q_heads) /
                       static_cast<double>(model_.num_kv_heads);
    switch (kernelFamily(kind)) {
      case KernelFamily::kVllm:
        // vLLM's kernel predates the GQA optimizations of
        // FlashDecoding: it re-reads KV per query-head group, so its
        // disadvantage grows with the GQA ratio (Table 7: 2.8x for
        // Yi-6B [ratio 8], 1.5x for Llama-3-8B [ratio 4]).
        return std::max(1.0, 0.10 + 0.3375 * gqa);
      case KernelFamily::kFi:
        return isPaged(kind) ? std::max(1.0, 1.0 + 0.08 * (gqa - 4.0))
                             : 1.0;
      case KernelFamily::kFa2:
        // FA2's paged decode kernel is nearly as fast as non-paged
        // (§7.2: decode attention is memory bound, the extra paging
        // arithmetic hides under memory stalls).
        return isPaged(kind) ? 1.02 : 1.0;
      case KernelFamily::kFa3:
        return 0.95; // slightly better decode pipelining on Hopper
    }
    return 1.0;
}

TimeNs
KernelModel::prefillAttention(BackendKind kind, i64 ctx) const
{
    return chunkedPrefillAttention(kind, ctx, ctx);
}

TimeNs
KernelModel::chunkedPrefillAttention(BackendKind kind, i64 q_len,
                                     i64 kv_len) const
{
    panic_if(q_len <= 0, "chunkedPrefillAttention with no query tokens");
    panic_if(kv_len < q_len,
             "chunk KV context shorter than the query chunk");
    const double q_heads = model_.qHeadsPerWorker(tp_);
    // QK^T and PV matmuls, 2 FLOPs per MAC, under the causal mask: the
    // q_len query rows attend to the kv_len - q_len committed tokens
    // plus the lower triangle of the chunk itself, (4*kv - 2*q) * q
    // FLOPs per head-dim unit per layer. q_len == kv_len == ctx is
    // the monolithic prefill's 4 * ctx^2 / 2.
    const double flops = (4.0 * static_cast<double>(kv_len) -
                          2.0 * static_cast<double>(q_len)) *
                         static_cast<double>(q_len) * q_heads *
                         model_.head_dim * model_.num_layers;
    const KernelFamily family = kernelFamily(kind);
    const double eff = prefillEfficiency(family);
    double seconds = flops / (gpu_.fp16_flops * eff);

    // Short query chunks cannot fill the GPU; ramp efficiency down.
    const double ramp = static_cast<double>(q_len) /
                        (static_cast<double>(q_len) + 1024.0);
    seconds /= ramp;

    if (isPaged(kind)) {
        seconds *= prefillPagedOverhead(family, kv_len);
    }
    return static_cast<TimeNs>(seconds * 1e9) +
           kLaunchNsPerLayer * static_cast<u64>(model_.num_layers);
}

double
KernelModel::windowedAttendedUnits(i64 q_len, i64 kv_len,
                                   i64 window_tokens)
{
    const double q = static_cast<double>(q_len);
    const double kv = static_cast<double>(kv_len);
    const double w = static_cast<double>(window_tokens);
    const double kv0 = kv - q; // committed tokens before the chunk
    if (window_tokens <= 0 || kv_len <= window_tokens) {
        // Full causal trapezoid: matches the (4*kv - 2*q) * q FLOP
        // formula at 4 FLOPs per attended unit.
        return (kv - q / 2.0) * q;
    }
    if (kv0 >= w) {
        // The whole chunk is past the ramp: every query row attends
        // exactly w keys.
        return q * w;
    }
    // The chunk straddles the ramp: rows up to position w attend
    // p + 1 keys (integral (w^2 - kv0^2) / 2), the rest attend w.
    return (w * w - kv0 * kv0) / 2.0 + (kv - w) * w;
}

TimeNs
KernelModel::chunkedPrefillAttentionWindowed(BackendKind kind,
                                             i64 q_len,
                                             i64 kv_len) const
{
    if (!model_.hasSlidingLayers()) {
        return chunkedPrefillAttention(kind, q_len, kv_len);
    }
    panic_if(q_len <= 0, "chunkedPrefillAttention with no query tokens");
    panic_if(kv_len < q_len,
             "chunk KV context shorter than the query chunk");
    const double q_heads = model_.qHeadsPerWorker(tp_);
    double flops = 0.0;
    for (const ModelSpec::WindowClass &cls : model_.windowClasses()) {
        flops += 4.0 *
                 windowedAttendedUnits(q_len, kv_len,
                                       cls.window_tokens) *
                 q_heads * model_.head_dim * cls.layers;
    }
    const KernelFamily family = kernelFamily(kind);
    const double eff = prefillEfficiency(family);
    double seconds = flops / (gpu_.fp16_flops * eff);
    const double ramp = static_cast<double>(q_len) /
                        (static_cast<double>(q_len) + 1024.0);
    seconds /= ramp;
    if (isPaged(kind)) {
        seconds *= prefillPagedOverhead(family, kv_len);
    }
    return static_cast<TimeNs>(seconds * 1e9) +
           kLaunchNsPerLayer * static_cast<u64>(model_.num_layers);
}

TimeNs
KernelModel::decodeAttentionWindowed(BackendKind kind,
                                     const std::vector<i64> &kv_lens,
                                     int block_size) const
{
    i64 total = 0;
    for (i64 kv : kv_lens) {
        total += std::max<i64>(kv, 0);
    }
    if (!model_.hasSlidingLayers()) {
        return decodeAttention(kind, total, block_size);
    }
    if (total <= 0) {
        return 0;
    }
    // Per window class: stream sum of min(kv, window) tokens of KV,
    // 2 (K+V) tensors of kv_heads * head_dim * P bytes per layer.
    double bytes = 0.0;
    for (const ModelSpec::WindowClass &cls : model_.windowClasses()) {
        i64 attended = 0;
        for (i64 kv : kv_lens) {
            const i64 live = std::max<i64>(kv, 0);
            attended += cls.window_tokens > 0
                            ? std::min(live, cls.window_tokens)
                            : live;
        }
        bytes += static_cast<double>(attended) * 2.0 * cls.layers *
                 model_.kvHeadsPerWorker(tp_) * model_.head_dim *
                 model_.bytes_per_elem;
    }
    double seconds = bytes / (gpu_.hbm_bytes_per_s * kDecodeMemEff);
    seconds *= decodeBackendFactor(kind);
    if (kind == BackendKind::kVllmPaged) {
        const int bs = block_size > 0 ? block_size
                                      : defaultBlockSize(kind);
        seconds *= vllmBlockSizeFactor(bs, total);
    }
    return static_cast<TimeNs>(seconds * 1e9) +
           kLaunchNsPerLayer * static_cast<u64>(model_.num_layers);
}

TimeNs
KernelModel::decodeAttention(BackendKind kind, i64 total_kv_tokens,
                             int block_size) const
{
    if (total_kv_tokens <= 0) {
        return 0;
    }
    // Decode attention streams the whole KV cache once per iteration:
    // memory bound (§7.2, "memory bound nature of decode attention").
    const double bytes =
        static_cast<double>(total_kv_tokens) *
        static_cast<double>(model_.kvBytesPerTokenPerWorker(tp_));
    double seconds = bytes / (gpu_.hbm_bytes_per_s * kDecodeMemEff);

    seconds *= decodeBackendFactor(kind);
    if (kind == BackendKind::kVllmPaged) {
        const int bs = block_size > 0 ? block_size
                                      : defaultBlockSize(kind);
        seconds *= vllmBlockSizeFactor(bs, total_kv_tokens);
    }
    return static_cast<TimeNs>(seconds * 1e9) +
           kLaunchNsPerLayer * static_cast<u64>(model_.num_layers);
}

TimeNs
KernelModel::prefillLinear(i64 tokens) const
{
    if (tokens <= 0) {
        return 0;
    }
    const double flops =
        2.0 * model_.numParams() / tp_ * static_cast<double>(tokens);
    const double compute_s = flops / (gpu_.fp16_flops * kLinearEff);
    const double memory_s =
        static_cast<double>(model_.weightBytesPerWorker(tp_)) /
        (gpu_.hbm_bytes_per_s * kWeightMemEff);
    return static_cast<TimeNs>(std::max(compute_s, memory_s) * 1e9);
}

TimeNs
KernelModel::decodeLinear(i64 batch) const
{
    if (batch <= 0) {
        return 0;
    }
    const double flops =
        2.0 * model_.numParams() / tp_ * static_cast<double>(batch);
    const double compute_s = flops / (gpu_.fp16_flops * kLinearEff);
    // Every iteration re-streams the weights; this floor is what makes
    // small-batch decode memory bound and throughput saturate with
    // batch size (Figure 4).
    const double memory_s =
        static_cast<double>(model_.weightBytesPerWorker(tp_)) /
        (gpu_.hbm_bytes_per_s * kWeightMemEff);
    return static_cast<TimeNs>(std::max(compute_s, memory_s) * 1e9);
}

TimeNs
KernelModel::commTime(i64 tokens) const
{
    if (tp_ <= 1 || tokens <= 0) {
        return 0;
    }
    // Two all-reduces per layer (attention out + MLP out) over the
    // iteration's activation tensor. The spec prices one collective in
    // seconds; the single nanosecond cast happens here, exactly where
    // the historical formula cast it, so the legacy default spec is
    // bit-identical to the old hardcoded arithmetic.
    const double payload_bytes = static_cast<double>(tokens) *
                                 model_.hidden_size *
                                 model_.bytes_per_elem;
    const double per_allreduce_s =
        nccl_.allReduceSeconds(payload_bytes, tp_);
    return static_cast<TimeNs>(per_allreduce_s * 2.0 *
                               model_.num_layers * 1e9);
}

TimeNs
KernelModel::tlbWalkPenalty(u64 page_walks)
{
    // GPU page walks overlap aggressively with other warps' memory
    // traffic; the residual exposed cost per walk is tiny. This is the
    // mechanism behind the §7.6.3 finding that 64KB pages do not slow
    // attention kernels down.
    return page_walks * 100; // 100ns exposed per walk
}

} // namespace vattn::perf
