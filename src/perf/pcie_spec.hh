/**
 * @file
 * PCIe interconnect description for the host-memory KV swap tier: the
 * device<->host copy bandwidths and per-transfer launch overhead that
 * price a swap-out (DtoH) or swap-in (HtoD) of KV page-groups. The
 * cost-model-driven preemption policy (Engine kAuto) compares these
 * round-trip costs against the roofline cost of recomputing the
 * victim's prefill.
 *
 * The calibrated numbers install into the cuvmm driver's LatencyModel
 * (whose defaults mirror gen4x16() so a bare driver still prices
 * copies); perf sits above cuvmm in the layer order, so the spec can
 * name the driver type directly.
 */

#ifndef VATTN_PERF_PCIE_SPEC_HH
#define VATTN_PERF_PCIE_SPEC_HH

#include <string>

#include "common/types.hh"
#include "cuvmm/latency_model.hh"

namespace vattn::perf
{

/** Aggregate throughput description of one GPU's PCIe link. */
struct PcieSpec
{
    std::string name;
    double h2d_bytes_per_s; ///< pinned host -> device copy bandwidth
    double d2h_bytes_per_s; ///< device -> pinned host copy bandwidth
    TimeNs launch_ns;       ///< fixed per-transfer cost (API + DMA setup)

    /** PCIe 4.0 x16 (the A100 platform, ~26/24 GB/s effective). */
    static PcieSpec gen4x16();
    /** PCIe 5.0 x16 (the H100 platform, ~52/48 GB/s effective). */
    static PcieSpec gen5x16();

    /** Device -> host copy time for @p bytes. */
    TimeNs dtohNs(u64 bytes) const;
    /** Host -> device copy time for @p bytes. */
    TimeNs htodNs(u64 bytes) const;
    /** Swap round trip: copy out now, copy back later. */
    TimeNs roundTripNs(u64 bytes) const;

    /** The driver-facing copy-cost parameters of this link. */
    cuvmm::LatencyModel::CopyModel toCopyModel() const;
};

} // namespace vattn::perf

#endif // VATTN_PERF_PCIE_SPEC_HH
