/**
 * @file
 * LLM architecture descriptions (Table 5 of the paper) plus derived
 * quantities the memory manager and roofline model need: parameter
 * counts, per-token KV bytes (§4: Yi-6B 64KB, Llama-3-8B 128KB,
 * Yi-34B 240KB) and per-worker splits under tensor parallelism.
 */

#ifndef VATTN_PERF_MODEL_SPEC_HH
#define VATTN_PERF_MODEL_SPEC_HH

#include <string>
#include <vector>

#include "common/types.hh"

namespace vattn::perf
{

/** Transformer architecture shape. */
struct ModelSpec
{
    std::string name;
    int num_layers;
    int num_q_heads;
    int num_kv_heads;
    int head_dim;
    int hidden_size;
    int intermediate_size;
    int vocab_size;
    i64 max_context_len;
    int bytes_per_elem = 2; ///< FP16 weights/KV

    /**
     * Sliding-window width per layer in tokens (0 = full attention).
     * Empty means every layer is full attention — the Table-5 models.
     * Mistral/Gemma-style architectures interleave full and
     * sliding-window layers; the memory manager and roofline model
     * both consult this list.
     */
    std::vector<i64> layer_window_tokens;

    // ---- Presets (Table 5) -------------------------------------------
    static ModelSpec yi6B();      ///< 32L, 32Q/4KV heads, 200K ctx
    static ModelSpec llama3_8B(); ///< 32L, 32Q/8KV heads
    static ModelSpec yi34B();     ///< 60L, 56Q/8KV heads, 200K ctx
    /** Large models referenced by the §7.6.3 page-size study. */
    static ModelSpec llama3_70B();
    static ModelSpec gpt3_175B();

    static const std::vector<ModelSpec> &evaluationModels();

    /**
     * Copy of this spec with a Mistral-style attention interleave:
     * every @p period-th layer (0, period, 2*period, ...) keeps full
     * attention, the rest slide over @p window_tokens tokens. period 2
     * is the 1:1 full/SWA pattern of Gemma-2-class models.
     */
    ModelSpec withSlidingWindowInterleave(i64 window_tokens,
                                          int period = 2) const;

    /** Any sliding-window layer in the spec? */
    bool hasSlidingLayers() const;

    /** Window width of @p layer (0 = full attention). */
    i64 windowTokensOf(int layer) const;

    /** One attention-shape class: all layers sharing a window. */
    struct WindowClass
    {
        i64 window_tokens = 0; ///< 0 = full attention
        int layers = 0;        ///< layers with this window
    };

    /** Layers grouped by window width (full class first when present);
     *  a single class {0, num_layers} for uniform models. */
    std::vector<WindowClass> windowClasses() const;

    // ---- Derived quantities -------------------------------------------

    /** Approximate parameter count (embeddings + blocks). */
    double numParams() const;

    /** Weight bytes resident on one of @p tp workers. */
    u64 weightBytesPerWorker(int tp) const;

    /** KV heads per worker under TP (heads split evenly, §5.1.3). */
    int kvHeadsPerWorker(int tp) const;
    int qHeadsPerWorker(int tp) const;

    /** Per-token KV bytes across all layers, K+V, ALL workers. */
    u64 kvBytesPerToken() const;
    /** Per-token KV bytes on one worker. */
    u64 kvBytesPerTokenPerWorker(int tp) const;
};

} // namespace vattn::perf

#endif // VATTN_PERF_MODEL_SPEC_HH
