/**
 * @file
 * Attention back-end configurations evaluated in the paper (§7):
 * kernel family x memory-management approach. "Paged" back-ends
 * dereference Block-Tables inside the kernel; "vAttention" back-ends
 * run the unmodified non-paged kernels over virtually contiguous KV.
 */

#ifndef VATTN_PERF_BACKEND_KIND_HH
#define VATTN_PERF_BACKEND_KIND_HH

namespace vattn::perf
{

/** Kernel library family. */
enum class KernelFamily
{
    kVllm,  ///< vLLM's original PagedAttention decode kernel
    kFa2,   ///< FlashAttention-2
    kFi,    ///< FlashInfer
    kFa3,   ///< FlashAttention-3 (Hopper only, non-paged at release)
};

/** The evaluated back-end configurations. */
enum class BackendKind
{
    kVllmPaged,      ///< vLLM kernel + PagedAttention blocks
    kFa2Paged,       ///< FA2 paged kernels (block size 256)
    kFiPaged,        ///< FlashInfer paged kernels (block size 16)
    kFa2VAttention,  ///< FA2 non-paged kernels + vAttention
    kFiVAttention,   ///< FI non-paged kernels + vAttention
    kFa3VAttention,  ///< FA3 + vAttention (H100)
};

constexpr bool
isPaged(BackendKind kind)
{
    return kind == BackendKind::kVllmPaged ||
           kind == BackendKind::kFa2Paged ||
           kind == BackendKind::kFiPaged;
}

constexpr KernelFamily
kernelFamily(BackendKind kind)
{
    switch (kind) {
      case BackendKind::kVllmPaged: return KernelFamily::kVllm;
      case BackendKind::kFa2Paged: return KernelFamily::kFa2;
      case BackendKind::kFiPaged: return KernelFamily::kFi;
      case BackendKind::kFa2VAttention: return KernelFamily::kFa2;
      case BackendKind::kFiVAttention: return KernelFamily::kFi;
      case BackendKind::kFa3VAttention: return KernelFamily::kFa3;
    }
    return KernelFamily::kFa2;
}

/** The KV block size each paged system performs best at (§7,
 *  "Baselines"): 16 for vLLM and FlashInfer, 256 for FA2. */
constexpr int
defaultBlockSize(BackendKind kind)
{
    switch (kind) {
      case BackendKind::kVllmPaged: return 16;
      case BackendKind::kFiPaged: return 16;
      case BackendKind::kFa2Paged: return 256;
      default: return 0; // vAttention back-ends have no block table
    }
}

constexpr const char *
toString(BackendKind kind)
{
    switch (kind) {
      case BackendKind::kVllmPaged: return "vLLM";
      case BackendKind::kFa2Paged: return "FA2_Paged";
      case BackendKind::kFiPaged: return "FI_Paged";
      case BackendKind::kFa2VAttention: return "FA2_vAttention";
      case BackendKind::kFiVAttention: return "FI_vAttention";
      case BackendKind::kFa3VAttention: return "FA3_vAttention";
    }
    return "?";
}

} // namespace vattn::perf

#endif // VATTN_PERF_BACKEND_KIND_HH
