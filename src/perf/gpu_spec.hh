/**
 * @file
 * GPU hardware descriptions used by the roofline kernel model. Only
 * aggregate throughput numbers matter: peak dense FP16 FLOPs, HBM
 * bandwidth and memory capacity.
 */

#ifndef VATTN_PERF_GPU_SPEC_HH
#define VATTN_PERF_GPU_SPEC_HH

#include <string>

#include "common/types.hh"

namespace vattn::perf
{

/** Aggregate hardware throughput description of one GPU. */
struct GpuSpec
{
    std::string name;
    double fp16_flops;      ///< peak dense FP16 FLOP/s
    double hbm_bytes_per_s; ///< peak HBM bandwidth
    u64 mem_bytes;          ///< device memory
    double nvlink_bytes_per_s; ///< per-direction link bandwidth

    /** NVIDIA A100-SXM 80GB (the paper's main platform, Table 5). */
    static GpuSpec a100();
    /** NVIDIA H100-SXM 80GB (the §7.5 portability platform). */
    static GpuSpec h100();
};

} // namespace vattn::perf

#endif // VATTN_PERF_GPU_SPEC_HH
