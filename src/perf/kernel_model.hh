/**
 * @file
 * Analytic GPU kernel timing model: roofline (compute-bound prefill
 * attention and linear ops, bandwidth-bound decode attention and
 * weight streaming) plus per-back-end paging-overhead curves calibrated
 * from the paper's own kernel measurements (Figures 2-3, Tables 6-7).
 *
 * The functional CPU kernels in attn/ prove the memory layouts work;
 * this model plays the role of the A100/H100 silicon so end-to-end
 * experiments reproduce the paper's *relative* behaviour at full scale.
 * Calibration anchors are asserted in tests/test_kernel_model.cc.
 */

#ifndef VATTN_PERF_KERNEL_MODEL_HH
#define VATTN_PERF_KERNEL_MODEL_HH

#include "common/types.hh"
#include "perf/backend_kind.hh"
#include "perf/gpu_spec.hh"
#include "perf/model_spec.hh"
#include "perf/nccl_spec.hh"

namespace vattn::perf
{

/** Per-worker kernel latency model for one (GPU, model, TP) triple. */
class KernelModel
{
  public:
    /**
     * @param nccl collective cost model pricing the TP all-reduces; an
     *        unset spec (the default) resolves to NcclSpec::legacy over
     *        the GPU's NVLink bandwidth — bit-for-bit the historical
     *        hardcoded commTime constants.
     */
    KernelModel(GpuSpec gpu, ModelSpec model, int tp,
                NcclSpec nccl = {});

    const GpuSpec &gpu() const { return gpu_; }
    const ModelSpec &model() const { return model_; }
    int tp() const { return tp_; }
    const NcclSpec &nccl() const { return nccl_; }

    // ---- Attention ---------------------------------------------------

    /**
     * Attention time of prefilling one @p ctx-token request across all
     * layers of one worker (includes the paged-kernel overhead for
     * paged back-ends). Equivalent to
     * chunkedPrefillAttention(kind, ctx, ctx).
     */
    TimeNs prefillAttention(BackendKind kind, i64 ctx) const;

    /**
     * Chunked-prefill attention: a @p q_len-token query chunk
     * attending causally over a @p kv_len-token context (the chunk
     * itself plus everything prefilled before it, so
     * q_len <= kv_len). FLOPs are the causal-mask trapezoid
     * 4*q*kv - 2*q^2 per head-dim unit; q_len == kv_len degenerates
     * to the monolithic prefill above, bit-for-bit.
     */
    TimeNs chunkedPrefillAttention(BackendKind kind, i64 q_len,
                                   i64 kv_len) const;

    /**
     * Decode attention for one iteration over a batch whose KV lengths
     * sum to @p total_kv_tokens. @p block_size overrides the back-end
     * default block size (vLLM block-size sensitivity, Figure 3).
     */
    TimeNs decodeAttention(BackendKind kind, i64 total_kv_tokens,
                           int block_size = 0) const;

    // ---- Sliding-window attention --------------------------------------
    // Sliding-window layers attend over min(kv, window) tokens, so a
    // model with windowed layers streams less KV (decode) and runs a
    // banded score matrix (prefill). Both methods delegate to the
    // uniform paths verbatim when the model has no sliding layers.

    /**
     * Chunked prefill with per-layer windows: each window class pays
     * the banded causal trapezoid — a chunk at offset kv0 = kv - q
     * attends min(p + 1, w) keys from position p.
     */
    TimeNs chunkedPrefillAttentionWindowed(BackendKind kind, i64 q_len,
                                           i64 kv_len) const;

    /**
     * Decode attention with per-layer windows over a batch of KV
     * lengths: each window class streams sum over requests of
     * min(kv, window) tokens.
     */
    TimeNs decodeAttentionWindowed(BackendKind kind,
                                   const std::vector<i64> &kv_lens,
                                   int block_size = 0) const;

    /** Attended key-token units of one window class for a chunk
     *  (q_len == kv_len is a whole prompt); exposed for tests. */
    static double windowedAttendedUnits(i64 q_len, i64 kv_len,
                                        i64 window_tokens);

    // ---- Non-attention operators ---------------------------------------

    /** Linear/positionwise operators for @p tokens prefill tokens. */
    TimeNs prefillLinear(i64 tokens) const;

    /** Linear operators for one decode iteration of @p batch requests. */
    TimeNs decodeLinear(i64 batch) const;

    /** Tensor-parallel all-reduce time for one iteration moving
     *  @p tokens activations (0 when TP=1). */
    TimeNs commTime(i64 tokens) const;

    // ---- Calibrated factors (exposed for tests/benches) -----------------

    /** Paged/non-paged prefill kernel ratio (Figure 2 / Table 6). */
    double prefillPagedOverhead(KernelFamily family, i64 ctx) const;

    /** vLLM decode latency multiplier vs its block-16 config
     *  (Figure 3); depends weakly on the total token count. */
    double vllmBlockSizeFactor(int block_size, i64 total_kv_tokens) const;

    /** Decode kernel multiplier of a back-end vs the non-paged FA2
     *  kernel (Table 7: vLLM up to 2.8x, driven by the GQA ratio). */
    double decodeBackendFactor(BackendKind kind) const;

    /** Compute efficiency of a kernel family's prefill kernel. */
    double prefillEfficiency(KernelFamily family) const;

    /** Extra kernel time due to TLB misses (page-size study §7.6.3);
     *  walks overlap with memory latency almost entirely. */
    static TimeNs tlbWalkPenalty(u64 page_walks);

  private:
    bool isHopper() const;

    GpuSpec gpu_;
    ModelSpec model_;
    int tp_;
    NcclSpec nccl_;
};

} // namespace vattn::perf

#endif // VATTN_PERF_KERNEL_MODEL_HH
