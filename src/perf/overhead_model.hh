/**
 * @file
 * CPU-side serving overhead model (§3.3.2): the per-iteration work the
 * Python/C++ serving layer performs before launching kernels. The
 * PagedAttention-specific part is Block-Table preparation — vLLM's
 * padded 2D table costs O(batch x max_num_blocks) and once contributed
 * 30% of decode latency (10% after the fix we model); FlashInfer
 * rebuilds compressed Block-Table objects every iteration. vAttention
 * needs none of this.
 */

#ifndef VATTN_PERF_OVERHEAD_MODEL_HH
#define VATTN_PERF_OVERHEAD_MODEL_HH

#include "common/types.hh"
#include "perf/backend_kind.hh"

namespace vattn::perf
{

/** Per-iteration CPU overheads of the serving framework. */
class OverheadModel
{
  public:
    /**
     * CPU time of one decode iteration.
     * @param batch running batch size
     * @param max_blocks KV blocks of the longest request (paded table)
     * @param total_blocks sum of blocks over the batch (CSR table)
     */
    TimeNs decodeCpu(BackendKind kind, i64 batch, i64 max_blocks,
                     i64 total_blocks) const;

    /**
     * CPU time of one prefill iteration.
     * @param num_prompts prompts batched in this iteration
     * @param new_blocks KV blocks appended (paged back-ends copy
     *        K/V into the cache block-by-block; vAttention appends
     *        with a single contiguous tensor copy, §7.1)
     */
    TimeNs prefillCpu(BackendKind kind, i64 num_prompts,
                      i64 new_blocks) const;

    /**
     * CPU time of one hybrid (chunked-prefill + decode) iteration:
     * both sides' per-request work, with the per-iteration scheduler
     * base charged once.
     */
    TimeNs hybridCpu(BackendKind kind, i64 num_prompts, i64 new_blocks,
                     i64 decode_batch, i64 max_blocks,
                     i64 total_blocks) const;

    // Calibration constants (exposed for tests).
    static constexpr TimeNs kBaseIterNs = 4 * kMsec;   ///< scheduler+python
    static constexpr TimeNs kPerRequestNs = 30 * kUsec; ///< sample/detok
    static constexpr TimeNs kPaddedEntryNs = 100;      ///< vLLM table slot
    static constexpr TimeNs kCsrEntryNs = 25;          ///< FI index copy
    static constexpr TimeNs kFiObjectChurnNs = 1200 * kUsec;
    static constexpr TimeNs kPagedAppendPerBlockNs = 2 * kUsec;
    static constexpr TimeNs kContiguousAppendNs = 50 * kUsec;
};

} // namespace vattn::perf

#endif // VATTN_PERF_OVERHEAD_MODEL_HH
