#include "perf/gpu_spec.hh"

namespace vattn::perf
{

GpuSpec
GpuSpec::a100()
{
    return GpuSpec{
        "A100-SXM-80GB",
        312e12,  // dense FP16 tensor core peak
        2039e9,  // HBM2e
        80 * GiB,
        300e9,   // NVLink3 per direction
    };
}

GpuSpec
GpuSpec::h100()
{
    return GpuSpec{
        "H100-SXM-80GB",
        989e12,  // dense FP16 tensor core peak
        3352e9,  // HBM3
        80 * GiB,
        450e9,   // NVLink4 per direction
    };
}

} // namespace vattn::perf
