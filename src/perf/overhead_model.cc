#include "perf/overhead_model.hh"

namespace vattn::perf
{

TimeNs
OverheadModel::decodeCpu(BackendKind kind, i64 batch, i64 max_blocks,
                         i64 total_blocks) const
{
    TimeNs t = kBaseIterNs + kPerRequestNs * static_cast<u64>(batch);
    switch (kind) {
      case BackendKind::kVllmPaged:
      case BackendKind::kFa2Paged:
        // Padded 2D Block-Table: every request is padded to the
        // longest one (§3.3.2).
        t += kPaddedEntryNs *
             static_cast<u64>(batch * max_blocks);
        break;
      case BackendKind::kFiPaged:
        // Compressed table is cheap to fill but FlashInfer creates
        // and destroys wrapper objects every iteration (§7.1).
        t += kFiObjectChurnNs +
             kCsrEntryNs * static_cast<u64>(total_blocks);
        break;
      case BackendKind::kFa2VAttention:
      case BackendKind::kFiVAttention:
      case BackendKind::kFa3VAttention:
        // Virtually contiguous KV: no Block-Table at all.
        break;
    }
    return t;
}

TimeNs
OverheadModel::prefillCpu(BackendKind kind, i64 num_prompts,
                          i64 new_blocks) const
{
    TimeNs t = kBaseIterNs + kPerRequestNs * static_cast<u64>(num_prompts);
    switch (kind) {
      case BackendKind::kVllmPaged:
      case BackendKind::kFa2Paged:
        t += kPagedAppendPerBlockNs * static_cast<u64>(new_blocks);
        break;
      case BackendKind::kFiPaged:
        t += kFiObjectChurnNs +
             kPagedAppendPerBlockNs * static_cast<u64>(new_blocks);
        break;
      case BackendKind::kFa2VAttention:
      case BackendKind::kFiVAttention:
      case BackendKind::kFa3VAttention:
        // One contiguous K/V append per prompt (§7.1).
        t += kContiguousAppendNs * static_cast<u64>(num_prompts);
        break;
    }
    return t;
}

TimeNs
OverheadModel::hybridCpu(BackendKind kind, i64 num_prompts,
                         i64 new_blocks, i64 decode_batch,
                         i64 max_blocks, i64 total_blocks) const
{
    return prefillCpu(kind, num_prompts, new_blocks) +
           decodeCpu(kind, decode_batch, max_blocks, total_blocks) -
           kBaseIterNs;
}

} // namespace vattn::perf
